// Package repro is a from-scratch Go reproduction of "R3: Resilient
// Routing Reconfiguration" (Wang et al., SIGCOMM 2010): a routing
// protection scheme that precomputes a single protection routing which is
// provably congestion-free under multiple overlapping link failures,
// together with every substrate the paper's evaluation depends on.
//
// The library lives under internal/ (see DESIGN.md for the module map),
// with runnable entry points in cmd/ and examples/. The root package
// holds the benchmark suite: one testing.B benchmark per table and figure
// of the paper's evaluation, plus ablations (bench_test.go).
//
//   - internal/core — R3 offline precomputation and online reconfiguration
//   - internal/protect — the baseline schemes R3 is compared against
//   - internal/eval — failure scenarios and the evaluation engine
//   - internal/mplsff, internal/netem — the MPLS-ff data plane and the
//     packet-level emulator standing in for the paper's Emulab testbed
//   - internal/exp — one driver per table/figure
//
// EXPERIMENTS.md records paper-vs-measured results for every artifact.
package repro
