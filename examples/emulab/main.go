// Emulab: the paper's §5.3 testbed experiment as a packet-level
// emulation. An MPLS-ff data plane runs R3 protection on the Abilene
// backbone while three bidirectional links fail in sequence; the same
// scenario is replayed with OSPF reconvergence for contrast.
package main

import (
	"fmt"

	"repro/internal/exp"
)

func main() {
	cfg := exp.EmulationConfig{PhaseSeconds: 5, TotalMbps: 220, Effort: 150, Seed: 1}

	fmt.Println("running MPLS-ff+R3 emulation (4 phases: normal, 1, 2, 3 failures)...")
	r3 := exp.RunEmulation("MPLS-ff+R3", cfg)
	fmt.Println("running OSPF+recon emulation...")
	ospf := exp.RunEmulation("OSPF+recon", cfg)

	fmt.Printf("\n%-10s %-22s %-22s\n", "phase", "R3 loss / peak util", "OSPF loss / peak util")
	labels := []string{"normal", "1 failure", "2 failures", "3 failures"}
	for ph := 0; ph < 4; ph++ {
		fmt.Printf("%-10s %8.4f / %-10.3f %8.4f / %-10.3f\n", labels[ph],
			r3.LossRate(ph), r3.PeakIntensity(ph),
			ospf.LossRate(ph), ospf.PeakIntensity(ph))
	}

	// RTT steps of the Denver-LosAngeles probe (Figure 12's staircase).
	fmt.Println("\nDenver->LosAngeles RTT (ms) over time:")
	step := len(r3.RTT) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r3.RTT); i += step {
		s := r3.RTT[i]
		fmt.Printf("  t=%5.1fs rtt=%6.2fms\n", s[0], s[1]*1000)
	}
}
