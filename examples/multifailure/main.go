// Multifailure: R3 on the Abilene backbone under the paper's Emulab
// failure sequence (Houston–KansasCity, Chicago–Indianapolis,
// Sunnyvale–Denver), compared against OSPF reconvergence and CSPF
// fast-reroute, with order-independence of the reconfiguration verified
// along the way.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/protect"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	g := topo.Abilene()
	d := traffic.AbileneMatrix(g, 220)

	plan, err := core.Precompute(g, d, core.Config{
		Model:      core.ArbitraryFailures{F: 3},
		Iterations: 250,
		// The paper's evaluations bound normal-case MLU to 1.1x optimal
		// (the penalty envelope of §3.5); without it the base routing is
		// distorted by worst cases that cannot occur.
		PenaltyEnvelope: 1.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R3 plan for up to 3 failures: MLU over d+X3 = %.3f\n", plan.MLU)

	// The Emulab failure sequence, both directions of each link.
	var seq []graph.LinkID
	for _, pair := range [][2]string{
		{"Houston", "KansasCity"},
		{"Chicago", "Indianapolis"},
		{"Sunnyvale", "Denver"},
	} {
		a, _ := g.NodeByName(pair[0])
		b, _ := g.NodeByName(pair[1])
		ab, _ := g.FindLink(a, b)
		seq = append(seq, ab, g.Link(ab).Reverse)
	}

	// Apply failures one at a time, reporting the bottleneck after each.
	schemes := []protect.Scheme{
		&eval.R3Scheme{Label: "MPLS-ff+R3", Plan: plan},
		&protect.OSPFRecon{G: g},
		&protect.CSPFDetour{G: g},
	}
	fmt.Println("\nbottleneck utilization as failures accumulate:")
	fmt.Printf("%-12s %-12s %-12s %-18s\n", "failures", "MPLS-ff+R3", "OSPF+recon", "OSPF+CSPF-detour")
	cum := graph.LinkSet{}
	for step := 0; step <= 3; step++ {
		if step > 0 {
			cum.Add(seq[2*step-2])
			cum.Add(seq[2*step-1])
		}
		fmt.Printf("%-12d", step)
		for _, s := range schemes {
			loads, _ := s.Loads(cum, d)
			fmt.Printf(" %-12.3f", protect.Bottleneck(g, cum, loads))
		}
		fmt.Println()
	}

	// Theorem 3: apply the six links in two different orders and compare
	// the resulting routing state.
	st1 := core.NewState(plan)
	st2 := core.NewState(plan)
	if err := st1.FailAll(seq...); err != nil {
		log.Fatal(err)
	}
	rev := make([]graph.LinkID, len(seq))
	for i, e := range seq {
		rev[len(seq)-1-i] = e
	}
	if err := st2.FailAll(rev...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norder independence across 6 link failures: %v\n",
		st1.ProtEquals(st2, 1e-9) && st1.BaseEquals(st2, 1e-9))
}
