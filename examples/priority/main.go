// Priority: prioritized resilient routing (paper §3.5). Three traffic
// classes with different SLAs — TPRT protected against 4 overlapping
// failures, TPP against 2, general IP against 1 — share one base and one
// protection routing, computed so that d_i + X_{F_i} is congestion-free
// for every class i.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	g := topo.Abilene()
	total := traffic.Gravity(g, 180, 5)
	classes := traffic.SplitClasses(total, 0.12, 0.22, 9)
	fmt.Printf("traffic: TPRT %.0f, TPP %.0f, IP %.0f Mbps\n",
		classes[traffic.TPRT].Total(), classes[traffic.TPP].Total(), classes[traffic.IP].Total())

	prioritized, err := core.PrecomputePrioritized(g, []core.Priority{
		{Demand: classes[traffic.TPRT], F: 4},
		{Demand: classes[traffic.TPP], F: 2},
		{Demand: classes[traffic.IP], F: 1},
	}, core.Config{Iterations: 250})
	if err != nil {
		log.Fatal(err)
	}
	general, err := core.Precompute(g, total, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: 250,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compare the two plans' per-class bottlenecks under a harsh
	// four-link failure scenario.
	scenario := graph.NewLinkSet(0, 1, 10, 11) // two duplex fiber cuts
	fmt.Printf("\nper-class bottleneck under failures %v:\n", scenario)
	fmt.Printf("%-8s %-14s %-18s\n", "class", "general R3", "prioritized R3")
	gen := eval.ClassBottlenecks(general, classes, scenario)
	pri := eval.ClassBottlenecks(prioritized, classes, scenario)
	for _, cls := range []traffic.Class{traffic.TPRT, traffic.TPP, traffic.IP} {
		fmt.Printf("%-8s %-14.3f %-18.3f\n", cls, gen[cls], pri[cls])
	}
	fmt.Println("\nprioritized R3 shields TPRT and TPP at the cost of best-effort IP,")
	fmt.Println("exactly the differentiation the paper's Figure 8 demonstrates.")
}
