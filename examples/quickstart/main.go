// Quickstart: compute an R3 plan for a small network, verify the
// congestion-free guarantee, fail links and watch online reconfiguration
// keep every surviving link under its capacity.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/traffic"
)

func main() {
	// A 5-PoP ring with two chords; 100 Mbps everywhere.
	g := graph.New("demo")
	var n [5]graph.NodeID
	for i, name := range []string{"sea", "nyc", "atl", "lax", "chi"} {
		n[i] = g.AddNode(name)
	}
	for i := 0; i < 5; i++ {
		g.AddDuplex(n[i], n[(i+1)%5], 100, 5, 1)
	}
	g.AddDuplex(n[0], n[2], 100, 8, 1)
	g.AddDuplex(n[1], n[3], 100, 8, 1)

	// Demands between all pairs.
	d := traffic.Gravity(g, 120, 7)

	// Offline precomputation: joint base + protection routing that is
	// congestion-free for the demand plus any single link failure.
	plan, err := core.Precompute(g, d, core.Config{
		Model:      core.ArbitraryFailures{F: 1},
		Iterations: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan objective over d+X1: MLU = %.3f (normal case %.3f)\n",
		plan.MLU, plan.NormalMLU)
	if plan.CongestionFree() {
		fmt.Println("Theorem 1 applies: every single-link failure reroutes without congestion")
	}

	// Online reconfiguration: fail every link in turn and verify.
	worst := 0.0
	for e := 0; e < g.NumLinks(); e++ {
		st := core.NewState(plan)
		if err := st.Fail(graph.LinkID(e)); err != nil {
			log.Fatal(err)
		}
		if mlu := st.MLU(); mlu > worst {
			worst = mlu
		}
	}
	fmt.Printf("worst post-failure MLU across all single-link failures: %.3f\n", worst)

	// Overlapping failures: rescaling composes, order independently.
	st1 := core.NewState(plan)
	st2 := core.NewState(plan)
	if err := st1.FailAll(0, 4); err != nil {
		log.Fatal(err)
	}
	if err := st2.FailAll(4, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two overlapping failures: MLU = %.3f (order independent: %v)\n",
		st1.MLU(), st1.ProtEquals(st2, 1e-9) && st1.BaseEquals(st2, 1e-9))
}
