// Command r3plan is the operational face of R3: precompute a protection
// plan for a topology and traffic matrix, save/load it in the wire format
// a central server would distribute (§4.3), and interrogate it — apply
// hypothetical failures, print the resulting detours and utilization, and
// verify the congestion-free certificate.
//
// Usage:
//
//	r3plan -net sbc -f 2 -save plan.json
//	r3plan -net sbc -load plan.json -fail 3,17 -detours
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/topo"
	"repro/internal/traffic"
	"repro/internal/transition"
)

func main() {
	var (
		name      = flag.String("net", "abilene", "topology: abilene|level3|sbc|uunet|generated|generated1k|usisp")
		file      = flag.String("file", "", "load a topology file instead of a built-in")
		tmFile    = flag.String("tm", "", "load a traffic matrix file instead of gravity demands")
		f         = flag.Int("f", 1, "number of overlapping link failures to protect against")
		alpha     = flag.Float64("degrade", 1, "per-link capacity floor alpha; < 1 protects the degradation envelope X_D instead of X_F")
		budget    = flag.Float64("budget", 1, "degradation budget B (total degraded capacity fraction) for -degrade")
		surge     = flag.Float64("surge", 0, "traffic-surge envelope scale (> 1 folds a surged matrix into the protection bound; FW solver)")
		surgeFrac = flag.Float64("surgefrac", 1, "fraction of OD pairs covered by -surge (heaviest first)")
		workload  = flag.String("workload", "", `combined workload spec, e.g. "alpha=0.5,budget=2,surge=1.5,odfrac=0.25" (overrides -degrade/-budget/-surge/-surgefrac)`)
		degrLinks = flag.String("degradelinks", "", `comma-separated link:frac partial losses to apply online, e.g. "3:0.5,7:0.25" (combines with -fail)`)
		total     = flag.Float64("total", 0, "total demand in Mbps (default: 15% of capacity)")
		effort    = flag.Int("effort", 200, "solver effort")
		workers   = flag.Int("workers", 0, "solver worker goroutines (0 = all CPUs, 1 = serial; same plan either way)")
		envelope  = flag.Float64("envelope", 1.1, "normal-case penalty envelope (0 to disable)")
		seed      = flag.Int64("seed", 1, "gravity traffic seed")
		topk      = flag.Int("topk", 0, "keep only the k heaviest gravity OD pairs (0 = dense; required for 1000-node-class topologies)")
		spfMode   = flag.String("spf", "auto", "planner SPF kernel: auto|flat|incremental|delta (byte-identical plans; speed only)")
		baseMode  = flag.String("base", "opt", "base routing: opt (jointly optimized) or ospf (pinned to ECMP on current weights; required for 1000-node-class topologies)")
		save      = flag.String("save", "", "write the plan to this file")
		load      = flag.String("load", "", "read a plan from this file instead of solving")
		fail      = flag.String("fail", "", "comma-separated link IDs to fail")
		detours   = flag.Bool("detours", false, "print detours for the failed links")
		stage     = flag.Bool("stage", false, "decompose the -fail set into staged reconfiguration rounds, each certified by the exact LP")
		swapTo    = flag.String("swap", "", "schedule a swap from the current plan to the plan in this file, printing per-round certificates")
		fprint    = flag.Bool("fingerprint", false, "print the plan's wire-format content digest (matches r3d's X-R3-Digest)")
		verify    = flag.Int("verify", 0, "audit the plan by enumerating failure sets of up to N links")
		verifyCap = flag.Int("verifycap", 20000, "max scenarios for -verify (0 = unlimited)")

		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address")
		traceOut   = flag.String("trace-out", "", "write solver span traces to this JSON file at exit")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocs profile to this file at exit")
		verbose    = flag.Bool("v", false, "info-level logging")
	)
	flag.Parse()

	reg, obsCleanup, err := obs.SetupCLI(*debugAddr, *traceOut, *cpuProfile, *memProfile, *verbose)
	if err != nil {
		fatal(err)
	}
	defer obsCleanup()

	var g *graph.Graph
	if *file != "" {
		r, ferr := os.Open(*file)
		if ferr != nil {
			fatal(ferr)
		}
		g, err = topo.Parse(r)
		r.Close()
	} else {
		g, err = lookupTopo(*name)
	}
	if err != nil {
		fatal(err)
	}
	var d *traffic.Matrix
	if *tmFile != "" {
		r, ferr := os.Open(*tmFile)
		if ferr != nil {
			fatal(ferr)
		}
		d, err = traffic.ParseMatrix(r, g.NumNodes(), g.NodeByName)
		r.Close()
		if err != nil {
			fatal(err)
		}
	} else if *topk > 0 {
		d = traffic.GravityTopK(g, demandTotal(*total, g), *seed, *topk)
	} else {
		d = traffic.Gravity(g, demandTotal(*total, g), *seed)
	}
	mode, err := spf.ParseMode(*spfMode)
	if err != nil {
		fatal(err)
	}
	// -base ospf pins the base routing to ECMP on the graph's current
	// weights and optimizes only the protection routing (the OSPF+R3
	// configuration of the paper's evaluation). The envelope is moot with
	// a pinned base — it penalizes base-routing stretch, which is no
	// longer a variable — so it is dropped.
	var baseFlow *routing.Flow
	switch *baseMode {
	case "opt":
	case "ospf":
		comms := routing.ODCommodities(g.NumNodes(), d.At)
		baseFlow = spf.ECMPFlow(g, comms, nil, spf.WeightCost(g))
		*envelope = 0
	default:
		fatal(fmt.Errorf("unknown -base %q (want opt|ospf)", *baseMode))
	}

	// Resolve the workload envelope: -workload wins over the individual
	// flags; the zero spec keeps classic hard-failure protection.
	spec := core.WorkloadSpec{Alpha: *alpha, Budget: *budget, Surge: *surge, ODFrac: *surgeFrac}
	if *workload != "" {
		spec, err = core.ParseWorkloadSpec(*workload)
		if err != nil {
			fatal(err)
		}
	}
	if !spec.Degrades() {
		spec.Budget = 0
	}
	if spec.Surges() && spec.ODFrac == 0 {
		spec.ODFrac = 1
	}

	var plan *core.Plan
	if *load != "" {
		r, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		plan, err = core.DecodePlan(r, g)
		r.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded plan: MLU over d+X = %.4f (normal %.4f)\n", plan.MLU, plan.NormalMLU)
	} else {
		model := spec.Model(core.ArbitraryFailures{F: *f})
		if s := spec.String(); s != "" {
			fmt.Printf("precomputing R3 plan for %s, %v (%s)...\n", g.Name, model, s)
		} else {
			fmt.Printf("precomputing R3 plan for %s, F=%d...\n", g.Name, *f)
		}
		plan, err = core.Precompute(g, d, core.Config{
			Model:           model,
			Surge:           spec.SurgeSpec(),
			BaseRouting:     baseFlow,
			Iterations:      *effort,
			PenaltyEnvelope: *envelope,
			Workers:         *workers,
			SPF:             mode,
			Obs:             reg,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan MLU over d+X = %.4f (normal case %.4f)\n", plan.MLU, plan.NormalMLU)
	}
	if plan.CongestionFree() {
		fmt.Println("certificate: congestion-free under every covered failure scenario (Theorem 1)")
	} else {
		fmt.Println("certificate: NOT congestion-free (MLU > 1); reroutes are best-effort")
	}

	if *fprint {
		fp, err := plan.WireFingerprint()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan digest: %016x\n", fp)
	}

	if *save != "" {
		w, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := plan.Encode(w); err != nil {
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("plan written to %s\n", *save)
	}

	if *verify > 0 {
		rep, err := plan.Verify(*verify, *verifyCap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\naudit over %d scenarios (up to %d failures): worst MLU %.4f at %v, %d partitions, %d violations of the plan bound\n",
			rep.Scenarios, *verify, rep.WorstMLU, rep.WorstScenario, rep.Partitions, rep.Violations)
		// A degradation-protected plan is additionally audited against
		// sampled in-budget degradations, node outages, and — when a surge
		// envelope was requested — the surged matrix itself.
		if dm, ok := plan.Model.(core.DegradationModel); ok {
			scs := core.SampleDegradations(g, dm, 64, *seed)
			scs = append(scs, core.NodeScenarios(g)...)
			if spec.Surges() {
				scs = append(scs, spec.SurgeSpec().Scenario(d))
			}
			rep, err := plan.VerifyScenarios(scs)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("envelope audit over %d scenarios (%v): worst MLU %.4f at %s, %d partitions, %d violations\n",
				rep.Scenarios, rep.ByKind, rep.WorstMLU, rep.Worst.Describe(), rep.Partitions, rep.Violations)
		}
	}

	if *swapTo != "" {
		r, err := os.Open(*swapTo)
		if err != nil {
			fatal(err)
		}
		next, err := core.DecodePlan(r, g)
		r.Close()
		if err != nil {
			fatal(err)
		}
		printSwap(plan, next, reg)
	}

	if *fail != "" || *degrLinks != "" {
		st := core.NewState(plan)
		var failed []graph.LinkID
		if *fail != "" {
			for _, tok := range strings.Split(*fail, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil || id < 0 || id >= g.NumLinks() {
					fatal(fmt.Errorf("bad link id %q", tok))
				}
				failed = append(failed, graph.LinkID(id))
			}
			if err := st.FailAll(failed...); err != nil {
				fatal(err)
			}
		}
		degraded, err := core.ParseDegradations(*degrLinks, g.NumLinks())
		if err != nil {
			fatal(err)
		}
		for _, dg := range degraded {
			if err := st.Degrade(dg.Link, dg.Frac); err != nil {
				fatal(err)
			}
		}
		what := fmt.Sprintf("failing %v", failed)
		if len(degraded) > 0 {
			what += fmt.Sprintf(" and degrading %q", *degrLinks)
		}
		fmt.Printf("\nafter %s: MLU = %.4f, lost demand %.2f Mbps\n",
			what, st.MLU(), st.LostDemand())
		if *detours {
			for _, e := range failed {
				l := g.Link(e)
				fmt.Printf("detour for link %d (%s -> %s):\n", e, g.Node(l.Src), g.Node(l.Dst))
				xi := st.Detour(e)
				for le, v := range xi {
					if v > 1e-9 {
						dl := g.Link(graph.LinkID(le))
						fmt.Printf("  %5.1f%% via %s -> %s\n", v*100, g.Node(dl.Src), g.Node(dl.Dst))
					}
				}
			}
		}
		if *stage {
			printStaged(plan, failed, reg)
		}
	} else if *stage {
		fatal(fmt.Errorf("-stage needs a -fail link list"))
	}
}

// printStaged schedules the failure set into staged rounds and prints
// each round's feasibility evidence: the rescaled state's MLU, the
// asynchronous-application envelope, and the exact LP certificate.
func printStaged(plan *core.Plan, failed []graph.LinkID, reg *obs.Registry) {
	seq, err := transition.Schedule(plan, failed, transition.Options{Obs: reg})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nstaged reconfiguration: %d rounds, transient MLU %.4f, %d LP solves, %d bytes on the wire\n",
		len(seq.Rounds), seq.TransientMLU, seq.LPSolves, seq.WireBytes())
	for _, r := range seq.Rounds {
		kind := "activate"
		if r.Kind == transition.Swap {
			kind = "swap"
		}
		fmt.Printf("  round %d [%s]", r.Seq, kind)
		if len(r.Links) > 0 {
			fmt.Printf(" links %v", r.Links)
		}
		fmt.Printf(": MLU %.4f, envelope %.4f", r.StateMLU, r.EnvelopeMLU)
		if !math.IsNaN(r.LPMLU) {
			fmt.Printf(", LP certificate %.4f", r.LPMLU)
		}
		if r.Fallback {
			fmt.Print(", LP interim detour")
		}
		if r.CongestionFree {
			fmt.Print(", congestion-free")
		} else {
			fmt.Print(", OVERLOADED")
		}
		fmt.Printf(", %d B\n", r.Delta.WireSize())
	}
	if seq.CongestionFree {
		fmt.Println("verdict: congestion-free staged transition — every intermediate configuration within capacity (Theorem 2)")
	} else {
		fmt.Printf("verdict: best-effort transition; transient MLU bounded by %.4f\n", seq.TransientMLU)
	}
}

// printSwap schedules the old→next plan migration into per-commodity
// batches and prints each round's feasibility evidence: the migrated OD
// count, the post-round state MLU, the asynchronous mixing envelope, and
// the exact LP certificate.
func printSwap(old, next *core.Plan, reg *obs.Registry) {
	seq, err := transition.SchedulePlanSwap(old, next, transition.Options{Obs: reg})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nplan swap: %d rounds, transient MLU %.4f, %d LP solves, %d bytes on the wire\n",
		len(seq.Rounds), seq.TransientMLU, seq.LPSolves, seq.WireBytes())
	for _, r := range seq.Rounds {
		fmt.Printf("  round %d [%d ODs]: MLU %.4f, envelope %.4f", r.Seq, len(r.ODs), r.StateMLU, r.EnvelopeMLU)
		if !math.IsNaN(r.LPMLU) {
			fmt.Printf(", LP certificate %.4f", r.LPMLU)
		}
		if r.CertifyErr != nil {
			fmt.Printf(", certify error: %v", r.CertifyErr)
		}
		if r.Fallback {
			fmt.Print(", LP interim routing")
		}
		if r.CongestionFree {
			fmt.Print(", congestion-free")
		} else {
			fmt.Print(", OVERLOADED")
		}
		fmt.Printf(", %d B\n", r.Delta.WireSize())
	}
	if seq.CongestionFree {
		fmt.Println("verdict: congestion-free plan swap — every mixed old/new configuration within capacity")
	} else {
		fmt.Printf("verdict: best-effort swap; transient MLU bounded by %.4f\n", seq.TransientMLU)
	}
}

func lookupTopo(name string) (*graph.Graph, error) {
	switch strings.ToLower(name) {
	case "abilene":
		return topo.Abilene(), nil
	case "level3":
		return topo.Level3(), nil
	case "sbc":
		return topo.SBC(), nil
	case "uunet":
		return topo.UUNet(), nil
	case "generated":
		return topo.Generated(), nil
	case "generated1k":
		return topo.Generated1K(), nil
	case "usisp":
		return topo.USISP(), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func demandTotal(flagVal float64, g *graph.Graph) float64 {
	if flagVal > 0 {
		return flagVal
	}
	return 0.15 * g.TotalCapacity()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r3plan:", err)
	os.Exit(1)
}
