// Command r3sim runs the paper's simulation experiments: time series and
// sorted-scenario comparisons of R3 against OSPF reconvergence,
// CSPF-detour fast reroute, FCP, Path Splicing and per-scenario optimal
// detours, plus the tables and ablations.
//
// Usage:
//
//	r3sim -exp table1
//	r3sim -exp fig4 -effort 200 -days 7
//	r3sim -exp fig6 -failures 3
//	r3sim -exp ablation
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		which      = flag.String("exp", "table1", "experiment: table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation|degrade")
		failures   = flag.Int("failures", 2, "failure count for fig5/fig6/fig7 (2 or 3)")
		day        = flag.Int("day", 1, "day index for fig3 (0-6)")
		effort     = flag.Int("effort", 0, "precompute effort (0 = default)")
		optIter    = flag.Int("optiter", 0, "per-scenario optimal solver effort")
		scenarios  = flag.Int("scenarios", 0, "max sampled scenarios")
		days       = flag.Int("days", 0, "days for week-scale experiments")
		beta       = flag.Float64("beta", 1.1, "penalty envelope for fig9")
		degrade    = flag.Float64("degrade", 0.5, "degradation capacity floor alpha for -exp degrade")
		budget     = flag.Float64("budget", 1, "degradation budget B for -exp degrade")
		surge      = flag.Float64("surge", 0, "surge scale for -exp degrade (0 = no surge)")
		surgeFrac  = flag.Float64("surgefrac", 1, "fraction of OD pairs surged")
		seed       = flag.Int64("seed", 1, "random seed")
		shards     = flag.Int("shards", 0, "evaluation scenario shards (0 = auto; identical results at any count)")
		quick      = flag.Bool("quick", false, "reduced-scale smoke run")
		outFile    = flag.String("o", "", "write output to this file instead of stdout")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address")
		traceOut   = flag.String("trace-out", "", "write solver span traces to this JSON file at exit")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocs profile to this file at exit")
		verbose    = flag.Bool("v", false, "info-level logging")
	)
	flag.Parse()

	reg, obsCleanup, err := obs.SetupCLI(*debugAddr, *traceOut, *cpuProfile, *memProfile, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "r3sim:", err)
		os.Exit(1)
	}
	defer obsCleanup()

	o := exp.Options{
		Effort: *effort, OptIter: *optIter, MaxScenarios: *scenarios,
		Days: *days, Seed: *seed, Shards: *shards,
	}
	if *quick {
		o = exp.Quick()
		o.Shards = *shards
	}
	o.Obs = reg
	w := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "r3sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch *which {
	case "table1":
		exp.Table1(w)
	case "table2":
		exp.PrintTable2(w, exp.Table2(o))
	case "table3":
		exp.PrintTable3(w, exp.Table3(o))
	case "fig3":
		exp.Figure3(exp.NewUSISP(o), *day, o).Print(w)
	case "fig4":
		exp.Figure4(exp.NewUSISP(o), o).Print(w)
	case "fig5":
		exp.Figure5(exp.NewUSISP(o), *failures, o).Print(w)
	case "fig6":
		exp.RocketfuelFigure("SBC", *failures, o).Print(w)
	case "fig7":
		exp.RocketfuelFigure("Level3", *failures, o).Print(w)
	case "fig8":
		exp.Figure8(exp.NewUSISP(o), o).Print(w)
	case "fig9":
		exp.Figure9(exp.NewUSISP(o), *beta, o).Print(w)
	case "fig10":
		exp.Figure10(exp.NewUSISP(o), o).Print(w)
	case "degrade":
		spec := core.WorkloadSpec{Alpha: *degrade, Budget: *budget}
		if *surge > 1 {
			spec.Surge, spec.ODFrac = *surge, *surgeFrac
		}
		exp.DegradationSweep(spec, o).Print(w)
	case "ablation":
		exp.SolverGap(o).Print(w)
		exp.PrintEnvelopeSweep(w, exp.EnvelopeSweep([]float64{1.0, 1.05, 1.1, 1.2, math.Inf(1)}, o))
		exp.VirtualDemand(o).Print(w)
		exp.PrintHashSplit(w, exp.HashSplit([]int{4, 6, 8, 10}, 100000, o))
	default:
		fmt.Fprintf(os.Stderr, "r3sim: unknown experiment %q\n", *which)
		flag.Usage()
		os.Exit(2)
	}
}
