// Command r3emu runs the packet-level Abilene experiment (the paper's
// Emulab evaluation, §5.3): MPLS-ff+R3 or OSPF reconvergence under three
// sequential bidirectional link failures, reporting per-OD throughput,
// per-link intensity, per-egress loss (Figure 11), ping RTT (Figure 12),
// and the R3-vs-OSPF link intensity comparison (Figure 13).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/netem"
	"repro/internal/obs"
)

func main() {
	var (
		fig    = flag.String("fig", "11", "figure: 11, 12, 13 or sweep")
		phase  = flag.Float64("phase", 10, "seconds per failure phase")
		mbps   = flag.Float64("mbps", 220, "aggregate offered traffic")
		effort = flag.Int("effort", 120, "R3 precompute effort")
		seed   = flag.Int64("seed", 1, "packet jitter seed")

		chaos     = flag.Float64("chaos", 0, "chaos mode: drop this fraction of control packets (also enables fault injection); -fig sweep tabulates loss rates 0..30%")
		chaosSeed = flag.Int64("chaos-seed", 1, "chaos fault-injection seed (independent of -seed)")
		chaosRuns = flag.Int("chaos-runs", 8, "seeded runs per loss rate in -fig sweep")

		transitionF     = flag.Bool("transition", false, "compare staged (scheduler rounds over the staged-round flood) vs one-shot failure activation under chaos and exit")
		transitionSeeds = flag.Int("transition-seeds", 32, "chaos seeds for -transition")

		swapF     = flag.Bool("swap", false, "compare staged (per-commodity batched) vs one-shot plan swap under chaos and exit")
		swapSeeds = flag.Int("swap-seeds", 32, "chaos seeds for -swap")

		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address")
		traceOut   = flag.String("trace-out", "", "write solver span traces to this JSON file at exit")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocs profile to this file at exit")
		verbose    = flag.Bool("v", false, "info-level logging")
	)
	flag.Parse()

	reg, obsCleanup, err := obs.SetupCLI(*debugAddr, *traceOut, *cpuProfile, *memProfile, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "r3emu:", err)
		os.Exit(1)
	}
	defer obsCleanup()

	cfg := exp.EmulationConfig{
		PhaseSeconds: *phase, TotalMbps: *mbps, Effort: *effort, Seed: *seed,
		Obs: reg,
	}
	if *chaos > 0 {
		cfg.Chaos = netem.ChaosConfig{
			Enabled: true, Seed: *chaosSeed,
			CtrlDrop: *chaos, CtrlJitter: 0.002,
		}
	}
	if *transitionF {
		sum := exp.TransitionSweep(cfg, *transitionSeeds)
		exp.PrintTransitionSweep(sum, os.Stdout)
		return
	}
	if *swapF {
		sum := exp.SwapSweep(cfg, *swapSeeds)
		exp.PrintSwapSweep(sum, os.Stdout)
		return
	}
	switch *fig {
	case "11":
		r := exp.RunEmulation("MPLS-ff+R3", cfg)
		exp.Figure11(r, os.Stdout)
	case "12":
		r := exp.RunEmulation("MPLS-ff+R3", cfg)
		exp.Figure12(r, os.Stdout)
	case "13":
		r3 := exp.RunEmulation("MPLS-ff+R3", cfg)
		ospf := exp.RunEmulation("OSPF+recon", cfg)
		exp.Figure13(r3, ospf, os.Stdout)
	case "sweep":
		losses := []float64{0, 0.10, 0.20, 0.30}
		cfg.Seed = *chaosSeed
		rows := exp.ChaosLossSweep(cfg, losses, *chaosRuns)
		exp.PrintChaosSweep(rows, os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "r3emu: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
