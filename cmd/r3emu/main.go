// Command r3emu runs the packet-level Abilene experiment (the paper's
// Emulab evaluation, §5.3): MPLS-ff+R3 or OSPF reconvergence under three
// sequential bidirectional link failures, reporting per-OD throughput,
// per-link intensity, per-egress loss (Figure 11), ping RTT (Figure 12),
// and the R3-vs-OSPF link intensity comparison (Figure 13).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	var (
		fig    = flag.String("fig", "11", "figure: 11, 12 or 13")
		phase  = flag.Float64("phase", 10, "seconds per failure phase")
		mbps   = flag.Float64("mbps", 220, "aggregate offered traffic")
		effort = flag.Int("effort", 120, "R3 precompute effort")
		seed   = flag.Int64("seed", 1, "packet jitter seed")

		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics and /debug/pprof on this address")
		traceOut   = flag.String("trace-out", "", "write solver span traces to this JSON file at exit")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocs profile to this file at exit")
		verbose    = flag.Bool("v", false, "info-level logging")
	)
	flag.Parse()

	reg, obsCleanup, err := obs.SetupCLI(*debugAddr, *traceOut, *cpuProfile, *memProfile, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "r3emu:", err)
		os.Exit(1)
	}
	defer obsCleanup()

	cfg := exp.EmulationConfig{
		PhaseSeconds: *phase, TotalMbps: *mbps, Effort: *effort, Seed: *seed,
		Obs: reg,
	}
	switch *fig {
	case "11":
		r := exp.RunEmulation("MPLS-ff+R3", cfg)
		exp.Figure11(r, os.Stdout)
	case "12":
		r := exp.RunEmulation("MPLS-ff+R3", cfg)
		exp.Figure12(r, os.Stdout)
	case "13":
		r3 := exp.RunEmulation("MPLS-ff+R3", cfg)
		ospf := exp.RunEmulation("OSPF+recon", cfg)
		exp.Figure13(r3, ospf, os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "r3emu: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
