// Command r3topo inspects the built-in evaluation topologies (or a user
// topology file) and their synthetic traffic matrices.
//
// Usage:
//
//	r3topo -net abilene                 # nodes and links
//	r3topo -net usisp -groups          # SRLGs and MLGs
//	r3topo -net sbc -tm -total 5000    # gravity traffic matrix
//	r3topo -file mynet.topo -dump      # parse and re-emit a topology file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// builtin resolves a built-in topology by name, or nil.
func builtin(name string) *graph.Graph {
	switch name {
	case "abilene":
		return topo.Abilene()
	case "level3":
		return topo.Level3()
	case "sbc":
		return topo.SBC()
	case "uunet":
		return topo.UUNet()
	case "generated":
		return topo.Generated()
	case "usisp":
		return topo.USISP()
	}
	return nil
}

func main() {
	var (
		name   = flag.String("net", "abilene", "topology: abilene|level3|sbc|uunet|generated|usisp")
		file   = flag.String("file", "", "load a topology file instead of a built-in (see internal/topo format)")
		dump   = flag.Bool("dump", false, "write the topology in the text format and exit")
		groups = flag.Bool("groups", false, "print SRLGs and MLGs")
		tm     = flag.Bool("tm", false, "print a gravity traffic matrix")
		total  = flag.Float64("total", 1000, "total demand for -tm (Mbps)")
		seed   = flag.Int64("seed", 1, "gravity seed")
	)
	flag.Parse()

	var g *graph.Graph
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		g, err = topo.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		g = builtin(strings.ToLower(*name))
		if g == nil {
			fmt.Fprintf(os.Stderr, "r3topo: unknown topology %q\n", *name)
			os.Exit(2)
		}
	}

	if *dump {
		if err := topo.Format(os.Stdout, g); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(g)
	fmt.Printf("total capacity: %.0f Mbps, max degree: %d\n", g.TotalCapacity(), g.MaxDegree())
	for _, l := range g.Links() {
		fmt.Printf("link %3d: %-22s -> %-22s cap %8.0f Mbps, delay %5.1f ms, weight %.2f\n",
			l.ID, g.Node(l.Src), g.Node(l.Dst), l.Capacity, l.Delay, l.Weight)
	}

	if *groups {
		fmt.Printf("\nSRLGs (%d):\n", len(g.SRLGs()))
		for i, grp := range g.SRLGs() {
			fmt.Printf("  srlg %2d: %v\n", i, grp)
		}
		fmt.Printf("MLGs (%d):\n", len(g.MLGs()))
		for i, grp := range g.MLGs() {
			fmt.Printf("  mlg %2d: %v\n", i, grp)
		}
	}

	if *tm {
		m := traffic.Gravity(g, *total, *seed)
		fmt.Printf("\ngravity traffic matrix (total %.0f Mbps):\n", m.Total())
		if err := traffic.FormatMatrix(os.Stdout, m, func(id graph.NodeID) string { return g.Node(id) }); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r3topo:", err)
	os.Exit(1)
}
