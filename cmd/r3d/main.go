// Command r3d is the long-lived R3 planner daemon: it precomputes a
// protection plan at boot, serves it over HTTP, re-precomputes in the
// background when the topology or traffic matrix is updated, and swaps
// revisions atomically with a staged, LP-certified rollout attached.
//
// Usage:
//
//	r3d -net abilene -listen :8080
//	r3d -topo net.txt -traffic tm.txt -listen :8080 -solver lp
//
// API (see DESIGN.md §12):
//
//	GET  /v1/plan[?rev=N]      plan wire bytes (X-R3-Revision/-Digest headers)
//	GET  /v1/scenario?links=.. failure-scenario lookup (&stage=1 for rounds)
//	GET  /v1/revisions         retained revision log
//	GET  /v1/status            generation, breaker, cache stats
//	POST /v1/topology          replace the topology (202; rebuilds in background)
//	POST /v1/traffic           replace the traffic matrix (202; rebuilds)
//	POST /v1/rollback?rev=N    atomically restore a retained revision
//	GET  /healthz, /readyz     liveness / readiness
//	GET  /debug/...            obs metrics, traces and pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		name     = flag.String("net", "abilene", "topology: abilene|level3|sbc|uunet|generated|usisp")
		topoFile = flag.String("topo", "", "load a topology file instead of a built-in")
		tmFile   = flag.String("traffic", "", "load a traffic matrix file instead of gravity demands")
		f        = flag.Int("f", 1, "number of overlapping link failures to protect against")
		total    = flag.Float64("total", 0, "total demand in Mbps (default: 15% of capacity)")
		seed     = flag.Int64("seed", 1, "gravity traffic seed")
		solver   = flag.String("solver", "fw", "offline solver: fw|lp")
		effort   = flag.Int("effort", 200, "FW solver effort")
		workers  = flag.Int("workers", 0, "solver worker goroutines (0 = all CPUs)")
		envelope = flag.Float64("envelope", 1.1, "normal-case penalty envelope (0 to disable)")

		retain       = flag.Int("retain", 8, "revisions retained for rollback")
		cacheSize    = flag.Int("cache", 32, "plan cache capacity (unpinned entries)")
		rate         = flag.Float64("rate", 0, "per-client request rate limit in req/s (0 = unlimited)")
		burst        = flag.Int("burst", 10, "rate-limit burst size")
		breakerFails = flag.Int("breaker-failures", 3, "consecutive precompute failures before the circuit opens")
		breakerCool  = flag.Duration("breaker-cooldown", 30*time.Second, "open-circuit cooldown before a half-open probe")
		drainWait    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline after SIGTERM")

		verbose = flag.Bool("v", false, "info-level logging")
	)
	flag.Parse()
	obs.InitLogging(*verbose)
	reg := obs.NewRegistry()

	g, d, err := loadInputs(*name, *topoFile, *tmFile, *total, *seed)
	if err != nil {
		fatal(err)
	}
	pc := core.Config{
		Model:           core.ArbitraryFailures{F: *f},
		Iterations:      *effort,
		PenaltyEnvelope: *envelope,
		Workers:         *workers,
	}
	switch strings.ToLower(*solver) {
	case "fw":
		pc.Solver = core.SolverFW
	case "lp":
		pc.Solver = core.SolverLP
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}

	fmt.Printf("r3d: precomputing initial plan for %s (F=%d, solver %s)...\n", g.Name, *f, *solver)
	start := time.Now()
	srv, err := controlplane.New(controlplane.Config{
		Graph:            g,
		Traffic:          d,
		Precompute:       pc,
		Retain:           *retain,
		CacheSize:        *cacheSize,
		RateLimit:        *rate,
		RateBurst:        *burst,
		BreakerThreshold: *breakerFails,
		BreakerCooldown:  *breakerCool,
		Obs:              reg,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	rev := srv.Active()
	fmt.Printf("r3d: revision %d ready in %v (MLU %.4f, normal %.4f, digest %016x)\n",
		rev.ID, time.Since(start).Round(time.Millisecond), rev.Plan.MLU, rev.Plan.NormalMLU, rev.Digest)

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("r3d: listening on %s\n", *listen)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful drain: readiness flips first so load balancers stop
		// routing here, then in-flight requests get drainWait to finish.
		slog.Info("r3d: draining", "timeout", *drainWait)
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			slog.Warn("r3d: shutdown", "err", err)
		}
		fmt.Println("r3d: drained, exiting")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// loadInputs resolves the topology and traffic matrix from flags.
func loadInputs(name, topoFile, tmFile string, total float64, seed int64) (*graph.Graph, *traffic.Matrix, error) {
	var g *graph.Graph
	var err error
	if topoFile != "" {
		r, ferr := os.Open(topoFile)
		if ferr != nil {
			return nil, nil, ferr
		}
		g, err = topo.Parse(r)
		r.Close()
	} else {
		g, err = lookupTopo(name)
	}
	if err != nil {
		return nil, nil, err
	}
	var d *traffic.Matrix
	if tmFile != "" {
		r, ferr := os.Open(tmFile)
		if ferr != nil {
			return nil, nil, ferr
		}
		d, err = traffic.ParseMatrix(r, g.NumNodes(), g.NodeByName)
		r.Close()
		if err != nil {
			return nil, nil, err
		}
	} else {
		t := total
		if t <= 0 {
			t = 0.15 * g.TotalCapacity()
		}
		d = traffic.Gravity(g, t, seed)
	}
	return g, d, nil
}

func lookupTopo(name string) (*graph.Graph, error) {
	switch strings.ToLower(name) {
	case "abilene":
		return topo.Abilene(), nil
	case "level3":
		return topo.Level3(), nil
	case "sbc":
		return topo.SBC(), nil
	case "uunet":
		return topo.UUNet(), nil
	case "generated":
		return topo.Generated(), nil
	case "usisp":
		return topo.USISP(), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r3d:", err)
	os.Exit(1)
}
