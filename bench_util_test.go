package repro_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

// benchForce lets `go test -bench ... -force` replace BENCH_*.json
// results recorded on a machine with more CPUs than this one.
var benchForce = flag.Bool("force", false, "overwrite BENCH_*.json results recorded at a higher CPU count")

// benchKeepExisting reports whether an existing BENCH_*.json payload
// should be kept instead of overwritten: true when it records a cpus
// count higher than this machine's. Timings from a smaller machine would
// silently replace the stronger result otherwise — the repo's committed
// numbers should only ratchet toward better-provisioned runs.
func benchKeepExisting(existing []byte, cpus int) bool {
	var prev struct {
		CPUs int `json:"cpus"`
	}
	if json.Unmarshal(existing, &prev) != nil {
		return false
	}
	return prev.CPUs > cpus
}

// writeBenchFile writes a BENCH_*.json summary with the machine's CPU
// counts stamped in, refusing to clobber a result measured on a bigger
// machine unless -force is given.
func writeBenchFile(b *testing.B, path string, summary map[string]any) {
	b.Helper()
	if _, ok := summary["cpus"]; !ok {
		summary["cpus"] = runtime.NumCPU()
	}
	if _, ok := summary["gomaxprocs"]; !ok {
		summary["gomaxprocs"] = runtime.GOMAXPROCS(0)
	}
	if raw, err := os.ReadFile(path); err == nil && !*benchForce && benchKeepExisting(raw, runtime.NumCPU()) {
		b.Logf("%s: keeping existing result (recorded on more CPUs than this machine has; rerun with -force to overwrite)", path)
		return
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// TestBenchWriterGuard pins the overwrite policy: higher-cpus results are
// kept, equal-or-lower-cpus results (and unreadable files) are replaced.
func TestBenchWriterGuard(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		cpus int
		keep bool
	}{
		{"higher", `{"cpus": 16}`, 8, true},
		{"equal", `{"cpus": 8}`, 8, false},
		{"lower", `{"cpus": 4}`, 8, false},
		{"missing-field", `{"note": "x"}`, 8, false},
		{"garbage", `not json`, 8, false},
	}
	for _, tc := range cases {
		if got := benchKeepExisting([]byte(tc.raw), tc.cpus); got != tc.keep {
			t.Errorf("%s: benchKeepExisting = %v, want %v", tc.name, got, tc.keep)
		}
	}
}
