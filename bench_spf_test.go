// Incremental-SPF benchmarks (DESIGN.md §14): serial flat-kernel vs
// dynamic-tree precompute on the 100-node generated topology, plus the
// 1000-node scale preset, writing BENCH_spf.json. Run via
//
//	make bench-spf
//
// The plans are byte-identical across SPF modes (the benchmark asserts
// it), so the recorded ratios are pure single-thread wall-clock.
//
// Two configurations are timed on the 100-node topology:
//
//   - protection: base routing pinned to ECMP, only the protection
//     routing is optimized. This is the sweep the dynamic trees live in,
//     and the only configuration that is tractable at 1000 nodes — the
//     headline "speedup" field.
//   - joint: base + protection optimized together. The added base-routing
//     line search is dominated by its exp-cache evaluation, which is
//     SPF-independent, so Amdahl caps the end-to-end ratio well below the
//     kernel ratio; reported separately as "joint".
package repro_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// timeModePrecompute runs one serial Precompute under the given SPF mode
// and returns the wire bytes and wall-clock seconds. base may be nil
// (joint base+protection optimization).
func timeModePrecompute(b *testing.B, g *graph.Graph, d *traffic.Matrix, base *routing.Flow, mode spf.Mode) ([]byte, float64) {
	b.Helper()
	start := time.Now()
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: 20, Workers: 1,
		BaseRouting: base, SPF: mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	sec := time.Since(start).Seconds()
	wire, err := plan.EncodeBytes()
	if err != nil {
		b.Fatal(err)
	}
	return wire, sec
}

// modeRatio times flat vs incremental for one configuration, asserting
// byte-identical plans, and returns (flatSec, incSec).
func modeRatio(b *testing.B, g *graph.Graph, d *traffic.Matrix, base *routing.Flow) (float64, float64) {
	b.Helper()
	flatWire, flatSec := timeModePrecompute(b, g, d, base, spf.ModeFlat)
	incWire, incSec := timeModePrecompute(b, g, d, base, spf.ModeIncremental)
	if !bytes.Equal(flatWire, incWire) {
		b.Fatalf("plan bytes differ between flat (%d) and incremental (%d) modes",
			len(flatWire), len(incWire))
	}
	return flatSec, incSec
}

// BenchmarkIncrementalSPFSummary measures the dynamic-SPF kernel's
// effect on serial precompute wall-clock on the 100-node generated
// topology (byte-identical plans asserted in both configurations), then
// runs the 1000-node/5000-link Generated1K preset — sparse top-K gravity
// demand and a pinned ECMP base routing, the only tractable
// configuration at that scale — under the auto-resolved kernel. Results
// land in BENCH_spf.json via the guarded writer.
func BenchmarkIncrementalSPFSummary(b *testing.B) {
	g := topo.Generated()
	d := traffic.Gravity(g, 0.15*g.TotalCapacity(), 33)
	comms := routing.ODCommodities(g.NumNodes(), d.At)
	base := spf.ECMPFlow(g, comms, nil, spf.WeightCost(g))
	for i := 0; i < b.N; i++ {
		protFlat, protInc := modeRatio(b, g, d, base)
		jointFlat, jointInc := modeRatio(b, g, d, nil)

		g1k := topo.Generated1K()
		d1k := traffic.GravityTopK(g1k, 0.1*g1k.TotalCapacity(), 7, 4000)
		comms1k := routing.ODCommodities(g1k.NumNodes(), d1k.At)
		base1k := spf.ECMPFlow(g1k, comms1k, nil, spf.WeightCost(g1k))
		start := time.Now()
		plan1k, err := core.Precompute(g1k, d1k, core.Config{
			Model:       core.ArbitraryFailures{F: 1},
			BaseRouting: base1k,
			Iterations:  8,
		})
		if err != nil {
			b.Fatal(err)
		}
		sec1k := time.Since(start).Seconds()

		if i != 0 {
			continue
		}
		summary := map[string]any{
			"note": "serial wall-clock; plans are byte-identical across SPF modes (asserted), so the ratios are pure kernel speed",
			"generated100": map[string]any{
				"topology": g.Name, "nodes": g.NumNodes(), "links": g.NumLinks(),
				"iterations": 20, "workers": 1,
				"flat_seconds":        protFlat,
				"incremental_seconds": protInc,
				"speedup":             protFlat / protInc,
				"joint": map[string]any{
					"flat_seconds":        jointFlat,
					"incremental_seconds": jointInc,
					"speedup":             jointFlat / jointInc,
					"note":                "base+protection joint optimization; the base line search is SPF-independent, so Amdahl caps the end-to-end ratio",
				},
			},
			"generated1k": map[string]any{
				"topology": g1k.Name, "nodes": g1k.NumNodes(), "links": g1k.NumLinks(),
				"iterations": 8, "commodities": len(comms1k),
				"spf_mode": spf.ModeAuto.Resolve(g1k.NumNodes()).String(),
				"seconds":  sec1k,
				"mlu":      plan1k.MLU,
			},
		}
		writeBenchFile(b, "BENCH_spf.json", summary)
		b.Logf("generated100 protection: flat %.2fs vs incremental %.2fs (%.2fx); joint: %.2fs vs %.2fs (%.2fx); generated1k: %.1fs for %d iterations",
			protFlat, protInc, protFlat/protInc, jointFlat, jointInc, jointFlat/jointInc, sec1k, 8)
		b.ReportMetric(protFlat/protInc, "spf-speedup")
	}
}
