// Frank–Wolfe hot-path benchmarks (DESIGN.md §9): the flat SPF kernel,
// the partial-selection worst-load evaluation, a full Precompute with
// allocation accounting, and a summary benchmark that times the serial
// solver on the 100-node generated topology against the committed
// BENCH_parallel.json baseline and writes BENCH_fw.json. Run via
// `make bench-fw`; CI runs each once (-benchtime=1x) as a smoke check.
package repro_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spf"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// BenchmarkSPF measures the allocation-free kernel on the generated
// topology (100 nodes, 460 links) with a warm scratch: reverse Dijkstra
// plus path extraction, the solver's per-oracle-call shape. The
// acceptance bar is 0 allocs/op.
func BenchmarkSPF(b *testing.B) {
	g := topo.Generated()
	c := g.CSR()
	nL := g.NumLinks()
	cost := make([]float64, nL)
	for e := 0; e < nL; e++ {
		cost[e] = g.Link(graph.LinkID(e)).Weight
	}
	var down graph.LinkSet
	down.Add(3)
	var s spf.Scratch
	spf.SPFTo(c, 0, cost, &down, &s) // warm
	buf := make([]graph.LinkID, 0, c.N)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := graph.NodeID(i % c.N)
		spf.SPFTo(c, dst, cost, &down, &s)
		src := graph.NodeID((i + 1) % c.N)
		buf = spf.PathFromNext(c, src, s.Next, buf[:0])
	}
}

// BenchmarkWorstLoad measures the inner-maximization evaluation over a
// generated-topology-sized column for small F (insertion buffer) and
// large F (quickselect partial selection).
func BenchmarkWorstLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	v := make([]float64, 460)
	for i := range v {
		v[i] = rng.Float64() * 100
	}
	for _, f := range []int{1, 2, 4, 40} {
		m := core.ArbitraryFailures{F: f}
		b.Run(fmt.Sprintf("F%d", f), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += m.WorstLoad(v)
			}
			_ = sink
		})
	}
}

// BenchmarkPrecompute runs the full solver on SBC at a scale CI can
// afford once per run, with allocation accounting: the arena refactor
// shows up as a near-flat allocs/op count regardless of iteration count.
func BenchmarkPrecompute(b *testing.B) {
	g := topo.SBC()
	d := traffic.Gravity(g, 0.1*g.TotalCapacity(), 35)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Precompute(g, d, core.Config{
			Model: core.ArbitraryFailures{F: 1}, Iterations: 20, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFWSummary times the serial Precompute on the generated
// topology — the exact configuration BENCH_parallel.json records — and
// writes BENCH_fw.json comparing against that committed baseline. The
// plan bytes are unchanged by the hot-path work, so the ratio is pure
// single-thread wall-clock.
func BenchmarkFWSummary(b *testing.B) {
	baseline := 0.0
	if raw, err := os.ReadFile("BENCH_parallel.json"); err == nil {
		var prev struct {
			Precompute struct {
				SerialSeconds float64 `json:"serial_seconds"`
			} `json:"precompute"`
		}
		if json.Unmarshal(raw, &prev) == nil {
			baseline = prev.Precompute.SerialSeconds
		}
	}

	g := topo.Generated()
	d := traffic.Gravity(g, 0.15*g.TotalCapacity(), 33)
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := core.Precompute(g, d, core.Config{
			Model: core.ArbitraryFailures{F: 1}, Iterations: 20, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
		after := time.Since(start).Seconds()

		if i != 0 {
			continue
		}
		summary := map[string]any{
			"topology":       g.Name,
			"nodes":          g.NumNodes(),
			"links":          g.NumLinks(),
			"iterations":     20,
			"workers":        1,
			"cpus":           runtime.NumCPU(),
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"note":           "before = committed BENCH_parallel.json serial baseline (pre flat-kernel hot path); plans are byte-identical before and after",
			"before_seconds": baseline,
			"after_seconds":  after,
		}
		if baseline > 0 {
			summary["speedup"] = baseline / after
			b.ReportMetric(baseline/after, "speedup")
		}
		writeBenchFile(b, "BENCH_fw.json", summary)
		b.Logf("serial precompute %.2fs (baseline %.2fs, %.2fx) on %s", after, baseline, baseline/after, g.Name)
	}
}
