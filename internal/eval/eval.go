// Package eval drives the paper's evaluation: failure-scenario
// enumeration and sampling, the R3 plan wrapped as a protection scheme,
// and the engine computing bottleneck traffic intensity and performance
// ratio (bottleneck ÷ optimal flow-based routing's bottleneck) per
// scenario — the two metrics every figure in §5 is built from.
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/protect"
	"repro/internal/traffic"
)

// R3Scheme adapts a precomputed R3 plan to the protect.Scheme interface:
// for each failure scenario it replays online reconfiguration from the
// plan and reports the resulting loads.
type R3Scheme struct {
	// Label names the scheme in output (e.g. "MPLS-ff+R3", "OSPF+R3").
	Label string
	Plan  *core.Plan
}

// Name implements protect.Scheme.
func (s *R3Scheme) Name() string { return s.Label }

// Loads implements protect.Scheme.
func (s *R3Scheme) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	st := core.NewState(s.Plan)
	st.SetDemands(d.At)
	for _, e := range failed.IDs() {
		if err := st.Fail(e); err != nil {
			panic(fmt.Sprintf("eval: %v", err))
		}
	}
	return st.Loads(), st.LostDemand()
}

// ScenarioScheme is a Scheme that can replay full scenarios — surges and
// partial capacity degradations, not just hard failures. The engine
// detects it and hands such schemes the whole scenario (with the base,
// unsurged matrix; the scheme applies the surge itself).
type ScenarioScheme interface {
	protect.Scheme
	ScenarioLoads(sc core.Scenario, d *traffic.Matrix) ([]float64, float64)
}

// ScenarioLoads implements ScenarioScheme: online reconfiguration replays
// the surge, then the failures, then the degradations.
func (s *R3Scheme) ScenarioLoads(sc core.Scenario, d *traffic.Matrix) ([]float64, float64) {
	st := core.NewState(s.Plan)
	st.SetDemands(d.At)
	if err := st.ApplyScenario(sc); err != nil {
		panic(fmt.Sprintf("eval: %v", err))
	}
	return st.Loads(), st.LostDemand()
}

// SingleLinks enumerates every single-link failure scenario.
func SingleLinks(g *graph.Graph) []graph.LinkSet {
	out := make([]graph.LinkSet, g.NumLinks())
	for e := 0; e < g.NumLinks(); e++ {
		out[e] = graph.NewLinkSet(graph.LinkID(e))
	}
	return out
}

// SingleEvents enumerates single failure events: one scenario per SRLG
// and per MLG registered on the graph (the paper's single-failure-event
// model for US-ISP). Graphs without groups fall back to duplex link
// pairs: a fiber cut takes both directions.
func SingleEvents(g *graph.Graph) []graph.LinkSet {
	var out []graph.LinkSet
	for _, grp := range g.SRLGs() {
		out = append(out, graph.NewLinkSet(grp...))
	}
	for _, grp := range g.MLGs() {
		out = append(out, graph.NewLinkSet(grp...))
	}
	if out == nil {
		out = DuplexPairs(g)
	}
	return out
}

// DuplexPairs enumerates one scenario per bidirectional link: both
// directions fail together, as in a fiber cut.
func DuplexPairs(g *graph.Graph) []graph.LinkSet {
	var out []graph.LinkSet
	seen := make([]bool, g.NumLinks())
	for _, l := range g.Links() {
		if seen[l.ID] {
			continue
		}
		seen[l.ID] = true
		if l.Reverse >= 0 {
			seen[l.Reverse] = true
			out = append(out, graph.NewLinkSet(l.ID, l.Reverse))
		} else {
			out = append(out, graph.NewLinkSet(l.ID))
		}
	}
	return out
}

// AllPairs enumerates every unordered pair of base events (the paper's
// "all two-link failures").
func AllPairs(events []graph.LinkSet) []graph.LinkSet {
	var out []graph.LinkSet
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			out = append(out, events[i].Union(events[j]))
		}
	}
	return out
}

// Sample draws n distinct random unions of k base events, seeded for
// reproducibility (the paper samples ~1100 three- and four-link
// scenarios). Each attempt draws its k distinct indices directly with
// Floyd's algorithm — O(k) random numbers instead of the full O(|events|)
// permutation a Perm-and-truncate draw would cost per attempt. The
// sequence for a given seed differs from the pre-Floyd implementation
// (fewer RNG draws per attempt); any fixed seed remains reproducible.
func Sample(events []graph.LinkSet, k, n int, seed int64) []graph.LinkSet {
	if k <= 0 || k > len(events) {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	var out []graph.LinkSet
	idx := make([]int, 0, k)
	for attempts := 0; len(out) < n && attempts < 50*n; attempts++ {
		// Floyd's uniform k-subset sample over [0, len(events)).
		idx = idx[:0]
		contains := func(v int) bool {
			for _, x := range idx {
				if x == v {
					return true
				}
			}
			return false
		}
		for j := len(events) - k; j < len(events); j++ {
			if t := rng.Intn(j + 1); contains(t) {
				idx = append(idx, j)
			} else {
				idx = append(idx, t)
			}
		}
		sort.Ints(idx)
		key := fmt.Sprint(idx)
		if seen[key] {
			continue
		}
		seen[key] = true
		s := events[idx[0]]
		for _, i := range idx[1:] {
			s = s.Union(events[i])
		}
		out = append(out, s)
	}
	return out
}

// FilterConnected drops scenarios that disconnect the network. The
// paper's congestion metrics exclude demand lost to partitions (Theorem 1
// is stated modulo reachability); performance ratios on partitioned
// topologies measure partition artifacts rather than protection quality,
// so the multi-failure figures evaluate connectivity-preserving scenarios.
func FilterConnected(g *graph.Graph, scenarios []graph.LinkSet) []graph.LinkSet {
	var out []graph.LinkSet
	for _, sc := range scenarios {
		if g.Connected(sc.Alive()) {
			out = append(out, sc)
		}
	}
	return out
}

// Result is the evaluation of one scenario.
type Result struct {
	Scenario graph.LinkSet
	// Kind labels the scenario class ("failure", "degradation", "surge",
	// "node") so mixed sweeps stay attributable per row.
	Kind string
	// Spec is the full scenario (degradations, surge parameters); for plain
	// failure evaluations it just wraps Scenario.
	Spec core.Scenario
	// Bottleneck is the bottleneck traffic intensity per scheme name.
	Bottleneck map[string]float64
	// Lost is the dropped demand per scheme name.
	Lost map[string]float64
	// Optimal is the optimal flow-based routing's bottleneck for the
	// scenario (the performance-ratio denominator).
	Optimal float64
}

// Ratio returns scheme's performance ratio for this scenario. Ratios are
// clamped below at 1 (the optimal is a lower bound; the approximate
// solver can land a scheme marginally under it). A zero optimal with a
// positive scheme bottleneck returns +Inf: the scheme congests a
// scenario that optimal routing carries load-free, and the old answer of
// 1 silently masked that. Zero over zero is 1 (both idle). SortedRatios
// sorts +Inf last, so CDF-style figures surface such scenarios at the
// tail instead of hiding them at the origin.
func (r *Result) Ratio(scheme string) float64 {
	b := r.Bottleneck[scheme]
	if r.Optimal == 0 {
		if b > 0 {
			return math.Inf(1)
		}
		return 1
	}
	ratio := b / r.Optimal
	if ratio < 1 {
		return 1
	}
	return ratio
}

// Engine evaluates schemes over scenarios on a fixed topology.
type Engine struct {
	G *graph.Graph
	// Schemes are evaluated on every scenario. Scheme implementations in
	// internal/protect and R3Scheme are safe for the engine's concurrent
	// use.
	Schemes []protect.Scheme
	// OptimalIterations is the solver effort for the per-scenario optimal
	// baseline (default 200; ignored when ExactOptimal is set).
	OptimalIterations int
	// ExactOptimal computes the per-scenario optimal denominator with the
	// exact LP solver instead of Frank–Wolfe. The engine solves the
	// no-failure scenario serially first and warm-starts every scenario's
	// solve from that basis (set once, so results are deterministic at
	// any worker count); connectivity-preserving scenarios share one LP
	// shape and typically re-solve in a few dual-simplex pivots. Intended
	// for small topologies.
	ExactOptimal bool
	// Workers bounds evaluation concurrency (default GOMAXPROCS).
	Workers int
	// Shards partitions the scenario list into contiguous index-ordered
	// shards (par.ShardRanges): shards are evaluated concurrently, while
	// scenarios within a shard run serially in index order on one worker,
	// each shard owning a private optimal-baseline instance — and, in
	// exact mode, a private warm-basis chain seeded from its own
	// no-failure solve. Cold-start LP solves are deterministic, so every
	// shard's seed basis is bitwise the basis the unsharded engine
	// publishes, and results stay byte-identical at every shard and
	// worker count. 0 selects min(32, ceil(scenarios/8)); values are
	// clamped to the scenario count. 1 evaluates everything on a single
	// serial chain.
	Shards int
	// Obs, when non-nil, receives evaluation metrics: the per-scenario
	// latency histogram "eval.scenario_us", the running "eval.scenarios"
	// count, "eval.scenarios_per_sec" over the last Evaluate call, the
	// running "eval.shards" count of shards executed, and
	// "eval.bottleneck_links" tallying how often each link is the
	// bottleneck across scheme evaluations. Nil disables all of it.
	Obs *obs.Registry
}

// resolveShards maps the Shards knob to a concrete shard count for n
// scenarios. The auto policy targets ~8 scenarios per shard, capped at 32
// shards: enough shards to keep a 16-worker pool fed, few enough that the
// per-shard optimal-baseline seed solve stays amortized.
func (en *Engine) resolveShards(n int) int {
	if en.Shards > 0 {
		return en.Shards
	}
	s := (n + 7) / 8
	if s > 32 {
		s = 32
	}
	return s
}

// bottleneckLink returns the index of the most-utilized alive link, or -1
// when every link is failed or idle. It mirrors protect.Bottleneck's
// utilization convention (including degraded effective capacities) so the
// tally names the link behind that metric.
func bottleneckLink(g *graph.Graph, failed graph.LinkSet, capScale []float64, loads []float64) int {
	best, worst := -1, 0.0
	for e, l := range loads {
		if failed.Contains(graph.LinkID(e)) {
			continue
		}
		c := g.Link(graph.LinkID(e)).Capacity
		if capScale != nil {
			c *= capScale[e]
		}
		if u := l / c; u > worst {
			worst, best = u, e
		}
	}
	return best
}

// Evaluate runs every scheme on every scenario for the given demand.
// The scenario list is partitioned into contiguous shards (see Shards);
// shards are independent and evaluated concurrently on the shared
// internal/par pool substrate, scenarios within a shard serially in index
// order. Every result lands in its scenario's slot, so the output order
// (and content) is independent of scheduling, shard count, and worker
// count.
func (en *Engine) Evaluate(d *traffic.Matrix, scenarios []graph.LinkSet) []Result {
	return en.EvaluateScenarios(d, FailureScenarios(scenarios))
}

// FailureScenarios wraps bare hard-failure sets as core.Scenario values —
// the adapter between the classic enumerators above and the generalized
// engine entry point.
func FailureScenarios(sets []graph.LinkSet) []core.Scenario {
	out := make([]core.Scenario, len(sets))
	for i, s := range sets {
		out[i] = core.FailureScenario(s)
	}
	return out
}

// EvaluateScenarios is Evaluate over generalized scenarios: hard failures,
// partial capacity degradations, demand surges and node outages. Schemes
// implementing ScenarioScheme (R3's online reconfiguration) replay the
// full scenario; the others reroute around the hard failures under the
// surged demand but cannot react to capacity degradation — every scheme
// is then judged against the scenario's effective (degraded) capacities,
// as is the optimal denominator. Pure-failure scenarios take exactly the
// classic code paths, so Evaluate's results are unchanged.
func (en *Engine) EvaluateScenarios(d *traffic.Matrix, scenarios []core.Scenario) []Result {
	ranges := par.ShardRanges(len(scenarios), en.resolveShards(len(scenarios)))
	opts := make([]*protect.Optimal, len(ranges))
	for si := range opts {
		opts[si] = &protect.Optimal{G: en.G, Iterations: en.OptimalIterations, Exact: en.ExactOptimal, Obs: en.Obs}
		if en.ExactOptimal {
			// Seed each shard's warm-start basis serially from its own
			// no-failure solve before any concurrency. A cold-start LP
			// solve is deterministic, so every shard publishes the same
			// basis bits the single shared instance would have, and no
			// shard's chain ever observes another shard's state: results
			// are byte-identical across shard and worker counts.
			opts[si].Loads(graph.NewLinkSet(), d)
		}
	}
	results := make([]Result, len(scenarios))

	// Metric handles from a nil registry are nil and every operation on
	// them is a no-op, so the loop below records unconditionally. The
	// handle types are concurrency-safe (atomics / striped locks), so the
	// pool workers share them directly.
	g := en.G
	scenarioUS := en.Obs.Histogram("eval.scenario_us", obs.ExpBounds(10, 2, 22))
	scenarioCt := en.Obs.Counter("eval.scenarios")
	rate := en.Obs.FloatGauge("eval.scenarios_per_sec")
	bottle := en.Obs.Vec("eval.bottleneck_links", g.NumLinks(), func(e int) string {
		l := g.Link(graph.LinkID(e))
		return g.Node(l.Src) + "->" + g.Node(l.Dst)
	})
	live := en.Obs != nil
	evalStart := time.Now()
	en.Obs.Counter("eval.shards").Add(int64(len(ranges)))

	pool := par.New(en.Workers)
	// Warm lazily initialized scheme caches serially so the concurrent
	// shards only read them. (A single shard is already serial.)
	if len(ranges) > 1 && pool.Workers() > 1 {
		for _, s := range en.Schemes {
			s.Loads(scenarios[0].Failed, d)
		}
	}

	pool.ForEach(len(ranges), func(si int) {
		opt := opts[si]
		for i := ranges[si][0]; i < ranges[si][1]; i++ {
			start := time.Now()
			sc := scenarios[i]
			res := Result{
				Scenario:   sc.Failed,
				Kind:       string(sc.EffectiveKind()),
				Spec:       sc,
				Bottleneck: make(map[string]float64, len(en.Schemes)),
				Lost:       make(map[string]float64, len(en.Schemes)),
			}
			// nil for pure failures, so those stay on the classic
			// (bit-identical) arithmetic.
			capScale := sc.CapScale(en.G.NumLinks())
			dEff := sc.SurgeDemand(d)
			ol, _ := opt.ScenarioLoads(sc.Failed, capScale, dEff)
			res.Optimal = protect.BottleneckScaled(en.G, sc.Failed, capScale, ol)
			for _, s := range en.Schemes {
				var loads []float64
				var lost float64
				if ss, ok := s.(ScenarioScheme); ok {
					// The scheme replays the full scenario itself, from the
					// base (unsurged) matrix.
					loads, lost = ss.ScenarioLoads(sc, d)
				} else {
					loads, lost = s.Loads(sc.Failed, dEff)
				}
				res.Bottleneck[s.Name()] = protect.BottleneckScaled(en.G, sc.Failed, capScale, loads)
				res.Lost[s.Name()] = lost
				if live {
					if e := bottleneckLink(g, sc.Failed, capScale, loads); e >= 0 {
						bottle.Add(e, 1)
					}
				}
			}
			results[i] = res
			scenarioUS.Observe(time.Since(start).Microseconds())
			scenarioCt.Inc()
		}
	})
	if live && len(scenarios) > 0 {
		if secs := time.Since(evalStart).Seconds(); secs > 0 {
			rate.Set(float64(len(scenarios)) / secs)
		}
	}
	return results
}

// WorstCase returns, for each scheme, the maximum bottleneck across the
// results (the paper's "worst case performance upon all possible single
// failure events" per interval).
func WorstCase(results []Result) map[string]float64 {
	worst := make(map[string]float64)
	for _, r := range results {
		for name, b := range r.Bottleneck {
			if b > worst[name] {
				worst[name] = b
			}
		}
	}
	return worst
}

// SortedRatios returns the performance ratios of one scheme across the
// results, ascending — the x-axis ordering used by Figures 4–7.
func SortedRatios(results []Result, scheme string) []float64 {
	out := make([]float64, len(results))
	for i := range results {
		out[i] = results[i].Ratio(scheme)
	}
	sort.Float64s(out)
	return out
}

// SortedBottlenecks returns one scheme's bottleneck intensities sorted
// ascending (Figure 8's y-axis).
func SortedBottlenecks(results []Result, scheme string) []float64 {
	out := make([]float64, len(results))
	for i := range results {
		out[i] = results[i].Bottleneck[scheme]
	}
	sort.Float64s(out)
	return out
}

// TopWorst returns the n scenarios with the highest optimal bottleneck
// (used for the paper's "top 100 worst-case scenarios" in Figure 8).
func TopWorst(results []Result, n int) []Result {
	cp := append([]Result(nil), results...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Optimal > cp[j].Optimal })
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n]
}

// ClassBottlenecks evaluates per-class bottleneck intensity for
// prioritized R3 (Figure 8): the class's own traffic is routed with the
// reconfigured base routing and measured alone on each link.
func ClassBottlenecks(plan *core.Plan, classes map[traffic.Class]*traffic.Matrix, failed graph.LinkSet) map[traffic.Class]float64 {
	out := make(map[traffic.Class]float64, len(classes))
	for cls, d := range classes {
		st := core.NewState(plan)
		st.SetDemands(d.At)
		for _, e := range failed.IDs() {
			if err := st.Fail(e); err != nil {
				panic(fmt.Sprintf("eval: %v", err))
			}
		}
		out[cls] = protect.Bottleneck(plan.G, failed, st.Loads())
	}
	return out
}
