package eval

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/protect"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func TestFilterConnected(t *testing.T) {
	g := topo.Abilene()
	sea, _ := g.NodeByName("Seattle")
	// Seattle has exactly two duplex links; cutting both partitions it.
	out := g.Out(sea)
	var cut graph.LinkSet
	for _, id := range out {
		cut.Add(id)
		cut.Add(g.Link(id).Reverse)
	}
	keep := graph.NewLinkSet(0, 1)
	got := FilterConnected(g, []graph.LinkSet{cut, keep})
	if len(got) != 1 || !got[0].Equal(keep) {
		t.Fatalf("FilterConnected = %v", got)
	}
	if got := FilterConnected(g, nil); got != nil {
		t.Fatalf("nil scenarios -> %v", got)
	}
}

func TestEngineParallelMatchesSerial(t *testing.T) {
	g := topo.Abilene()
	d := traffic.Gravity(g, 250, 3)
	schemes := []protect.Scheme{
		&protect.OSPFRecon{G: g},
		&protect.CSPFDetour{G: g},
		&protect.FCP{G: g},
	}
	scenarios := SingleLinks(g)[:10]
	serial := (&Engine{G: g, Schemes: schemes, OptimalIterations: 40, Workers: 1}).Evaluate(d, scenarios)
	parallel := (&Engine{G: g, Schemes: schemes, OptimalIterations: 40, Workers: 4}).Evaluate(d, scenarios)
	for i := range serial {
		if !serial[i].Scenario.Equal(parallel[i].Scenario) {
			t.Fatalf("scenario order changed")
		}
		for name, b := range serial[i].Bottleneck {
			// Deterministic schemes must agree exactly regardless of
			// worker count (the optimal MCF is also deterministic).
			if parallel[i].Bottleneck[name] != b {
				t.Fatalf("scenario %d scheme %s: serial %v vs parallel %v",
					i, name, b, parallel[i].Bottleneck[name])
			}
		}
		if serial[i].Optimal != parallel[i].Optimal {
			t.Fatalf("scenario %d optimal differs: %v vs %v",
				i, serial[i].Optimal, parallel[i].Optimal)
		}
	}
}

func TestEngineLostAccounting(t *testing.T) {
	g := topo.Abilene()
	d := traffic.Gravity(g, 250, 3)
	sea, _ := g.NodeByName("Seattle")
	var cut graph.LinkSet
	for _, id := range g.Out(sea) {
		cut.Add(id)
		cut.Add(g.Link(id).Reverse)
	}
	en := &Engine{G: g, Schemes: []protect.Scheme{&protect.OSPFRecon{G: g}}, OptimalIterations: 30}
	res := en.Evaluate(d, []graph.LinkSet{cut})
	if res[0].Lost["OSPF+recon"] <= 0 {
		t.Fatalf("partition lost nothing: %v", res[0].Lost)
	}
}
