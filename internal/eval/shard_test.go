package eval

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// shardDemand builds a deterministic asymmetric demand for the shard
// tests: a rotation matrix so every node sends, with enough load that
// optimal bottlenecks are strictly positive.
func shardDemand(g *graph.Graph) *traffic.Matrix {
	d := traffic.NewMatrix(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		d.Set(graph.NodeID(n), graph.NodeID((n+3)%g.NumNodes()), 150)
	}
	return d
}

// TestEngineShardDeterminism pins the shard/merge contract: evaluation
// results are byte-identical at every shard count crossed with every
// worker count, including the auto policy, single-shard, and
// more-shards-than-scenarios clamping.
func TestEngineShardDeterminism(t *testing.T) {
	g := topo.Abilene()
	d := shardDemand(g)
	scenarios := FilterConnected(g, SingleLinks(g))[:9]

	run := func(shards, workers int) []Result {
		en := &Engine{
			G:            g,
			Schemes:      []protect.Scheme{&protect.OSPFRecon{G: g}},
			ExactOptimal: true,
			Workers:      workers,
			Shards:       shards,
		}
		return en.Evaluate(d, scenarios)
	}
	ref := run(1, 1)
	for _, r := range ref {
		if r.Optimal <= 0 {
			t.Fatalf("reference optimal bottleneck %v", r.Optimal)
		}
	}
	for _, shards := range []int{0, 1, 2, 4, 100} {
		for _, workers := range []int{1, 4} {
			got := run(shards, workers)
			if len(got) != len(ref) {
				t.Fatalf("shards=%d workers=%d: %d results, want %d", shards, workers, len(got), len(ref))
			}
			for i := range ref {
				if got[i].Optimal != ref[i].Optimal {
					t.Fatalf("shards=%d workers=%d scenario %d: optimal %v, want %v",
						shards, workers, i, got[i].Optimal, ref[i].Optimal)
				}
				if got[i].Bottleneck["OSPF+recon"] != ref[i].Bottleneck["OSPF+recon"] {
					t.Fatalf("shards=%d workers=%d scenario %d: bottleneck differs", shards, workers, i)
				}
				if got[i].Lost["OSPF+recon"] != ref[i].Lost["OSPF+recon"] {
					t.Fatalf("shards=%d workers=%d scenario %d: lost differs", shards, workers, i)
				}
				if !got[i].Scenario.Equal(ref[i].Scenario) {
					t.Fatalf("shards=%d workers=%d scenario %d: scenario slot mismatch", shards, workers, i)
				}
			}
		}
	}
}

// TestEngineShardEdges covers the degenerate shapes: an empty scenario
// list and a single scenario, at shard counts far above the list length.
func TestEngineShardEdges(t *testing.T) {
	g := topo.Abilene()
	d := shardDemand(g)
	en := &Engine{G: g, ExactOptimal: true, Workers: 4, Shards: 16}
	if got := en.Evaluate(d, nil); len(got) != 0 {
		t.Fatalf("empty scenario list produced %d results", len(got))
	}
	one := en.Evaluate(d, SingleLinks(g)[:1])
	if len(one) != 1 || one[0].Optimal <= 0 {
		t.Fatalf("single-scenario eval = %+v", one)
	}
}

// TestEngineShardSeedIsolation pins that shard-local LP warm bases never
// leak between shards: every shard's seed solve runs cold (exactly
// shards cold solves) and every scenario solve warm-starts from its own
// shard's seed (exactly len(scenarios) warm starts). A shared or leaked
// basis would warm-start some seed solves and break the count.
func TestEngineShardSeedIsolation(t *testing.T) {
	g := topo.Abilene()
	d := shardDemand(g)
	scenarios := FilterConnected(g, SingleLinks(g))[:8]
	for _, shards := range []int{1, 2, 4} {
		reg := obs.NewRegistry()
		en := &Engine{G: g, ExactOptimal: true, Workers: 2, Shards: shards, Obs: reg}
		en.Evaluate(d, scenarios)
		snap := reg.Snapshot()
		wantSolves := int64(shards + len(scenarios))
		if got := snap.Counters["lp.solves"]; got != wantSolves {
			t.Fatalf("shards=%d: lp.solves = %d, want %d (shard seeds cold + scenarios warm)",
				shards, got, wantSolves)
		}
		if got := snap.Counters["lp.warm_starts"]; got != int64(len(scenarios)) {
			t.Fatalf("shards=%d: lp.warm_starts = %d, want %d", shards, got, len(scenarios))
		}
		if got := snap.Counters["eval.shards"]; got != int64(shards) {
			t.Fatalf("shards=%d: eval.shards = %d", shards, got)
		}
	}
}
