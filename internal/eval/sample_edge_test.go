package eval

import (
	"testing"

	"repro/internal/graph"
)

// TestSampleEdgeCases pins down the degenerate inputs: out-of-range k
// returns nil (not a panic or a partial draw), n=0 asks for nothing, and a
// negative seed is just another seed — deterministic and well-formed.
func TestSampleEdgeCases(t *testing.T) {
	events := make([]graph.LinkSet, 6)
	for i := range events {
		events[i] = graph.NewLinkSet(graph.LinkID(i))
	}
	cases := []struct {
		name      string
		events    []graph.LinkSet
		k, n      int
		seed      int64
		wantLen   int
		wantNil   bool
		checkSets bool
	}{
		{name: "k zero", events: events, k: 0, n: 5, seed: 1, wantNil: true},
		{name: "k negative", events: events, k: -3, n: 5, seed: 1, wantNil: true},
		{name: "k exceeds events", events: events, k: 7, n: 5, seed: 1, wantNil: true},
		{name: "k equals events", events: events, k: 6, n: 1, seed: 1, wantLen: 1, checkSets: true},
		{name: "n zero", events: events, k: 2, n: 0, seed: 1, wantNil: true},
		{name: "n negative", events: events, k: 2, n: -1, seed: 1, wantNil: true},
		{name: "negative seed", events: events, k: 2, n: 4, seed: -99, wantLen: 4, checkSets: true},
		{name: "empty events", events: nil, k: 1, n: 3, seed: 1, wantNil: true},
		{name: "n exceeds distinct subsets", events: events[:3], k: 2, n: 100, seed: 7, wantLen: 3, checkSets: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Sample(tc.events, tc.k, tc.n, tc.seed)
			if tc.wantNil {
				if got != nil {
					t.Fatalf("Sample(k=%d, n=%d) = %d scenarios, want nil", tc.k, tc.n, len(got))
				}
				return
			}
			if len(got) != tc.wantLen {
				t.Fatalf("Sample(k=%d, n=%d) returned %d scenarios, want %d", tc.k, tc.n, len(got), tc.wantLen)
			}
			if !tc.checkSets {
				return
			}
			seen := make(map[string]bool)
			for _, s := range got {
				if s.Len() != tc.k {
					t.Fatalf("scenario %v has %d links, want %d", s, s.Len(), tc.k)
				}
				if key := s.String(); seen[key] {
					t.Fatalf("duplicate scenario %v", s)
				} else {
					seen[key] = true
				}
			}
			// Determinism: the same seed reproduces the same draw.
			again := Sample(tc.events, tc.k, tc.n, tc.seed)
			for i := range got {
				if !got[i].Equal(again[i]) {
					t.Fatalf("redraw diverged at %d: %v vs %v", i, got[i], again[i])
				}
			}
		})
	}
}
