package eval

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protect"
)

// TestEvaluateScenariosMatchesEvaluate: wrapping hard-failure sets as
// Scenarios must change nothing — same bottlenecks, ratios, optima and
// bottleneck links as the classic Evaluate path, bit for bit.
func TestEvaluateScenariosMatchesEvaluate(t *testing.T) {
	g, d, plan := abilenePlan(t, 4000)
	en := &Engine{
		G: g,
		Schemes: []protect.Scheme{
			&protect.OSPFRecon{G: g},
			&R3Scheme{Label: "R3", Plan: plan},
		},
		OptimalIterations: 60,
		Workers:           1,
	}
	sets := SingleLinks(g)[:6]
	classic := en.Evaluate(d, sets)
	scenario := en.EvaluateScenarios(d, FailureScenarios(sets))
	if len(classic) != len(scenario) {
		t.Fatalf("result counts differ: %d vs %d", len(classic), len(scenario))
	}
	for i := range classic {
		c, s := classic[i], scenario[i]
		if !c.Scenario.Equal(s.Scenario) {
			t.Fatalf("result %d scenario %v vs %v", i, c.Scenario.IDs(), s.Scenario.IDs())
		}
		if c.Kind != string(core.ScenarioFailure) || s.Kind != c.Kind {
			t.Fatalf("result %d kind %q vs %q", i, c.Kind, s.Kind)
		}
		if c.Optimal != s.Optimal {
			t.Fatalf("result %d optimal %v vs %v", i, c.Optimal, s.Optimal)
		}
		if !reflect.DeepEqual(c.Bottleneck, s.Bottleneck) {
			t.Fatalf("result %d bottlenecks %v vs %v", i, c.Bottleneck, s.Bottleneck)
		}
		if !reflect.DeepEqual(c.Lost, s.Lost) {
			t.Fatalf("result %d lost %v vs %v", i, c.Lost, s.Lost)
		}
	}
}

// TestEvaluateScenariosDegradation: degradation scenarios are labeled,
// judged against effective capacities, and an envelope-certified R3 plan
// stays within its certified bound while the evaluation's optimal can
// never beat it.
func TestEvaluateScenariosDegradation(t *testing.T) {
	g, d, _ := abilenePlan(t, 4000)
	model := core.DegradationModel{Beta: 0.5, Budget: 1}
	plan, err := core.Precompute(g, d, core.Config{Model: model, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	const label = "R3-XD"
	en := &Engine{
		G:                 g,
		Schemes:           []protect.Scheme{&R3Scheme{Label: label, Plan: plan}},
		OptimalIterations: 60,
		Workers:           1,
	}
	scs := core.SampleDegradations(g, model, 24, 9)
	if len(scs) == 0 {
		t.Fatal("no degradation scenarios sampled")
	}
	results := en.EvaluateScenarios(d, scs)
	for i, r := range results {
		if r.Kind != string(core.ScenarioDegradation) {
			t.Fatalf("result %d kind %q", i, r.Kind)
		}
		if len(r.Spec.Degraded) == 0 {
			t.Fatalf("result %d lost its degradation spec", i)
		}
		if plan.CongestionFree() && r.Bottleneck[label] > plan.MLU+1e-6 {
			t.Fatalf("result %d (%s): bottleneck %v above certified %v",
				i, r.Spec.Describe(), r.Bottleneck[label], plan.MLU)
		}
		// The per-scenario optimal is an iterative approximation, so no
		// directional comparison against the scheme is stable; it must
		// still be present and positive for ratio denominators.
		if r.Optimal <= 0 {
			t.Fatalf("result %d: optimal %v", i, r.Optimal)
		}
	}
}

// TestEvaluateScenariosSurgeAndNode: node scenarios carry the node kind;
// surge scenarios feed non-scenario schemes the surged matrix while the
// R3 scheme applies the same surge through its online state — both see
// strictly more traffic than the calm matrix.
func TestEvaluateScenariosSurgeAndNode(t *testing.T) {
	g, d, plan := abilenePlan(t, 4000)
	const label = "R3"
	en := &Engine{
		G: g,
		Schemes: []protect.Scheme{
			&protect.OSPFRecon{G: g},
			&R3Scheme{Label: label, Plan: plan},
		},
		OptimalIterations: 40,
		Workers:           1,
	}
	spec := core.SurgeSpec{Scale: 1.5, Frac: 0.25}
	scs := []core.Scenario{
		{Kind: core.ScenarioFailure, Failed: graph.LinkSet{}, Node: -1}, // calm baseline
		spec.Scenario(d),
		core.NodeScenario(g, 0),
	}
	results := en.EvaluateScenarios(d, scs)
	if results[1].Kind != string(core.ScenarioSurge) || results[2].Kind != string(core.ScenarioNode) {
		t.Fatalf("kinds = %q, %q", results[1].Kind, results[2].Kind)
	}
	for _, name := range []string{"OSPF+recon", label} {
		calm, surged := results[0].Bottleneck[name], results[1].Bottleneck[name]
		if surged <= calm {
			t.Fatalf("%s: surge bottleneck %v not above calm %v", name, surged, calm)
		}
	}
	if results[2].Spec.Node != 0 {
		t.Fatalf("node scenario spec lost its node: %+v", results[2].Spec)
	}
	if !results[2].Scenario.Equal(core.NodeScenario(g, 0).Failed) {
		t.Fatalf("node scenario failure set mismatch")
	}
}

// TestBottleneckScaledAgainstEffectiveCapacity pins the shared
// bottleneck-intensity helper: scaling a link's capacity down must raise
// its reported intensity by exactly the inverse factor.
func TestBottleneckScaledAgainstEffectiveCapacity(t *testing.T) {
	g, _, plan := abilenePlan(t, 4000)
	st := core.NewState(plan)
	loads := st.Loads()
	plain := protect.Bottleneck(g, graph.LinkSet{}, loads)
	scale := make([]float64, g.NumLinks())
	for i := range scale {
		scale[i] = 1
	}
	if got := protect.BottleneckScaled(g, graph.LinkSet{}, scale, loads); got != plain {
		t.Fatalf("all-ones scale changed bottleneck: %v vs %v", got, plain)
	}
	if got := protect.BottleneckScaled(g, graph.LinkSet{}, nil, loads); got != plain {
		t.Fatalf("nil scale changed bottleneck: %v vs %v", got, plain)
	}
	// Degrade the current bottleneck link and expect the intensity to rise.
	worst := bottleneckLink(g, graph.LinkSet{}, nil, loads)
	scale[worst] = 0.5
	if got := protect.BottleneckScaled(g, graph.LinkSet{}, scale, loads); got <= plain {
		t.Fatalf("halving the bottleneck capacity did not raise intensity: %v vs %v", got, plain)
	}
}

// TestScenarioSchemePanicsSurface: an R3 scheme fed an invalid scenario
// (degrading a failed link) must fail loudly, not return garbage.
func TestScenarioSchemePanicsSurface(t *testing.T) {
	_, d, plan := abilenePlan(t, 4000)
	s := &R3Scheme{Label: "R3", Plan: plan}
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid scenario did not panic")
		}
	}()
	s.ScenarioLoads(core.Scenario{
		Failed:   graph.NewLinkSet(0),
		Node:     -1,
		Degraded: []core.LinkDegradation{{Link: 0, Frac: 0.5}},
	}, d)
}
