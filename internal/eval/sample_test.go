package eval

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// TestSampleSeededGolden pins the exact seeded output of Sample. The
// Floyd's-algorithm rewrite (drawing k distinct indices directly instead
// of truncating a full permutation) changed the per-seed sequence once —
// recorded in CHANGES.md — and this golden locks the new sequence so any
// future change to the RNG consumption pattern is caught, not silently
// shipped into every figure that samples scenarios.
func TestSampleSeededGolden(t *testing.T) {
	events := make([]graph.LinkSet, 12)
	for i := range events {
		events[i] = graph.NewLinkSet(graph.LinkID(2*i), graph.LinkID(2*i+1))
	}
	want := map[int][]string{
		2: {
			"[0 1 22 23]",
			"[2 3 12 13]",
			"[0 1 2 3]",
			"[16 17 20 21]",
			"[10 11 14 15]",
		},
		3: {
			"[10 11 16 17 18 19]",
			"[0 1 2 3 20 21]",
			"[6 7 14 15 16 17]",
			"[6 7 16 17 22 23]",
			"[10 11 12 13 16 17]",
		},
	}
	for k, exp := range want {
		out := Sample(events, k, len(exp), 42)
		if len(out) != len(exp) {
			t.Fatalf("k=%d: got %d scenarios, want %d", k, len(out), len(exp))
		}
		for i, s := range out {
			if got := fmt.Sprint(s.IDs()); got != exp[i] {
				t.Errorf("k=%d scenario %d: got %s, want %s", k, i, got, exp[i])
			}
		}
	}
}

// TestSampleDrawsDistinctEvents verifies the Floyd draw's core properties
// directly: every scenario is the union of exactly k distinct events, no
// scenario repeats, and out-of-range k is rejected instead of panicking.
func TestSampleDrawsDistinctEvents(t *testing.T) {
	events := make([]graph.LinkSet, 9)
	for i := range events {
		events[i] = graph.NewLinkSet(graph.LinkID(i))
	}
	for k := 1; k <= 4; k++ {
		out := Sample(events, k, 30, 7)
		seen := map[string]bool{}
		for _, s := range out {
			ids := s.IDs()
			if len(ids) != k {
				t.Fatalf("k=%d: scenario %v unions %d events", k, ids, len(ids))
			}
			key := fmt.Sprint(ids)
			if seen[key] {
				t.Fatalf("k=%d: duplicate scenario %v", k, ids)
			}
			seen[key] = true
		}
	}
	if got := Sample(events, 0, 5, 1); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := Sample(events, len(events)+1, 5, 1); got != nil {
		t.Fatalf("k>len(events) returned %v", got)
	}
	// k == len(events) has exactly one subset; Sample must find it and
	// stop at the attempt cap rather than loop or panic.
	if got := Sample(events, len(events), 5, 1); len(got) != 1 {
		t.Fatalf("k=len(events) returned %d scenarios, want 1", len(got))
	}
}
