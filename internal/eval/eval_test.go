package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protect"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func abilenePlan(t testing.TB, total float64) (*graph.Graph, *traffic.Matrix, *core.Plan) {
	t.Helper()
	g := topo.Abilene()
	d := traffic.Gravity(g, total, 3)
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, d, plan
}

func TestSingleLinks(t *testing.T) {
	g := topo.Abilene()
	sc := SingleLinks(g)
	if len(sc) != g.NumLinks() {
		t.Fatalf("len = %d", len(sc))
	}
	for i, s := range sc {
		if s.Len() != 1 || !s.Contains(graph.LinkID(i)) {
			t.Fatalf("scenario %d = %v", i, s)
		}
	}
}

func TestDuplexPairs(t *testing.T) {
	g := topo.Abilene()
	sc := DuplexPairs(g)
	if len(sc) != g.NumLinks()/2 {
		t.Fatalf("len = %d, want %d", len(sc), g.NumLinks()/2)
	}
	for _, s := range sc {
		if s.Len() != 2 {
			t.Fatalf("scenario %v not a duplex pair", s)
		}
		ids := s.IDs()
		if g.Link(ids[0]).Reverse != ids[1] {
			t.Fatalf("scenario %v links not reverses", s)
		}
	}
}

func TestSingleEventsUsesGroups(t *testing.T) {
	g := topo.USISP()
	sc := SingleEvents(g)
	if len(sc) != len(g.SRLGs())+len(g.MLGs()) {
		t.Fatalf("len = %d, want %d", len(sc), len(g.SRLGs())+len(g.MLGs()))
	}
	// Fallback for graphs without groups.
	g2 := topo.Abilene()
	if got := SingleEvents(g2); len(got) != g2.NumLinks()/2 {
		t.Fatalf("fallback len = %d", len(got))
	}
}

func TestAllPairsAndSample(t *testing.T) {
	g := topo.Abilene()
	events := DuplexPairs(g)
	pairs := AllPairs(events)
	want := len(events) * (len(events) - 1) / 2
	if len(pairs) != want {
		t.Fatalf("pairs = %d, want %d", len(pairs), want)
	}
	sampled := Sample(events, 3, 40, 7)
	if len(sampled) != 40 {
		t.Fatalf("sampled = %d", len(sampled))
	}
	seen := map[string]bool{}
	for _, s := range sampled {
		if s.Len() < 3 { // unions of 3 duplex pairs have >= 3 links
			t.Fatalf("sample too small: %v", s)
		}
		if seen[s.String()] {
			t.Fatalf("duplicate sample %v", s)
		}
		seen[s.String()] = true
	}
	// Deterministic for a given seed.
	again := Sample(events, 3, 40, 7)
	for i := range again {
		if !again[i].Equal(sampled[i]) {
			t.Fatalf("sampling not deterministic")
		}
	}
}

func TestR3SchemeCongestionFree(t *testing.T) {
	g, d, plan := abilenePlan(t, 250)
	if !plan.CongestionFree() {
		t.Skipf("plan MLU %v > 1; demand too high for this topology", plan.MLU)
	}
	s := &R3Scheme{Label: "MPLS-ff+R3", Plan: plan}
	for _, sc := range SingleLinks(g) {
		loads, _ := s.Loads(sc, d)
		if b := protect.Bottleneck(g, sc, loads); b > plan.MLU+1e-6 {
			t.Fatalf("scenario %v: bottleneck %v > plan MLU %v", sc, b, plan.MLU)
		}
	}
}

func TestEngineEvaluate(t *testing.T) {
	g, d, plan := abilenePlan(t, 250)
	en := &Engine{
		G: g,
		Schemes: []protect.Scheme{
			&R3Scheme{Label: "MPLS-ff+R3", Plan: plan},
			&protect.OSPFRecon{G: g},
		},
		OptimalIterations: 80,
	}
	scenarios := SingleLinks(g)[:6]
	results := en.Evaluate(d, scenarios)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Optimal <= 0 {
			t.Fatalf("optimal bottleneck %v", r.Optimal)
		}
		if r.Ratio("MPLS-ff+R3") < 1 || r.Ratio("OSPF+recon") < 1 {
			t.Fatalf("ratio below 1: %+v", r)
		}
	}
}

func TestWorstCaseAndSorting(t *testing.T) {
	results := []Result{
		{Bottleneck: map[string]float64{"A": 0.5, "B": 0.9}, Optimal: 0.4},
		{Bottleneck: map[string]float64{"A": 0.8, "B": 0.6}, Optimal: 0.4},
	}
	w := WorstCase(results)
	if w["A"] != 0.8 || w["B"] != 0.9 {
		t.Fatalf("WorstCase = %v", w)
	}
	ratios := SortedRatios(results, "A")
	if len(ratios) != 2 || ratios[0] > ratios[1] {
		t.Fatalf("SortedRatios = %v", ratios)
	}
	if math.Abs(ratios[0]-1.25) > 1e-12 || math.Abs(ratios[1]-2.0) > 1e-12 {
		t.Fatalf("SortedRatios = %v", ratios)
	}
	bs := SortedBottlenecks(results, "B")
	if bs[0] != 0.6 || bs[1] != 0.9 {
		t.Fatalf("SortedBottlenecks = %v", bs)
	}
}

func TestRatioClamp(t *testing.T) {
	r := Result{Bottleneck: map[string]float64{"A": 0.3}, Optimal: 0.4}
	if r.Ratio("A") != 1 {
		t.Fatalf("Ratio = %v, want clamp to 1", r.Ratio("A"))
	}
	// A positive bottleneck against a zero optimum is an infinitely bad
	// ratio, not a perfect one: +Inf sorts last in SortedRatios instead of
	// silently reporting the scheme as optimal.
	r0 := Result{Bottleneck: map[string]float64{"A": 0.3}, Optimal: 0}
	if !math.IsInf(r0.Ratio("A"), 1) {
		t.Fatalf("zero-optimal positive-bottleneck ratio = %v, want +Inf", r0.Ratio("A"))
	}
	// Zero over zero is genuinely "nothing to route": ratio 1.
	rz := Result{Bottleneck: map[string]float64{"A": 0}, Optimal: 0}
	if rz.Ratio("A") != 1 {
		t.Fatalf("zero/zero ratio = %v, want 1", rz.Ratio("A"))
	}
}

func TestTopWorst(t *testing.T) {
	results := []Result{
		{Optimal: 0.2}, {Optimal: 0.9}, {Optimal: 0.5},
	}
	top := TopWorst(results, 2)
	if len(top) != 2 || top[0].Optimal != 0.9 || top[1].Optimal != 0.5 {
		t.Fatalf("TopWorst = %+v", top)
	}
	if got := TopWorst(results, 10); len(got) != 3 {
		t.Fatalf("TopWorst overflow = %d", len(got))
	}
}

func TestClassBottlenecks(t *testing.T) {
	g := topo.Abilene()
	total := traffic.Gravity(g, 200, 3)
	classes := traffic.SplitClasses(total, 0.1, 0.2, 4)
	plan, err := core.PrecomputePrioritized(g, []core.Priority{
		{Demand: classes[traffic.TPRT], F: 2},
		{Demand: classes[traffic.TPP], F: 1},
		{Demand: classes[traffic.IP], F: 1},
	}, core.Config{Iterations: 80})
	if err != nil {
		t.Fatal(err)
	}
	failed := graph.NewLinkSet(0)
	bs := ClassBottlenecks(plan, classes, failed)
	if len(bs) != 3 {
		t.Fatalf("got %d classes", len(bs))
	}
	// Class bottlenecks measure each class alone, so each is below the
	// all-traffic bottleneck.
	st := core.NewState(plan)
	if err := st.Fail(0); err != nil {
		t.Fatal(err)
	}
	allB := protect.Bottleneck(g, failed, st.Loads())
	for cls, b := range bs {
		if b > allB+1e-9 {
			t.Fatalf("class %v bottleneck %v exceeds total %v", cls, b, allB)
		}
		if b < 0 {
			t.Fatalf("negative bottleneck for %v", cls)
		}
	}
}

// TestEngineExactOptimalDeterministicAcrossWorkers pins the set-once
// warm-basis contract: with ExactOptimal, the engine seeds the
// no-failure basis serially, so evaluation results are identical at any
// worker count even though scenarios race for the shared solver state.
func TestEngineExactOptimalDeterministicAcrossWorkers(t *testing.T) {
	g := topo.Abilene()
	d := traffic.NewMatrix(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		d.Set(graph.NodeID(n), graph.NodeID((n+3)%g.NumNodes()), 150)
	}
	scenarios := FilterConnected(g, SingleLinks(g))[:8]

	run := func(workers int) []Result {
		en := &Engine{
			G:            g,
			Schemes:      []protect.Scheme{&protect.OSPFRecon{G: g}},
			ExactOptimal: true,
			Workers:      workers,
		}
		return en.Evaluate(d, scenarios)
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i].Optimal != parallel[i].Optimal {
			t.Fatalf("scenario %d: optimal %v serial vs %v at 4 workers",
				i, serial[i].Optimal, parallel[i].Optimal)
		}
		if serial[i].Bottleneck["OSPF+recon"] != parallel[i].Bottleneck["OSPF+recon"] {
			t.Fatalf("scenario %d: bottleneck differs across worker counts", i)
		}
	}
	for _, r := range serial {
		if r.Optimal <= 0 {
			t.Fatalf("exact optimal bottleneck %v", r.Optimal)
		}
	}
}
