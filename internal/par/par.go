// Package par is the repo's single concurrency substrate: a bounded
// worker pool running index-addressed parallel loops whose results are
// bit-identical to a serial execution, regardless of worker count or
// goroutine scheduling.
//
// Determinism contract. Every construct here either (a) writes results
// into caller-owned slots addressed by loop index (ForEach, ForEachChunk,
// ForEachScratch), so scheduling cannot reorder anything observable, or
// (b) reduces per-chunk partial values in ascending chunk order (Reduce).
// Chunk grids are a pure function of the problem size — never of the
// worker count — so a 1-worker pool and an N-worker pool associate
// floating-point reductions identically. Callers keep the contract by
// never accumulating across indices inside a parallel body; the Frank–
// Wolfe solver in internal/core leans on this to make Workers=1 and
// Workers=8 produce byte-identical plans.
//
// Panics inside a body are captured and re-raised on the caller's
// goroutine (the panic from the lowest-indexed failing item wins, again
// for determinism). Context cancellation is cooperative: ForEachCtx stops
// handing out new items once the context is done.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded degree of parallelism. The zero value and nil both
// behave as a serial pool; New(n) bounds concurrent body executions to n.
// A Pool holds no goroutines between calls — workers are spawned per loop
// and joined before the loop returns, so a Pool is freely shareable and
// safe for concurrent use.
type Pool struct {
	workers int

	// Always-on stats: a few atomic adds per loop/item, negligible next
	// to chunk-sized bodies. Observability layers (internal/obs) sample
	// them through Stats and Pending rather than the pool importing any
	// metrics package.
	loops   atomic.Int64
	items   atomic.Int64
	pending atomic.Int64
	spawned atomic.Int64
}

// Stats reports how many parallel loops the pool has run and how many
// loop items (or chunks) it has executed. Nil pools report zeros.
func (p *Pool) Stats() (loops, items int64) {
	if p == nil {
		return 0, 0
	}
	return p.loops.Load(), p.items.Load()
}

// Pending reports the number of items of in-flight loops not yet
// completed — the pool's instantaneous queue depth. Nil pools report 0.
func (p *Pool) Pending() int64 {
	if p == nil {
		return 0
	}
	return p.pending.Load()
}

func (p *Pool) noteLoop(n int) {
	if p == nil {
		return
	}
	p.loops.Add(1)
	p.pending.Add(int64(n))
}

func (p *Pool) noteItemDone() {
	if p == nil {
		return
	}
	p.items.Add(1)
	p.pending.Add(-1)
}

// New returns a pool bounded to workers concurrent body executions.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Serial is a 1-worker pool: every construct degenerates to a plain loop.
var Serial = New(1)

// Workers reports the pool's bound. A nil or zero pool reports 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// Inline reports whether loops on this pool execute on the calling
// goroutine without any worker handoff: a 1-worker pool, or any pool when
// the runtime has a single scheduling slot (GOMAXPROCS=1), where spawning
// workers can only add overhead. Callers with allocation-sensitive hot
// paths can branch on it to run plain loops instead of closures.
func (p *Pool) Inline() bool {
	return p.Workers() == 1 || runtime.GOMAXPROCS(0) == 1
}

// SpawnedWorkers reports the total number of worker goroutines the pool
// has launched across all loops. Inline executions spawn none. Nil pools
// report 0.
func (p *Pool) SpawnedWorkers() int64 {
	if p == nil {
		return 0
	}
	return p.spawned.Load()
}

func (p *Pool) noteSpawn() {
	if p == nil {
		return
	}
	p.spawned.Add(1)
}

// panicked carries a captured worker panic to the calling goroutine.
type panicked struct {
	index int
	value any
}

func (p panicked) String() string {
	return fmt.Sprintf("par: panic at index %d: %v", p.index, p.value)
}

// firstPanic tracks the lowest-index panic across workers.
type firstPanic struct {
	mu  sync.Mutex
	set bool
	p   panicked
}

func (f *firstPanic) record(index int, value any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.set || index < f.p.index {
		f.set = true
		f.p = panicked{index: index, value: value}
	}
}

// rethrow re-raises the recorded panic value on the caller's goroutine.
func (f *firstPanic) rethrow() {
	if f.set {
		panic(f.p.value)
	}
}

// ForEach runs fn(i) for every i in [0, n), using up to Workers()
// concurrent executions. fn must only write state owned by index i.
func (p *Pool) ForEach(n int, fn func(i int)) {
	ForEachScratch(p, n, func() struct{} { return struct{}{} }, func(i int, _ struct{}) { fn(i) })
}

// ForEachScratch is ForEach with a per-worker scratch value: newScratch
// runs once per worker goroutine (once total in serial execution), and fn
// may mutate the scratch freely — it is never shared between concurrent
// executions. Scratch state must not leak information between items in a
// way that affects results (buffers, not accumulators).
func ForEachScratch[S any](p *Pool, n int, newScratch func() S, fn func(i int, s S)) {
	ForEachScratchFree(p, n, newScratch, fn, nil)
}

// ForEachScratchFree is ForEachScratch with a release hook: free (when
// non-nil) runs once for every scratch value created, after its worker has
// finished all items — one call total in serial execution. It lets callers
// recycle scratch buffers through a pool instead of allocating per loop.
func ForEachScratchFree[S any](p *Pool, n int, newScratch func() S, fn func(i int, s S), free func(S)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	// On a single-slot runtime, goroutine handoff buys no parallelism and
	// costs scheduling overhead; degrade to the inline serial loop. The
	// chunk grid is unchanged, so results stay bit-identical.
	if w > 1 && runtime.GOMAXPROCS(0) == 1 {
		w = 1
	}
	p.noteLoop(n)
	var done atomic.Int64
	// Reconcile the pending gauge for items never executed (an early exit
	// via panic); on a normal completion this adjusts by zero.
	defer func() {
		if p != nil {
			p.pending.Add(done.Load() - int64(n))
		}
	}()
	if w == 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			fn(i, s)
			done.Add(1)
			p.noteItemDone()
		}
		if free != nil {
			free(s)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var fp firstPanic
	var wg sync.WaitGroup
	body := func(i int, s S) {
		defer func() {
			if r := recover(); r != nil {
				fp.record(i, r)
			}
		}()
		fn(i, s)
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		p.noteSpawn()
		go func() {
			defer wg.Done()
			s := newScratch()
			if free != nil {
				defer free(s)
			}
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				body(i, s)
				done.Add(1)
				p.noteItemDone()
			}
		}()
	}
	wg.Wait()
	fp.rethrow()
}

// ChunkSize returns the fixed chunk width used by ForEachChunk and Reduce
// for a loop of n items. It depends only on n — never on the worker
// count — so the chunk grid (and therefore any per-chunk floating-point
// association) is identical for every pool.
func ChunkSize(n int) int {
	// Aim for a fixed ~32-way grid: fine enough to balance 8–16 workers,
	// coarse enough that dispatch cost stays negligible.
	c := (n + 31) / 32
	if c < 1 {
		c = 1
	}
	return c
}

// NumChunks reports how many chunks ForEachChunk and Reduce split n items
// into.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	c := ChunkSize(n)
	return (n + c - 1) / c
}

// Chunk returns the half-open index range [lo, hi) of chunk ci in the
// fixed grid over [0, n). Useful when a caller flattens several
// dimensions into one task index and needs the bounds back.
func Chunk(n, ci int) (lo, hi int) {
	c := ChunkSize(n)
	lo = ci * c
	hi = lo + c
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ShardRanges splits [0, n) into at most shards contiguous half-open
// ranges [lo, hi), balanced to within one item. The grid is a pure
// function of (n, shards) — never of the worker count — and ranges are
// returned in ascending index order, so shard-structured loops that
// process each range serially and write index-owned slots inherit the
// package determinism contract. shards < 1 is treated as 1; shards > n
// is clamped to n (every returned range is non-empty). n <= 0 returns nil.
func ShardRanges(n, shards int) [][2]int {
	if n <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	out := make([][2]int, shards)
	for s := 0; s < shards; s++ {
		out[s] = [2]int{s * n / shards, (s + 1) * n / shards}
	}
	return out
}

// ForEachChunk splits [0, n) into the fixed grid of ChunkSize(n)-wide
// chunks and runs fn(lo, hi) for each chunk. fn must only write state
// owned by indices in [lo, hi).
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	c := ChunkSize(n)
	p.ForEach(NumChunks(n), func(ci int) {
		lo := ci * c
		hi := lo + c
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ForEachChunkScratch is ForEachChunk with a per-worker scratch value.
func ForEachChunkScratch[S any](p *Pool, n int, newScratch func() S, fn func(lo, hi int, s S)) {
	ForEachChunkScratchFree(p, n, newScratch, fn, nil)
}

// ForEachChunkScratchFree is ForEachChunkScratch with a release hook (see
// ForEachScratchFree).
func ForEachChunkScratchFree[S any](p *Pool, n int, newScratch func() S, fn func(lo, hi int, s S), free func(S)) {
	if n <= 0 {
		return
	}
	c := ChunkSize(n)
	ForEachScratchFree(p, NumChunks(n), newScratch, func(ci int, s S) {
		lo := ci * c
		hi := lo + c
		if hi > n {
			hi = n
		}
		fn(lo, hi, s)
	}, free)
}

// Reduce maps each chunk of the fixed grid over [0, n) to a partial value
// and folds the partials in ascending chunk order: the result is
// init ⊕ map(chunk 0) ⊕ map(chunk 1) ⊕ … with a deterministic
// association, independent of worker count and scheduling.
func Reduce[A any](p *Pool, n int, init A, mapFn func(lo, hi int) A, mergeFn func(into, next A) A) A {
	if n <= 0 {
		return init
	}
	if p.Inline() {
		// Same chunk grid and fold order as the parallel path, without the
		// partials slice: init ⊕ map(chunk 0) ⊕ map(chunk 1) ⊕ …
		c := ChunkSize(n)
		acc := init
		for lo := 0; lo < n; lo += c {
			hi := lo + c
			if hi > n {
				hi = n
			}
			acc = mergeFn(acc, mapFn(lo, hi))
		}
		return acc
	}
	parts := make([]A, NumChunks(n))
	p.ForEachChunk(n, func(lo, hi int) {
		parts[lo/ChunkSize(n)] = mapFn(lo, hi)
	})
	acc := init
	for _, part := range parts {
		acc = mergeFn(acc, part)
	}
	return acc
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// no new items are started and the context error is returned. fn errors
// abort the loop the same way; among concurrent failures the error of the
// lowest-indexed item wins. Items already running when the first error or
// cancellation lands still complete.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w > 1 && runtime.GOMAXPROCS(0) == 1 {
		w = 1
	}
	p.noteLoop(n)
	var done atomic.Int64
	defer func() {
		if p != nil {
			p.pending.Add(done.Load() - int64(n))
		}
	}()
	var next atomic.Int64
	next.Store(-1)
	var (
		errMu    sync.Mutex
		errIdx   = n
		firstErr error
	)
	record := func(i int, err error) {
		errMu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		errMu.Unlock()
	}
	stopped := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	var fp firstPanic
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		p.noteSpawn()
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					record(int(next.Load())+1, err)
					return
				}
				if stopped() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							fp.record(i, r)
						}
					}()
					if err := fn(i); err != nil {
						record(i, err)
					}
				}()
				done.Add(1)
				p.noteItemDone()
			}
		}()
	}
	wg.Wait()
	fp.rethrow()
	return firstErr
}
