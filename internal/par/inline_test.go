package par

import (
	"math"
	"runtime"
	"testing"
)

// withGOMAXPROCS runs fn with the scheduler clamped to n slots, restoring
// the previous setting afterwards.
func withGOMAXPROCS(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestInlineDetection(t *testing.T) {
	if !Serial.Inline() {
		t.Fatal("Serial pool must report inline execution")
	}
	if !New(1).Inline() {
		t.Fatal("1-worker pool must report inline execution")
	}
	var nilPool *Pool
	if !nilPool.Inline() {
		t.Fatal("nil pool must report inline execution")
	}
	withGOMAXPROCS(t, 1, func() {
		if !New(8).Inline() {
			t.Fatal("8-worker pool must degrade to inline on a single-slot runtime")
		}
	})
	withGOMAXPROCS(t, 4, func() {
		if New(8).Inline() {
			t.Fatal("8-worker pool must not report inline with 4 scheduler slots")
		}
	})
}

// TestInlineSpawnsNoWorkers: on a single-slot runtime even a wide pool
// must run every construct on the calling goroutine — the spawned-worker
// counter stays flat across ForEach, chunked loops and Reduce.
func TestInlineSpawnsNoWorkers(t *testing.T) {
	withGOMAXPROCS(t, 1, func() {
		p := New(8)
		before := p.SpawnedWorkers()

		const n = 1000
		out := make([]float64, n)
		p.ForEach(n, func(i int) { out[i] = float64(i) * 1.5 })
		p.ForEachChunk(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] += 1
			}
		})
		ForEachScratchFree(p, n,
			func() []float64 { return make([]float64, 4) },
			func(i int, s []float64) { s[0] = out[i] },
			func(s []float64) {})
		_ = Reduce(p, n, 0.0,
			func(lo, hi int) float64 {
				sum := 0.0
				for i := lo; i < hi; i++ {
					sum += out[i]
				}
				return sum
			},
			func(a, b float64) float64 { return a + b })

		if d := p.SpawnedWorkers() - before; d != 0 {
			t.Fatalf("inline execution spawned %d workers, want 0", d)
		}
	})
}

// TestInlinePooledIdentical: the same loop on a serial pool and a wide
// pool clamped to one slot must produce bit-identical results — including
// the floating-point fold order of Reduce, which is where a sloppy inline
// fast path would diverge first.
func TestInlinePooledIdentical(t *testing.T) {
	const n = 12345
	vals := make([]float64, n)
	for i := range vals {
		// Values with wildly different magnitudes make the fold order
		// observable in the low bits.
		vals[i] = math.Sin(float64(i)) * math.Pow(10, float64(i%17)-8)
	}
	sumChunk := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }

	serial := Reduce(Serial, n, 0.0, sumChunk, add)
	withGOMAXPROCS(t, 1, func() {
		if got := Reduce(New(8), n, 0.0, sumChunk, add); got != serial {
			t.Fatalf("inline wide-pool Reduce = %x, serial = %x", got, serial)
		}
	})
	// And with scheduling slots available, the pooled path must still agree
	// bit for bit (chunk grid + ascending fold pins it).
	withGOMAXPROCS(t, 4, func() {
		p := New(8)
		if got := Reduce(p, n, 0.0, sumChunk, add); got != serial {
			t.Fatalf("pooled Reduce = %x, serial = %x", got, serial)
		}
		if p.SpawnedWorkers() == 0 {
			t.Fatal("pooled Reduce with 4 slots should have spawned workers")
		}

		outS := make([]float64, n)
		outP := make([]float64, n)
		Serial.ForEach(n, func(i int) { outS[i] = vals[i] * 3 })
		p.ForEach(n, func(i int) { outP[i] = vals[i] * 3 })
		for i := range outS {
			if outS[i] != outP[i] {
				t.Fatalf("ForEach diverged at %d", i)
			}
		}
	})
}
