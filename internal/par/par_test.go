package par

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 64} {
		p := New(w)
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestWorkersBound(t *testing.T) {
	if got := New(0).Workers(); got < 1 {
		t.Fatalf("New(0).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d", got)
	}
	// A nil pool must still run loops, serially.
	sum := 0
	nilPool.ForEach(10, func(i int) { sum += i })
	if sum != 45 {
		t.Fatalf("nil pool ForEach sum = %d", sum)
	}
}

func TestConcurrencyIsBounded(t *testing.T) {
	p := New(3)
	var cur, peak int32
	p.ForEach(100, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if c <= old || atomic.CompareAndSwapInt32(&peak, old, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		atomic.AddInt32(&cur, -1)
	})
	if peak > 3 {
		t.Fatalf("observed %d concurrent executions, bound 3", peak)
	}
}

func TestForEachScratchIsPerWorker(t *testing.T) {
	p := New(4)
	var created int32
	out := make([]int, 200)
	ForEachScratch(p, 200, func() *[]int {
		atomic.AddInt32(&created, 1)
		buf := make([]int, 1)
		return &buf
	}, func(i int, s *[]int) {
		(*s)[0] = i // scratch is exclusively ours for this item
		out[i] = (*s)[0] * 2
	})
	if created > 4 {
		t.Fatalf("scratch created %d times for 4 workers", created)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestChunkGridIsWorkerIndependent(t *testing.T) {
	for _, n := range []int{1, 5, 31, 32, 33, 460, 10000} {
		c := ChunkSize(n)
		if c < 1 {
			t.Fatalf("ChunkSize(%d) = %d", n, c)
		}
		if NumChunks(n)*c < n || (NumChunks(n)-1)*c >= n {
			t.Fatalf("n=%d: %d chunks of %d do not tile [0,n)", n, NumChunks(n), c)
		}
	}
	// The grid handed to ForEachChunk must be identical for every pool.
	for _, n := range []int{17, 460} {
		ref := [][2]int{}
		Serial.ForEachChunk(n, func(lo, hi int) { ref = append(ref, [2]int{lo, hi}) })
		got := make(map[[2]int]bool)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		New(8).ForEachChunk(n, func(lo, hi int) {
			<-mu
			got[[2]int{lo, hi}] = true
			mu <- struct{}{}
		})
		if len(got) != len(ref) {
			t.Fatalf("n=%d: %d chunks parallel vs %d serial", n, len(got), len(ref))
		}
		for _, ch := range ref {
			if !got[ch] {
				t.Fatalf("n=%d: chunk %v missing under 8 workers", n, ch)
			}
		}
	}
}

// TestReduceBitIdentical is the determinism keystone: summing values whose
// magnitudes differ wildly is association-sensitive, so a scheduling-
// dependent reduction order would flip low bits. Reduce must produce the
// exact same float for every worker count, every time.
func TestReduceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = math.Exp(40 * (rng.Float64() - 0.5))
	}
	sum := func(p *Pool) float64 {
		return Reduce(p, len(vals), 0.0,
			func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += vals[i]
				}
				return s
			},
			func(a, b float64) float64 { return a + b })
	}
	ref := sum(Serial)
	for _, w := range []int{2, 3, 8, 16} {
		p := New(w)
		for trial := 0; trial < 20; trial++ {
			if got := sum(p); math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("workers=%d trial %d: %x != %x", w, trial, math.Float64bits(got), math.Float64bits(ref))
			}
		}
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	p := New(8)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if fmt.Sprint(r) != "boom 3" {
			t.Fatalf("expected lowest-index panic, got %v", r)
		}
	}()
	p.ForEach(100, func(i int) {
		if i == 3 || i == 60 {
			panic(fmt.Sprintf("boom %d", i))
		}
	})
}

func TestForEachCtxCancellation(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := p.ForEachCtx(ctx, 10000, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 8 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&ran); n > 9000 {
		t.Fatalf("cancellation did not stop the loop: %d items ran", n)
	}
}

func TestForEachCtxFirstErrorWins(t *testing.T) {
	p := New(8)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 10; trial++ {
		err := p.ForEachCtx(context.Background(), 200, func(i int) error {
			switch i {
			case 5:
				return errLow
			case 150:
				return errHigh
			}
			return nil
		})
		// 150 may never run once 5 fails; either way the reported error
		// must be the lowest-indexed one actually recorded.
		if err == nil {
			t.Fatal("expected an error")
		}
		if errors.Is(err, errHigh) {
			t.Fatalf("trial %d: high-index error beat low-index error", trial)
		}
	}
}

// TestShardRanges pins the shard partitioner: exact cover of [0, n) in
// ascending order, balance within one item, clamping, and independence
// from anything but (n, shards).
func TestShardRanges(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 8, 9, 100, 1000} {
		for _, shards := range []int{-1, 0, 1, 2, 3, 7, 32, 5000} {
			ranges := ShardRanges(n, shards)
			if n <= 0 {
				if ranges != nil {
					t.Fatalf("n=%d shards=%d: want nil, got %v", n, shards, ranges)
				}
				continue
			}
			want := shards
			if want < 1 {
				want = 1
			}
			if want > n {
				want = n
			}
			if len(ranges) != want {
				t.Fatalf("n=%d shards=%d: %d ranges, want %d", n, shards, len(ranges), want)
			}
			next, min, max := 0, n, 0
			for _, r := range ranges {
				if r[0] != next || r[1] <= r[0] {
					t.Fatalf("n=%d shards=%d: bad range %v after %d", n, shards, r, next)
				}
				w := r[1] - r[0]
				if w < min {
					min = w
				}
				if w > max {
					max = w
				}
				next = r[1]
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: ranges end at %d", n, shards, next)
			}
			if max-min > 1 {
				t.Fatalf("n=%d shards=%d: unbalanced (min %d, max %d)", n, shards, min, max)
			}
		}
	}
}
