package mplsff

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
)

func TestLabelForIsStable(t *testing.T) {
	if LabelFor(0) != ProtLabelBase {
		t.Fatalf("LabelFor(0) = %d", LabelFor(0))
	}
	if LabelFor(5) != ProtLabelBase+5 {
		t.Fatalf("LabelFor(5) = %d", LabelFor(5))
	}
}

func TestHashBucketCoverage(t *testing.T) {
	// Over many flows, every bucket of the 6-bit hash is hit: the salted
	// hash has no dead buckets that would starve an NHLFE.
	_, n := buildAbilene(t)
	r := n.Routers[0]
	seen := make(map[uint32]bool)
	for i := 0; i < 20000 && len(seen) < hashBuckets; i++ {
		f := FlowKey{SrcIP: uint32(i * 2654435761), DstIP: uint32(i*7919 + 3), SrcPort: uint16(i), DstPort: uint16(i >> 3)}
		seen[r.Hash(f)] = true
	}
	if len(seen) != hashBuckets {
		t.Fatalf("only %d/%d buckets hit", len(seen), hashBuckets)
	}
}

func TestStorageScalesWithTopology(t *testing.T) {
	// A bigger topology's network-wide tables are strictly larger.
	planA, netA := buildAbilene(t)
	sA := netA.MeasureStorage()
	if sA.TotalILM != planA.G.NumLinks() {
		t.Fatalf("ILM = %d", sA.TotalILM)
	}
	if sA.TotalNHLFEs < sA.TotalILM {
		t.Fatalf("fewer NHLFEs (%d) than labels (%d): detours must have at least one hop",
			sA.TotalNHLFEs, sA.TotalILM)
	}
}

func TestProgramColumnSkipsUnprotectable(t *testing.T) {
	// A link whose protection is pinned to itself (p_l(l)=1) installs no
	// forwarding entries beyond the tail pop.
	g := graph.New("pin")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 10, 1, 1)
	base := routingFlowForTest(g, a, b)
	prot := [][]float64{{1, 0}, {0, 1}}
	plan := planFor(g, base, prot)
	n := Build(plan)
	fwd, ok := n.Routers[a].ILM[n.LabelOf[0]]
	if ok && !fwd.Pop && len(fwd.Entries) > 0 {
		t.Fatalf("unprotectable link has forwarding entries: %+v", fwd)
	}
}

// planFor assembles a minimal plan for data-plane tests.
func planFor(g *graph.Graph, base *routing.Flow, prot [][]float64) *core.Plan {
	return &core.Plan{G: g, Model: core.ArbitraryFailures{F: 1}, Base: base, Prot: prot}
}
