package mplsff

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
)

func TestDetourPathsDecompose(t *testing.T) {
	plan, _ := buildAbilene(t)
	st := core.NewState(plan)
	e := graph.LinkID(4)
	if err := st.Fail(e); err != nil {
		t.Fatal(err)
	}
	paths, err := DetourPaths(st, e, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no detour paths")
	}
	g := plan.G
	link := g.Link(e)
	var sum float64
	for _, p := range paths {
		sum += p.Frac
		// Each path runs head -> tail and avoids the failed link.
		at := link.Src
		for _, id := range p.Links {
			if id == e {
				t.Fatalf("detour path uses the failed link")
			}
			if g.Link(id).Src != at {
				t.Fatalf("path not contiguous at link %d", id)
			}
			at = g.Link(id).Dst
		}
		if at != link.Dst {
			t.Fatalf("path ends at %d, want %d", at, link.Dst)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("path fractions sum to %v", sum)
	}
}

func TestDetourPathsErrors(t *testing.T) {
	plan, _ := buildAbilene(t)
	st := core.NewState(plan)
	if _, err := DetourPaths(st, 3, 8); err == nil {
		t.Fatalf("detour for healthy link accepted")
	}
}

func TestDetourPathsPartition(t *testing.T) {
	// Two parallel links; failing both leaves no detour.
	g := graph.New("par")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 10, 1, 1)
	base := routingFlowForTest(g, a, b)
	prot := [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}
	// p_l(l) = 1: unprotectable by construction.
	plan := &core.Plan{G: g, Model: core.ArbitraryFailures{F: 1}, Base: base, Prot: prot}
	st := core.NewState(plan)
	if err := st.Fail(0); err != nil {
		t.Fatal(err)
	}
	paths, err := DetourPaths(st, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if paths != nil {
		t.Fatalf("partitioned link produced detour paths: %v", paths)
	}
}

// routingFlowForTest builds a single-commodity base flow on link 0.
func routingFlowForTest(g *graph.Graph, a, b graph.NodeID) *routing.Flow {
	f := routing.NewFlow(g, []routing.Commodity{{Src: a, Dst: b, Demand: 1, Link: -1}})
	f.Frac[0][0] = 1
	return f
}
