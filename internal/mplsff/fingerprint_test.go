package mplsff

import (
	"testing"

	"repro/internal/graph"
)

// TestFingerprintStableAcrossBuilds: two independent Builds of the same
// plan program identical forwarding state, so their canonical digests
// must agree (router salts are deterministic per node).
func TestFingerprintStableAcrossBuilds(t *testing.T) {
	plan, a := buildAbilene(t)
	b := Build(plan)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same plan, different fingerprints: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintChangesOnFailure: reconfiguring for a failure rewrites
// the FIB and the failed-set, so the digest must move.
func TestFingerprintChangesOnFailure(t *testing.T) {
	_, n := buildAbilene(t)
	before := n.Fingerprint()
	if err := n.OnFailure(0); err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() == before {
		t.Fatal("fingerprint unchanged by a failure reconfiguration")
	}
}

// TestFingerprintOrderIndependent is the property the emulator's
// view-divergence invariant rests on: applying the same failure set in
// different orders yields the same digest. The ILM rows of failed links
// (frozen detours, legitimately order-dependent — see State.ProtEquals)
// are excluded from the digest, and this test is the proof that the
// exclusion makes the rest order-independent.
func TestFingerprintOrderIndependent(t *testing.T) {
	plan, _ := buildAbilene(t)
	fails := [][]graph.LinkID{{0, 8}, {8, 0}}
	var prints []uint64
	for _, order := range fails {
		n := Build(plan)
		for _, e := range order {
			if err := n.OnFailure(e); err != nil {
				t.Fatal(err)
			}
		}
		prints = append(prints, n.Fingerprint())
	}
	if prints[0] != prints[1] {
		t.Fatalf("failure order leaked into the fingerprint: %#x vs %#x", prints[0], prints[1])
	}
}

// TestFingerprintSeesDivergence: a view that knows of an extra failure
// digests differently — the signal the view-divergence invariant keys on.
func TestFingerprintSeesDivergence(t *testing.T) {
	plan, a := buildAbilene(t)
	b := Build(plan)
	if err := a.OnFailure(0); err != nil {
		t.Fatal(err)
	}
	if err := b.OnFailure(0); err != nil {
		t.Fatal(err)
	}
	if err := b.OnFailure(8); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("views with different failure knowledge share a fingerprint")
	}
}
