package mplsff

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func buildAbilene(t testing.TB) (*core.Plan, *Network) {
	t.Helper()
	g := topo.Abilene()
	d := traffic.Gravity(g, 250, 3)
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan, Build(plan)
}

func TestHashConsistentPerRouter(t *testing.T) {
	_, n := buildAbilene(t)
	f := FlowKey{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80}
	r := n.Routers[0]
	h := r.Hash(f)
	for i := 0; i < 10; i++ {
		if r.Hash(f) != h {
			t.Fatalf("hash not deterministic")
		}
	}
	if h >= hashBuckets {
		t.Fatalf("hash %d out of range", h)
	}
}

func TestHashIndependentAcrossRouters(t *testing.T) {
	// The same flow must hash differently on at least some routers (the
	// §4.2 anti-skew requirement).
	_, n := buildAbilene(t)
	f := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	first := n.Routers[0].Hash(f)
	differs := false
	for _, r := range n.Routers[1:] {
		if r.Hash(f) != first {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatalf("all routers hash the flow identically: salt not mixed in")
	}
}

func TestHashSplitMatchesRatios(t *testing.T) {
	// Over many flows, the selected NHLFE distribution approaches the
	// configured ratios (within hash-bucket granularity).
	_, n := buildAbilene(t)
	r := n.Routers[0]
	entries := []NHLFE{
		{Out: 1, Ratio: 0.25},
		{Out: 2, Ratio: 0.75},
	}
	counts := map[graph.LinkID]int{}
	const flows = 4000
	for i := 0; i < flows; i++ {
		f := FlowKey{SrcIP: uint32(i * 2654435761), DstIP: uint32(i ^ 0xdeadbeef), SrcPort: uint16(i), DstPort: 80}
		nh, ok := r.selectNHLFE(entries, f)
		if !ok {
			t.Fatalf("no selection")
		}
		counts[nh.Out]++
	}
	got := float64(counts[1]) / flows
	if math.Abs(got-0.25) > 0.05 {
		t.Fatalf("split fraction = %v, want ~0.25", got)
	}
}

func TestSelectNHLFEZeroTotal(t *testing.T) {
	_, n := buildAbilene(t)
	if _, ok := n.Routers[0].selectNHLFE([]NHLFE{{Out: 1, Ratio: 0}}, FlowKey{}); ok {
		t.Fatalf("selected from zero ratios")
	}
}

func TestILMProgramming(t *testing.T) {
	plan, n := buildAbilene(t)
	g := plan.G
	// Every link's tail router pops its protection label.
	for e := 0; e < g.NumLinks(); e++ {
		lid := graph.LinkID(e)
		lbl := n.LabelOf[lid]
		tail := n.Routers[g.Link(lid).Dst]
		fwd, ok := tail.ILM[lbl]
		if !ok || !fwd.Pop {
			t.Fatalf("link %d: tail does not pop (ok=%v)", e, ok)
		}
	}
	// Head routers have a forwarding entry for their own links' labels
	// whenever the plan protects them (p not concentrated on the link).
	head := n.Routers[g.Link(0).Src]
	if _, ok := head.ILM[n.LabelOf[0]]; !ok {
		t.Fatalf("head router lacks ILM for its own link")
	}
}

func TestFIBCoversAllPairs(t *testing.T) {
	plan, n := buildAbilene(t)
	for _, c := range plan.Base.Comms {
		src := n.Routers[c.Src]
		if _, ok := src.FIB[[2]graph.NodeID{c.Src, c.Dst}]; !ok {
			t.Fatalf("source router %d missing FIB entry for %d->%d", c.Src, c.Src, c.Dst)
		}
	}
}

func TestFIBRatiosMatchBaseFlow(t *testing.T) {
	plan, n := buildAbilene(t)
	g := plan.G
	base := plan.Base
	for k, c := range base.Comms {
		entries := n.Routers[c.Src].FIB[[2]graph.NodeID{c.Src, c.Dst}]
		var sum float64
		for _, e := range entries {
			sum += e.Ratio
			if base.Frac[k][e.Out] <= 0 {
				t.Fatalf("FIB entry for zero-fraction link")
			}
		}
		// At the source the fractions sum to 1 ([R2]).
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("source ratios sum to %v", sum)
		}
		_ = g
	}
}

func TestOnFailureReprograms(t *testing.T) {
	_, n := buildAbilene(t)
	e := graph.LinkID(0)
	lbl := n.LabelOf[e]
	if err := n.OnFailure(e); err != nil {
		t.Fatal(err)
	}
	if !n.Failed().Contains(e) {
		t.Fatalf("failure not recorded")
	}
	// After the failure, no surviving label's NHLFEs use link e.
	for _, r := range n.Routers {
		for l, fwd := range r.ILM {
			for _, nh := range fwd.Entries {
				if nh.Out == e && l != lbl {
					t.Fatalf("label %d still forwards over failed link", l)
				}
			}
		}
	}
	// The failed link's own label routes via the stored detour and never
	// over e.
	for _, r := range n.Routers {
		if fwd, ok := r.ILM[lbl]; ok && !fwd.Pop {
			for _, nh := range fwd.Entries {
				if nh.Out == e {
					t.Fatalf("detour uses the failed link")
				}
			}
		}
	}
	// Idempotent.
	if err := n.OnFailure(e); err != nil {
		t.Fatal(err)
	}
}

func TestProtectedWalkReachesTail(t *testing.T) {
	// A labeled packet injected at the head of a failed link must reach
	// the link's tail by following NHLFEs and pop there.
	_, n := buildAbilene(t)
	g := n.G
	e := graph.LinkID(2)
	link := g.Link(e)
	if err := n.OnFailure(e); err != nil {
		t.Fatal(err)
	}
	lbl := n.LabelOf[e]
	for trial := 0; trial < 50; trial++ {
		f := FlowKey{SrcIP: uint32(trial * 7919), DstIP: uint32(trial ^ 0x1234), SrcPort: uint16(trial), DstPort: 443}
		at := link.Src
		hops := 0
		for {
			nh, pop, ok := n.Routers[at].NextProtected(lbl, f)
			if !ok {
				t.Fatalf("trial %d: no forwarding at node %d", trial, at)
			}
			if pop {
				if at != link.Dst {
					t.Fatalf("trial %d: popped at %d, want tail %d", trial, at, link.Dst)
				}
				break
			}
			if nh.Out == e {
				t.Fatalf("trial %d: detour used failed link", trial)
			}
			at = g.Link(nh.Out).Dst
			if hops++; hops > 3*g.NumNodes() {
				t.Fatalf("trial %d: detour loops", trial)
			}
		}
	}
}

func TestMeasureStorage(t *testing.T) {
	plan, n := buildAbilene(t)
	s := n.MeasureStorage()
	if s.TotalILM != plan.G.NumLinks() {
		t.Fatalf("TotalILM = %d, want %d", s.TotalILM, plan.G.NumLinks())
	}
	if s.ILMEntries == 0 || s.NHLFEs == 0 {
		t.Fatalf("empty storage: %+v", s)
	}
	if s.FIBBytes != s.ILMEntries*ILMEntryBytes+0 && s.FIBBytes <= 0 {
		t.Fatalf("FIBBytes = %d", s.FIBBytes)
	}
	if s.RIBBytes <= 0 {
		t.Fatalf("RIBBytes = %d", s.RIBBytes)
	}
	// Abilene fits comfortably in the paper's bounds (<9KB FIB would be
	// optimistic for our entry sizes; assert the order of magnitude).
	if s.FIBBytes > 64<<10 {
		t.Fatalf("FIB = %d bytes, unreasonably large for Abilene", s.FIBBytes)
	}
	if s.RIBBytes > 1<<20 {
		t.Fatalf("RIB = %d bytes, unreasonably large for Abilene", s.RIBBytes)
	}
}

func TestNextBaseMissingPair(t *testing.T) {
	_, n := buildAbilene(t)
	if _, ok := n.Routers[0].NextBase(5, 5, FlowKey{}); ok {
		t.Fatalf("NextBase invented an entry")
	}
}
