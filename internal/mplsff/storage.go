package mplsff

// Storage accounting for Table 3: the router storage overhead of R3's
// MPLS-ff implementation. Sizes follow the Linux MPLS structures the
// paper's prototype extends: an ILM entry (label lookup key plus FWD
// header), an NHLFE (next hop, out label, splitting ratio), and a RIB
// entry (one nonzero p_l(e) fraction a router keeps to rescale locally).
const (
	// ILMEntryBytes covers the label key, FWD header and bookkeeping.
	ILMEntryBytes = 64
	// NHLFEBytes covers interface, label and ratio fields.
	NHLFEBytes = 48
	// RIBEntryBytes is one stored p fraction: (l, e, value).
	RIBEntryBytes = 16
)

// Storage summarizes per-router storage use, reported as the worst
// router in the network (matching Table 3's per-router bounds).
type Storage struct {
	// ILMEntries is the largest number of ILM entries on any router.
	ILMEntries int
	// NHLFEs is the largest number of NHLFE entries on any router.
	NHLFEs int
	// FIBBytes bounds the data-plane memory of the busiest router: its
	// ILM and NHLFE tables.
	FIBBytes int
	// RIBBytes bounds the control-plane storage of a router's local copy
	// of the protection routing p (nonzero fractions only).
	RIBBytes int
	// TotalNHLFEs is the network-wide NHLFE count (the paper's # NHLFE
	// column counts the network total).
	TotalNHLFEs int
	// TotalILM is the network-wide ILM count of distinct protection
	// labels (equals the number of protected links).
	TotalILM int
}

// MeasureStorage computes the storage overhead of the network's current
// tables.
func (n *Network) MeasureStorage() Storage {
	var s Storage
	labels := make(map[Label]bool)
	for _, r := range n.Routers {
		ilm := len(r.ILM)
		nhlfe := 0
		for lbl, fwd := range r.ILM {
			labels[lbl] = true
			nhlfe += len(fwd.Entries)
		}
		if ilm > s.ILMEntries {
			s.ILMEntries = ilm
		}
		if nhlfe > s.NHLFEs {
			s.NHLFEs = nhlfe
		}
		if fib := ilm*ILMEntryBytes + nhlfe*NHLFEBytes; fib > s.FIBBytes {
			s.FIBBytes = fib
		}
		s.TotalNHLFEs += nhlfe
	}
	s.TotalILM = len(labels)

	// RIB: each router stores the full p matrix's nonzero entries.
	nz := 0
	prot := n.state.Prot()
	for l := range prot {
		for _, v := range prot[l] {
			if v > 1e-12 {
				nz++
			}
		}
	}
	s.RIBBytes = nz * RIBEntryBytes
	return s
}
