package mplsff

import (
	"testing"

	"repro/internal/graph"
)

// deltaSequence builds the per-failure round deltas for a failure list:
// round i carries the row-level difference caused by failure i.
func deltaSequence(t *testing.T, failures []graph.LinkID) (rounds []*Delta, final *Network) {
	t.Helper()
	plan, _ := buildAbilene(t)
	prev := Build(plan)
	next := Build(plan)
	for _, e := range failures {
		if err := next.OnFailure(e); err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, Diff(prev, next))
		if err := prev.OnFailure(e); err != nil {
			t.Fatal(err)
		}
	}
	return rounds, next
}

func TestDiffOfEqualNetworksIsEmpty(t *testing.T) {
	plan, n := buildAbilene(t)
	m := Build(plan)
	if d := Diff(n, m); !d.Empty() {
		t.Fatalf("diff of two identical builds is not empty: %d routers, failed %v",
			len(d.Routers), d.Failed)
	}
	if (&Delta{}).WireSize() <= 0 {
		t.Fatal("empty delta has nonpositive wire size")
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	failures := []graph.LinkID{0, 2, 5}
	rounds, want := deltaSequence(t, failures)
	plan, _ := buildAbilene(t)
	view := Build(plan)
	for i, d := range rounds {
		if d.Empty() {
			t.Fatalf("round %d delta is empty", i+1)
		}
		if d.WireSize() <= 8 {
			t.Fatalf("round %d wire size %d implausibly small", i+1, d.WireSize())
		}
		if got := view.ApplyRound(i+1, d); got != 1 {
			t.Fatalf("round %d: applied %d rounds, want 1", i+1, got)
		}
	}
	if view.Fingerprint() != want.Fingerprint() {
		t.Fatal("delta-driven view fingerprint differs from OnFailure-driven network")
	}
	for _, e := range failures {
		if !view.KnowsFailed(e) {
			t.Fatalf("view does not know link %d failed", e)
		}
	}
	if view.RoundsApplied() != len(rounds) || view.PendingRounds() != 0 {
		t.Fatalf("rounds applied %d pending %d, want %d and 0",
			view.RoundsApplied(), view.PendingRounds(), len(rounds))
	}
}

// TestApplyRoundIdempotentReorder is the satellite test: duplicated and
// reordered round deliveries leave the view identical to a single
// in-order delivery.
func TestApplyRoundIdempotentReorder(t *testing.T) {
	rounds, want := deltaSequence(t, []graph.LinkID{0, 2, 5})
	plan, _ := buildAbilene(t)

	// Reference: exactly once, in order.
	ref := Build(plan)
	for i, d := range rounds {
		ref.ApplyRound(i+1, d)
	}
	if ref.Fingerprint() != want.Fingerprint() {
		t.Fatal("in-order reference diverges from OnFailure network")
	}

	// Chaotic delivery: out of order with duplicates, including a
	// duplicate of an already-applied round.
	view := Build(plan)
	if got := view.ApplyRound(3, rounds[2]); got != 0 {
		t.Fatalf("future round applied %d rounds, want 0 (buffered)", got)
	}
	if view.PendingRounds() != 1 {
		t.Fatalf("pending = %d, want 1", view.PendingRounds())
	}
	if got := view.ApplyRound(3, rounds[2]); got != 0 {
		t.Fatal("duplicate future round applied something")
	}
	if got := view.ApplyRound(1, rounds[0]); got != 1 {
		t.Fatalf("round 1 applied %d rounds, want 1", got)
	}
	if got := view.ApplyRound(1, rounds[0]); got != 0 {
		t.Fatal("duplicate of applied round re-applied")
	}
	if got := view.ApplyRound(2, rounds[1]); got != 2 {
		t.Fatalf("gap fill applied %d rounds, want 2 (round 2 + buffered 3)", got)
	}
	if got := view.ApplyRound(2, rounds[1]); got != 0 {
		t.Fatal("late duplicate re-applied")
	}
	if view.Fingerprint() != ref.Fingerprint() {
		t.Fatal("chaotic delivery fingerprint differs from in-order delivery")
	}
	if view.RoundsApplied() != 3 || view.PendingRounds() != 0 {
		t.Fatalf("rounds applied %d pending %d, want 3 and 0",
			view.RoundsApplied(), view.PendingRounds())
	}
}

// TestApplyDeltaCopies: one Delta applied to two views must not share row
// storage.
func TestApplyDeltaCopies(t *testing.T) {
	rounds, _ := deltaSequence(t, []graph.LinkID{0})
	plan, _ := buildAbilene(t)
	a, b := Build(plan), Build(plan)
	a.ApplyRound(1, rounds[0])
	b.ApplyRound(1, rounds[0])
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same delta produced different views")
	}
	// Corrupt one view's rows; the other must be unaffected.
	for _, r := range a.Routers {
		for _, fwd := range r.ILM {
			for i := range fwd.Entries {
				fwd.Entries[i].Ratio = 0.123
			}
		}
	}
	fp := b.Fingerprint()
	c := Build(plan)
	c.ApplyRound(1, rounds[0])
	if fp != c.Fingerprint() {
		t.Fatal("mutating one view leaked into the shared delta")
	}
}
