package mplsff

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
)

// DetourPath is one explicit LSP of a link's detour, for deployments that
// implement R3 over standard MPLS (paper §4.1): the flow-based detour ξ_e
// is decomposed into paths, each signaled as an ordinary tunnel carrying
// the given fraction of the protected traffic.
type DetourPath struct {
	Links []graph.LinkID
	// Frac is the fraction of the protected link's traffic on this path.
	Frac float64
}

// DetourPaths decomposes the current detour of a failed link into at most
// maxPaths explicit LSPs. The fractions sum to 1 unless the link is
// unprotectable (network partition), in which case the result is empty.
// As the paper notes, this is the interoperable-but-heavier alternative
// to MPLS-ff: after each subsequent failure the rescaled detour may
// decompose into different paths that must be re-signaled.
func DetourPaths(st *core.State, e graph.LinkID, maxPaths int) ([]DetourPath, error) {
	if !st.Failed().Contains(e) {
		return nil, fmt.Errorf("mplsff: link %d has not failed", e)
	}
	xi := st.Detour(e)
	if xi == nil {
		return nil, fmt.Errorf("mplsff: no detour stored for link %d", e)
	}
	total := 0.0
	for _, v := range xi {
		total += v
	}
	if total == 0 {
		return nil, nil // unprotectable: traffic dropped at a partition
	}
	g := st.G
	link := g.Link(e)
	f := routing.NewFlow(g, []routing.Commodity{{Src: link.Src, Dst: link.Dst, Link: e}})
	copy(f.Frac[0], xi)
	var out []DetourPath
	for _, p := range f.Decompose(0, maxPaths) {
		out = append(out, DetourPath{Links: p.Links, Frac: p.Frac})
	}
	return out, nil
}
