package mplsff

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/graph"
)

// MaxStackDepth bounds the label-stack walk in one forwarding decision:
// a packet needing more than this many stack operations at a single
// router is looping through protection labels and must be dropped. R3
// with F failures never stacks deeper than F labels, so 16 leaves ample
// headroom while keeping adversarial tables from spinning forever.
const MaxStackDepth = 16

// KnowsFailed reports whether this view has been told link e failed,
// without cloning the failure set (consulted per packet).
func (n *Network) KnowsFailed(e graph.LinkID) bool { return n.failed.Contains(e) }

// Fingerprint digests the view's forwarding state: the failure set, the
// base FIB and the ILM rows of every *surviving* link, all in canonical
// order. Two routers whose floods delivered the same failure set in any
// order produce identical fingerprints (Theorem 3); the emulator's
// invariant checker compares them after every convergence.
//
// ILM rows of failed links are excluded on purpose: they hold the detour
// ξ_e frozen at the moment e failed, and that snapshot legitimately
// depends on the order failures were detected (see State.ProtEquals).
func (n *Network) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }

	failed := n.failed
	for _, id := range failed.IDs() {
		w64(uint64(id))
	}
	for _, r := range n.Routers {
		w64(uint64(r.Node))
		pairs := make([][2]graph.NodeID, 0, len(r.FIB))
		for k := range r.FIB {
			pairs = append(pairs, k)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		for _, k := range pairs {
			w64(uint64(k[0])<<32 | uint64(k[1]))
			for _, e := range r.FIB[k] {
				w64(uint64(e.Out))
				w64(uint64(e.OutLabel))
				wf(e.Ratio)
			}
		}
		labels := make([]Label, 0, len(r.ILM))
		for lbl := range r.ILM {
			if lbl >= ProtLabelBase && failed.Contains(graph.LinkID(lbl-ProtLabelBase)) {
				continue // frozen detour row: order dependent by design
			}
			labels = append(labels, lbl)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		for _, lbl := range labels {
			fwd := r.ILM[lbl]
			w64(uint64(lbl))
			if fwd.Pop {
				w64(1)
				continue
			}
			w64(2)
			for _, e := range fwd.Entries {
				w64(uint64(e.Out))
				w64(uint64(e.OutLabel))
				wf(e.Ratio)
			}
		}
	}
	return h.Sum64()
}
