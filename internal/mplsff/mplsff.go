// Package mplsff implements the paper's MPLS-ff data plane (§4): an MPLS
// extension whose forward (FWD) instructions hold multiple next-hop label
// forwarding entries (NHLFEs) with per-next-hop splitting ratios, driven
// by a flow hash salted with a per-router private number. R3's protection
// routing p is programmed into these tables; a link failure activates
// protection by label stacking, and reconfiguration rescales the local
// splitting ratios.
package mplsff

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/graph"
)

// Label is an MPLS label. Protection labels are allocated one per
// protected link, starting at ProtLabelBase.
type Label uint32

// ProtLabelBase is the first label used for link protection (labels below
// are reserved for other LSPs, as in common deployments).
const ProtLabelBase Label = 100

// FlowKey identifies a flow for consistent splitting: the classic 4-tuple
// (we omit the protocol byte, as the paper's hash does).
type FlowKey struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
}

// NHLFE is one next-hop label forwarding entry: the outgoing link, the
// label to carry (our implementation keeps the protection label
// unchanged along the detour, as in the paper's example), and the
// fraction of flows this entry should receive.
type NHLFE struct {
	Out      graph.LinkID
	OutLabel Label
	Ratio    float64
}

// FWD is a forward instruction: a set of NHLFEs with splitting ratios,
// or a pop at the protected link's tail.
type FWD struct {
	Entries []NHLFE
	// Pop indicates the protection label is popped here (tail of the
	// protected link) and forwarding continues on the base routing.
	Pop bool
}

// Router is one node's MPLS-ff forwarding state.
type Router struct {
	Node graph.NodeID
	// salt is the 96-bit router-private number mixed into the flow hash
	// so splits at different routers are independent (§4.2).
	salt [12]byte
	// ILM is the incoming label map: protection label → FWD.
	ILM map[Label]*FWD
	// FIB holds base-routing next hops per OD pair, with ratios from the
	// flow representation of r normalized at this node.
	FIB map[[2]graph.NodeID][]NHLFE
}

// HashBits is the width of the splitting hash (the paper uses 6 bits).
const HashBits = 6

// hashBuckets is the number of hash buckets.
const hashBuckets = 1 << HashBits

// Hash maps a flow to a bucket in [0, 2^HashBits), mixing the router's
// private salt so different routers split independently.
func (r *Router) Hash(f FlowKey) uint32 {
	h := fnv.New64a()
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:], f.SrcIP)
	binary.BigEndian.PutUint32(buf[4:], f.DstIP)
	binary.BigEndian.PutUint16(buf[8:], f.SrcPort)
	binary.BigEndian.PutUint16(buf[10:], f.DstPort)
	h.Write(buf[:])
	h.Write(r.salt[:])
	return uint32(h.Sum64() % hashBuckets)
}

// selectNHLFE picks the entry whose cumulative ratio bucket contains the
// flow's hash value. Entries with zero ratio are never selected.
func (r *Router) selectNHLFE(entries []NHLFE, f FlowKey) (NHLFE, bool) {
	var total float64
	for _, e := range entries {
		total += e.Ratio
	}
	if total <= 0 {
		return NHLFE{}, false
	}
	x := (float64(r.Hash(f)) + 0.5) / hashBuckets * total
	var cum float64
	for _, e := range entries {
		cum += e.Ratio
		if x <= cum && e.Ratio > 0 {
			return e, true
		}
	}
	// Ratio rounding: fall back to the last positive entry.
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Ratio > 0 {
			return entries[i], true
		}
	}
	return NHLFE{}, false
}

// NextBase returns the base-routing next hop for a flow of OD pair
// (src, dst) at this router.
func (r *Router) NextBase(src, dst graph.NodeID, f FlowKey) (NHLFE, bool) {
	entries, ok := r.FIB[[2]graph.NodeID{src, dst}]
	if !ok {
		return NHLFE{}, false
	}
	return r.selectNHLFE(entries, f)
}

// NextProtected returns the forwarding decision for a packet whose top
// label is lbl: either an NHLFE to follow, or pop=true at the tail.
func (r *Router) NextProtected(lbl Label, f FlowKey) (nh NHLFE, pop, ok bool) {
	fwd, found := r.ILM[lbl]
	if !found {
		return NHLFE{}, false, false
	}
	if fwd.Pop {
		return NHLFE{}, true, true
	}
	nh, ok = r.selectNHLFE(fwd.Entries, f)
	return nh, false, ok
}

// Network is the MPLS-ff control and data plane for a whole topology:
// per-router tables programmed from an R3 state, plus the label
// allocation for protected links.
type Network struct {
	G       *graph.Graph
	Routers []*Router
	// LabelOf maps each protected link to its protection label.
	LabelOf map[graph.LinkID]Label

	state *core.State
	// failed is the network's own failure knowledge, updated by OnFailure
	// and by staged row deltas (ApplyDelta); forwarding and fingerprints
	// consult it rather than the bookkeeping state, so a view driven
	// purely by table-level rounds behaves identically to one driven by
	// R3's online rescaling.
	failed graph.LinkSet
	// nextRound and pending implement versioned round application: rounds
	// are 1-based and strictly ordered; out-of-order arrivals buffer in
	// pending until their predecessors apply.
	nextRound int
	pending   map[int]*Delta
}

// LabelFor returns the protection label of link e.
func LabelFor(e graph.LinkID) Label { return ProtLabelBase + Label(e) }

// Build programs a network from a precomputed R3 plan: the central server
// role of §4.3 (label allocation, MPLS-ff setup, distribution of p).
func Build(plan *core.Plan) *Network {
	st := core.NewState(plan)
	n := &Network{
		G:         plan.G,
		LabelOf:   make(map[graph.LinkID]Label, plan.G.NumLinks()),
		state:     st,
		nextRound: 1,
	}
	for e := 0; e < plan.G.NumLinks(); e++ {
		n.LabelOf[graph.LinkID(e)] = LabelFor(graph.LinkID(e))
	}
	n.Routers = make([]*Router, plan.G.NumNodes())
	for v := 0; v < plan.G.NumNodes(); v++ {
		r := &Router{
			Node: graph.NodeID(v),
			ILM:  make(map[Label]*FWD),
			FIB:  make(map[[2]graph.NodeID][]NHLFE),
		}
		// Router-private 96-bit salt derived from the node ID; any
		// unpredictable per-router value works.
		h := fnv.New128a()
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v)^0x5bd1e995)
		h.Write(b[:])
		copy(r.salt[:], h.Sum(nil))
		n.Routers[v] = r
	}
	n.program()
	return n
}

// State exposes the underlying R3 online state (read-only use).
func (n *Network) State() *core.State { return n.state }

// Clone deep-copies the network: tables, label allocation, failure
// knowledge, bookkeeping state, and round version. Buffered out-of-order
// rounds are not carried over. The transition scheduler clones a
// reference network per migration batch so intermediate mixed
// configurations never alias each other.
func (n *Network) Clone() *Network {
	cp := &Network{
		G:         n.G,
		LabelOf:   make(map[graph.LinkID]Label, len(n.LabelOf)),
		state:     n.state.Clone(),
		failed:    n.failed.Clone(),
		nextRound: n.nextRound,
	}
	for k, v := range n.LabelOf {
		cp.LabelOf[k] = v
	}
	cp.Routers = make([]*Router, len(n.Routers))
	for i, r := range n.Routers {
		nr := &Router{
			Node: r.Node,
			salt: r.salt,
			ILM:  make(map[Label]*FWD, len(r.ILM)),
			FIB:  make(map[[2]graph.NodeID][]NHLFE, len(r.FIB)),
		}
		for k, v := range r.ILM {
			nr.ILM[k] = cloneFWD(v)
		}
		for k, v := range r.FIB {
			nr.FIB[k] = cloneNHLFEs(v)
		}
		cp.Routers[i] = nr
	}
	return cp
}

// SetFIBRow replaces router u's base-FIB row for one OD pair, deep-copying
// the entries; a nil row deletes (matching Build, which only installs rows
// with at least one entry). The transition scheduler uses this to
// materialize mixed old/new intermediate configurations one commodity at
// a time.
func (n *Network) SetFIBRow(u graph.NodeID, od [2]graph.NodeID, entries []NHLFE) {
	r := n.Routers[u]
	if entries == nil {
		delete(r.FIB, od)
		return
	}
	r.FIB[od] = cloneNHLFEs(entries)
}

// Failed returns the failure set this view knows about (via OnFailure or
// staged deltas).
func (n *Network) Failed() graph.LinkSet { return n.failed.Clone() }

// OnFailure applies a link failure: R3 online reconfiguration rescales p,
// and every router reprograms its protection splitting ratios (§4.3
// protection routing update). The base FIB deliberately keeps the
// pre-failure routing r — as in the paper's prototype, traffic that would
// cross a failed link is carried around it by label stacking, which is
// load-equivalent to the updated r' of equation (9). Idempotent per link.
func (n *Network) OnFailure(e graph.LinkID) error {
	if n.failed.Contains(e) {
		return nil
	}
	if err := n.state.Fail(e); err != nil {
		return err
	}
	n.failed.Add(e)
	n.programILM()
	return nil
}

// ReprogramILM swaps in a new bookkeeping state and rebuilds every ILM
// row from it, leaving the base FIB untouched (the FIB deliberately keeps
// the pre-failure routing, exactly as OnFailure does). The transition
// scheduler uses this to materialize each staged intermediate state on a
// reference network before diffing it into a round delta.
func (n *Network) ReprogramILM(st *core.State) {
	n.state = st
	n.failed = st.Failed()
	n.programILM()
}

// ProgramColumn overwrites the ILM rows of one protected link's detour
// with caller-supplied fractions (deleting the old rows first), e.g. an
// LP-computed interim detour during a staged transition.
func (n *Network) ProgramColumn(lid graph.LinkID, frac []float64) {
	lbl := n.LabelOf[lid]
	for _, r := range n.Routers {
		delete(r.ILM, lbl)
	}
	n.programColumn(lid, frac)
}

// program builds both tables at setup time.
func (n *Network) program() {
	n.programILM()
	n.programFIB()
}

// programILM rebuilds every router's ILM from the current state.
func (n *Network) programILM() {
	g := n.G
	failed := n.state.Failed()
	prot := n.state.Prot()

	for _, r := range n.Routers {
		r.ILM = make(map[Label]*FWD)
	}
	// For each protected (surviving) link l, program the routers on its
	// detour with splitting ratios normalized from the current p'; failed
	// links keep their frozen detour ξ, which head routers use when
	// stacking.
	for l := 0; l < g.NumLinks(); l++ {
		lid := graph.LinkID(l)
		if failed.Contains(lid) {
			n.programColumn(lid, n.state.Detour(lid))
			continue
		}
		n.programColumn(lid, prot[l])
	}
}

// programFIB installs the base routing next hops per OD pair. Called once
// at Build: the base FIB is never reprogrammed on failures.
func (n *Network) programFIB() {
	g := n.G
	base := n.state.Base()
	for _, r := range n.Routers {
		r.FIB = make(map[[2]graph.NodeID][]NHLFE)
	}
	for k, c := range base.Comms {
		fr := base.Frac[k]
		for v := 0; v < g.NumNodes(); v++ {
			node := graph.NodeID(v)
			var entries []NHLFE
			for _, id := range g.Out(node) {
				if fr[id] > 1e-12 {
					entries = append(entries, NHLFE{Out: id, Ratio: fr[id]})
				}
			}
			if entries != nil {
				n.Routers[v].FIB[[2]graph.NodeID{c.Src, c.Dst}] = entries
			}
		}
	}
}

// programColumn installs ILM entries for one protected link's detour
// fractions (p'_l or ξ_l).
func (n *Network) programColumn(lid graph.LinkID, frac []float64) {
	if frac == nil {
		return
	}
	g := n.G
	link := g.Link(lid)
	lbl := n.LabelOf[lid]
	for v := 0; v < g.NumNodes(); v++ {
		node := graph.NodeID(v)
		if node == link.Dst {
			n.Routers[v].ILM[lbl] = &FWD{Pop: true}
			continue
		}
		var entries []NHLFE
		for _, id := range g.Out(node) {
			if id == lid {
				// Traffic protected against l never uses l itself once l
				// has failed; p_l(l) only matters pre-failure.
				continue
			}
			if frac[id] > 1e-12 {
				entries = append(entries, NHLFE{Out: id, OutLabel: lbl, Ratio: frac[id]})
			}
		}
		if entries != nil {
			n.Routers[v].ILM[lbl] = &FWD{Entries: entries}
		}
	}
}
