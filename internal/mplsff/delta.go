package mplsff

import (
	"sort"

	"repro/internal/graph"
)

// This file implements versioned, row-granular table updates: the unit of
// work a staged reconfiguration distributes. A Delta is the exact
// row-level difference between two programmed networks; rounds carry
// deltas with 1-based sequence numbers and apply strictly in order, so
// duplicated or reordered deliveries (anti-entropy refloods, chaos) leave
// a view byte-identical to a single in-order delivery.

// RouterDelta is the table change set for one router. A nil value marks a
// row deletion; a non-nil value replaces the row wholesale (rows are
// small, so row- rather than entry-granularity keeps application
// trivially idempotent).
type RouterDelta struct {
	FIB map[[2]graph.NodeID][]NHLFE
	ILM map[Label]*FWD
}

// Delta is one round's network-wide change set: newly learned failures
// plus per-router row updates.
type Delta struct {
	Failed  []graph.LinkID
	Routers map[graph.NodeID]*RouterDelta
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	if d == nil {
		return true
	}
	if len(d.Failed) > 0 {
		return false
	}
	for _, rd := range d.Routers {
		if len(rd.FIB) > 0 || len(rd.ILM) > 0 {
			return false
		}
	}
	return true
}

// WireSize estimates the serialized size in bytes (IDs and counts as
// fixed 8-byte words, NHLFEs as out+label+ratio words), so experiments
// can report control-plane cost per round.
func (d *Delta) WireSize() int {
	if d == nil {
		return 0
	}
	sz := 8 + 8*len(d.Failed)
	for _, rd := range d.Routers {
		sz += 8 // router id
		for _, v := range rd.FIB {
			sz += 16 + 24*len(v)
		}
		for _, v := range rd.ILM {
			sz += 8
			if v != nil {
				sz += 8 + 24*len(v.Entries)
			}
		}
	}
	return sz
}

func nhlfesEqual(a, b []NHLFE) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fwdEqual(a, b *FWD) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Pop == b.Pop && nhlfesEqual(a.Entries, b.Entries)
}

func cloneNHLFEs(a []NHLFE) []NHLFE {
	return append([]NHLFE(nil), a...)
}

func cloneFWD(f *FWD) *FWD {
	if f == nil {
		return nil
	}
	return &FWD{Entries: cloneNHLFEs(f.Entries), Pop: f.Pop}
}

// Diff computes the row-level delta that transforms old's tables and
// failure knowledge into next's. Both networks must be built over the
// same graph (same routers, same label allocation). Rows are compared
// exactly (bit-equal ratios): the deterministic per-router salts and
// programming order make equal states produce equal rows, so a no-op
// diff really is empty.
func Diff(old, next *Network) *Delta {
	d := &Delta{}
	for _, id := range next.failed.IDs() {
		if !old.failed.Contains(id) {
			d.Failed = append(d.Failed, id)
		}
	}
	sort.Slice(d.Failed, func(i, j int) bool { return d.Failed[i] < d.Failed[j] })

	for i, nr := range next.Routers {
		or := old.Routers[i]
		var rd *RouterDelta
		get := func() *RouterDelta {
			if rd == nil {
				rd = &RouterDelta{
					FIB: make(map[[2]graph.NodeID][]NHLFE),
					ILM: make(map[Label]*FWD),
				}
			}
			return rd
		}
		for k, v := range nr.FIB {
			if ov, ok := or.FIB[k]; !ok || !nhlfesEqual(ov, v) {
				get().FIB[k] = cloneNHLFEs(v)
			}
		}
		for k := range or.FIB {
			if _, ok := nr.FIB[k]; !ok {
				get().FIB[k] = nil
			}
		}
		for k, v := range nr.ILM {
			if ov, ok := or.ILM[k]; !ok || !fwdEqual(ov, v) {
				get().ILM[k] = cloneFWD(v)
			}
		}
		for k := range or.ILM {
			if _, ok := nr.ILM[k]; !ok {
				get().ILM[k] = nil
			}
		}
		if rd != nil {
			if d.Routers == nil {
				d.Routers = make(map[graph.NodeID]*RouterDelta)
			}
			d.Routers[nr.Node] = rd
		}
	}
	return d
}

// ApplyDelta applies a delta unconditionally (no versioning): failures
// are learned, nil rows deleted, non-nil rows replaced. Rows are
// deep-copied, so one Delta can be applied to many views without shared
// storage. The bookkeeping state is NOT touched: a staged view's tables
// are authoritative, exactly as a real router's RIB lags its FIB during
// a rollout.
func (n *Network) ApplyDelta(d *Delta) {
	if d == nil {
		return
	}
	for _, e := range d.Failed {
		n.failed.Add(e)
	}
	for node, rd := range d.Routers {
		r := n.Routers[node]
		for k, v := range rd.FIB {
			if v == nil {
				delete(r.FIB, k)
			} else {
				r.FIB[k] = cloneNHLFEs(v)
			}
		}
		for k, v := range rd.ILM {
			if v == nil {
				delete(r.ILM, k)
			} else {
				r.ILM[k] = cloneFWD(v)
			}
		}
	}
}

// ApplyRound delivers round seq (1-based). Rounds apply strictly in
// order: a duplicate of an already-applied round is ignored, a future
// round buffers until its predecessors arrive. Returns how many rounds
// were applied as a result of this delivery (0, 1, or more when a gap
// fills). Any interleaving of duplicated and reordered deliveries of
// rounds 1..k leaves the view identical to applying them once, in order.
func (n *Network) ApplyRound(seq int, d *Delta) int {
	if seq < n.nextRound {
		return 0
	}
	if n.pending == nil {
		n.pending = make(map[int]*Delta)
	}
	n.pending[seq] = d
	applied := 0
	for {
		next, ok := n.pending[n.nextRound]
		if !ok {
			break
		}
		delete(n.pending, n.nextRound)
		n.ApplyDelta(next)
		n.nextRound++
		applied++
	}
	return applied
}

// RoundsApplied returns how many rounds have been applied so far.
func (n *Network) RoundsApplied() int { return n.nextRound - 1 }

// PendingRounds returns how many out-of-order rounds are buffered.
func (n *Network) PendingRounds() int { return len(n.pending) }
