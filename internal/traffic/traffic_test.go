package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topo"
)

func TestMatrixSetAt(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Set(2, 1, 7)
	if m.At(0, 1) != 5 || m.At(2, 1) != 7 || m.At(1, 0) != 0 {
		t.Fatalf("At/Set mismatch")
	}
	if m.Total() != 12 {
		t.Fatalf("Total = %v", m.Total())
	}
	if m.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d", m.NumPairs())
	}
	if m.MaxDemand() != 7 {
		t.Fatalf("MaxDemand = %v", m.MaxDemand())
	}
}

func TestMatrixDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("diagonal Set did not panic")
		}
	}()
	NewMatrix(2).Set(1, 1, 3)
}

func TestMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative Set did not panic")
		}
	}()
	NewMatrix(2).Set(0, 1, -1)
}

func TestMatrixArithmetic(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 1, 4)
	b := NewMatrix(2)
	b.Set(0, 1, 1)
	sum := a.Add(b)
	if sum.At(0, 1) != 5 {
		t.Fatalf("Add = %v", sum.At(0, 1))
	}
	diff := a.Sub(b)
	if diff.At(0, 1) != 3 {
		t.Fatalf("Sub = %v", diff.At(0, 1))
	}
	// Original unchanged.
	if a.At(0, 1) != 4 {
		t.Fatalf("Add/Sub mutated receiver")
	}
	a.Scale(0.5)
	if a.At(0, 1) != 2 {
		t.Fatalf("Scale = %v", a.At(0, 1))
	}
	cp := a.Clone()
	cp.Set(0, 1, 9)
	if a.At(0, 1) != 2 {
		t.Fatalf("Clone shares storage")
	}
}

func TestSubClampsFloatNoise(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 1, 1)
	b := NewMatrix(2)
	b.Set(0, 1, 1+1e-12)
	if got := a.Sub(b).At(0, 1); got != 0 {
		t.Fatalf("Sub did not clamp tiny negative: %v", got)
	}
}

func TestGravityTotalAndSupport(t *testing.T) {
	g := topo.Abilene()
	m := Gravity(g, 500, 1)
	if math.Abs(m.Total()-500) > 1e-6 {
		t.Fatalf("Total = %v, want 500", m.Total())
	}
	// Gravity model has full support off the diagonal.
	n := g.NumNodes()
	if m.NumPairs() != n*(n-1) {
		t.Fatalf("NumPairs = %d, want %d", m.NumPairs(), n*(n-1))
	}
	for a := 0; a < n; a++ {
		if m.At(graph.NodeID(a), graph.NodeID(a)) != 0 {
			t.Fatalf("diagonal not zero")
		}
	}
}

func TestGravityDeterministic(t *testing.T) {
	g := topo.SBC()
	a := Gravity(g, 100, 7)
	b := Gravity(g, 100, 7)
	c := Gravity(g, 100, 8)
	same, diff := true, false
	a.Pairs(func(x, y graph.NodeID, v float64) {
		if b.At(x, y) != v {
			same = false
		}
		if c.At(x, y) != v {
			diff = true
		}
		_ = diff
	})
	if !same {
		t.Fatalf("same seed produced different matrices")
	}
	if c.At(0, 1) == a.At(0, 1) {
		t.Fatalf("different seeds produced identical entry")
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(4, 2)
	if m.Total() != 24 {
		t.Fatalf("Total = %v, want 24", m.Total())
	}
}

func TestDiurnalSeries(t *testing.T) {
	g := topo.USISP()
	base := Gravity(g, 1000, 3)
	series := DiurnalSeries(base, 168, 4)
	if len(series) != 168 {
		t.Fatalf("len = %d", len(series))
	}
	// The trough must be meaningfully below the peak.
	lo, hi := math.Inf(1), 0.0
	for _, m := range series {
		tt := m.Total()
		if tt < lo {
			lo = tt
		}
		if tt > hi {
			hi = tt
		}
	}
	if hi/lo < 1.5 {
		t.Fatalf("diurnal swing too small: lo=%v hi=%v", lo, hi)
	}
	// Peak hours are in the evening (hour of day 16..23).
	pk := PeakIndex(series)
	if hod := pk % 24; hod < 14 {
		t.Errorf("peak at hour-of-day %d, expected evening", hod)
	}
}

func TestSplitClasses(t *testing.T) {
	g := topo.USISP()
	total := Gravity(g, 1000, 5)
	classes := SplitClasses(total, 0.1, 0.2, 6)
	sum := classes[TPRT].Add(classes[TPP]).Add(classes[IP])
	total.Pairs(func(a, b graph.NodeID, v float64) {
		if math.Abs(sum.At(a, b)-v) > 1e-9*v {
			t.Fatalf("classes do not sum to total at %d->%d: %v vs %v", a, b, sum.At(a, b), v)
		}
	})
	// TPRT is the smallest class overall.
	if classes[TPRT].Total() >= classes[IP].Total() {
		t.Errorf("TPRT (%v) should be far smaller than IP (%v)",
			classes[TPRT].Total(), classes[IP].Total())
	}
}

func TestSplitClassesBadFractions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("bad fractions did not panic")
		}
	}()
	SplitClasses(NewMatrix(2), 0.8, 0.5, 1)
}

func TestClassString(t *testing.T) {
	if TPRT.String() != "TPRT" || TPP.String() != "TPP" || IP.String() != "IP" {
		t.Fatalf("Class.String wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Fatalf("unknown class string: %s", Class(9))
	}
}

func TestScaleQuickNonNegative(t *testing.T) {
	f := func(vals []float64, scale float64) bool {
		scale = math.Abs(scale)
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		m := NewMatrix(4)
		i := 0
		for a := 0; a < 4 && i < len(vals); a++ {
			for b := 0; b < 4 && i < len(vals); b++ {
				if a == b {
					continue
				}
				v := math.Abs(vals[i])
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 1
				}
				m.Set(graph.NodeID(a), graph.NodeID(b), v)
				i++
			}
		}
		m.Scale(scale)
		neg := false
		m.Pairs(func(a, b graph.NodeID, v float64) {
			if v < 0 {
				neg = true
			}
		})
		return !neg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGravityTopK pins the sparse gravity contract: exactly k pairs in
// the support, total preserved, the support is the k heaviest dense
// pairs, and the result is deterministic per seed.
func TestGravityTopK(t *testing.T) {
	g := topo.Abilene()
	const total, seed, k = 500.0, 3, 12
	dense := Gravity(g, total, seed)
	sparse := GravityTopK(g, total, seed, k)
	if got := sparse.NumPairs(); got != k {
		t.Fatalf("support = %d pairs, want %d", got, k)
	}
	if math.Abs(sparse.Total()-total) > 1e-9*total {
		t.Fatalf("total = %v, want %v", sparse.Total(), total)
	}
	// Every kept pair must be at least as heavy (pre-rescale) as every
	// dropped pair.
	minKept, maxDropped := math.Inf(1), 0.0
	for a := 0; a < dense.N; a++ {
		for b := 0; b < dense.N; b++ {
			if a == b {
				continue
			}
			dv := dense.At(graph.NodeID(a), graph.NodeID(b))
			if sparse.At(graph.NodeID(a), graph.NodeID(b)) > 0 {
				if dv < minKept {
					minKept = dv
				}
			} else if dv > maxDropped {
				maxDropped = dv
			}
		}
	}
	if minKept < maxDropped {
		t.Fatalf("kept pair weight %v below dropped pair weight %v", minKept, maxDropped)
	}
	if GravityTopK(g, total, seed, k).Fingerprint() != sparse.Fingerprint() {
		t.Fatal("GravityTopK not deterministic")
	}
	// k past the support degenerates to the dense matrix.
	if GravityTopK(g, total, seed, 0).Fingerprint() != dense.Fingerprint() {
		t.Fatal("k<=0 should return the dense gravity matrix")
	}
}
