// Package traffic provides traffic matrices and the synthetic workloads
// used by the evaluation: gravity-model demand synthesis (Roughan's
// first-order characterization, as used by the paper for the Rocketfuel
// topologies), a 7-day hourly diurnal series standing in for the paper's
// proprietary US-ISP measurements, and traffic-class splits for prioritized
// R3 (TPRT / TPP / IP).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Matrix is an origin-destination traffic matrix for an N-node network.
// Demands are in the same bandwidth units as link capacities (Mbps in this
// repository). The diagonal is always zero.
type Matrix struct {
	N int
	d []float64 // row-major: d[a*N+b]
}

// NewMatrix returns an all-zero N-by-N traffic matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, d: make([]float64, n*n)}
}

// At returns the demand from a to b.
func (m *Matrix) At(a, b graph.NodeID) float64 { return m.d[int(a)*m.N+int(b)] }

// Set assigns the demand from a to b. Setting a diagonal entry panics.
func (m *Matrix) Set(a, b graph.NodeID, v float64) {
	if a == b {
		panic("traffic: demand on the diagonal")
	}
	if v < 0 {
		panic(fmt.Sprintf("traffic: negative demand %v", v))
	}
	m.d[int(a)*m.N+int(b)] = v
}

// Total returns the sum of all demands.
func (m *Matrix) Total() float64 {
	var sum float64
	for _, v := range m.d {
		sum += v
	}
	return sum
}

// Scale multiplies every demand by f and returns m for chaining.
func (m *Matrix) Scale(f float64) *Matrix {
	for i := range m.d {
		m.d[i] *= f
	}
	return m
}

// Fingerprint returns a content hash of the matrix (FNV-1a over the
// demand bits and N). Caches keyed on it see through pointer identity:
// an in-place-mutated matrix fingerprints differently, while a Clone
// fingerprints the same.
func (m *Matrix) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(u uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(m.N))
	for _, v := range m.d {
		mix(math.Float64bits(v))
	}
	return h
}

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix(m.N)
	copy(cp.d, m.d)
	return cp
}

// Add returns a new matrix m + o (entrywise). The sizes must match.
func (m *Matrix) Add(o *Matrix) *Matrix {
	if m.N != o.N {
		panic("traffic: size mismatch")
	}
	out := m.Clone()
	for i := range out.d {
		out.d[i] += o.d[i]
	}
	return out
}

// Sub returns a new matrix m - o, clamping small negatives (from float
// error) to zero. Sizes must match; a significantly negative entry panics.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	if m.N != o.N {
		panic("traffic: size mismatch")
	}
	out := m.Clone()
	for i := range out.d {
		out.d[i] -= o.d[i]
		if out.d[i] < 0 {
			if out.d[i] < -1e-6*(1+m.d[i]) {
				panic(fmt.Sprintf("traffic: negative difference %v", out.d[i]))
			}
			out.d[i] = 0
		}
	}
	return out
}

// Pairs calls f for every OD pair with nonzero demand.
func (m *Matrix) Pairs(f func(a, b graph.NodeID, v float64)) {
	for a := 0; a < m.N; a++ {
		for b := 0; b < m.N; b++ {
			if v := m.d[a*m.N+b]; v > 0 {
				f(graph.NodeID(a), graph.NodeID(b), v)
			}
		}
	}
}

// NumPairs returns the number of OD pairs with nonzero demand.
func (m *Matrix) NumPairs() int {
	n := 0
	m.Pairs(func(a, b graph.NodeID, v float64) { n++ })
	return n
}

// MaxDemand returns the largest single OD demand.
func (m *Matrix) MaxDemand() float64 {
	max := 0.0
	for _, v := range m.d {
		if v > max {
			max = v
		}
	}
	return max
}

// Gravity synthesizes a traffic matrix with the gravity model: node masses
// are proportional to total incident capacity with lognormal noise, and
// d_ab ∝ mass_a * mass_b. The result is scaled so total demand equals
// total.
func Gravity(g *graph.Graph, total float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		var c float64
		for _, id := range g.Out(graph.NodeID(i)) {
			c += g.Link(id).Capacity
		}
		// Lognormal noise, sigma ~0.5: realistic spread between PoPs with
		// the same connectivity.
		mass[i] = c * math.Exp(0.5*rng.NormFloat64())
	}
	var massSum float64
	for _, v := range mass {
		massSum += v
	}
	m := NewMatrix(n)
	var raw float64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			v := mass[a] * mass[b] / massSum
			m.d[a*n+b] = v
			raw += v
		}
	}
	if raw > 0 {
		m.Scale(total / raw)
	}
	return m
}

// GravityTopK synthesizes a sparse gravity matrix: the same node masses
// and pair weights as Gravity, but only the k heaviest OD pairs carry
// demand, rescaled so total demand equals total. Ties break toward the
// lower pair index, so the support is a pure function of (g, seed, k).
// This is the only tractable way to drive 1000-node-class topologies: a
// dense gravity matrix there means ~10^6 commodities, and the planner's
// per-commodity state scales with support size, not node count.
func GravityTopK(g *graph.Graph, total float64, seed int64, k int) *Matrix {
	dense := Gravity(g, total, seed)
	n := dense.N
	if k <= 0 || k >= n*(n-1) {
		return dense
	}
	idx := make([]int32, 0, n*(n-1))
	for i, v := range dense.d {
		if v > 0 {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := dense.d[idx[a]], dense.d[idx[b]]
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	m := NewMatrix(n)
	var kept float64
	for _, i := range idx[:k] {
		m.d[i] = dense.d[i]
		kept += dense.d[i]
	}
	if kept > 0 {
		m.Scale(total / kept)
	}
	return m
}

// Uniform returns a matrix with demand v between every ordered node pair.
func Uniform(n int, v float64) *Matrix {
	m := NewMatrix(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				m.d[a*n+b] = v
			}
		}
	}
	return m
}

// DiurnalSeries derives an hourly traffic-matrix series from a base matrix:
// hour-of-day profile (trough at ~05:00, peak at ~20:00), a weekend dip,
// and small per-OD multiplicative noise. hours is typically 168 (one week,
// as in the paper's US-ISP trace).
func DiurnalSeries(base *Matrix, hours int, seed int64) []*Matrix {
	rng := rand.New(rand.NewSource(seed))
	series := make([]*Matrix, hours)
	for h := 0; h < hours; h++ {
		hod := h % 24
		dow := (h / 24) % 7
		// Profile in [0.45, 1.0], peaking in the evening.
		f := 0.725 + 0.275*math.Sin(2*math.Pi*(float64(hod)-11)/24)
		if dow >= 5 {
			f *= 0.85
		}
		m := base.Clone()
		for i := range m.d {
			if m.d[i] == 0 {
				continue
			}
			noise := math.Exp(0.08 * rng.NormFloat64())
			m.d[i] *= f * noise
		}
		series[h] = m
	}
	return series
}

// PeakIndex returns the index of the matrix with the largest total demand.
func PeakIndex(series []*Matrix) int {
	best, bi := -1.0, 0
	for i, m := range series {
		if t := m.Total(); t > best {
			best, bi = t, i
		}
	}
	return bi
}

// Class identifies a traffic protection class for prioritized R3.
type Class int

// Traffic classes in decreasing protection level, as in the paper's
// prioritized example: real-time IP transport (protect against 4 failures),
// private transport (2), general IP (1).
const (
	TPRT Class = iota
	TPP
	IP
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case TPRT:
		return "TPRT"
	case TPP:
		return "TPP"
	case IP:
		return "IP"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// SplitClasses splits a total matrix into TPRT, TPP and IP class matrices
// with the given fractions for TPRT and TPP (IP receives the rest).
// Per-OD fractions get mild noise so the classes are not exact rescalings
// of each other.
func SplitClasses(total *Matrix, tprtFrac, tppFrac float64, seed int64) map[Class]*Matrix {
	if tprtFrac < 0 || tppFrac < 0 || tprtFrac+tppFrac > 1 {
		panic("traffic: bad class fractions")
	}
	rng := rand.New(rand.NewSource(seed))
	out := map[Class]*Matrix{
		TPRT: NewMatrix(total.N),
		TPP:  NewMatrix(total.N),
		IP:   NewMatrix(total.N),
	}
	for a := 0; a < total.N; a++ {
		for b := 0; b < total.N; b++ {
			v := total.d[a*total.N+b]
			if v == 0 {
				continue
			}
			jitter := func(f float64) float64 {
				x := f * (0.8 + 0.4*rng.Float64())
				if x > 1 {
					x = 1
				}
				return x
			}
			ft := jitter(tprtFrac)
			fp := jitter(tppFrac)
			if ft+fp > 1 {
				fp = 1 - ft
			}
			out[TPRT].d[a*total.N+b] = v * ft
			out[TPP].d[a*total.N+b] = v * fp
			out[IP].d[a*total.N+b] = v * (1 - ft - fp)
		}
	}
	return out
}

// AbileneMatrix returns a deterministic scaled-down Abilene traffic matrix
// (as the paper extracts from measurement data and scales for Emulab),
// sized for the 100 Mbps emulation links: gravity-based, with total demand
// set so that shortest-path routing stays uncongested in the failure-free
// case.
func AbileneMatrix(g *graph.Graph, total float64) *Matrix {
	return Gravity(g, total, 42)
}
