package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Text traffic-matrix format, one directive per line ('#' comments):
//
//	demand <src> <dst> <mbps>
//
// Node names are resolved through the caller-provided lookup (usually
// graph.NodeByName). ParseMatrix accepts exactly what FormatMatrix
// writes.

// ParseMatrix reads a traffic matrix for an n-node network.
func ParseMatrix(r io.Reader, n int, lookup func(string) (graph.NodeID, bool)) (*Matrix, error) {
	m := NewMatrix(n)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "demand" || len(fields) != 4 {
			return nil, fmt.Errorf("traffic: line %d: want \"demand <src> <dst> <mbps>\"", lineNo)
		}
		a, ok1 := lookup(fields[1])
		b, ok2 := lookup(fields[2])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("traffic: line %d: unknown node", lineNo)
		}
		if a < 0 || int(a) >= n || b < 0 || int(b) >= n {
			return nil, fmt.Errorf("traffic: line %d: node id out of range", lineNo)
		}
		if a == b {
			return nil, fmt.Errorf("traffic: line %d: demand from %s to itself", lineNo, fields[1])
		}
		// "v < 0" is false for NaN, and an Inf demand poisons every load
		// sum downstream — both must be rejected here.
		v, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("traffic: line %d: bad volume %q", lineNo, fields[3])
		}
		sum := m.At(a, b) + v
		if math.IsInf(sum, 0) {
			return nil, fmt.Errorf("traffic: line %d: demand overflow", lineNo)
		}
		m.Set(a, b, sum)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: %v", err)
	}
	return m, nil
}

// FormatMatrix writes m in the text format, naming nodes through name.
func FormatMatrix(w io.Writer, m *Matrix, name func(graph.NodeID) string) error {
	var outerErr error
	m.Pairs(func(a, b graph.NodeID, v float64) {
		if outerErr != nil {
			return
		}
		_, outerErr = fmt.Fprintf(w, "demand %s %s %g\n", name(a), name(b), v)
	})
	return outerErr
}
