package traffic

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
)

func TestAbileneMatrixDeterministic(t *testing.T) {
	g := topo.Abilene()
	a := AbileneMatrix(g, 220)
	b := AbileneMatrix(g, 220)
	a.Pairs(func(x, y graph.NodeID, v float64) {
		if b.At(x, y) != v {
			t.Fatalf("AbileneMatrix not deterministic at %d->%d", x, y)
		}
	})
	if math.Abs(a.Total()-220) > 1e-9 {
		t.Fatalf("Total = %v", a.Total())
	}
}

func TestDiurnalWeekendDip(t *testing.T) {
	g := topo.USISP()
	base := Gravity(g, 1000, 7)
	series := DiurnalSeries(base, 168, 8)
	// Compare the same hour of day on a weekday vs the weekend: the
	// weekend carries less on average across the week's peak hours.
	var weekday, weekend float64
	var nWd, nWe int
	for h, m := range series {
		hod := h % 24
		if hod != 20 { // evening peak hour
			continue
		}
		if (h/24)%7 >= 5 {
			weekend += m.Total()
			nWe++
		} else {
			weekday += m.Total()
			nWd++
		}
	}
	if nWd == 0 || nWe == 0 {
		t.Fatalf("sampling failed: %d/%d", nWd, nWe)
	}
	if weekend/float64(nWe) >= weekday/float64(nWd) {
		t.Fatalf("no weekend dip: weekday %v, weekend %v",
			weekday/float64(nWd), weekend/float64(nWe))
	}
}

func TestSplitClassesDeterministic(t *testing.T) {
	g := topo.Abilene()
	total := Gravity(g, 100, 1)
	a := SplitClasses(total, 0.1, 0.2, 5)
	b := SplitClasses(total, 0.1, 0.2, 5)
	for cls := range a {
		a[cls].Pairs(func(x, y graph.NodeID, v float64) {
			if b[cls].At(x, y) != v {
				t.Fatalf("class %v not deterministic", cls)
			}
		})
	}
}

func TestPeakIndexSingleton(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 5)
	if got := PeakIndex([]*Matrix{m}); got != 0 {
		t.Fatalf("PeakIndex = %d", got)
	}
}
