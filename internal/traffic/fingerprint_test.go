package traffic

import "testing"

func TestFingerprintTracksContent(t *testing.T) {
	a := NewMatrix(4)
	a.Set(0, 1, 10)
	a.Set(2, 3, 5)

	if got, want := a.Fingerprint(), a.Fingerprint(); got != want {
		t.Fatalf("fingerprint not stable: %x vs %x", got, want)
	}
	if got, want := a.Clone().Fingerprint(), a.Fingerprint(); got != want {
		t.Fatalf("clone fingerprints differently: %x vs %x", got, want)
	}

	fp := a.Fingerprint()
	a.Set(0, 1, 11) // in-place mutation must change the fingerprint
	if a.Fingerprint() == fp {
		t.Fatalf("in-place mutation kept fingerprint %x", fp)
	}

	b := NewMatrix(4)
	b.Set(0, 1, 10)
	b.Set(2, 3, 5)
	if b.Fingerprint() == a.Fingerprint() {
		t.Fatalf("different contents collide")
	}
	// Matrices of different size with identical (empty) payloads differ.
	if NewMatrix(2).Fingerprint() == NewMatrix(3).Fingerprint() {
		t.Fatalf("size not mixed into fingerprint")
	}
}
