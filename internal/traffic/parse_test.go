package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
)

func TestParseMatrixBasic(t *testing.T) {
	g := topo.Abilene()
	input := `
# a couple of demands
demand Seattle Denver 120.5
demand Denver Seattle 80
demand Seattle Denver 10   # accumulates
`
	m, err := ParseMatrix(strings.NewReader(input), g.NumNodes(), g.NodeByName)
	if err != nil {
		t.Fatal(err)
	}
	sea, _ := g.NodeByName("Seattle")
	den, _ := g.NodeByName("Denver")
	if got := m.At(sea, den); math.Abs(got-130.5) > 1e-12 {
		t.Fatalf("Seattle->Denver = %v, want 130.5", got)
	}
	if got := m.At(den, sea); got != 80 {
		t.Fatalf("Denver->Seattle = %v", got)
	}
}

func TestParseMatrixErrors(t *testing.T) {
	g := topo.Abilene()
	cases := map[string]string{
		"unknown node":  "demand Seattle Nowhere 5",
		"self demand":   "demand Seattle Seattle 5",
		"bad volume":    "demand Seattle Denver x",
		"negative":      "demand Seattle Denver -3",
		"arity":         "demand Seattle Denver",
		"bad directive": "traffic Seattle Denver 5",
	}
	for name, input := range cases {
		if _, err := ParseMatrix(strings.NewReader(input), g.NumNodes(), g.NodeByName); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixFormatParseRoundTrip(t *testing.T) {
	g := topo.SBC()
	m := Gravity(g, 500, 3)
	var buf bytes.Buffer
	if err := FormatMatrix(&buf, m, func(id graph.NodeID) string { return g.Node(id) }); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMatrix(bytes.NewReader(buf.Bytes()), g.NumNodes(), g.NodeByName)
	if err != nil {
		t.Fatal(err)
	}
	m.Pairs(func(a, b graph.NodeID, v float64) {
		if math.Abs(got.At(a, b)-v) > 1e-9*v {
			t.Fatalf("entry %d->%d drifted: %v vs %v", a, b, got.At(a, b), v)
		}
	})
	if math.Abs(got.Total()-m.Total()) > 1e-6 {
		t.Fatalf("total drifted: %v vs %v", got.Total(), m.Total())
	}
}
