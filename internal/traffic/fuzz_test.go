package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

// fuzzLookup resolves the three fixed node names a fuzz input may use.
func fuzzLookup(s string) (graph.NodeID, bool) {
	switch s {
	case "a":
		return 0, true
	case "b":
		return 1, true
	case "c":
		return 2, true
	}
	return 0, false
}

// FuzzParseMatrix drives the traffic-matrix parser with arbitrary text.
// Accepted matrices must hold only finite nonnegative demands and survive
// a FormatMatrix → ParseMatrix round trip exactly (%g prints the shortest
// representation that re-parses to the same float).
func FuzzParseMatrix(f *testing.F) {
	seeds := []string{
		"demand a b 10\n",
		"# day 0\ndemand a b 1.5\ndemand b c 0\ndemand a b 2.5\n",
		"demand a a 1\n",
		"demand a b NaN\n",
		"demand a b -1\n",
		"demand a b 1e308\ndemand a b 1e308\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	names := []string{"a", "b", "c"}
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ParseMatrix(strings.NewReader(input), 3, fuzzLookup)
		if err != nil {
			return
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				v := m.At(graph.NodeID(i), graph.NodeID(j))
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("accepted matrix holds bad demand [%d][%d] = %v", i, j, v)
				}
				if i == j && v != 0 {
					t.Fatalf("accepted self-demand [%d][%d] = %v", i, j, v)
				}
			}
		}
		var buf bytes.Buffer
		if err := FormatMatrix(&buf, m, func(id graph.NodeID) string { return names[id] }); err != nil {
			t.Fatalf("FormatMatrix: %v", err)
		}
		m2, err := ParseMatrix(bytes.NewReader(buf.Bytes()), 3, fuzzLookup)
		if err != nil {
			t.Fatalf("reformatted matrix rejected: %v\n%s", err, buf.Bytes())
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a, b := m.At(graph.NodeID(i), graph.NodeID(j)), m2.At(graph.NodeID(i), graph.NodeID(j))
				if a != b {
					t.Fatalf("round trip changed [%d][%d]: %v != %v", i, j, a, b)
				}
			}
		}
	})
}
