// Package routing implements the flow representation of routing used by
// R3 (paper §2): each commodity (an origin-destination pair, or a protected
// link's head→tail pair) has a fraction in [0,1] on every directed link,
// subject to the validity conditions [R1]–[R4] of equation (1).
package routing

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Commodity is one routed demand: traffic from Src to Dst of volume
// Demand. For protection routings the commodity corresponds to a protected
// link (Src = head, Dst = tail) and Demand is unused during optimization.
type Commodity struct {
	Src, Dst graph.NodeID
	Demand   float64
	// Link is the protected link ID when this commodity belongs to a
	// protection routing, or -1 for an ordinary OD commodity.
	Link graph.LinkID
}

// Flow is a routing in flow representation: Frac[k][e] is the fraction of
// commodity k's traffic carried by link e.
type Flow struct {
	G     *graph.Graph
	Comms []Commodity
	Frac  [][]float64
}

// NewFlow allocates a zero flow for the given commodities.
func NewFlow(g *graph.Graph, comms []Commodity) *Flow {
	f := &Flow{G: g, Comms: append([]Commodity(nil), comms...)}
	f.Frac = make([][]float64, len(comms))
	for k := range f.Frac {
		f.Frac[k] = make([]float64, g.NumLinks())
	}
	return f
}

// ODCommodities builds commodities from the nonzero entries of a demand
// function. It is a convenience for traffic matrices without importing the
// traffic package.
func ODCommodities(n int, demand func(a, b graph.NodeID) float64) []Commodity {
	var comms []Commodity
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if v := demand(graph.NodeID(a), graph.NodeID(b)); v > 0 {
				comms = append(comms, Commodity{
					Src: graph.NodeID(a), Dst: graph.NodeID(b), Demand: v, Link: -1,
				})
			}
		}
	}
	return comms
}

// LinkCommodities builds one unit commodity per directed link: the
// protection routing's demands (head(l) → tail(l)), in link-ID order.
func LinkCommodities(g *graph.Graph) []Commodity {
	comms := make([]Commodity, g.NumLinks())
	for _, l := range g.Links() {
		comms[l.ID] = Commodity{Src: l.Src, Dst: l.Dst, Demand: 0, Link: l.ID}
	}
	return comms
}

// Clone returns a deep copy of the flow.
func (f *Flow) Clone() *Flow {
	cp := &Flow{G: f.G, Comms: append([]Commodity(nil), f.Comms...)}
	cp.Frac = make([][]float64, len(f.Frac))
	for k := range f.Frac {
		cp.Frac[k] = append([]float64(nil), f.Frac[k]...)
	}
	return cp
}

// Validate checks conditions [R1]–[R4] for every commodity within
// tolerance eps:
//
//	[R1] flow conservation at nodes other than the commodity endpoints;
//	[R2] the source emits exactly one unit;
//	[R3] nothing flows back into the source;
//	[R4] every fraction lies in [0, 1].
//
// A commodity whose source equals its destination is rejected.
func (f *Flow) Validate(eps float64) error {
	for k, c := range f.Comms {
		if c.Src == c.Dst {
			return fmt.Errorf("commodity %d: source equals destination", k)
		}
		fr := f.Frac[k]
		for e, v := range fr {
			if v < -eps || v > 1+eps {
				return fmt.Errorf("commodity %d: frac[%d] = %v outside [0,1] [R4]", k, e, v)
			}
		}
		var srcOut, srcIn float64
		for _, id := range f.G.Out(c.Src) {
			srcOut += fr[id]
		}
		for _, id := range f.G.In(c.Src) {
			srcIn += fr[id]
		}
		if math.Abs(srcOut-1) > eps {
			return fmt.Errorf("commodity %d: source emits %v, want 1 [R2]", k, srcOut)
		}
		if srcIn > eps {
			return fmt.Errorf("commodity %d: %v flows back into source [R3]", k, srcIn)
		}
		for n := 0; n < f.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			if node == c.Src || node == c.Dst {
				continue
			}
			var in, out float64
			for _, id := range f.G.In(node) {
				in += fr[id]
			}
			for _, id := range f.G.Out(node) {
				out += fr[id]
			}
			if math.Abs(in-out) > eps {
				return fmt.Errorf("commodity %d: conservation violated at node %d (in %v, out %v) [R1]", k, n, in, out)
			}
		}
	}
	return nil
}

// Loads returns the total load on every link: sum over commodities of
// demand × fraction.
func (f *Flow) Loads() []float64 {
	loads := make([]float64, f.G.NumLinks())
	for k, c := range f.Comms {
		if c.Demand == 0 {
			continue
		}
		for e, v := range f.Frac[k] {
			if v != 0 {
				loads[e] += c.Demand * v
			}
		}
	}
	return loads
}

// AddLoads accumulates demand-weighted loads into dst (which must have
// length NumLinks).
func (f *Flow) AddLoads(dst []float64) {
	for k, c := range f.Comms {
		if c.Demand == 0 {
			continue
		}
		for e, v := range f.Frac[k] {
			if v != 0 {
				dst[e] += c.Demand * v
			}
		}
	}
}

// MLU returns the maximum link utilization of the given per-link loads.
func MLU(g *graph.Graph, loads []float64) float64 {
	max := 0.0
	for e, l := range loads {
		if u := l / g.Link(graph.LinkID(e)).Capacity; u > max {
			max = u
		}
	}
	return max
}

// SetDemands overwrites commodity demands from a lookup. Commodities whose
// pair has no entry keep demand zero.
func (f *Flow) SetDemands(demand func(a, b graph.NodeID) float64) {
	for k := range f.Comms {
		f.Comms[k].Demand = demand(f.Comms[k].Src, f.Comms[k].Dst)
	}
}

// Path is one decomposed routing path with the fraction of the commodity
// it carries.
type Path struct {
	Links []graph.LinkID
	Frac  float64
}

// Decompose performs flow decomposition of commodity k into at most
// maxPaths paths, after removing any circulation. The returned fractions
// sum to (approximately) 1 for a valid routing.
func (f *Flow) Decompose(k int, maxPaths int) []Path {
	c := f.Comms[k]
	resid := append([]float64(nil), f.Frac[k]...)
	removeCycles(f.G, resid)
	var paths []Path
	const eps = 1e-9
	for len(paths) < maxPaths {
		// Widest-path extraction via greedy DFS following the largest
		// residual fraction.
		var links []graph.LinkID
		visited := make([]bool, f.G.NumNodes())
		u := c.Src
		ok := true
		for u != c.Dst {
			visited[u] = true
			best, bid := eps, graph.LinkID(-1)
			for _, id := range f.G.Out(u) {
				if resid[id] > best && !visited[f.G.Link(id).Dst] {
					best, bid = resid[id], id
				}
			}
			if bid < 0 {
				ok = false
				break
			}
			links = append(links, bid)
			u = f.G.Link(bid).Dst
		}
		if !ok || len(links) == 0 {
			break
		}
		bottleneck := math.Inf(1)
		for _, id := range links {
			if resid[id] < bottleneck {
				bottleneck = resid[id]
			}
		}
		for _, id := range links {
			resid[id] -= bottleneck
		}
		paths = append(paths, Path{Links: links, Frac: bottleneck})
	}
	return paths
}

// removeCycles cancels circulations in a per-link fraction vector so the
// remaining flow is acyclic. It repeatedly finds a directed cycle in the
// support and subtracts its bottleneck.
func removeCycles(g *graph.Graph, frac []float64) {
	const eps = 1e-12
	for {
		cycle := findCycle(g, frac, eps)
		if cycle == nil {
			return
		}
		bottleneck := math.Inf(1)
		for _, id := range cycle {
			if frac[id] < bottleneck {
				bottleneck = frac[id]
			}
		}
		for _, id := range cycle {
			frac[id] -= bottleneck
			if frac[id] < eps {
				frac[id] = 0
			}
		}
	}
}

// findCycle returns the links of some directed cycle in the support of
// frac, or nil.
func findCycle(g *graph.Graph, frac []float64, eps float64) []graph.LinkID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.NumNodes())
	parent := make([]graph.LinkID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	var cycle []graph.LinkID
	var dfs func(u graph.NodeID) bool
	dfs = func(u graph.NodeID) bool {
		color[u] = gray
		for _, id := range g.Out(u) {
			if frac[id] <= eps {
				continue
			}
			v := g.Link(id).Dst
			switch color[v] {
			case white:
				parent[v] = id
				if dfs(v) {
					return true
				}
			case gray:
				// Found a cycle: walk back from u to v.
				cycle = []graph.LinkID{id}
				for w := u; w != v; {
					pid := parent[w]
					cycle = append(cycle, pid)
					w = g.Link(pid).Src
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for n := 0; n < g.NumNodes(); n++ {
		if color[n] == white && dfs(graph.NodeID(n)) {
			return cycle
		}
	}
	return nil
}

// RemoveLoops cancels circulations in every commodity of the flow in
// place. The paper's LP adds a small penalty or postprocesses to remove
// loops; this is the postprocessing.
func (f *Flow) RemoveLoops() {
	for k := range f.Frac {
		removeCycles(f.G, f.Frac[k])
	}
}

// AvgPathDelay returns the demand-weighted mean propagation delay of
// commodity k under the flow (sum of frac × link delay), in ms.
func (f *Flow) AvgPathDelay(k int) float64 {
	var d float64
	for e, v := range f.Frac[k] {
		if v > 0 {
			d += v * f.G.Link(graph.LinkID(e)).Delay
		}
	}
	return d
}
