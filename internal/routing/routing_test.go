package routing

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// diamond builds a -> {b,c} -> d with unit capacities.
func diamond(t *testing.T) (*graph.Graph, [4]graph.NodeID) {
	t.Helper()
	g := graph.New("diamond")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 10, 1, 1) // 0
	g.AddLink(a, c, 10, 1, 1) // 1
	g.AddLink(b, d, 10, 1, 1) // 2
	g.AddLink(c, d, 10, 1, 1) // 3
	return g, [4]graph.NodeID{a, b, c, d}
}

func TestValidateAccepts(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Demand: 5, Link: -1}})
	f.Frac[0][0] = 0.4
	f.Frac[0][2] = 0.4
	f.Frac[0][1] = 0.6
	f.Frac[0][3] = 0.6
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}
}

func TestValidateR1Conservation(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Link: -1}})
	f.Frac[0][0] = 0.5
	f.Frac[0][1] = 0.5
	f.Frac[0][2] = 0.3 // leaks 0.2 at b
	f.Frac[0][3] = 0.5
	if err := f.Validate(1e-9); err == nil {
		t.Fatalf("conservation violation accepted")
	}
}

func TestValidateR2SourceUnit(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Link: -1}})
	f.Frac[0][0] = 0.3
	f.Frac[0][2] = 0.3
	if err := f.Validate(1e-9); err == nil {
		t.Fatalf("partial source emission accepted")
	}
}

func TestValidateR3NoReturnToSource(t *testing.T) {
	g := graph.New("tri")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	ab := g.AddLink(a, b, 1, 1, 1)
	bc := g.AddLink(b, c, 1, 1, 1)
	ba := g.AddLink(b, a, 1, 1, 1)
	f := NewFlow(g, []Commodity{{Src: a, Dst: c, Link: -1}})
	f.Frac[0][ab] = 1.2
	f.Frac[0][bc] = 1.0
	f.Frac[0][ba] = 0.2
	// frac > 1 also violates R4; keep within [0,1] to isolate R3.
	f.Frac[0][ab] = 1.0
	f.Frac[0][ba] = 0.0
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("setup flow invalid: %v", err)
	}
	f.Frac[0][ab] = 1.0
	f.Frac[0][ba] = 0.5 // flows back into source
	if err := f.Validate(1e-9); err == nil {
		t.Fatalf("return-to-source accepted")
	}
}

func TestValidateR4Range(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Link: -1}})
	f.Frac[0][0] = 1.5
	f.Frac[0][2] = 1.5
	if err := f.Validate(1e-9); err == nil {
		t.Fatalf("fraction > 1 accepted")
	}
}

func TestValidateRejectsSelfCommodity(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[0], Link: -1}})
	if err := f.Validate(1e-9); err == nil {
		t.Fatalf("src==dst commodity accepted")
	}
}

func TestLoadsAndMLU(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Demand: 8, Link: -1}})
	f.Frac[0][0] = 0.25
	f.Frac[0][2] = 0.25
	f.Frac[0][1] = 0.75
	f.Frac[0][3] = 0.75
	loads := f.Loads()
	if loads[0] != 2 || loads[1] != 6 {
		t.Fatalf("loads = %v", loads)
	}
	if mlu := MLU(g, loads); math.Abs(mlu-0.6) > 1e-12 {
		t.Fatalf("MLU = %v, want 0.6", mlu)
	}
	dst := make([]float64, g.NumLinks())
	f.AddLoads(dst)
	f.AddLoads(dst)
	if dst[1] != 12 {
		t.Fatalf("AddLoads accumulation wrong: %v", dst)
	}
}

func TestODCommodities(t *testing.T) {
	comms := ODCommodities(3, func(a, b graph.NodeID) float64 {
		if a == 0 && b == 2 {
			return 7
		}
		return 0
	})
	if len(comms) != 1 || comms[0].Demand != 7 || comms[0].Link != -1 {
		t.Fatalf("comms = %+v", comms)
	}
}

func TestLinkCommodities(t *testing.T) {
	g, _ := diamond(t)
	comms := LinkCommodities(g)
	if len(comms) != g.NumLinks() {
		t.Fatalf("len = %d", len(comms))
	}
	for i, c := range comms {
		l := g.Link(graph.LinkID(i))
		if c.Src != l.Src || c.Dst != l.Dst || c.Link != l.ID {
			t.Fatalf("commodity %d mismatch: %+v", i, c)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Demand: 1, Link: -1}})
	f.Frac[0][0] = 0.5
	cp := f.Clone()
	cp.Frac[0][0] = 0.9
	cp.Comms[0].Demand = 3
	if f.Frac[0][0] != 0.5 || f.Comms[0].Demand != 1 {
		t.Fatalf("Clone shares storage")
	}
}

func TestDecomposeSplitsPaths(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Demand: 1, Link: -1}})
	f.Frac[0][0] = 0.3
	f.Frac[0][2] = 0.3
	f.Frac[0][1] = 0.7
	f.Frac[0][3] = 0.7
	paths := f.Decompose(0, 10)
	if len(paths) != 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	var sum float64
	for _, p := range paths {
		sum += p.Frac
		if len(p.Links) != 2 {
			t.Fatalf("path length = %d", len(p.Links))
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("path fractions sum to %v", sum)
	}
}

func TestRemoveLoops(t *testing.T) {
	// a->b->d direct plus a useless b->c->b circulation.
	g := graph.New("loopy")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	ab := g.AddLink(a, b, 1, 1, 1)
	bd := g.AddLink(b, d, 1, 1, 1)
	bc := g.AddLink(b, c, 1, 1, 1)
	cb := g.AddLink(c, b, 1, 1, 1)
	f := NewFlow(g, []Commodity{{Src: a, Dst: d, Demand: 1, Link: -1}})
	f.Frac[0][ab] = 1
	f.Frac[0][bd] = 1
	f.Frac[0][bc] = 0.4
	f.Frac[0][cb] = 0.4
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("flow with circulation should still satisfy conservation: %v", err)
	}
	f.RemoveLoops()
	if f.Frac[0][bc] != 0 || f.Frac[0][cb] != 0 {
		t.Fatalf("circulation not removed: %v %v", f.Frac[0][bc], f.Frac[0][cb])
	}
	if f.Frac[0][ab] != 1 || f.Frac[0][bd] != 1 {
		t.Fatalf("useful flow damaged")
	}
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("flow invalid after RemoveLoops: %v", err)
	}
}

func TestAvgPathDelay(t *testing.T) {
	g := graph.New("line")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	ab := g.AddLink(a, b, 1, 3, 1)
	bc := g.AddLink(b, c, 1, 4, 1)
	f := NewFlow(g, []Commodity{{Src: a, Dst: c, Demand: 1, Link: -1}})
	f.Frac[0][ab] = 1
	f.Frac[0][bc] = 1
	if d := f.AvgPathDelay(0); d != 7 {
		t.Fatalf("AvgPathDelay = %v, want 7", d)
	}
}

func TestSetDemands(t *testing.T) {
	g, n := diamond(t)
	f := NewFlow(g, []Commodity{{Src: n[0], Dst: n[3], Link: -1}})
	f.SetDemands(func(a, b graph.NodeID) float64 { return 11 })
	if f.Comms[0].Demand != 11 {
		t.Fatalf("SetDemands failed")
	}
}
