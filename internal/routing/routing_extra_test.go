package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// TestConvexCombinationPreservesValidity is the property the FW solver
// rests on: any convex combination of valid routings is valid.
func TestConvexCombinationPreservesValidity(t *testing.T) {
	g := graph.New("cc")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddLink(a, b, 1, 1, 1) // 0
	g.AddLink(a, c, 1, 1, 1) // 1
	g.AddLink(b, d, 1, 1, 1) // 2
	g.AddLink(c, d, 1, 1, 1) // 3
	g.AddLink(b, c, 1, 1, 1) // 4

	top := NewFlow(g, []Commodity{{Src: a, Dst: d, Link: -1}})
	top.Frac[0][0] = 1
	top.Frac[0][2] = 1
	bottom := NewFlow(g, []Commodity{{Src: a, Dst: d, Link: -1}})
	bottom.Frac[0][1] = 1
	bottom.Frac[0][3] = 1
	zig := NewFlow(g, []Commodity{{Src: a, Dst: d, Link: -1}})
	zig.Frac[0][0] = 1
	zig.Frac[0][4] = 1
	zig.Frac[0][3] = 1
	for _, f := range []*Flow{top, bottom, zig} {
		if err := f.Validate(1e-9); err != nil {
			t.Fatalf("setup flow invalid: %v", err)
		}
	}

	check := func(w1, w2, w3 float64) bool {
		s := math.Abs(w1) + math.Abs(w2) + math.Abs(w3)
		if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		l1, l2, l3 := math.Abs(w1)/s, math.Abs(w2)/s, math.Abs(w3)/s
		mix := NewFlow(g, top.Comms)
		for e := 0; e < g.NumLinks(); e++ {
			mix.Frac[0][e] = l1*top.Frac[0][e] + l2*bottom.Frac[0][e] + l3*zig.Frac[0][e]
		}
		return mix.Validate(1e-9) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeRandomFlows round-trips random valid flows through path
// decomposition: path fractions must sum to ~1 and every path must be a
// real src->dst walk.
func TestDecomposeRandomFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.New("rd")
	n := 6
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddDuplex(ids[i], ids[j], 1, 1, 1)
		}
	}
	for trial := 0; trial < 30; trial++ {
		src := ids[rng.Intn(n)]
		dst := ids[rng.Intn(n)]
		if src == dst {
			continue
		}
		// Random mixture of 3 random simple paths.
		f := NewFlow(g, []Commodity{{Src: src, Dst: dst, Demand: 1, Link: -1}})
		remaining := 1.0
		for p := 0; p < 3; p++ {
			w := remaining
			if p < 2 {
				w = remaining * rng.Float64()
			}
			remaining -= w
			// Random walk without node repetition.
			visited := map[graph.NodeID]bool{src: true}
			at := src
			for at != dst {
				outs := g.Out(at)
				// Prefer direct link to dst half the time to terminate.
				var chosen graph.LinkID = -1
				if id, ok := g.FindLink(at, dst); ok && rng.Intn(2) == 0 {
					chosen = id
				} else {
					id := outs[rng.Intn(len(outs))]
					if !visited[g.Link(id).Dst] {
						chosen = id
					}
				}
				if chosen < 0 {
					continue
				}
				f.Frac[0][chosen] += w
				at = g.Link(chosen).Dst
				visited[at] = true
			}
		}
		if err := f.Validate(1e-9); err != nil {
			t.Fatalf("trial %d: constructed flow invalid: %v", trial, err)
		}
		paths := f.Decompose(0, 32)
		var sum float64
		for _, p := range paths {
			sum += p.Frac
			at := src
			for _, id := range p.Links {
				if g.Link(id).Src != at {
					t.Fatalf("trial %d: discontinuous path", trial)
				}
				at = g.Link(id).Dst
			}
			if at != dst {
				t.Fatalf("trial %d: path ends at %v", trial, at)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("trial %d: fractions sum to %v", trial, sum)
		}
	}
}

func TestMLUEmptyLoads(t *testing.T) {
	g := graph.New("e")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(a, b, 10, 1, 1)
	if got := MLU(g, make([]float64, 1)); got != 0 {
		t.Fatalf("MLU of zero loads = %v", got)
	}
}
