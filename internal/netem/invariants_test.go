package netem

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mplsff"
)

// overflowForwarder violates the stack-depth invariant on purpose: every
// decision grows the label stack past the bound yet claims success.
type overflowForwarder struct {
	g *graph.Graph
}

func (f *overflowForwarder) Name() string                { return "overflow" }
func (f *overflowForwarder) ApplyFailure(e graph.LinkID) {}
func (f *overflowForwarder) Forward(u graph.NodeID, pk *Packet) (graph.LinkID, bool) {
	for len(pk.Stack) <= mplsff.MaxStackDepth {
		pk.Stack = append(pk.Stack, mplsff.ProtLabelBase)
	}
	return f.g.Out(u)[0], true
}

func TestInvariantStackDepth(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	var got []Violation
	em := New(Config{G: g, Forwarder: &overflowForwarder{g: g}, Seed: 1,
		OnViolation: func(v Violation) { got = append(got, v) }})
	em.AddPing(0, 1, 0.1, 0.3)
	em.Run(0.3)
	if len(got) == 0 {
		t.Fatal("stack overflow past the bound went undetected")
	}
	if got[0].Kind != "stack-depth" {
		t.Fatalf("violation kind = %q, want stack-depth", got[0].Kind)
	}
	if len(em.Violations()) != len(got) {
		t.Fatalf("Violations() kept %d records, callback saw %d", len(em.Violations()), len(got))
	}
}

func TestInvariantViewDivergence(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	fw := NewR3Distributed(plan)
	var got []Violation
	em := New(Config{G: g, Forwarder: fw, Seed: 1,
		OnViolation: func(v Violation) { got = append(got, v) }})
	// Poison one router's view with a failure the flood will never
	// announce: when the real failure's flood completes, router 3's
	// fingerprint cannot match the others.
	fw.OnNotification(3, 2)
	em.FailAt(0.1, 0)
	em.Run(1.0)
	found := false
	for _, v := range got {
		if v.Kind == "view-divergence" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("poisoned view not caught at convergence; violations: %v", got)
	}
}

func TestInvariantPhaseCapacity(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	var got []Violation
	em := New(Config{G: g, Forwarder: NewR3Distributed(plan), Seed: 1,
		OnViolation: func(v Violation) { got = append(got, v) }})
	// Craft a phase whose counters claim a 100 Mbps link carried 10x its
	// capacity for a second; Theorem 2's checker must reject it.
	p := &PhaseStats{Start: 0, End: 1, LinkBytes: make([]int64, g.NumLinks())}
	p.LinkBytes[0] = int64(10 * g.Link(0).Capacity * 1e6 / 8)
	em.inv.checkPhaseCapacity(p)
	if len(got) != 1 || got[0].Kind != "capacity" {
		t.Fatalf("overdriven link not caught: %v", got)
	}
	// Exactly at capacity (plus nothing) must pass.
	got = nil
	p.LinkBytes[0] = int64(g.Link(0).Capacity * 1e6 / 8)
	em.inv.checkPhaseCapacity(p)
	if len(got) != 0 {
		t.Fatalf("at-capacity phase falsely flagged: %v", got)
	}
}

func TestInvariantDeadLinkTx(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	var got []Violation
	em := New(Config{G: g, Forwarder: NewR3Distributed(plan), Seed: 1,
		OnViolation: func(v Violation) { got = append(got, v) }})
	em.linkUp[0] = false
	em.inv.checkTx(0)
	if len(got) != 1 || got[0].Kind != "dead-link-tx" {
		t.Fatalf("transmit onto a dead link not caught: %v", got)
	}
}

// TestInvariantPanicIncludesSeeds: without an OnViolation handler a breach
// panics, and the message carries the seeds and event trace needed to
// reproduce the run.
func TestInvariantPanicIncludesSeeds(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	em := New(Config{G: g, Forwarder: NewR3Distributed(plan), Seed: 41,
		Chaos: ChaosConfig{Enabled: true, Seed: 17}})
	em.linkUp[0] = false
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation without OnViolation did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic payload %T, want string", r)
		}
		for _, want := range []string{"dead-link-tx", "seed=41", "chaos.seed=17", "recent events"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message missing %q:\n%s", want, msg)
			}
		}
	}()
	em.inv.checkTx(0)
}

// TestInvariantCleanRunsStayQuiet: the checker is always on, so the
// standard healthy scenarios must record nothing — with and without
// chaos (this is asserted per-test elsewhere too; here it is the
// explicit contract of the invariant layer).
func TestInvariantCleanRunsStayQuiet(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Chaos: ChaosConfig{Enabled: true, Seed: 11, CtrlDrop: 0.2, DataDrop: 0.02}},
	} {
		em := goldenScenario(t, cfg)
		if n := len(em.Violations()); n != 0 {
			t.Fatalf("healthy run (chaos=%v) recorded %d violations: %v",
				cfg.Chaos.Enabled, n, em.Violations())
		}
	}
}

var _ ViewInspector = (*R3DistributedForwarder)(nil)
