package netem

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/mplsff"
)

// ViewInspector is implemented by forwarders that keep one control-plane
// view per router (R3DistributedForwarder). The invariant checker uses it
// to assert that, post-convergence, every router's view is byte-identical
// (Theorem 3), and that no router ever forwards a packet into a link its
// own view already knows is failed.
type ViewInspector interface {
	Forwarder
	// ViewFingerprint digests router u's forwarding state canonically.
	ViewFingerprint(u graph.NodeID) uint64
	// ViewKnowsFailed reports whether router u has been told e is down.
	ViewKnowsFailed(u graph.NodeID, e graph.LinkID) bool
}

// Violation is one invariant breach, timestamped in emulation seconds.
type Violation struct {
	At     float64
	Kind   string // "stack-depth", "known-failed-tx", "dead-link-tx", "view-divergence", "capacity"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f %s: %s", v.At, v.Kind, v.Detail)
}

// Invariants is the always-on emulator invariant checker, hooked into the
// event loop: label-stack depth stays bounded, nothing is transmitted
// into a failed link, converged router views are byte-identical, and
// per-phase delivered load respects capacity (Theorem 2). A violation
// either panics loudly — seeds and recent event trace included — or, when
// Config.OnViolation is set, is handed to that callback after being
// recorded.
type Invariants struct {
	em *Emulator
	// StackDepth is the label-stack bound (mplsff.MaxStackDepth).
	StackDepth int
	violations []Violation
}

func newInvariants(em *Emulator) *Invariants {
	return &Invariants{em: em, StackDepth: mplsff.MaxStackDepth}
}

// Violations returns the breaches recorded so far (nil when clean).
func (iv *Invariants) Violations() []Violation { return iv.violations }

func (iv *Invariants) fail(kind, format string, args ...interface{}) {
	v := Violation{At: iv.em.now, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	iv.violations = append(iv.violations, v)
	if h := iv.em.cfg.OnViolation; h != nil {
		h(v)
		return
	}
	panic(fmt.Sprintf("netem: invariant violation %s\nseed=%d chaos.seed=%d chaos.enabled=%v\nrecent events:\n%s",
		v, iv.em.cfg.Seed, iv.em.cfg.Chaos.Seed, iv.em.cfg.Chaos.Enabled, iv.em.trace.dump()))
}

// checkForward runs the per-decision invariants after a Forwarder picked
// an output link: the label stack must stay within the depth bound (a
// deeper stack means the decision loop escaped its guard), and a
// view-keeping forwarder must never route into a link its own view knows
// is failed (it must stack a protection label instead).
func (iv *Invariants) checkForward(u graph.NodeID, out graph.LinkID, pk *Packet) {
	if len(pk.Stack) > iv.StackDepth {
		iv.fail("stack-depth", "router %d left packet %v->%v with %d labels (bound %d)",
			u, pk.Src, pk.Dst, len(pk.Stack), iv.StackDepth)
	}
	if insp := iv.em.insp; insp != nil && insp.ViewKnowsFailed(u, out) {
		iv.fail("known-failed-tx", "router %d forwarded %v->%v into link %d its view knows is failed",
			u, pk.Src, pk.Dst, out)
	}
}

// checkTx asserts the emulator itself never serializes a packet onto a
// link that is down in the data plane (the blackhole drop must have
// caught it earlier).
func (iv *Invariants) checkTx(out graph.LinkID) {
	if !iv.em.linkUp[out] {
		iv.fail("dead-link-tx", "packet serialized onto failed link %d", out)
	}
}

// checkConverged runs when no failure is awaiting reconfiguration: every
// per-router view must have an identical fingerprint (Theorem 3 — the
// notification order routers saw must not matter). While staged
// reconfiguration rounds are outstanding the check is suspended: views
// at different rounds of a rollout legitimately differ.
func (iv *Invariants) checkConverged() {
	insp := iv.em.insp
	if insp == nil {
		return
	}
	if len(iv.em.stagedAt) > 0 {
		return
	}
	want := insp.ViewFingerprint(0)
	for v := 1; v < iv.em.g.NumNodes(); v++ {
		if got := insp.ViewFingerprint(graph.NodeID(v)); got != want {
			iv.fail("view-divergence", "router %d view fingerprint %#x != router 0's %#x after convergence",
				v, got, want)
		}
	}
}

// checkPhaseCapacity asserts Theorem 2 on the delivered-load counters:
// no link carried more than capacity × duration during the phase, plus
// the backlog that may drain after the boundary (one queue plus one
// packet of slack — packets are charged to the phase that enqueued them).
// Capacity is the effective (degradation-scaled) rate; DegradeAt places a
// phase boundary at each change, so the rate is constant over a phase.
func (iv *Invariants) checkPhaseCapacity(p *PhaseStats) {
	dur := p.End - p.Start
	if dur <= 0 {
		return
	}
	slack := float64(iv.em.cfg.QueueBytes + iv.em.cfg.PacketBytes)
	for e, b := range p.LinkBytes {
		capBytes := iv.em.rateBytes(graph.LinkID(e)) * dur
		if float64(b) > capBytes+slack {
			iv.fail("capacity", "link %d carried %d bytes in a %.3fs phase (capacity %.0f + slack %.0f)",
				e, b, dur, capBytes, slack)
		}
	}
}

// traceRing is a fixed-size ring of notable emulation events (failures,
// notifications, chaos actions), dumped when an invariant trips.
type traceRing struct {
	entries [128]traceEntry
	n       int
}

type traceEntry struct {
	at   float64
	kind traceKind
	a, b int32
}

type traceKind uint8

const (
	traceFail traceKind = iota + 1
	traceNotify
	traceBurst
	traceChaosDropCtrl
	traceChaosDropData
	traceChaosDup
	traceStage
	traceDegrade
)

func (k traceKind) String() string {
	switch k {
	case traceFail:
		return "link-failed"
	case traceNotify:
		return "router-notified"
	case traceBurst:
		return "chaos-burst"
	case traceChaosDropCtrl:
		return "chaos-drop-ctrl"
	case traceChaosDropData:
		return "chaos-drop-data"
	case traceChaosDup:
		return "chaos-dup"
	case traceStage:
		return "stage-round"
	case traceDegrade:
		return "link-degraded"
	}
	return "?"
}

func (t *traceRing) add(at float64, kind traceKind, a, b int32) {
	t.entries[t.n%len(t.entries)] = traceEntry{at: at, kind: kind, a: a, b: b}
	t.n++
}

func (t *traceRing) dump() string {
	var sb strings.Builder
	start := 0
	if t.n > len(t.entries) {
		start = t.n - len(t.entries)
	}
	for i := start; i < t.n; i++ {
		e := t.entries[i%len(t.entries)]
		fmt.Fprintf(&sb, "  t=%.6f %s link=%d", e.at, e.kind, e.a)
		if e.b >= 0 {
			fmt.Fprintf(&sb, " node=%d", e.b)
		}
		sb.WriteByte('\n')
	}
	if sb.Len() == 0 {
		return "  (no notable events recorded)\n"
	}
	return sb.String()
}
