package netem

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func abileneSetup(t testing.TB, total float64) (*graph.Graph, *traffic.Matrix, *mplsff.Network) {
	t.Helper()
	plan := planForAbilene(t, total)
	g := plan.G
	d := traffic.Gravity(g, total, 42)
	return g, d, mplsff.Build(plan)
}

// planForAbilene memoizes plans per demand total so the emulator tests
// do not repeat precomputation.
var abilenePlans = map[float64]*core.Plan{}

func planForAbilene(t testing.TB, total float64) *core.Plan {
	t.Helper()
	if p, ok := abilenePlans[total]; ok {
		return p
	}
	g := topo.Abilene()
	d := traffic.Gravity(g, total, 42)
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	abilenePlans[total] = plan
	return plan
}

// addTM installs CBR traffic for every OD pair of the matrix (Mbps →
// bytes/sec).
func addTM(em *Emulator, d *traffic.Matrix, stop float64) {
	d.Pairs(func(a, b graph.NodeID, mbps float64) {
		em.AddCBRTraffic(a, b, mbps*1e6/8, stop)
	})
}

func totalDelivered(p *PhaseStats) int64 {
	var s int64
	for _, v := range p.DeliveredBytes {
		s += v
	}
	return s
}

func totalOffered(p *PhaseStats) int64 {
	var s int64
	for _, v := range p.OfferedBytes {
		s += v
	}
	return s
}

func totalDrops(p *PhaseStats) int64 {
	var s int64
	for _, v := range p.DropsByDst {
		s += v
	}
	return s
}

func TestNoFailureLosslessDelivery(t *testing.T) {
	g, d, net := abileneSetup(t, 200)
	em := New(Config{G: g, Forwarder: &R3Forwarder{Net: net}, Seed: 1})
	addTM(em, d, 2.0)
	em.Run(3.0)
	p := em.Phases()[0]
	if len(em.Phases()) != 1 {
		t.Fatalf("phases = %d", len(em.Phases()))
	}
	off, del, dr := totalOffered(p), totalDelivered(p), totalDrops(p)
	if off == 0 {
		t.Fatalf("no traffic generated")
	}
	// Everything offered is delivered or still in flight; drops must be
	// zero at 200 Mbps total on 100 Mbps links with optimized routing.
	if dr != 0 {
		t.Fatalf("drops = %d bytes with uncongested load", dr)
	}
	if float64(del) < 0.95*float64(off) {
		t.Fatalf("delivered %d of %d offered", del, off)
	}
}

func TestLinkBytesMatchCapacityBound(t *testing.T) {
	g, d, net := abileneSetup(t, 200)
	em := New(Config{G: g, Forwarder: &R3Forwarder{Net: net}, Seed: 1})
	addTM(em, d, 2.0)
	em.Run(2.0)
	p := em.Phases()[0]
	for e, b := range p.LinkBytes {
		rate := float64(b) * 8 / p.Duration() / 1e6 // Mbps
		if rate > g.Link(graph.LinkID(e)).Capacity*1.001 {
			t.Fatalf("link %d carried %v Mbps over capacity %v", e, rate, g.Link(graph.LinkID(e)).Capacity)
		}
	}
}

func TestFailureRecoveryR3(t *testing.T) {
	g, d, net := abileneSetup(t, 200)
	em := New(Config{G: g, Forwarder: &R3Forwarder{Net: net}, Seed: 1})
	addTM(em, d, 4.0)
	// Fail Houston->KansasCity at t=1.5s.
	h, _ := g.NodeByName("Houston")
	k, _ := g.NodeByName("KansasCity")
	hk, ok := g.FindLink(h, k)
	if !ok {
		t.Fatalf("no Houston-KansasCity link")
	}
	em.FailAt(1.5, hk)
	em.Run(4.0)

	phases := em.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	// Post-failure phase: loss limited to the short blackhole window.
	p1 := phases[1]
	off, dr := totalOffered(p1), totalDrops(p1)
	if off == 0 {
		t.Fatalf("no post-failure traffic")
	}
	lossRate := float64(dr) / float64(off)
	if lossRate > 0.02 {
		t.Fatalf("post-failure loss rate %v too high for R3 fast reroute", lossRate)
	}
	// The failed link carries nothing after the failure.
	if p1.LinkBytes[hk] != 0 {
		t.Fatalf("failed link carried %d bytes", p1.LinkBytes[hk])
	}
}

func TestOSPFReconSlowerThanR3(t *testing.T) {
	g, d, _ := abileneSetup(t, 200)
	h, _ := g.NodeByName("Houston")
	k, _ := g.NodeByName("KansasCity")
	hk, _ := g.FindLink(h, k)

	run := func(fw Forwarder, converge float64) float64 {
		em := New(Config{G: g, Forwarder: fw, Seed: 1, ConvergeDelay: converge})
		addTM(em, d, 4.0)
		em.FailAt(1.5, hk)
		em.Run(4.0)
		p1 := em.Phases()[1]
		return float64(totalDrops(p1)) / float64(totalOffered(p1))
	}

	_, _, net := abileneSetup(t, 200)
	r3Loss := run(&R3Forwarder{Net: net}, 0)
	ospfLoss := run(NewOSPFRecon(g), 2.0) // 2 s reconvergence
	if ospfLoss <= r3Loss {
		t.Fatalf("OSPF loss %v not worse than R3 %v", ospfLoss, r3Loss)
	}
}

func TestPingRTTIncreasesAfterFailure(t *testing.T) {
	g, d, net := abileneSetup(t, 100)
	em := New(Config{G: g, Forwarder: &R3Forwarder{Net: net}, Seed: 1})
	addTM(em, d, 4.0)
	den, _ := g.NodeByName("Denver")
	la, _ := g.NodeByName("LosAngeles")
	em.AddPing(den, la, 0.05, 4.0)
	// Fail Sunnyvale-Denver: the direct-ish route dies.
	s, _ := g.NodeByName("Sunnyvale")
	sd, ok := g.FindLink(s, den)
	if !ok {
		t.Fatalf("no Sunnyvale-Denver link")
	}
	em.FailAt(2.0, sd)
	em.Run(4.0)

	if len(em.RTT) < 20 {
		t.Fatalf("only %d RTT samples", len(em.RTT))
	}
	var before, after []float64
	for _, s := range em.RTT {
		if s[0] < 1.9 {
			before = append(before, s[1])
		} else if s[0] > 2.2 {
			after = append(after, s[1])
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatalf("missing samples before/after")
	}
	mb, ma := mean(before), mean(after)
	if ma < mb {
		t.Fatalf("RTT decreased after failure: %v -> %v", mb, ma)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestCongestionDropsUnderOverload(t *testing.T) {
	// Offer more than the bottleneck can carry: drops must appear.
	g := graph.New("pair")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 10, 1, 1) // 10 Mbps
	fw := NewOSPFRecon(g)
	em := New(Config{G: g, Forwarder: fw, Seed: 2})
	em.AddCBRTraffic(a, b, 20e6/8, 2.0) // 20 Mbps offered
	em.Run(2.5)
	p := em.Phases()[0]
	if totalDrops(p) == 0 {
		t.Fatalf("no drops despite 2x overload")
	}
	// Delivered rate is close to the link capacity.
	rate := float64(totalDelivered(p)) * 8 / 2.5 / 1e6
	if rate > 10.5 || rate < 7 {
		t.Fatalf("delivered rate %v Mbps, want ~10", rate)
	}
}

func TestPhaseAccounting(t *testing.T) {
	g, d, net := abileneSetup(t, 100)
	em := New(Config{G: g, Forwarder: &R3Forwarder{Net: net}, Seed: 1})
	addTM(em, d, 3.0)
	em.FailAt(1.0, 0)
	em.FailAt(2.0, 4)
	em.Run(3.0)
	ph := em.Phases()
	if len(ph) != 3 {
		t.Fatalf("phases = %d", len(ph))
	}
	if math.Abs(ph[0].End-1.0) > 1e-9 || math.Abs(ph[1].Start-1.0) > 1e-9 {
		t.Fatalf("phase bounds wrong: %v %v", ph[0].End, ph[1].Start)
	}
	if ph[2].End != 3.0 {
		t.Fatalf("last phase end = %v", ph[2].End)
	}
}

func TestOSPFForwarderECMPConsistency(t *testing.T) {
	g := topo.Abilene()
	fw := NewOSPFRecon(g)
	pk := &Packet{Flow: mplsff.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}, Src: 0, Dst: 5}
	out1, ok1 := fw.Forward(0, pk)
	out2, ok2 := fw.Forward(0, pk)
	if !ok1 || !ok2 || out1 != out2 {
		t.Fatalf("ECMP choice not flow-consistent: %v %v", out1, out2)
	}
}
