package netem

import (
	"testing"

	"repro/internal/graph"
)

func TestDistributedConvergence(t *testing.T) {
	// After the notification flood settles, every router's view agrees on
	// the failure set and on the reconfigured protection routing
	// (Theorem 3: order of notifications does not matter).
	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1})
	addTM(em, d, 3.0)
	em.FailAt(1.0, 0)
	em.FailAt(1.5, 8)
	em.Run(3.0)

	want := fw.View(0).Failed()
	if want.Len() != 4 { // two duplex failures
		t.Fatalf("router 0 knows %v, want 4 links", want)
	}
	for v := 1; v < g.NumNodes(); v++ {
		view := fw.View(graph.NodeID(v))
		if !view.Failed().Equal(want) {
			t.Fatalf("router %d failure set %v != %v", v, view.Failed(), want)
		}
		if !view.State().ProtEquals(fw.View(0).State(), 1e-9) {
			t.Fatalf("router %d protection state diverged", v)
		}
	}
	if em.CtrlBytes == 0 {
		t.Fatalf("no notification flood traffic recorded")
	}
}

func TestDistributedMatchesCentralizedAfterSettling(t *testing.T) {
	// Once the flood has reached everyone, the distributed data plane's
	// steady-state delivery matches the centralized forwarder's.
	g, d, net := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)

	run := func(fw Forwarder) (delivered, drops int64) {
		em := New(Config{G: g, Forwarder: fw, Seed: 1})
		addTM(em, d, 4.0)
		em.FailAt(1.0, 0)
		em.Run(4.0)
		p := em.Phases()[1]
		return totalDelivered(p), totalDrops(p)
	}
	cd, cdrop := run(&R3Forwarder{Net: net})
	dd, ddrop := run(NewR3Distributed(plan))
	if dd == 0 {
		t.Fatalf("distributed delivered nothing")
	}
	// Same workload, same plan: deliveries within 2%, and the distributed
	// flood loses at most marginally more during propagation.
	ratio := float64(dd) / float64(cd)
	if ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("delivery mismatch: centralized %d vs distributed %d", cd, dd)
	}
	_ = cdrop
	_ = ddrop
}

func TestDistributedFloodLossBounded(t *testing.T) {
	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1})
	addTM(em, d, 4.0)
	h, _ := g.NodeByName("Houston")
	k, _ := g.NodeByName("KansasCity")
	hk, _ := g.FindLink(h, k)
	em.FailAt(1.5, hk)
	em.Run(4.0)
	p1 := em.Phases()[1]
	lossRate := float64(totalDrops(p1)) / float64(totalOffered(p1))
	// Loss is confined to the detection window plus the flood's
	// propagation (tens of milliseconds of a 2.5 s phase).
	if lossRate > 0.03 {
		t.Fatalf("distributed loss rate %v too high", lossRate)
	}
}

func TestApplyFailureFallback(t *testing.T) {
	// ApplyFailure (non-flood path) must still inform every view.
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	fw.ApplyFailure(3)
	for v := 0; v < plan.G.NumNodes(); v++ {
		if !fw.View(graph.NodeID(v)).Failed().Contains(3) {
			t.Fatalf("router %d missed ApplyFailure", v)
		}
	}
}
