package netem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/transition"
)

// The tests in this file close the loop between the plan-swap scheduler
// and the emulator: a multi-round plan migration delivered through the
// staged-round flood must leave every router's view byte-identical to a
// one-shot install of the target plan — on clean channels and under
// chaos with the reliable re-flood — with zero invariant violations.

// swapPlanPair builds the crossing-commodities fixture from the swap
// scheduler's tests: four commodities trade places across a narrow
// two-path core, so both endpoint plans are feasible but the one-shot
// mixing envelope is over capacity and the scheduler must emit >= 2
// rounds.
func swapPlanPair(t testing.TB) (*core.Plan, *core.Plan) {
	t.Helper()
	g := graph.New("swaphub")
	ids := map[string]graph.NodeID{}
	for _, s := range []string{"a", "b", "c", "d", "u", "v", "x", "y"} {
		ids[s] = g.AddNode(s)
	}
	duplex := func(p, q string, c float64) { g.AddDuplex(ids[p], ids[q], c, 1, 1) }
	duplex("a", "u", 1000)
	duplex("b", "u", 1000)
	duplex("v", "c", 1000)
	duplex("v", "d", 1000)
	duplex("a", "b", 1000)
	duplex("c", "d", 1000)
	duplex("u", "x", 100)
	duplex("x", "v", 100)
	duplex("u", "y", 100)
	duplex("y", "v", 100)

	plan := func(via map[[2]string]string) *core.Plan {
		const dem = 30.0
		d := traffic.NewMatrix(g.NumNodes())
		var comms []routing.Commodity
		var paths [][]graph.NodeID
		for od, mid := range via {
			src, dst := ids[od[0]], ids[od[1]]
			d.Set(src, dst, dem)
			comms = append(comms, routing.Commodity{Src: src, Dst: dst, Demand: dem, Link: -1})
			paths = append(paths, []graph.NodeID{src, ids["u"], ids[mid], ids["v"], dst})
		}
		base := routing.NewFlow(g, comms)
		for k, p := range paths {
			for i := 0; i+1 < len(p); i++ {
				e, ok := g.FindLink(p[i], p[i+1])
				if !ok {
					t.Fatalf("no link %v->%v", p[i], p[i+1])
				}
				base.Frac[k][e] = 1
			}
		}
		pl, err := core.Precompute(g, d, core.Config{
			Model: core.ArbitraryFailures{F: 1}, BaseRouting: base, Iterations: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	crossing := func(first, second string) map[[2]string]string {
		return map[[2]string]string{
			{"a", "c"}: first, {"a", "d"}: first,
			{"b", "c"}: second, {"b", "d"}: second,
		}
	}
	return plan(crossing("x", "y")), plan(crossing("y", "x"))
}

// runSwapStaged drives one staged plan swap: the forwarder starts on the
// old plan and the sequence's rounds are injected at router 0.
func runSwapStaged(t *testing.T, old *core.Plan, seq *transition.Sequence, chaos ChaosConfig, seed int64, withTraffic bool) (*Emulator, *R3DistributedForwarder) {
	t.Helper()
	g := old.G
	fw := NewR3Distributed(old)
	em := New(Config{G: g, Forwarder: fw, Seed: seed, Chaos: chaos})
	if withTraffic {
		addTM(em, traffic.Gravity(g, 100, 42), 1.5)
	}
	const t0, spacing = 0.3, 0.3
	for i, r := range seq.Rounds {
		em.StageRoundAt(t0+float64(i)*spacing, 0, r.Seq, r.Delta)
	}
	em.Run(t0 + float64(len(seq.Rounds))*spacing + 1.2)
	return em, fw
}

// assertSwapFinal checks the differential property: every router's view
// equals the scheduler's materialized end state, which equals a one-shot
// build of the target plan.
func assertSwapFinal(t *testing.T, em *Emulator, fw *R3DistributedForwarder, next *core.Plan, seq *transition.Sequence) {
	t.Helper()
	if !em.StagesConverged() {
		t.Fatal("swap rounds did not reach every router")
	}
	if n := len(em.Violations()); n != 0 {
		t.Fatalf("%d invariant violations: %v", n, em.Violations())
	}
	want := mplsff.Build(next).Fingerprint()
	if got := seq.Final.Fingerprint(); got != want {
		t.Fatalf("scheduler end state %#x != one-shot target build %#x", got, want)
	}
	for u := 0; u < next.G.NumNodes(); u++ {
		if got := fw.View(graph.NodeID(u)).Fingerprint(); got != want {
			t.Fatalf("router %d view fingerprint %#x != one-shot target build %#x", u, got, want)
		}
	}
}

// TestSwapStagedMatchesOneShot is the clean-channel differential: a
// multi-round plan swap delivered round-by-round through the emulator,
// with data traffic flowing throughout, ends byte-identical to
// installing the target plan in one shot.
func TestSwapStagedMatchesOneShot(t *testing.T) {
	old, next := swapPlanPair(t)
	seq, err := transition.SchedulePlanSwap(old, next, transition.Options{SkipCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rounds) < 2 {
		t.Fatalf("swap schedule produced %d rounds, want >= 2", len(seq.Rounds))
	}
	em, fw := runSwapStaged(t, old, seq, ChaosConfig{}, 1, true)
	assertSwapFinal(t, em, fw, next, seq)
	// Each round opens a measurement phase: initial + one per round.
	if got, want := len(em.Phases()), 1+len(seq.Rounds); got != want {
		t.Fatalf("phases = %d, want %d", got, want)
	}
	if got := len(em.ReconfigTimes()); got != len(seq.Rounds) {
		t.Fatalf("round convergences = %d, want %d", got, len(seq.Rounds))
	}
	if em.CtrlBytes == 0 {
		t.Fatal("swap rounds consumed no control-plane bytes")
	}
}

// TestSwapStagedUnderChaos is the chaos differential: with 30% control
// loss plus duplication and reordering jitter, the sequence-numbered
// staged-round re-flood still brings every router to the one-shot target
// state in each of 8 seeded runs.
func TestSwapStagedUnderChaos(t *testing.T) {
	old, next := swapPlanPair(t)
	seq, err := transition.SchedulePlanSwap(old, next, transition.Options{SkipCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rounds) < 2 {
		t.Fatalf("swap schedule produced %d rounds, want >= 2", len(seq.Rounds))
	}
	for seed := int64(1); seed <= 8; seed++ {
		em, fw := runSwapStaged(t, old, seq, ChaosConfig{
			Enabled: true, Seed: seed,
			CtrlDrop: 0.30, CtrlDup: 0.15, CtrlJitter: 0.002,
		}, 1, false)
		if em.RefloodRoundsFired() == 0 {
			t.Fatalf("seed %d: staged flood never retransmitted under loss", seed)
		}
		assertSwapFinal(t, em, fw, next, seq)
	}
}
