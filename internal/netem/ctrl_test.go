package netem

import (
	"testing"

	"repro/internal/graph"
)

func TestFloodReachesAllRoutersQuickly(t *testing.T) {
	g, _, _ := abileneSetup(t, 100)
	plan := planForAbilene(t, 100)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1})
	em.FailAt(1.0, 0)
	// Detection at 1.01; flood propagation is bounded by the network
	// diameter's serialization + propagation delay (tens of ms).
	em.Run(1.2)
	for v := 0; v < g.NumNodes(); v++ {
		if !fw.View(graph.NodeID(v)).Failed().Contains(0) {
			t.Fatalf("router %d not notified within 200ms of the failure", v)
		}
	}
	// Both directions announced, flooded once per router per link: the
	// flood stays small.
	if em.CtrlBytes == 0 || em.CtrlBytes > int64(4*g.NumLinks()*g.NumNodes()*64) {
		t.Fatalf("flood bytes = %d", em.CtrlBytes)
	}
}

func TestFloodDeduplicates(t *testing.T) {
	g, _, _ := abileneSetup(t, 100)
	plan := planForAbilene(t, 100)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1})
	em.FailAt(1.0, 0)
	em.Run(2.0)
	bytesAfterSettle := em.CtrlBytes
	em.Run(3.0)
	if em.CtrlBytes != bytesAfterSettle {
		t.Fatalf("flood kept circulating: %d -> %d bytes", bytesAfterSettle, em.CtrlBytes)
	}
	// Upper bound: each of the 2 directed-link notifications is re-flooded
	// at most once per router onto each of its out-links.
	maxMsgs := int64(2 * g.NumNodes() * 4) // max degree 3, +1 slack
	if em.CtrlBytes > maxMsgs*64 {
		t.Fatalf("flood bytes %d exceed dedup bound %d", em.CtrlBytes, maxMsgs*64)
	}
}

func TestQueueingDelayUnderLoad(t *testing.T) {
	// A congested link adds visible queueing delay to the ping RTT.
	g := graph.New("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 10, 1, 1) // 10 Mbps, 1ms propagation
	fw := NewOSPFRecon(g)

	baseRTT := func(loadMbps float64) float64 {
		em := New(Config{G: g, Forwarder: fw, Seed: 3})
		if loadMbps > 0 {
			em.AddCBRTraffic(a, b, loadMbps*1e6/8, 2.0)
		}
		em.AddPing(a, b, 0.05, 2.0)
		em.Run(2.5)
		if len(em.RTT) == 0 {
			t.Fatalf("no RTT samples")
		}
		return mean(rttValues(em.RTT))
	}
	idle := baseRTT(0)
	busy := baseRTT(9.5) // 95% utilization
	if busy <= idle {
		t.Fatalf("queueing delay invisible: idle %v, busy %v", idle, busy)
	}
}

func rttValues(samples [][2]float64) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s[1]
	}
	return out
}
