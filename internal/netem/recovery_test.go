package netem

import (
	"testing"

	"repro/internal/graph"
)

// TestOSPFRecoversAfterConvergence verifies the reconvergence dynamic:
// heavy loss during the convergence window, then clean delivery.
func TestOSPFRecoversAfterConvergence(t *testing.T) {
	g, d, _ := abileneSetup(t, 150)
	fw := NewOSPFRecon(g)
	em := New(Config{G: g, Forwarder: fw, Seed: 6, ConvergeDelay: 1.0})
	addTM(em, d, 6.0)
	h, _ := g.NodeByName("Houston")
	k, _ := g.NodeByName("KansasCity")
	hk, _ := g.FindLink(h, k)
	em.FailAt(2.0, hk)
	em.FailAt(4.0, 0) // second event creates a fresh phase boundary
	em.Run(6.0)

	// Phase 1 spans [2.0, 4.0): convergence finishes at ~3.01, so the
	// phase mixes blackholing and recovery. Quantify recovery by checking
	// the final phase (converged for the first failure within ~1s of its
	// start) ends with low loss relative to the early-phase loss.
	p1 := em.Phases()[1]
	p2 := em.Phases()[2]
	loss1 := float64(totalDrops(p1)) / float64(totalOffered(p1))
	loss2 := float64(totalDrops(p2)) / float64(totalOffered(p2))
	if loss1 <= 0 {
		t.Fatalf("no loss during the convergence window")
	}
	// Phase 2 loses during its own 1s window out of 2s, roughly like
	// phase 1; both must be far from total blackout and delivery must
	// dominate.
	if loss2 > 0.8 || loss1 > 0.8 {
		t.Fatalf("losses too high: %v %v", loss1, loss2)
	}
	if float64(totalDelivered(p2)) < 0.5*float64(totalOffered(p2)) {
		t.Fatalf("phase 2 delivered too little")
	}
}

// TestOSPFBlackholeIsTransient pins the precise mechanism: before
// ApplyFailure the forwarder still selects the dead link (packets drop at
// the emulator); afterwards it does not.
func TestOSPFBlackholeIsTransient(t *testing.T) {
	g, _, _ := abileneSetup(t, 150)
	fw := NewOSPFRecon(g)
	h, _ := g.NodeByName("Houston")
	k, _ := g.NodeByName("KansasCity")
	hk, _ := g.FindLink(h, k)

	// A flow whose shortest path crosses Houston->KansasCity.
	pk := &Packet{Src: h, Dst: k}
	out, ok := fw.Forward(h, pk)
	if !ok || out != hk {
		t.Skipf("direct link not chosen (out=%v); topology weights changed", out)
	}
	fw.ApplyFailure(hk)
	out, ok = fw.Forward(h, pk)
	if !ok {
		t.Fatalf("no route after reconvergence")
	}
	if out == hk {
		t.Fatalf("converged forwarder still uses the failed link")
	}
}

func TestDistributedNameAndView(t *testing.T) {
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	if fw.Name() == "" {
		t.Fatalf("empty name")
	}
	if fw.View(0) == nil || fw.View(graph.NodeID(plan.G.NumNodes()-1)) == nil {
		t.Fatalf("views missing")
	}
}
