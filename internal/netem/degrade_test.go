package netem

import (
	"math"
	"testing"
)

// degradeScenario is goldenScenario with the two hard failures expressed
// through DegradeAt instead of FailAt, plus optional extra degradations.
func degradeScenario(t testing.TB, cfg Config, frac float64, extra func(*Emulator)) *Emulator {
	t.Helper()
	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	cfg.G = g
	cfg.Forwarder = NewR3Distributed(plan)
	cfg.Seed = 1
	em := New(cfg)
	addTM(em, d, 3.0)
	den, _ := g.NodeByName("Denver")
	la, _ := g.NodeByName("LosAngeles")
	em.AddPing(den, la, 0.2, 3.0)
	em.DegradeAt(1.0, 0, frac)
	em.DegradeAt(1.5, 8, frac)
	if extra != nil {
		extra(em)
	}
	em.Run(3.0)
	return em
}

// TestDegradeZeroIsByteIdenticalToGolden is the satellite regression gate:
// with zero-probability chaos enabled and every degradation request a
// no-op (frac 0, negative, or NaN), the emulation must still produce the
// pre-degradation golden fingerprint — the degradation layer is inert
// unless asked to act.
func TestDegradeZeroIsByteIdenticalToGolden(t *testing.T) {
	noops := func(em *Emulator) {
		em.DegradeAt(0.5, 2, 0)
		em.DegradeAt(0.6, 3, -0.25)
		em.DegradeAt(0.7, 4, math.NaN())
	}
	// Plain configuration: no-op degradations must reproduce the pinned
	// pre-degradation golden exactly.
	if got := degradeScenario(t, Config{}, 1.0, noops).Fingerprint(); got != goldenFingerprint {
		t.Errorf("no-op degradations perturbed the run: %#x, golden %#x", got, goldenFingerprint)
	}
	// Zero-probability chaos: its fingerprint legitimately differs from
	// the chaos-disabled golden (jitterless chaos still reshapes the event
	// stream), but no-op degradations must stay invisible there too.
	chaos := Config{Chaos: ChaosConfig{Enabled: true, Seed: 99}}
	a := goldenScenario(t, chaos)
	b := degradeScenario(t, chaos, 1.0, noops)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("no-op degradations perturbed a zero-probability chaos run: %#x vs %#x",
			b.Fingerprint(), a.Fingerprint())
	}
}

// TestDegradeFullDelegatesToFail: frac >= 1 is a hard failure, so the
// golden scenario rewritten through DegradeAt(…, 1.0) must be
// byte-identical to the FailAt original.
func TestDegradeFullDelegatesToFail(t *testing.T) {
	em := degradeScenario(t, Config{}, 1.0, nil)
	if got := em.Fingerprint(); got != goldenFingerprint {
		t.Errorf("DegradeAt(1.0) run = %#x, FailAt golden %#x", got, goldenFingerprint)
	}
	over := degradeScenario(t, Config{}, 1.5, nil)
	if got := over.Fingerprint(); got != goldenFingerprint {
		t.Errorf("DegradeAt(1.5) run = %#x, FailAt golden %#x", got, goldenFingerprint)
	}
}

// TestDegradePartial: a partial capacity loss opens a new phase, applies
// to both directions of the duplex pair, throttles delivery relative to
// the undegraded run, and never violates the (effective-) capacity
// invariant.
func TestDegradePartial(t *testing.T) {
	base := goldenScenario(t, Config{})
	baseOff, baseDel, _ := sumPhases(base)

	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	em := New(Config{G: g, Forwarder: NewR3Distributed(plan), Seed: 1})
	addTM(em, d, 3.0)
	den, _ := g.NodeByName("Denver")
	la, _ := g.NodeByName("LosAngeles")
	em.AddPing(den, la, 0.2, 3.0)
	em.FailAt(1.0, 0)
	em.FailAt(1.5, 8)
	em.DegradeAt(2.0, 4, 0.9)
	em.Run(3.0)

	if got := em.DegradedFrac(4); got != 0.9 {
		t.Fatalf("DegradedFrac(4) = %v, want 0.9", got)
	}
	if rev := g.Link(4).Reverse; rev >= 0 {
		if got := em.DegradedFrac(rev); got != 0.9 {
			t.Fatalf("reverse direction %d not degraded: %v", rev, got)
		}
	}
	if got, want := len(em.Phases()), len(base.Phases())+1; got != want {
		t.Fatalf("phases = %d, want %d (degradation must open its own phase)", got, want)
	}
	off, del, drops := sumPhases(em)
	if off != baseOff {
		t.Fatalf("offered bytes changed: %d vs %d (degradation must not touch the workload)", off, baseOff)
	}
	if del >= baseDel {
		t.Fatalf("losing 90%% of a link's capacity did not reduce delivery: %d vs %d", del, baseDel)
	}
	if drops == 0 {
		t.Fatalf("no drops recorded under 90%% degradation")
	}
	if n := len(em.Violations()); n != 0 {
		t.Fatalf("degraded run recorded %d invariant violations: %v", n, em.Violations())
	}
}

// TestDegradeRate pins the effective transmission rate arithmetic: an
// undegraded link serves at full capacity bit-for-bit (the f > 0 guard),
// a degraded one at exactly (1-f) of it.
func TestDegradeRate(t *testing.T) {
	g, _, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	em := New(Config{G: g, Forwarder: NewR3Distributed(plan), Seed: 1})
	full := g.Link(2).Capacity * 1e6 / 8
	if got := em.rateBytes(2); got != full {
		t.Fatalf("undegraded rate = %v, want %v", got, full)
	}
	em.DegradeAt(0.1, 2, 0.25)
	em.Run(0.2)
	if got, want := em.rateBytes(2), full*0.75; got != want {
		t.Fatalf("degraded rate = %v, want %v", got, want)
	}
}
