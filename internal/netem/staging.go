package netem

import (
	"repro/internal/graph"
	"repro/internal/mplsff"
)

// This file delivers staged reconfigurations (internal/transition)
// through the emulator: each round's row-level delta is injected at an
// origin router, flooded over the same reliable sequence-numbered
// anti-entropy channel as failure notifications, and applied per router
// on first receipt. Failures activate via FailAtSilent — data plane only,
// no notification flood — so the scheduler's rounds, not the failure
// flood, decide when each router's tables change. While rounds are
// outstanding the view-divergence invariant is suspended (views
// legitimately differ mid-rollout); the moment the last round reaches the
// last router it re-arms and fires.

// StageAware forwarders accept versioned staged-reconfiguration rounds:
// per-router row-level deltas applied with strict 1-based sequencing.
// OnRound is invoked as a round's flood reaches each router;
// mplsff.ApplyRound semantics (duplicates ignored, future rounds
// buffered) make delivery dup/reorder safe.
type StageAware interface {
	Forwarder
	// OnRound delivers staged round seq (1-based) to router u.
	OnRound(u graph.NodeID, seq int, d *mplsff.Delta)
}

// stageStream keys the staged-round flood's sequence-number dedup — the
// ctrlStream analogue for reconfiguration rounds.
type stageStream struct {
	seq    int
	origin graph.NodeID
}

// FailAtSilent schedules data-plane-only bidirectional link failures as
// one correlated event: the links go down and in-flight packets
// blackhole, but no detection or notification flood fires. The control
// plane learns of the failures exclusively from staged rounds, whose
// deltas carry the failed links. A new measurement phase starts at the
// failure instant.
func (em *Emulator) FailAtSilent(t float64, links ...graph.LinkID) {
	em.schedule(t, func() {
		var ids []graph.LinkID
		for _, e := range links {
			ids = append(ids, e)
			if rev := em.g.Link(e).Reverse; rev >= 0 {
				ids = append(ids, rev)
			}
		}
		for _, id := range ids {
			if !em.linkUp[id] {
				continue
			}
			em.linkUp[id] = false
			em.trace.add(em.now, traceFail, int32(id), -1)
		}
		em.closePhase(em.now)
		em.cur = em.newPhase(em.now)
	})
}

// StageRoundAt schedules staged round seq (1-based, from a
// transition.Sequence) for injection at the origin router at time t. The
// origin applies it immediately and floods it; every other router applies
// it as the flood arrives. A new measurement phase starts at the
// injection instant, so the per-phase link counters bound each round's
// transient. Requires a StageAware forwarder. Injecting the same round
// twice is a no-op.
func (em *Emulator) StageRoundAt(t float64, origin graph.NodeID, seq int, d *mplsff.Delta) {
	em.schedule(t, func() {
		sa, ok := em.cfg.Forwarder.(StageAware)
		if !ok {
			panic("netem: StageRoundAt requires a StageAware forwarder")
		}
		em.stageNow(sa, origin, seq, d)
	})
}

// StagesConverged reports whether every injected staged round has reached
// every router. Trivially true before any round.
func (em *Emulator) StagesConverged() bool { return len(em.stagedAt) == 0 }

// StageRoundsInjected counts rounds injected so far.
func (em *Emulator) StageRoundsInjected() int { return len(em.stagedDeltas) }

// stageNow injects round seq at origin: record it, open a new measurement
// phase, apply locally and start the flood.
func (em *Emulator) stageNow(sa StageAware, origin graph.NodeID, seq int, d *mplsff.Delta) {
	if _, dup := em.stagedDeltas[seq]; dup {
		return
	}
	em.stagedDeltas[seq] = d
	em.stagedAt[seq] = em.now
	em.trace.add(em.now, traceStage, int32(seq), int32(origin))
	em.obsStage.Inc()
	em.closePhase(em.now)
	em.cur = em.newPhase(em.now)
	em.stageApply(sa, origin, seq)
}

// stageApply delivers round seq to router u the first time, relays the
// flood and schedules the re-flood rounds — notify()'s analogue for
// staged rounds. When the round has reached every router its
// injection→converged latency is observed and, once no rounds or
// failures remain outstanding, the view-divergence invariant runs.
func (em *Emulator) stageApply(sa StageAware, u graph.NodeID, seq int) {
	if em.stageApplied[u][seq] {
		return
	}
	if em.stageApplied[u] == nil {
		em.stageApplied[u] = make(map[int]bool)
	}
	em.stageApplied[u][seq] = true
	em.trace.add(em.now, traceStage, int32(seq), int32(u))
	sa.OnRound(u, seq, em.stagedDeltas[seq])
	em.stageCount[seq]++
	if em.stageCount[seq] == em.g.NumNodes() {
		em.observeReconfig(em.now - em.stagedAt[seq])
		delete(em.stagedAt, seq)
		delete(em.stageCount, seq)
		if len(em.stagedAt) == 0 && len(em.failedAt) == 0 {
			em.inv.checkConverged()
		}
	}
	em.stageFloodOut(sa, u, seq)
	for i := 1; i <= em.cfg.RefloodRounds; i++ {
		em.schedule(em.now+float64(i)*em.cfg.RefloodInterval, func() {
			em.refloodRounds++
			em.obsReflood.Inc()
			em.stageFloodOut(sa, u, seq)
		})
	}
}

// stageFloodOut relays round seq from router u on every alive outgoing
// link, stamped with u's next sequence number for the round and sized by
// the delta's wire encoding (the real control-plane cost of a round).
func (em *Emulator) stageFloodOut(sa StageAware, u graph.NodeID, seq int) {
	if em.stageNext[u] == nil {
		em.stageNext[u] = make(map[int]uint32)
	}
	sn := em.stageNext[u][seq]
	em.stageNext[u][seq] = sn + 1
	size := em.stagedDeltas[seq].WireSize()
	if size < 64 {
		size = 64
	}
	for _, id := range em.g.Out(u) {
		if !em.linkUp[id] {
			continue
		}
		pk := &Packet{Size: size, SentAt: em.now, Ctrl: true, StageSeq: seq, CtrlOrigin: u, CtrlSeq: sn}
		em.transmitCtrl(sa, id, pk)
	}
}

// receiveStage processes an arriving staged-round announcement:
// per (round, origin) stream dedup, then first-time application and
// relay.
func (em *Emulator) receiveStage(u graph.NodeID, pk *Packet) {
	sa, ok := em.cfg.Forwarder.(StageAware)
	if !ok {
		return
	}
	key := stageStream{seq: pk.StageSeq, origin: pk.CtrlOrigin}
	if last, ok := em.stageSeen[u][key]; ok && pk.CtrlSeq <= last {
		return
	}
	if em.stageSeen[u] == nil {
		em.stageSeen[u] = make(map[stageStream]uint32)
	}
	em.stageSeen[u][key] = pk.CtrlSeq
	em.stageApply(sa, u, pk.StageSeq)
}
