package netem

import (
	"repro/internal/graph"
	"repro/internal/mplsff"
)

// mplsForward walks one control-plane view's MPLS-ff tables to pick the
// next link for pk at router u: base FIB lookup, label stacking onto
// protection LSPs at links the view knows are failed (including nested
// stacking under overlapping failures), and popping at protected-link
// tails. The walk is bounded by mplsff.MaxStackDepth stack operations:
// tables that keep pushing protection labels in a cycle exhaust the
// bound and the packet is dropped (ok=false) instead of looping forever.
// Both the centralized R3Forwarder and every per-router view of
// R3DistributedForwarder share this decision procedure.
func mplsForward(view *mplsff.Network, u graph.NodeID, pk *Packet) (graph.LinkID, bool) {
	r := view.Routers[u]
	for depth := 0; depth < mplsff.MaxStackDepth; depth++ {
		if len(pk.Stack) == 0 {
			nh, ok := r.NextBase(pk.Src, pk.Dst, pk.Flow)
			if !ok {
				return 0, false
			}
			if view.KnowsFailed(nh.Out) {
				// Activate protection: push the failed link's label and
				// retry the lookup in labeled mode.
				pk.Stack = append(pk.Stack, view.LabelOf[nh.Out])
				continue
			}
			return nh.Out, true
		}
		top := pk.Stack[len(pk.Stack)-1]
		nh, pop, ok := r.NextProtected(top, pk.Flow)
		if !ok {
			return 0, false
		}
		if pop {
			pk.Stack = pk.Stack[:len(pk.Stack)-1]
			continue
		}
		if view.KnowsFailed(nh.Out) {
			// Nested failure along a frozen detour: stack another label.
			lbl := view.LabelOf[nh.Out]
			if len(pk.Stack) > 0 && pk.Stack[len(pk.Stack)-1] == lbl {
				return 0, false // detour for a link cannot protect itself
			}
			pk.Stack = append(pk.Stack, lbl)
			continue
		}
		return nh.Out, true
	}
	return 0, false
}
