package netem

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/topo"
	"repro/internal/traffic"
	"repro/internal/transition"
)

// The tests in this file close the loop between the transition scheduler
// and the emulator: scheduler rounds delivered through the staged-round
// flood must leave every router's view byte-identical to one-shot
// activation — on clean channels, under chaos with the reliable re-flood,
// and under out-of-order injection — with zero invariant violations.

func stagedDuplex(t testing.TB, g *graph.Graph, a, b string) []graph.LinkID {
	t.Helper()
	na, ok := g.NodeByName(a)
	if !ok {
		t.Fatalf("no node %s", a)
	}
	nb, ok := g.NodeByName(b)
	if !ok {
		t.Fatalf("no node %s", b)
	}
	id, ok := g.FindLink(na, nb)
	if !ok {
		t.Fatalf("no link %s-%s", a, b)
	}
	return []graph.LinkID{id, g.Link(id).Reverse}
}

// canonicalDirs keeps one direction per duplex pair (FailAtSilent takes
// the reverse down too).
func canonicalDirs(g *graph.Graph, fails []graph.LinkID) []graph.LinkID {
	var out []graph.LinkID
	for _, e := range fails {
		if rev := g.Link(e).Reverse; rev >= 0 && rev < e {
			continue
		}
		out = append(out, e)
	}
	return out
}

// oneShotRef activates the failures on a fresh network in sorted order —
// the canonical order the scheduler's staged end state reconciles to.
func oneShotRef(t testing.TB, plan *core.Plan, fails []graph.LinkID) *mplsff.Network {
	t.Helper()
	sorted := append([]graph.LinkID(nil), fails...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	n := mplsff.Build(plan)
	for _, e := range sorted {
		if err := n.OnFailure(e); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// runStaged drives one staged rollout: silent duplex failures at t0, the
// sequence's rounds injected at router 0 with the given spacing, then a
// settling period for the flood.
func runStaged(t *testing.T, plan *core.Plan, seq *transition.Sequence, fails []graph.LinkID, chaos ChaosConfig, seed int64, withTraffic bool) (*Emulator, *R3DistributedForwarder) {
	t.Helper()
	g := plan.G
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: seed, Chaos: chaos})
	if withTraffic {
		addTM(em, traffic.Gravity(g, 100, 42), 1.5)
	}
	const t0 = 0.3
	em.FailAtSilent(t0, canonicalDirs(g, fails)...)
	const spacing = 0.3
	for i, r := range seq.Rounds {
		em.StageRoundAt(t0+0.02+float64(i)*spacing, 0, r.Seq, r.Delta)
	}
	em.Run(t0 + 0.02 + float64(len(seq.Rounds))*spacing + 1.2)
	return em, fw
}

// assertStagedFinal checks the differential property: every router's view
// equals the scheduler's materialized end state, which equals one-shot
// activation, with the rollout converged and zero invariant violations.
func assertStagedFinal(t *testing.T, em *Emulator, fw *R3DistributedForwarder, plan *core.Plan, seq *transition.Sequence, fails []graph.LinkID) {
	t.Helper()
	if !em.StagesConverged() {
		t.Fatal("staged rounds did not reach every router")
	}
	if n := len(em.Violations()); n != 0 {
		t.Fatalf("%d invariant violations: %v", n, em.Violations())
	}
	want := seq.Final.Fingerprint()
	for u := 0; u < plan.G.NumNodes(); u++ {
		if got := fw.View(graph.NodeID(u)).Fingerprint(); got != want {
			t.Fatalf("router %d view fingerprint %#x != scheduler end state %#x", u, got, want)
		}
	}
	if ref := oneShotRef(t, plan, fails).Fingerprint(); ref != want {
		t.Fatalf("staged end state %#x != one-shot activation %#x", want, ref)
	}
	for u := 0; u < plan.G.NumNodes(); u++ {
		for _, e := range fails {
			if !fw.View(graph.NodeID(u)).KnowsFailed(e) {
				t.Fatalf("router %d never learned link %d from the staged rounds", u, e)
			}
		}
	}
}

// stagedCases pairs each test topology with a connectivity-preserving
// two-duplex failure set.
func stagedCases(t testing.TB) []struct {
	name  string
	plan  *core.Plan
	fails []graph.LinkID
} {
	abilene := planForAbilene(t, 150)
	ring5 := planForRing5(t)
	return []struct {
		name  string
		plan  *core.Plan
		fails []graph.LinkID
	}{
		{"ring5", ring5, append(stagedDuplex(t, ring5.G, "a", "b"), stagedDuplex(t, ring5.G, "c", "d")...)},
		{"abilene", abilene, append(stagedDuplex(t, abilene.G, "Houston", "KansasCity"),
			stagedDuplex(t, abilene.G, "Chicago", "Indianapolis")...)},
	}
}

// TestStagedActivationMatchesOneShot is the differential satellite on
// clean channels: a scheduled transition delivered round-by-round through
// the emulator ends byte-identical to one-shot activation, on ring5 and
// Abilene, with data traffic flowing throughout.
func TestStagedActivationMatchesOneShot(t *testing.T) {
	for _, tc := range stagedCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seq, err := transition.Schedule(tc.plan, tc.fails, transition.Options{SkipCertify: true})
			if err != nil {
				t.Fatal(err)
			}
			em, fw := runStaged(t, tc.plan, seq, tc.fails, ChaosConfig{}, 1, true)
			assertStagedFinal(t, em, fw, tc.plan, seq, tc.fails)
			// Each round opens a phase and completes a reconfiguration:
			// initial + failure + one per round.
			if got, want := len(em.Phases()), 2+len(seq.Rounds); got != want {
				t.Fatalf("phases = %d, want %d", got, want)
			}
			if got := len(em.ReconfigTimes()); got != len(seq.Rounds) {
				t.Fatalf("round convergences = %d, want %d", got, len(seq.Rounds))
			}
			if em.CtrlBytes == 0 {
				t.Fatal("staged rounds consumed no control-plane bytes")
			}
		})
	}
}

// TestStagedActivationUnderChaos is the differential satellite under
// chaos: with 30% control loss and duplication plus reordering jitter,
// the sequence-numbered staged-round re-flood still brings every router
// to the one-shot end state in each of 16 seeded runs per topology.
func TestStagedActivationUnderChaos(t *testing.T) {
	for _, tc := range stagedCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seq, err := transition.Schedule(tc.plan, tc.fails, transition.Options{SkipCertify: true})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 16; seed++ {
				em, fw := runStaged(t, tc.plan, seq, tc.fails, ChaosConfig{
					Enabled: true, Seed: seed,
					CtrlDrop: 0.30, CtrlDup: 0.15, CtrlJitter: 0.002,
				}, 1, false)
				if em.RefloodRoundsFired() == 0 {
					t.Fatalf("seed %d: staged flood never retransmitted under loss", seed)
				}
				assertStagedFinal(t, em, fw, tc.plan, seq, tc.fails)
			}
		})
	}
}

// TestStagedOutOfOrderInjection forces a two-round schedule and injects
// round 2 before round 1 (plus a duplicate injection of round 2): views
// buffer the future round, apply both when the gap fills, and end
// identical to in-order one-shot activation.
func TestStagedOutOfOrderInjection(t *testing.T) {
	tc := stagedCases(t)[0] // ring5
	seq, err := transition.Schedule(tc.plan, tc.fails, transition.Options{
		SkipCertify: true, MaxExactGroups: -1, // greedy: one group per round
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rounds) < 2 {
		t.Fatalf("greedy schedule produced %d rounds, want >= 2", len(seq.Rounds))
	}
	g := tc.plan.G
	fw := NewR3Distributed(tc.plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1})
	em.FailAtSilent(0.2, canonicalDirs(g, tc.fails)...)
	// Later rounds first; round 1 arrives last. Re-inject round 2 too.
	last := len(seq.Rounds) - 1
	for i := last; i >= 0; i-- {
		r := seq.Rounds[i]
		em.StageRoundAt(0.25+float64(last-i)*0.2, 0, r.Seq, r.Delta)
	}
	em.StageRoundAt(0.3, 2, seq.Rounds[last].Seq, seq.Rounds[last].Delta) // duplicate injection: no-op
	em.Run(0.25 + float64(len(seq.Rounds))*0.2 + 1.0)
	if got := em.StageRoundsInjected(); got != len(seq.Rounds) {
		t.Fatalf("rounds injected = %d, want %d (duplicate must be ignored)", got, len(seq.Rounds))
	}
	assertStagedFinal(t, em, fw, tc.plan, seq, tc.fails)
	for u := 0; u < g.NumNodes(); u++ {
		v := fw.View(graph.NodeID(u))
		if v.RoundsApplied() != len(seq.Rounds) || v.PendingRounds() != 0 {
			t.Fatalf("router %d applied %d rounds with %d pending, want %d and 0",
				u, v.RoundsApplied(), v.PendingRounds(), len(seq.Rounds))
		}
	}
}

// TestFailAtSilentStaysSilent pins down the silent failure path: the data
// plane drops the link but no notification flood fires, no view learns of
// the failure, and the flood-convergence bookkeeping stays clean.
func TestFailAtSilentStaysSilent(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1})
	em.FailAtSilent(0.2, 0)
	em.Run(1.0)
	if !em.FloodConverged() {
		t.Fatal("silent failure left flood bookkeeping outstanding")
	}
	if em.CtrlBytes != 0 {
		t.Fatalf("silent failure generated %d control bytes", em.CtrlBytes)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if fw.View(graph.NodeID(u)).KnowsFailed(0) {
			t.Fatalf("router %d learned of a silent failure", u)
		}
	}
	if len(em.Phases()) != 2 {
		t.Fatalf("phases = %d, want 2 (failure still bounds a phase)", len(em.Phases()))
	}
}

// TestStagedPropertyEmulated is the emulator half of the property
// satellite: across 16 randomized (topology, traffic, failure-set)
// instances, delivering the scheduler's rounds through a chaotic network
// never trips the always-on invariant checker and always converges to the
// scheduler's end state.
func TestStagedPropertyEmulated(t *testing.T) {
	if testing.Short() {
		t.Skip("16 randomized emulated rollouts")
	}
	for seed := int64(1); seed <= 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			g := topo.Mesh(fmt.Sprintf("stage%d", seed), 6, 18, seed, 120)
			d := traffic.Gravity(g, 60+20*float64(seed%4), 3)
			plan, err := core.Precompute(g, d, core.Config{
				Model: core.ArbitraryFailures{F: 1}, Iterations: 40,
			})
			if err != nil {
				t.Fatal(err)
			}
			fails := pickStagedFailures(t, g, seed)
			seq, err := transition.Schedule(plan, fails, transition.Options{SkipCertify: true})
			if err != nil {
				t.Fatal(err)
			}
			em, fw := runStaged(t, plan, seq, fails, ChaosConfig{
				Enabled: true, Seed: seed,
				CtrlDrop: 0.20, CtrlDup: 0.10, CtrlJitter: 0.002,
				DataDrop: 0.01,
			}, seed, true)
			assertStagedFinal(t, em, fw, plan, seq, fails)
		})
	}
}

// pickStagedFailures selects two seed-dependent duplex groups whose
// removal keeps the mesh connected.
func pickStagedFailures(t testing.TB, g *graph.Graph, seed int64) []graph.LinkID {
	t.Helper()
	var duplex []graph.LinkID
	for e := 0; e < g.NumLinks(); e++ {
		if rev := g.Link(graph.LinkID(e)).Reverse; rev > graph.LinkID(e) {
			duplex = append(duplex, graph.LinkID(e))
		}
	}
	n := int64(len(duplex))
	for off := int64(0); off < n*n; off++ {
		a := duplex[(seed+off)%n]
		b := duplex[(seed*3+off/n+off+1)%n]
		if a == b {
			continue
		}
		var dead graph.LinkSet
		for _, e := range []graph.LinkID{a, g.Link(a).Reverse, b, g.Link(b).Reverse} {
			dead.Add(e)
		}
		if g.Connected(dead.Alive()) {
			return dead.IDs()
		}
	}
	t.Fatal("no connected 2-duplex failure set found")
	return nil
}
