package netem

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/traffic"
)

// ring5Netem builds the 5-node ring with two chords used throughout the
// core tests, plus a cheap F=1 plan (memoized).
var ring5Plan *core.Plan

func planForRing5(t testing.TB) *core.Plan {
	t.Helper()
	if ring5Plan != nil {
		return ring5Plan
	}
	g := graph.New("ring5")
	n := make([]graph.NodeID, 5)
	for i, s := range []string{"a", "b", "c", "d", "e"} {
		n[i] = g.AddNode(s)
	}
	for i := 0; i < 5; i++ {
		g.AddDuplex(n[i], n[(i+1)%5], 100, 1, 1)
	}
	g.AddDuplex(n[0], n[2], 100, 1, 1)
	g.AddDuplex(n[1], n[3], 100, 1, 1)
	d := traffic.Gravity(g, 110, 11)
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring5Plan = plan
	return plan
}

// TestReliableFloodConverges30PctLoss is the acceptance criterion: with
// chaos dropping 30% of control packets on every link (plus reordering
// jitter), the sequence-numbered re-flood must bring every router of
// R3DistributedForwarder to the identical global view in each of 32
// seeded runs per topology, with zero invariant violations.
func TestReliableFloodConverges30PctLoss(t *testing.T) {
	cases := []struct {
		name  string
		plan  *core.Plan
		fails [2]graph.LinkID
	}{
		{"ring5", planForRing5(t), [2]graph.LinkID{0, 4}},
		{"abilene", planForAbilene(t, 150), [2]graph.LinkID{0, 8}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := tc.plan.G
			for seed := int64(1); seed <= 32; seed++ {
				fw := NewR3Distributed(tc.plan)
				em := New(Config{G: g, Forwarder: fw, Seed: 1, Chaos: ChaosConfig{
					Enabled: true, Seed: seed,
					CtrlDrop: 0.30, CtrlJitter: 0.002,
				}})
				em.FailAt(0.2, tc.fails[0])
				em.FailAt(0.35, tc.fails[1])
				em.Run(1.5)

				if !em.FloodConverged() {
					t.Fatalf("seed %d: flood did not converge within 1.15s at 30%% loss", seed)
				}
				want := fw.ViewFingerprint(0)
				for v := 1; v < g.NumNodes(); v++ {
					if got := fw.ViewFingerprint(graph.NodeID(v)); got != want {
						t.Fatalf("seed %d: router %d fingerprint %#x != %#x", seed, v, got, want)
					}
				}
				if n := len(em.Violations()); n != 0 {
					t.Fatalf("seed %d: %d invariant violations: %v", seed, n, em.Violations())
				}
				if em.RefloodRoundsFired() == 0 {
					t.Fatalf("seed %d: reliable flood never retransmitted", seed)
				}
			}
		})
	}
}

// TestFireOnceFloodFailsUnderLoss documents why the reliable flood
// exists: with retransmissions forced off, heavy control loss strands at
// least one run short of full convergence — exactly the failure mode the
// re-flood closes.
func TestFireOnceFloodFailsUnderLoss(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	stranded := 0
	for seed := int64(1); seed <= 16; seed++ {
		fw := NewR3Distributed(plan)
		em := New(Config{G: g, Forwarder: fw, Seed: 1,
			RefloodRounds: -1, // force the classic fire-once flood
			Chaos:         ChaosConfig{Enabled: true, Seed: seed, CtrlDrop: 0.45},
		})
		em.FailAt(0.2, 0)
		em.Run(1.5)
		if !em.FloodConverged() {
			stranded++
		}
	}
	if stranded == 0 {
		t.Fatal("fire-once flood survived 45% control loss in all 16 runs; the reliable flood would be untestable")
	}
}

// TestRefloodBoundedOverhead: the retransmission schedule is finite —
// after the configured rounds have fired, control traffic stops.
func TestRefloodBoundedOverhead(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1, Chaos: ChaosConfig{
		Enabled: true, Seed: 2, CtrlDrop: 0.30,
	}})
	em.FailAt(0.2, 0)
	// Learn instants are all within ~0.5s; 8 rounds at 50 ms end well
	// before 1.5s.
	em.Run(1.5)
	settled := em.CtrlBytes
	rounds := em.RefloodRoundsFired()
	em.Run(3.0)
	if em.CtrlBytes != settled {
		t.Fatalf("control traffic kept flowing after the re-flood rounds: %d -> %d bytes", settled, em.CtrlBytes)
	}
	if em.RefloodRoundsFired() != rounds {
		t.Fatalf("re-flood rounds kept firing: %d -> %d", rounds, em.RefloodRoundsFired())
	}
	// Upper bound: both directions of the duplex failure, every router,
	// every round (initial relay + 8 retransmissions), every out-link.
	maxMsgs := int64(2 * g.NumNodes() * 9 * 4)
	if em.CtrlBytes > maxMsgs*64 {
		t.Fatalf("flood bytes %d exceed the bounded-overhead ceiling %d", em.CtrlBytes, maxMsgs*64)
	}
}

// TestRefloodSequenceDedup: a router receiving the same (failure, origin,
// seq) twice — chaos duplication — processes it once; sequence numbers
// advance per round.
func TestRefloodSequenceDedup(t *testing.T) {
	plan := planForRing5(t)
	g := plan.G
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1, Chaos: ChaosConfig{
		Enabled: true, Seed: 9, CtrlDup: 0.5, // duplicate half of all control packets
	}})
	em.FailAt(0.2, 0)
	em.Run(1.5)
	if !em.FloodConverged() {
		t.Fatal("duplication broke convergence")
	}
	// Dedup means duplicated deliveries caused no extra reconfigurations:
	// each router reconfigured exactly once per failed direction.
	if got := len(em.ReconfigTimes()); got != 2 {
		t.Fatalf("reconfig completions = %d, want 2 (one per direction)", got)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for key, seq := range em.ctrlSeen[v] {
			_ = key
			if seq > uint32(em.cfg.RefloodRounds) {
				t.Fatalf("router %d saw sequence %d beyond the %d scheduled rounds", v, seq, em.cfg.RefloodRounds)
			}
		}
	}
}
