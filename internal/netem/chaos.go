package netem

import (
	"math/rand"

	"repro/internal/obs"
)

// ChaosConfig is the seeded adversarial fault-injection layer: the
// emulator's stand-in for the lossy control channels of wireless R3 and
// for the correlated multi-failure events that make local rerouting
// schemes fragile. All draws come from a dedicated RNG (Seed), fully
// independent of the packet-jitter stream, so the same (Config.Seed,
// Chaos.Seed) pair reproduces a run byte for byte, and a disabled chaos
// layer leaves the emulation untouched.
//
// Every probability is applied independently per packet per link
// traversal. Drop loses the packet after it consumed the transmitter
// (loss on the wire, not admission control); Dup delivers a second,
// independently jittered copy; Jitter adds a uniform extra delay in
// [0, Jitter) seconds to the arrival, which reorders packets that left
// in order.
type ChaosConfig struct {
	// Enabled switches the layer on; a zero ChaosConfig is inert.
	Enabled bool
	// Seed drives every chaos draw (the "ChaosSeed" of the determinism
	// contract).
	Seed int64
	// Control-plane (failure-notification) fault probabilities.
	CtrlDrop, CtrlDup float64
	// CtrlJitter is the max extra delivery delay for control packets.
	CtrlJitter float64
	// Data-plane fault probabilities.
	DataDrop, DataDup float64
	// DataJitter is the max extra delivery delay for data packets.
	DataJitter float64
	// DetectJitter desynchronizes failure detection: each adjacent
	// router's DetectDelay is stretched by an independent uniform draw in
	// [0, DetectJitter) seconds.
	DetectJitter float64
	// Bursts injects correlated multi-link failures mid-run.
	Bursts []ChaosBurst
}

// ChaosBurst fails Links randomly chosen alive duplex links at time At —
// a correlated failure event (shared fiber conduit, power domain).
type ChaosBurst struct {
	At    float64
	Links int
}

func (c *ChaosConfig) defaults() {
	clamp := func(p *float64) {
		if *p < 0 {
			*p = 0
		}
		if *p > 1 {
			*p = 1
		}
	}
	clamp(&c.CtrlDrop)
	clamp(&c.CtrlDup)
	clamp(&c.DataDrop)
	clamp(&c.DataDup)
}

// chaosState is the live fault injector: the dedicated RNG plus the
// chaos-labelled counters ("netem.chaos.*").
type chaosState struct {
	cfg ChaosConfig
	rng *rand.Rand

	droppedCtrl *obs.Counter
	droppedData *obs.Counter
	duplicated  *obs.Counter
	reordered   *obs.Counter
}

func newChaosState(cfg ChaosConfig, reg *obs.Registry) *chaosState {
	return &chaosState{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed + 7919)),
		droppedCtrl: reg.Counter("netem.chaos.dropped_ctrl"),
		droppedData: reg.Counter("netem.chaos.dropped_data"),
		duplicated:  reg.Counter("netem.chaos.dup"),
		reordered:   reg.Counter("netem.chaos.reordered"),
	}
}

// jitter stretches an arrival time by a uniform draw in [0, max). The
// draw only happens when max > 0, so configurations with a knob at zero
// consume no randomness for it — differing chaos seeds then cannot
// perturb that part of the run.
func (c *chaosState) jitter(arrive, max float64) float64 {
	if max <= 0 {
		return arrive
	}
	d := c.rng.Float64() * max
	if d > 0 {
		c.reordered.Inc()
	}
	return arrive + d
}
