// Package netem is a discrete-event packet-level network emulator
// standing in for the paper's Emulab testbed: links with finite rate,
// propagation delay and drop-tail buffering; CBR/Poisson flow generators
// driven by a traffic matrix; link-failure injection with detection and
// reconvergence delays; and per-phase measurement of OD throughput, link
// intensity, egress loss and ping RTT — everything Figures 11–13 need.
package netem

import (
	"container/heap"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/obs"
)

// Packet is one emulated packet.
type Packet struct {
	Flow     mplsff.FlowKey
	Src, Dst graph.NodeID
	Size     int // bytes
	Stack    []mplsff.Label
	SentAt   float64
	// Ping marks RTT probes; Return marks the echo leg.
	Ping   bool
	Return bool
	// Ctrl marks a failure-notification packet (the ICMP type-42 flood of
	// §4.3) announcing that FailedLink is down.
	Ctrl       bool
	FailedLink graph.LinkID
}

// Forwarder is a routing control/data plane under emulation.
type Forwarder interface {
	// Name labels the forwarder in results.
	Name() string
	// Forward picks the next link for pk at node u (pk may be mutated,
	// e.g. label stack operations). ok=false drops the packet.
	Forward(u graph.NodeID, pk *Packet) (out graph.LinkID, ok bool)
	// ApplyFailure informs the control plane that link e (already down in
	// the data plane) is now known network-wide.
	ApplyFailure(e graph.LinkID)
}

// FloodAware forwarders keep per-router state: instead of a global
// ApplyFailure after a fixed convergence delay, the emulator floods
// notification packets through the network (the paper's ICMP type-42
// flood) and calls OnNotification as each router receives one. Routers
// then reconfigure independently — Theorem 3's order independence is
// what makes their states converge.
type FloodAware interface {
	Forwarder
	// OnNotification tells router u that link e failed.
	OnNotification(u graph.NodeID, e graph.LinkID)
}

// event is a scheduled callback.
type event struct {
	at  float64
	seq int
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Config parameterizes an emulation run.
type Config struct {
	G         *graph.Graph
	Forwarder Forwarder
	// PacketBytes is the data packet size (default 1500).
	PacketBytes int
	// QueueBytes is the per-link drop-tail buffer (default 128 KiB).
	QueueBytes int
	// DetectDelay is the time from a failure to adjacent-router detection
	// (default 10 ms).
	DetectDelay float64
	// ConvergeDelay is the additional time until ApplyFailure is invoked
	// (0 for R3's local activation; seconds for OSPF reconvergence).
	ConvergeDelay float64
	// FlowsPerPair is how many hashed flows carry each OD pair's traffic
	// (default 8).
	FlowsPerPair int
	// Seed drives packet arrival jitter.
	Seed int64
	// Obs, when non-nil, receives emulator counters prefixed
	// "netem.<forwarder>." (forwarded/dropped/delivered data packets and
	// ctrl_packets for the notification flood) plus the
	// "netem.reconfig_us" histogram of reconfiguration latency in emulated
	// microseconds: failure instant to network-wide convergence — last
	// router notified on the flood path, ApplyFailure on the global path.
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.PacketBytes == 0 {
		c.PacketBytes = 1500
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 128 << 10
	}
	if c.DetectDelay == 0 {
		c.DetectDelay = 0.010
	}
	if c.FlowsPerPair == 0 {
		c.FlowsPerPair = 8
	}
}

// PhaseStats aggregates measurements between failure events.
type PhaseStats struct {
	// Start and End bound the phase in emulation seconds.
	Start, End float64
	// DeliveredBytes per OD pair.
	DeliveredBytes map[[2]graph.NodeID]int64
	// OfferedBytes per OD pair (generated during the phase).
	OfferedBytes map[[2]graph.NodeID]int64
	// LinkBytes transmitted per link.
	LinkBytes []int64
	// DropsByDst counts bytes dropped, keyed by the packet's egress
	// (destination) router.
	DropsByDst []int64
}

// Duration returns the phase length.
func (p *PhaseStats) Duration() float64 { return p.End - p.Start }

// Emulator runs one configuration.
type Emulator struct {
	cfg Config
	g   *graph.Graph
	rng *rand.Rand

	now    float64
	seq    int
	events eventHeap

	linkUp   []bool
	linkFree []float64 // time the link's transmitter becomes free

	phases []*PhaseStats
	cur    *PhaseStats

	// RTT samples: (send time, rtt seconds).
	RTT [][2]float64

	// notifSeen[router] records which failed links the router has been
	// notified of (flood deduplication).
	notifSeen []graph.LinkSet
	// CtrlBytes counts notification-flood bytes (control-plane overhead).
	CtrlBytes int64

	maxHops int

	// Metric handles; nil (no-op) when Config.Obs is nil.
	obsFwd, obsDrop, obsDeliv, obsCtrl *obs.Counter
	reconfigUS                         *obs.Histogram
	// Reconfiguration-latency tracking per failed link: failure instant
	// and, on the flood path, how many routers have been notified so far.
	failedAt map[graph.LinkID]float64
	notified map[graph.LinkID]int
}

// New builds an emulator.
func New(cfg Config) *Emulator {
	cfg.defaults()
	em := &Emulator{
		cfg:     cfg,
		g:       cfg.G,
		rng:     rand.New(rand.NewSource(cfg.Seed + 99)),
		linkUp:  make([]bool, cfg.G.NumLinks()),
		maxHops: 4 * cfg.G.NumNodes(),
	}
	for i := range em.linkUp {
		em.linkUp[i] = true
	}
	em.linkFree = make([]float64, cfg.G.NumLinks())
	em.notifSeen = make([]graph.LinkSet, cfg.G.NumNodes())
	name := "fwd"
	if cfg.Forwarder != nil {
		name = cfg.Forwarder.Name()
	}
	prefix := "netem." + name + "."
	em.obsFwd = cfg.Obs.Counter(prefix + "forwarded")
	em.obsDrop = cfg.Obs.Counter(prefix + "dropped")
	em.obsDeliv = cfg.Obs.Counter(prefix + "delivered")
	em.obsCtrl = cfg.Obs.Counter(prefix + "ctrl_packets")
	// Emulated reconfiguration latencies range from sub-millisecond LAN
	// floods to multi-second OSPF timers: 1 µs .. ~67 s exponential grid.
	em.reconfigUS = cfg.Obs.Histogram("netem.reconfig_us", obs.ExpBounds(1, 2, 26))
	em.failedAt = make(map[graph.LinkID]float64)
	em.notified = make(map[graph.LinkID]int)
	em.cur = em.newPhase(0)
	return em
}

func (em *Emulator) newPhase(start float64) *PhaseStats {
	p := &PhaseStats{
		Start:          start,
		DeliveredBytes: make(map[[2]graph.NodeID]int64),
		OfferedBytes:   make(map[[2]graph.NodeID]int64),
		LinkBytes:      make([]int64, em.g.NumLinks()),
		DropsByDst:     make([]int64, em.g.NumNodes()),
	}
	em.phases = append(em.phases, p)
	return p
}

// Phases returns the per-phase measurements (phase 0 = no failures,
// phase i = after the i-th injected failure event).
func (em *Emulator) Phases() []*PhaseStats { return em.phases }

// Now returns the current emulation time.
func (em *Emulator) Now() float64 { return em.now }

func (em *Emulator) schedule(at float64, fn func()) {
	em.seq++
	heap.Push(&em.events, event{at: at, seq: em.seq, fn: fn})
}

// AddCBRTraffic installs FlowsPerPair Poisson packet flows from a to b at
// the given aggregate rate (bytes/sec), generating until stop.
func (em *Emulator) AddCBRTraffic(a, b graph.NodeID, bytesPerSec float64, stop float64) {
	if bytesPerSec <= 0 || a == b {
		return
	}
	perFlow := bytesPerSec / float64(em.cfg.FlowsPerPair)
	for i := 0; i < em.cfg.FlowsPerPair; i++ {
		flow := mplsff.FlowKey{
			SrcIP:   uint32(a)<<8 | 10,
			DstIP:   uint32(b)<<8 | 10,
			SrcPort: uint16(1024 + i),
			DstPort: 80,
		}
		mean := float64(em.cfg.PacketBytes) / perFlow
		var gen func()
		gen = func() {
			if em.now >= stop {
				return
			}
			pk := &Packet{Flow: flow, Src: a, Dst: b, Size: em.cfg.PacketBytes, SentAt: em.now}
			em.cur.OfferedBytes[[2]graph.NodeID{a, b}] += int64(pk.Size)
			em.forward(a, pk, 0)
			em.schedule(em.now+em.rng.ExpFloat64()*mean, gen)
		}
		em.schedule(em.rng.Float64()*mean, gen)
	}
}

// AddPing installs an RTT probe: a small packet from a to b every
// interval; the echo is recorded in RTT.
func (em *Emulator) AddPing(a, b graph.NodeID, interval, stop float64) {
	flow := mplsff.FlowKey{SrcIP: uint32(a)<<8 | 1, DstIP: uint32(b)<<8 | 1, SrcPort: 7, DstPort: 7}
	var gen func()
	gen = func() {
		if em.now >= stop {
			return
		}
		pk := &Packet{Flow: flow, Src: a, Dst: b, Size: 64, SentAt: em.now, Ping: true}
		em.forward(a, pk, 0)
		em.schedule(em.now+interval, gen)
	}
	em.schedule(0, gen)
}

// FailAt schedules a bidirectional link failure: the data plane drops the
// link immediately. For FloodAware forwarders the adjacent routers detect
// it after DetectDelay and flood notification packets, with every router
// reconfiguring as its notification arrives; for others, a global
// ApplyFailure fires after DetectDelay + ConvergeDelay. A new measurement
// phase starts at the failure instant.
func (em *Emulator) FailAt(t float64, e graph.LinkID) {
	em.schedule(t, func() {
		ids := []graph.LinkID{e}
		if rev := em.g.Link(e).Reverse; rev >= 0 {
			ids = append(ids, rev)
		}
		for _, id := range ids {
			em.linkUp[id] = false
			em.failedAt[id] = em.now
		}
		em.cur.End = em.now
		em.cur = em.newPhase(em.now)
		if fa, ok := em.cfg.Forwarder.(FloodAware); ok {
			em.schedule(em.now+em.cfg.DetectDelay, func() {
				for _, id := range ids {
					l := em.g.Link(id)
					// Both endpoints detect via layer-2 monitoring and
					// originate the flood.
					em.notify(fa, l.Src, id)
					em.notify(fa, l.Dst, id)
				}
			})
			return
		}
		delay := em.cfg.DetectDelay + em.cfg.ConvergeDelay
		em.schedule(em.now+delay, func() {
			for _, id := range ids {
				em.cfg.Forwarder.ApplyFailure(id)
				if t, ok := em.failedAt[id]; ok {
					em.reconfigUS.Observe(int64((em.now - t) * 1e6))
					delete(em.failedAt, id)
				}
			}
		})
	})
}

// notify delivers a failure notification to router u and re-floods it on
// every alive outgoing link (once per router per failed link).
func (em *Emulator) notify(fa FloodAware, u graph.NodeID, e graph.LinkID) {
	if em.notifSeen[u].Contains(e) {
		return
	}
	em.notifSeen[u].Add(e)
	fa.OnNotification(u, e)
	if t, ok := em.failedAt[e]; ok {
		em.notified[e]++
		// Convergence on the flood path: the last router has reconfigured.
		if em.notified[e] == em.g.NumNodes() {
			em.reconfigUS.Observe(int64((em.now - t) * 1e6))
			delete(em.failedAt, e)
			delete(em.notified, e)
		}
	}
	for _, id := range em.g.Out(u) {
		if !em.linkUp[id] {
			continue
		}
		pk := &Packet{Size: 64, SentAt: em.now, Ctrl: true, FailedLink: e}
		em.transmitCtrl(fa, id, pk)
	}
}

// transmitCtrl sends a control packet over one link, sharing the data
// plane's serialization and propagation model.
func (em *Emulator) transmitCtrl(fa FloodAware, out graph.LinkID, pk *Packet) {
	link := em.g.Link(out)
	rateBytes := link.Capacity * 1e6 / 8
	start := em.linkFree[out]
	if start < em.now {
		start = em.now
	}
	depart := start + float64(pk.Size)/rateBytes
	em.linkFree[out] = depart
	em.CtrlBytes += int64(pk.Size)
	em.obsCtrl.Inc()
	arrive := depart + link.Delay/1000
	em.schedule(arrive, func() {
		if !em.linkUp[out] {
			return
		}
		em.notify(fa, link.Dst, pk.FailedLink)
	})
}

// forward routes pk at node u after hops prior hops.
func (em *Emulator) forward(u graph.NodeID, pk *Packet, hops int) {
	if u == pk.Dst {
		em.deliver(u, pk)
		return
	}
	if hops > em.maxHops {
		em.drop(pk)
		return
	}
	out, ok := em.cfg.Forwarder.Forward(u, pk)
	if !ok {
		em.drop(pk)
		return
	}
	if !em.linkUp[out] {
		// Blackhole window: the data plane link is down but the control
		// plane has not yet reacted.
		em.drop(pk)
		return
	}
	link := em.g.Link(out)
	rateBytes := link.Capacity * 1e6 / 8 // capacity is Mbps
	backlog := (em.linkFree[out] - em.now) * rateBytes
	if backlog > float64(em.cfg.QueueBytes) {
		em.drop(pk)
		return
	}
	start := em.linkFree[out]
	if start < em.now {
		start = em.now
	}
	depart := start + float64(pk.Size)/rateBytes
	em.linkFree[out] = depart
	em.cur.LinkBytes[out] += int64(pk.Size)
	em.obsFwd.Inc()
	arrive := depart + link.Delay/1000
	em.schedule(arrive, func() {
		if !em.linkUp[out] {
			// The link died while the packet was in flight.
			em.drop(pk)
			return
		}
		em.forward(link.Dst, pk, hops+1)
	})
}

func (em *Emulator) deliver(u graph.NodeID, pk *Packet) {
	if pk.Ping {
		if pk.Return {
			em.RTT = append(em.RTT, [2]float64{pk.SentAt, em.now - pk.SentAt})
			return
		}
		// Echo back.
		echo := &Packet{
			Flow: mplsff.FlowKey{SrcIP: pk.Flow.DstIP, DstIP: pk.Flow.SrcIP, SrcPort: pk.Flow.DstPort, DstPort: pk.Flow.SrcPort},
			Src:  pk.Dst, Dst: pk.Src, Size: pk.Size,
			SentAt: pk.SentAt, Ping: true, Return: true,
		}
		em.forward(u, echo, 0)
		return
	}
	em.cur.DeliveredBytes[[2]graph.NodeID{pk.Src, pk.Dst}] += int64(pk.Size)
	em.obsDeliv.Inc()
}

func (em *Emulator) drop(pk *Packet) {
	if pk.Ping {
		return
	}
	em.cur.DropsByDst[pk.Dst] += int64(pk.Size)
	em.obsDrop.Inc()
}

// Run processes events until the given time (events beyond it stay
// queued).
func (em *Emulator) Run(until float64) {
	for em.events.Len() > 0 {
		if em.events[0].at > until {
			break
		}
		ev := heap.Pop(&em.events).(event)
		em.now = ev.at
		ev.fn()
	}
	em.now = until
	em.cur.End = until
}
