// Package netem is a discrete-event packet-level network emulator
// standing in for the paper's Emulab testbed: links with finite rate,
// propagation delay and drop-tail buffering; CBR/Poisson flow generators
// driven by a traffic matrix; link-failure injection with detection and
// reconvergence delays; and per-phase measurement of OD throughput, link
// intensity, egress loss and ping RTT — everything Figures 11–13 need.
//
// Two robustness layers sit on top of the basic emulation: a seeded
// chaos mode (chaos.go) that adversarially drops, duplicates, reorders
// and delays packets and injects correlated failure bursts, and an
// always-on invariant checker (invariants.go) that fails loudly — with
// the seeds and an event trace — the moment the emulation violates the
// paper's guarantees.
package netem

import (
	"container/heap"
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/obs"
)

// Packet is one emulated packet.
type Packet struct {
	Flow     mplsff.FlowKey
	Src, Dst graph.NodeID
	Size     int // bytes
	Stack    []mplsff.Label
	SentAt   float64
	// Ping marks RTT probes; Return marks the echo leg.
	Ping   bool
	Return bool
	// Ctrl marks a failure-notification packet (the ICMP type-42 flood of
	// §4.3) announcing that FailedLink is down.
	Ctrl       bool
	FailedLink graph.LinkID
	// CtrlOrigin and CtrlSeq identify the announcing router's
	// retransmission stream: the reliable flood dedups received
	// notifications per (FailedLink, CtrlOrigin) by sequence number, so
	// chaos-duplicated or re-flooded copies are discarded exactly once
	// per router.
	CtrlOrigin graph.NodeID
	CtrlSeq    uint32
	// StageSeq, when positive, marks a staged-reconfiguration round
	// announcement (staging.go): the packet carries transition round
	// StageSeq instead of a failure notification, deduped per
	// (StageSeq, CtrlOrigin) stream.
	StageSeq int
}

// Forwarder is a routing control/data plane under emulation.
type Forwarder interface {
	// Name labels the forwarder in results.
	Name() string
	// Forward picks the next link for pk at node u (pk may be mutated,
	// e.g. label stack operations). ok=false drops the packet.
	Forward(u graph.NodeID, pk *Packet) (out graph.LinkID, ok bool)
	// ApplyFailure informs the control plane that link e (already down in
	// the data plane) is now known network-wide.
	ApplyFailure(e graph.LinkID)
}

// FloodAware forwarders keep per-router state: instead of a global
// ApplyFailure after a fixed convergence delay, the emulator floods
// notification packets through the network (the paper's ICMP type-42
// flood) and calls OnNotification as each router receives one. Routers
// then reconfigure independently — Theorem 3's order independence is
// what makes their states converge.
type FloodAware interface {
	Forwarder
	// OnNotification tells router u that link e failed.
	OnNotification(u graph.NodeID, e graph.LinkID)
}

// event is a scheduled callback.
type event struct {
	at  float64
	seq int
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// InstantDetect is the DetectDelay sentinel for zero-delay failure
// detection. A plain zero keeps the 10 ms default (the Go zero value must
// stay backward compatible), so instant detection needs an explicit
// negative.
const InstantDetect = -1.0

// Config parameterizes an emulation run.
type Config struct {
	G         *graph.Graph
	Forwarder Forwarder
	// PacketBytes is the data packet size (default 1500).
	PacketBytes int
	// QueueBytes is the per-link drop-tail buffer (default 128 KiB).
	QueueBytes int
	// DetectDelay is the time from a failure to adjacent-router detection
	// (default 10 ms). Use InstantDetect (any negative value) for
	// zero-delay detection; 0 keeps the default.
	DetectDelay float64
	// ConvergeDelay is the additional time until ApplyFailure is invoked
	// (0 for R3's local activation; seconds for OSPF reconvergence).
	ConvergeDelay float64
	// FlowsPerPair is how many hashed flows carry each OD pair's traffic
	// (default 8).
	FlowsPerPair int
	// Seed drives packet arrival jitter.
	Seed int64
	// Chaos, when Enabled, layers seeded fault injection over the run:
	// control/data packet drop, duplication and reordering, detection
	// jitter and correlated multi-link failure bursts (see ChaosConfig).
	Chaos ChaosConfig
	// RefloodRounds is how many times each router that knows of a failure
	// re-announces it to its neighbors (sequence-numbered, spaced
	// RefloodInterval apart) — the reliable flood that survives lossy
	// control channels. 0 defaults to 8 rounds when chaos is enabled and
	// to the classic fire-once flood otherwise; negative forces fire-once.
	RefloodRounds int
	// RefloodInterval is the spacing of re-flood rounds (default 50 ms).
	RefloodInterval float64
	// OnViolation, when non-nil, receives invariant violations instead of
	// the default loud panic (which reports the seeds and event trace).
	// Violations are recorded on the emulator either way.
	OnViolation func(Violation)
	// Obs, when non-nil, receives emulator counters prefixed
	// "netem.<forwarder>." (forwarded/dropped/delivered data packets and
	// ctrl_packets for the notification flood), the global
	// "netem.reflood_rounds" and "netem.chaos.*" fault counters, plus the
	// "netem.reconfig_us" histogram of reconfiguration latency in emulated
	// microseconds: failure instant to network-wide convergence — last
	// router notified on the flood path, ApplyFailure on the global path.
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.PacketBytes == 0 {
		c.PacketBytes = 1500
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 128 << 10
	}
	if c.DetectDelay == 0 {
		c.DetectDelay = 0.010
	} else if c.DetectDelay < 0 {
		c.DetectDelay = 0 // InstantDetect
	}
	if c.FlowsPerPair == 0 {
		c.FlowsPerPair = 8
	}
	if c.RefloodRounds == 0 && c.Chaos.Enabled {
		c.RefloodRounds = 8
	}
	if c.RefloodRounds < 0 {
		c.RefloodRounds = 0
	}
	if c.RefloodInterval == 0 {
		c.RefloodInterval = 0.050
	}
	c.Chaos.defaults()
}

// PhaseStats aggregates measurements between failure events.
type PhaseStats struct {
	// Start and End bound the phase in emulation seconds.
	Start, End float64
	// DeliveredBytes per OD pair.
	DeliveredBytes map[[2]graph.NodeID]int64
	// OfferedBytes per OD pair (generated during the phase).
	OfferedBytes map[[2]graph.NodeID]int64
	// LinkBytes transmitted per link.
	LinkBytes []int64
	// DropsByDst counts bytes dropped, keyed by the packet's egress
	// (destination) router.
	DropsByDst []int64
}

// Duration returns the phase length.
func (p *PhaseStats) Duration() float64 { return p.End - p.Start }

// AppendCanonical serializes the phase into buf in a canonical order
// (sorted OD pairs, float bit patterns), so two runs can be compared
// byte for byte — the chaos determinism tests hash this.
func (p *PhaseStats) AppendCanonical(buf []byte) []byte {
	var b [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	w64(math.Float64bits(p.Start))
	w64(math.Float64bits(p.End))
	keys := make([][2]graph.NodeID, 0, len(p.OfferedBytes))
	for k := range p.OfferedBytes {
		keys = append(keys, k)
	}
	for k := range p.DeliveredBytes {
		if _, ok := p.OfferedBytes[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		w64(uint64(k[0])<<32 | uint64(k[1]))
		w64(uint64(p.OfferedBytes[k]))
		w64(uint64(p.DeliveredBytes[k]))
	}
	for _, v := range p.LinkBytes {
		w64(uint64(v))
	}
	for _, v := range p.DropsByDst {
		w64(uint64(v))
	}
	return buf
}

// Emulator runs one configuration.
type Emulator struct {
	cfg Config
	g   *graph.Graph
	rng *rand.Rand

	now    float64
	seq    int
	events eventHeap

	linkUp   []bool
	linkFree []float64 // time the link's transmitter becomes free
	// capFrac is the lost capacity fraction per link (0 = full rate): a
	// degraded link serializes at (1-capFrac)·rate but stays up.
	capFrac []float64

	phases []*PhaseStats
	cur    *PhaseStats

	// RTT samples: (send time, rtt seconds).
	RTT [][2]float64

	// notifSeen[router] records which failed links the router has been
	// notified of (flood deduplication).
	notifSeen []graph.LinkSet
	// ctrlSeen[router] is the reliable flood's receive-side dedup:
	// highest sequence number processed per (failed link, origin) stream.
	ctrlSeen []map[ctrlStream]uint32
	// ctrlNext[router] is the per-failure send sequence counter.
	ctrlNext []map[graph.LinkID]uint32
	// CtrlBytes counts notification-flood bytes (control-plane overhead).
	CtrlBytes int64

	// Staged reconfiguration (staging.go): per-round deltas keyed by
	// transition sequence number, injection instants and reached-router
	// counts for outstanding rounds (gates the view-divergence invariant
	// during a rollout), per-router receive dedup and send counters for
	// the round flood, and the per-router applied set.
	stagedDeltas map[int]*mplsff.Delta
	stagedAt     map[int]float64
	stageCount   map[int]int
	stageSeen    []map[stageStream]uint32
	stageNext    []map[int]uint32
	stageApplied []map[int]bool
	obsStage     *obs.Counter

	maxHops int

	chaos *chaosState
	inv   *Invariants
	insp  ViewInspector // cfg.Forwarder, when it exposes per-router views
	trace traceRing

	refloodRounds int64

	// Metric handles; nil (no-op) when Config.Obs is nil.
	obsFwd, obsDrop, obsDeliv, obsCtrl *obs.Counter
	obsReflood                         *obs.Counter
	reconfigUS                         *obs.Histogram
	// Reconfiguration-latency tracking per failed link: failure instant
	// and, on the flood path, how many routers have been notified so far.
	failedAt map[graph.LinkID]float64
	notified map[graph.LinkID]int
	// reconfigTimes mirrors the reconfig_us histogram as raw seconds so
	// callers without a registry (the loss sweep) can read latencies.
	reconfigTimes []float64
}

// ctrlStream keys the reliable flood's sequence-number dedup.
type ctrlStream struct {
	e      graph.LinkID
	origin graph.NodeID
}

// New builds an emulator.
func New(cfg Config) *Emulator {
	cfg.defaults()
	em := &Emulator{
		cfg:     cfg,
		g:       cfg.G,
		rng:     rand.New(rand.NewSource(cfg.Seed + 99)),
		linkUp:  make([]bool, cfg.G.NumLinks()),
		maxHops: 4 * cfg.G.NumNodes(),
	}
	for i := range em.linkUp {
		em.linkUp[i] = true
	}
	em.linkFree = make([]float64, cfg.G.NumLinks())
	em.capFrac = make([]float64, cfg.G.NumLinks())
	em.notifSeen = make([]graph.LinkSet, cfg.G.NumNodes())
	em.ctrlSeen = make([]map[ctrlStream]uint32, cfg.G.NumNodes())
	em.ctrlNext = make([]map[graph.LinkID]uint32, cfg.G.NumNodes())
	em.stagedDeltas = make(map[int]*mplsff.Delta)
	em.stagedAt = make(map[int]float64)
	em.stageCount = make(map[int]int)
	em.stageSeen = make([]map[stageStream]uint32, cfg.G.NumNodes())
	em.stageNext = make([]map[int]uint32, cfg.G.NumNodes())
	em.stageApplied = make([]map[int]bool, cfg.G.NumNodes())
	name := "fwd"
	if cfg.Forwarder != nil {
		name = cfg.Forwarder.Name()
	}
	prefix := "netem." + name + "."
	em.obsFwd = cfg.Obs.Counter(prefix + "forwarded")
	em.obsDrop = cfg.Obs.Counter(prefix + "dropped")
	em.obsDeliv = cfg.Obs.Counter(prefix + "delivered")
	em.obsCtrl = cfg.Obs.Counter(prefix + "ctrl_packets")
	em.obsStage = cfg.Obs.Counter("netem.stage_rounds")
	em.obsReflood = cfg.Obs.Counter("netem.reflood_rounds")
	// Emulated reconfiguration latencies range from sub-millisecond LAN
	// floods to multi-second OSPF timers: 1 µs .. ~67 s exponential grid.
	em.reconfigUS = cfg.Obs.Histogram("netem.reconfig_us", obs.ExpBounds(1, 2, 26))
	em.failedAt = make(map[graph.LinkID]float64)
	em.notified = make(map[graph.LinkID]int)
	if cfg.Chaos.Enabled {
		em.chaos = newChaosState(cfg.Chaos, cfg.Obs)
		for _, b := range cfg.Chaos.Bursts {
			b := b
			em.schedule(b.At, func() { em.burst(b) })
		}
	}
	em.insp, _ = cfg.Forwarder.(ViewInspector)
	em.inv = newInvariants(em)
	em.cur = em.newPhase(0)
	return em
}

func (em *Emulator) newPhase(start float64) *PhaseStats {
	p := &PhaseStats{
		Start:          start,
		DeliveredBytes: make(map[[2]graph.NodeID]int64),
		OfferedBytes:   make(map[[2]graph.NodeID]int64),
		LinkBytes:      make([]int64, em.g.NumLinks()),
		DropsByDst:     make([]int64, em.g.NumNodes()),
	}
	em.phases = append(em.phases, p)
	return p
}

// Phases returns the per-phase measurements (phase 0 = no failures,
// phase i = after the i-th injected failure event).
func (em *Emulator) Phases() []*PhaseStats { return em.phases }

// Now returns the current emulation time.
func (em *Emulator) Now() float64 { return em.now }

// Invariants returns the always-on invariant checker (its recorded
// violations in particular).
func (em *Emulator) Invariants() *Invariants { return em.inv }

// Violations returns the invariant violations recorded so far.
func (em *Emulator) Violations() []Violation { return em.inv.Violations() }

// FloodConverged reports whether every injected failure has completed
// reconfiguration (all routers notified on the flood path, ApplyFailure
// fired on the global path). Trivially true before any failure.
func (em *Emulator) FloodConverged() bool { return len(em.failedAt) == 0 }

// ReconfigTimes returns the failure→converged latencies (seconds)
// observed so far, one per failed directed link, in convergence order.
func (em *Emulator) ReconfigTimes() []float64 { return em.reconfigTimes }

// RefloodRoundsFired counts reliable-flood retransmission rounds fired.
func (em *Emulator) RefloodRoundsFired() int64 { return em.refloodRounds }

// Fingerprint digests the run's externally visible output — every phase's
// canonical bytes, the control-plane byte count and the RTT samples —
// into one value. Two runs with identical (Seed, Chaos.Seed) must agree.
func (em *Emulator) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf []byte
	for _, p := range em.phases {
		buf = p.AppendCanonical(buf[:0])
		h.Write(buf)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(em.CtrlBytes))
	h.Write(b[:])
	for _, s := range em.RTT {
		binary.BigEndian.PutUint64(b[:], math.Float64bits(s[0]))
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], math.Float64bits(s[1]))
		h.Write(b[:])
	}
	return h.Sum64()
}

// DataFingerprint digests only the data-plane phase measurements,
// excluding control-plane overhead — used to show the chaos layer at
// zero probability does not perturb the emulation proper.
func (em *Emulator) DataFingerprint() uint64 {
	h := fnv.New64a()
	var buf []byte
	for _, p := range em.phases {
		buf = p.AppendCanonical(buf[:0])
		h.Write(buf)
	}
	return h.Sum64()
}

func (em *Emulator) schedule(at float64, fn func()) {
	em.seq++
	heap.Push(&em.events, event{at: at, seq: em.seq, fn: fn})
}

// AddCBRTraffic installs FlowsPerPair Poisson packet flows from a to b at
// the given aggregate rate (bytes/sec), generating until stop.
func (em *Emulator) AddCBRTraffic(a, b graph.NodeID, bytesPerSec float64, stop float64) {
	if bytesPerSec <= 0 || a == b {
		return
	}
	perFlow := bytesPerSec / float64(em.cfg.FlowsPerPair)
	for i := 0; i < em.cfg.FlowsPerPair; i++ {
		flow := mplsff.FlowKey{
			SrcIP:   uint32(a)<<8 | 10,
			DstIP:   uint32(b)<<8 | 10,
			SrcPort: uint16(1024 + i),
			DstPort: 80,
		}
		mean := float64(em.cfg.PacketBytes) / perFlow
		var gen func()
		gen = func() {
			if em.now >= stop {
				return
			}
			pk := &Packet{Flow: flow, Src: a, Dst: b, Size: em.cfg.PacketBytes, SentAt: em.now}
			em.cur.OfferedBytes[[2]graph.NodeID{a, b}] += int64(pk.Size)
			em.forward(a, pk, 0)
			em.schedule(em.now+em.rng.ExpFloat64()*mean, gen)
		}
		em.schedule(em.rng.Float64()*mean, gen)
	}
}

// AddPing installs an RTT probe: a small packet from a to b every
// interval; the echo is recorded in RTT.
func (em *Emulator) AddPing(a, b graph.NodeID, interval, stop float64) {
	flow := mplsff.FlowKey{SrcIP: uint32(a)<<8 | 1, DstIP: uint32(b)<<8 | 1, SrcPort: 7, DstPort: 7}
	var gen func()
	gen = func() {
		if em.now >= stop {
			return
		}
		pk := &Packet{Flow: flow, Src: a, Dst: b, Size: 64, SentAt: em.now, Ping: true}
		em.forward(a, pk, 0)
		em.schedule(em.now+interval, gen)
	}
	em.schedule(0, gen)
}

// MarkPhaseAt schedules a measurement-phase boundary at time t without
// any other effect, so runs whose reconfiguration events fall at
// different instants can still be compared over an identical measurement
// grid (the staged-vs-one-shot transient comparison).
func (em *Emulator) MarkPhaseAt(t float64) {
	em.schedule(t, func() {
		em.closePhase(em.now)
		em.cur = em.newPhase(em.now)
	})
}

// FailAt schedules a bidirectional link failure: the data plane drops the
// link immediately. For FloodAware forwarders the adjacent routers detect
// it after DetectDelay and flood notification packets, with every router
// reconfiguring as its notification arrives; for others, a global
// ApplyFailure fires after DetectDelay + ConvergeDelay. A new measurement
// phase starts at the failure instant.
func (em *Emulator) FailAt(t float64, e graph.LinkID) {
	em.schedule(t, func() {
		ids := []graph.LinkID{e}
		if rev := em.g.Link(e).Reverse; rev >= 0 {
			ids = append(ids, rev)
		}
		em.failNow(ids)
	})
}

// DegradeAt schedules a bidirectional partial capacity loss: from t on,
// link e and its reverse serialize at (1-frac) of their configured rate
// but stay up — no blackholing, no detection, no notification flood (the
// flow-level reaction to degradation is exercised in core/eval; the
// emulator measures what a degraded data plane delivers). A measurement
// phase boundary is placed at t, so per-phase counters are judged against
// the capacity in force while they accumulated. A repeat call replaces
// the link's lost fraction (frac may shrink: partial recovery).
//
// frac <= 0 is a complete no-op — nothing is scheduled, not even the
// phase boundary, so a run stays byte-identical to one without the call.
// frac >= 1 is a full loss and delegates to FailAt, making the α=0 limit
// of the degradation envelope exactly the hard-failure emulation.
func (em *Emulator) DegradeAt(t float64, e graph.LinkID, frac float64) {
	if frac <= 0 || math.IsNaN(frac) {
		return
	}
	if frac >= 1 {
		em.FailAt(t, e)
		return
	}
	em.schedule(t, func() {
		ids := []graph.LinkID{e}
		if rev := em.g.Link(e).Reverse; rev >= 0 {
			ids = append(ids, rev)
		}
		em.closePhase(em.now)
		em.cur = em.newPhase(em.now)
		for _, id := range ids {
			em.capFrac[id] = frac
			em.trace.add(em.now, traceDegrade, int32(id), -1)
		}
	})
}

// DegradedFrac returns link e's current lost capacity fraction.
func (em *Emulator) DegradedFrac(e graph.LinkID) float64 { return em.capFrac[e] }

// rateBytes is link out's current serialization rate in bytes/sec:
// configured capacity (Mbps) scaled by any degradation in force.
func (em *Emulator) rateBytes(out graph.LinkID) float64 {
	r := em.g.Link(out).Capacity * 1e6 / 8
	if f := em.capFrac[out]; f > 0 {
		r *= 1 - f
	}
	return r
}

// failNow takes a set of directed links down at the current instant as
// one correlated event: one phase boundary, then detection and
// notification per link. FailAt routes single duplex failures here;
// chaos bursts pass several links at once.
func (em *Emulator) failNow(ids []graph.LinkID) {
	for _, id := range ids {
		em.linkUp[id] = false
		em.failedAt[id] = em.now
		em.trace.add(em.now, traceFail, int32(id), -1)
	}
	em.closePhase(em.now)
	em.cur = em.newPhase(em.now)
	if fa, ok := em.cfg.Forwarder.(FloodAware); ok {
		if ch := em.chaos; ch != nil && ch.cfg.DetectJitter > 0 {
			// Each adjacent router detects independently: layer-2
			// monitoring timers are not synchronized across routers.
			for _, id := range ids {
				l := em.g.Link(id)
				for _, end := range [2]graph.NodeID{l.Src, l.Dst} {
					end, id := end, id
					at := em.now + em.cfg.DetectDelay + ch.rng.Float64()*ch.cfg.DetectJitter
					em.schedule(at, func() { em.notify(fa, end, id) })
				}
			}
			return
		}
		em.schedule(em.now+em.cfg.DetectDelay, func() {
			for _, id := range ids {
				l := em.g.Link(id)
				// Both endpoints detect via layer-2 monitoring and
				// originate the flood.
				em.notify(fa, l.Src, id)
				em.notify(fa, l.Dst, id)
			}
		})
		return
	}
	delay := em.cfg.DetectDelay + em.cfg.ConvergeDelay
	em.schedule(em.now+delay, func() {
		for _, id := range ids {
			em.cfg.Forwarder.ApplyFailure(id)
			if t, ok := em.failedAt[id]; ok {
				em.observeReconfig(em.now - t)
				delete(em.failedAt, id)
			}
		}
		if len(em.failedAt) == 0 {
			em.inv.checkConverged()
		}
	})
}

// burst fails b.Links randomly chosen alive duplex links simultaneously
// (a correlated multi-failure event — shared conduits, power domains).
func (em *Emulator) burst(b ChaosBurst) {
	ch := em.chaos
	var candidates []graph.LinkID
	for id := 0; id < em.g.NumLinks(); id++ {
		lid := graph.LinkID(id)
		if !em.linkUp[lid] {
			continue
		}
		if rev := em.g.Link(lid).Reverse; rev >= 0 && rev < lid {
			continue // canonical direction only
		}
		candidates = append(candidates, lid)
	}
	if len(candidates) == 0 || b.Links <= 0 {
		return
	}
	n := b.Links
	if n > len(candidates) {
		n = len(candidates)
	}
	perm := ch.rng.Perm(len(candidates))
	var ids []graph.LinkID
	for _, pi := range perm[:n] {
		id := candidates[pi]
		ids = append(ids, id)
		if rev := em.g.Link(id).Reverse; rev >= 0 {
			ids = append(ids, rev)
		}
	}
	em.trace.add(em.now, traceBurst, int32(len(ids)), -1)
	em.failNow(ids)
}

// observeReconfig records one failure→converged latency.
func (em *Emulator) observeReconfig(dt float64) {
	em.reconfigUS.Observe(int64(dt * 1e6))
	em.reconfigTimes = append(em.reconfigTimes, dt)
}

// closePhase ends the current phase at t and runs the per-phase
// invariants (Theorem 2: delivered load never exceeds capacity).
func (em *Emulator) closePhase(t float64) {
	em.cur.End = t
	em.inv.checkPhaseCapacity(em.cur)
}

// notify delivers a failure notification to router u. The first time u
// hears of e it reconfigures (OnNotification), relays the flood on every
// alive outgoing link, and — when RefloodRounds > 0 — schedules periodic
// sequence-numbered re-announcements so neighbors behind lossy links
// still learn of e.
func (em *Emulator) notify(fa FloodAware, u graph.NodeID, e graph.LinkID) {
	if em.notifSeen[u].Contains(e) {
		return
	}
	em.notifSeen[u].Add(e)
	em.trace.add(em.now, traceNotify, int32(e), int32(u))
	fa.OnNotification(u, e)
	if t, ok := em.failedAt[e]; ok {
		em.notified[e]++
		// Convergence on the flood path: the last router has reconfigured.
		if em.notified[e] == em.g.NumNodes() {
			em.observeReconfig(em.now - t)
			delete(em.failedAt, e)
			delete(em.notified, e)
			if len(em.failedAt) == 0 {
				em.inv.checkConverged()
			}
		}
	}
	em.floodOut(fa, u, e)
	for i := 1; i <= em.cfg.RefloodRounds; i++ {
		em.schedule(em.now+float64(i)*em.cfg.RefloodInterval, func() {
			em.refloodRounds++
			em.obsReflood.Inc()
			em.floodOut(fa, u, e)
		})
	}
}

// floodOut announces failure e from router u on every alive outgoing
// link, stamped with u's next sequence number for e.
func (em *Emulator) floodOut(fa FloodAware, u graph.NodeID, e graph.LinkID) {
	if em.ctrlNext[u] == nil {
		em.ctrlNext[u] = make(map[graph.LinkID]uint32)
	}
	seq := em.ctrlNext[u][e]
	em.ctrlNext[u][e] = seq + 1
	for _, id := range em.g.Out(u) {
		if !em.linkUp[id] {
			continue
		}
		pk := &Packet{Size: 64, SentAt: em.now, Ctrl: true, FailedLink: e, CtrlOrigin: u, CtrlSeq: seq}
		em.transmitCtrl(fa, id, pk)
	}
}

// receiveCtrl processes an arriving control packet: staged-round
// announcements branch to the staging path, failure notifications go
// through sequence-numbered dedup per (failure, origin) stream, then the
// learn/relay path.
func (em *Emulator) receiveCtrl(fwd Forwarder, u graph.NodeID, pk *Packet) {
	if pk.StageSeq > 0 {
		em.receiveStage(u, pk)
		return
	}
	fa, ok := fwd.(FloodAware)
	if !ok {
		return
	}
	key := ctrlStream{e: pk.FailedLink, origin: pk.CtrlOrigin}
	if last, ok := em.ctrlSeen[u][key]; ok && pk.CtrlSeq <= last {
		return
	}
	if em.ctrlSeen[u] == nil {
		em.ctrlSeen[u] = make(map[ctrlStream]uint32)
	}
	em.ctrlSeen[u][key] = pk.CtrlSeq
	em.notify(fa, u, pk.FailedLink)
}

// transmitCtrl sends a control packet over one link, sharing the data
// plane's serialization and propagation model. Chaos may lose, duplicate
// or delay the packet in flight.
func (em *Emulator) transmitCtrl(fwd Forwarder, out graph.LinkID, pk *Packet) {
	link := em.g.Link(out)
	rateBytes := em.rateBytes(out)
	start := em.linkFree[out]
	if start < em.now {
		start = em.now
	}
	depart := start + float64(pk.Size)/rateBytes
	em.linkFree[out] = depart
	em.CtrlBytes += int64(pk.Size)
	em.obsCtrl.Inc()
	arrive := depart + link.Delay/1000
	deliver := func() {
		if !em.linkUp[out] {
			return
		}
		em.receiveCtrl(fwd, link.Dst, pk)
	}
	if ch := em.chaos; ch != nil {
		if ch.cfg.CtrlDrop > 0 && ch.rng.Float64() < ch.cfg.CtrlDrop {
			ch.droppedCtrl.Inc()
			em.trace.add(em.now, traceChaosDropCtrl, int32(out), int32(pk.FailedLink))
			return
		}
		if ch.cfg.CtrlDup > 0 && ch.rng.Float64() < ch.cfg.CtrlDup {
			ch.duplicated.Inc()
			em.trace.add(em.now, traceChaosDup, int32(out), int32(pk.FailedLink))
			em.schedule(ch.jitter(arrive, ch.cfg.CtrlJitter), deliver)
		}
		arrive = ch.jitter(arrive, ch.cfg.CtrlJitter)
	}
	em.schedule(arrive, deliver)
}

// forward routes pk at node u after hops prior hops.
func (em *Emulator) forward(u graph.NodeID, pk *Packet, hops int) {
	if u == pk.Dst {
		em.deliver(u, pk)
		return
	}
	if hops > em.maxHops {
		em.drop(pk)
		return
	}
	out, ok := em.cfg.Forwarder.Forward(u, pk)
	if !ok {
		em.drop(pk)
		return
	}
	em.inv.checkForward(u, out, pk)
	if !em.linkUp[out] {
		// Blackhole window: the data plane link is down but the control
		// plane has not yet reacted.
		em.drop(pk)
		return
	}
	link := em.g.Link(out)
	rateBytes := em.rateBytes(out) // capacity is Mbps
	backlog := (em.linkFree[out] - em.now) * rateBytes
	if backlog > float64(em.cfg.QueueBytes) {
		em.drop(pk)
		return
	}
	em.inv.checkTx(out)
	start := em.linkFree[out]
	if start < em.now {
		start = em.now
	}
	depart := start + float64(pk.Size)/rateBytes
	em.linkFree[out] = depart
	em.cur.LinkBytes[out] += int64(pk.Size)
	em.obsFwd.Inc()
	arrive := depart + link.Delay/1000
	deliver := func(p *Packet) func() {
		return func() {
			if !em.linkUp[out] {
				// The link died while the packet was in flight.
				em.drop(p)
				return
			}
			em.forward(link.Dst, p, hops+1)
		}
	}
	if ch := em.chaos; ch != nil {
		if ch.cfg.DataDrop > 0 && ch.rng.Float64() < ch.cfg.DataDrop {
			ch.droppedData.Inc()
			em.trace.add(em.now, traceChaosDropData, int32(out), -1)
			em.drop(pk)
			return
		}
		if ch.cfg.DataDup > 0 && ch.rng.Float64() < ch.cfg.DataDup {
			ch.duplicated.Inc()
			dup := *pk
			dup.Stack = append([]mplsff.Label(nil), pk.Stack...)
			em.schedule(ch.jitter(arrive, ch.cfg.DataJitter), deliver(&dup))
		}
		arrive = ch.jitter(arrive, ch.cfg.DataJitter)
	}
	em.schedule(arrive, deliver(pk))
}

func (em *Emulator) deliver(u graph.NodeID, pk *Packet) {
	if pk.Ping {
		if pk.Return {
			em.RTT = append(em.RTT, [2]float64{pk.SentAt, em.now - pk.SentAt})
			return
		}
		// Echo back.
		echo := &Packet{
			Flow: mplsff.FlowKey{SrcIP: pk.Flow.DstIP, DstIP: pk.Flow.SrcIP, SrcPort: pk.Flow.DstPort, DstPort: pk.Flow.SrcPort},
			Src:  pk.Dst, Dst: pk.Src, Size: pk.Size,
			SentAt: pk.SentAt, Ping: true, Return: true,
		}
		em.forward(u, echo, 0)
		return
	}
	em.cur.DeliveredBytes[[2]graph.NodeID{pk.Src, pk.Dst}] += int64(pk.Size)
	em.obsDeliv.Inc()
}

func (em *Emulator) drop(pk *Packet) {
	if pk.Ping {
		return
	}
	em.cur.DropsByDst[pk.Dst] += int64(pk.Size)
	em.obsDrop.Inc()
}

// Run processes events until the given time (events beyond it stay
// queued).
func (em *Emulator) Run(until float64) {
	for em.events.Len() > 0 {
		if em.events[0].at > until {
			break
		}
		ev := heap.Pop(&em.events).(event)
		em.now = ev.at
		ev.fn()
	}
	em.now = until
	em.closePhase(until)
}
