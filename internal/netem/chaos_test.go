package netem

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// goldenScenario is the fixed workload pinned against pre-chaos-PR
// behavior: Abilene at 150 Mbps, a Denver–LosAngeles ping, two duplex
// failures, three seconds of emulation.
func goldenScenario(t testing.TB, cfg Config) *Emulator {
	t.Helper()
	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	cfg.G = g
	cfg.Forwarder = NewR3Distributed(plan)
	cfg.Seed = 1
	em := New(cfg)
	addTM(em, d, 3.0)
	den, _ := g.NodeByName("Denver")
	la, _ := g.NodeByName("LosAngeles")
	em.AddPing(den, la, 0.2, 3.0)
	em.FailAt(1.0, 0)
	em.FailAt(1.5, 8)
	em.Run(3.0)
	return em
}

func sumPhases(em *Emulator) (off, del, dr int64) {
	for _, p := range em.Phases() {
		off += totalOffered(p)
		del += totalDelivered(p)
		dr += totalDrops(p)
	}
	return
}

// TestChaosDisabledMatchesPrePRGolden pins the default-configuration
// emulation output to exact golden values: any drift means the chaos
// layer, the reliable flood or the invariant checker are not inert when
// disabled. The constants were originally captured from the pre-chaos
// tree and re-pinned when the SPF kernel moved to canonical (salted)
// tie-breaking, which legitimately changed which tied detour paths plans
// carry (plan quality and all layering invariants are pinned elsewhere).
func TestChaosDisabledMatchesPrePRGolden(t *testing.T) {
	em := goldenScenario(t, Config{})
	off, del, dr := sumPhases(em)
	if em.CtrlBytes != 6400 {
		t.Errorf("CtrlBytes = %d, pre-PR golden 6400", em.CtrlBytes)
	}
	if off != 57196500 || del != 56686500 || dr != 144000 {
		t.Errorf("off/del/drop = %d/%d/%d, golden 57196500/56686500/144000", off, del, dr)
	}
	if len(em.RTT) != 15 {
		t.Errorf("RTT samples = %d, pre-PR golden 15", len(em.RTT))
	}
	if len(em.Phases()) != 3 {
		t.Errorf("phases = %d, pre-PR golden 3", len(em.Phases()))
	}
	if got := em.Fingerprint(); got != goldenFingerprint {
		t.Errorf("Fingerprint = %#x, pinned %#x", got, goldenFingerprint)
	}
	if n := len(em.Violations()); n != 0 {
		t.Errorf("golden run recorded %d invariant violations", n)
	}
}

// goldenFingerprint is the canonical digest of the golden scenario with
// chaos disabled (raw counters above are pinned independently, so a
// serialization change and a behavior change are distinguishable).
const goldenFingerprint uint64 = 0x831742b7eddb5022

// TestChaosDeterminism: two runs with identical (Seed, ChaosSeed) must be
// byte-identical, chaos faults and all.
func TestChaosDeterminism(t *testing.T) {
	cfg := Config{Chaos: ChaosConfig{
		Enabled: true, Seed: 42,
		CtrlDrop: 0.3, CtrlDup: 0.1, CtrlJitter: 0.005,
		DataDrop: 0.02, DataDup: 0.01, DataJitter: 0.001,
		DetectJitter: 0.004,
	}}
	a := goldenScenario(t, cfg)
	b := goldenScenario(t, cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same (Seed, ChaosSeed) diverged: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
	if a.CtrlBytes != b.CtrlBytes || a.RefloodRoundsFired() != b.RefloodRoundsFired() {
		t.Fatalf("control plane diverged: ctrl %d/%d, rounds %d/%d",
			a.CtrlBytes, b.CtrlBytes, a.RefloodRoundsFired(), b.RefloodRoundsFired())
	}
}

// TestChaosSeedIsolation: with every fault probability at zero, the chaos
// layer draws no randomness, so differing chaos seeds must not perturb
// the emulation at all and every chaos-labelled counter stays zero.
func TestChaosSeedIsolation(t *testing.T) {
	run := func(chaosSeed int64) (*Emulator, *obs.Registry) {
		reg := obs.NewRegistry()
		em := goldenScenario(t, Config{Obs: reg, Chaos: ChaosConfig{Enabled: true, Seed: chaosSeed}})
		return em, reg
	}
	a, ra := run(7)
	b, rb := run(8)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("chaos seed perturbed a zero-probability run: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
	for _, reg := range []*obs.Registry{ra, rb} {
		snap := reg.Snapshot()
		for _, name := range []string{"netem.chaos.dropped_ctrl", "netem.chaos.dropped_data", "netem.chaos.dup", "netem.chaos.reordered"} {
			if v := snap.Counters[name]; v != 0 {
				t.Errorf("%s = %d with all probabilities zero", name, v)
			}
		}
	}
}

// TestChaosSeedPerturbsOnlyChaosCounters: differing chaos seeds at a
// positive loss rate change which packets are hit (the chaos-labelled
// counters and, through real loss, the measurements), but both runs must
// still satisfy every invariant and fully reconverge.
func TestChaosSeedPerturbsOnlyChaosCounters(t *testing.T) {
	run := func(chaosSeed int64) (*Emulator, *obs.Registry) {
		reg := obs.NewRegistry()
		em := goldenScenario(t, Config{Obs: reg, Chaos: ChaosConfig{Enabled: true, Seed: chaosSeed, CtrlDrop: 0.3}})
		return em, reg
	}
	a, ra := run(1)
	b, rb := run(2)
	ca := ra.Snapshot().Counters["netem.chaos.dropped_ctrl"]
	cb := rb.Snapshot().Counters["netem.chaos.dropped_ctrl"]
	if ca == 0 || cb == 0 {
		t.Fatalf("no control packets dropped at 30%% loss: %d, %d", ca, cb)
	}
	// Data-plane chaos is off: the generated workload is untouched, so
	// per-phase offered bytes agree exactly across chaos seeds.
	for i := range a.Phases() {
		if totalOffered(a.Phases()[i]) != totalOffered(b.Phases()[i]) {
			t.Errorf("phase %d offered bytes differ across chaos seeds", i)
		}
	}
	for _, em := range []*Emulator{a, b} {
		if !em.FloodConverged() {
			t.Fatalf("run did not reconverge under 30%% control loss")
		}
		if n := len(em.Violations()); n != 0 {
			t.Fatalf("%d invariant violations: %v", n, em.Violations())
		}
	}
}

// TestChaosDataFaults exercises the data-plane injection points: drops
// show up in the chaos counters and in the phase loss accounting,
// duplicates inflate delivery.
func TestChaosDataFaults(t *testing.T) {
	reg := obs.NewRegistry()
	em := goldenScenario(t, Config{Obs: reg, Chaos: ChaosConfig{Enabled: true, Seed: 3, DataDrop: 0.05}})
	snap := reg.Snapshot()
	if snap.Counters["netem.chaos.dropped_data"] == 0 {
		t.Fatal("no data packets chaos-dropped at 5% loss")
	}
	off, del, _ := sumPhases(em)
	if float64(del) > 0.99*float64(off) {
		t.Errorf("5%% chaos loss barely visible: delivered %d of %d", del, off)
	}

	reg2 := obs.NewRegistry()
	em2 := goldenScenario(t, Config{Obs: reg2, Chaos: ChaosConfig{Enabled: true, Seed: 3, DataDup: 0.05}})
	if reg2.Snapshot().Counters["netem.chaos.dup"] == 0 {
		t.Fatal("no data packets duplicated at 5% dup rate")
	}
	off2, del2, _ := sumPhases(em2)
	if del2 <= off2 {
		t.Errorf("duplication should overdeliver: %d <= %d", del2, off2)
	}
}

// TestChaosBurst injects a correlated three-link burst mid-run: one new
// phase at the burst instant, all chosen links down, and the reliable
// flood still reconverges every view.
func TestChaosBurst(t *testing.T) {
	g, _, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 1, Chaos: ChaosConfig{
		Enabled: true, Seed: 5, CtrlDrop: 0.2,
		Bursts: []ChaosBurst{{At: 0.5, Links: 3}},
	}})
	em.Run(2.0)
	if len(em.Phases()) != 2 {
		t.Fatalf("burst created %d phases, want 2", len(em.Phases()))
	}
	down := 0
	for e := 0; e < g.NumLinks(); e++ {
		if !em.linkUp[e] {
			down++
		}
	}
	if down != 6 { // three duplex links
		t.Fatalf("%d directed links down after a 3-link burst, want 6", down)
	}
	if !em.FloodConverged() {
		t.Fatal("burst failures did not reconverge")
	}
	want := fw.ViewFingerprint(0)
	for v := 1; v < g.NumNodes(); v++ {
		if fw.ViewFingerprint(graph.NodeID(v)) != want {
			t.Fatalf("router %d view diverged after burst", v)
		}
	}
	if n := len(em.Violations()); n != 0 {
		t.Fatalf("burst run recorded %d violations: %v", n, em.Violations())
	}
}

// TestDetectDelayInstantSentinel is the regression test for the
// DetectDelay zero-value footgun: InstantDetect must give true zero-delay
// detection, while an unset (zero) field keeps the 10 ms default.
func TestDetectDelayInstantSentinel(t *testing.T) {
	g, _, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)

	detectAt := func(detect float64) float64 {
		fw := NewR3Distributed(plan)
		em := New(Config{G: g, Forwarder: fw, Seed: 1, DetectDelay: detect})
		em.FailAt(1.0, 0)
		// Step just past the failure instant: only zero-delay detection
		// can have informed the adjacent routers already.
		em.Run(1.0005)
		l := g.Link(0)
		if fw.ViewKnowsFailed(l.Src, 0) && fw.ViewKnowsFailed(l.Dst, 0) {
			return 0
		}
		em.Run(1.5)
		if !fw.ViewKnowsFailed(l.Src, 0) {
			t.Fatal("failure never detected")
		}
		return 1
	}
	if got := detectAt(InstantDetect); got != 0 {
		t.Error("InstantDetect did not detect at the failure instant")
	}
	if got := detectAt(0); got != 1 {
		t.Error("zero DetectDelay no longer defaults to 10 ms")
	}
}
