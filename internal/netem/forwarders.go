package netem

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/spf"
)

// R3Forwarder drives the MPLS-ff data plane: base FIB lookup, label
// stacking onto protection LSPs at failed links (including nested
// stacking under overlapping failures), and popping at protected-link
// tails.
type R3Forwarder struct {
	Net *mplsff.Network
}

// Name implements Forwarder.
func (f *R3Forwarder) Name() string { return "MPLS-ff+R3" }

// ApplyFailure implements Forwarder.
func (f *R3Forwarder) ApplyFailure(e graph.LinkID) {
	// Errors cannot occur for first-time failures; OnFailure is
	// idempotent for repeats (both directions may be reported).
	_ = f.Net.OnFailure(e)
}

// Forward implements Forwarder via the shared MPLS-ff decision walk.
func (f *R3Forwarder) Forward(u graph.NodeID, pk *Packet) (graph.LinkID, bool) {
	return mplsForward(f.Net, u, pk)
}

// OSPFReconForwarder models plain OSPF with reconvergence: hash-based
// ECMP toward the destination on the currently converged topology.
// Failures take DetectDelay + ConvergeDelay before the tables change;
// until then packets blackhole at the failed link.
type OSPFReconForwarder struct {
	G *graph.Graph

	failed graph.LinkSet
	// next[dst][node] lists ECMP next-hop links.
	next map[graph.NodeID][][]graph.LinkID
}

// NewOSPFRecon builds the forwarder with converged (failure-free) tables.
func NewOSPFRecon(g *graph.Graph) *OSPFReconForwarder {
	f := &OSPFReconForwarder{G: g}
	f.reconverge()
	return f
}

// Name implements Forwarder.
func (f *OSPFReconForwarder) Name() string { return "OSPF+recon" }

// ApplyFailure implements Forwarder.
func (f *OSPFReconForwarder) ApplyFailure(e graph.LinkID) {
	if f.failed.Contains(e) {
		return
	}
	f.failed.Add(e)
	f.reconverge()
}

func (f *OSPFReconForwarder) reconverge() {
	g := f.G
	alive := f.failed.Alive()
	cost := spf.WeightCost(g)
	f.next = make(map[graph.NodeID][][]graph.LinkID, g.NumNodes())
	const eps = 1e-9
	for dvi := 0; dvi < g.NumNodes(); dvi++ {
		dst := graph.NodeID(dvi)
		distTo := spf.DijkstraTo(g, dst, alive, cost)
		table := make([][]graph.LinkID, g.NumNodes())
		for u := 0; u < g.NumNodes(); u++ {
			if math.IsInf(distTo[u], 1) || graph.NodeID(u) == dst {
				continue
			}
			for _, id := range g.Out(graph.NodeID(u)) {
				if !alive(id) {
					continue
				}
				v := g.Link(id).Dst
				if math.IsInf(distTo[v], 1) {
					continue
				}
				if math.Abs(cost(id)+distTo[v]-distTo[graph.NodeID(u)]) < eps*(1+distTo[graph.NodeID(u)]) {
					table[u] = append(table[u], id)
				}
			}
		}
		f.next[dst] = table
	}
}

// Forward implements Forwarder.
func (f *OSPFReconForwarder) Forward(u graph.NodeID, pk *Packet) (graph.LinkID, bool) {
	table := f.next[pk.Dst]
	if table == nil {
		return 0, false
	}
	hops := table[u]
	if len(hops) == 0 {
		return 0, false
	}
	if len(hops) == 1 {
		return hops[0], true
	}
	h := fnv.New32a()
	var buf [14]byte
	binary.BigEndian.PutUint32(buf[0:], pk.Flow.SrcIP)
	binary.BigEndian.PutUint32(buf[4:], pk.Flow.DstIP)
	binary.BigEndian.PutUint16(buf[8:], pk.Flow.SrcPort)
	binary.BigEndian.PutUint16(buf[10:], pk.Flow.DstPort)
	binary.BigEndian.PutUint16(buf[12:], uint16(u))
	h.Write(buf[:])
	return hops[int(h.Sum32())%len(hops)], true
}
