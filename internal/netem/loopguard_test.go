package netem

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/obs"
)

// craftLoopingView builds a real MPLS-ff view and then rewires router
// u's tables into a protection-label cycle: the base FIB sends the OD
// pair (u, dst) into failed link e1, whose ILM detours into failed link
// e2, whose ILM detours back into e1. Every lookup pushes another label,
// so only the depth bound stops the walk. Such tables cannot arise from
// a valid R3 plan (detours ξ_e avoid e itself), which is exactly why the
// data plane needs a guard against corrupted or adversarial state.
func craftLoopingView(t *testing.T) (view *mplsff.Network, u, dst graph.NodeID, e1, e2 graph.LinkID) {
	t.Helper()
	plan := planForRing5(t)
	g := plan.G
	view = mplsff.Build(plan)
	u = graph.NodeID(0)
	outs := g.Out(u)
	if len(outs) < 2 {
		t.Fatalf("node %d has %d out-links, need 2", u, len(outs))
	}
	e1, e2 = outs[0], outs[1]
	// The view must believe both links failed before the tables are
	// rewired: OnFailure re-programs the maps we are about to overwrite.
	if err := view.OnFailure(e1); err != nil {
		t.Fatal(err)
	}
	if err := view.OnFailure(e2); err != nil {
		t.Fatal(err)
	}
	dst = graph.NodeID(3)
	r := view.Routers[u]
	l1, l2 := view.LabelOf[e1], view.LabelOf[e2]
	r.FIB[[2]graph.NodeID{u, dst}] = []mplsff.NHLFE{{Out: e1, Ratio: 1}}
	r.ILM[l1] = &mplsff.FWD{Entries: []mplsff.NHLFE{{Out: e2, Ratio: 1}}}
	r.ILM[l2] = &mplsff.FWD{Entries: []mplsff.NHLFE{{Out: e1, Ratio: 1}}}
	return view, u, dst, e1, e2
}

// TestForwardLoopGuardDropsCyclicPlan: a label-push cycle must terminate
// at the MaxStackDepth bound with ok=false (packet dropped), never spin
// or grow the stack unboundedly — for both the centralized forwarder and
// a distributed per-router view.
func TestForwardLoopGuardDropsCyclicPlan(t *testing.T) {
	view, u, dst, _, _ := craftLoopingView(t)

	forwarders := map[string]Forwarder{
		"centralized": &R3Forwarder{Net: view},
		"distributed": &R3DistributedForwarder{views: func() []*mplsff.Network {
			vs := make([]*mplsff.Network, view.G.NumNodes())
			for i := range vs {
				vs[i] = view
			}
			return vs
		}()},
	}
	for name, fw := range forwarders {
		t.Run(name, func(t *testing.T) {
			pk := &Packet{Src: u, Dst: dst, Size: 1500}
			out, ok := fw.Forward(u, pk)
			if ok {
				t.Fatalf("cyclic tables forwarded to link %d instead of dropping", out)
			}
			if len(pk.Stack) > mplsff.MaxStackDepth {
				t.Fatalf("stack grew to %d labels, bound is %d", len(pk.Stack), mplsff.MaxStackDepth)
			}
			if len(pk.Stack) == 0 {
				t.Fatal("walk never entered the label cycle (test rig broken)")
			}
		})
	}
}

// TestForwardLoopGuardEmulatorAccounting: inside the emulator the guard's
// ok=false surfaces as a clean counted drop — bytes land in DropsByDst,
// the obs drop counter advances, nothing is delivered, and no invariant
// fires (the packet never reaches a transmit decision).
func TestForwardLoopGuardEmulatorAccounting(t *testing.T) {
	view, u, dst, _, _ := craftLoopingView(t)
	reg := obs.NewRegistry()
	em := New(Config{G: view.G, Forwarder: &R3Forwarder{Net: view}, Seed: 1, Obs: reg})
	em.AddCBRTraffic(u, dst, 1e6, 0.5)
	em.Run(0.5)

	off, del, dr := sumPhases(em)
	if off == 0 {
		t.Fatal("no traffic offered (test rig broken)")
	}
	if del != 0 {
		t.Fatalf("delivered %d bytes through a label cycle", del)
	}
	if dr != off {
		t.Fatalf("dropped %d of %d offered bytes; the loop guard must drop every packet", dr, off)
	}
	var byDst int64
	for _, p := range em.Phases() {
		byDst += p.DropsByDst[dst]
	}
	if byDst != off {
		t.Fatalf("DropsByDst[%d] = %d, want all %d offered bytes", dst, byDst, off)
	}
	if c := reg.Snapshot().Counters["netem.MPLS-ff+R3.dropped"]; c == 0 {
		t.Error("obs drop counter did not advance")
	}
	if n := len(em.Violations()); n != 0 {
		t.Fatalf("loop-guard drops raised %d invariant violations: %v", n, em.Violations())
	}
}
