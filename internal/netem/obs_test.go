package netem

import (
	"testing"

	"repro/internal/obs"
)

// TestObsFloodReconfigLatency injects a failure under the flood-aware R3
// control plane with a live registry and checks the recorded
// reconfiguration latency and packet counters against the emulator's own
// ground truth (PhaseStats, CtrlBytes).
func TestObsFloodReconfigLatency(t *testing.T) {
	g, d, _ := abileneSetup(t, 100)
	plan := planForAbilene(t, 100)
	fw := NewR3Distributed(plan)
	reg := obs.NewRegistry()
	em := New(Config{G: g, Forwarder: fw, Seed: 1, Obs: reg})
	stop := 3.0
	addTM(em, d, stop)
	em.FailAt(1.0, 0)
	em.Run(stop)

	snap := reg.Snapshot()
	h, ok := snap.Histograms["netem.reconfig_us"]
	if !ok {
		t.Fatal("no netem.reconfig_us histogram in snapshot")
	}
	// A duplex failure converges once per direction.
	if h.Count != 2 {
		t.Fatalf("reconfig observations = %d, want 2 (one per direction)", h.Count)
	}
	// The flood cannot complete before the adjacent routers detect the
	// failure (DetectDelay = 10ms) and must finish well within the run.
	if h.Min < 10_000 {
		t.Fatalf("reconfig latency %d µs is below the 10ms detection delay", h.Min)
	}
	if h.Max > 1_000_000 {
		t.Fatalf("flood reconfiguration took %d µs; expected well under a second", h.Max)
	}

	prefix := "netem." + fw.Name() + "."
	ctrl := snap.Counters[prefix+"ctrl_packets"]
	if ctrl == 0 || ctrl*64 != em.CtrlBytes {
		t.Fatalf("ctrl_packets = %d, but CtrlBytes = %d (64-byte notifications)", ctrl, em.CtrlBytes)
	}

	// Delivered/dropped counters tally 1500-byte data packets; the phase
	// stats account the same packets in bytes.
	var deliveredBytes, droppedBytes int64
	for _, p := range em.Phases() {
		deliveredBytes += totalDelivered(p)
		droppedBytes += totalDrops(p)
	}
	if got := snap.Counters[prefix+"delivered"]; got*1500 != deliveredBytes {
		t.Fatalf("delivered counter %d (×1500 = %d) != phase bytes %d", got, got*1500, deliveredBytes)
	}
	if got := snap.Counters[prefix+"dropped"]; got*1500 != droppedBytes {
		t.Fatalf("dropped counter %d (×1500 = %d) != phase bytes %d", got, got*1500, droppedBytes)
	}
	if snap.Counters[prefix+"forwarded"] == 0 {
		t.Fatal("forwarded counter is zero despite traffic")
	}
}

// TestObsGlobalReconfigLatency covers the non-flood path: with a plain
// Forwarder, reconfiguration completes exactly DetectDelay+ConvergeDelay
// after the failure instant.
func TestObsGlobalReconfigLatency(t *testing.T) {
	g, d, _ := abileneSetup(t, 100)
	fw := NewOSPFRecon(g)
	reg := obs.NewRegistry()
	em := New(Config{G: g, Forwarder: fw, Seed: 1, ConvergeDelay: 0.5, Obs: reg})
	stop := 3.0
	addTM(em, d, stop)
	em.FailAt(1.0, 0)
	em.Run(stop)

	snap := reg.Snapshot()
	h, ok := snap.Histograms["netem.reconfig_us"]
	if !ok {
		t.Fatal("no netem.reconfig_us histogram in snapshot")
	}
	if h.Count != 2 {
		t.Fatalf("reconfig observations = %d, want 2", h.Count)
	}
	// DetectDelay (10ms) + ConvergeDelay (500ms) = 510ms, modulo float
	// truncation to whole microseconds.
	if h.Min < 509_000 || h.Max > 511_000 {
		t.Fatalf("global reconfig latency [%d, %d] µs, want ≈510000", h.Min, h.Max)
	}
}

// TestObsNilRegistryIsInert re-runs the flood scenario without a registry:
// behavior and measurements must be identical (the instrumentation is
// passive), and nothing may panic on the nil handles.
func TestObsNilRegistryIsInert(t *testing.T) {
	g, d, _ := abileneSetup(t, 100)
	plan := planForAbilene(t, 100)
	run := func(reg *obs.Registry) (int64, int64) {
		em := New(Config{G: g, Forwarder: NewR3Distributed(plan), Seed: 1, Obs: reg})
		addTM(em, d, 2.0)
		em.FailAt(1.0, 0)
		em.Run(2.0)
		var delivered int64
		for _, p := range em.Phases() {
			delivered += totalDelivered(p)
		}
		return delivered, em.CtrlBytes
	}
	d1, c1 := run(nil)
	d2, c2 := run(obs.NewRegistry())
	if d1 != d2 || c1 != c2 {
		t.Fatalf("instrumentation changed the run: delivered %d/%d, ctrl %d/%d", d1, d2, c1, c2)
	}
}
