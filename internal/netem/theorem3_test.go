package netem

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestTheorem3NotificationOrderIndependence is the property test for
// Theorem 3 at the emulation layer: whatever adversarial order the
// notification flood delivers failures to each router — reordered across
// routers, duplicated, partially delayed so some routers reconfigure
// long after others — all views must converge to the same fingerprint.
func TestTheorem3NotificationOrderIndependence(t *testing.T) {
	plan := planForAbilene(t, 150)
	g := plan.G
	fails := []graph.LinkID{0, 8}
	var ids []graph.LinkID
	for _, e := range fails {
		ids = append(ids, e)
		if rev := g.Link(e).Reverse; rev >= 0 {
			ids = append(ids, rev)
		}
	}

	// Reference: every router notified in canonical order.
	ref := NewR3Distributed(plan)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range ids {
			ref.OnNotification(graph.NodeID(v), e)
		}
	}
	want := ref.ViewFingerprint(0)
	for v := 1; v < g.NumNodes(); v++ {
		if got := ref.ViewFingerprint(graph.NodeID(v)); got != want {
			t.Fatalf("reference views disagree: router %d", v)
		}
	}

	const permutations = 24
	for seed := int64(0); seed < permutations; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fw := NewR3Distributed(plan)
		// Build one adversarial delivery schedule: for each router an
		// independent permutation of the failure set with 1–3 duplicate
		// deliveries of each notification, then interleave the routers'
		// schedules randomly (partial delay: a router may sit on a stale
		// view while every other router finishes reconfiguring).
		type delivery struct {
			u graph.NodeID
			e graph.LinkID
		}
		var schedule []delivery
		for v := 0; v < g.NumNodes(); v++ {
			perm := rng.Perm(len(ids))
			for _, pi := range perm {
				for c := 1 + rng.Intn(3); c > 0; c-- {
					schedule = append(schedule, delivery{graph.NodeID(v), ids[pi]})
				}
			}
		}
		rng.Shuffle(len(schedule), func(i, j int) {
			schedule[i], schedule[j] = schedule[j], schedule[i]
		})
		for _, d := range schedule {
			fw.OnNotification(d.u, d.e)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if got := fw.ViewFingerprint(graph.NodeID(v)); got != want {
				t.Fatalf("permutation seed %d: router %d fingerprint %#x != reference %#x (order dependence!)",
					seed, v, got, want)
			}
		}
	}
}

// TestTheorem3UnderEmulatedChaos runs the same property end-to-end: the
// chaos layer reorders, duplicates and delays the actual notification
// flood, and the emulator's view-divergence invariant plus a final
// fingerprint sweep certify order independence.
func TestTheorem3UnderEmulatedChaos(t *testing.T) {
	plan := planForAbilene(t, 150)
	g := plan.G
	for seed := int64(1); seed <= 8; seed++ {
		fw := NewR3Distributed(plan)
		em := New(Config{G: g, Forwarder: fw, Seed: 1, Chaos: ChaosConfig{
			Enabled: true, Seed: seed,
			CtrlDrop: 0.2, CtrlDup: 0.3, CtrlJitter: 0.030, DetectJitter: 0.020,
		}})
		em.FailAt(0.2, 0)
		em.FailAt(0.3, 8)
		em.Run(2.0)
		if !em.FloodConverged() {
			t.Fatalf("seed %d: not converged", seed)
		}
		want := fw.ViewFingerprint(0)
		for v := 1; v < g.NumNodes(); v++ {
			if got := fw.ViewFingerprint(graph.NodeID(v)); got != want {
				t.Fatalf("seed %d: router %d diverged under chaos flood", seed, v)
			}
		}
		if n := len(em.Violations()); n != 0 {
			t.Fatalf("seed %d: violations %v", seed, em.Violations())
		}
	}
}
