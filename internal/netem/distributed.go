package netem

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
)

// R3DistributedForwarder is the fully distributed variant of §4.3: every
// router keeps its own copy of the protection routing p and applies R3's
// rescaling independently as failure notifications reach it through the
// flood. Between a failure and the flood's arrival at a given router,
// that router still forwards on its stale view; once all routers have
// heard of all failures their states are identical — Theorem 3's order
// independence in action (verified by TestDistributedConvergence and the
// emulator's always-on view-divergence invariant).
type R3DistributedForwarder struct {
	// views[u] is router u's private control plane.
	views []*mplsff.Network
}

// NewR3Distributed builds per-router views from one plan.
func NewR3Distributed(plan *core.Plan) *R3DistributedForwarder {
	views := make([]*mplsff.Network, plan.G.NumNodes())
	for v := range views {
		views[v] = mplsff.Build(plan)
	}
	return &R3DistributedForwarder{views: views}
}

// Name implements Forwarder.
func (f *R3DistributedForwarder) Name() string { return "MPLS-ff+R3 (distributed)" }

// ApplyFailure implements Forwarder; unused in flood mode (OnNotification
// carries the per-router knowledge), but kept total: it informs every
// router at once.
func (f *R3DistributedForwarder) ApplyFailure(e graph.LinkID) {
	for v := range f.views {
		_ = f.views[v].OnFailure(e)
	}
}

// OnNotification implements FloodAware.
func (f *R3DistributedForwarder) OnNotification(u graph.NodeID, e graph.LinkID) {
	_ = f.views[u].OnFailure(e)
}

// OnRound implements StageAware: a staged-reconfiguration round applies
// to router u's private view with strict sequencing — duplicated or
// reordered deliveries leave the view identical to one in-order delivery
// (mplsff.ApplyRound buffers future rounds and ignores applied ones).
func (f *R3DistributedForwarder) OnRound(u graph.NodeID, seq int, d *mplsff.Delta) {
	f.views[u].ApplyRound(seq, d)
}

// View exposes router u's control plane (tests verify convergence).
func (f *R3DistributedForwarder) View(u graph.NodeID) *mplsff.Network { return f.views[u] }

// ViewFingerprint implements ViewInspector for the always-on convergence
// invariant: canonical digest of router u's forwarding state.
func (f *R3DistributedForwarder) ViewFingerprint(u graph.NodeID) uint64 {
	return f.views[u].Fingerprint()
}

// ViewKnowsFailed implements ViewInspector.
func (f *R3DistributedForwarder) ViewKnowsFailed(u graph.NodeID, e graph.LinkID) bool {
	return f.views[u].KnowsFailed(e)
}

// Forward implements Forwarder, consulting only router u's own view.
func (f *R3DistributedForwarder) Forward(u graph.NodeID, pk *Packet) (graph.LinkID, bool) {
	return mplsForward(f.views[u], u, pk)
}
