package netem

import (
	"testing"

	"repro/internal/graph"
)

// TestOverlappingFailuresDuringFlood fails a second link while the first
// failure's notification flood is still propagating: routers learn the
// two failures in different orders, and Theorem 3's order independence
// must still converge every view to the same state.
func TestOverlappingFailuresDuringFlood(t *testing.T) {
	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 4})
	addTM(em, d, 3.0)
	// Two failures 12 ms apart: detection of the first happens at
	// t+10 ms, so its flood overlaps the second failure.
	em.FailAt(1.000, 0)
	em.FailAt(1.012, 12)
	em.Run(3.0)

	ref := fw.View(0)
	if ref.Failed().Len() != 4 {
		t.Fatalf("router 0 knows %v", ref.Failed())
	}
	for v := 1; v < g.NumNodes(); v++ {
		view := fw.View(graph.NodeID(v))
		if !view.Failed().Equal(ref.Failed()) {
			t.Fatalf("router %d failure set %v != %v", v, view.Failed(), ref.Failed())
		}
		if !view.State().ProtEquals(ref.State(), 1e-9) {
			t.Fatalf("router %d state diverged despite order independence", v)
		}
	}
	// Traffic still flows: the final phase delivers the vast majority.
	last := em.Phases()[len(em.Phases())-1]
	if float64(totalDelivered(last)) < 0.9*float64(totalOffered(last)) {
		t.Fatalf("final phase delivered %d of %d", totalDelivered(last), totalOffered(last))
	}
}

// TestStackedLabelsUnderOverlap drives a packet path through two
// overlapping failures whose detours nest, exercising label stacking
// depth > 1 end to end.
func TestStackedLabelsUnderOverlap(t *testing.T) {
	g, d, _ := abileneSetup(t, 150)
	plan := planForAbilene(t, 150)
	fw := NewR3Distributed(plan)
	em := New(Config{G: g, Forwarder: fw, Seed: 5})
	addTM(em, d, 4.0)
	// Fail two links that share detour geography (Sunnyvale-Denver and
	// Denver-KansasCity): detours around one often cross the other.
	s, _ := g.NodeByName("Sunnyvale")
	dn, _ := g.NodeByName("Denver")
	kc, _ := g.NodeByName("KansasCity")
	sd, _ := g.FindLink(s, dn)
	dk, _ := g.FindLink(dn, kc)
	em.FailAt(1.0, sd)
	em.FailAt(1.5, dk)
	em.Run(4.0)

	last := em.Phases()[len(em.Phases())-1]
	loss := float64(totalDrops(last)) / float64(totalOffered(last))
	if loss > 0.02 {
		t.Fatalf("steady-state loss %v after overlapping failures", loss)
	}
	for _, id := range []graph.LinkID{sd, dk} {
		if last.LinkBytes[id] != 0 {
			t.Fatalf("failed link %d carried bytes", id)
		}
		rev := g.Link(id).Reverse
		if last.LinkBytes[rev] != 0 {
			t.Fatalf("failed link %d (reverse) carried bytes", rev)
		}
	}
}
