package spf

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randCost fills a cost row with the planner's key profile: a shared
// 1e-12 floor wherever gradients underflow, distinct small values
// elsewhere.
func randCost(rng *rand.Rand, cost []float64) {
	for e := range cost {
		if rng.Intn(3) == 0 {
			cost[e] = 1e-12
		} else {
			cost[e] = 1e-12 + rng.Float64()
		}
	}
}

// TestDynTreeMatchesFlat drives a DynTree through random sparse
// weight-perturbation sequences and demands bitwise-identical (Dist, Next)
// against a fresh flat Dijkstra after every step — the differential
// property the planner's incremental mode rides on. Both full-rebuild
// kernels (heap and delta-stepping) are exercised, as are the cutover
// paths (tiny cutover forces flat rebuilds; huge batches force the
// cone-size bail).
func TestDynTreeMatchesFlat(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		g := kernelRandGraph(t, 50+seed, 14+int(seed)*4, 24)
		c := g.CSR()
		nL := g.NumLinks()
		cost := make([]float64, nL)
		randCost(rng, cost)

		for _, useDelta := range []bool{false, true} {
			var tree DynTree
			tree.Reset(c, graph.NodeID(int(seed)%g.NumNodes()), useDelta)
			tree.Full(cost)
			work := append([]float64(nil), cost...)
			var ref Scratch
			for step := 0; step < 40; step++ {
				// Perturb a sparse batch: mostly few links, occasionally
				// a huge batch to cross the dirty-fraction cutover.
				batch := 1 + rng.Intn(4)
				if step%13 == 12 {
					batch = nL/2 + rng.Intn(nL/2)
				}
				ids := make([]int32, 0, batch)
				vals := make([]float64, 0, batch)
				for k := 0; k < batch; k++ {
					id := int32(rng.Intn(nL))
					var nv float64
					switch rng.Intn(4) {
					case 0:
						nv = 1e-12 // collapse to the floor
					case 1:
						nv = work[id] // no-op entry
					default:
						nv = 1e-12 + rng.Float64()
					}
					ids = append(ids, id)
					vals = append(vals, nv)
					work[id] = nv
				}
				cutover := 0.25
				if step%7 == 6 {
					cutover = 0 // force the flat-rebuild path
				}
				tree.Update(ids, vals, cutover)
				SPFTo(c, tree.dst, work, nil, &ref)
				for i := range ref.Dist {
					if tree.Dist()[i] != ref.Dist[i] {
						t.Fatalf("seed %d delta=%v step %d: dist[%d] = %v, flat %v",
							seed, useDelta, step, i, tree.Dist()[i], ref.Dist[i])
					}
					if tree.Next()[i] != ref.Next[i] {
						t.Fatalf("seed %d delta=%v step %d: next[%d] = %d, flat %d",
							seed, useDelta, step, i, tree.Next()[i], ref.Next[i])
					}
				}
			}
		}
	}
}

// tiedCost fills a cost row with the regime that actually bites the
// planner: large quantized values (sums collide, so exact float ties are
// everywhere) over a 1e-12 floor that large distances absorb
// (1e6 + 1e-12 == 1e6 in float64). This produces dense plateau
// structure and lets a single decrease create a brand-new exact tie at a
// node whose own distance never moves — the two repair paths a
// moderate-magnitude random row never exercises.
func tiedCost(rng *rand.Rand, cost []float64) {
	for e := range cost {
		v := rng.Intn(6) - 2 // half the links sit on the floor
		if v < 0 {
			v = 0
		}
		cost[e] = float64(v)*1e6 + 1e-12
	}
}

// TestDynTreeTiedCosts is the regression for two repair bugs the smooth
// random differential missed: (1) a node improved only by a
// decrease-offer seed (never re-touched by the relaxation loop) must
// still have its in-neighbors' next links re-derived, because the
// improvement can create a new canonical tie there; (2) plateau
// resolution is a global multi-pass computation, so per-node next repair
// is unsound whenever plateaus exist anywhere in the tree.
func TestDynTreeTiedCosts(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(5100 + seed))
		g := kernelRandGraph(t, 60+seed, 16+int(seed)*3, 22)
		c := g.CSR()
		nL := g.NumLinks()
		cost := make([]float64, nL)
		tiedCost(rng, cost)

		for _, useDelta := range []bool{false, true} {
			var tree DynTree
			tree.Reset(c, graph.NodeID(int(seed)%g.NumNodes()), useDelta)
			tree.Full(cost)
			work := append([]float64(nil), cost...)
			var ref Scratch
			for step := 0; step < 60; step++ {
				batch := 1 + rng.Intn(3)
				ids := make([]int32, 0, batch)
				vals := make([]float64, 0, batch)
				for k := 0; k < batch; k++ {
					id := int32(rng.Intn(nL))
					v := rng.Intn(6) - 2
					if v < 0 {
						v = 0
					}
					nv := float64(v)*1e6 + 1e-12
					ids = append(ids, id)
					vals = append(vals, nv)
					work[id] = nv
				}
				tree.Update(ids, vals, 0.5)
				SPFTo(c, tree.dst, work, nil, &ref)
				for i := range ref.Dist {
					if tree.Dist()[i] != ref.Dist[i] {
						t.Fatalf("seed %d delta=%v step %d: dist[%d] = %v, flat %v",
							seed, useDelta, step, i, tree.Dist()[i], ref.Dist[i])
					}
					if tree.Next()[i] != ref.Next[i] {
						t.Fatalf("seed %d delta=%v step %d: next[%d] = %d, flat %d",
							seed, useDelta, step, i, tree.Next()[i], ref.Next[i])
					}
				}
			}
		}
	}
}

// TestDynTreeUpdateKinds pins the Update return contract: no-op batches
// report UpdateNone, sparse batches repair, and batches past the cutover
// (or against a fresh tree) rebuild.
func TestDynTreeUpdateKinds(t *testing.T) {
	g := kernelRandGraph(t, 3, 16, 20)
	c := g.CSR()
	nL := g.NumLinks()
	cost := make([]float64, nL)
	rng := rand.New(rand.NewSource(9))
	randCost(rng, cost)

	var tree DynTree
	tree.Reset(c, 0, false)
	if kind, _ := tree.Update([]int32{0}, []float64{cost[0]}, 0.25); kind != UpdateRebuilt {
		t.Fatalf("fresh tree Update = %v, want UpdateRebuilt", kind)
	}
	tree.Full(cost)
	if kind, _ := tree.Update([]int32{1}, []float64{cost[1]}, 0.25); kind != UpdateNone {
		t.Fatalf("no-op Update = %v, want UpdateNone", kind)
	}
	if kind, frac := tree.Update([]int32{1}, []float64{cost[1] * 2}, 0.25); kind != UpdateRepaired || frac <= 0 {
		t.Fatalf("sparse Update = %v frac %v, want UpdateRepaired with frac > 0", kind, frac)
	}
	if kind, _ := tree.Update([]int32{2}, []float64{cost[2] * 2}, 0); kind != UpdateRebuilt {
		t.Fatalf("zero-cutover Update = %v, want UpdateRebuilt", kind)
	}
}

// TestDeltaKernelMatchesFlat compares the standalone delta-stepping kernel
// against the heap kernel bitwise, down-sets included.
func TestDeltaKernelMatchesFlat(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		g := kernelRandGraph(t, 90+seed, 15+int(seed)*5, 25)
		c := g.CSR()
		nL := g.NumLinks()
		cost := make([]float64, nL)
		var flat, dlt Scratch
		var ds DeltaScratch
		for trial := 0; trial < 4; trial++ {
			randCost(rng, cost)
			var down *graph.LinkSet
			if trial%2 == 1 {
				var d graph.LinkSet
				for e := 0; e < nL; e++ {
					if rng.Intn(6) == 0 {
						d.Add(graph.LinkID(e))
					}
				}
				down = &d
			}
			for dst := 0; dst < g.NumNodes(); dst += 2 {
				SPFTo(c, graph.NodeID(dst), cost, down, &flat)
				SPFToDelta(c, graph.NodeID(dst), cost, down, &dlt, &ds)
				for i := range flat.Dist {
					if flat.Dist[i] != dlt.Dist[i] {
						t.Fatalf("seed %d dst %d: delta dist[%d] = %v, flat %v",
							seed, dst, i, dlt.Dist[i], flat.Dist[i])
					}
					if flat.Next[i] != dlt.Next[i] {
						t.Fatalf("seed %d dst %d: delta next[%d] = %d, flat %d",
							seed, dst, i, dlt.Next[i], flat.Next[i])
					}
				}
			}
		}
	}
}

// TestModeParseRoundTrip pins flag parsing and Auto resolution.
func TestModeParseRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeAuto, ModeFlat, ModeIncremental, ModeDelta} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
	if m, _ := ParseMode(""); m != ModeAuto {
		t.Fatalf("empty mode = %v, want auto", m)
	}
	if ModeAuto.Resolve(100) != ModeIncremental {
		t.Fatal("Auto on a small graph should resolve to incremental")
	}
	if ModeAuto.Resolve(1000) != ModeDelta {
		t.Fatal("Auto on a 1000-node graph should resolve to delta")
	}
	if ModeFlat.Resolve(1000) != ModeFlat {
		t.Fatal("concrete modes must pass through Resolve")
	}
	_ = fmt.Sprintf("%v", ModeDelta)
}
