// Package spf implements shortest-path routing: Dijkstra, OSPF-style ECMP
// routing in flow representation, inverse-capacity weights, and a
// Fortz–Thorup-style local-search IGP weight optimizer.
package spf

import (
	"math"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Infinity marks unreachable nodes in distance vectors.
var Infinity = math.Inf(1)

// Cost returns a link cost function; nil means the link's IGP weight.
type Cost func(graph.LinkID) float64

// flatten materializes a cost closure into a per-link array and an alive
// predicate into a down-set, the kernel's flat inputs. Closures passed
// here must be pure (every closure in this repository is), so evaluating
// them once per link instead of once per edge visit changes nothing.
func flatten(g *graph.Graph, alive func(graph.LinkID) bool, cost Cost) ([]float64, *graph.LinkSet) {
	nL := g.NumLinks()
	costs := make([]float64, nL)
	for id := 0; id < nL; id++ {
		costs[id] = cost(graph.LinkID(id))
	}
	if alive == nil {
		return costs, nil
	}
	var down graph.LinkSet
	for id := 0; id < nL; id++ {
		if !alive(graph.LinkID(id)) {
			down.Add(graph.LinkID(id))
		}
	}
	return costs, &down
}

// WeightCost returns the IGP-weight cost function for g.
func WeightCost(g *graph.Graph) Cost {
	return func(id graph.LinkID) float64 { return g.Link(id).Weight }
}

// DelayCost returns a propagation-delay cost function for g.
func DelayCost(g *graph.Graph) Cost {
	return func(id graph.LinkID) float64 { return g.Link(id).Delay }
}

// Dijkstra computes shortest distances from src over alive links (nil
// alive = all links). Unreachable nodes get Infinity. cost must be
// nonnegative.
func Dijkstra(g *graph.Graph, src graph.NodeID, alive func(graph.LinkID) bool, cost Cost) []float64 {
	costs, down := flatten(g, alive, cost)
	var s Scratch
	SPFFrom(g.CSR(), src, costs, down, &s)
	return s.Dist
}

// DijkstraTo computes shortest distances TO dst (over reversed links).
func DijkstraTo(g *graph.Graph, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost) []float64 {
	dist, _ := DijkstraToWithNext(g, dst, alive, cost)
	return dist
}

// DijkstraToWithNext computes shortest distances to dst and, for every
// node, the first link of a shortest path toward dst (-1 when unreachable
// or at dst itself). Following the next pointers always yields a simple
// path, which makes it the safe way to extract paths.
func DijkstraToWithNext(g *graph.Graph, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost) ([]float64, []graph.LinkID) {
	costs, down := flatten(g, alive, cost)
	var s Scratch
	SPFTo(g.CSR(), dst, costs, down, &s)
	next := make([]graph.LinkID, len(s.Next))
	for i, id := range s.Next {
		next[i] = graph.LinkID(id)
	}
	return s.Dist, next
}

// PathVia follows next pointers from DijkstraToWithNext to build the link
// list from src to the tree's destination, or nil if unreachable.
func PathVia(g *graph.Graph, src graph.NodeID, next []graph.LinkID) []graph.LinkID {
	if next[src] < 0 {
		return nil
	}
	var path []graph.LinkID
	u := src
	for next[u] >= 0 {
		id := next[u]
		path = append(path, id)
		u = g.Link(id).Dst
	}
	return path
}

// ShortestPath returns the links of one shortest path from src to dst, or
// nil if dst is unreachable.
func ShortestPath(g *graph.Graph, src, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost) []graph.LinkID {
	distTo := DijkstraTo(g, dst, alive, cost)
	if math.IsInf(distTo[src], 1) {
		return nil
	}
	const eps = 1e-9
	var links []graph.LinkID
	u := src
	for u != dst {
		found := false
		for _, id := range g.Out(u) {
			if alive != nil && !alive(id) {
				continue
			}
			v := g.Link(id).Dst
			if math.Abs(cost(id)+distTo[v]-distTo[u]) < eps*(1+distTo[u]) {
				links = append(links, id)
				u = v
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return links
}

// ecmpFractions computes, for destination dst, the ECMP split fractions of
// one unit injected at src: equal splitting over all shortest-path
// next-hops at every node. Returns nil if dst is unreachable from src.
func ecmpFractions(g *graph.Graph, src, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost, distTo []float64) []float64 {
	if math.IsInf(distTo[src], 1) {
		return nil
	}
	const eps = 1e-9
	frac := make([]float64, g.NumLinks())
	inflow := make([]float64, g.NumNodes())
	inflow[src] = 1

	// Process nodes in decreasing distance-to-dst order: shortest-path DAG
	// edges always go from larger to smaller distTo.
	order := nodesByDistDesc(distTo)
	for _, u := range order {
		f := inflow[u]
		if f <= 0 || u == dst {
			continue
		}
		// Find ECMP next hops.
		var hops []graph.LinkID
		for _, id := range g.Out(u) {
			if alive != nil && !alive(id) {
				continue
			}
			v := g.Link(id).Dst
			if math.IsInf(distTo[v], 1) {
				continue
			}
			if math.Abs(cost(id)+distTo[v]-distTo[u]) < eps*(1+distTo[u]) {
				hops = append(hops, id)
			}
		}
		if len(hops) == 0 {
			// Should not happen when distTo[u] is finite.
			continue
		}
		share := f / float64(len(hops))
		for _, id := range hops {
			frac[id] += share
			inflow[g.Link(id).Dst] += share
		}
	}
	return frac
}

func nodesByDistDesc(dist []float64) []graph.NodeID {
	order := make([]graph.NodeID, 0, len(dist))
	for n := range dist {
		if !math.IsInf(dist[n], 1) {
			order = append(order, graph.NodeID(n))
		}
	}
	// Insertion sort is fine at these sizes; keeps determinism without an
	// extra closure allocation per call... but use sort for clarity.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && dist[order[j-1]] < dist[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return order
}

// ECMPFlow computes OSPF ECMP routing in flow representation for the given
// commodities over alive links. Commodities whose destination is
// unreachable get an all-zero fraction row (their traffic is lost, as under
// a network partition).
func ECMPFlow(g *graph.Graph, comms []routing.Commodity, alive func(graph.LinkID) bool, cost Cost) *routing.Flow {
	var sc ECMPScratch
	return ECMPFlowScratch(g, comms, alive, cost, &sc)
}

// ECMPScratch holds ECMPFlowScratch's reusable state: the per-destination
// distance rows (a flat table indexed by node, invalidated by generation
// stamp on every invocation — never by reallocation, so repeated calls
// hold live memory bounded by one row per destination ever routed to),
// the flattened cost/liveness inputs, and the SPF kernel scratch. The
// zero value is ready to use; a scratch must not be shared between
// concurrent calls.
type ECMPScratch struct {
	spf    Scratch
	costs  []float64
	down   graph.LinkSet
	distTo [][]float64 // row per destination node, lazily allocated, reused
	stamp  []int       // distTo[d] is valid iff stamp[d] == gen
	gen    int
}

// ECMPFlowScratch is ECMPFlow with caller-owned scratch: repeated calls
// (the weight optimizer probes hundreds of candidate weight settings)
// reuse the per-destination distance table and kernel buffers instead of
// growing a fresh map per call.
func ECMPFlowScratch(g *graph.Graph, comms []routing.Commodity, alive func(graph.LinkID) bool, cost Cost, sc *ECMPScratch) *routing.Flow {
	if cost == nil {
		cost = WeightCost(g)
	}
	f := routing.NewFlow(g, comms)
	csr := g.CSR()
	nN, nL := g.NumNodes(), g.NumLinks()
	if cap(sc.costs) < nL {
		sc.costs = make([]float64, nL)
	}
	sc.costs = sc.costs[:nL]
	for id := 0; id < nL; id++ {
		sc.costs[id] = cost(graph.LinkID(id))
	}
	var down *graph.LinkSet
	if alive != nil {
		sc.down.Clear()
		for id := 0; id < nL; id++ {
			if !alive(graph.LinkID(id)) {
				sc.down.Add(graph.LinkID(id))
			}
		}
		down = &sc.down
	}
	if len(sc.distTo) < nN {
		sc.distTo = append(sc.distTo, make([][]float64, nN-len(sc.distTo))...)
		sc.stamp = append(sc.stamp, make([]int, nN-len(sc.stamp))...)
	}
	sc.gen++
	for k, c := range comms {
		row := sc.distTo[c.Dst]
		if sc.stamp[c.Dst] != sc.gen {
			SPFTo(csr, c.Dst, sc.costs, down, &sc.spf)
			if row == nil {
				row = make([]float64, nN)
				sc.distTo[c.Dst] = row
			}
			copy(row, sc.spf.Dist)
			sc.stamp[c.Dst] = sc.gen
		}
		if fr := ecmpFractions(g, c.Src, c.Dst, alive, cost, row); fr != nil {
			f.Frac[k] = fr
		}
	}
	return f
}

// InvCapWeights sets every link's weight to refCapacity/capacity (Cisco's
// classic inverse-capacity default).
func InvCapWeights(g *graph.Graph, refCapacity float64) {
	for _, l := range g.Links() {
		g.SetWeight(l.ID, refCapacity/l.Capacity)
	}
}

// UnitWeights sets every link's weight to 1 (hop count routing).
func UnitWeights(g *graph.Graph) {
	for _, l := range g.Links() {
		g.SetWeight(l.ID, 1)
	}
}
