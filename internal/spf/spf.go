// Package spf implements shortest-path routing: Dijkstra, OSPF-style ECMP
// routing in flow representation, inverse-capacity weights, and a
// Fortz–Thorup-style local-search IGP weight optimizer.
package spf

import (
	"container/heap"
	"math"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Infinity marks unreachable nodes in distance vectors.
var Infinity = math.Inf(1)

type pqItem struct {
	node graph.NodeID
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Cost returns a link cost function; nil means the link's IGP weight.
type Cost func(graph.LinkID) float64

// WeightCost returns the IGP-weight cost function for g.
func WeightCost(g *graph.Graph) Cost {
	return func(id graph.LinkID) float64 { return g.Link(id).Weight }
}

// DelayCost returns a propagation-delay cost function for g.
func DelayCost(g *graph.Graph) Cost {
	return func(id graph.LinkID) float64 { return g.Link(id).Delay }
}

// Dijkstra computes shortest distances from src over alive links (nil
// alive = all links). Unreachable nodes get Infinity. cost must be
// nonnegative.
func Dijkstra(g *graph.Graph, src graph.NodeID, alive func(graph.LinkID) bool, cost Cost) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, id := range g.Out(it.node) {
			if alive != nil && !alive(id) {
				continue
			}
			v := g.Link(id).Dst
			nd := it.dist + cost(id)
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, pqItem{v, nd})
			}
		}
	}
	return dist
}

// DijkstraTo computes shortest distances TO dst (over reversed links).
func DijkstraTo(g *graph.Graph, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost) []float64 {
	dist, _ := DijkstraToWithNext(g, dst, alive, cost)
	return dist
}

// DijkstraToWithNext computes shortest distances to dst and, for every
// node, the first link of a shortest path toward dst (-1 when unreachable
// or at dst itself). Following the next pointers always yields a simple
// path, which makes it the safe way to extract paths.
func DijkstraToWithNext(g *graph.Graph, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost) ([]float64, []graph.LinkID) {
	dist := make([]float64, g.NumNodes())
	next := make([]graph.LinkID, g.NumNodes())
	for i := range dist {
		dist[i] = Infinity
		next[i] = -1
	}
	dist[dst] = 0
	h := &pq{{dst, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, id := range g.In(it.node) {
			if alive != nil && !alive(id) {
				continue
			}
			u := g.Link(id).Src
			nd := it.dist + cost(id)
			if nd < dist[u] {
				dist[u] = nd
				next[u] = id
				heap.Push(h, pqItem{u, nd})
			}
		}
	}
	return dist, next
}

// PathVia follows next pointers from DijkstraToWithNext to build the link
// list from src to the tree's destination, or nil if unreachable.
func PathVia(g *graph.Graph, src graph.NodeID, next []graph.LinkID) []graph.LinkID {
	if next[src] < 0 {
		return nil
	}
	var path []graph.LinkID
	u := src
	for next[u] >= 0 {
		id := next[u]
		path = append(path, id)
		u = g.Link(id).Dst
	}
	return path
}

// ShortestPath returns the links of one shortest path from src to dst, or
// nil if dst is unreachable.
func ShortestPath(g *graph.Graph, src, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost) []graph.LinkID {
	distTo := DijkstraTo(g, dst, alive, cost)
	if math.IsInf(distTo[src], 1) {
		return nil
	}
	const eps = 1e-9
	var links []graph.LinkID
	u := src
	for u != dst {
		found := false
		for _, id := range g.Out(u) {
			if alive != nil && !alive(id) {
				continue
			}
			v := g.Link(id).Dst
			if math.Abs(cost(id)+distTo[v]-distTo[u]) < eps*(1+distTo[u]) {
				links = append(links, id)
				u = v
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return links
}

// ecmpFractions computes, for destination dst, the ECMP split fractions of
// one unit injected at src: equal splitting over all shortest-path
// next-hops at every node. Returns nil if dst is unreachable from src.
func ecmpFractions(g *graph.Graph, src, dst graph.NodeID, alive func(graph.LinkID) bool, cost Cost, distTo []float64) []float64 {
	if math.IsInf(distTo[src], 1) {
		return nil
	}
	const eps = 1e-9
	frac := make([]float64, g.NumLinks())
	inflow := make([]float64, g.NumNodes())
	inflow[src] = 1

	// Process nodes in decreasing distance-to-dst order: shortest-path DAG
	// edges always go from larger to smaller distTo.
	order := nodesByDistDesc(distTo)
	for _, u := range order {
		f := inflow[u]
		if f <= 0 || u == dst {
			continue
		}
		// Find ECMP next hops.
		var hops []graph.LinkID
		for _, id := range g.Out(u) {
			if alive != nil && !alive(id) {
				continue
			}
			v := g.Link(id).Dst
			if math.IsInf(distTo[v], 1) {
				continue
			}
			if math.Abs(cost(id)+distTo[v]-distTo[u]) < eps*(1+distTo[u]) {
				hops = append(hops, id)
			}
		}
		if len(hops) == 0 {
			// Should not happen when distTo[u] is finite.
			continue
		}
		share := f / float64(len(hops))
		for _, id := range hops {
			frac[id] += share
			inflow[g.Link(id).Dst] += share
		}
	}
	return frac
}

func nodesByDistDesc(dist []float64) []graph.NodeID {
	order := make([]graph.NodeID, 0, len(dist))
	for n := range dist {
		if !math.IsInf(dist[n], 1) {
			order = append(order, graph.NodeID(n))
		}
	}
	// Insertion sort is fine at these sizes; keeps determinism without an
	// extra closure allocation per call... but use sort for clarity.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && dist[order[j-1]] < dist[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return order
}

// ECMPFlow computes OSPF ECMP routing in flow representation for the given
// commodities over alive links. Commodities whose destination is
// unreachable get an all-zero fraction row (their traffic is lost, as under
// a network partition).
func ECMPFlow(g *graph.Graph, comms []routing.Commodity, alive func(graph.LinkID) bool, cost Cost) *routing.Flow {
	if cost == nil {
		cost = WeightCost(g)
	}
	f := routing.NewFlow(g, comms)
	// Group by destination so one reverse Dijkstra serves many sources.
	distCache := make(map[graph.NodeID][]float64)
	for k, c := range comms {
		distTo, ok := distCache[c.Dst]
		if !ok {
			distTo = DijkstraTo(g, c.Dst, alive, cost)
			distCache[c.Dst] = distTo
		}
		if fr := ecmpFractions(g, c.Src, c.Dst, alive, cost, distTo); fr != nil {
			f.Frac[k] = fr
		}
	}
	return f
}

// InvCapWeights sets every link's weight to refCapacity/capacity (Cisco's
// classic inverse-capacity default).
func InvCapWeights(g *graph.Graph, refCapacity float64) {
	for _, l := range g.Links() {
		g.SetWeight(l.ID, refCapacity/l.Capacity)
	}
}

// UnitWeights sets every link's weight to 1 (hop count routing).
func UnitWeights(g *graph.Graph) {
	for _, l := range g.Links() {
		g.SetWeight(l.ID, 1)
	}
}
