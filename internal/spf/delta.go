package spf

import "repro/internal/graph"

// Delta-stepping bucket kernel. On 1000-node-class generated topologies
// the binary heap's pop cost dominates SPF; a monotone bucket queue with
// width Δ trades the log factor for O(1) pushes and sequential bucket
// scans. The kernel is label-correcting rather than settle-once — a node
// may be relaxed at a stale label and corrected later — but the final
// distance vector is the same unique fixpoint the heap kernel computes
// (each label is one float64 add anchored at dst, improvements are strict,
// and relaxation runs until no label improves), and Next is derived by the
// same canonicalNextInto post-pass. (Dist, Next) is therefore bitwise
// identical to SPFTo for every input, regardless of Δ or pop order; the
// differential tests in dynamic_test.go pin that.

// DeltaScratch holds the bucket queue between calls so a warm scratch
// allocates nothing. It must not be shared between concurrent calls.
type DeltaScratch struct {
	buckets [][]int32
}

// SPFToDelta computes the same (Dist, Next) as SPFTo — bit for bit — using
// a delta-stepping bucket queue instead of a binary heap. Δ is chosen from
// the cost distribution (mean positive cost, floored so the bucket index
// range stays O(N)); the choice affects only wall-clock, never the result.
func SPFToDelta(c *graph.CSR, dst graph.NodeID, cost []float64, down *graph.LinkSet, s *Scratch, ds *DeltaScratch) {
	s.reset(c.N)
	dist := s.Dist
	dist[dst] = 0

	var sum, maxC float64
	for _, cv := range cost {
		sum += cv
		if cv > maxC {
			maxC = cv
		}
	}
	delta := sum / float64(len(cost))
	// dist ≤ (N-1)·maxC, so flooring Δ at maxC/4 bounds the bucket index
	// by ~4N even when one huge cost dwarfs the mean.
	if f := maxC / 4; delta < f {
		delta = f
	}
	if !(delta > 0) { // zero costs or an empty link set (NaN guard)
		delta = 1
	}

	for i := range ds.buckets {
		ds.buckets[i] = ds.buckets[i][:0]
	}
	cur := 0
	push := func(d float64, u int32) {
		bi := int(d / delta)
		if bi < cur {
			// A fresh label always lands at or past the bucket being
			// drained; clamp against float rounding at the boundary.
			bi = cur
		}
		for bi >= len(ds.buckets) {
			ds.buckets = append(ds.buckets, nil)
		}
		ds.buckets[bi] = append(ds.buckets[bi], u)
	}
	push(0, int32(dst))
	for cur = 0; cur < len(ds.buckets); cur++ {
		// Re-read each iteration: a light-edge relaxation can append to
		// the bucket currently being drained.
		for len(ds.buckets[cur]) > 0 {
			b := ds.buckets[cur]
			u := b[len(b)-1]
			ds.buckets[cur] = b[:len(b)-1]
			du := dist[u]
			for a, bb := c.InHead[u], c.InHead[u+1]; a < bb; a++ {
				id := c.InLinks[a]
				if down != nil && down.Contains(graph.LinkID(id)) {
					continue
				}
				w := c.Src[id]
				nd := du + cost[id]
				if nd < dist[w] {
					dist[w] = nd
					push(nd, w)
				}
			}
		}
	}
	s.Plateaus = canonicalNextInto(c, dst, cost, down, dist, s.Next)
}
