package spf

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topo"
)

// kernelRandGraph builds a random duplex ring-plus-chords topology with
// occasional equal-cost links, so shortest-path ties (the case the
// bit-identity contract is about) actually occur.
func kernelRandGraph(t testing.TB, seed int64, nodes, extra int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("kernel-rand")
	ids := make([]graph.NodeID, nodes)
	for i := range ids {
		ids[i] = g.AddNode(fmt.Sprintf("k%d", i))
	}
	weight := func() float64 {
		// Small integer weights force plenty of equal-distance nodes.
		return float64(1 + rng.Intn(4))
	}
	for i := 0; i < nodes; i++ {
		g.AddDuplex(ids[i], ids[(i+1)%nodes], 100, rng.Float64(), weight())
	}
	for k := 0; k < extra; k++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		g.AddDuplex(ids[a], ids[b], 100, rng.Float64(), weight())
	}
	return g
}

// refItem / refPQ reimplement the closure-era priority queue on
// container/heap. Distances are a unique fixpoint, so the reference must
// agree with the kernel bit for bit on Dist; Next is checked separately
// against the canonical-next specification (a pure function of Dist).
type refItem struct {
	dist float64
	node int32
}

type refPQ []refItem

func (h refPQ) Len() int            { return len(h) }
func (h refPQ) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h refPQ) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refPQ) Push(x interface{}) { *h = append(*h, x.(refItem)) }
func (h *refPQ) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refSPFTo is an independent reverse Dijkstra using container/heap with
// lazy deletion, mirroring the pre-kernel implementation.
func refSPFTo(g *graph.Graph, dst graph.NodeID, cost []float64, down *graph.LinkSet) ([]float64, []int32) {
	n := g.NumNodes()
	dist := make([]float64, n)
	next := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
		next[i] = -1
	}
	dist[dst] = 0
	h := &refPQ{{0, int32(dst)}}
	for h.Len() > 0 {
		it := heap.Pop(h).(refItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, id := range g.In(graph.NodeID(it.node)) {
			if down != nil && down.Contains(id) {
				continue
			}
			u := g.Link(id).Src
			nd := it.dist + cost[id]
			if nd < dist[u] {
				dist[u] = nd
				next[u] = int32(id)
				heap.Push(h, refItem{nd, int32(u)})
			}
		}
	}
	return dist, next
}

// refSPFFrom is the forward counterpart of refSPFTo.
func refSPFFrom(g *graph.Graph, src graph.NodeID, cost []float64, down *graph.LinkSet) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	h := &refPQ{{0, int32(src)}}
	for h.Len() > 0 {
		it := heap.Pop(h).(refItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, id := range g.Out(graph.NodeID(it.node)) {
			if down != nil && down.Contains(id) {
				continue
			}
			v := g.Link(id).Dst
			nd := it.dist + cost[id]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, refItem{nd, int32(v)})
			}
		}
	}
	return dist
}

// checkCanonicalNext verifies a next vector against the canonical-next
// specification, independent of the kernel's implementation: every
// reachable non-destination node carries the smallest-id alive tight link
// whose head is strictly closer (or, on a plateau, an equal-distance tight
// link), and following next from any node reaches dst without cycling.
func checkCanonicalNext(t *testing.T, g *graph.Graph, dst graph.NodeID, cost []float64, down *graph.LinkSet, dist []float64, next []int32) {
	t.Helper()
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		if u == int(dst) || math.IsInf(dist[u], 1) {
			if next[u] != -1 {
				t.Fatalf("dst %d: next[%d] = %d, want -1", dst, u, next[u])
			}
			continue
		}
		id := next[u]
		if id < 0 {
			t.Fatalf("dst %d: reachable node %d has no next link", dst, u)
		}
		l := g.Link(graph.LinkID(id))
		if l.Src != graph.NodeID(u) {
			t.Fatalf("dst %d: next[%d] = %d leaves node %d", dst, u, id, l.Src)
		}
		if down != nil && down.Contains(graph.LinkID(id)) {
			t.Fatalf("dst %d: next[%d] = %d is down", dst, u, id)
		}
		if cost[id]+dist[l.Dst] != dist[u] {
			t.Fatalf("dst %d: next[%d] = %d not tight: %v + %v != %v",
				dst, u, id, cost[id], dist[l.Dst], dist[u])
		}
		if dist[l.Dst] < dist[u] {
			// Canonical minimality: no alive strictly-decreasing tight
			// link with a smaller tie key.
			for _, e := range g.Out(graph.NodeID(u)) {
				if tieKey(int32(u), int32(e)) >= tieKey(int32(u), id) {
					continue
				}
				if down != nil && down.Contains(e) {
					continue
				}
				h := g.Link(e).Dst
				if dist[h] < dist[u] && cost[e]+dist[h] == dist[u] {
					t.Fatalf("dst %d: next[%d] = %d but tight link %d with smaller tie key exists", dst, u, id, e)
				}
			}
		}
	}
	// Acyclicity: every walk terminates at dst within n hops.
	for u := 0; u < n; u++ {
		if next[u] < 0 {
			continue
		}
		at := graph.NodeID(u)
		for hops := 0; at != dst; hops++ {
			if hops > n {
				t.Fatalf("dst %d: next walk from %d cycles", dst, u)
			}
			if next[at] < 0 {
				t.Fatalf("dst %d: next walk from %d dead-ends at %d", dst, u, at)
			}
			at = g.Link(graph.LinkID(next[at])).Dst
		}
	}
}

// TestKernelMatchesHeapReference runs the kernel and the container/heap
// reference over random graphs, random costs and random down-sets, and
// demands bit-identical distances (the unique fixpoint) plus a Next vector
// satisfying the canonical-next specification. Any distance divergence
// would break the planner's byte-identical-plans guarantee.
func TestKernelMatchesHeapReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		g := kernelRandGraph(t, seed, 12+int(seed)*3, 20)
		c := g.CSR()
		nL := g.NumLinks()
		cost := make([]float64, nL)
		for trial := 0; trial < 6; trial++ {
			for e := range cost {
				// Mix of distinct values and a shared floor (the planner's
				// +1e-12 underflow floor creates exactly this key profile).
				if rng.Intn(3) == 0 {
					cost[e] = 1e-12
				} else {
					cost[e] = float64(1+rng.Intn(5)) * 0.25
				}
			}
			var down *graph.LinkSet
			if trial%2 == 1 {
				var d graph.LinkSet
				for e := 0; e < nL; e++ {
					if rng.Intn(5) == 0 {
						d.Add(graph.LinkID(e))
					}
				}
				down = &d
			}
			var s Scratch
			for dst := 0; dst < g.NumNodes(); dst += 3 {
				SPFTo(c, graph.NodeID(dst), cost, down, &s)
				wd, _ := refSPFTo(g, graph.NodeID(dst), cost, down)
				for i := range wd {
					if s.Dist[i] != wd[i] && !(math.IsInf(s.Dist[i], 1) && math.IsInf(wd[i], 1)) {
						t.Fatalf("seed %d dst %d: dist[%d] = %v, reference %v", seed, dst, i, s.Dist[i], wd[i])
					}
				}
				checkCanonicalNext(t, g, graph.NodeID(dst), cost, down, s.Dist, s.Next)
				SPFFrom(c, graph.NodeID(dst), cost, down, &s)
				fd := refSPFFrom(g, graph.NodeID(dst), cost, down)
				for i := range fd {
					if s.Dist[i] != fd[i] && !(math.IsInf(s.Dist[i], 1) && math.IsInf(fd[i], 1)) {
						t.Fatalf("seed %d src %d: forward dist[%d] = %v, reference %v", seed, dst, i, s.Dist[i], fd[i])
					}
				}
			}
		}
	}
}

// TestPathFromNextMatchesPathVia pins the flat path extractor against the
// closure-based one on the same next vector.
func TestPathFromNextMatchesPathVia(t *testing.T) {
	g := kernelRandGraph(t, 7, 20, 30)
	c := g.CSR()
	for dst := 0; dst < g.NumNodes(); dst += 2 {
		distTo, next := DijkstraToWithNext(g, graph.NodeID(dst), nil, WeightCost(g))
		var s Scratch
		costs, _ := flatten(g, nil, WeightCost(g))
		SPFTo(c, graph.NodeID(dst), costs, nil, &s)
		var buf []graph.LinkID
		for src := 0; src < g.NumNodes(); src++ {
			want := PathVia(g, graph.NodeID(src), next)
			got := PathFromNext(c, graph.NodeID(src), s.Next, buf[:0])
			if got != nil {
				buf = got
			}
			if len(want) != len(got) {
				t.Fatalf("dst %d src %d: path length %d vs %d", dst, src, len(got), len(want))
			}
			sum := 0.0
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("dst %d src %d: path[%d] = %d, want %d", dst, src, i, got[i], want[i])
				}
				sum += g.Link(got[i]).Weight
			}
			if want != nil && math.Abs(sum-distTo[src]) > 1e-9 {
				t.Fatalf("dst %d src %d: path cost %v != dist %v", dst, src, sum, distTo[src])
			}
		}
	}
}

// TestKernelZeroAllocs: with a warm Scratch, SPFTo/SPFFrom and
// PathFromNext must not touch the heap at all.
func TestKernelZeroAllocs(t *testing.T) {
	g := topo.SBC()
	c := g.CSR()
	costs, _ := flatten(g, nil, WeightCost(g))
	var down graph.LinkSet
	down.Add(0)
	var s Scratch
	SPFTo(c, 0, costs, &down, &s) // warm the buffers
	buf := make([]graph.LinkID, 0, g.NumNodes())

	if n := testing.AllocsPerRun(50, func() {
		SPFTo(c, 3, costs, &down, &s)
	}); n != 0 {
		t.Fatalf("warm SPFTo allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		SPFFrom(c, 3, costs, nil, &s)
	}); n != 0 {
		t.Fatalf("warm SPFFrom allocates %v per run, want 0", n)
	}
	SPFTo(c, 3, costs, nil, &s)
	if n := testing.AllocsPerRun(50, func() {
		buf = PathFromNext(c, 9, s.Next, buf[:0])
	}); n != 0 {
		t.Fatalf("warm PathFromNext allocates %v per run, want 0", n)
	}
}

// TestECMPScratchReusesRows pins the fix for the weight optimizer's
// unbounded per-call distance cache: across repeated ECMPFlowScratch
// invocations the per-destination rows must be the same backing arrays,
// invalidated by generation stamp rather than reallocation.
func TestECMPScratchReusesRows(t *testing.T) {
	g := topo.Abilene()
	comms := routing.ODCommodities(g.NumNodes(), func(a, b graph.NodeID) float64 {
		if a == b {
			return 0
		}
		return 1
	})
	var sc ECMPScratch
	f1 := ECMPFlowScratch(g, comms, nil, WeightCost(g), &sc)
	rows := make([]*float64, len(sc.distTo))
	for d := range sc.distTo {
		if sc.distTo[d] != nil {
			rows[d] = &sc.distTo[d][0]
		}
	}
	gen := sc.gen
	for round := 0; round < 25; round++ {
		f := ECMPFlowScratch(g, comms, nil, WeightCost(g), &sc)
		for k := range f.Frac {
			for e := range f.Frac[k] {
				if f.Frac[k][e] != f1.Frac[k][e] {
					t.Fatalf("round %d: fractions drifted at commodity %d link %d", round, k, e)
				}
			}
		}
	}
	if sc.gen != gen+25 {
		t.Fatalf("generation stamp advanced %d, want 25", sc.gen-gen)
	}
	for d := range sc.distTo {
		if rows[d] == nil {
			continue
		}
		if &sc.distTo[d][0] != rows[d] {
			t.Fatalf("distTo row %d was reallocated; the table must stay bounded", d)
		}
	}
	// The whole table is bounded by one row per destination: no growth
	// beyond the node count, ever.
	if len(sc.distTo) != g.NumNodes() || len(sc.stamp) != g.NumNodes() {
		t.Fatalf("scratch table sized %d/%d, want %d", len(sc.distTo), len(sc.stamp), g.NumNodes())
	}
}

// TestECMPScratchInvalidatesOnWeightChange: a stale distance row must not
// survive a weight change between calls (the stamp, not the contents,
// carries validity).
func TestECMPScratchInvalidatesOnWeightChange(t *testing.T) {
	g := kernelRandGraph(t, 11, 10, 12)
	comms := routing.ODCommodities(g.NumNodes(), func(a, b graph.NodeID) float64 {
		if a == b {
			return 0
		}
		return 1
	})
	var sc ECMPScratch
	ECMPFlowScratch(g, comms, nil, WeightCost(g), &sc)
	g.SetWeight(0, g.Link(0).Weight+7)
	got := ECMPFlowScratch(g, comms, nil, WeightCost(g), &sc)
	want := ECMPFlow(g, comms, nil, WeightCost(g))
	for k := range want.Frac {
		for e := range want.Frac[k] {
			if got.Frac[k][e] != want.Frac[k][e] {
				t.Fatalf("stale distances after weight change: commodity %d link %d: %v vs %v",
					k, e, got.Frac[k][e], want.Frac[k][e])
			}
		}
	}
}
