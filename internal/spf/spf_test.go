package spf

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func square(t *testing.T) (*graph.Graph, [4]graph.NodeID) {
	t.Helper()
	// a - b
	// |   |
	// c - d   (duplex, all weight 1 except c-d weight 2)
	g := graph.New("square")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddDuplex(a, b, 10, 1, 1) // 0,1
	g.AddDuplex(a, c, 10, 1, 1) // 2,3
	g.AddDuplex(b, d, 10, 1, 1) // 4,5
	g.AddDuplex(c, d, 10, 1, 2) // 6,7
	return g, [4]graph.NodeID{a, b, c, d}
}

func TestDijkstraBasic(t *testing.T) {
	g, n := square(t)
	dist := Dijkstra(g, n[0], nil, WeightCost(g))
	want := []float64{0, 1, 1, 2}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g, n := square(t)
	// Cut all links out of a.
	fail := graph.NewLinkSet(0, 2)
	dist := Dijkstra(g, n[0], fail.Alive(), WeightCost(g))
	if !math.IsInf(dist[n[3]], 1) {
		t.Fatalf("d should be unreachable, dist = %v", dist[n[3]])
	}
}

func TestDijkstraToMatchesForward(t *testing.T) {
	g := topo.Abilene()
	src := graph.NodeID(0)
	for dst := 1; dst < g.NumNodes(); dst++ {
		fwd := Dijkstra(g, src, nil, WeightCost(g))
		back := DijkstraTo(g, graph.NodeID(dst), nil, WeightCost(g))
		if math.Abs(fwd[dst]-back[src]) > 1e-9 {
			t.Fatalf("dst %d: forward %v != backward %v", dst, fwd[dst], back[src])
		}
	}
}

func TestShortestPathAvoidsFailed(t *testing.T) {
	g, n := square(t)
	p := ShortestPath(g, n[0], n[3], nil, WeightCost(g))
	// Unique shortest path a->b->d (a->c->d has weight 3).
	if len(p) != 2 || g.Link(p[0]).Dst != n[1] {
		t.Fatalf("path = %v", p)
	}
	fail := graph.NewLinkSet(0) // a->b down
	p = ShortestPath(g, n[0], n[3], fail.Alive(), WeightCost(g))
	if len(p) != 2 || g.Link(p[0]).Dst != n[2] {
		t.Fatalf("detour path = %v", p)
	}
	// Partition: no path.
	fail = graph.NewLinkSet(0, 2)
	if p = ShortestPath(g, n[0], n[3], fail.Alive(), WeightCost(g)); p != nil {
		t.Fatalf("path through failed links: %v", p)
	}
}

func TestECMPFlowEvenSplit(t *testing.T) {
	// With equal weights the square has two equal-cost paths a->d; ECMP
	// must split 50/50.
	g, n := square(t)
	g.SetWeight(6, 1) // make c->d weight 1 too
	comms := []routing.Commodity{{Src: n[0], Dst: n[3], Demand: 4, Link: -1}}
	f := ECMPFlow(g, comms, nil, WeightCost(g))
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("ECMP flow invalid: %v", err)
	}
	if math.Abs(f.Frac[0][0]-0.5) > 1e-9 || math.Abs(f.Frac[0][2]-0.5) > 1e-9 {
		t.Fatalf("split = %v / %v, want 0.5/0.5", f.Frac[0][0], f.Frac[0][2])
	}
	loads := f.Loads()
	if math.Abs(loads[0]-2) > 1e-9 {
		t.Fatalf("load on a->b = %v, want 2", loads[0])
	}
}

func TestECMPFlowUnreachableZeroRow(t *testing.T) {
	g, n := square(t)
	fail := graph.NewLinkSet(0, 2)
	comms := []routing.Commodity{{Src: n[0], Dst: n[3], Demand: 4, Link: -1}}
	f := ECMPFlow(g, comms, fail.Alive(), WeightCost(g))
	for e, v := range f.Frac[0] {
		if v != 0 {
			t.Fatalf("unreachable commodity has frac[%d] = %v", e, v)
		}
	}
}

func TestECMPFlowValidOnAllTopologies(t *testing.T) {
	for _, g := range topo.All() {
		tm := traffic.Gravity(g, 1000, 1)
		comms := routing.ODCommodities(g.NumNodes(), tm.At)
		f := ECMPFlow(g, comms, nil, WeightCost(g))
		if err := f.Validate(1e-6); err != nil {
			t.Fatalf("%s: invalid ECMP flow: %v", g.Name, err)
		}
	}
}

func TestInvCapWeights(t *testing.T) {
	g := graph.New("g")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 100, 1, 1)
	c := g.AddNode("c")
	g.AddDuplex(b, c, 400, 1, 1)
	InvCapWeights(g, 400)
	if g.Link(0).Weight != 4 || g.Link(2).Weight != 1 {
		t.Fatalf("weights = %v %v", g.Link(0).Weight, g.Link(2).Weight)
	}
	UnitWeights(g)
	if g.Link(0).Weight != 1 {
		t.Fatalf("UnitWeights failed")
	}
}

func TestOptimizeWeightsImproves(t *testing.T) {
	// A topology where hop-count routing overloads one path but capacity
	// is plentiful elsewhere: weight optimization must shift load.
	g := topo.SBC()
	tm := traffic.Gravity(g, 0.4*topo.OC192*float64(g.NumNodes())/4, 2)
	demand := tm.At

	UnitWeights(g)
	comms := routing.ODCommodities(g.NumNodes(), demand)
	before := routing.MLU(g, ECMPFlow(g, comms, nil, WeightCost(g)).Loads())

	after := OptimizeWeights(g, []func(a, b graph.NodeID) float64{demand}, OptimizeOptions{Rounds: 30, Seed: 1})
	if after > before+1e-9 {
		t.Fatalf("optimization made MLU worse: before %v after %v", before, after)
	}
	// Reported MLU must match re-evaluation with the final weights.
	reEval := routing.MLU(g, ECMPFlow(g, comms, nil, WeightCost(g)).Loads())
	if math.Abs(reEval-after) > 1e-9 {
		t.Fatalf("reported %v but re-evaluated %v", after, reEval)
	}
}

func BenchmarkDijkstraUUNet(b *testing.B) {
	g := topo.UUNet()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, graph.NodeID(i%g.NumNodes()), nil, WeightCost(g))
	}
}

func BenchmarkECMPFlowUUNet(b *testing.B) {
	g := topo.UUNet()
	tm := traffic.Gravity(g, 1000, 1)
	comms := routing.ODCommodities(g.NumNodes(), tm.At)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ECMPFlow(g, comms, nil, WeightCost(g))
	}
}
