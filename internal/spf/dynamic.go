package spf

import "repro/internal/graph"

// DynTree is a dynamic reverse shortest-path tree: after a batch of link
// cost changes it repairs only the affected cone of the previous tree
// (Ramalingam–Reps style) instead of re-running Dijkstra from scratch.
//
// Bit-identity: the repaired Dist is the same unique fixpoint the flat
// kernel computes — invalidated nodes are re-derived from boundary offers
// that use the identical cost[e] + dist[head] float64 add, and the
// relaxation loop runs to quiescence — and Next is re-derived by the same
// canonicalNextInto rule: per affected node on plateau-free trees, and by
// the full global pass whenever plateaus exist (their multi-pass
// resolution is a whole-graph computation). A DynTree is
// therefore interchangeable with SPFTo call-for-call without changing a
// single output bit; dynamic_test.go enforces this over random
// perturbation sequences.
//
// DynTrees do not support down-sets (the planner's gradient trees never
// fail links; costs just move). A DynTree must not be shared between
// concurrent calls.
type DynTree struct {
	c     *graph.CSR
	dst   graph.NodeID
	delta bool // delta-stepping full rebuilds

	cost []float64
	sc   Scratch
	dsc  DeltaScratch
	init bool

	// Repair scratch. mark is a generation-stamped visited set shared by
	// the invalidation BFS and the affected-node dedupe (their lifetimes
	// do not overlap); gen advances per use.
	mark  []int32
	markT []int32 // touched-in-relaxation stamp (overlaps mark's lifetime)
	gen   int32
	genT  int32
	inc   []int32   // links whose cost increased, this batch
	dec   []int32   // links whose cost decreased, this batch
	desc  []int32   // invalidated cone (tree descendants of increase roots)
	oldD  []float64 // pre-repair distances of desc, index-aligned
	chg   []int32   // non-desc nodes improved by the relaxation loop
	aff   []int32   // nodes whose next link must be re-derived
}

// UpdateKind reports how DynTree.Update absorbed a batch of cost changes.
type UpdateKind int

const (
	// UpdateNone: no cost actually changed; the tree is untouched.
	UpdateNone UpdateKind = iota
	// UpdateRepaired: the affected cone was repaired incrementally.
	UpdateRepaired
	// UpdateRebuilt: the batch crossed a cutover (dirty-link fraction,
	// invalidated-cone size) or the tree was fresh; built flat.
	UpdateRebuilt
)

// Reset binds the tree to a topology and destination, dropping any
// previous state. deltaKernel selects delta-stepping full rebuilds.
func (t *DynTree) Reset(c *graph.CSR, dst graph.NodeID, deltaKernel bool) {
	t.c, t.dst, t.delta = c, dst, deltaKernel
	t.init = false
	if cap(t.cost) < c.NumLinks() {
		t.cost = make([]float64, c.NumLinks())
		t.mark = make([]int32, c.N)
		t.markT = make([]int32, c.N)
	}
	t.cost = t.cost[:c.NumLinks()]
}

// Ready reports whether the tree has been built at least once.
func (t *DynTree) Ready() bool { return t.init }

// Dist returns the tree's distance vector (valid after Full/Update).
func (t *DynTree) Dist() []float64 { return t.sc.Dist }

// Next returns the tree's canonical next vector (valid after Full/Update).
func (t *DynTree) Next() []int32 { return t.sc.Next }

// Full copies the cost row and builds the tree from scratch.
func (t *DynTree) Full(cost []float64) {
	copy(t.cost, cost)
	t.rebuild()
}

func (t *DynTree) rebuild() {
	if t.delta {
		SPFToDelta(t.c, t.dst, t.cost, nil, &t.sc, &t.dsc)
	} else {
		SPFTo(t.c, t.dst, t.cost, nil, &t.sc)
	}
	t.init = true
}

// Update applies a batch of cost changes — vals[j] is the new cost of link
// ids[j]; entries equal to the current cost are ignored — and repairs the
// tree. cutover is the dirty-link fraction above which repair is skipped
// in favor of a flat rebuild (the cone-size cutover |D| > N/2 always
// applies). Returns how the batch was absorbed and the dirty fraction.
// ids/vals are read-only and may be shared across trees.
func (t *DynTree) Update(ids []int32, vals []float64, cutover float64) (UpdateKind, float64) {
	inc, dec := t.inc[:0], t.dec[:0]
	for j, id := range ids {
		if vals[j] > t.cost[id] {
			inc = append(inc, id)
		} else if vals[j] < t.cost[id] {
			dec = append(dec, id)
		}
	}
	t.inc, t.dec = inc, dec
	dirty := len(inc) + len(dec)
	if dirty == 0 && t.init {
		return UpdateNone, 0
	}
	for j, id := range ids {
		t.cost[id] = vals[j]
	}
	frac := float64(dirty) / float64(len(t.cost))
	if !t.init || frac > cutover {
		t.rebuild()
		return UpdateRebuilt, frac
	}
	if !t.repair() {
		t.rebuild()
		return UpdateRebuilt, frac
	}
	return UpdateRepaired, frac
}

// repair runs the incremental update: invalidate the tree descendants of
// every increase root, re-seed them from boundary offers, relax to
// quiescence, then re-derive canonical next links for every node whose
// distance or candidate set could have changed. Returns false to request
// a flat rebuild when the invalidated cone crosses the size cutover.
func (t *DynTree) repair() bool {
	c, cost := t.c, t.cost
	dist, next := t.sc.Dist, t.sc.Next

	// Invalidated cone: descendants (in the current tree) of sources of
	// increased tree links. Increased non-tree links cannot raise any
	// distance — some other tight link still provides the old minimum.
	t.gen++
	gen := t.gen
	desc, oldD := t.desc[:0], t.oldD[:0]
	for _, id := range t.inc {
		u := c.Src[id]
		if next[u] == id && t.mark[u] != gen {
			t.mark[u] = gen
			desc = append(desc, u)
			oldD = append(oldD, dist[u])
		}
	}
	for k := 0; k < len(desc); k++ {
		v := desc[k]
		for a, b := c.InHead[v], c.InHead[v+1]; a < b; a++ {
			f := c.InLinks[a]
			w := c.Src[f]
			if next[w] == f && t.mark[w] != gen {
				t.mark[w] = gen
				desc = append(desc, w)
				oldD = append(oldD, dist[w])
			}
		}
	}
	t.desc, t.oldD = desc, oldD
	if len(desc) > c.N/2 {
		return false
	}

	for _, u := range desc {
		dist[u] = Infinity
	}
	// Boundary offers: each invalidated node's best label through the
	// surviving frontier (invalidated heads are +Inf and drop out).
	h := t.sc.heap[:0]
	for _, u := range desc {
		best := Infinity
		for a, b := c.OutHead[u], c.OutHead[u+1]; a < b; a++ {
			id := c.OutLinks[a]
			if nd := cost[id] + dist[c.Dst[id]]; nd < best {
				best = nd
			}
		}
		if best < Infinity {
			dist[u] = best
			h = append(h, kItem{best, u})
			siftUp(h, len(h)-1)
		}
	}
	// Improvement offers from decreased links outside the cone. A node
	// improved here has changed distance even if the relaxation loop never
	// touches it again, so it must enter chg now: its in-neighbors can
	// gain a new exact tie (and thus a new canonical next) without their
	// own distance moving.
	t.genT++
	genT := t.genT
	chg := t.chg[:0]
	for _, id := range t.dec {
		u := c.Src[id]
		if nd := cost[id] + dist[c.Dst[id]]; nd < dist[u] {
			dist[u] = nd
			if t.mark[u] != gen && t.markT[u] != genT {
				t.markT[u] = genT
				chg = append(chg, u)
			}
			h = append(h, kItem{nd, u})
			siftUp(h, len(h)-1)
		}
	}
	// Relax to quiescence. Seeds may carry stale-high labels (a boundary
	// node can improve later), so this is label-correcting: any
	// improvement re-enters the queue, and the loop ends at the same
	// unique fixpoint the flat kernel computes.
	for len(h) > 0 {
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		siftDown(h[:last], 0)
		it := h[last]
		h = h[:last]
		if it.dist > dist[it.node] {
			continue
		}
		for a, b := c.InHead[it.node], c.InHead[it.node+1]; a < b; a++ {
			id := c.InLinks[a]
			u := c.Src[id]
			nd := it.dist + cost[id]
			if nd < dist[u] {
				dist[u] = nd
				if t.mark[u] != gen && t.markT[u] != genT {
					t.markT[u] = genT
					chg = append(chg, u)
				}
				h = append(h, kItem{nd, u})
				siftUp(h, len(h)-1)
			}
		}
	}
	t.sc.heap = h[:0]
	t.chg = chg

	// Next is a pure function of (cost, dist): re-derive it wherever a
	// distance or an incident candidate changed. mark is reused with a
	// fresh generation as the dedupe stamp.
	t.gen++
	genA := t.gen
	aff := t.aff[:0]
	addAff := func(u int32) {
		if t.mark[u] != genA {
			t.mark[u] = genA
			aff = append(aff, u)
		}
	}
	changed := func(v int32) {
		addAff(v)
		for a, b := c.InHead[v], c.InHead[v+1]; a < b; a++ {
			addAff(c.Src[c.InLinks[a]])
		}
	}
	for k, u := range desc {
		if dist[u] != oldD[k] {
			changed(u)
		}
	}
	for _, u := range chg {
		changed(u)
	}
	for _, id := range t.inc {
		addAff(c.Src[id])
	}
	for _, id := range t.dec {
		addAff(c.Src[id])
	}
	t.aff = aff
	// Plateau resolution is a global multi-pass computation: when an
	// affected node's plateau status changes, the resolution pass
	// structure of plateau nodes far outside aff changes with it. The
	// per-node rule is therefore sound only when the tree had no plateaus
	// at the last full derivation AND none appear among the affected
	// nodes; otherwise re-derive globally — still a pure function of the
	// repaired dist, so still bitwise equal to the flat kernel.
	if t.sc.Plateaus {
		t.sc.Plateaus = canonicalNextInto(c, t.dst, cost, nil, dist, next)
		return true
	}
	for _, u := range aff {
		if u == int32(t.dst) || dist[u] == Infinity {
			next[u] = -1
			continue
		}
		id, plateau := canonicalLinkAt(c, u, cost, nil, dist)
		if plateau {
			t.sc.Plateaus = canonicalNextInto(c, t.dst, cost, nil, dist, next)
			return true
		}
		next[u] = id
	}
	return true
}
