package spf

import "fmt"

// Mode selects which exact-SSSP kernel the planner drives. Every mode
// returns bitwise-identical (Dist, Next) — the canonical-next contract at
// the top of kernel.go makes the choice a pure wall-clock decision — so
// plans are byte-identical whichever mode is active.
type Mode int

const (
	// ModeAuto resolves per topology size: incremental repair with
	// binary-heap full builds on small graphs, delta-stepping full
	// builds on 1000-node-class graphs. The default.
	ModeAuto Mode = iota
	// ModeFlat is the reference path: a full heap Dijkstra on every
	// call, no incremental repair anywhere. Differential tests compare
	// the other modes against it.
	ModeFlat
	// ModeIncremental repairs the affected cone of the previous tree
	// after each weight delta (Ramalingam–Reps style), rebuilding flat
	// with the heap kernel past the cutover fraction.
	ModeIncremental
	// ModeDelta is ModeIncremental with delta-stepping bucket full
	// builds, tuned for large generated topologies where the binary
	// heap's log factor starts to bite.
	ModeDelta
)

// deltaCutoverNodes is the topology size at which ModeAuto switches full
// rebuilds from the binary heap to the delta-stepping bucket queue.
const deltaCutoverNodes = 768

// ParseMode maps a flag string (auto|flat|incremental|delta) to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "flat":
		return ModeFlat, nil
	case "incremental", "inc":
		return ModeIncremental, nil
	case "delta":
		return ModeDelta, nil
	}
	return ModeAuto, fmt.Errorf("unknown spf mode %q (want auto|flat|incremental|delta)", s)
}

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeFlat:
		return "flat"
	case ModeIncremental:
		return "incremental"
	case ModeDelta:
		return "delta"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Resolve maps ModeAuto to a concrete mode for an n-node topology;
// concrete modes pass through unchanged.
func (m Mode) Resolve(n int) Mode {
	if m != ModeAuto {
		return m
	}
	if n >= deltaCutoverNodes {
		return ModeDelta
	}
	return ModeIncremental
}
