package spf

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func TestDelayCost(t *testing.T) {
	g := graph.New("d")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	// Direct link a->c has small weight but huge delay; a->b->c is faster
	// by delay.
	g.AddLink(a, c, 1, 100, 1)
	g.AddLink(a, b, 1, 2, 10)
	g.AddLink(b, c, 1, 2, 10)
	byWeight := ShortestPath(g, a, c, nil, WeightCost(g))
	byDelay := ShortestPath(g, a, c, nil, DelayCost(g))
	if len(byWeight) != 1 {
		t.Fatalf("weight path = %v", byWeight)
	}
	if len(byDelay) != 2 {
		t.Fatalf("delay path = %v", byDelay)
	}
}

func TestPathViaUnreachable(t *testing.T) {
	g := graph.New("u")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(a, b, 1, 1, 1)
	_, next := DijkstraToWithNext(g, a, nil, WeightCost(g))
	if p := PathVia(g, b, next); p != nil {
		t.Fatalf("path from unreachable node: %v", p)
	}
	// Trivial: path from the destination itself is empty (nil).
	if p := PathVia(g, a, next); p != nil {
		t.Fatalf("path from dst should be empty, got %v", p)
	}
}

func TestDijkstraToWithNextTreeConsistency(t *testing.T) {
	// Following next pointers from any node yields a path whose cost
	// equals the Dijkstra distance.
	g := topo.SBC()
	dst := graph.NodeID(3)
	dist, next := DijkstraToWithNext(g, dst, nil, WeightCost(g))
	for n := 0; n < g.NumNodes(); n++ {
		src := graph.NodeID(n)
		if src == dst {
			continue
		}
		p := PathVia(g, src, next)
		if p == nil {
			t.Fatalf("node %d unreachable in connected graph", n)
		}
		var cost float64
		at := src
		for _, id := range p {
			if g.Link(id).Src != at {
				t.Fatalf("path discontinuous at %d", id)
			}
			cost += g.Link(id).Weight
			at = g.Link(id).Dst
		}
		if at != dst {
			t.Fatalf("path from %d ends at %d", src, at)
		}
		if math.Abs(cost-dist[src]) > 1e-9 {
			t.Fatalf("path cost %v != dist %v", cost, dist[src])
		}
	}
}

func TestECMPFlowDemandWeighting(t *testing.T) {
	// Loads scale linearly with demand.
	g := topo.Abilene()
	tm := traffic.Gravity(g, 100, 5)
	comms := routing.ODCommodities(g.NumNodes(), tm.At)
	f1 := ECMPFlow(g, comms, nil, WeightCost(g))
	l1 := f1.Loads()

	tm.Scale(3)
	comms3 := routing.ODCommodities(g.NumNodes(), tm.At)
	f3 := ECMPFlow(g, comms3, nil, WeightCost(g))
	l3 := f3.Loads()
	for e := range l1 {
		if math.Abs(l3[e]-3*l1[e]) > 1e-6*(1+l1[e]) {
			t.Fatalf("link %d: %v != 3x%v", e, l3[e], l1[e])
		}
	}
}

func TestOptimizeWeightsMultipleMatrices(t *testing.T) {
	// Optimizing for two matrices minimizes the worse of the two.
	g := topo.Abilene()
	d1 := traffic.Gravity(g, 300, 1)
	d2 := traffic.Gravity(g, 300, 2)
	worst := OptimizeWeights(g, []func(a, b graph.NodeID) float64{d1.At, d2.At},
		OptimizeOptions{Rounds: 10, Seed: 3})
	// Re-evaluate both by hand: the reported value is the max.
	check := 0.0
	for _, d := range []*traffic.Matrix{d1, d2} {
		comms := routing.ODCommodities(g.NumNodes(), d.At)
		f := ECMPFlow(g, comms, nil, WeightCost(g))
		if u := routing.MLU(g, f.Loads()); u > check {
			check = u
		}
	}
	if math.Abs(check-worst) > 1e-9 {
		t.Fatalf("reported %v, recomputed %v", worst, check)
	}
}

func TestECMPRespectsWeightChanges(t *testing.T) {
	g := topo.Abilene()
	src, dst := graph.NodeID(0), graph.NodeID(6)
	comms := []routing.Commodity{{Src: src, Dst: dst, Demand: 1, Link: -1}}
	before := ECMPFlow(g, comms, nil, WeightCost(g)).Frac[0]
	// Penalize the first link on the current path.
	var firstLink graph.LinkID = -1
	for e, v := range before {
		if v > 0 {
			firstLink = graph.LinkID(e)
			break
		}
	}
	if firstLink < 0 {
		t.Fatalf("no path found")
	}
	g.SetWeight(firstLink, 100)
	after := ECMPFlow(g, comms, nil, WeightCost(g)).Frac[0]
	if after[firstLink] >= before[firstLink] {
		t.Fatalf("penalized link still carries %v (was %v)", after[firstLink], before[firstLink])
	}
}
