package spf

import (
	"sync"

	"repro/internal/graph"
)

// This file is the allocation-free shortest-path kernel: Dijkstra over the
// graph's CSR view with costs read from a flat per-link array, liveness
// tested against a LinkSet bitmask, and all working state in a
// caller-provided Scratch. With a warm Scratch a call performs zero heap
// allocations.
//
// Bit-identity contract. The closure-based functions in spf.go are thin
// wrappers over this kernel, and the planner's byte-identical-plans
// guarantee rides on the pop order of equal-distance nodes: which of two
// nodes at the same distance settles first decides which predecessor wins
// a `nd < dist` tie-break, and therefore which Next link a path follows.
// Equal keys are common in the planner (gradient costs share the +1e-12
// floor wherever exp underflows to zero), so the kernel replicates
// container/heap's binary sift-up/sift-down exactly — including its
// swap-root-with-last Pop — rather than switching to a d-ary heap, whose
// different (still valid) pop order would silently change plans.

// kItem is one heap entry: a tentative distance and the node it reaches.
// Stale entries are skipped on pop (lazy deletion), exactly like the
// closure-based implementation.
type kItem struct {
	dist float64
	node int32
}

// Scratch holds the kernel's working state so repeated calls allocate
// nothing once the buffers have grown to the graph's size. A Scratch must
// not be shared between concurrent calls.
type Scratch struct {
	// Dist is the distance vector of the last call, indexed by node.
	Dist []float64
	// Next is the next-link vector of the last SPFTo call, indexed by
	// node: the first link of a shortest path toward the destination, or
	// -1 when unreachable (and at the destination itself).
	Next []int32
	heap []kItem
}

// reset sizes the buffers for n nodes and initializes Dist to +Inf and
// Next to -1.
func (s *Scratch) reset(n int) {
	if cap(s.Dist) < n {
		s.Dist = make([]float64, n)
		s.Next = make([]int32, n)
		s.heap = make([]kItem, 0, n)
	}
	s.Dist = s.Dist[:n]
	s.Next = s.Next[:n]
	for i := range s.Dist {
		s.Dist[i] = Infinity
		s.Next[i] = -1
	}
}

// siftUp replicates container/heap.up with Less = strict < on dist.
func siftUp(h []kItem, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// siftDown replicates container/heap.down with Less = strict < on dist.
func siftDown(h []kItem, i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// SPFTo runs reverse Dijkstra toward dst over the CSR view: distances and
// next links for every node are left in s.Dist and s.Next. cost[id] is the
// nonnegative cost of link id; links in down (nil = none) are excluded.
// Equivalent to DijkstraToWithNext bit for bit, without its allocations.
func SPFTo(c *graph.CSR, dst graph.NodeID, cost []float64, down *graph.LinkSet, s *Scratch) {
	s.reset(c.N)
	dist, next := s.Dist, s.Next
	dist[dst] = 0
	h := append(s.heap[:0], kItem{0, int32(dst)})
	for len(h) > 0 {
		// container/heap.Pop: swap root with last, sift down, pop last.
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		siftDown(h[:last], 0)
		it := h[last]
		h = h[:last]
		if it.dist > dist[it.node] {
			continue
		}
		for a, b := c.InHead[it.node], c.InHead[it.node+1]; a < b; a++ {
			id := c.InLinks[a]
			if down != nil && down.Contains(graph.LinkID(id)) {
				continue
			}
			u := c.Src[id]
			nd := it.dist + cost[id]
			if nd < dist[u] {
				dist[u] = nd
				next[u] = id
				h = append(h, kItem{nd, u})
				siftUp(h, len(h)-1)
			}
		}
	}
	s.heap = h[:0]
}

// SPFFrom runs forward Dijkstra from src over the CSR view, leaving
// distances in s.Dist (s.Next is reset but not meaningful). Equivalent to
// Dijkstra bit for bit, without its allocations.
func SPFFrom(c *graph.CSR, src graph.NodeID, cost []float64, down *graph.LinkSet, s *Scratch) {
	s.reset(c.N)
	dist := s.Dist
	dist[src] = 0
	h := append(s.heap[:0], kItem{0, int32(src)})
	for len(h) > 0 {
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		siftDown(h[:last], 0)
		it := h[last]
		h = h[:last]
		if it.dist > dist[it.node] {
			continue
		}
		for a, b := c.OutHead[it.node], c.OutHead[it.node+1]; a < b; a++ {
			id := c.OutLinks[a]
			if down != nil && down.Contains(graph.LinkID(id)) {
				continue
			}
			v := c.Dst[id]
			nd := it.dist + cost[id]
			if nd < dist[v] {
				dist[v] = nd
				h = append(h, kItem{nd, v})
				siftUp(h, len(h)-1)
			}
		}
	}
	s.heap = h[:0]
}

// PathFromNext follows a next vector produced by SPFTo from src to the
// tree's destination, appending the links to buf (typically buf[:0] of a
// reusable slice) and returning it, or nil when src cannot reach the
// destination. The flat-array analogue of PathVia.
func PathFromNext(c *graph.CSR, src graph.NodeID, next []int32, buf []graph.LinkID) []graph.LinkID {
	u := int32(src)
	if next[u] < 0 {
		return nil
	}
	path := buf[:0]
	for next[u] >= 0 {
		id := next[u]
		path = append(path, graph.LinkID(id))
		u = c.Dst[id]
	}
	return path
}

// ScratchPool is a free list of kernel Scratches for concurrent callers
// (e.g. per-worker shortest-path fan-outs). The zero value is ready to
// use. Scratch contents never influence results, so recycling order does
// not affect determinism.
type ScratchPool struct {
	mu   sync.Mutex
	free []*Scratch
}

// Get pops a Scratch from the pool, or returns a fresh one.
func (p *ScratchPool) Get() *Scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return &Scratch{}
}

// Put returns a Scratch to the pool.
func (p *ScratchPool) Put(s *Scratch) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}
