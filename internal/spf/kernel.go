package spf

import (
	"sync"

	"repro/internal/graph"
)

// This file is the allocation-free shortest-path kernel: Dijkstra over the
// graph's CSR view with costs read from a flat per-link array, liveness
// tested against a LinkSet bitmask, and all working state in a
// caller-provided Scratch. With a warm Scratch a call performs zero heap
// allocations.
//
// Bit-identity contract. The planner's byte-identical-plans guarantee no
// longer rides on heap pop order. Instead:
//
//   - Dist is the unique fixpoint dist[u] = min over alive out-links e of
//     cost[e] ⊕ dist[Dst[e]], where ⊕ is one float64 add. Every candidate
//     is a single rounding of cost[e] + dist[Dst[e]] anchored at dst, so
//     the fixpoint — and therefore Dist — is independent of the algorithm
//     that computed it (binary-heap Dijkstra, incremental repair, the
//     delta-stepping bucket kernel).
//   - Next is canonicalNextInto(Dist): a pure function of (csr, cost,
//     down, Dist). For each node it picks the smallest-id tight link
//     (dist[u] == cost[e] + dist[Dst[e]], exact float equality) whose head
//     is strictly closer to the destination. Nodes whose only tight links
//     stay at equal distance — possible only when a tight link's cost is
//     absorbed to zero in the add, which the planner's +1e-12 cost floors
//     make unreachable in practice — are resolved by a deterministic
//     multi-pass sweep (see resolvePlateaus); pure local tie-breaking
//     cannot resolve them without risking next-pointer cycles.
//
// Because (Dist, Next) is a pure function of the inputs, any exact SSSP
// kernel in this package yields bitwise-identical results, which is what
// lets the incremental DynTree repair and the delta-stepping variant swap
// in for the flat kernel without changing a single plan byte. Equal keys
// are common in the planner (gradient costs share the +1e-12 floor
// wherever exp underflows to zero), so this independence is load-bearing,
// not theoretical.

// kItem is one heap entry: a tentative distance and the node it reaches.
// Stale entries are skipped on pop (lazy deletion), exactly like the
// closure-based implementation.
type kItem struct {
	dist float64
	node int32
}

// Scratch holds the kernel's working state so repeated calls allocate
// nothing once the buffers have grown to the graph's size. A Scratch must
// not be shared between concurrent calls.
type Scratch struct {
	// Dist is the distance vector of the last call, indexed by node.
	Dist []float64
	// Next is the next-link vector of the last SPFTo call, indexed by
	// node: the first link of a shortest path toward the destination, or
	// -1 when unreachable (and at the destination itself).
	Next []int32
	// Plateaus reports whether the last canonical-next derivation saw any
	// plateau node (all tight links at equal distance). DynTree reads it:
	// plateau resolution is a global multi-pass computation, so a repaired
	// tree may re-derive Next per-node only when no plateaus exist.
	Plateaus bool
	heap     []kItem
}

// reset sizes the buffers for n nodes and initializes Dist to +Inf and
// Next to -1.
func (s *Scratch) reset(n int) {
	if cap(s.Dist) < n {
		s.Dist = make([]float64, n)
		s.Next = make([]int32, n)
		s.heap = make([]kItem, 0, n)
	}
	s.Dist = s.Dist[:n]
	s.Next = s.Next[:n]
	for i := range s.Dist {
		s.Dist[i] = Infinity
		s.Next[i] = -1
	}
}

// siftUp replicates container/heap.up with Less = strict < on dist.
func siftUp(h []kItem, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// siftDown replicates container/heap.down with Less = strict < on dist.
func siftDown(h []kItem, i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// SPFTo runs reverse Dijkstra toward dst over the CSR view: distances and
// next links for every node are left in s.Dist and s.Next. cost[id] is the
// nonnegative cost of link id; links in down (nil = none) are excluded.
// Dist is the unique shortest-distance fixpoint and Next is its canonical
// next vector (see the contract at the top of this file), so every exact
// kernel in this package returns bitwise-identical results.
func SPFTo(c *graph.CSR, dst graph.NodeID, cost []float64, down *graph.LinkSet, s *Scratch) {
	s.reset(c.N)
	dist := s.Dist
	dist[dst] = 0
	h := append(s.heap[:0], kItem{0, int32(dst)})
	for len(h) > 0 {
		// container/heap.Pop: swap root with last, sift down, pop last.
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		siftDown(h[:last], 0)
		it := h[last]
		h = h[:last]
		if it.dist > dist[it.node] {
			continue
		}
		for a, b := c.InHead[it.node], c.InHead[it.node+1]; a < b; a++ {
			id := c.InLinks[a]
			if down != nil && down.Contains(graph.LinkID(id)) {
				continue
			}
			u := c.Src[id]
			nd := it.dist + cost[id]
			if nd < dist[u] {
				dist[u] = nd
				h = append(h, kItem{nd, u})
				siftUp(h, len(h)-1)
			}
		}
	}
	s.heap = h[:0]
	s.Plateaus = canonicalNextInto(c, dst, cost, down, dist, s.Next)
}

// tieKey orders tied tight links. A plain smallest-id rule would funnel
// every tied path in the graph through the same low-id links — gradient
// rows in the planner are tied at the 1e-12 floor across most cells, and
// concentrating those detours measurably degrades protection quality — so
// ties are broken by a deterministic per-node hash that spreads choices
// across the link space while remaining a pure function of (u, id).
func tieKey(u, id int32) uint32 {
	return (uint32(id)*0x9E3779B1 ^ uint32(u)*0x85EBCA77) * 0x27D4EB2F
}

// canonicalLinkAt returns the canonical next link for node u given a
// settled distance vector: the smallest-id alive out-link e that is tight
// (dist[u] == cost[e] + dist[Dst[e]], exact float equality) with a head
// strictly closer to the destination. plateau reports that u has only
// equal-distance tight links, which the caller must resolve globally —
// adopting one locally can create next-pointer cycles.
func canonicalLinkAt(c *graph.CSR, u int32, cost []float64, down *graph.LinkSet, dist []float64) (link int32, plateau bool) {
	du := dist[u]
	best := int32(-1)
	for a, b := c.OutHead[u], c.OutHead[u+1]; a < b; a++ {
		id := c.OutLinks[a]
		if down != nil && down.Contains(graph.LinkID(id)) {
			continue
		}
		dv := dist[c.Dst[id]]
		if dv >= du {
			if dv == du && cost[id]+dv == du {
				plateau = true
			}
			continue
		}
		if cost[id]+dv == du && (best < 0 || tieKey(u, id) < tieKey(u, best)) {
			best = id
		}
	}
	if best >= 0 {
		return best, false
	}
	return -1, plateau
}

// canonicalNextInto derives the canonical next vector from a settled
// distance vector. It is a pure function of (c, cost, down, dist) — it
// carries no state from whichever algorithm computed dist — which is the
// property that makes all kernels in this package bitwise-interchangeable.
// next must have length c.N. The return reports whether any plateau node
// was seen (see Scratch.Plateaus).
func canonicalNextInto(c *graph.CSR, dst graph.NodeID, cost []float64, down *graph.LinkSet, dist []float64, next []int32) bool {
	var plateaus []int32
	for u := int32(0); u < int32(c.N); u++ {
		if u == int32(dst) || dist[u] == Infinity {
			next[u] = -1
			continue
		}
		id, plateau := canonicalLinkAt(c, u, cost, down, dist)
		next[u] = id
		if plateau {
			plateaus = append(plateaus, u)
		}
	}
	if len(plateaus) > 0 {
		resolvePlateaus(c, dst, cost, down, dist, next, plateaus)
		return true
	}
	return false
}

// resolvePlateaus assigns next links to plateau nodes — nodes whose tight
// links all stay at equal distance. A plateau node may adopt an
// equal-distance tight link only once its head is resolved; sweeping the
// (ascending-id) plateau list until a pass makes no progress yields a
// deterministic, cycle-free assignment. Termination: each plateau node's
// Dijkstra relaxation parent is an equal-distance node settled strictly
// earlier, so the parent chain grounds out at a non-plateau node and every
// pass resolves at least one plateau. The result depends only on
// (c, cost, down, dist), never on settle order itself.
func resolvePlateaus(c *graph.CSR, dst graph.NodeID, cost []float64, down *graph.LinkSet, dist []float64, next []int32, plateaus []int32) {
	for len(plateaus) > 0 {
		progress := false
		rest := plateaus[:0]
		for _, u := range plateaus {
			du := dist[u]
			best := int32(-1)
			for a, b := c.OutHead[u], c.OutHead[u+1]; a < b; a++ {
				id := c.OutLinks[a]
				if down != nil && down.Contains(graph.LinkID(id)) {
					continue
				}
				v := c.Dst[id]
				if cost[id]+dist[v] != du {
					continue
				}
				if v != int32(dst) && next[v] < 0 {
					continue // head not yet resolved
				}
				if best < 0 || tieKey(u, id) < tieKey(u, best) {
					best = id
				}
			}
			if best >= 0 {
				next[u] = best
				progress = true
			} else {
				rest = append(rest, u)
			}
		}
		if !progress {
			// Unreachable for a true distance fixpoint; leave the
			// remainder unresolved rather than loop forever.
			return
		}
		plateaus = rest
	}
}

// SPFFrom runs forward Dijkstra from src over the CSR view, leaving
// distances in s.Dist (s.Next is reset but not meaningful). Equivalent to
// Dijkstra bit for bit, without its allocations.
func SPFFrom(c *graph.CSR, src graph.NodeID, cost []float64, down *graph.LinkSet, s *Scratch) {
	s.reset(c.N)
	dist := s.Dist
	dist[src] = 0
	h := append(s.heap[:0], kItem{0, int32(src)})
	for len(h) > 0 {
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		siftDown(h[:last], 0)
		it := h[last]
		h = h[:last]
		if it.dist > dist[it.node] {
			continue
		}
		for a, b := c.OutHead[it.node], c.OutHead[it.node+1]; a < b; a++ {
			id := c.OutLinks[a]
			if down != nil && down.Contains(graph.LinkID(id)) {
				continue
			}
			v := c.Dst[id]
			nd := it.dist + cost[id]
			if nd < dist[v] {
				dist[v] = nd
				h = append(h, kItem{nd, v})
				siftUp(h, len(h)-1)
			}
		}
	}
	s.heap = h[:0]
}

// PathFromNext follows a next vector produced by SPFTo from src to the
// tree's destination, appending the links to buf (typically buf[:0] of a
// reusable slice) and returning it, or nil when src cannot reach the
// destination. The flat-array analogue of PathVia.
func PathFromNext(c *graph.CSR, src graph.NodeID, next []int32, buf []graph.LinkID) []graph.LinkID {
	u := int32(src)
	if next[u] < 0 {
		return nil
	}
	path := buf[:0]
	for next[u] >= 0 {
		id := next[u]
		path = append(path, graph.LinkID(id))
		u = c.Dst[id]
	}
	return path
}

// ScratchPool is a free list of kernel Scratches for concurrent callers
// (e.g. per-worker shortest-path fan-outs). The zero value is ready to
// use. Scratch contents never influence results, so recycling order does
// not affect determinism.
type ScratchPool struct {
	mu   sync.Mutex
	free []*Scratch
}

// Get pops a Scratch from the pool, or returns a fresh one.
func (p *ScratchPool) Get() *Scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return &Scratch{}
}

// Put returns a Scratch to the pool.
func (p *ScratchPool) Put(s *Scratch) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}
