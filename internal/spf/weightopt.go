package spf

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/routing"
)

// OptimizeOptions controls the local-search IGP weight optimizer.
type OptimizeOptions struct {
	// Rounds is the number of local-search rounds (default 60).
	Rounds int
	// Candidates is how many of the most-utilized links are considered for
	// a weight change each round (default 5).
	Candidates int
	// MaxWeight caps weights (default 20).
	MaxWeight float64
	// Seed drives tie-breaking perturbations.
	Seed int64
}

func (o *OptimizeOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 60
	}
	if o.Candidates == 0 {
		o.Candidates = 5
	}
	if o.MaxWeight == 0 {
		o.MaxWeight = 20
	}
}

// OptimizeWeights runs a Fortz–Thorup-style local search that sets integer
// IGP weights on g to minimize the worst maximum-link-utilization across
// the given demand sets. Each demand set is a function d(a,b); the
// optimizer evaluates OSPF ECMP routing of all sets and minimizes the max
// MLU. It mutates g's weights and returns the achieved worst-case MLU.
func OptimizeWeights(g *graph.Graph, demands []func(a, b graph.NodeID) float64, opts OptimizeOptions) float64 {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Start from unit weights (hop count), a decent seed for meshes.
	UnitWeights(g)

	commsPer := make([][]routing.Commodity, len(demands))
	for i, d := range demands {
		commsPer[i] = routing.ODCommodities(g.NumNodes(), d)
	}

	// One scratch across every candidate evaluation: the local search
	// probes hundreds of weight settings, and each probe reuses the same
	// per-destination distance table instead of growing a fresh cache.
	var sc ECMPScratch
	evaluate := func() (float64, []float64) {
		worst := 0.0
		var worstLoads []float64
		for i := range demands {
			f := ECMPFlowScratch(g, commsPer[i], nil, WeightCost(g), &sc)
			loads := f.Loads()
			if u := routing.MLU(g, loads); u > worst {
				worst = u
				worstLoads = loads
			}
		}
		return worst, worstLoads
	}

	best, loads := evaluate()
	for round := 0; round < opts.Rounds; round++ {
		// Rank links by utilization under the worst demand set.
		type lu struct {
			id graph.LinkID
			u  float64
		}
		ranked := make([]lu, g.NumLinks())
		for e := range ranked {
			id := graph.LinkID(e)
			ranked[e] = lu{id, loads[e] / g.Link(id).Capacity}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].u > ranked[j].u })

		improved := false
		for c := 0; c < opts.Candidates && c < len(ranked); c++ {
			id := ranked[c].id
			old := g.Link(id).Weight
			// Try pushing traffic off the hot link by raising its weight.
			delta := 1 + float64(rng.Intn(3))
			nw := old + delta
			if nw > opts.MaxWeight {
				continue
			}
			g.SetWeight(id, nw)
			if u, l := evaluate(); u < best-1e-9 {
				best, loads = u, l
				improved = true
				break
			}
			g.SetWeight(id, old)
		}
		if !improved {
			// Perturb a random link to escape plateaus; keep only if not
			// worse.
			id := graph.LinkID(rng.Intn(g.NumLinks()))
			old := g.Link(id).Weight
			nw := old + float64(1+rng.Intn(2))
			if nw <= opts.MaxWeight {
				g.SetWeight(id, nw)
				if u, l := evaluate(); u <= best+1e-9 {
					best, loads = u, l
				} else {
					g.SetWeight(id, old)
				}
			}
		}
	}
	return best
}
