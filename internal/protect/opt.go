package protect

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// OptDetour is the paper's "opt" baseline: flow-based optimal link detour
// routing computed per failure scenario. The base routing is fixed (OSPF
// ECMP on the full topology, or a caller-provided flow); for each failure
// set, the traffic that crossed each failed link becomes a commodity from
// the link's head to its tail and the detours are jointly optimized to
// minimize the bottleneck, given the surviving base load as background.
// It bounds what any practical link-protection scheme can achieve, but
// requires a fresh optimization for every scenario.
type OptDetour struct {
	G *graph.Graph
	// Base optionally fixes the base routing; nil means OSPF ECMP with
	// the graph's current weights.
	Base *routing.Flow
	// Iterations is the per-scenario solver effort (default 200; the
	// exact solver ignores it).
	Iterations int
	// Exact solves each scenario's detour MCF with the exact LP solver,
	// warm-started from the first scenario whose shape repeats, instead
	// of Frank–Wolfe. Any LP failure falls back to the iterative solver
	// for that scenario. Intended for small topologies.
	Exact bool
	// Obs receives the LP solver's "lp." counters from exact solves.
	Obs *obs.Registry

	// mu guards the lazily built base routing cache and the warm basis.
	mu sync.Mutex
	// cached is keyed by the demand matrix's content fingerprint, not its
	// pointer: an in-place-mutated matrix must not serve a stale base
	// routing.
	cached   *routing.Flow
	cachedFP uint64
	haveFP   bool
	warm     *lp.Basis
}

// Name implements Scheme.
func (s *OptDetour) Name() string { return "OSPF+opt" }

func (s *OptDetour) baseFlow(d *traffic.Matrix) *routing.Flow {
	if s.Base != nil {
		f := s.Base.Clone()
		f.SetDemands(d.At)
		return f
	}
	fp := d.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached == nil || !s.haveFP || s.cachedFP != fp {
		comms := routing.ODCommodities(s.G.NumNodes(), d.At)
		s.cached = spf.ECMPFlow(s.G, comms, nil, spf.WeightCost(s.G))
		s.cachedFP = fp
		s.haveFP = true
	}
	// Clone, as the s.Base path does: callers may hold the flow across a
	// matrix change, and the shared cache must never alias caller state.
	return s.cached.Clone()
}

// solveDetour runs one scenario's detour optimization: the exact LP
// (with a set-once warm basis so parallel evaluations are deterministic)
// when Exact is set, Frank–Wolfe otherwise or on LP failure.
func (s *OptDetour) solveDetour(detourComms []routing.Commodity, failed graph.LinkSet, bg []float64, iters int) *mcf.Result {
	opts := mcf.Options{Alive: failed.Alive(), Background: bg, Iterations: iters}
	if s.Exact {
		s.mu.Lock()
		opts.Warm = s.warm
		s.mu.Unlock()
		opts.Obs = s.Obs
		if res, err := mcf.MinMLUExact(s.G, detourComms, opts); err == nil {
			s.mu.Lock()
			if s.warm == nil {
				s.warm = res.Basis
			}
			s.mu.Unlock()
			return res
		}
	}
	return mcf.MinMLU(s.G, detourComms, opts)
}

// Loads implements Scheme.
func (s *OptDetour) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	base := s.baseFlow(d)
	baseLoads := base.Loads()

	// Background: surviving base load.
	bg := make([]float64, s.G.NumLinks())
	copy(bg, baseLoads)
	var detourComms []routing.Commodity
	for _, e := range failed.IDs() {
		bg[e] = 0
		if baseLoads[e] == 0 {
			continue
		}
		link := s.G.Link(e)
		detourComms = append(detourComms, routing.Commodity{
			Src: link.Src, Dst: link.Dst, Demand: baseLoads[e], Link: e,
		})
	}
	if len(detourComms) == 0 {
		return bg, 0
	}
	iters := s.Iterations
	if iters == 0 {
		iters = 200
	}
	res := s.solveDetour(detourComms, failed, bg, iters)
	loads := make([]float64, s.G.NumLinks())
	copy(loads, bg)
	res.Flow.AddLoads(loads)
	var lost float64
	for k := range res.Flow.Comms {
		if rowZero(res.Flow.Frac[k]) {
			lost += res.Flow.Comms[k].Demand
		}
	}
	return loads, lost
}

// Optimal is flow-based optimal routing recomputed from scratch for each
// scenario: the lower bound every performance ratio is measured against.
type Optimal struct {
	G *graph.Graph
	// Iterations is the per-scenario solver effort (default 200; the
	// exact solver ignores it).
	Iterations int
	// Exact solves each scenario with the exact LP solver instead of
	// Frank–Wolfe, warm-starting from the first solved scenario's basis
	// (connectivity-preserving scenarios all share one LP shape, so the
	// dual simplex repairs each re-solve in a few pivots). LP failures
	// fall back to the iterative solver. Intended for small topologies.
	Exact bool
	// Obs receives the LP solver's "lp." counters from exact solves.
	Obs *obs.Registry

	// mu guards the set-once warm basis: only the first successful solve
	// publishes its basis, so results never depend on the order in which
	// concurrent scenario evaluations finish.
	mu   sync.Mutex
	warm *lp.Basis
}

// Name implements Scheme.
func (s *Optimal) Name() string { return "optimal" }

// Loads implements Scheme.
func (s *Optimal) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	return s.ScenarioLoads(failed, nil, d)
}

// ScenarioLoads is Loads under degraded capacities: capScale (length
// NumLinks when non-nil) multiplies each link's capacity in the
// optimization, so the optimum respects a scenario's effective
// capacities. A nil capScale computes exactly Loads.
func (s *Optimal) ScenarioLoads(failed graph.LinkSet, capScale []float64, d *traffic.Matrix) ([]float64, float64) {
	comms := routing.ODCommodities(s.G.NumNodes(), d.At)
	iters := s.Iterations
	if iters == 0 {
		iters = 200
	}
	var res *mcf.Result
	if s.Exact {
		s.mu.Lock()
		warm := s.warm
		s.mu.Unlock()
		exact, err := mcf.MinMLUExact(s.G, comms, mcf.Options{Alive: failed.Alive(), CapScale: capScale, Warm: warm, Obs: s.Obs})
		if err == nil {
			s.mu.Lock()
			if s.warm == nil {
				s.warm = exact.Basis
			}
			s.mu.Unlock()
			res = exact
		}
	}
	if res == nil {
		res = mcf.MinMLU(s.G, comms, mcf.Options{Alive: failed.Alive(), CapScale: capScale, Iterations: iters})
	}
	var lost float64
	for k := range res.Flow.Comms {
		if rowZero(res.Flow.Frac[k]) {
			lost += res.Flow.Comms[k].Demand
		}
	}
	return res.Flow.Loads(), lost
}
