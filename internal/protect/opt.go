package protect

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// OptDetour is the paper's "opt" baseline: flow-based optimal link detour
// routing computed per failure scenario. The base routing is fixed (OSPF
// ECMP on the full topology, or a caller-provided flow); for each failure
// set, the traffic that crossed each failed link becomes a commodity from
// the link's head to its tail and the detours are jointly optimized to
// minimize the bottleneck, given the surviving base load as background.
// It bounds what any practical link-protection scheme can achieve, but
// requires a fresh optimization for every scenario.
type OptDetour struct {
	G *graph.Graph
	// Base optionally fixes the base routing; nil means OSPF ECMP with
	// the graph's current weights.
	Base *routing.Flow
	// Iterations is the per-scenario solver effort (default 200).
	Iterations int

	// mu guards the lazily built base routing cache.
	mu       sync.Mutex
	cached   *routing.Flow
	cachedTM *traffic.Matrix
}

// Name implements Scheme.
func (s *OptDetour) Name() string { return "OSPF+opt" }

func (s *OptDetour) baseFlow(d *traffic.Matrix) *routing.Flow {
	if s.Base != nil {
		f := s.Base.Clone()
		f.SetDemands(d.At)
		return f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached == nil || s.cachedTM != d {
		comms := routing.ODCommodities(s.G.NumNodes(), d.At)
		s.cached = spf.ECMPFlow(s.G, comms, nil, spf.WeightCost(s.G))
		s.cachedTM = d
	}
	return s.cached
}

// Loads implements Scheme.
func (s *OptDetour) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	base := s.baseFlow(d)
	baseLoads := base.Loads()

	// Background: surviving base load.
	bg := make([]float64, s.G.NumLinks())
	copy(bg, baseLoads)
	var detourComms []routing.Commodity
	for _, e := range failed.IDs() {
		bg[e] = 0
		if baseLoads[e] == 0 {
			continue
		}
		link := s.G.Link(e)
		detourComms = append(detourComms, routing.Commodity{
			Src: link.Src, Dst: link.Dst, Demand: baseLoads[e], Link: e,
		})
	}
	if len(detourComms) == 0 {
		return bg, 0
	}
	iters := s.Iterations
	if iters == 0 {
		iters = 200
	}
	res := mcf.MinMLU(s.G, detourComms, mcf.Options{
		Alive:      failed.Alive(),
		Background: bg,
		Iterations: iters,
	})
	loads := make([]float64, s.G.NumLinks())
	copy(loads, bg)
	res.Flow.AddLoads(loads)
	var lost float64
	for k := range res.Flow.Comms {
		if rowZero(res.Flow.Frac[k]) {
			lost += res.Flow.Comms[k].Demand
		}
	}
	return loads, lost
}

// Optimal is flow-based optimal routing recomputed from scratch for each
// scenario: the lower bound every performance ratio is measured against.
type Optimal struct {
	G *graph.Graph
	// Iterations is the per-scenario solver effort (default 200).
	Iterations int
}

// Name implements Scheme.
func (s *Optimal) Name() string { return "optimal" }

// Loads implements Scheme.
func (s *Optimal) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	comms := routing.ODCommodities(s.G.NumNodes(), d.At)
	iters := s.Iterations
	if iters == 0 {
		iters = 200
	}
	res := mcf.MinMLU(s.G, comms, mcf.Options{Alive: failed.Alive(), Iterations: iters})
	var lost float64
	for k := range res.Flow.Comms {
		if rowZero(res.Flow.Frac[k]) {
			lost += res.Flow.Comms[k].Demand
		}
	}
	return res.Flow.Loads(), lost
}
