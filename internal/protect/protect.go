// Package protect implements the protection/rerouting schemes the paper
// compares R3 against: OSPF reconvergence, OSPF with CSPF fast-reroute
// detours, Failure-Carrying Packets (FCP), Path Splicing, and the
// flow-based optimal link detour (opt). Each scheme answers one question:
// given a traffic matrix and a set of failed links, what load lands on
// every surviving link?
package protect

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// Scheme computes per-link loads for a demand matrix under a failure set.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Loads returns the load on every link (failed links carry zero) and
	// the total demand dropped (lost reachability or forwarding dead
	// ends).
	Loads(failed graph.LinkSet, d *traffic.Matrix) (loads []float64, lost float64)
}

// Bottleneck returns the maximum utilization of the given loads over the
// surviving links.
func Bottleneck(g *graph.Graph, failed graph.LinkSet, loads []float64) float64 {
	return BottleneckScaled(g, failed, nil, loads)
}

// BottleneckScaled is Bottleneck against degraded capacities: capScale
// (length NumLinks when non-nil) multiplies each link's capacity, so a
// partially degraded link is judged at its effective capacity. A nil
// capScale computes exactly Bottleneck.
func BottleneckScaled(g *graph.Graph, failed graph.LinkSet, capScale []float64, loads []float64) float64 {
	worst := 0.0
	for e, l := range loads {
		if failed.Contains(graph.LinkID(e)) {
			continue
		}
		c := g.Link(graph.LinkID(e)).Capacity
		if capScale != nil {
			c *= capScale[e]
		}
		if u := l / c; u > worst {
			worst = u
		}
	}
	return worst
}

// OSPFRecon models OSPF reconvergence: after failures, OSPF recomputes
// ECMP shortest paths on the surviving topology with unchanged weights.
type OSPFRecon struct {
	G *graph.Graph
}

// Name implements Scheme.
func (s *OSPFRecon) Name() string { return "OSPF+recon" }

// Loads implements Scheme.
func (s *OSPFRecon) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	comms := routing.ODCommodities(s.G.NumNodes(), d.At)
	f := spf.ECMPFlow(s.G, comms, failed.Alive(), spf.WeightCost(s.G))
	loads := f.Loads()
	var lost float64
	for k, c := range f.Comms {
		if rowZero(f.Frac[k]) {
			lost += c.Demand
		}
	}
	return loads, lost
}

func rowZero(fr []float64) bool {
	for _, v := range fr {
		if v != 0 {
			return false
		}
	}
	return true
}

// CSPFDetour models the widely deployed MPLS fast-reroute bypass: traffic
// keeps following the pre-failure OSPF paths, and the traffic that crossed
// a failed link is tunneled over that link's bypass — the shortest path
// from its head to its tail computed with all failed links removed.
type CSPFDetour struct {
	G *graph.Graph
	// base caches the failure-free ECMP routing per distinct demand
	// matrix, keyed by content fingerprint (pointer identity would serve
	// a stale routing after an in-place matrix mutation); recomputed when
	// the matrix changes. Guarded by mu so one scheme value can serve
	// concurrent scenario evaluations.
	mu       sync.Mutex
	base     *routing.Flow
	baseFP   uint64
	haveBase bool
}

// Name implements Scheme.
func (s *CSPFDetour) Name() string { return "OSPF+CSPF-detour" }

// Loads implements Scheme.
func (s *CSPFDetour) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	fp := d.Fingerprint()
	s.mu.Lock()
	if s.base == nil || !s.haveBase || s.baseFP != fp {
		comms := routing.ODCommodities(s.G.NumNodes(), d.At)
		s.base = spf.ECMPFlow(s.G, comms, nil, spf.WeightCost(s.G))
		s.baseFP = fp
		s.haveBase = true
	}
	base := s.base
	s.mu.Unlock()
	baseLoads := base.Loads()
	loads := make([]float64, s.G.NumLinks())
	copy(loads, baseLoads)
	var lost float64
	for _, e := range failed.IDs() {
		carried := baseLoads[e]
		loads[e] = 0
		if carried == 0 {
			continue
		}
		link := s.G.Link(e)
		bypass := spf.ShortestPath(s.G, link.Src, link.Dst, failed.Alive(), spf.WeightCost(s.G))
		if bypass == nil {
			lost += carried
			continue
		}
		for _, id := range bypass {
			loads[id] += carried
		}
	}
	return loads, lost
}
