package protect

import (
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// PathSplicing models Path Splicing (Motiwala et al., SIGCOMM 2008) as
// configured in the paper's evaluation: k = 10 slices whose link weights
// are the base weights perturbed by a degree-dependent random factor with
// a = 0, b = 3 and Weight(i,j) = (degree(i)+degree(j))/degree_max. Each
// slice forwards on its own shortest-path tree; when a slice's next hop
// is failed, traffic is spliced uniformly across the other slices whose
// next hop at that node is alive.
type PathSplicing struct {
	G *graph.Graph
	// Slices is the number of routing slices (default 10).
	Slices int
	// Seed drives the deterministic weight perturbations.
	Seed int64

	// mu guards the lazily built slice weights and next-hop caches so one
	// scheme value can serve concurrent scenario evaluations.
	mu           sync.Mutex
	sliceWeights [][]float64
	// nextCache[slice][dst] is the static next-hop tree of a slice;
	// slices do not react to failures (only splicing does), so the cache
	// persists across Loads calls.
	nextCache map[int]map[graph.NodeID][]graph.LinkID
}

// Name implements Scheme.
func (s *PathSplicing) Name() string { return "PathSplice" }

// init computes the perturbed per-slice weights once.
func (s *PathSplicing) init() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sliceWeights != nil {
		return
	}
	if s.Slices == 0 {
		s.Slices = 10
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	degMax := float64(s.G.MaxDegree())
	s.sliceWeights = make([][]float64, s.Slices)
	for sl := 0; sl < s.Slices; sl++ {
		w := make([]float64, s.G.NumLinks())
		for _, l := range s.G.Links() {
			base := l.Weight
			if sl == 0 {
				// Slice 0 is the unperturbed base routing.
				w[l.ID] = base
				continue
			}
			f := (float64(s.G.Degree(l.Src)) + float64(s.G.Degree(l.Dst))) / degMax
			// a=0, b=3: multiplier uniform in [0, 3*f].
			w[l.ID] = base * (1 + 3*f*rng.Float64())
		}
		s.sliceWeights[sl] = w
	}
}

// spliceState is a fluid aggregate: flow at a node currently forwarded in
// a slice.
type spliceState struct {
	node  graph.NodeID
	slice int
}

// Loads implements Scheme.
func (s *PathSplicing) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	s.init()
	g := s.G
	loads := make([]float64, g.NumLinks())
	var lost float64
	alive := failed.Alive()

	if s.nextCache == nil {
		s.nextCache = make(map[int]map[graph.NodeID][]graph.LinkID)
	}
	// Next-hop link per (slice, dst, node): first link on the slice's
	// shortest path (computed on the full topology — slices are static;
	// only splicing reacts to failures).
	nextFor := func(sl int, dst graph.NodeID) []graph.LinkID {
		s.mu.Lock()
		defer s.mu.Unlock()
		m := s.nextCache[sl]
		if m == nil {
			m = make(map[graph.NodeID][]graph.LinkID)
			s.nextCache[sl] = m
		}
		if v, ok := m[dst]; ok {
			return v
		}
		w := s.sliceWeights[sl]
		_, next := spf.DijkstraToWithNext(g, dst, nil, func(id graph.LinkID) float64 { return w[id] })
		m[dst] = next
		return next
	}

	const eps = 1e-12
	maxHops := 3 * g.NumNodes()
	d.Pairs(func(a, b graph.NodeID, vol float64) {
		flow := map[spliceState]float64{{a, 0}: vol}
		for hop := 0; hop < maxHops && len(flow) > 0; hop++ {
			next := make(map[spliceState]float64, len(flow))
			// Visit states in a fixed order: loads[nh] += f sums floats,
			// so map iteration order would leak into the result bits.
			states := make([]spliceState, 0, len(flow))
			for st := range flow {
				states = append(states, st)
			}
			sort.Slice(states, func(i, j int) bool {
				if states[i].node != states[j].node {
					return states[i].node < states[j].node
				}
				return states[i].slice < states[j].slice
			})
			for _, st := range states {
				f := flow[st]
				if f <= eps {
					continue
				}
				nh := nextFor(st.slice, b)[st.node]
				if nh >= 0 && alive(nh) {
					v := g.Link(nh).Dst
					loads[nh] += f
					if v != b {
						next[spliceState{v, st.slice}] += f
					}
					continue
				}
				// Splice: uniform split across slices with an alive next
				// hop at this node.
				var targets []spliceState
				for sl := 0; sl < s.Slices; sl++ {
					if sl == st.slice {
						continue
					}
					h := nextFor(sl, b)[st.node]
					if h >= 0 && alive(h) {
						targets = append(targets, spliceState{st.node, sl})
					}
				}
				if len(targets) == 0 {
					lost += f
					continue
				}
				share := f / float64(len(targets))
				for _, tg := range targets {
					next[tg] += share
				}
			}
			flow = next
		}
		// Flow still circulating after the hop budget is counted as lost
		// (persistent forwarding loops drop at TTL expiry in practice).
		// Sorted for the same bit-reproducibility reason as above.
		rest := make([]spliceState, 0, len(flow))
		for st := range flow {
			rest = append(rest, st)
		}
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].node != rest[j].node {
				return rest[i].node < rest[j].node
			}
			return rest[i].slice < rest[j].slice
		})
		for _, st := range rest {
			if f := flow[st]; f > eps {
				lost += f
			}
		}
	})
	return loads, lost
}
