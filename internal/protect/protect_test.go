package protect

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// square: a=0, b=1, c=2, d=3; duplex links ab(0,1) ac(2,3) bd(4,5) cd(6,7).
func square(t testing.TB) (*graph.Graph, [4]graph.NodeID) {
	t.Helper()
	g := graph.New("square")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddDuplex(a, b, 10, 1, 1)
	g.AddDuplex(a, c, 10, 1, 1)
	g.AddDuplex(b, d, 10, 1, 1)
	g.AddDuplex(c, d, 10, 1, 1)
	return g, [4]graph.NodeID{a, b, c, d}
}

func singleOD(n int, a, b graph.NodeID, vol float64) *traffic.Matrix {
	m := traffic.NewMatrix(n)
	m.Set(a, b, vol)
	return m
}

// delivered computes the net inflow at dst for a single-OD load vector.
func delivered(g *graph.Graph, loads []float64, dst graph.NodeID) float64 {
	var in, out float64
	for _, id := range g.In(dst) {
		in += loads[id]
	}
	for _, id := range g.Out(dst) {
		out += loads[id]
	}
	return in - out
}

// conservationCheck verifies delivered + lost == demand for a single-OD
// matrix under the scheme.
func conservationCheck(t *testing.T, g *graph.Graph, s Scheme, failed graph.LinkSet, d *traffic.Matrix, dst graph.NodeID, vol float64) {
	t.Helper()
	loads, lost := s.Loads(failed, d)
	for _, e := range failed.IDs() {
		if loads[e] != 0 {
			t.Fatalf("%s: load %v on failed link %d", s.Name(), loads[e], e)
		}
	}
	for e, l := range loads {
		if l < -1e-9 {
			t.Fatalf("%s: negative load %v on link %d", s.Name(), l, e)
		}
	}
	got := delivered(g, loads, dst) + lost
	if math.Abs(got-vol) > 1e-6*vol {
		t.Fatalf("%s: delivered+lost = %v, want %v (lost=%v)", s.Name(), got, vol, lost)
	}
}

func TestOSPFReconReroutes(t *testing.T) {
	g, n := square(t)
	d := singleOD(4, n[0], n[3], 8)
	s := &OSPFRecon{G: g}

	// No failure: ECMP splits 4/4 across both two-hop paths.
	loads, lost := s.Loads(graph.LinkSet{}, d)
	if lost != 0 {
		t.Fatalf("lost = %v", lost)
	}
	if math.Abs(loads[0]-4) > 1e-9 || math.Abs(loads[2]-4) > 1e-9 {
		t.Fatalf("no-failure loads = %v", loads)
	}
	// Fail a->b: all 8 via a->c->d.
	loads, lost = s.Loads(graph.NewLinkSet(0), d)
	if lost != 0 || math.Abs(loads[2]-8) > 1e-9 || math.Abs(loads[6]-8) > 1e-9 {
		t.Fatalf("failover loads = %v lost = %v", loads, lost)
	}
	// Partition a: all lost.
	_, lost = s.Loads(graph.NewLinkSet(0, 2), d)
	if math.Abs(lost-8) > 1e-9 {
		t.Fatalf("partition lost = %v, want 8", lost)
	}
	conservationCheck(t, g, s, graph.NewLinkSet(0), d, n[3], 8)
}

func TestCSPFDetourTunnels(t *testing.T) {
	g, n := square(t)
	d := singleOD(4, n[0], n[3], 8)
	s := &CSPFDetour{G: g}

	// Fail a->b (link 0). Base ECMP put 4 on a->b; the bypass from a to b
	// is a->c->d->b (links 2, 6, 5). The 4 units keep their base path
	// continuation b->d afterwards.
	loads, lost := s.Loads(graph.NewLinkSet(0), d)
	if lost != 0 {
		t.Fatalf("lost = %v", lost)
	}
	if math.Abs(loads[2]-8) > 1e-9 { // 4 base + 4 detoured
		t.Fatalf("a->c load = %v, want 8", loads[2])
	}
	if math.Abs(loads[5]-4) > 1e-9 { // d->b carries the bypass
		t.Fatalf("d->b load = %v, want 4", loads[5])
	}
	if math.Abs(loads[4]-4) > 1e-9 { // b->d still carries base continuation
		t.Fatalf("b->d load = %v, want 4", loads[4])
	}
	conservationCheck(t, g, s, graph.NewLinkSet(0), d, n[3], 8)
}

func TestCSPFDetourUnprotectable(t *testing.T) {
	// Two parallel links only: failing both loses the bypass.
	g := graph.New("par")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 10, 1, 1)
	d := singleOD(2, a, b, 6)
	s := &CSPFDetour{G: g}
	_, lost := s.Loads(graph.NewLinkSet(0), d)
	if math.Abs(lost-6) > 1e-9 {
		t.Fatalf("lost = %v, want 6", lost)
	}
}

func TestFCPPathDragging(t *testing.T) {
	// FCP discovers the failure only when reaching it: traffic for a->d
	// goes a->b (learning nothing), then at b discovers b->d failed and
	// detours from b. OSPF recon instead routes a->c->d directly.
	g, n := square(t)
	g.SetWeight(2, 5) // make a->b->d the unique shortest path
	g.SetWeight(3, 5)
	d := singleOD(4, n[0], n[3], 8)

	fcp := &FCP{G: g}
	failed := graph.NewLinkSet(4) // b->d down
	loads, lost := fcp.Loads(failed, d)
	if lost != 0 {
		t.Fatalf("lost = %v", lost)
	}
	// Packets reach b first (a->b carries all 8), then detour b->a->c->d
	// or via the learned-snapshot shortest path from b.
	if loads[0] != 8 {
		t.Fatalf("a->b load = %v, want 8 (FCP drags to the failure)", loads[0])
	}
	conservationCheck(t, g, fcp, failed, d, n[3], 8)

	// OSPF recon avoids a->b entirely.
	recon := &OSPFRecon{G: g}
	rLoads, _ := recon.Loads(failed, d)
	if rLoads[0] != 0 {
		t.Fatalf("recon put %v on a->b", rLoads[0])
	}
}

func TestFCPNoFailureEqualsOSPF(t *testing.T) {
	g, n := square(t)
	d := singleOD(4, n[0], n[3], 8)
	fcp := &FCP{G: g}
	recon := &OSPFRecon{G: g}
	fl, _ := fcp.Loads(graph.LinkSet{}, d)
	rl, _ := recon.Loads(graph.LinkSet{}, d)
	for e := range fl {
		if math.Abs(fl[e]-rl[e]) > 1e-9 {
			t.Fatalf("link %d: FCP %v vs OSPF %v", e, fl[e], rl[e])
		}
	}
}

func TestFCPMultiFailureConservation(t *testing.T) {
	g := topo.Abilene()
	a, _ := g.NodeByName("Seattle")
	b, _ := g.NodeByName("Atlanta")
	d := singleOD(g.NumNodes(), a, b, 50)
	fcp := &FCP{G: g}
	failed := graph.NewLinkSet(0, 5, 9)
	conservationCheck(t, g, fcp, failed, d, b, 50)
}

func TestPathSplicingNoFailure(t *testing.T) {
	g, n := square(t)
	d := singleOD(4, n[0], n[3], 8)
	s := &PathSplicing{G: g, Seed: 1}
	loads, lost := s.Loads(graph.LinkSet{}, d)
	if lost != 0 {
		t.Fatalf("lost = %v", lost)
	}
	// Slice 0 is the base shortest-path tree: a single two-hop path
	// carries all traffic.
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if math.Abs(total-16) > 1e-9 { // 8 units × 2 hops
		t.Fatalf("total load = %v, want 16", total)
	}
	conservationCheck(t, g, s, graph.LinkSet{}, d, n[3], 8)
}

func TestPathSplicingDetours(t *testing.T) {
	g, n := square(t)
	d := singleOD(4, n[0], n[3], 8)
	s := &PathSplicing{G: g, Seed: 1}
	// Fail both directions of the slice-0 next hop out of a; with 10
	// slices over a 2-exit node, some slice detours via the other exit.
	loads0, _ := s.Loads(graph.LinkSet{}, d)
	var firstHop graph.LinkID = 0
	if loads0[2] > loads0[0] {
		firstHop = 2
	}
	failed := graph.NewLinkSet(firstHop, g.Link(firstHop).Reverse)
	conservationCheck(t, g, s, failed, d, n[3], 8)
	loads, lost := s.Loads(failed, d)
	if lost > 8 {
		t.Fatalf("lost = %v", lost)
	}
	if delivered(g, loads, n[3])+lost < 8-1e-6 {
		t.Fatalf("traffic vanished")
	}
}

func TestOptDetourBeatsCSPF(t *testing.T) {
	// On Abilene with a gravity matrix, the optimal detour's bottleneck
	// can never exceed the single-path CSPF bypass bottleneck.
	g := topo.Abilene()
	d := traffic.Gravity(g, 300, 2)
	cspf := &CSPFDetour{G: g}
	opt := &OptDetour{G: g, Iterations: 120}
	for _, e := range []graph.LinkID{0, 7, 13} {
		failed := graph.NewLinkSet(e)
		cl, _ := cspf.Loads(failed, d)
		ol, _ := opt.Loads(failed, d)
		cb := Bottleneck(g, failed, cl)
		ob := Bottleneck(g, failed, ol)
		if ob > cb*1.02+1e-9 {
			t.Fatalf("link %d: opt bottleneck %v worse than CSPF %v", e, ob, cb)
		}
	}
}

func TestOptimalLowerBound(t *testing.T) {
	// Optimal rerouting is a lower bound for every scheme (small solver
	// slack allowed).
	g := topo.Abilene()
	d := traffic.Gravity(g, 300, 2)
	failed := graph.NewLinkSet(3)
	schemes := []Scheme{
		&OSPFRecon{G: g},
		&CSPFDetour{G: g},
		&FCP{G: g},
		&PathSplicing{G: g, Seed: 1},
		&OptDetour{G: g, Iterations: 150},
	}
	optimal := &Optimal{G: g, Iterations: 300}
	ol, _ := optimal.Loads(failed, d)
	ob := Bottleneck(g, failed, ol)
	for _, s := range schemes {
		l, _ := s.Loads(failed, d)
		b := Bottleneck(g, failed, l)
		if b < ob*0.98-1e-9 {
			t.Fatalf("%s bottleneck %v below optimal %v", s.Name(), b, ob)
		}
	}
}

func TestBottleneckIgnoresFailed(t *testing.T) {
	g, _ := square(t)
	loads := make([]float64, g.NumLinks())
	loads[0] = 100 // would be utilization 10
	failed := graph.NewLinkSet(0)
	if b := Bottleneck(g, failed, loads); b != 0 {
		t.Fatalf("Bottleneck = %v, want 0", b)
	}
}

func TestSchemeNames(t *testing.T) {
	g, _ := square(t)
	for _, tc := range []struct {
		s    Scheme
		want string
	}{
		{&OSPFRecon{G: g}, "OSPF+recon"},
		{&CSPFDetour{G: g}, "OSPF+CSPF-detour"},
		{&FCP{G: g}, "FCP"},
		{&PathSplicing{G: g}, "PathSplice"},
		{&OptDetour{G: g}, "OSPF+opt"},
		{&Optimal{G: g}, "optimal"},
	} {
		if tc.s.Name() != tc.want {
			t.Fatalf("Name = %q, want %q", tc.s.Name(), tc.want)
		}
	}
}
