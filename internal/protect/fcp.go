package protect

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// FCP models Failure-Carrying Packets (Lakshminarayanan et al., SIGCOMM
// 2007) at the fluid level: a packet follows the OSPF shortest paths of
// its current topology snapshot; when its next hop is a failed link, the
// packet learns that link (carrying it in the header) and continues on
// the shortest paths of the reduced snapshot. Flow states are tracked as
// (node, learned-failure-subset) aggregates, so the model is exact for
// the per-packet learning dynamics.
type FCP struct {
	G *graph.Graph
}

// Name implements Scheme.
func (s *FCP) Name() string { return "FCP" }

// fcpKey identifies a flow aggregate: at node, knowing mask of failed
// links (indexed within the failure set).
type fcpKey struct {
	node graph.NodeID
	mask uint32
}

// Loads implements Scheme.
func (s *FCP) Loads(failed graph.LinkSet, d *traffic.Matrix) ([]float64, float64) {
	g := s.G
	nL := g.NumLinks()
	loads := make([]float64, nL)
	var lost float64

	fids := failed.IDs()
	if len(fids) > 20 {
		panic("protect: FCP supports at most 20 simultaneous failures")
	}
	idxOf := make(map[graph.LinkID]int, len(fids))
	for i, id := range fids {
		idxOf[id] = i
	}
	fullMask := uint32(1)<<uint(len(fids)) - 1

	// Per (dst, mask): ECMP next-hop sets from a reverse Dijkstra on the
	// topology minus learned links. Cached across OD pairs.
	type dagKey struct {
		dst  graph.NodeID
		mask uint32
	}
	dagCache := map[dagKey][]float64{} // distance-to-dst vectors
	distFor := func(dst graph.NodeID, mask uint32) []float64 {
		k := dagKey{dst, mask}
		if v, ok := dagCache[k]; ok {
			return v
		}
		alive := func(id graph.LinkID) bool {
			i, isFailed := idxOf[id]
			return !isFailed || mask&(1<<uint(i)) == 0
		}
		v := spf.DijkstraTo(g, dst, alive, spf.WeightCost(g))
		dagCache[k] = v
		return v
	}

	const eps = 1e-12
	d.Pairs(func(a, b graph.NodeID, vol float64) {
		// Fluid propagation over (node, mask) states. Masks only grow, so
		// processing states by increasing mask popcount and, within a
		// mask, by decreasing distance-to-dst terminates.
		flow := map[fcpKey]float64{{a, 0}: vol}
		for mask := uint32(0); mask <= fullMask; mask++ {
			distTo := distFor(b, mask)
			// Same-mask propagation follows the ECMP DAG, which strictly
			// decreases distance-to-destination; processing every node in
			// decreasing-distance order therefore visits each aggregate
			// after all its upstream contributions have arrived.
			// Unreachable nodes are processed first (their flow drops).
			states := make([]fcpKey, 0, g.NumNodes())
			for n := 0; n < g.NumNodes(); n++ {
				states = append(states, fcpKey{graph.NodeID(n), mask})
			}
			sort.Slice(states, func(i, j int) bool {
				di, dj := distTo[states[i].node], distTo[states[j].node]
				if math.IsInf(di, 1) != math.IsInf(dj, 1) {
					return math.IsInf(di, 1)
				}
				if di != dj {
					return di > dj
				}
				return states[i].node < states[j].node
			})
			for _, st := range states {
				f := flow[st]
				if f <= eps || st.node == b {
					continue
				}
				delete(flow, st)
				if math.IsInf(distTo[st.node], 1) {
					// Destination unreachable in this snapshot: dropped.
					lost += f
					continue
				}
				// ECMP next hops in the snapshot (failed links the packet
				// has not learned yet still look usable).
				hops := ecmpHops(g, st.node, distTo, mask, idxOf)
				if len(hops) == 0 {
					lost += f
					continue
				}
				share := f / float64(len(hops))
				for _, id := range hops {
					if fi, isFailed := idxOf[id]; isFailed && mask&(1<<uint(fi)) == 0 {
						// Packet hits the failed link, learns it, stays at
						// the node with a bigger mask.
						nk := fcpKey{st.node, mask | 1<<uint(fi)}
						flow[nk] += share
						continue
					}
					loads[id] += share
					nk := fcpKey{g.Link(id).Dst, mask}
					if nk.node == b {
						continue // delivered
					}
					flow[nk] += share
				}
			}
		}
		// Whatever flow remains in non-final states was delivered or
		// dropped above; leftover at dst keys is delivered.
	})
	return loads, lost
}

// ecmpHops returns the ECMP next-hop links at node u toward the
// destination of distTo, over the snapshot where only links learned in
// mask are removed.
func ecmpHops(g *graph.Graph, u graph.NodeID, distTo []float64, mask uint32, idxOf map[graph.LinkID]int) []graph.LinkID {
	const eps = 1e-9
	var hops []graph.LinkID
	for _, id := range g.Out(u) {
		if fi, isFailed := idxOf[id]; isFailed && mask&(1<<uint(fi)) != 0 {
			continue // learned: excluded from the snapshot
		}
		v := g.Link(id).Dst
		if math.IsInf(distTo[v], 1) {
			continue
		}
		if math.Abs(g.Link(id).Weight+distTo[v]-distTo[u]) < eps*(1+distTo[u]) {
			hops = append(hops, id)
		}
	}
	return hops
}
