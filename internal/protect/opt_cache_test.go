package protect

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func ringDemand(g *graph.Graph, amount float64) *traffic.Matrix {
	d := traffic.NewMatrix(g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		d.Set(graph.NodeID(n), graph.NodeID((n+1)%g.NumNodes()), amount)
	}
	return d
}

// TestOptDetourCacheTracksMatrixContent pins the fixed cache-keying bug:
// mutating the same *Matrix in place must invalidate the cached base
// routing (pointer identity kept serving the stale one).
func TestOptDetourCacheTracksMatrixContent(t *testing.T) {
	g := topo.Abilene()
	s := &OptDetour{G: g}
	d := ringDemand(g, 10)
	failed := graph.NewLinkSet(0)

	loads1, _ := s.Loads(failed, d)
	// Double every demand in place: the same pointer now holds different
	// contents, so the base routing (and thus every load) must double.
	d.Scale(2)
	loads2, _ := s.Loads(failed, d)
	for e := range loads1 {
		if math.Abs(loads2[e]-2*loads1[e]) > 1e-6*(1+loads1[e]) {
			t.Fatalf("link %d: loads %v -> %v, want exact doubling (stale cache?)", e, loads1[e], loads2[e])
		}
	}
}

// TestOptDetourBaseFlowIsClone pins the aliasing fix: the flow returned
// by baseFlow must be independent of the internal cache.
func TestOptDetourBaseFlowIsClone(t *testing.T) {
	g := topo.Abilene()
	s := &OptDetour{G: g}
	d := ringDemand(g, 10)

	f1 := s.baseFlow(d)
	for k := range f1.Frac {
		for e := range f1.Frac[k] {
			f1.Frac[k][e] = -1 // vandalize the returned copy
		}
	}
	f2 := s.baseFlow(d)
	for k := range f2.Frac {
		for e := range f2.Frac[k] {
			if f2.Frac[k][e] == -1 {
				t.Fatalf("cache aliased: mutation of a returned flow leaked into comm %d link %d", k, e)
			}
		}
	}
}

// TestOptimalExactTracksIterative checks the exact LP denominator
// against Frank–Wolfe: the exact optimum can only be at or below the
// iterative solver's bottleneck, and close on a well-conditioned
// instance.
func TestOptimalExactTracksIterative(t *testing.T) {
	g := topo.Abilene()
	d := ringDemand(g, 40)
	failed := graph.NewLinkSet(2)

	fw := &Optimal{G: g, Iterations: 400}
	ex := &Optimal{G: g, Exact: true}
	fwLoads, _ := fw.Loads(failed, d)
	exLoads, _ := ex.Loads(failed, d)
	fwB := Bottleneck(g, failed, fwLoads)
	exB := Bottleneck(g, failed, exLoads)
	if exB > fwB*(1+1e-6) {
		t.Fatalf("exact bottleneck %v above iterative %v", exB, fwB)
	}
	if fwB > exB*1.2 {
		t.Fatalf("iterative bottleneck %v implausibly far above exact %v", fwB, exB)
	}
	// A second scenario must reuse the published warm basis and agree
	// with a cold exact solve.
	failed2 := graph.NewLinkSet(5)
	warmLoads, _ := ex.Loads(failed2, d)
	cold := &Optimal{G: g, Exact: true}
	coldLoads, _ := cold.Loads(failed2, d)
	if w, c := Bottleneck(g, failed2, warmLoads), Bottleneck(g, failed2, coldLoads); math.Abs(w-c) > 1e-6*(1+c) {
		t.Fatalf("warm bottleneck %v != cold %v", w, c)
	}
}

// TestOptDetourExactMatchesIterativeDirection sanity-checks the exact
// detour path: it must produce a no-worse bottleneck than Frank–Wolfe on
// the same scenario.
func TestOptDetourExactMatchesIterativeDirection(t *testing.T) {
	g := topo.Abilene()
	d := ringDemand(g, 40)
	failed := graph.NewLinkSet(3)

	fw := &OptDetour{G: g, Iterations: 400}
	ex := &OptDetour{G: g, Exact: true}
	fwLoads, fwLost := fw.Loads(failed, d)
	exLoads, exLost := ex.Loads(failed, d)
	if fwLost != exLost {
		t.Fatalf("lost demand differs: fw %v, exact %v", fwLost, exLost)
	}
	fwB := Bottleneck(g, failed, fwLoads)
	exB := Bottleneck(g, failed, exLoads)
	if exB > fwB*(1+1e-6) {
		t.Fatalf("exact detour bottleneck %v above iterative %v", exB, fwB)
	}
}
