package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// ring5 builds a 5-node ring with two chords, generous capacities.
func ring5(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New("ring5")
	n := make([]graph.NodeID, 5)
	names := []string{"a", "b", "c", "d", "e"}
	for i, s := range names {
		n[i] = g.AddNode(s)
	}
	for i := 0; i < 5; i++ {
		g.AddDuplex(n[i], n[(i+1)%5], 100, 1, 1)
	}
	g.AddDuplex(n[0], n[2], 100, 1, 1)
	g.AddDuplex(n[1], n[3], 100, 1, 1)
	return g
}

func ring5Demand(g *graph.Graph, total float64) *traffic.Matrix {
	return traffic.Gravity(g, total, 11)
}

func validateProt(t *testing.T, g *graph.Graph, prot [][]float64) {
	t.Helper()
	f := routing.NewFlow(g, routing.LinkCommodities(g))
	for l := range prot {
		copy(f.Frac[l], prot[l])
	}
	if err := f.Validate(1e-6); err != nil {
		t.Fatalf("protection routing invalid: %v", err)
	}
}

func TestLPParallelLinksOptimal(t *testing.T) {
	// The §3.3 network with demand 20 from i to j. R3 is optimal for
	// parallel links (Proposition 1); the joint optimum is r and p both
	// proportional to capacity: MLU = 20/100 + 40/100 = 0.6.
	g := graph.New("par4")
	i := g.AddNode("i")
	j := g.AddNode("j")
	g.AddLink(i, j, 10, 1, 1)
	g.AddLink(i, j, 20, 1, 1)
	g.AddLink(i, j, 30, 1, 1)
	g.AddLink(i, j, 40, 1, 1)
	d := traffic.NewMatrix(2)
	d.Set(i, j, 20)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.MLU-0.6) > 1e-6 {
		t.Fatalf("LP MLU = %v, want 0.6", plan.MLU)
	}
	validateProt(t, g, plan.Prot)
	if err := plan.Base.Validate(1e-6); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	// Evaluate must agree with the LP objective.
	if ev := plan.Evaluate(); math.Abs(ev-plan.MLU) > 1e-6 {
		t.Fatalf("Evaluate = %v, MLU = %v", ev, plan.MLU)
	}
}

// enumerate k-subsets of links and verify the Theorem 1 guarantee.
func checkTheorem1(t *testing.T, plan *Plan, maxFail int) {
	t.Helper()
	if !plan.CongestionFree() {
		t.Fatalf("plan MLU %v > 1: pick a smaller demand for this test", plan.MLU)
	}
	g := plan.G
	nL := g.NumLinks()
	var rec func(start int, chosen []graph.LinkID)
	rec = func(start int, chosen []graph.LinkID) {
		if len(chosen) > 0 {
			st := NewState(plan)
			if err := st.FailAll(chosen...); err != nil {
				t.Fatal(err)
			}
			if mlu := st.MLU(); mlu > plan.MLU+1e-6 {
				t.Fatalf("failures %v: MLU %v exceeds plan MLU %v", chosen, mlu, plan.MLU)
			}
		}
		if len(chosen) == maxFail {
			return
		}
		for e := start; e < nL; e++ {
			rec(e+1, append(chosen, graph.LinkID(e)))
		}
	}
	rec(0, nil)
}

func TestTheorem1SingleFailureLP(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 120)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	validateProt(t, g, plan.Prot)
	checkTheorem1(t, plan, 1)
}

// mesh6 builds a 6-node ring plus all three diagonals: minimum degree 3,
// so two arbitrary link failures can never partition it (a requirement
// for an F=2 congestion-free plan to exist at all).
func mesh6(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New("mesh6")
	n := make([]graph.NodeID, 6)
	for i := 0; i < 6; i++ {
		n[i] = g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < 6; i++ {
		g.AddDuplex(n[i], n[(i+1)%6], 100, 1, 1)
	}
	for i := 0; i < 3; i++ {
		g.AddDuplex(n[i], n[i+3], 100, 1, 1)
	}
	return g
}

func TestTheorem1DoubleFailureLP(t *testing.T) {
	g := mesh6(t)
	d := traffic.Gravity(g, 40, 11)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 2}, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	checkTheorem1(t, plan, 2)
}

func TestTheorem1SingleFailureFW(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 120)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	validateProt(t, g, plan.Prot)
	if err := plan.Base.Validate(1e-6); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	checkTheorem1(t, plan, 1)
}

func TestFWTracksLP(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 120)
	exact, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 250})
	if err != nil {
		t.Fatal(err)
	}
	if approx.MLU < exact.MLU-1e-6 {
		t.Fatalf("FW (%v) beat exact LP (%v): LP must be wrong", approx.MLU, exact.MLU)
	}
	if approx.MLU > exact.MLU*1.12 {
		t.Fatalf("FW MLU %v too far above LP %v", approx.MLU, exact.MLU)
	}
}

func TestFixedBaseRouting(t *testing.T) {
	// OSPF+R3: base fixed to ECMP shortest paths; only p is optimized.
	g := ring5(t)
	d := ring5Demand(g, 120)
	comms := routing.ODCommodities(g.NumNodes(), d.At)
	ospf := spf.ECMPFlow(g, comms, nil, spf.WeightCost(g))
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, BaseRouting: ospf, Iterations: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Base must be exactly the OSPF flow.
	for k := range comms {
		for e := 0; e < g.NumLinks(); e++ {
			if math.Abs(plan.Base.Frac[k][e]-ospf.Frac[k][e]) > 1e-9 {
				t.Fatalf("base routing was modified at commodity %d link %d", k, e)
			}
		}
	}
	// Joint optimization can only be better or equal.
	joint, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	if joint.MLU > plan.MLU+0.02 {
		t.Fatalf("joint (%v) worse than fixed-base (%v)", joint.MLU, plan.MLU)
	}
	checkTheorem1(t, plan, 1)
}

func TestPenaltyEnvelopeFW(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 200)
	beta := 1.1
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 200, PenaltyEnvelope: beta,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The normal-case MLU must stay within beta of optimal (with slack
	// for the iterative solvers on both sides).
	opt, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 0}, Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NormalMLU > beta*opt.NormalMLU*1.1 {
		t.Fatalf("normal MLU %v breaches envelope %v × optimal %v",
			plan.NormalMLU, beta, opt.NormalMLU)
	}
}

func TestPenaltyEnvelopeLP(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 200)
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Solver: SolverLP, PenaltyEnvelope: 1.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	noEnv, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	// The envelope restricts the feasible set, so the protected MLU can
	// only get worse (or equal).
	if plan.MLU < noEnv.MLU-1e-6 {
		t.Fatalf("envelope improved protected MLU: %v < %v", plan.MLU, noEnv.MLU)
	}
}

func TestDelayEnvelopeLP(t *testing.T) {
	// With a tight delay envelope the base routing must stay near the
	// direct (min-delay) paths.
	g := ring5(t)
	d := ring5Demand(g, 60)
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Solver: SolverLP, DelayEnvelope: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range plan.Base.Comms {
		dist := spf.DijkstraTo(g, c.Dst, nil, spf.DelayCost(g))
		if got := plan.Base.AvgPathDelay(k); got > dist[c.Src]*1.0+1e-6 {
			t.Fatalf("commodity %d delay %v exceeds bound %v", k, got, dist[c.Src])
		}
	}
}

func TestPrecomputeVariations(t *testing.T) {
	g := ring5(t)
	d1 := ring5Demand(g, 100)
	d2 := ring5Demand(g, 100)
	// Make d2 differ: swap intensity toward one pair.
	d2.Set(0, 3, d2.At(0, 3)*3)
	plan, err := PrecomputeVariations(g, []*traffic.Matrix{d1, d2}, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CongestionFree() {
		t.Fatalf("variation plan MLU = %v", plan.MLU)
	}
	// The plan must cover both matrices: per-matrix base load + virtual
	// load within MLU.
	for _, d := range []*traffic.Matrix{d1, d2} {
		fl := plan.Base.Clone()
		fl.SetDemands(d.At)
		loads := fl.Loads()
		for e := 0; e < g.NumLinks(); e++ {
			u := (loads[e] + plan.VirtualLoad(graph.LinkID(e))) / g.Link(graph.LinkID(e)).Capacity
			if u > plan.MLU+1e-6 {
				t.Fatalf("matrix not covered: link %d utilization %v > %v", e, u, plan.MLU)
			}
		}
	}
}

func TestPrecomputePrioritized(t *testing.T) {
	g := ring5(t)
	total := ring5Demand(g, 150)
	classes := traffic.SplitClasses(total, 0.15, 0.25, 9)
	plan, err := PrecomputePrioritized(g, []Priority{
		{Demand: classes[traffic.TPRT], F: 3},
		{Demand: classes[traffic.TPP], F: 2},
		{Demand: classes[traffic.IP], F: 1},
	}, Config{Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Model.MaxFailures() != 3 {
		t.Fatalf("plan model covers %d failures, want 3", plan.Model.MaxFailures())
	}
	// The TPRT-only demand with F=3 virtual load must fit within MLU.
	tprt := plan.Base.Clone()
	tprt.SetDemands(classes[traffic.TPRT].At)
	loads := tprt.Loads()
	m3 := ArbitraryFailures{F: 3}
	nL := g.NumLinks()
	for e := 0; e < nL; e++ {
		v := make([]float64, nL)
		for l := 0; l < nL; l++ {
			v[l] = g.Link(graph.LinkID(l)).Capacity * plan.Prot[l][e]
		}
		u := (loads[e] + m3.WorstLoad(v)) / g.Link(graph.LinkID(e)).Capacity
		if u > plan.MLU+1e-6 {
			t.Fatalf("TPRT requirement violated at link %d: %v > %v", e, u, plan.MLU)
		}
	}
}

func TestPrecomputeErrors(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 10)
	if _, err := PrecomputeVariations(g, nil, Config{}); err == nil {
		t.Fatalf("empty matrices accepted")
	}
	if _, err := PrecomputePrioritized(g, nil, Config{}); err == nil {
		t.Fatalf("empty classes accepted")
	}
	if _, err := PrecomputePrioritized(g, []Priority{{Demand: d, F: 1}}, Config{Solver: SolverLP}); err == nil {
		t.Fatalf("prioritized LP accepted")
	}
	if _, err := Precompute(g, d, Config{Solver: SolverLP, Model: GroupFailures{K: 1}}); err == nil {
		t.Fatalf("LP with group model accepted")
	}
}

func TestGroupFailureModelPlan(t *testing.T) {
	// SRLG-protected plan: the duplex pair (0,1) fails together.
	g := ring5(t)
	g.AddSRLG(0, 1)
	g.AddSRLG(2, 3)
	g.AddMLG(4, 5)
	d := ring5Demand(g, 100)
	model := ModelFromGraph(g, 1)
	plan, err := Precompute(g, d, Config{Model: model, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CongestionFree() {
		t.Fatalf("SRLG plan MLU = %v", plan.MLU)
	}
	// Failing a whole SRLG plus the MLG must stay within the plan MLU.
	st := NewState(plan)
	if err := st.FailAll(0, 1, 4, 5); err != nil {
		t.Fatal(err)
	}
	if mlu := st.MLU(); mlu > plan.MLU+1e-6 {
		t.Fatalf("SRLG+MLG failure MLU %v > plan %v", mlu, plan.MLU)
	}
}
