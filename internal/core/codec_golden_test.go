package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the codec golden fixtures in testdata/")

// goldenPlans builds the two fixture plans — one per failure-model branch
// of the codec — deterministically (fixed topology, demand seed and serial
// solver), so the checked-in bytes are reproducible.
func goldenPlans(t *testing.T) map[string]*Plan {
	t.Helper()
	plans := make(map[string]*Plan)

	g1 := ring5(t)
	p1, err := Precompute(g1, ring5Demand(g1, 20), Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plans["plan_arbitrary.json"] = p1

	g2 := ring5(t)
	// Group the ring's duplex pairs into SRLGs so the "group" wire branch
	// carries real group lists.
	for _, l := range g2.Links() {
		if l.Reverse > l.ID {
			g2.AddSRLG(l.ID, l.Reverse)
		}
	}
	p2, err := Precompute(g2, ring5Demand(g2, 20), Config{
		Model: ModelFromGraph(g2, 1), Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plans["plan_group.json"] = p2

	return plans
}

// TestCodecGoldenRoundTrip locks the wire format: each checked-in fixture
// must decode against its topology and re-encode to byte-identical JSON.
// A diff here means the format changed — bump planWireVersion and
// regenerate with -update-golden only if the break is intentional.
func TestCodecGoldenRoundTrip(t *testing.T) {
	plans := goldenPlans(t)
	for name, plan := range plans {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			var buf bytes.Buffer
			if err := plan.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, buf.Len())
			continue
		}
		t.Run(name, func(t *testing.T) {
			fixture, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update-golden): %v", err)
			}
			decoded, err := DecodePlan(bytes.NewReader(fixture), plan.G)
			if err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			var reenc bytes.Buffer
			if err := decoded.Encode(&reenc); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(fixture, reenc.Bytes()) {
				t.Fatalf("fixture is not a codec fixed point:\nfixture:   %d bytes\nre-encode: %d bytes", len(fixture), reenc.Len())
			}
			// The fixture must also match today's solver output: plans are
			// deterministic, so drift means either solver or codec changed.
			var fresh bytes.Buffer
			if err := plan.Encode(&fresh); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fixture, fresh.Bytes()) {
				t.Fatal("freshly computed plan no longer matches the checked-in fixture")
			}
		})
	}
}

// TestCodecRejectsMismatchedTopology guards the decode-time binding
// checks: a plan must not attach to a topology with a different shape.
func TestCodecRejectsMismatchedTopology(t *testing.T) {
	plans := goldenPlans(t)
	plan := plans["plan_arbitrary.json"]
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := mesh6(t)
	if _, err := DecodePlan(bytes.NewReader(buf.Bytes()), wrong); err == nil {
		t.Fatal("decode against mismatched topology succeeded")
	}
	renamed := ring5(t)
	renamed.Name = "other"
	if _, err := DecodePlan(bytes.NewReader(buf.Bytes()), renamed); err == nil {
		t.Fatal("decode against renamed topology succeeded")
	}
	var g *graph.Graph = ring5(t)
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := DecodePlan(bytes.NewReader(truncated), g); err == nil {
		t.Fatal("decode of truncated plan succeeded")
	}
}
