package core

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/graph"
)

// TestScenarioByteIdentity is the hard-failure regression gate of the
// generalized scenario model: a degradation envelope with α = 0 (β = 1)
// and an integer budget IS the classic X_F model, and must produce a plan
// byte-identical to the golden fixture the classic config wrote — the
// canonicalization in PrecomputeVariations, not a near-miss re-solve.
func TestScenarioByteIdentity(t *testing.T) {
	golden, err := os.ReadFile("testdata/plan_arbitrary.json")
	if err != nil {
		t.Fatal(err)
	}
	g := ring5(t)
	d := ring5Demand(g, 20)
	plan, err := Precompute(g, d, Config{
		Model:      DegradationModel{Beta: 1, Budget: 1},
		Iterations: 40,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("alpha=0 degradation plan differs from classic golden (%d vs %d bytes)",
			len(got), len(golden))
	}
	// The canonicalized plan must also round-trip with the classic model
	// type, so decoders never see a "degradation" wire model for it.
	if _, ok := plan.Model.(ArbitraryFailures); !ok {
		t.Fatalf("canonicalized plan model is %T, want ArbitraryFailures", plan.Model)
	}
}

// TestScenarioByteIdentityBudget2 checks the canonicalization at a higher
// integer budget against a freshly solved classic config (no golden needed
// at F=2): both paths must emit identical bytes.
func TestScenarioByteIdentityBudget2(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	classic, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 2}, Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	envelope, err := Precompute(g, d, Config{
		Model: DegradationModel{Beta: 1, Budget: 2}, Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := classic.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := envelope.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("beta=1 budget=2 plan differs from ArbitraryFailures{F:2} plan")
	}
}

// TestVerifyScenariosKinds drives VerifyScenarios over a mixed population
// and checks the per-kind accounting and worst-case tracking.
func TestVerifyScenariosKinds(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var scs []Scenario
	scs = append(scs, EnumerateFailures(g.NumLinks(), 1, 0)...)
	nFail := len(scs)
	scs = append(scs, DegradationScenario(LinkDegradation{Link: 0, Frac: 0.5}))
	scs = append(scs, NodeScenarios(g)...)
	scs = append(scs, Scenario{Kind: ScenarioSurge, Node: -1, SurgeScale: 1.2})

	rep, err := plan.VerifyScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != len(scs) {
		t.Fatalf("Scenarios = %d, want %d", rep.Scenarios, len(scs))
	}
	if rep.ByKind[ScenarioFailure] != nFail {
		t.Fatalf("failure count = %d, want %d", rep.ByKind[ScenarioFailure], nFail)
	}
	if rep.ByKind[ScenarioDegradation] != 1 {
		t.Fatalf("degradation count = %d, want 1", rep.ByKind[ScenarioDegradation])
	}
	if rep.ByKind[ScenarioNode] != g.NumNodes() {
		t.Fatalf("node count = %d, want %d", rep.ByKind[ScenarioNode], g.NumNodes())
	}
	if rep.ByKind[ScenarioSurge] != 1 {
		t.Fatalf("surge count = %d, want 1", rep.ByKind[ScenarioSurge])
	}
	if rep.WorstMLU <= 0 {
		t.Fatalf("WorstMLU = %v", rep.WorstMLU)
	}
	if rep.Worst.Describe() == "" {
		t.Fatalf("worst scenario not recorded")
	}
	// Node outages on ring5 isolate a router's demand: partitions must be
	// detected, and they come from the node scenarios, not single links.
	if rep.Partitions == 0 {
		t.Fatalf("node outages should partition demand on ring5")
	}
}

// TestVerifyClassicUnchanged: the Scenario-based Verify must report
// exactly what the pre-scenario implementation did for plain failure
// enumeration — same scenario count, same DFS worst-case bookkeeping.
func TestVerifyClassicUnchanged(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Verify(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != g.NumLinks() {
		t.Fatalf("Scenarios = %d, want %d", rep.Scenarios, g.NumLinks())
	}
	if rep.ByKind[ScenarioFailure] != g.NumLinks() {
		t.Fatalf("ByKind[failure] = %d, want %d", rep.ByKind[ScenarioFailure], g.NumLinks())
	}
	if rep.WorstScenario.Len() == 0 {
		t.Fatalf("WorstScenario empty")
	}
	if !rep.Worst.Failed.Equal(rep.WorstScenario) {
		t.Fatalf("Worst.Failed %v != WorstScenario %v",
			rep.Worst.Failed.IDs(), rep.WorstScenario.IDs())
	}
}

// TestVerifyScenariosDegradationBound: a plan certified against the
// degradation envelope keeps every in-envelope replay under its MLU.
func TestVerifyScenariosDegradationBound(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	model := DegradationModel{Beta: 0.5, Budget: 1}
	plan, err := Precompute(g, d, Config{Model: model, Iterations: 60, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CongestionFree() {
		t.Skipf("plan MLU %v > 1; envelope soundness needs a congestion-free plan", plan.MLU)
	}
	scs := SampleDegradations(g, model, 64, 5)
	scs = append(scs, EnumerateFailures(g.NumLinks(), 1, 0)...)
	rep, err := plan.VerifyScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d violations; worst %v at %s (certified %v)",
			rep.Violations, rep.WorstMLU, rep.Worst.Describe(), plan.MLU)
	}
}

// TestApplyScenarioRejectsComposition: degrade-then-fail (or the reverse)
// on one link is outside the envelope and must be refused atomically.
func TestApplyScenarioRejectsComposition(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 40, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(plan)
	bad := Scenario{
		Failed:   graph.NewLinkSet(0),
		Node:     -1,
		Degraded: []LinkDegradation{{Link: 0, Frac: 0.5}},
	}
	if err := st.ApplyScenario(bad); err == nil {
		t.Fatalf("fail+degrade composition on one link accepted")
	}
	st2 := NewState(plan)
	if err := st2.Degrade(3, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := st2.Fail(3); err == nil {
		t.Fatalf("failing a degraded link accepted")
	}
	if err := st2.Degrade(3, 0.2); err == nil {
		t.Fatalf("degrading a link twice accepted")
	}
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if err := st2.Degrade(4, frac); err == nil {
			t.Fatalf("Degrade accepted frac %v", frac)
		}
	}
}
