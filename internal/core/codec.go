package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Plan wire format: the paper's architecture (§4.3) has a central server
// precompute (r, p) and distribute them to routers; this codec is that
// wire format. Fractions are stored sparsely (only nonzero allocations),
// so even the largest topology's plan stays small.

// planWireVersion guards against format drift.
const planWireVersion = 1

type wireEntry struct {
	Link graph.LinkID `json:"l"`
	Frac float64      `json:"f"`
}

type wireCommodity struct {
	Src    graph.NodeID `json:"src"`
	Dst    graph.NodeID `json:"dst"`
	Demand float64      `json:"demand"`
	Alloc  []wireEntry  `json:"alloc"`
}

type wireModel struct {
	Type  string           `json:"type"` // "arbitrary", "group" or "degradation"
	F     int              `json:"f,omitempty"`
	K     int              `json:"k,omitempty"`
	SRLGs [][]graph.LinkID `json:"srlgs,omitempty"`
	MLGs  [][]graph.LinkID `json:"mlgs,omitempty"`
	// Degradation-envelope parameters; every field is omitempty, so
	// classic plans serialize to the exact pre-degradation bytes.
	Beta     float64   `json:"beta,omitempty"`
	Budget   float64   `json:"budget,omitempty"`
	LinkBeta []float64 `json:"link_beta,omitempty"`
}

type wirePlan struct {
	Version   int             `json:"version"`
	Topology  string          `json:"topology"`
	Nodes     int             `json:"nodes"`
	Links     int             `json:"links"`
	Model     wireModel       `json:"model"`
	MLU       float64         `json:"mlu"`
	NormalMLU float64         `json:"normal_mlu"`
	Base      []wireCommodity `json:"base"`
	// Prot[l] holds link l's protection allocations.
	Prot [][]wireEntry `json:"prot"`
}

// Encode writes the plan in its JSON wire format.
func (p *Plan) Encode(w io.Writer) error {
	wp := wirePlan{
		Version:   planWireVersion,
		Topology:  p.G.Name,
		Nodes:     p.G.NumNodes(),
		Links:     p.G.NumLinks(),
		MLU:       p.MLU,
		NormalMLU: p.NormalMLU,
	}
	switch m := p.Model.(type) {
	case ArbitraryFailures:
		wp.Model = wireModel{Type: "arbitrary", F: m.F}
	case GroupFailures:
		wp.Model = wireModel{Type: "group", K: m.K, SRLGs: m.SRLGs, MLGs: m.MLGs}
	case DegradationModel:
		wp.Model = wireModel{Type: "degradation", Beta: m.Beta, Budget: m.Budget, LinkBeta: m.LinkBeta}
	default:
		return fmt.Errorf("core: cannot encode failure model %T", p.Model)
	}
	for k, c := range p.Base.Comms {
		wc := wireCommodity{Src: c.Src, Dst: c.Dst, Demand: c.Demand}
		for e, v := range p.Base.Frac[k] {
			if v > 1e-12 {
				wc.Alloc = append(wc.Alloc, wireEntry{Link: graph.LinkID(e), Frac: v})
			}
		}
		wp.Base = append(wp.Base, wc)
	}
	wp.Prot = make([][]wireEntry, len(p.Prot))
	for l := range p.Prot {
		for e, v := range p.Prot[l] {
			if v > 1e-12 {
				wp.Prot[l] = append(wp.Prot[l], wireEntry{Link: graph.LinkID(e), Frac: v})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&wp)
}

// EncodeBytes returns the plan's JSON wire format as a byte slice — the
// exact bytes Encode would write. The control plane serves and caches
// these bytes directly, so a plan is distributed byte-identically however
// many times it is requested.
func (p *Plan) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WireFingerprint returns an FNV-1a content hash of the plan's wire
// encoding. Two plans share a fingerprint iff they serialize to the same
// bytes, which is the identity the control plane's revision log and the
// byte-identity tests care about.
func (p *Plan) WireFingerprint() (uint64, error) {
	b, err := p.EncodeBytes()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64(), nil
}

// DecodePlan reads a plan from its wire format and binds it to g, which
// must be the same topology the plan was computed for (name, node count
// and link count are verified; allocations are range-checked).
func DecodePlan(r io.Reader, g *graph.Graph) (*Plan, error) {
	var wp wirePlan
	if err := json.NewDecoder(r).Decode(&wp); err != nil {
		return nil, fmt.Errorf("core: decode plan: %v", err)
	}
	if wp.Version != planWireVersion {
		return nil, fmt.Errorf("core: plan version %d, want %d", wp.Version, planWireVersion)
	}
	if wp.Topology != g.Name || wp.Nodes != g.NumNodes() || wp.Links != g.NumLinks() {
		return nil, fmt.Errorf("core: plan for %s (%d/%d) does not match topology %s (%d/%d)",
			wp.Topology, wp.Nodes, wp.Links, g.Name, g.NumNodes(), g.NumLinks())
	}
	var model FailureModel
	switch wp.Model.Type {
	case "arbitrary":
		model = ArbitraryFailures{F: wp.Model.F}
	case "group":
		model = GroupFailures{K: wp.Model.K, SRLGs: wp.Model.SRLGs, MLGs: wp.Model.MLGs}
	case "degradation":
		dm := DegradationModel{Beta: wp.Model.Beta, Budget: wp.Model.Budget, LinkBeta: wp.Model.LinkBeta}
		if err := dm.Validate(); err != nil {
			return nil, fmt.Errorf("core: decoded degradation model invalid: %v", err)
		}
		model = dm
	default:
		return nil, fmt.Errorf("core: unknown failure model %q", wp.Model.Type)
	}

	comms := make([]routing.Commodity, len(wp.Base))
	for i, wc := range wp.Base {
		if int(wc.Src) >= g.NumNodes() || int(wc.Dst) >= g.NumNodes() || wc.Src < 0 || wc.Dst < 0 {
			return nil, fmt.Errorf("core: commodity %d endpoints out of range", i)
		}
		comms[i] = routing.Commodity{Src: wc.Src, Dst: wc.Dst, Demand: wc.Demand, Link: -1}
	}
	base := routing.NewFlow(g, comms)
	for i, wc := range wp.Base {
		for _, en := range wc.Alloc {
			if int(en.Link) >= g.NumLinks() || en.Link < 0 {
				return nil, fmt.Errorf("core: commodity %d references link %d", i, en.Link)
			}
			base.Frac[i][en.Link] = en.Frac
		}
	}
	if err := base.Validate(1e-5); err != nil {
		return nil, fmt.Errorf("core: decoded base routing invalid: %v", err)
	}

	if len(wp.Prot) != g.NumLinks() {
		return nil, fmt.Errorf("core: protection has %d rows, want %d", len(wp.Prot), g.NumLinks())
	}
	prot := make([][]float64, g.NumLinks())
	for l := range wp.Prot {
		prot[l] = make([]float64, g.NumLinks())
		for _, en := range wp.Prot[l] {
			if int(en.Link) >= g.NumLinks() || en.Link < 0 {
				return nil, fmt.Errorf("core: protection row %d references link %d", l, en.Link)
			}
			prot[l][en.Link] = en.Frac
		}
	}
	// The protection routing must itself satisfy [R1]-[R4] for its
	// head->tail commodities.
	pf := routing.NewFlow(g, routing.LinkCommodities(g))
	for l := range prot {
		copy(pf.Frac[l], prot[l])
	}
	if err := pf.Validate(1e-5); err != nil {
		return nil, fmt.Errorf("core: decoded protection routing invalid: %v", err)
	}

	return &Plan{
		G: g, Model: model, Base: base, Prot: prot,
		MLU: wp.MLU, NormalMLU: wp.NormalMLU,
	}, nil
}
