package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// tiny indirections keep the corruption test readable.
func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }
func jsonMarshal(v interface{}) ([]byte, error)   { return json.Marshal(v) }

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 120)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.MLU != plan.MLU || got.NormalMLU != plan.NormalMLU {
		t.Fatalf("objective drift: %v/%v vs %v/%v", got.MLU, got.NormalMLU, plan.MLU, plan.NormalMLU)
	}
	if got.Model.MaxFailures() != 1 {
		t.Fatalf("model = %+v", got.Model)
	}
	for k := range plan.Base.Frac {
		for e := range plan.Base.Frac[k] {
			a, b := plan.Base.Frac[k][e], got.Base.Frac[k][e]
			if math.Abs(a-b) > 1e-12 && a > 1e-12 {
				t.Fatalf("base frac mismatch at %d/%d: %v vs %v", k, e, a, b)
			}
		}
	}
	for l := range plan.Prot {
		for e := range plan.Prot[l] {
			a, b := plan.Prot[l][e], got.Prot[l][e]
			if math.Abs(a-b) > 1e-12 && a > 1e-12 {
				t.Fatalf("prot mismatch at %d/%d: %v vs %v", l, e, a, b)
			}
		}
	}
	// The decoded plan reconfigures identically.
	s1, s2 := NewState(plan), NewState(got)
	if err := s1.FailAll(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s2.FailAll(0, 5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.MLU()-s2.MLU()) > 1e-9 {
		t.Fatalf("decoded plan reconfigures differently: %v vs %v", s1.MLU(), s2.MLU())
	}
}

func TestPlanDecodeGroupModel(t *testing.T) {
	g := ring5(t)
	g.AddSRLG(0, 1)
	g.AddMLG(2, 3)
	d := ring5Demand(g, 80)
	plan, err := Precompute(g, d, Config{Model: ModelFromGraph(g, 1), Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlan(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got.Model.(GroupFailures)
	if !ok || m.K != 1 || len(m.SRLGs) != 1 || len(m.MLGs) != 1 {
		t.Fatalf("decoded model = %+v", got.Model)
	}
}

func TestPlanDecodeRejectsWrongTopology(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 80)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	other := mesh6(t)
	if _, err := DecodePlan(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatalf("plan accepted for wrong topology")
	}
}

func TestPlanDecodeRejectsCorruption(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 80)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][2]string{
		"wrong version":    {`"version":1`, `"version":99`},
		"wrong link count": {`"links":14`, `"links":13`},
	}
	for name, rep := range corruptions {
		s := strings.Replace(buf.String(), rep[0], rep[1], 1)
		if s == buf.String() {
			t.Fatalf("%s: pattern %q not found in wire format", name, rep[0])
		}
		if _, err := DecodePlan(strings.NewReader(s), g); err == nil {
			t.Fatalf("%s: corrupted plan accepted", name)
		}
	}
	// Structural corruption: blow up one protection fraction so [R2]
	// breaks for that commodity.
	var m map[string]interface{}
	if err := jsonUnmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	prot := m["prot"].([]interface{})
	row := prot[0].([]interface{})
	entry := row[0].(map[string]interface{})
	entry["f"] = 7.5
	blob, err := jsonMarshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(bytes.NewReader(blob), g); err == nil {
		t.Fatalf("protection corruption accepted")
	}
	// Garbage input.
	if _, err := DecodePlan(strings.NewReader("not json"), g); err == nil {
		t.Fatalf("garbage accepted")
	}
}
