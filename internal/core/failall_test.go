package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestFailAllAllOrNothing is the regression test for the partial-failure
// bug: a mid-list error (here a duplicate of an earlier entry) used to
// leave the earlier failures applied. FailAll must validate the whole
// list first and leave the state untouched on any error.
func TestFailAllAllOrNothing(t *testing.T) {
	cases := []struct {
		name  string
		links []graph.LinkID
		want  string
	}{
		{"duplicate-in-list", []graph.LinkID{1, 2, 1}, "listed twice"},
		{"already-failed", []graph.LinkID{2, 0}, "already failed"},
		{"out-of-range", []graph.LinkID{1, 99}, "out of range"},
		{"negative", []graph.LinkID{1, graph.LinkID(-1)}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewState(examplePlan(t))
			if err := st.Fail(0); err != nil { // pre-existing failure for the already-failed case
				t.Fatal(err)
			}
			pristine := st.Clone()

			err := st.FailAll(tc.links...)
			if err == nil {
				t.Fatalf("FailAll(%v) succeeded, want error", tc.links)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("FailAll(%v) error %q, want it to mention %q", tc.links, err, tc.want)
			}
			if !st.Failed().Equal(pristine.Failed()) {
				t.Fatalf("failed set changed on error: %v -> %v", pristine.Failed(), st.Failed())
			}
			if !st.BaseEquals(pristine, 0) || !st.ProtEquals(pristine, 0) {
				t.Fatal("base or protection routing changed despite the FailAll error")
			}
		})
	}
}

// TestFailAllSuccessMatchesSequentialFail: the all-or-nothing validation
// must not change the semantics of a valid list.
func TestFailAllSuccessMatchesSequentialFail(t *testing.T) {
	a := NewState(examplePlan(t))
	if err := a.FailAll(0, 2); err != nil {
		t.Fatal(err)
	}
	b := NewState(examplePlan(t))
	if err := b.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Fail(2); err != nil {
		t.Fatal(err)
	}
	if !a.Failed().Equal(b.Failed()) || !a.BaseEquals(b, 0) || !a.ProtEquals(b, 0) {
		t.Fatal("FailAll(0,2) differs from Fail(0); Fail(2)")
	}
}

// TestCloneIsolation: mutating a clone leaves the original untouched and
// vice versa.
func TestCloneIsolation(t *testing.T) {
	st := NewState(examplePlan(t))
	if err := st.Fail(0); err != nil {
		t.Fatal(err)
	}
	cl := st.Clone()
	if !cl.Failed().Equal(st.Failed()) || !cl.BaseEquals(st, 0) || !cl.ProtEquals(st, 0) {
		t.Fatal("clone does not match its source")
	}
	if err := cl.Fail(1); err != nil {
		t.Fatal(err)
	}
	if st.Failed().Contains(1) {
		t.Fatal("failing a link on the clone leaked into the original")
	}
	cl.Detour(0)[2] = 99
	if st.Detour(0)[2] == 99 {
		t.Fatal("clone shares detour storage with the original")
	}
}

// TestFailWithCustomDetour: FailWith applies updates (9)/(10) with the
// caller's ξ, and ComputeDetour+FailWith is exactly Fail.
func TestFailWithCustomDetour(t *testing.T) {
	viaFail := NewState(examplePlan(t))
	if err := viaFail.Fail(0); err != nil {
		t.Fatal(err)
	}
	viaWith := NewState(examplePlan(t))
	xi := viaWith.ComputeDetour(0)
	if err := viaWith.FailWith(0, xi); err != nil {
		t.Fatal(err)
	}
	if !viaFail.BaseEquals(viaWith, 0) || !viaFail.ProtEquals(viaWith, 0) {
		t.Fatal("ComputeDetour+FailWith differs from Fail")
	}

	// A custom detour (all of e1's traffic via e4) shifts base load there.
	st := NewState(examplePlan(t))
	st.Base().Frac[0][3] = 0
	st.Base().Frac[0][0] = 1 // route the commodity over e1
	st.Base().Comms[0].Demand = 10
	custom := []float64{0, 0, 0, 1}
	if err := st.FailWith(0, custom); err != nil {
		t.Fatal(err)
	}
	loads := st.Loads()
	if loads[0] != 0 || loads[3] != 10 {
		t.Fatalf("custom detour mis-applied: loads = %v", loads)
	}

	// Invalid detours are rejected before any mutation.
	st2 := NewState(examplePlan(t))
	if err := st2.FailWith(0, []float64{1, 0, 0, 0}); err == nil {
		t.Fatal("detour through the failed link itself was accepted")
	}
	if err := st2.FailWith(0, []float64{0, 1}); err == nil {
		t.Fatal("short detour vector was accepted")
	}
	if !st2.Failed().Empty() {
		t.Fatal("rejected FailWith still marked the link failed")
	}
}
