package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
)

func TestParseWorkloadSpec(t *testing.T) {
	cases := []struct {
		in   string
		want WorkloadSpec
		ok   bool
	}{
		{"", WorkloadSpec{Alpha: 1}, true},
		{"  ", WorkloadSpec{Alpha: 1}, true},
		{"alpha=0.5", WorkloadSpec{Alpha: 0.5, Budget: 1}, true},
		{"alpha=0.5,budget=2", WorkloadSpec{Alpha: 0.5, Budget: 2}, true},
		{"alpha=0", WorkloadSpec{Alpha: 0, Budget: 1}, true},
		{"surge=1.5", WorkloadSpec{Alpha: 1, Surge: 1.5, ODFrac: 1}, true},
		{"surge=1.5,odfrac=0.25", WorkloadSpec{Alpha: 1, Surge: 1.5, ODFrac: 0.25}, true},
		{"alpha=0.5,budget=2,surge=1.5,odfrac=0.25",
			WorkloadSpec{Alpha: 0.5, Budget: 2, Surge: 1.5, ODFrac: 0.25}, true},
		{" alpha = 0.5 , budget = 2 ", WorkloadSpec{Alpha: 0.5, Budget: 2}, true},
		{"surge=1", WorkloadSpec{Alpha: 1, Surge: 1}, true}, // >= 1 allowed, inert
		{"alpha", WorkloadSpec{}, false},
		{"alpha=", WorkloadSpec{}, false},
		{"alpha=x", WorkloadSpec{}, false},
		{"alpha=NaN", WorkloadSpec{}, false},
		{"alpha=Inf", WorkloadSpec{}, false},
		{"alpha=-0.1", WorkloadSpec{}, false},
		{"alpha=1.1", WorkloadSpec{}, false},
		{"alpha=0.5,alpha=0.6", WorkloadSpec{}, false},
		{"budget=0", WorkloadSpec{}, false},
		{"budget=-1", WorkloadSpec{}, false},
		{"budget=2", WorkloadSpec{}, false}, // budget without alpha
		{"surge=0.5", WorkloadSpec{}, false},
		{"odfrac=0.5", WorkloadSpec{}, false}, // odfrac without surge
		{"odfrac=0", WorkloadSpec{}, false},
		{"odfrac=1.5", WorkloadSpec{}, false},
		{"bogus=1", WorkloadSpec{}, false},
	}
	for _, tc := range cases {
		got, err := ParseWorkloadSpec(tc.in)
		if tc.ok && err != nil {
			t.Errorf("ParseWorkloadSpec(%q) = error %v", tc.in, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("ParseWorkloadSpec(%q) accepted, got %+v", tc.in, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("ParseWorkloadSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestWorkloadSpecStringRoundTrip(t *testing.T) {
	specs := []WorkloadSpec{
		{Alpha: 0.5, Budget: 1},
		{Alpha: 0.25, Budget: 2.5},
		{Alpha: 1, Surge: 1.5, ODFrac: 0.25},
		{Alpha: 0.5, Budget: 2, Surge: 2, ODFrac: 1},
	}
	for _, s := range specs {
		back, err := ParseWorkloadSpec(s.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", s.String(), err)
		}
		if back != s {
			t.Fatalf("round trip %q = %+v, want %+v", s.String(), back, s)
		}
	}
	if s := (WorkloadSpec{Alpha: 1}).String(); s != "" {
		t.Fatalf("inert spec renders %q, want empty", s)
	}
}

func TestWorkloadSpecModel(t *testing.T) {
	fallback := ArbitraryFailures{F: 2}
	if m := (WorkloadSpec{Alpha: 1}).Model(fallback); m != FailureModel(fallback) {
		t.Fatalf("inert spec model = %v, want fallback", m)
	}
	m := (WorkloadSpec{Alpha: 0.25, Budget: 2}).Model(fallback)
	dm, ok := m.(DegradationModel)
	if !ok || dm.Beta != 0.75 || dm.Budget != 2 {
		t.Fatalf("degrading spec model = %#v, want DegradationModel{Beta:0.75, Budget:2}", m)
	}
	if sp := (WorkloadSpec{Alpha: 1}).SurgeSpec(); sp != nil {
		t.Fatalf("inert spec SurgeSpec = %+v, want nil", sp)
	}
	sp := (WorkloadSpec{Alpha: 1, Surge: 1.5, ODFrac: 0.3}).SurgeSpec()
	if sp == nil || sp.Scale != 1.5 || sp.Frac != 0.3 {
		t.Fatalf("SurgeSpec = %+v", sp)
	}
}

func TestParseDegradations(t *testing.T) {
	good, err := ParseDegradations(" 3:0.5 , 7:0.25 ", 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []LinkDegradation{{Link: 3, Frac: 0.5}, {Link: 7, Frac: 0.25}}
	if !reflect.DeepEqual(good, want) {
		t.Fatalf("ParseDegradations = %+v, want %+v", good, want)
	}
	if out, err := ParseDegradations("", 10); err != nil || out != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", out, err)
	}
	bad := []string{
		"3",        // missing fraction
		"3:",       // empty fraction
		"x:0.5",    // bad link id
		"3:x",      // bad fraction
		"10:0.5",   // out of range
		"-1:0.5",   // negative id
		"3:0",      // zero fraction
		"3:1",      // full loss is a failure
		"3:1.5",    // above one
		"3:NaN",    // NaN
		"3:0.5,3:0.2", // duplicate link
	}
	for _, s := range bad {
		if _, err := ParseDegradations(s, 10); err == nil {
			t.Errorf("ParseDegradations(%q) accepted", s)
		}
	}
}

func TestSurgeSpecODsDeterministic(t *testing.T) {
	d := traffic.NewMatrix(4)
	d.Set(0, 1, 5)
	d.Set(1, 2, 9)
	d.Set(2, 3, 5) // ties with (0,1); (0,1) must win by (src, dst)
	d.Set(3, 0, 2)
	s := SurgeSpec{Scale: 2, Frac: 0.5}
	ods := s.ODs(d)
	want := []OD{{1, 2}, {0, 1}}
	if !reflect.DeepEqual(ods, want) {
		t.Fatalf("ODs = %v, want %v", ods, want)
	}
	// Frac small enough to round to zero pairs still surges at least one.
	if got := (SurgeSpec{Scale: 2, Frac: 0.01}).ODs(d); len(got) != 1 || got[0] != (OD{1, 2}) {
		t.Fatalf("tiny frac ODs = %v, want [{1 2}]", got)
	}
	surged := s.Apply(d)
	if surged.At(1, 2) != 18 || surged.At(0, 1) != 10 || surged.At(2, 3) != 5 || surged.At(3, 0) != 2 {
		t.Fatalf("Apply surged wrong entries: %v %v %v %v",
			surged.At(1, 2), surged.At(0, 1), surged.At(2, 3), surged.At(3, 0))
	}
	if d.At(1, 2) != 9 {
		t.Fatalf("Apply mutated the input matrix")
	}
	sc := s.Scenario(d)
	if sc.Kind != ScenarioSurge || sc.SurgeScale != 2 || !reflect.DeepEqual(sc.SurgeODs, want) {
		t.Fatalf("Scenario = %+v", sc)
	}
	if err := (SurgeSpec{Scale: 1, Frac: 0.5}).Validate(); err == nil {
		t.Fatalf("scale 1 accepted")
	}
	if err := (SurgeSpec{Scale: 2, Frac: 0}).Validate(); err == nil {
		t.Fatalf("frac 0 accepted")
	}
	if err := (SurgeSpec{Scale: 2, Frac: 0.5}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestNodeScenarioExpansion(t *testing.T) {
	g := ring5(t)
	n := graph.NodeID(2)
	sc := NodeScenario(g, n)
	if sc.Kind != ScenarioNode || sc.Node != n {
		t.Fatalf("scenario = %+v", sc)
	}
	want := graph.LinkSet{}
	for e := 0; e < g.NumLinks(); e++ {
		l := g.Link(graph.LinkID(e))
		if l.Src == n || l.Dst == n {
			want.Add(graph.LinkID(e))
		}
	}
	if !sc.Failed.Equal(want) {
		t.Fatalf("Failed = %v, want every link incident to n%d = %v", sc.Failed.IDs(), n, want.IDs())
	}
	all := NodeScenarios(g)
	if len(all) != g.NumNodes() {
		t.Fatalf("NodeScenarios = %d entries, want %d", len(all), g.NumNodes())
	}
}

func TestEffectiveKind(t *testing.T) {
	cases := []struct {
		sc   Scenario
		want ScenarioKind
	}{
		{Scenario{}, ScenarioFailure},
		{Scenario{Failed: graph.NewLinkSet(1)}, ScenarioFailure},
		{Scenario{Degraded: []LinkDegradation{{Link: 1, Frac: 0.5}}}, ScenarioDegradation},
		{Scenario{SurgeScale: 1.5}, ScenarioSurge},
		{Scenario{Kind: ScenarioNode, Failed: graph.NewLinkSet(1, 2)}, ScenarioNode},
		// Mixed content: degradation wins the content-based classification.
		{Scenario{Failed: graph.NewLinkSet(1), Degraded: []LinkDegradation{{Link: 2, Frac: 0.5}}, SurgeScale: 2}, ScenarioDegradation},
	}
	for i, tc := range cases {
		if got := tc.sc.EffectiveKind(); got != tc.want {
			t.Errorf("case %d: EffectiveKind = %q, want %q", i, got, tc.want)
		}
	}
}

func TestScenarioCapScale(t *testing.T) {
	if s := (Scenario{Failed: graph.NewLinkSet(3)}).CapScale(5); s != nil {
		t.Fatalf("pure failure CapScale = %v, want nil", s)
	}
	sc := Scenario{Degraded: []LinkDegradation{{Link: 1, Frac: 0.25}, {Link: 3, Frac: 0.5}}}
	got := sc.CapScale(5)
	want := []float64{1, 0.75, 1, 0.5, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CapScale = %v, want %v", got, want)
	}
}

func TestScenarioSurgeDemand(t *testing.T) {
	d := traffic.NewMatrix(3)
	d.Set(0, 1, 4)
	d.Set(1, 2, 6)
	if got := (Scenario{}).SurgeDemand(d); got != d {
		t.Fatalf("no-surge SurgeDemand returned a new matrix")
	}
	all := (Scenario{SurgeScale: 2}).SurgeDemand(d)
	if all == d || all.At(0, 1) != 8 || all.At(1, 2) != 12 {
		t.Fatalf("uniform surge = %v %v", all.At(0, 1), all.At(1, 2))
	}
	sub := (Scenario{SurgeScale: 2, SurgeODs: []OD{{1, 2}}}).SurgeDemand(d)
	if sub.At(0, 1) != 4 || sub.At(1, 2) != 12 {
		t.Fatalf("subset surge = %v %v", sub.At(0, 1), sub.At(1, 2))
	}
	if d.At(0, 1) != 4 || d.At(1, 2) != 6 {
		t.Fatalf("SurgeDemand mutated the input")
	}
}

// TestEnumerateFailuresOrder pins the DFS pre-order that Plan.Verify has
// always walked: {0}, {0,1}, {0,2}, ..., {1}, {1,2}, ...
func TestEnumerateFailuresOrder(t *testing.T) {
	scs := EnumerateFailures(3, 2, 0)
	var got [][]graph.LinkID
	for _, sc := range scs {
		if sc.Kind != ScenarioFailure {
			t.Fatalf("kind = %q", sc.Kind)
		}
		got = append(got, sc.Failed.IDs())
	}
	want := [][]graph.LinkID{
		{0}, {0, 1}, {0, 2}, {1}, {1, 2}, {2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	n := 14
	full := EnumerateFailures(n, 2, 0)
	if wantN := n + n*(n-1)/2; len(full) != wantN {
		t.Fatalf("count = %d, want %d", len(full), wantN)
	}
	capped := EnumerateFailures(n, 2, 5)
	if len(capped) != 5 {
		t.Fatalf("capped count = %d, want 5", len(capped))
	}
	for i := range capped {
		if !capped[i].Failed.Equal(full[i].Failed) {
			t.Fatalf("capped enumeration diverges at %d: %v vs %v",
				i, capped[i].Failed.IDs(), full[i].Failed.IDs())
		}
	}
}

func TestSampleDegradations(t *testing.T) {
	g := ring5(t)
	m := DegradationModel{Beta: 0.5, Budget: 1.5}
	a := SampleDegradations(g, m, 50, 123)
	b := SampleDegradations(g, m, 50, 123)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("SampleDegradations not deterministic in seed")
	}
	if len(a) == 0 {
		t.Fatalf("no scenarios sampled")
	}
	for i, sc := range a {
		if sc.Kind != ScenarioDegradation {
			t.Fatalf("scenario %d kind %q", i, sc.Kind)
		}
		var total float64
		seen := map[graph.LinkID]bool{}
		for _, dg := range sc.Degraded {
			if dg.Frac <= 0 || dg.Frac >= 1 {
				t.Fatalf("scenario %d: frac %v outside (0, 1)", i, dg.Frac)
			}
			if dg.Frac > m.beta(int(dg.Link))+1e-12 {
				t.Fatalf("scenario %d: frac %v exceeds beta", i, dg.Frac)
			}
			if seen[dg.Link] {
				t.Fatalf("scenario %d: link %d degraded twice", i, dg.Link)
			}
			seen[dg.Link] = true
			total += dg.Frac
		}
		if total > m.Budget+1e-12 {
			t.Fatalf("scenario %d: total degraded fraction %v exceeds budget %v", i, total, m.Budget)
		}
	}
}

func TestScenarioDescribe(t *testing.T) {
	sc := Scenario{
		Kind:       ScenarioDegradation,
		Node:       -1,
		Degraded:   []LinkDegradation{{Link: 3, Frac: 0.5}},
		SurgeScale: 1.5,
	}
	if got := sc.Describe(); got == "" {
		t.Fatalf("empty description")
	}
	n := NodeScenario(ring5(t), 1)
	if got := n.Describe(); got[:4] != "node" {
		t.Fatalf("node description %q", got)
	}
}
