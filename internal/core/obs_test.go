package core

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestObsDoesNotPerturbPlan is the observability determinism contract:
// precomputing with a live registry must yield a byte-identical plan to
// precomputing with none, for both solvers — instrumentation only reads
// solver state.
func TestObsDoesNotPerturbPlan(t *testing.T) {
	mesh := mesh6(t)
	ring := ring5(t)
	for _, solver := range []struct {
		name string
		g    *graph.Graph
		d    *traffic.Matrix
		cfg  Config
	}{
		{"fw", mesh, traffic.Gravity(mesh, 40, 11), Config{Model: ArbitraryFailures{F: 1}, Iterations: 40}},
		{"lp", ring, ring5Demand(ring, 20), Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP}},
	} {
		t.Run(solver.name, func(t *testing.T) {
			bare := encodePlan(t, precomputeAt(t, solver.g, solver.d, solver.cfg, 4))
			cfg := solver.cfg
			cfg.Obs = obs.NewRegistry()
			instrumented := encodePlan(t, precomputeAt(t, solver.g, solver.d, cfg, 4))
			if !bytes.Equal(bare, instrumented) {
				t.Fatal("plan bytes differ with a live registry attached")
			}
		})
	}
}

// TestObsFWRecordsSolverProgress checks the substance of the FW
// instrumentation: epoch/SPF counters advance, the final MLU gauge equals
// the plan's, and the span tree holds one fw.run root whose epoch children
// match the epoch counter.
func TestObsFWRecordsSolverProgress(t *testing.T) {
	g := mesh6(t)
	d := traffic.Gravity(g, 40, 11)
	reg := obs.NewRegistry()
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 30, Workers: 2, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	epochs := snap.Counters["fw.epochs"]
	if epochs == 0 {
		t.Fatal("fw.epochs never advanced")
	}
	if snap.Counters["fw.spf"] == 0 {
		t.Fatal("fw.spf never advanced")
	}
	if got := snap.FloatGauges["fw.mlu"]; got != plan.MLU {
		t.Fatalf("fw.mlu gauge = %v, plan MLU = %v", got, plan.MLU)
	}
	roots := snap.Traces["fw"]
	if len(roots) != 1 || roots[0].Name != "fw.run" {
		t.Fatalf("fw trace roots = %+v, want one fw.run", roots)
	}
	var epochSpans int64
	for _, c := range roots[0].Children {
		if c.Name == "epoch" {
			epochSpans++
		}
	}
	if epochSpans != epochs {
		t.Fatalf("trace has %d epoch spans, counter says %d", epochSpans, epochs)
	}
	// Pool gauges are registered and sampled at snapshot time; after the
	// run the queue must be drained.
	if pending, ok := snap.Gauges["fw.pool_pending"]; !ok || pending != 0 {
		t.Fatalf("fw.pool_pending = %d (present=%v), want 0 after the run", pending, ok)
	}
	if snap.Gauges["fw.pool_items"] == 0 {
		t.Fatal("fw.pool_items = 0, want the run's parallel loop items")
	}
}

// TestObsLPRecordsSolveCounters checks the LP instrumentation path end to
// end through Precompute with the exact solver.
func TestObsLPRecordsSolveCounters(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	reg := obs.NewRegistry()
	if _, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Solver: SolverLP, Obs: reg,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["lp.solves"] == 0 {
		t.Fatal("lp.solves never advanced")
	}
	if snap.Counters["lp.pivots"] == 0 {
		t.Fatal("lp.pivots never advanced")
	}
	if snap.Vecs["lp.status"]["optimal"] != snap.Counters["lp.solves"] {
		t.Fatalf("lp.status = %v, want all %d solves optimal", snap.Vecs["lp.status"], snap.Counters["lp.solves"])
	}
}
