package core

import (
	"testing"
)

func TestVerifyCertifiedPlan(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 120)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CongestionFree() {
		t.Skipf("plan MLU %v > 1", plan.MLU)
	}
	rep, err := plan.Verify(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != g.NumLinks() {
		t.Fatalf("Scenarios = %d, want %d", rep.Scenarios, g.NumLinks())
	}
	if rep.Violations != 0 {
		t.Fatalf("certified plan has %d violations (worst %v at %v)",
			rep.Violations, rep.WorstMLU, rep.WorstScenario)
	}
	if rep.WorstMLU > plan.MLU+1e-6 {
		t.Fatalf("worst %v above plan bound %v", rep.WorstMLU, plan.MLU)
	}
	if rep.Partitions != 0 {
		t.Fatalf("single failures partitioned ring5: %d", rep.Partitions)
	}
}

func TestVerifyTwoFailuresCountsPartitions(t *testing.T) {
	g := ring5(t) // has degree-2 nodes: some 2-link sets strand demand
	d := ring5Demand(g, 60)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 2}, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Verify(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := g.NumLinks() + g.NumLinks()*(g.NumLinks()-1)/2
	if rep.Scenarios != want {
		t.Fatalf("Scenarios = %d, want %d", rep.Scenarios, want)
	}
	if rep.Partitions == 0 {
		t.Fatalf("expected partition scenarios on ring5 with 2 failures")
	}
}

func TestVerifyCapsScenarios(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 60)
	plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Verify(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != 5 {
		t.Fatalf("cap ignored: %d scenarios", rep.Scenarios)
	}
	if _, err := plan.Verify(0, 0); err == nil {
		t.Fatalf("maxFail=0 accepted")
	}
}
