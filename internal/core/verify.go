package core

import (
	"fmt"

	"repro/internal/graph"
)

// VerifyReport is the result of empirically checking a plan's guarantee
// by enumerating failure scenarios and replaying online reconfiguration.
type VerifyReport struct {
	// Scenarios is the number of failure sets checked.
	Scenarios int
	// WorstMLU is the highest post-reconfiguration utilization observed.
	WorstMLU float64
	// WorstScenario is the failure set achieving WorstMLU.
	WorstScenario graph.LinkSet
	// Partitions counts scenarios that stranded demand.
	Partitions int
	// Violations counts scenarios exceeding the plan's MLU bound (only
	// meaningful when the certificate holds; Theorem 1 promises zero).
	Violations int
}

// Verify enumerates every failure set of up to maxFail links (capped at
// maxScenarios; 0 means no cap) and replays online reconfiguration,
// reporting the worst observed utilization. It is the brute-force audit
// of Theorem 1: for a plan with MLU <= 1 the report must show zero
// violations.
func (p *Plan) Verify(maxFail, maxScenarios int) (*VerifyReport, error) {
	if maxFail < 1 {
		return nil, fmt.Errorf("core: maxFail %d < 1", maxFail)
	}
	rep := &VerifyReport{}
	nL := p.G.NumLinks()
	bound := p.MLU + 1e-6
	var rec func(start int, chosen []graph.LinkID) error
	rec = func(start int, chosen []graph.LinkID) error {
		if len(chosen) > 0 {
			if maxScenarios > 0 && rep.Scenarios >= maxScenarios {
				return nil
			}
			rep.Scenarios++
			st := NewState(p)
			if err := st.FailAll(chosen...); err != nil {
				return err
			}
			if st.LostDemand() > 1e-9 {
				rep.Partitions++
			}
			mlu := st.MLU()
			if mlu > rep.WorstMLU {
				rep.WorstMLU = mlu
				rep.WorstScenario = graph.NewLinkSet(chosen...)
			}
			if mlu > bound {
				rep.Violations++
			}
		}
		if len(chosen) == maxFail {
			return nil
		}
		for e := start; e < nL; e++ {
			if maxScenarios > 0 && rep.Scenarios >= maxScenarios {
				return nil
			}
			if err := rec(e+1, append(chosen, graph.LinkID(e))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	return rep, nil
}
