package core

import (
	"fmt"

	"repro/internal/graph"
)

// VerifyReport is the result of empirically checking a plan's guarantee
// by replaying scenarios through online reconfiguration.
type VerifyReport struct {
	// Scenarios is the number of scenarios checked.
	Scenarios int
	// ByKind counts checked scenarios per scenario kind.
	ByKind map[ScenarioKind]int
	// WorstMLU is the highest post-reconfiguration utilization observed
	// (against effective capacities for degradation scenarios).
	WorstMLU float64
	// WorstScenario is the hard-failure set of the scenario achieving
	// WorstMLU (kept for callers predating mixed scenario kinds).
	WorstScenario graph.LinkSet
	// Worst is the full scenario achieving WorstMLU.
	Worst Scenario
	// Partitions counts scenarios that stranded demand.
	Partitions int
	// Violations counts scenarios exceeding the plan's MLU bound (only
	// meaningful when the certificate holds; Theorem 1 promises zero).
	Violations int
}

// Verify enumerates every failure set of up to maxFail links (capped at
// maxScenarios; 0 means no cap) and replays online reconfiguration,
// reporting the worst observed utilization. It is the brute-force audit
// of Theorem 1: for a plan with MLU <= 1 the report must show zero
// violations.
func (p *Plan) Verify(maxFail, maxScenarios int) (*VerifyReport, error) {
	if maxFail < 1 {
		return nil, fmt.Errorf("core: maxFail %d < 1", maxFail)
	}
	return p.VerifyScenarios(EnumerateFailures(p.G.NumLinks(), maxFail, maxScenarios))
}

// VerifyScenarios replays each scenario (surge, hard failures, then
// degradations) against a fresh copy of the plan and reports the worst
// observed effective-capacity utilization. It is the generalized audit:
// for scenarios inside the plan's protected envelopes — failure sets
// covered by the model, in-budget degradations, surges folded into the
// demand hull — a plan with MLU <= 1 must show zero violations.
func (p *Plan) VerifyScenarios(scs []Scenario) (*VerifyReport, error) {
	rep := &VerifyReport{ByKind: make(map[ScenarioKind]int)}
	bound := p.MLU + 1e-6
	for _, sc := range scs {
		rep.Scenarios++
		rep.ByKind[sc.EffectiveKind()]++
		st := NewState(p)
		if err := st.ApplyScenario(sc); err != nil {
			return nil, err
		}
		if st.LostDemand() > 1e-9 {
			rep.Partitions++
		}
		mlu := st.MLU()
		if mlu > rep.WorstMLU {
			rep.WorstMLU = mlu
			rep.WorstScenario = sc.Failed.Clone()
			rep.Worst = sc
		}
		if mlu > bound {
			rep.Violations++
		}
	}
	return rep, nil
}
