package core

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// TestPrecomputeLPWarmBasisMatchesCold re-runs the ring-5 LP
// precomputation warm-started from a previous run's basis: the plan must
// be numerically identical and the warm solve must spend strictly fewer
// pivots (same problem, optimal basis in hand, ideally zero pivots).
func TestPrecomputeLPWarmBasisMatchesCold(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	cfg := Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP}

	cold, err := Precompute(g, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.LPBasis == nil {
		t.Fatalf("LP plan carries no basis")
	}

	coldReg, warmReg := obs.NewRegistry(), obs.NewRegistry()
	cfgCold, cfgWarm := cfg, cfg
	cfgCold.Obs = coldReg
	cfgWarm.Obs = warmReg
	cfgWarm.LPWarmBasis = cold.LPBasis
	cold2, err := Precompute(g, d, cfgCold)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Precompute(g, d, cfgWarm)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(warm.MLU-cold2.MLU) > 1e-9 {
		t.Fatalf("warm MLU %v != cold MLU %v", warm.MLU, cold2.MLU)
	}
	for k := range cold2.Base.Frac {
		for e := range cold2.Base.Frac[k] {
			if math.Abs(warm.Base.Frac[k][e]-cold2.Base.Frac[k][e]) > 1e-9 {
				t.Fatalf("base frac differs at comm %d link %d: warm %v, cold %v",
					k, e, warm.Base.Frac[k][e], cold2.Base.Frac[k][e])
			}
		}
	}
	for l := range cold2.Prot {
		for e := range cold2.Prot[l] {
			if math.Abs(warm.Prot[l][e]-cold2.Prot[l][e]) > 1e-9 {
				t.Fatalf("protection differs at link %d over %d: warm %v, cold %v",
					l, e, warm.Prot[l][e], cold2.Prot[l][e])
			}
		}
	}

	coldPivots := coldReg.Snapshot().Counters["lp.pivots"]
	warmPivots := warmReg.Snapshot().Counters["lp.pivots"]
	if warmReg.Snapshot().Counters["lp.warm_starts"] != 1 {
		t.Fatalf("warm solve did not take the warm path")
	}
	if warmPivots >= coldPivots {
		t.Fatalf("warm solve took %d pivots, cold %d — basis reuse is not helping", warmPivots, coldPivots)
	}
	t.Logf("pivots: cold %d, warm %d", coldPivots, warmPivots)
}

// TestPrecomputeLPWarmBasisMismatchFallsBack feeds a basis from a
// different problem shape: the solve must silently fall back to cold and
// still produce the right plan.
func TestPrecomputeLPWarmBasisMismatchFallsBack(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 20)
	cold, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	// F=2 has the same variables but a different scenario weighting; the
	// shape happens to match, so build a genuinely different shape by
	// adding a delay envelope (extra rows).
	reg := obs.NewRegistry()
	mis, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Solver: SolverLP,
		DelayEnvelope: 4.0, LPWarmBasis: cold.LPBasis, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot().Counters["lp.warm_starts"] != 0 {
		t.Fatalf("mismatched basis was warm-accepted")
	}
	if mis.MLU <= 0 || math.IsNaN(mis.MLU) {
		t.Fatalf("fallback plan MLU = %v", mis.MLU)
	}
}
