package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/traffic"
)

func TestPrecomputeVariationsThreeMatrices(t *testing.T) {
	g := ring5(t)
	mats := []*traffic.Matrix{
		ring5Demand(g, 90),
		ring5Demand(g, 90),
		ring5Demand(g, 90),
	}
	// Skew each matrix toward a different pair so the hull has distinct
	// vertices.
	mats[0].Set(0, 2, mats[0].At(0, 2)*4)
	mats[1].Set(1, 3, mats[1].At(1, 3)*4)
	mats[2].Set(2, 4, mats[2].At(2, 4)*4)
	plan, err := PrecomputeVariations(g, mats, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every hull vertex must be covered; by convexity that covers the
	// whole hull (constraint (17)).
	for i, d := range mats {
		fl := plan.Base.Clone()
		fl.SetDemands(d.At)
		loads := fl.Loads()
		for e := 0; e < g.NumLinks(); e++ {
			u := (loads[e] + plan.VirtualLoad(graph.LinkID(e))) / g.Link(graph.LinkID(e)).Capacity
			if u > plan.MLU+1e-6 {
				t.Fatalf("matrix %d uncovered at link %d: %v > %v", i, e, u, plan.MLU)
			}
		}
	}
	// Convex midpoint is covered too.
	mid := traffic.NewMatrix(mats[0].N)
	for _, m := range mats {
		mid = mid.Add(m.Clone().Scale(1.0 / 3.0))
	}
	fl := plan.Base.Clone()
	fl.SetDemands(mid.At)
	loads := fl.Loads()
	for e := 0; e < g.NumLinks(); e++ {
		u := (loads[e] + plan.VirtualLoad(graph.LinkID(e))) / g.Link(graph.LinkID(e)).Capacity
		if u > plan.MLU+1e-6 {
			t.Fatalf("hull midpoint uncovered at link %d: %v > %v", e, u, plan.MLU)
		}
	}
}

func TestFixedBaseMissingPairRejected(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 60)
	// Base routing over a single OD pair cannot serve a full matrix.
	partial := routing.NewFlow(g, []routing.Commodity{{Src: 0, Dst: 1, Link: -1}})
	partial.Frac[0][0] = 1 // whatever; never validated because lookup fails first
	if _, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, BaseRouting: partial, Iterations: 20,
	}); err == nil {
		t.Fatalf("base routing missing OD pairs accepted")
	}
}

func TestPrioritySingleClassEqualsPlain(t *testing.T) {
	// One priority class degenerates to plain precomputation: same
	// objective within solver noise.
	g := ring5(t)
	d := ring5Demand(g, 100)
	plain, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	pri, err := PrecomputePrioritized(g, []Priority{{Demand: d, F: 1}}, Config{Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if pri.MLU > plain.MLU*1.05+1e-9 || plain.MLU > pri.MLU*1.05+1e-9 {
		t.Fatalf("single-class prioritized %v vs plain %v", pri.MLU, plain.MLU)
	}
}
