package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// ScenarioKind labels what kind of disruption a Scenario models, so mixed
// sweeps and verify reports stay unambiguous.
type ScenarioKind string

const (
	// ScenarioFailure is a set of hard link failures (the classic X_F case).
	ScenarioFailure ScenarioKind = "failure"
	// ScenarioDegradation is a set of partial capacity losses within the
	// degradation envelope X_D.
	ScenarioDegradation ScenarioKind = "degradation"
	// ScenarioSurge is a demand spike on a subset of OD pairs.
	ScenarioSurge ScenarioKind = "surge"
	// ScenarioNode is a whole-router outage or maintenance window: every
	// link incident to the node is down (expressed through Failed).
	ScenarioNode ScenarioKind = "node"
)

// OD identifies one origin-destination pair of a traffic matrix.
type OD struct {
	Src, Dst graph.NodeID
}

// LinkDegradation is one partially degraded link: Frac of its capacity is
// lost (effective capacity (1-Frac)·c). Frac is strictly inside (0, 1) —
// a full loss is a hard failure and belongs in Scenario.Failed.
type LinkDegradation struct {
	Link graph.LinkID `json:"link"`
	Frac float64      `json:"frac"`
}

// Scenario generalizes the bare failure set: hard failures, partial
// capacity degradations, demand surges and node outages, in any
// combination. The zero value is the empty (no-op) scenario.
type Scenario struct {
	// Kind labels the scenario; constructors set it, and EffectiveKind
	// derives it from content when left empty.
	Kind ScenarioKind
	// Failed is the set of hard link failures.
	Failed graph.LinkSet
	// Node is the failed router for ScenarioNode (informational; Failed
	// already holds the incident-link expansion). -1 otherwise.
	Node graph.NodeID
	// Degraded lists partial capacity losses, applied after Failed.
	Degraded []LinkDegradation
	// SurgeScale multiplies the demand of SurgeODs (all pairs when nil).
	// Values <= 1 mean no surge.
	SurgeScale float64
	// SurgeODs restricts the surge to these OD pairs; nil surges every
	// commodity.
	SurgeODs []OD
}

// FailureScenario wraps a hard-failure set as a Scenario.
func FailureScenario(failed graph.LinkSet) Scenario {
	return Scenario{Kind: ScenarioFailure, Failed: failed, Node: -1}
}

// NodeScenario is the outage of router n: every link out of or into n is
// down, which the duplex-group machinery of FailAll handles like any
// other failure set.
func NodeScenario(g *graph.Graph, n graph.NodeID) Scenario {
	failed := graph.LinkSet{}
	for _, e := range g.Out(n) {
		failed.Add(e)
	}
	for _, e := range g.In(n) {
		failed.Add(e)
	}
	return Scenario{Kind: ScenarioNode, Failed: failed, Node: n}
}

// NodeScenarios enumerates the outage of every router in the graph.
func NodeScenarios(g *graph.Graph) []Scenario {
	out := make([]Scenario, 0, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		out = append(out, NodeScenario(g, graph.NodeID(n)))
	}
	return out
}

// DegradationScenario wraps a set of partial capacity losses.
func DegradationScenario(degraded ...LinkDegradation) Scenario {
	return Scenario{Kind: ScenarioDegradation, Node: -1, Degraded: degraded}
}

// EffectiveKind returns the scenario's kind, classifying by content when
// the Kind field was left empty.
func (s Scenario) EffectiveKind() ScenarioKind {
	if s.Kind != "" {
		return s.Kind
	}
	switch {
	case len(s.Degraded) > 0:
		return ScenarioDegradation
	case s.SurgeScale > 1:
		return ScenarioSurge
	default:
		return ScenarioFailure
	}
}

// CapScale returns per-link effective-capacity factors (1 - lost
// fraction) for a graph with nL links, or nil when nothing is degraded —
// so purely hard-failure paths see a nil scale and stay bit-identical.
func (s Scenario) CapScale(nL int) []float64 {
	if len(s.Degraded) == 0 {
		return nil
	}
	scale := make([]float64, nL)
	for i := range scale {
		scale[i] = 1
	}
	for _, d := range s.Degraded {
		if int(d.Link) >= 0 && int(d.Link) < nL {
			scale[d.Link] = 1 - d.Frac
		}
	}
	return scale
}

// SurgeDemand returns the traffic matrix with the scenario's surge
// applied. Without a surge it returns d itself (the same pointer), so
// unsurged evaluation paths are untouched.
func (s Scenario) SurgeDemand(d *traffic.Matrix) *traffic.Matrix {
	if s.SurgeScale <= 1 {
		return d
	}
	out := d.Clone()
	if s.SurgeODs == nil {
		for a := 0; a < out.N; a++ {
			for b := 0; b < out.N; b++ {
				if v := out.At(graph.NodeID(a), graph.NodeID(b)); v > 0 {
					out.Set(graph.NodeID(a), graph.NodeID(b), v*s.SurgeScale)
				}
			}
		}
		return out
	}
	for _, od := range s.SurgeODs {
		if v := out.At(od.Src, od.Dst); v > 0 {
			out.Set(od.Src, od.Dst, v*s.SurgeScale)
		}
	}
	return out
}

// Describe renders a short human-readable label for reports.
func (s Scenario) Describe() string {
	var b strings.Builder
	b.WriteString(string(s.EffectiveKind()))
	if s.Kind == ScenarioNode && s.Node >= 0 {
		fmt.Fprintf(&b, " n%d", s.Node)
	}
	if s.Failed.Len() > 0 {
		fmt.Fprintf(&b, " fail%v", s.Failed.IDs())
	}
	for _, d := range s.Degraded {
		fmt.Fprintf(&b, " %d:%.3g", d.Link, d.Frac)
	}
	if s.SurgeScale > 1 {
		fmt.Fprintf(&b, " surge=%.3g", s.SurgeScale)
	}
	return b.String()
}

// SurgeSpec describes a flash-crowd envelope: the demand of the top Frac
// fraction of OD pairs (by demand, ties broken by (src, dst)) is scaled
// by Scale. Precompute folds the surged matrix into the protection bound
// as an extra hull vertex, so by convexity every partial surge up to
// Scale is covered too.
type SurgeSpec struct {
	Scale float64 // demand multiplier, > 1
	Frac  float64 // fraction of OD pairs surged, in (0, 1]
}

// Validate checks the surge parameters.
func (s SurgeSpec) Validate() error {
	if math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) || s.Scale <= 1 {
		return fmt.Errorf("surge scale %v must be finite and > 1", s.Scale)
	}
	if math.IsNaN(s.Frac) || s.Frac <= 0 || s.Frac > 1 {
		return fmt.Errorf("surge odfrac %v outside (0, 1]", s.Frac)
	}
	return nil
}

// ODs returns the surged OD pairs of d: the ceil(Frac·numPairs) largest
// demands, deterministically tie-broken by (src, dst) ascending.
func (s SurgeSpec) ODs(d *traffic.Matrix) []OD {
	type pair struct {
		od OD
		v  float64
	}
	var pairs []pair
	d.Pairs(func(a, b graph.NodeID, v float64) {
		pairs = append(pairs, pair{OD{a, b}, v})
	})
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		if pairs[i].od.Src != pairs[j].od.Src {
			return pairs[i].od.Src < pairs[j].od.Src
		}
		return pairs[i].od.Dst < pairs[j].od.Dst
	})
	n := int(math.Ceil(s.Frac * float64(len(pairs))))
	if n < 1 {
		n = 1
	}
	if n > len(pairs) {
		n = len(pairs)
	}
	ods := make([]OD, n)
	for i := 0; i < n; i++ {
		ods[i] = pairs[i].od
	}
	return ods
}

// Apply returns the fully surged matrix (the envelope's extra hull
// vertex). d is not modified.
func (s SurgeSpec) Apply(d *traffic.Matrix) *traffic.Matrix {
	out := d.Clone()
	for _, od := range s.ODs(d) {
		out.Set(od.Src, od.Dst, out.At(od.Src, od.Dst)*s.Scale)
	}
	return out
}

// Scenario builds the evaluation scenario matching the envelope: the
// surged ODs of d spiked by Scale.
func (s SurgeSpec) Scenario(d *traffic.Matrix) Scenario {
	return Scenario{Kind: ScenarioSurge, Node: -1, SurgeScale: s.Scale, SurgeODs: s.ODs(d)}
}

// WorkloadSpec is the parsed form of the CLI/HTTP workload grammar, a
// comma-separated key=value list:
//
//	alpha=0.5,budget=2,surge=1.5,odfrac=0.25
//
// alpha is the per-link capacity floor (degradation enabled when < 1,
// losing up to β = 1-α per link), budget bounds the total degraded
// fraction, surge scales the top odfrac OD pairs. The zero value (or an
// empty string) is the inert spec: classic hard-failure protection only.
type WorkloadSpec struct {
	Alpha  float64 // capacity floor α in [0, 1]; degradation active when < 1
	Budget float64 // total-degraded-fraction bound B; defaults to 1 when degrading
	Surge  float64 // surge scale; active when > 1
	ODFrac float64 // surged OD fraction; defaults to 1 when surging
}

// ParseWorkloadSpec parses the workload grammar. Unknown or duplicate
// keys, NaN/Inf values and out-of-range parameters are rejected — this is
// the surface the fuzz target hammers.
func ParseWorkloadSpec(s string) (WorkloadSpec, error) {
	w := WorkloadSpec{Alpha: 1}
	s = strings.TrimSpace(s)
	if s == "" {
		return w, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("workload: %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		if seen[key] {
			return w, fmt.Errorf("workload: duplicate key %q", key)
		}
		seen[key] = true
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return w, fmt.Errorf("workload: bad value for %q: %v", key, err)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return w, fmt.Errorf("workload: %s=%v is not finite", key, x)
		}
		switch key {
		case "alpha":
			if x < 0 || x > 1 {
				return w, fmt.Errorf("workload: alpha %v outside [0, 1]", x)
			}
			w.Alpha = x
		case "budget":
			if x <= 0 {
				return w, fmt.Errorf("workload: budget %v must be positive", x)
			}
			w.Budget = x
		case "surge":
			if x < 1 {
				return w, fmt.Errorf("workload: surge %v must be >= 1", x)
			}
			w.Surge = x
		case "odfrac":
			if x <= 0 || x > 1 {
				return w, fmt.Errorf("workload: odfrac %v outside (0, 1]", x)
			}
			w.ODFrac = x
		default:
			return w, fmt.Errorf("workload: unknown key %q", key)
		}
	}
	if w.Budget != 0 && w.Alpha == 1 {
		return w, fmt.Errorf("workload: budget without alpha < 1 has no effect")
	}
	if w.ODFrac != 0 && w.Surge <= 1 {
		return w, fmt.Errorf("workload: odfrac without surge > 1 has no effect")
	}
	if w.Degrades() && w.Budget == 0 {
		w.Budget = 1
	}
	if w.Surges() && w.ODFrac == 0 {
		w.ODFrac = 1
	}
	return w, nil
}

// Degrades reports whether the spec enables capacity degradation.
func (w WorkloadSpec) Degrades() bool { return w.Alpha < 1 }

// Surges reports whether the spec enables a demand surge.
func (w WorkloadSpec) Surges() bool { return w.Surge > 1 }

// Model returns the failure model the spec implies: a DegradationModel
// when degrading, otherwise the fallback (the classic model the caller
// would have used anyway).
func (w WorkloadSpec) Model(fallback FailureModel) FailureModel {
	if !w.Degrades() {
		return fallback
	}
	return DegradationModel{Beta: 1 - w.Alpha, Budget: w.Budget}
}

// SurgeSpec returns the surge envelope, or nil when the spec does not
// surge.
func (w WorkloadSpec) SurgeSpec() *SurgeSpec {
	if !w.Surges() {
		return nil
	}
	return &SurgeSpec{Scale: w.Surge, Frac: w.ODFrac}
}

// String renders the spec back into the grammar (round-trips through
// ParseWorkloadSpec).
func (w WorkloadSpec) String() string {
	var parts []string
	if w.Degrades() {
		parts = append(parts, fmt.Sprintf("alpha=%g", w.Alpha), fmt.Sprintf("budget=%g", w.Budget))
	}
	if w.Surges() {
		parts = append(parts, fmt.Sprintf("surge=%g", w.Surge), fmt.Sprintf("odfrac=%g", w.ODFrac))
	}
	return strings.Join(parts, ",")
}

// ParseDegradations parses a concrete degradation assignment
// "link:frac,link:frac" (e.g. "3:0.5,7:0.25") against a graph with nL
// links. Fractions must lie strictly in (0, 1) — a full loss is a hard
// failure, which has its own syntax everywhere this grammar appears.
func ParseDegradations(s string, nL int) ([]LinkDegradation, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []LinkDegradation
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		ls, fs, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("degradation: %q is not link:frac", part)
		}
		l, err := strconv.Atoi(strings.TrimSpace(ls))
		if err != nil {
			return nil, fmt.Errorf("degradation: bad link id %q: %v", ls, err)
		}
		if l < 0 || l >= nL {
			return nil, fmt.Errorf("degradation: link %d out of range [0, %d)", l, nL)
		}
		if seen[l] {
			return nil, fmt.Errorf("degradation: link %d listed twice", l)
		}
		seen[l] = true
		f, err := strconv.ParseFloat(strings.TrimSpace(fs), 64)
		if err != nil {
			return nil, fmt.Errorf("degradation: bad fraction %q: %v", fs, err)
		}
		if math.IsNaN(f) || f <= 0 || f >= 1 {
			return nil, fmt.Errorf("degradation: fraction %v outside (0, 1) for link %d (a full loss is a failure)", f, l)
		}
		out = append(out, LinkDegradation{Link: graph.LinkID(l), Frac: f})
	}
	return out, nil
}

// SampleDegradations draws n random in-budget degradation scenarios from
// the envelope of m: each picks a few links, assigns each a capacity loss
// within its β cap, and never exceeds the budget. Deterministic in seed.
func SampleDegradations(g *graph.Graph, m DegradationModel, n int, seed int64) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	nL := g.NumLinks()
	maxLinks := m.MaxFailures() + 2
	if maxLinks > nL {
		maxLinks = nL
	}
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(maxLinks)
		links := rng.Perm(nL)[:k]
		sort.Ints(links)
		budget := m.Budget
		var degr []LinkDegradation
		for _, l := range links {
			b := m.beta(l)
			if b > budget {
				b = budget
			}
			if b <= 0 {
				continue
			}
			u := rng.Float64() * b
			if u < 1e-3 || u >= 1 {
				continue
			}
			degr = append(degr, LinkDegradation{Link: graph.LinkID(l), Frac: u})
			budget -= u
		}
		if len(degr) == 0 {
			continue
		}
		out = append(out, Scenario{Kind: ScenarioDegradation, Node: -1, Degraded: degr})
	}
	return out
}

// EnumerateFailures lists every failure set of up to maxFail links over
// nL links in depth-first pre-order ({0}, {0,1}, {0,1,2}, …), capped at
// maxScenarios (0 = no cap) — the exact order Plan.Verify has always
// used, now expressed in Scenario form.
func EnumerateFailures(nL, maxFail, maxScenarios int) []Scenario {
	var out []Scenario
	var rec func(start int, chosen []graph.LinkID)
	rec = func(start int, chosen []graph.LinkID) {
		if len(chosen) > 0 {
			if maxScenarios > 0 && len(out) >= maxScenarios {
				return
			}
			out = append(out, FailureScenario(graph.NewLinkSet(chosen...)))
		}
		if len(chosen) == maxFail {
			return
		}
		for e := start; e < nL; e++ {
			if maxScenarios > 0 && len(out) >= maxScenarios {
				return
			}
			rec(e+1, append(chosen, graph.LinkID(e)))
		}
	}
	rec(0, nil)
	return out
}
