package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// degradePlan precomputes a degradation-envelope plan over g, rescaling
// the demand once if needed so the certified MLU drops below 1 — the
// envelope's online soundness argument (DESIGN.md §15) needs a
// congestion-free certificate, exactly as the paper's Theorem 2 does for
// hard failures.
func degradePlan(t *testing.T, g *graph.Graph, d *traffic.Matrix, model DegradationModel, iters int) *Plan {
	t.Helper()
	cfg := Config{Model: model, Iterations: iters, Workers: 1}
	plan, err := Precompute(g, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CongestionFree() {
		d.Scale(0.8 / plan.MLU) // MLU is close to linear in total demand
		if plan, err = Precompute(g, d, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if !plan.CongestionFree() {
		t.Skipf("could not reach a congestion-free certificate (MLU %v)", plan.MLU)
	}
	return plan
}

// TestDegradationPropertyNeverExceedsCertified is the envelope's core
// guarantee, sampled: any in-budget degradation assignment — replayed
// online through Degrade's scaled reconfiguration — keeps the maximum
// utilization (against effective capacities) within the certified MLU.
// 16 seeds on each of ring5 and Abilene, with the application order
// shuffled per scenario so order robustness is exercised too.
func TestDegradationPropertyNeverExceedsCertified(t *testing.T) {
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring5", ring5(t)},
		{"abilene", topo.Abilene()},
	}
	for _, tg := range topos {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			d := traffic.Gravity(tg.g, 40, 11)
			model := DegradationModel{Beta: 0.5, Budget: 1.5}
			plan := degradePlan(t, tg.g, d, model, 80)
			for seed := int64(0); seed < 16; seed++ {
				scs := SampleDegradations(tg.g, model, 8, seed)
				rng := rand.New(rand.NewSource(seed + 1000))
				for i, sc := range scs {
					rng.Shuffle(len(sc.Degraded), func(a, b int) {
						sc.Degraded[a], sc.Degraded[b] = sc.Degraded[b], sc.Degraded[a]
					})
					st := NewState(plan)
					if err := st.ApplyScenario(sc); err != nil {
						t.Fatalf("seed %d scenario %d: %v", seed, i, err)
					}
					if mlu := st.MLU(); mlu > plan.MLU+1e-6 {
						t.Fatalf("seed %d scenario %d (%s): online MLU %v exceeds certified %v",
							seed, i, sc.Describe(), mlu, plan.MLU)
					}
				}
			}
		})
	}
}

// TestDegradationExtremePointsDifferential replays every extreme point of
// the degradation polytope (β = 0.5, B = 1 on ring5: all singles at full
// β and all saturated pairs) — brute-force coverage rather than sampling.
func TestDegradationExtremePointsDifferential(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 40)
	model := DegradationModel{Beta: 0.5, Budget: 1}
	plan := degradePlan(t, g, d, model, 80)
	nL := g.NumLinks()
	var scs []Scenario
	for a := 0; a < nL; a++ {
		scs = append(scs, DegradationScenario(LinkDegradation{Link: graph.LinkID(a), Frac: 0.5}))
		for b := a + 1; b < nL; b++ {
			scs = append(scs, DegradationScenario(
				LinkDegradation{Link: graph.LinkID(a), Frac: 0.5},
				LinkDegradation{Link: graph.LinkID(b), Frac: 0.5},
			))
		}
	}
	rep, err := plan.VerifyScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("%d/%d extreme points exceed certified MLU %v; worst %v at %s",
			rep.Violations, rep.Scenarios, plan.MLU, rep.WorstMLU, rep.Worst.Describe())
	}
}

// TestDegradationFWvsLP is the solver differential: the exact LP's
// certified MLU can never exceed the Frank–Wolfe bound (it optimizes the
// same constraints exactly), both must certify congestion-free plans
// here, and both plans must survive the same sampled degradations.
func TestDegradationFWvsLP(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 40)
	model := DegradationModel{Beta: 0.5, Budget: 1}
	fw, err := Precompute(g, d, Config{Model: model, Iterations: 80, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Precompute(g, d, Config{Model: model, Solver: SolverLP, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lp.MLU > fw.MLU+1e-6 {
		t.Fatalf("exact LP MLU %v above FW bound %v", lp.MLU, fw.MLU)
	}
	if fw.MLU > 2*lp.MLU+1e-6 {
		t.Fatalf("FW bound %v implausibly loose against LP optimum %v", fw.MLU, lp.MLU)
	}
	scs := SampleDegradations(g, model, 48, 17)
	for name, plan := range map[string]*Plan{"fw": fw, "lp": lp} {
		if !plan.CongestionFree() {
			t.Fatalf("%s plan not congestion-free: MLU %v", name, plan.MLU)
		}
		rep, err := plan.VerifyScenarios(scs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violations != 0 {
			t.Fatalf("%s plan: %d violations, worst %v at %s (certified %v)",
				name, rep.Violations, rep.WorstMLU, rep.Worst.Describe(), plan.MLU)
		}
	}
}

// TestSurgePropertyCoveredByEnvelope: a plan precomputed with the surge
// envelope folded in keeps the fully surged matrix — and, by convexity,
// any partial surge of the same OD set — within its certified MLU.
func TestSurgePropertyCoveredByEnvelope(t *testing.T) {
	g := ring5(t)
	d := ring5Demand(g, 40)
	spec := &SurgeSpec{Scale: 1.5, Frac: 0.5}
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Surge: spec, Iterations: 80, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CongestionFree() {
		t.Skipf("plan MLU %v > 1", plan.MLU)
	}
	full := spec.Scenario(d)
	partial := full
	partial.SurgeScale = 1.2
	// The surge composes with any single protected failure: the envelope
	// bound holds for d' + X_F with d' the surged matrix.
	combined := full
	combined.Failed = graph.NewLinkSet(0)
	rep, err := plan.VerifyScenarios([]Scenario{full, partial, combined})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("surge replay: %d violations, worst %v at %s (certified %v)",
			rep.Violations, rep.WorstMLU, rep.Worst.Describe(), plan.MLU)
	}
	if rep.ByKind[ScenarioSurge] != 3 {
		t.Fatalf("ByKind[surge] = %d, want 3", rep.ByKind[ScenarioSurge])
	}
}
