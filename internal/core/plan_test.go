package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
)

// paperExample builds the §3.3 network: routers i, j with 4 parallel links
// of capacities 10, 20, 30, 40 (so the optimal protection splits
// 0.1/0.2/0.3/0.4).
func paperExample(t *testing.T) (*graph.Graph, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New("par4")
	i := g.AddNode("i")
	j := g.AddNode("j")
	g.AddLink(i, j, 10, 1, 1) // e1 = 0
	g.AddLink(i, j, 20, 1, 1) // e2 = 1
	g.AddLink(i, j, 30, 1, 1) // e3 = 2
	g.AddLink(i, j, 40, 1, 1) // e4 = 3
	return g, i, j
}

// examplePlan returns a Plan whose protection routing matches the §3.3
// example: p_l = (0.1, 0.2, 0.3, 0.4) for every l.
func examplePlan(t *testing.T) *Plan {
	t.Helper()
	g, i, j := paperExample(t)
	base := routing.NewFlow(g, []routing.Commodity{{Src: i, Dst: j, Demand: 0, Link: -1}})
	base.Frac[0][3] = 1
	prot := make([][]float64, 4)
	for l := range prot {
		prot[l] = []float64{0.1, 0.2, 0.3, 0.4}
	}
	return &Plan{G: g, Model: ArbitraryFailures{F: 1}, Base: base, Prot: prot}
}

func TestPaperExampleRescaling(t *testing.T) {
	// Paper §3.3: after e1 fails, ξ_e1 = (0, 2/9, 3/9, 4/9).
	st := NewState(examplePlan(t))
	if err := st.Fail(0); err != nil {
		t.Fatal(err)
	}
	xi := st.Detour(0)
	want := []float64{0, 2.0 / 9, 3.0 / 9, 4.0 / 9}
	for e := range want {
		if math.Abs(xi[e]-want[e]) > 1e-12 {
			t.Fatalf("xi[%d] = %v, want %v", e, xi[e], want[e])
		}
	}
	// And p'_e2 = (0, 0.2 + 0.1·2/9, 0.3 + 0.1·3/9, 0.4 + 0.1·4/9).
	p2 := st.Prot()[1]
	wantP := []float64{0, 0.2 + 0.1*2.0/9, 0.3 + 0.1*3.0/9, 0.4 + 0.1*4.0/9}
	for e := range wantP {
		if math.Abs(p2[e]-wantP[e]) > 1e-12 {
			t.Fatalf("p'_e2[%d] = %v, want %v", e, p2[e], wantP[e])
		}
	}
	// The reconfigured protection still sums to 1 (valid routing).
	var sum float64
	for _, v := range p2 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("p'_e2 sums to %v", sum)
	}
}

func TestBaseReroutedOnFailure(t *testing.T) {
	st := NewState(examplePlan(t))
	// Base routes on e4 (index 3). Fail it: traffic must move to the
	// detour ξ_e4 over e1..e3 proportional to 0.1/0.2/0.3 rescaled by 0.6.
	if err := st.Fail(3); err != nil {
		t.Fatal(err)
	}
	fr := st.Base().Frac[0]
	want := []float64{0.1 / 0.6, 0.2 / 0.6, 0.3 / 0.6, 0}
	for e := range want {
		if math.Abs(fr[e]-want[e]) > 1e-12 {
			t.Fatalf("r'[%d] = %v, want %v", e, fr[e], want[e])
		}
	}
	if d := st.Delivered(0); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Delivered = %v, want 1", d)
	}
}

func TestFailTwicePanics(t *testing.T) {
	st := NewState(examplePlan(t))
	if err := st.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Fail(0); err == nil {
		t.Fatalf("double failure accepted")
	}
}

func TestOrderIndependence(t *testing.T) {
	// Theorem 3: any permutation of the failure sequence yields the same
	// final routing.
	plan := examplePlan(t)
	perms := [][]graph.LinkID{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	ref := NewState(plan)
	if err := ref.FailAll(perms[0]...); err != nil {
		t.Fatal(err)
	}
	for _, perm := range perms[1:] {
		st := NewState(plan)
		if err := st.FailAll(perm...); err != nil {
			t.Fatal(err)
		}
		if !st.ProtEquals(ref, 1e-9) {
			t.Fatalf("protection differs for order %v", perm)
		}
		if !st.BaseEquals(ref, 1e-9) {
			t.Fatalf("base differs for order %v", perm)
		}
	}
}

func TestPartitionDropsTraffic(t *testing.T) {
	// Two parallel links, fail both: demand is dropped, not misrouted.
	g := graph.New("par2")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(a, b, 10, 1, 1)
	g.AddLink(a, b, 10, 1, 1)
	base := routing.NewFlow(g, []routing.Commodity{{Src: a, Dst: b, Demand: 5, Link: -1}})
	base.Frac[0][0] = 1
	prot := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	plan := &Plan{G: g, Model: ArbitraryFailures{F: 1}, Base: base, Prot: prot}
	st := NewState(plan)
	if err := st.FailAll(0, 1); err != nil {
		t.Fatal(err)
	}
	if d := st.Delivered(0); d != 0 {
		t.Fatalf("Delivered = %v, want 0 after partition", d)
	}
	loads := st.Loads()
	for e, l := range loads {
		if l != 0 {
			t.Fatalf("load on link %d = %v after partition", e, l)
		}
	}
	if st.MLU() != 0 {
		t.Fatalf("MLU = %v", st.MLU())
	}
}

func TestVirtualLoadAndEvaluate(t *testing.T) {
	plan := examplePlan(t)
	// v_e for link 0: c_l * p_l(0) = (1,2,3,4); worst single = 4.
	if got := plan.VirtualLoad(0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("VirtualLoad(0) = %v, want 4", got)
	}
	// Evaluate: worst over links of virtual/capacity: link0: 4/10 = 0.4,
	// link3: 16/40 = 0.4 (base demand is 0).
	if got := plan.Evaluate(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Evaluate = %v, want 0.4", got)
	}
	plan.MLU = 0.4
	if !plan.CongestionFree() {
		t.Fatalf("plan with MLU 0.4 not congestion free")
	}
	plan.MLU = 1.2
	if plan.CongestionFree() {
		t.Fatalf("plan with MLU 1.2 reported congestion free")
	}
}

func TestStateAccessors(t *testing.T) {
	st := NewState(examplePlan(t))
	if !st.Failed().Empty() {
		t.Fatalf("fresh state has failures")
	}
	if st.Detour(0) != nil {
		t.Fatalf("detour before failure")
	}
	if err := st.Fail(1); err != nil {
		t.Fatal(err)
	}
	if !st.Failed().Contains(1) {
		t.Fatalf("Failed() missing link 1")
	}
}
