package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// precomputeLP builds the paper's LP (7) — with dual multipliers π_e(l)
// and λ_e replacing the inner maximization over X_F — and solves it
// exactly. ArbitraryFailures and DegradationModel are supported (the
// structured model (18) is handled by the FW solver).
//
// For the degradation envelope X_D the inner maximization per link e is
// the fractional knapsack max Σ u_l·c_l·p_l(e) over 0 ≤ u_l ≤ β_l,
// Σ u_l ≤ B; its LP dual replaces the π coefficient 1 with β_l and the
// λ coefficient F with B. The envelope's full single-failure anchor
// (DESIGN.md §15) is the elementwise max with max_l c_l·p_l(e), encoded
// with one auxiliary variable m_e ≥ c_l·p_l(e) and a second capacity row
// base(e) + m_e ≤ MLU·c_e.
func precomputeLP(g *graph.Graph, d *traffic.Matrix, cfg Config) (*Plan, error) {
	var (
		F    float64 // λ coefficient: failure count, or degradation budget
		degr *DegradationModel
	)
	switch m := cfg.Model.(type) {
	case ArbitraryFailures:
		F = float64(m.F)
	case DegradationModel:
		dm := m
		degr = &dm
		F = m.Budget
	default:
		return nil, errors.New("core: LP solver supports only ArbitraryFailures and DegradationModel")
	}
	nL := g.NumLinks()
	comms := routing.ODCommodities(g.NumNodes(), d.At)

	prob := lp.NewProblem()
	prob.Obs = cfg.Obs
	mluVar := prob.AddVariable("MLU", 1)

	// r variables (skipped when the base routing is fixed). rVar[k][e] =
	// -1 for links entering the commodity source ([R3] by construction).
	optimizeBase := cfg.BaseRouting == nil
	var rVar [][]int
	if optimizeBase {
		rVar = make([][]int, len(comms))
		for k, c := range comms {
			rVar[k] = make([]int, nL)
			for e := 0; e < nL; e++ {
				if g.Link(graph.LinkID(e)).Dst == c.Src {
					rVar[k][e] = -1
					continue
				}
				rVar[k][e] = prob.AddVariable(fmt.Sprintf("r%d_%d", k, e), 0)
			}
			addRoutingConstraints(prob, g, c.Src, c.Dst, rVar[k])
		}
	}

	// p variables: pVar[l][e], with [R3] excluding links into head(l).
	pVar := make([][]int, nL)
	for l := 0; l < nL; l++ {
		pVar[l] = make([]int, nL)
		head := g.Link(graph.LinkID(l)).Src
		tail := g.Link(graph.LinkID(l)).Dst
		for e := 0; e < nL; e++ {
			if g.Link(graph.LinkID(e)).Dst == head {
				pVar[l][e] = -1
				continue
			}
			pVar[l][e] = prob.AddVariable(fmt.Sprintf("p%d_%d", l, e), 0)
		}
		addRoutingConstraints(prob, g, head, tail, pVar[l])
	}

	// Dual multipliers π_e(l) and λ_e, plus the anchor variable m_e for
	// the degradation envelope.
	piVar := make([][]int, nL)
	lamVar := make([]int, nL)
	var mVar []int
	if degr != nil {
		mVar = make([]int, nL)
	}
	for e := 0; e < nL; e++ {
		piVar[e] = make([]int, nL)
		for l := 0; l < nL; l++ {
			piVar[e][l] = prob.AddVariable(fmt.Sprintf("pi%d_%d", e, l), 0)
		}
		lamVar[e] = prob.AddVariable(fmt.Sprintf("lam%d", e), 0)
		if degr != nil {
			mVar[e] = prob.AddVariable(fmt.Sprintf("m%d", e), 0)
		}
	}

	// Fixed base loads when r is given.
	var fixedLoads []float64
	if !optimizeBase {
		fl := cfg.BaseRouting.Clone()
		fl.SetDemands(d.At)
		fixedLoads = fl.Loads()
	}

	// Capacity rows: sum_ab d_ab r_ab(e) + sum_l β_l π_e(l) + λ_e B <= MLU c_e
	// (β_l = 1 and B = F in the classic model). The degradation envelope
	// adds the anchor row base(e) + m_e <= MLU c_e per link.
	baseTerms := func(e int) ([]lp.Term, float64) {
		ce := g.Link(graph.LinkID(e)).Capacity
		terms := []lp.Term{{Var: mluVar, Coef: -ce}}
		rhs := 0.0
		if optimizeBase {
			for k, c := range comms {
				if v := rVar[k][e]; v >= 0 && c.Demand > 0 {
					terms = append(terms, lp.Term{Var: v, Coef: c.Demand})
				}
			}
		} else {
			rhs = -fixedLoads[e]
		}
		return terms, rhs
	}
	for e := 0; e < nL; e++ {
		terms, rhs := baseTerms(e)
		for l := 0; l < nL; l++ {
			if degr == nil {
				terms = append(terms, lp.Term{Var: piVar[e][l], Coef: 1})
			} else if b := degr.beta(l); b > 0 {
				terms = append(terms, lp.Term{Var: piVar[e][l], Coef: b})
			}
		}
		terms = append(terms, lp.Term{Var: lamVar[e], Coef: F})
		prob.AddConstraint(terms, lp.LE, rhs)
		if degr != nil {
			anchor, arhs := baseTerms(e)
			anchor = append(anchor, lp.Term{Var: mVar[e], Coef: 1})
			prob.AddConstraint(anchor, lp.LE, arhs)
		}
	}

	// Dual feasibility rows: c_l p_l(e) - π_e(l) - λ_e <= 0, i.e. the
	// paper's (π_e(l)+λ_e)/c_l >= p_l(e). Under degradation the rows only
	// exist for degradable links (β_l > 0; others contribute no virtual
	// demand), and the anchor adds c_l p_l(e) - m_e <= 0.
	for e := 0; e < nL; e++ {
		for l := 0; l < nL; l++ {
			if pVar[l][e] < 0 {
				continue
			}
			if degr != nil && degr.beta(l) <= 0 {
				continue
			}
			cl := g.Link(graph.LinkID(l)).Capacity
			prob.AddConstraint([]lp.Term{
				{Var: pVar[l][e], Coef: cl},
				{Var: piVar[e][l], Coef: -1},
				{Var: lamVar[e], Coef: -1},
			}, lp.LE, 0)
			if degr != nil {
				prob.AddConstraint([]lp.Term{
					{Var: pVar[l][e], Coef: cl},
					{Var: mVar[e], Coef: -1},
				}, lp.LE, 0)
			}
		}
	}

	// Penalty envelope rows: normal-case load <= β × MLUopt × c_e.
	if cfg.PenaltyEnvelope >= 1 && optimizeBase {
		opt, err := mcf.MinMLUExact(g, comms, mcf.Options{Obs: cfg.Obs})
		if err != nil {
			return nil, fmt.Errorf("core: envelope baseline: %v", err)
		}
		for e := 0; e < nL; e++ {
			bound := cfg.PenaltyEnvelope * opt.MLU * g.Link(graph.LinkID(e)).Capacity
			var terms []lp.Term
			for k, c := range comms {
				if v := rVar[k][e]; v >= 0 && c.Demand > 0 {
					terms = append(terms, lp.Term{Var: v, Coef: c.Demand})
				}
			}
			if terms != nil {
				prob.AddConstraint(terms, lp.LE, bound)
			}
		}
	}

	// Delay envelope rows: sum_e PD_e r_ab(e) <= γ × PD*_ab.
	if cfg.DelayEnvelope >= 1 && optimizeBase {
		for k, c := range comms {
			dist := spf.DijkstraTo(g, c.Dst, nil, spf.DelayCost(g))
			bound := cfg.DelayEnvelope * dist[c.Src]
			var terms []lp.Term
			for e := 0; e < nL; e++ {
				if v := rVar[k][e]; v >= 0 {
					terms = append(terms, lp.Term{Var: v, Coef: g.Link(graph.LinkID(e)).Delay})
				}
			}
			prob.AddConstraint(terms, lp.LE, bound)
		}
	}

	sol, err := prob.SolveFrom(cfg.LPWarmBasis)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: LP status %v", sol.Status)
	}

	base := routing.NewFlow(g, comms)
	if optimizeBase {
		for k := range comms {
			for e := 0; e < nL; e++ {
				if v := rVar[k][e]; v >= 0 {
					base.Frac[k][e] = sol.X[v]
				}
			}
		}
	} else {
		fl := cfg.BaseRouting.Clone()
		fl.SetDemands(d.At)
		base = fl
	}
	base.RemoveLoops()

	prot := make([][]float64, nL)
	for l := 0; l < nL; l++ {
		prot[l] = make([]float64, nL)
		for e := 0; e < nL; e++ {
			if v := pVar[l][e]; v >= 0 {
				prot[l][e] = sol.X[v]
			}
		}
	}

	plan := &Plan{
		G:       g,
		Model:   cfg.Model,
		Base:    base,
		Prot:    prot,
		MLU:     sol.X[mluVar],
		LPBasis: sol.Basis,
	}
	plan.NormalMLU = routing.MLU(g, base.Loads())
	return plan, nil
}

// addRoutingConstraints adds [R1] and [R2] for one commodity whose
// variable indices are vars (with -1 marking excluded links).
func addRoutingConstraints(prob *lp.Problem, g *graph.Graph, src, dst graph.NodeID, vars []int) {
	// [R2]: unit emission from the source.
	var out []lp.Term
	for _, id := range g.Out(src) {
		if v := vars[id]; v >= 0 {
			out = append(out, lp.Term{Var: v, Coef: 1})
		}
	}
	prob.AddConstraint(out, lp.EQ, 1)
	// [R1]: conservation at intermediate nodes.
	for n := 0; n < g.NumNodes(); n++ {
		node := graph.NodeID(n)
		if node == src || node == dst {
			continue
		}
		var terms []lp.Term
		for _, id := range g.In(node) {
			if v := vars[id]; v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
		}
		for _, id := range g.Out(node) {
			if v := vars[id]; v >= 0 {
				terms = append(terms, lp.Term{Var: v, Coef: -1})
			}
		}
		if terms != nil {
			prob.AddConstraint(terms, lp.EQ, 0)
		}
	}
}
