package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestDegradationModelValidate(t *testing.T) {
	cases := []struct {
		name string
		m    DegradationModel
		ok   bool
	}{
		{"uniform", DegradationModel{Beta: 0.5, Budget: 1}, true},
		{"beta one", DegradationModel{Beta: 1, Budget: 2}, true},
		{"beta zero", DegradationModel{Beta: 0, Budget: 1}, true},
		{"per-link", DegradationModel{Beta: 0.5, Budget: 1, LinkBeta: []float64{0, 0.3, 1}}, true},
		{"beta negative", DegradationModel{Beta: -0.1, Budget: 1}, false},
		{"beta above one", DegradationModel{Beta: 1.1, Budget: 1}, false},
		{"beta NaN", DegradationModel{Beta: math.NaN(), Budget: 1}, false},
		{"budget zero", DegradationModel{Beta: 0.5, Budget: 0}, false},
		{"budget negative", DegradationModel{Beta: 0.5, Budget: -1}, false},
		{"budget NaN", DegradationModel{Beta: 0.5, Budget: math.NaN()}, false},
		{"budget Inf", DegradationModel{Beta: 0.5, Budget: math.Inf(1)}, false},
		{"link beta negative", DegradationModel{Beta: 0.5, Budget: 1, LinkBeta: []float64{-0.2}}, false},
		{"link beta above one", DegradationModel{Beta: 0.5, Budget: 1, LinkBeta: []float64{1.5}}, false},
		{"link beta NaN", DegradationModel{Beta: 0.5, Budget: 1, LinkBeta: []float64{math.NaN()}}, false},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() accepted invalid model %+v", tc.name, tc.m)
		}
	}
}

func TestDegradationDegenerate(t *testing.T) {
	cases := []struct {
		name string
		m    DegradationModel
		f    int
		ok   bool
	}{
		{"single failure", DegradationModel{Beta: 1, Budget: 1}, 1, true},
		{"triple failure", DegradationModel{Beta: 1, Budget: 3}, 3, true},
		{"fractional budget", DegradationModel{Beta: 1, Budget: 1.5}, 0, false},
		{"partial beta", DegradationModel{Beta: 0.9, Budget: 1}, 0, false},
		{"sub-unit budget", DegradationModel{Beta: 1, Budget: 0.5}, 0, false},
		{"per-link beta", DegradationModel{Beta: 1, Budget: 1, LinkBeta: []float64{1, 1}}, 0, false},
		{"huge budget", DegradationModel{Beta: 1, Budget: 1 << 31}, 0, false},
	}
	for _, tc := range cases {
		f, ok := tc.m.degenerate()
		if ok != tc.ok || (ok && f != tc.f) {
			t.Errorf("%s: degenerate() = (%d, %v), want (%d, %v)", tc.name, f, ok, tc.f, tc.ok)
		}
	}
}

// TestDegradationWorstLoadMatchesTopK pins the hard-failure limit: with
// uniform β = 1 and an integer budget F < len(v), the fractional knapsack
// takes F whole links in the exact order sumTopK sums them, so WorstLoad
// must equal sumTopK bit for bit — the property the byte-identity of
// canonicalized plans rests on.
func TestDegradationWorstLoadMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(8)
		f := 1 + rng.Intn(3)
		if f >= n {
			f = n - 1
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 100
			if rng.Intn(6) == 0 {
				v[i] = 0 // exercise the positive-value filter
			}
			if rng.Intn(7) == 0 && i > 0 {
				v[i] = v[i-1] // exercise the index tie-break
			}
		}
		m := DegradationModel{Beta: 1, Budget: float64(f)}
		got := m.WorstLoad(v)
		want := sumTopK(v, f, nil)
		if got != want {
			t.Fatalf("trial %d (n=%d f=%d): WorstLoad = %v, sumTopK = %v (diff %g)",
				trial, n, f, got, want, got-want)
		}
	}
}

// bruteWorst maximizes Σ u_l·v_l over the degradation polytope by
// enumerating its extreme points: a set S of β-saturated links plus at
// most one fractional link consuming the remaining budget (every vertex
// of {0 ≤ u ≤ β, Σu ≤ B} has at most one coordinate strictly between its
// bounds).
func bruteWorst(m DegradationModel, v []float64) float64 {
	n := len(v)
	best := 0.0
	for bits := 0; bits < 1<<n; bits++ {
		var sumBeta, val float64
		feasible := true
		for l := 0; l < n; l++ {
			if bits&(1<<l) == 0 {
				continue
			}
			b := m.beta(l)
			if b <= 0 {
				feasible = false
				break
			}
			sumBeta += b
			val += b * v[l]
		}
		if !feasible || sumBeta > m.Budget+1e-12 {
			continue
		}
		if val > best {
			best = val
		}
		rem := m.Budget - sumBeta
		if rem <= 0 {
			continue
		}
		for f := 0; f < n; f++ {
			if bits&(1<<f) != 0 {
				continue
			}
			u := m.beta(f)
			if u > rem {
				u = rem
			}
			if u <= 0 {
				continue
			}
			if x := val + u*v[f]; x > best {
				best = x
			}
		}
	}
	return best
}

// TestDegradationBruteForce is the polytope-extreme-point differential:
// the greedy knapsack (plus anchor) must match exhaustive enumeration.
func TestDegradationBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7) // ≤ 8 links keeps 2^n·n enumeration instant
		m := DegradationModel{
			Beta:   0.1 + 0.9*rng.Float64(),
			Budget: 0.2 + 3*rng.Float64(),
		}
		if rng.Intn(3) == 0 {
			lb := make([]float64, n)
			for i := range lb {
				lb[i] = rng.Float64()
				if rng.Intn(5) == 0 {
					lb[i] = 0
				}
			}
			m.LinkBeta = lb
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 50
		}
		want := bruteWorst(m, v)
		// The anchor keeps full single-failure coverage on top of the
		// knapsack; fold it into the expectation the same way.
		for l := 0; l < n; l++ {
			if m.beta(l) > 0 && v[l] > 0 && v[l] > want {
				want = v[l]
			}
		}
		got := m.WorstLoad(v)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("trial %d: WorstLoad = %.15g, brute force = %.15g (model %+v, v %v)",
				trial, got, want, m, v)
		}
	}
}

// TestDegradationActiveSet checks the subgradient the Frank–Wolfe step
// consumes: the marked fractions must reproduce WorstLoad exactly and
// respect the polytope bounds — except in the anchor regime, where a
// single link is marked at full strength by design.
func TestDegradationActiveSet(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		m := DegradationModel{
			Beta:   0.2 + 0.8*rng.Float64(),
			Budget: 0.3 + 2.5*rng.Float64(),
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 20
		}
		worst := m.WorstLoad(v)
		y := make([]float64, n)
		m.ActiveSet(v, y)
		var dot, total float64
		anchored := false
		for l, u := range y {
			if u < 0 {
				t.Fatalf("trial %d: negative fraction y[%d] = %v", trial, l, u)
			}
			if u == 1 && m.beta(l) < 1 {
				anchored = true
			} else if u > m.beta(l)+1e-12 {
				t.Fatalf("trial %d: y[%d] = %v exceeds beta %v", trial, l, u, m.beta(l))
			}
			dot += u * v[l]
			total += u
		}
		if anchored {
			// Anchor regime: exactly one link marked whole.
			if total != 1 {
				t.Fatalf("trial %d: anchor marked more than one link (Σy = %v)", trial, total)
			}
		} else if total > m.Budget+1e-12 {
			t.Fatalf("trial %d: Σy = %v exceeds budget %v", trial, total, m.Budget)
		}
		if math.Abs(dot-worst) > 1e-12*(1+worst) {
			t.Fatalf("trial %d: y·v = %.15g, WorstLoad = %.15g", trial, dot, worst)
		}
	}
}

// TestDegradationAnchorWins pins the regime where a tight budget or β cap
// keeps the knapsack below one full link: the anchor must take over with
// the single most valuable degradable link at full strength.
func TestDegradationAnchorWins(t *testing.T) {
	m := DegradationModel{Beta: 0.3, Budget: 0.5}
	v := []float64{10, 1, 2, 3}
	// Knapsack: 0.3·10 + 0.2·3 = 3.6 < anchor 10.
	if got := m.WorstLoad(v); got != 10 {
		t.Fatalf("WorstLoad = %v, want anchor 10", got)
	}
	y := make([]float64, len(v))
	m.ActiveSet(v, y)
	want := []float64{1, 0, 0, 0}
	for l := range y {
		if y[l] != want[l] {
			t.Fatalf("ActiveSet = %v, want %v", y, want)
		}
	}
	if mf := m.MaxFailures(); mf != 1 {
		t.Fatalf("MaxFailures = %d, want 1", mf)
	}
	if mf := (DegradationModel{Beta: 0.5, Budget: 3.7}).MaxFailures(); mf != 3 {
		t.Fatalf("MaxFailures = %d, want 3", mf)
	}
}

func TestDegradationWorstLoadEdgeCases(t *testing.T) {
	m := DegradationModel{Beta: 0.5, Budget: 1}
	if got := m.WorstLoad(nil); got != 0 {
		t.Fatalf("WorstLoad(nil) = %v", got)
	}
	if got := m.WorstLoad([]float64{0, 0, -3}); got != 0 {
		t.Fatalf("WorstLoad(non-positive) = %v", got)
	}
	// A link with β = 0 can never degrade, even when most valuable.
	m2 := DegradationModel{Beta: 0.5, Budget: 1, LinkBeta: []float64{0, 0.5}}
	if got, want := m2.WorstLoad([]float64{100, 4}), 4.0; got != want {
		t.Fatalf("WorstLoad with zero-beta top link = %v, want %v", got, want)
	}
	// LinkBeta shorter than v: out-of-range links cannot degrade.
	m3 := DegradationModel{Beta: 1, Budget: 1, LinkBeta: []float64{1}}
	if got, want := m3.WorstLoad([]float64{2, 50}), 2.0; got != want {
		t.Fatalf("WorstLoad beyond LinkBeta = %v, want %v", got, want)
	}
}
