// Package core implements R3 (Resilient Routing Reconfiguration): offline
// precomputation of a base routing r and a protection routing p that are
// congestion-free over the demand set d + X_F (the actual traffic matrix
// plus the rerouting virtual-demand envelope), and the online
// reconfiguration procedure that rescales p around failed links.
//
// The offline problem is the paper's equation (3)/(7); this package solves
// it either exactly (building LP (7) on internal/lp) or iteratively
// (smoothed Frank–Wolfe over the product of flow polytopes), exploiting
// the fractional-knapsack structure of the inner maximization: the
// worst-case virtual load on a link e is the sum of the F largest values
// of c_l · p_l(e).
package core

import (
	"sort"

	"repro/internal/graph"
)

// FailureModel describes which combinations of rerouting virtual demands
// can be active simultaneously — the feasible set of the inner
// maximization (5)/(18). Implementations must be safe for concurrent use.
type FailureModel interface {
	// WorstLoad returns max_x sum_l x_l p_l(e) given v[l] = c_l * p_l(e),
	// i.e. the worst-case virtual load on a link.
	WorstLoad(v []float64) float64
	// ActiveSet fills y with a maximizing selection (y[l] in [0,1] is the
	// fraction x_l/c_l of virtual demand l used by the maximizer); it is
	// the subgradient of WorstLoad at v. y must have len(v).
	ActiveSet(v []float64, y []float64)
	// MaxFailures reports the largest number of simultaneously failed
	// links the model covers (used to size evaluation scenarios).
	MaxFailures() int
}

// ArbitraryFailures is the basic R3 model X_F: up to F arbitrary link
// failures (equation (2)). The worst-case virtual load is the sum of the
// F largest v entries.
type ArbitraryFailures struct {
	F int
}

// WorstLoad implements FailureModel.
func (m ArbitraryFailures) WorstLoad(v []float64) float64 {
	return sumTopK(v, m.F, nil)
}

// ActiveSet implements FailureModel.
func (m ArbitraryFailures) ActiveSet(v []float64, y []float64) {
	for i := range y {
		y[i] = 0
	}
	sumTopK(v, m.F, y)
}

// MaxFailures implements FailureModel.
func (m ArbitraryFailures) MaxFailures() int { return m.F }

// sumTopK returns the sum of the k largest positive entries of v. When
// mark is non-nil, the selected indices are set to 1 in mark. It is
// allocation-free for k <= 32, the hot path (F is small in practice).
func sumTopK(v []float64, k int, mark []float64) float64 {
	if k <= 0 || len(v) == 0 {
		return 0
	}
	if k >= len(v) {
		var s float64
		for i, x := range v {
			if x > 0 {
				s += x
				if mark != nil {
					mark[i] = 1
				}
			}
		}
		return s
	}
	if k <= 32 {
		// Insertion-sorted descending buffer of the k best (value, index).
		var bv [32]float64
		var bi [32]int
		n := 0
		for i, x := range v {
			if x <= 0 {
				continue
			}
			if n == k && x <= bv[n-1] {
				continue
			}
			// Insert x keeping bv descending.
			j := n
			if j == k {
				j--
			}
			for j > 0 && bv[j-1] < x {
				bv[j], bi[j] = bv[j-1], bi[j-1]
				j--
			}
			bv[j], bi[j] = x, i
			if n < k {
				n++
			}
		}
		var s float64
		for i := 0; i < n; i++ {
			s += bv[i]
			if mark != nil {
				mark[bi[i]] = 1
			}
		}
		return s
	}
	// Large k: partial selection instead of a full sort. Quickselect on
	// the strict total order (value descending, index ascending) places
	// the k best entries first in O(n) expected time; only that prefix is
	// then sorted so the summation order — descending values — matches
	// the sorted reference bit for bit (entries tied in value contribute
	// identically in either order). Tie-broken selection also makes the
	// marked active set deterministic, where a full unstable sort was not.
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	topKSelect(v, idx, k)
	top := idx[:k]
	sort.Slice(top, func(a, b int) bool { return rankBefore(v, top[a], top[b]) })
	var s float64
	for i := 0; i < k; i++ {
		x := v[top[i]]
		if x <= 0 {
			break
		}
		s += x
		if mark != nil {
			mark[top[i]] = 1
		}
	}
	return s
}

// rankBefore reports whether entry a outranks entry b under the strict
// total order "value descending, index ascending".
func rankBefore(v []float64, a, b int) bool {
	return v[a] > v[b] || (v[a] == v[b] && a < b)
}

// topKSelect partially reorders idx (a permutation of [0, len(v))) so that
// idx[:k] holds the k highest-ranked entries under rankBefore, in
// arbitrary order. Hoare-partition quickselect with a middle pivot:
// expected O(n), no allocation.
func topKSelect(v []float64, idx []int, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 1 {
		if k <= lo || k >= hi {
			return
		}
		p := idx[lo+(hi-lo)/2]
		i, j := lo, hi-1
		for i <= j {
			for rankBefore(v, idx[i], p) {
				i++
			}
			for rankBefore(v, p, idx[j]) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		// idx[lo..j] outrank idx[i..hi-1]; the gap (if any) equals p.
		if k <= j+1 {
			hi = j + 1
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// GroupFailures is the structured model of equation (18): up to K
// simultaneous SRLG events plus at most one MLG (maintenance) event. A
// link's virtual demand can be active only when some covering group is
// down.
type GroupFailures struct {
	// SRLGs and MLGs hold the link IDs of each group. Groups are sets:
	// a link must appear at most once within a group (duplicates would
	// double-count its virtual demand).
	SRLGs [][]graph.LinkID
	MLGs  [][]graph.LinkID
	// K bounds the number of concurrent SRLG events.
	K int
}

// WorstLoad implements FailureModel: greedily take the K most valuable
// SRLGs plus the single most valuable MLG. Group values count each link
// once within a group; overlapping groups may double-count, which keeps
// the result a safe upper bound of the true maximum coverage.
func (m GroupFailures) WorstLoad(v []float64) float64 {
	return m.worst(v, nil)
}

// ActiveSet implements FailureModel.
func (m GroupFailures) ActiveSet(v []float64, y []float64) {
	for i := range y {
		y[i] = 0
	}
	m.worst(v, y)
}

func (m GroupFailures) worst(v []float64, mark []float64) float64 {
	val := func(grp []graph.LinkID) float64 {
		var s float64
		for _, l := range grp {
			if int(l) < len(v) && v[l] > 0 {
				s += v[l]
			}
		}
		return s
	}
	// Top-K SRLGs by value.
	vals := make([]float64, len(m.SRLGs))
	idx := make([]int, len(m.SRLGs))
	for i, grp := range m.SRLGs {
		vals[i] = val(grp)
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	var total float64
	for i := 0; i < m.K && i < len(idx); i++ {
		gi := idx[i]
		if vals[gi] <= 0 {
			break
		}
		total += vals[gi]
		if mark != nil {
			for _, l := range m.SRLGs[gi] {
				if int(l) < len(mark) {
					mark[l] = 1
				}
			}
		}
	}
	// Best single MLG.
	bestV, bestI := 0.0, -1
	for i, grp := range m.MLGs {
		if s := val(grp); s > bestV {
			bestV, bestI = s, i
		}
	}
	if bestI >= 0 {
		total += bestV
		if mark != nil {
			for _, l := range m.MLGs[bestI] {
				if int(l) < len(mark) {
					mark[l] = 1
				}
			}
		}
	}
	return total
}

// MaxFailures implements FailureModel: the largest union of K SRLGs plus
// one MLG.
func (m GroupFailures) MaxFailures() int {
	sizes := make([]int, len(m.SRLGs))
	for i, grp := range m.SRLGs {
		sizes[i] = len(grp)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	n := 0
	for i := 0; i < m.K && i < len(sizes); i++ {
		n += sizes[i]
	}
	maxMLG := 0
	for _, grp := range m.MLGs {
		if len(grp) > maxMLG {
			maxMLG = len(grp)
		}
	}
	return n + maxMLG
}

// ModelFromGraph builds a GroupFailures model from the SRLGs and MLGs
// registered on g, allowing up to k concurrent SRLG events.
func ModelFromGraph(g *graph.Graph, k int) GroupFailures {
	return GroupFailures{SRLGs: g.SRLGs(), MLGs: g.MLGs(), K: k}
}

// insertionStats scans v treating index skip as absent and returns the sum
// of the top-(F-1) positive values (sFm1) and the F-th largest positive
// value (aF, 0 when fewer than F positives exist). The worst-case virtual
// load as a function of a new value x at index skip is then
// sFm1 + max(x, aF), which lets block line searches evaluate in O(1) per
// link. Requires F <= 32.
func insertionStats(v []float64, skip, F int) (sFm1, aF float64) {
	if F <= 0 {
		return 0, 0
	}
	if F > 32 {
		panic("core: insertionStats supports F <= 32")
	}
	var buf [32]float64
	n := 0
	for i, x := range v {
		if i == skip || x <= 0 {
			continue
		}
		if n == F && x <= buf[n-1] {
			continue
		}
		j := n
		if j == F {
			j--
		}
		for j > 0 && buf[j-1] < x {
			buf[j] = buf[j-1]
			j--
		}
		buf[j] = x
		if n < F {
			n++
		}
	}
	for i := 0; i < n-1; i++ {
		sFm1 += buf[i]
	}
	if n == F {
		aF = buf[F-1]
		return sFm1, aF
	}
	// Fewer than F positives: n <= F-1, so the top-(F-1) sum includes all
	// n values and no F-th largest exists.
	if n > 0 {
		sFm1 += buf[n-1]
	}
	return sFm1, 0
}
