package core

// colTop maintains the largest positive entries of one pcol column across
// the p block sweep, so per-link line searches read their insertion stats
// in O(F) instead of rescanning the whole column per cell.
//
// Invariants. Entries are ordered by the strict total order "value
// descending, index ascending among equal values" — exactly the order the
// insertion buffers in sumTopK and insertionStats produce — and the buffer
// always holds the first min(K, #positives) entries of the column in that
// order, where K is the configured capacity (max F over requirements,
// plus one). capped reports that positive entries beyond the buffer exist;
// capped implies a full buffer, so every query for F <= K-1 is answered
// from buffered entries alone and never needs the tail. Sums are taken in
// buffer order (descending), matching the reference summation order bit
// for bit.
//
// Incremental updates are exact: an accepted p block changes a single
// index l in every column, and update either re-ranks l inside the buffer
// (when the buffer provably still holds the true top-K) or falls back to
// a full column rescan (only when l leaves a full buffer with unknown
// entries behind it — bounded by one rescan per column per accepted
// block).
type colTop struct {
	n      int
	capped bool
	val    [33]float64
	idx    [33]int32
}

// topBefore reports whether entry (v1, i1) precedes (v2, i2) in the
// buffer's total order.
func topBefore(v1 float64, i1 int32, v2 float64, i2 int32) bool {
	return v1 > v2 || (v1 == v2 && i1 < i2)
}

// rebuild recomputes the buffer from the column with capacity K.
func (t *colTop) rebuild(col []float64, K int) {
	t.n = 0
	t.capped = false
	n := 0
	for i, x := range col {
		if x <= 0 {
			continue
		}
		if n == K && !topBefore(x, int32(i), t.val[n-1], t.idx[n-1]) {
			t.capped = true
			continue
		}
		j := n
		if j == K {
			j--
			t.capped = true
		}
		for j > 0 && topBefore(x, int32(i), t.val[j-1], t.idx[j-1]) {
			t.val[j], t.idx[j] = t.val[j-1], t.idx[j-1]
			j--
		}
		t.val[j], t.idx[j] = x, int32(i)
		if n < K {
			n++
		}
	}
	t.n = n
}

// insert places (nv, l) at its ordered position, dropping the last entry
// when the buffer is at capacity K.
func (t *colTop) insert(nv float64, l int32, K int) {
	j := t.n
	if j == K {
		j--
		t.capped = true
	}
	for j > 0 && topBefore(nv, l, t.val[j-1], t.idx[j-1]) {
		t.val[j], t.idx[j] = t.val[j-1], t.idx[j-1]
		j--
	}
	t.val[j], t.idx[j] = nv, l
	if t.n < K {
		t.n++
	}
}

// remove deletes the entry at position p.
func (t *colTop) remove(p int) {
	copy(t.val[p:t.n-1], t.val[p+1:t.n])
	copy(t.idx[p:t.n-1], t.idx[p+1:t.n])
	t.n--
}

// find returns the buffer position of index l, or -1.
func (t *colTop) find(l int32) int {
	for p := 0; p < t.n; p++ {
		if t.idx[p] == l {
			return p
		}
	}
	return -1
}

// update re-establishes the invariants after col[l] changed to nv (col is
// the already-updated column, consulted only when a rescan is needed).
func (t *colTop) update(l int32, nv float64, col []float64, K int) {
	p := t.find(l)
	if p < 0 {
		// l was not buffered: its old value ranks behind the buffer tail.
		if nv <= 0 {
			return
		}
		if t.n < K {
			// Uncapped buffers hold every positive entry; add the new one.
			t.insert(nv, l, K)
			return
		}
		if topBefore(nv, l, t.val[t.n-1], t.idx[t.n-1]) {
			// Beats the buffered minimum, which itself beats every
			// unbuffered entry: (nv, l) is in the true top-K.
			t.insert(nv, l, K)
			return
		}
		// Still behind the buffer: now a positive exists outside it.
		t.capped = true
		return
	}
	// l was buffered. Removing it is exact unless the buffer is capped and
	// the new entry may fall behind unknown unbuffered entries.
	if t.capped {
		bv, bi := t.val[t.n-1], t.idx[t.n-1]
		if p == t.n-1 {
			bv, bi = t.val[p], t.idx[p] // l itself was the boundary
		}
		if nv <= 0 || !(topBefore(nv, l, bv, bi) || (nv == bv && l == bi)) {
			// The K-th entry might now be an unbuffered one we never saw.
			t.rebuild(col, K)
			return
		}
		t.remove(p)
		t.insert(nv, l, K)
		return
	}
	t.remove(p)
	if nv > 0 {
		t.insert(nv, l, K)
	}
}

// worstArb returns the sum of the top-F entries — sumTopK(col, F, nil)
// bit for bit, valid for F < len(col) (the reference's small-F branch;
// F >= len(col) switches to index-order summation and must use sumTopK
// directly).
func (t *colTop) worstArb(F int) float64 {
	n := t.n
	if F < n {
		n = F
	}
	var s float64
	for i := 0; i < n; i++ {
		s += t.val[i]
	}
	return s
}

// stats returns insertionStats(col, skip, F) bit for bit: the sum of the
// top-(F-1) positive entries with index skip excluded, and the F-th
// largest such entry (0 when fewer than F exist). Requires F <= K-1.
func (t *colTop) stats(skip int32, F int) (sFm1, aF float64) {
	if F <= 0 {
		return 0, 0
	}
	// The first F entries excluding skip, in buffer order. With a capped
	// buffer n = K >= F+1 entries are present, so the window never runs
	// out; uncapped buffers hold every positive and may run short, which
	// is exactly insertionStats' fewer-than-F tail.
	m := 0
	for p := 0; p < t.n && m < F; p++ {
		if t.idx[p] == skip {
			continue
		}
		if m < F-1 {
			sFm1 += t.val[p]
		} else {
			aF = t.val[p]
		}
		m++
	}
	if m == F {
		return sFm1, aF
	}
	// Fewer than F positives besides skip: the top-(F-1) sum holds all of
	// them and no F-th largest exists.
	return sFm1, 0
}
