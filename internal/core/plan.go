package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/routing"
)

// Plan is the output of offline precomputation: the base routing r, the
// protection routing p, and the achieved objective over d + X_F.
type Plan struct {
	G *graph.Graph
	// Model is the failure model the plan protects against.
	Model FailureModel
	// Base is the base routing r with commodity demands set from d.
	Base *routing.Flow
	// Prot is the protection routing p: Prot[l][e] is the fraction of
	// link l's rerouted traffic carried by link e.
	Prot [][]float64
	// MLU is the objective value: the maximum link utilization over the
	// entire demand set d + X_F. MLU <= 1 certifies congestion-freedom
	// under every covered failure scenario (Theorem 1).
	MLU float64
	// NormalMLU is the utilization of the base routing under d alone (no
	// failures).
	NormalMLU float64
	// LPBasis is the optimal simplex basis from the LP solver (nil for FW
	// plans). Feed it back via Config.LPWarmBasis to warm-start a
	// re-precomputation of the same problem shape. The codec does not
	// serialize it, so the wire format is unchanged.
	LPBasis *lp.Basis
}

// CongestionFree reports whether the plan carries Theorem 1's guarantee:
// every failure scenario covered by the model reroutes without overload.
func (p *Plan) CongestionFree() bool { return p.MLU <= 1+1e-9 }

// VirtualLoad returns the worst-case virtual (rerouted) load on link e
// under the plan's failure model.
func (p *Plan) VirtualLoad(e graph.LinkID) float64 {
	nL := p.G.NumLinks()
	v := make([]float64, nL)
	for l := 0; l < nL; l++ {
		v[l] = p.G.Link(graph.LinkID(l)).Capacity * p.Prot[l][e]
	}
	return p.Model.WorstLoad(v)
}

// Evaluate recomputes the plan objective from scratch: for every link,
// base load plus worst-case virtual load over capacity. It is the
// verification counterpart of the offline solvers.
func (p *Plan) Evaluate() float64 {
	baseLoads := p.Base.Loads()
	worst := 0.0
	for e := 0; e < p.G.NumLinks(); e++ {
		u := (baseLoads[e] + p.VirtualLoad(graph.LinkID(e))) / p.G.Link(graph.LinkID(e)).Capacity
		if u > worst {
			worst = u
		}
	}
	return worst
}

// State is the online view of a router network running R3: the current
// (reconfigured) base and protection routings plus the set of failed
// links. Fail applies the paper's online reconfiguration — the rescaling
// of equation (8) and the updates (9), (10) — exactly.
type State struct {
	G      *graph.Graph
	base   *routing.Flow
	prot   [][]float64
	failed graph.LinkSet
	// detours remembers ξ_e for every failed link (diagnostics and the
	// MPLS-ff data plane read these).
	detours map[graph.LinkID][]float64
	// degraded maps partially degraded links to their lost capacity
	// fraction (effective capacity (1-frac)·c). Nil until the first
	// Degrade, so purely hard-failure replays allocate nothing new.
	degraded map[graph.LinkID]float64
}

// NewState copies a plan into a mutable online state.
func NewState(plan *Plan) *State {
	prot := make([][]float64, len(plan.Prot))
	for i := range prot {
		prot[i] = append([]float64(nil), plan.Prot[i]...)
	}
	return &State{
		G:       plan.G,
		base:    plan.Base.Clone(),
		prot:    prot,
		detours: make(map[graph.LinkID][]float64),
	}
}

// Clone deep-copies the state, so tentative failure sequences (the
// transition scheduler's feasibility search) can be explored without
// disturbing the live state.
func (s *State) Clone() *State {
	prot := make([][]float64, len(s.prot))
	for i := range prot {
		prot[i] = append([]float64(nil), s.prot[i]...)
	}
	detours := make(map[graph.LinkID][]float64, len(s.detours))
	for e, xi := range s.detours {
		detours[e] = append([]float64(nil), xi...)
	}
	var degraded map[graph.LinkID]float64
	if s.degraded != nil {
		degraded = make(map[graph.LinkID]float64, len(s.degraded))
		for e, f := range s.degraded {
			degraded[e] = f
		}
	}
	return &State{
		G:        s.G,
		base:     s.base.Clone(),
		prot:     prot,
		failed:   s.failed.Clone(),
		detours:  detours,
		degraded: degraded,
	}
}

// Failed returns the set of failed links applied so far.
func (s *State) Failed() graph.LinkSet { return s.failed.Clone() }

// HasFailed reports whether link e has failed, without cloning the set
// (the data plane consults this per packet).
func (s *State) HasFailed(e graph.LinkID) bool { return s.failed.Contains(e) }

// Base returns the current (reconfigured) base routing. The caller must
// not modify it.
func (s *State) Base() *routing.Flow { return s.base }

// Prot returns the current (reconfigured) protection routing. The caller
// must not modify it.
func (s *State) Prot() [][]float64 { return s.prot }

// Detour returns ξ_e for a failed link e (nil if e has not failed).
func (s *State) Detour(e graph.LinkID) []float64 { return s.detours[e] }

// ComputeDetour returns the detour ξ_e that Fail would apply for link e:
// the rescaling of equation (8) of the current protection routing p'_e.
// It does not mutate the state, so alternative detours (e.g. an
// LP-optimal interim detour during a staged transition) can be compared
// against R3's own before committing via FailWith.
func (s *State) ComputeDetour(e graph.LinkID) []float64 {
	nL := s.G.NumLinks()
	pe := s.prot[e]
	pee := pe[e]

	xi := make([]float64, nL)
	// Below this remaining-fraction threshold the detour consists of
	// solver noise and rescaling would amplify loads unboundedly; treat
	// the link as unprotectable (the paper's pe(e)=1 case).
	const minDetourMass = 1e-3
	if pee < 1-minDetourMass {
		inv := 1 / (1 - pee)
		for l := 0; l < nL; l++ {
			if l == int(e) {
				continue
			}
			if pe[l] != 0 {
				xi[l] = pe[l] * inv
			}
		}
	}
	// else: pe(e) = 1 — the link carries no other demand (under the
	// Theorem 1 condition) and ξ_e stays zero: any demand still on e is
	// dropped, which is exactly the paper's treatment of partitions.
	return xi
}

// Fail applies the failure of link e: computes the detour ξ_e by
// rescaling p_e (equation (8)), then updates every base commodity
// (equation (9)) and every remaining protection commodity (equation (10))
// so that no demand traverses e. Failing an already-failed link is an
// error.
func (s *State) Fail(e graph.LinkID) error {
	if s.failed.Contains(e) {
		return fmt.Errorf("core: link %d already failed", e)
	}
	return s.FailWith(e, s.ComputeDetour(e))
}

// FailWith applies the failure of link e using a caller-supplied detour
// ξ_e instead of R3's rescaling — the hook the transition scheduler uses
// to model interim LP-computed detours. xi[l] is the fraction of e's
// rerouted traffic carried by link l; xi[e] must be zero and len(xi)
// must be NumLinks. Updates (9) and (10) are applied exactly as in Fail.
func (s *State) FailWith(e graph.LinkID, xi []float64) error {
	if int(e) < 0 || int(e) >= s.G.NumLinks() {
		return fmt.Errorf("core: link %d out of range", e)
	}
	if s.failed.Contains(e) {
		return fmt.Errorf("core: link %d already failed", e)
	}
	nL := s.G.NumLinks()
	if _, ok := s.degraded[e]; ok {
		// The degradation envelope does not cover fail-after-degrade
		// composition on one link: the detour ξ_e was already partially
		// consumed, so the remaining protection row no longer matches the
		// certified bound.
		return fmt.Errorf("core: link %d already degraded; cannot also fail it", e)
	}
	if len(xi) != nL {
		return fmt.Errorf("core: detour for link %d has %d entries, want %d", e, len(xi), nL)
	}
	if xi[e] != 0 {
		return fmt.Errorf("core: detour for link %d routes through the failed link itself", e)
	}

	// (9): r'_ab(l) = r_ab(l) + r_ab(e)·ξ_e(l).
	for k := range s.base.Frac {
		fr := s.base.Frac[k]
		fe := fr[e]
		if fe == 0 {
			continue
		}
		for l := 0; l < nL; l++ {
			if xi[l] != 0 {
				fr[l] += fe * xi[l]
			}
		}
		fr[e] = 0
	}
	// (10): p'_uv(l) = p_uv(l) + p_uv(e)·ξ_e(l) for surviving links uv.
	for u := 0; u < nL; u++ {
		if u == int(e) || s.failed.Contains(graph.LinkID(u)) {
			continue
		}
		pu := s.prot[u]
		pue := pu[e]
		if pue == 0 {
			continue
		}
		for l := 0; l < nL; l++ {
			if xi[l] != 0 {
				pu[l] += pue * xi[l]
			}
		}
		pu[e] = 0
	}

	s.failed.Add(e)
	s.detours[e] = append([]float64(nil), xi...)
	return nil
}

// Degrade applies a partial capacity loss to link e: a fraction frac of
// its capacity disappears, so frac of the traffic on e moves through the
// same detour ξ_e a hard failure would use, scaled by frac — updates (9)
// and (10) with fe·frac instead of fe. The remaining (1-frac) of the
// traffic stays on e, whose effective capacity becomes (1-frac)·c_e;
// the link's own utilization is invariant ((1-frac)·load / (1-frac)·c),
// and every other link's certified bound covers the moved share because
// the degradation envelope's anchor keeps each protection row at full
// single-failure strength (DESIGN.md §15).
//
// frac must lie strictly in (0, 1): a full loss is a hard failure (use
// Fail). Degrading a link twice, degrading a failed link, or failing a
// degraded link are errors — the envelope does not certify those
// compositions.
func (s *State) Degrade(e graph.LinkID, frac float64) error {
	if int(e) < 0 || int(e) >= s.G.NumLinks() {
		return fmt.Errorf("core: link %d out of range", e)
	}
	if math.IsNaN(frac) || frac <= 0 || frac >= 1 {
		return fmt.Errorf("core: degradation fraction %v outside (0, 1) for link %d (use Fail for a full loss)", frac, e)
	}
	if s.failed.Contains(e) {
		return fmt.Errorf("core: link %d already failed; cannot degrade it", e)
	}
	if _, ok := s.degraded[e]; ok {
		return fmt.Errorf("core: link %d already degraded", e)
	}
	nL := s.G.NumLinks()
	xi := s.ComputeDetour(e)

	// (9), scaled: r'_ab(l) = r_ab(l) + r_ab(e)·frac·ξ_e(l),
	// r'_ab(e) = r_ab(e)·(1-frac).
	for k := range s.base.Frac {
		fr := s.base.Frac[k]
		fe := fr[e]
		if fe == 0 {
			continue
		}
		moved := fe * frac
		for l := 0; l < nL; l++ {
			if xi[l] != 0 {
				fr[l] += moved * xi[l]
			}
		}
		fr[e] = fe * (1 - frac)
	}
	// (10), scaled, for every other surviving link's protection row. Row
	// e itself keeps its remaining strength untouched: further disruption
	// of e is forbidden below, so the row is never consumed again.
	for u := 0; u < nL; u++ {
		if u == int(e) || s.failed.Contains(graph.LinkID(u)) {
			continue
		}
		pu := s.prot[u]
		pue := pu[e]
		if pue == 0 {
			continue
		}
		moved := pue * frac
		for l := 0; l < nL; l++ {
			if xi[l] != 0 {
				pu[l] += moved * xi[l]
			}
		}
		pu[e] = pue * (1 - frac)
	}

	if s.degraded == nil {
		s.degraded = make(map[graph.LinkID]float64)
	}
	s.degraded[e] = frac
	return nil
}

// DegradedFrac returns the lost capacity fraction of link e (0 when the
// link is not degraded).
func (s *State) DegradedFrac(e graph.LinkID) float64 { return s.degraded[e] }

// Degraded returns the degraded links and their lost fractions.
func (s *State) Degraded() map[graph.LinkID]float64 {
	out := make(map[graph.LinkID]float64, len(s.degraded))
	for e, f := range s.degraded {
		out[e] = f
	}
	return out
}

// ScaleDemands multiplies the demand of the listed OD pairs by factor
// (every commodity when ods is nil) — the online form of a traffic
// surge.
func (s *State) ScaleDemands(factor float64, ods []OD) {
	if ods == nil {
		for k := range s.base.Comms {
			s.base.Comms[k].Demand *= factor
		}
		return
	}
	set := make(map[OD]bool, len(ods))
	for _, od := range ods {
		set[od] = true
	}
	for k := range s.base.Comms {
		c := &s.base.Comms[k]
		if set[OD{c.Src, c.Dst}] {
			c.Demand *= factor
		}
	}
}

// ApplyScenario replays a full scenario onto the state: surge first (the
// demand spike exists before the reaction), then hard failures in ID
// order, then degradations in listed order.
func (s *State) ApplyScenario(sc Scenario) error {
	if sc.SurgeScale > 1 {
		s.ScaleDemands(sc.SurgeScale, sc.SurgeODs)
	}
	if err := s.FailAll(sc.Failed.IDs()...); err != nil {
		return err
	}
	for _, d := range sc.Degraded {
		if err := s.Degrade(d.Link, d.Frac); err != nil {
			return err
		}
	}
	return nil
}

// FailAll applies a set of failures in the given order. Theorem 3
// guarantees the final state is order independent as long as no failure
// strands demand (p_e(e) = 1 never occurs mid-sequence); once a partition
// drops traffic, which demands were dropped — and therefore the exact
// final allocations — depends on the detection order.
//
// FailAll is all-or-nothing: the whole list is validated before anything
// is applied, so a mid-list error (an out-of-range ID, a link that
// already failed, or a duplicate within the list) leaves the state
// exactly as it was instead of with an applied prefix.
func (s *State) FailAll(links ...graph.LinkID) error {
	seen := graph.LinkSet{}
	for _, e := range links {
		if int(e) < 0 || int(e) >= s.G.NumLinks() {
			return fmt.Errorf("core: link %d out of range", e)
		}
		if s.failed.Contains(e) {
			return fmt.Errorf("core: link %d already failed", e)
		}
		if _, ok := s.degraded[e]; ok {
			return fmt.Errorf("core: link %d already degraded; cannot also fail it", e)
		}
		if seen.Contains(e) {
			return fmt.Errorf("core: link %d listed twice", e)
		}
		seen.Add(e)
	}
	for _, e := range links {
		if err := s.Fail(e); err != nil {
			// Unreachable after validation; surface it rather than hide it.
			return err
		}
	}
	return nil
}

// Loads returns the per-link load of the current base routing (demands ×
// reconfigured fractions). Failed links always carry zero load.
func (s *State) Loads() []float64 {
	return s.base.Loads()
}

// MLU returns the maximum utilization over surviving links, measured
// against effective capacities: a degraded link is judged at
// (1-frac)·c_e.
func (s *State) MLU() float64 {
	loads := s.Loads()
	worst := 0.0
	for e, l := range loads {
		if s.failed.Contains(graph.LinkID(e)) {
			continue
		}
		c := s.G.Link(graph.LinkID(e)).Capacity
		if f, ok := s.degraded[graph.LinkID(e)]; ok {
			c *= 1 - f
		}
		if u := l / c; u > worst {
			worst = u
		}
	}
	return worst
}

// Delivered returns the fraction of commodity k's demand that still
// reaches its destination (1 unless reconfiguration dropped traffic at a
// partition), measured as net inflow at the destination.
func (s *State) Delivered(k int) float64 {
	c := s.base.Comms[k]
	var in, out float64
	for _, id := range s.G.In(c.Dst) {
		in += s.base.Frac[k][id]
	}
	for _, id := range s.G.Out(c.Dst) {
		out += s.base.Frac[k][id]
	}
	d := in - out
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// SetDemands overwrites the demands of the state's base commodities, so a
// precomputed plan can be evaluated against a different traffic matrix
// (e.g. another interval of a diurnal series).
func (s *State) SetDemands(demand func(a, b graph.NodeID) float64) {
	s.base.SetDemands(demand)
}

// LostDemand returns the total demand dropped because reconfiguration hit
// a partition (sum over commodities of demand × undelivered fraction).
func (s *State) LostDemand() float64 {
	var lost float64
	for k := range s.base.Comms {
		d := s.base.Comms[k].Demand
		if d == 0 {
			continue
		}
		lost += d * (1 - s.Delivered(k))
	}
	return lost
}

// ProtEquals reports whether another state has the same protection
// routing within eps for every surviving link (used by order-independence
// tests). Rows of failed links are snapshots from the moment they failed
// and legitimately depend on the failure order, so they are not compared.
func (s *State) ProtEquals(o *State, eps float64) bool {
	if len(s.prot) != len(o.prot) || !s.failed.Equal(o.failed) {
		return false
	}
	for u := range s.prot {
		if s.failed.Contains(graph.LinkID(u)) {
			continue
		}
		for l := range s.prot[u] {
			if math.Abs(s.prot[u][l]-o.prot[u][l]) > eps {
				return false
			}
		}
	}
	return true
}

// BaseEquals reports whether another state has the same base routing
// within eps.
func (s *State) BaseEquals(o *State, eps float64) bool {
	if len(s.base.Frac) != len(o.base.Frac) {
		return false
	}
	for k := range s.base.Frac {
		for l := range s.base.Frac[k] {
			if math.Abs(s.base.Frac[k][l]-o.base.Frac[k][l]) > eps {
				return false
			}
		}
	}
	return true
}
