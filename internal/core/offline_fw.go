package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// Solver selects the offline optimization engine.
type Solver int

// Offline solvers.
const (
	// SolverFW is the iterative smoothed Frank–Wolfe solver; it scales to
	// the largest topologies.
	SolverFW Solver = iota
	// SolverLP builds the paper's LP (7) and solves it exactly with the
	// simplex solver; intended for small topologies and tests.
	SolverLP
)

// Config controls Precompute.
type Config struct {
	// Model is the failure model to protect against (default
	// ArbitraryFailures{1}).
	Model FailureModel
	// BaseRouting fixes the base routing r (e.g. OSPF) instead of jointly
	// optimizing it. The flow's commodities are matched to the traffic
	// matrix by (src, dst).
	BaseRouting *routing.Flow
	// Solver selects the engine (default SolverFW).
	Solver Solver
	// Iterations bounds Frank–Wolfe iterations (default 200).
	Iterations int
	// PenaltyEnvelope, when >= 1, bounds the normal-case MLU to
	// PenaltyEnvelope × the optimal no-failure MLU (paper §3.5). The LP
	// solver enforces the bound exactly for any β; the FW solver
	// implements the β→1 limit by pinning the base routing to the optimal
	// no-failure flow and optimizing only the protection routing, which
	// always satisfies the envelope for β >= 1 (up to the min-MLU
	// solver's own tolerance).
	PenaltyEnvelope float64
	// Workers bounds the FW solver's parallelism (default GOMAXPROCS;
	// 1 forces serial execution). The solver's parallel loops reduce in a
	// fixed index order, so the produced plan is bit-identical for every
	// worker count — Workers trades only wall-clock time. The LP solver
	// ignores it.
	Workers int
	// Obs, when non-nil, receives solver metrics and traces: per-epoch
	// MLU/step-size spans under trace "fw", SPF and epoch counters, LP
	// pivot counts, and worker-pool gauges. Instrumentation never affects
	// the produced plan — plans are byte-identical with Obs nil or live —
	// and costs nothing when Obs is nil (all handles no-op).
	Obs *obs.Registry
	// DelayEnvelope, when >= 1, bounds each OD pair's mean propagation
	// delay to DelayEnvelope × its shortest-path delay (paper §3.5). The
	// LP solver enforces it exactly; the FW solver starts from minimum-
	// delay paths and restricts oracle directions to delay-feasible paths
	// (average delay is linear in the fractions, so every iterate stays
	// within the bound). When combined with PenaltyEnvelope under the FW
	// solver, the penalty envelope wins (the base is pinned to the
	// min-MLU routing); use the LP solver to enforce both together.
	DelayEnvelope float64
	// LPWarmBasis warm-starts the LP solver from a basis produced by a
	// previous precomputation of the same problem shape (see
	// Plan.LPBasis). A mismatched basis silently falls back to a cold
	// solve, so passing a stale basis is safe; the FW solver ignores it.
	LPWarmBasis *lp.Basis
	// SPF selects the shortest-path kernel driving the FW solver's oracle
	// sweeps (default spf.ModeAuto). Every mode produces bitwise-identical
	// shortest-path trees (see the contract in internal/spf), so the plan
	// is byte-identical whichever mode is active — SPF trades only
	// wall-clock time. The LP solver ignores it.
	SPF spf.Mode
	// Surge, when non-nil, folds a traffic-surge envelope into the
	// protection bound: for every input matrix, the surged variant (top
	// Surge.Frac OD pairs scaled by Surge.Scale) is added as an extra
	// vertex of the demand hull, so the plan is congestion-free for every
	// partial surge up to Scale as well (convexity). FW solver only.
	Surge *SurgeSpec
}

// Priority couples one traffic class with the number of failures it must
// tolerate (paper §3.5, prioritized resilient routing).
type Priority struct {
	// Demand is this class's own traffic (not cumulative).
	Demand *traffic.Matrix
	// F is the number of overlapping link failures the class tolerates.
	F int
}

// Precompute runs R3 offline precomputation for a single traffic matrix.
func Precompute(g *graph.Graph, d *traffic.Matrix, cfg Config) (*Plan, error) {
	return PrecomputeVariations(g, []*traffic.Matrix{d}, cfg)
}

// PrecomputeVariations runs offline precomputation over a convex hull of
// traffic matrices {d_1..d_H} (paper §3.5, handling traffic variations):
// the returned plan is congestion-free for every matrix in the hull plus
// virtual demands. Internally each hull vertex contributes its own set of
// utilization rows.
func PrecomputeVariations(g *graph.Graph, ds []*traffic.Matrix, cfg Config) (*Plan, error) {
	if len(ds) == 0 {
		return nil, errors.New("core: no traffic matrices")
	}
	if cfg.Model == nil {
		cfg.Model = ArbitraryFailures{F: 1}
	}
	if dm, ok := cfg.Model.(DegradationModel); ok {
		if err := dm.Validate(); err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		// Canonicalize the hard-failure limit (uniform β = 1, integer
		// budget) to the classic model before dispatch: the solvers' fast
		// paths, the LP branch and every golden plan stay byte-identical.
		if f, ok := dm.degenerate(); ok {
			cfg.Model = ArbitraryFailures{F: f}
		}
	}
	if cfg.Surge != nil {
		if err := cfg.Surge.Validate(); err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		if cfg.Solver == SolverLP {
			return nil, errors.New("core: surge envelopes require the FW solver (the LP builds a single-matrix program)")
		}
		// Fold each matrix's surged variant into the demand hull as an
		// extra vertex; convexity then covers every partial surge.
		withSurge := make([]*traffic.Matrix, 0, 2*len(ds))
		withSurge = append(withSurge, ds...)
		for _, d := range ds {
			withSurge = append(withSurge, cfg.Surge.Apply(d))
		}
		ds = withSurge
	}
	if cfg.Solver == SolverLP {
		if len(ds) != 1 {
			return nil, errors.New("core: LP solver supports a single matrix")
		}
		return precomputeLP(g, ds[0], cfg)
	}
	// Union of OD supports, demands from the envelope max... no: each
	// hull vertex is its own requirement with the same failure model.
	comms := unionCommodities(ds)
	reqs := make([]requirement, len(ds))
	for i, d := range ds {
		reqs[i] = requirement{demands: demandVector(comms, d), model: cfg.Model}
	}
	return solveFW(g, comms, reqs, cfg)
}

// PrecomputePrioritized runs offline precomputation for prioritized
// traffic classes (paper §3.5): class i must be protected against F_i
// failures, enforced through cumulative demand sets d_i + X_{F_i}.
func PrecomputePrioritized(g *graph.Graph, classes []Priority, cfg Config) (*Plan, error) {
	if len(classes) == 0 {
		return nil, errors.New("core: no priority classes")
	}
	if cfg.Solver == SolverLP {
		return nil, errors.New("core: prioritized precomputation requires the FW solver")
	}
	// Sort by descending F and build cumulative demands: d_i is the total
	// traffic needing protection level F_i or higher.
	sorted := append([]Priority(nil), classes...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].F > sorted[i].F {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	mats := make([]*traffic.Matrix, len(sorted))
	for i := range sorted {
		mats[i] = sorted[i].Demand
	}
	comms := unionCommodities(mats)

	var reqs []requirement
	cum := traffic.NewMatrix(sorted[0].Demand.N)
	for i := 0; i < len(sorted); i++ {
		cum = cum.Add(sorted[i].Demand)
		// Requirement: cumulative demand from the highest classes down to
		// i, protected against F_i failures.
		reqs = append(reqs, requirement{
			demands: demandVector(comms, cum),
			model:   ArbitraryFailures{F: sorted[i].F},
		})
	}
	// Reverse so reqs[0] carries the full demand (used for NormalMLU and
	// penalty envelope rows).
	for i, j := 0, len(reqs)-1; i < j; i, j = i+1, j-1 {
		reqs[i], reqs[j] = reqs[j], reqs[i]
	}
	if cfg.Model == nil {
		cfg.Model = ArbitraryFailures{F: sorted[0].F}
	}
	return solveFW(g, comms, reqs, cfg)
}

// requirement is one "demand set + failure model" pair: the plan must keep
// every link's base load (under demands) plus worst-case virtual load
// (under model) within MLU × capacity.
type requirement struct {
	demands []float64 // per commodity
	model   FailureModel
}

// unionCommodities builds OD commodities over the union of supports.
func unionCommodities(ds []*traffic.Matrix) []routing.Commodity {
	n := ds[0].N
	return routing.ODCommodities(n, func(a, b graph.NodeID) float64 {
		var m float64
		for _, d := range ds {
			if v := d.At(a, b); v > m {
				m = v
			}
		}
		return m
	})
}

func demandVector(comms []routing.Commodity, d *traffic.Matrix) []float64 {
	v := make([]float64, len(comms))
	for k, c := range comms {
		v[k] = d.At(c.Src, c.Dst)
	}
	return v
}

// solveFW is the iterative offline solver: smoothed Frank–Wolfe over the
// product of flow polytopes for (r, p).
func solveFW(g *graph.Graph, comms []routing.Commodity, reqs []requirement, cfg Config) (*Plan, error) {
	nL := g.NumLinks()
	nK := len(comms)
	iters := cfg.Iterations
	if iters == 0 {
		iters = 200
	}
	capac := make([]float64, nL)
	for e := 0; e < nL; e++ {
		capac[e] = g.Link(graph.LinkID(e)).Capacity
	}

	// ---- Initialization ----
	optimizeBase := cfg.BaseRouting == nil
	R := make([][]float64, nK)
	totalDemand := reqs[0].demands
	if optimizeBase {
		initComms := make([]routing.Commodity, nK)
		copy(initComms, comms)
		for k := range initComms {
			initComms[k].Demand = totalDemand[k]
		}
		initIters := 120
		if cfg.PenaltyEnvelope >= 1 {
			// Penalty envelope (FW): pin the base to the optimal
			// no-failure routing — the β→1 limit of the paper's hard
			// constraint — and optimize only p below.
			initIters = 300
			optimizeBase = false
		}
		res := mcf.MinMLU(g, initComms, mcf.Options{Iterations: initIters})
		for k := 0; k < nK; k++ {
			R[k] = append([]float64(nil), res.Flow.Frac[k]...)
		}
	} else {
		// Match provided flow rows by OD pair.
		type pair struct{ a, b graph.NodeID }
		rows := make(map[pair][]float64, len(cfg.BaseRouting.Comms))
		for k, c := range cfg.BaseRouting.Comms {
			rows[pair{c.Src, c.Dst}] = cfg.BaseRouting.Frac[k]
		}
		for k, c := range comms {
			row, ok := rows[pair{c.Src, c.Dst}]
			if !ok {
				return nil, fmt.Errorf("core: base routing missing OD pair %d->%d", c.Src, c.Dst)
			}
			R[k] = append([]float64(nil), row...)
		}
	}

	// Protection init: shortest detour avoiding the link itself when one
	// exists, otherwise route on the link (p_l(l)=1 means "unprotected").
	P := make([][]float64, nL)
	for l := 0; l < nL; l++ {
		P[l] = make([]float64, nL)
		lid := graph.LinkID(l)
		link := g.Link(lid)
		avoid := func(id graph.LinkID) bool { return id != lid }
		path := spf.ShortestPath(g, link.Src, link.Dst, avoid, spf.WeightCost(g))
		if path == nil {
			P[l][l] = 1
		} else {
			for _, id := range path {
				P[l][id] = 1
			}
		}
	}

	// Delay envelope bounds per commodity. Average path delay is linear in
	// the routing fractions, so starting from the (trivially feasible)
	// minimum-delay paths and only ever mixing in delay-feasible oracle
	// paths keeps every iterate inside the envelope.
	var delayCap []float64
	if cfg.DelayEnvelope >= 1 {
		delayCap = make([]float64, nK)
		nextCache := map[graph.NodeID][]graph.LinkID{}
		distCache := map[graph.NodeID][]float64{}
		for k, c := range comms {
			dist, ok := distCache[c.Dst]
			if !ok {
				var next []graph.LinkID
				dist, next = spf.DijkstraToWithNext(g, c.Dst, nil, spf.DelayCost(g))
				distCache[c.Dst] = dist
				nextCache[c.Dst] = next
			}
			delayCap[k] = cfg.DelayEnvelope * dist[c.Src]
			if optimizeBase {
				for e := range R[k] {
					R[k][e] = 0
				}
				for _, id := range spf.PathVia(g, c.Src, nextCache[c.Dst]) {
					R[k][id] = 1
				}
			}
		}
	}

	st := &fwState{
		g: g, comms: comms, reqs: reqs, capac: capac,
		R: R, P: P, delayCap: delayCap,
		optimizeBase: optimizeBase,
		pool:         par.New(cfg.Workers),
		o:            newFWObs(cfg.Obs),
		spfMode:      cfg.SPF.Resolve(g.NumNodes()),
	}
	if cfg.Obs != nil {
		pool := st.pool
		cfg.Obs.GaugeFunc("fw.pool_pending", pool.Pending)
		cfg.Obs.GaugeFunc("fw.pool_loops", func() int64 { loops, _ := pool.Stats(); return loops })
		cfg.Obs.GaugeFunc("fw.pool_items", func() int64 { _, items := pool.Stats(); return items })
	}
	st.run(iters)

	// ---- Package the plan ----
	base := routing.NewFlow(g, comms)
	for k := 0; k < nK; k++ {
		base.Frac[k] = st.R[k]
		base.Comms[k].Demand = totalDemand[k]
	}
	base.RemoveLoops()
	sanitizeProt(g, st.P)
	plan := &Plan{
		G:     g,
		Model: reqs[highestModelIndex(reqs)].model,
		Base:  base,
		Prot:  st.P,
		MLU:   st.objective(),
	}
	plan.NormalMLU = routing.MLU(g, base.Loads())
	// The epoch loop tracked the running objective; settle the gauge on
	// the restored-best plan value.
	st.o.mlu.Set(plan.MLU)
	return plan, nil
}

func highestModelIndex(reqs []requirement) int {
	best, bi := -1, 0
	for i, r := range reqs {
		if f := r.model.MaxFailures(); f > best {
			best, bi = f, i
		}
	}
	return bi
}

// fwObs bundles the solver's metric handles. The zero value (all nil) is
// the uninstrumented configuration: every call is a nil-receiver no-op,
// so the solver code reports unconditionally.
type fwObs struct {
	spf       *obs.Counter    // Dijkstra invocations in the solver loop
	repairs   *obs.Counter    // incremental tree repairs (spf.incremental_repairs)
	fallbacks *obs.Counter    // flat rebuilds of dynamic trees (spf.full_fallbacks)
	dirtyFrac *obs.Histogram  // dirty-link percentage per tree update (spf.dirty_frac)
	epochs    *obs.Counter    // completed FW epochs
	mlu       *obs.FloatGauge // latest true objective
	step      *obs.FloatGauge // latest accepted global step size
	trace     *obs.Trace      // span tree: fw.run > epoch > {directions, global-step, r-sweep, p-sweep}
}

func newFWObs(reg *obs.Registry) fwObs {
	if reg == nil {
		return fwObs{}
	}
	return fwObs{
		spf:       reg.Counter("fw.spf"),
		repairs:   reg.Counter("spf.incremental_repairs"),
		fallbacks: reg.Counter("spf.full_fallbacks"),
		dirtyFrac: reg.Histogram("spf.dirty_frac", obs.LinearBounds(0, 10, 10)),
		epochs:    reg.Counter("fw.epochs"),
		mlu:       reg.FloatGauge("fw.mlu"),
		step:      reg.FloatGauge("fw.step"),
		trace:     reg.Trace("fw"),
	}
}

// noteUpdate routes one DynTree.Update outcome to the observability
// handles (all no-ops when uninstrumented).
func (o *fwObs) noteUpdate(kind spf.UpdateKind, frac float64) {
	switch kind {
	case spf.UpdateRepaired:
		o.repairs.Inc()
	case spf.UpdateRebuilt:
		o.fallbacks.Inc()
	}
	if kind != spf.UpdateNone {
		o.dirtyFrac.Observe(int64(frac * 100))
	}
}

// fwState carries the Frank–Wolfe iterate.
type fwState struct {
	g            *graph.Graph
	comms        []routing.Commodity
	reqs         []requirement
	capac        []float64
	R            [][]float64 // [commodity][link]
	P            [][]float64 // [protected link][link]
	delayCap     []float64   // nil when no delay envelope
	optimizeBase bool
	pool         *par.Pool
	o            fwObs
	spfMode      spf.Mode // resolved kernel mode (never ModeAuto)

	// best-so-far snapshot by true objective
	bestObj float64
	bestR   [][]float64
	bestP   [][]float64

	// scratch
	pcol [][]float64 // [link e][protected l]: c_l * P[l][e]

	// hot-path arenas: every per-epoch buffer the solver used to allocate
	// lives here and is reused across epochs (see DESIGN.md §9). csr is
	// the flat graph view the SPF kernel reads; tops maintains each pcol
	// column's largest entries incrementally when every requirement is an
	// ArbitraryFailures model (topK = max F + 1; 0 disables it).
	csr     *graph.CSR
	ar      fwArena
	tops    []colTop
	topK    int
	spfPool spf.ScratchPool
	bufMu   sync.Mutex
	bufFree [][]float64 // free list of len-nL rows for per-worker scratch

	// Incremental-SPF state (spfMode != ModeFlat): one dynamic reverse
	// tree per protected link, repaired across epochs from the sparse
	// gradient-cost deltas instead of rebuilt by a full Dijkstra.
	pTrees   []spf.DynTree
	stampGen int32 // generation for ar.stampE
	pbMu     sync.Mutex
	pbFree   [][]graph.LinkID // free list of path scratch for delayBoundedPath
}

// fwArena holds the solver's reusable buffers. Ownership rule: a buffer is
// either fully overwritten by its producer before any read (q, us, dirR,
// dirP, pcolDir, dirLoads, rCost, diff) or explicitly zeroed at the start
// of the producing pass (costP, loads); consumers never read a buffer
// across an epoch boundary.
type fwArena struct {
	objLoads [][]float64 // objective(): base loads [req][link]
	loads    [][]float64 // run(): epoch base loads [req][link]
	q        [][]float64 // softmax gradient weights [req][link]
	u0       [][]float64 // r-sweep: static utilizations [req][link]
	expu     [][]float64 // r-sweep: cached exp terms for u0 [req][link]
	diff     []float64   // r-sweep: xDir - rk per link
	active   []int32     // r-sweep: links with nonzero diff
	dirR     [][]float64 // global step: direction fractions [commodity][link]
	dirLoads [][]float64 // global step: direction loads [req][link]
	dirP     [][]float64 // global step: direction protection [link][link]
	pcolDir  [][]float64 // global step: direction columns [link][link]
	us       []float64   // global step: utilization cells [req*link]
	costP    [][]float64 // pDirections: gradient costs [protected][link]
	rCost    []float64   // rDirections: shared cost row (single requirement)
	rPaths   [][]graph.LinkID
	pPaths   [][]graph.LinkID
	rPathBuf [][]graph.LinkID // retained path storage per commodity
	pPathBuf [][]graph.LinkID // retained path storage per protected link
	dsts     []graph.NodeID   // rDirections: sorted distinct destinations
	dstComms [][]int          // rDirections: commodities per destination

	// Incremental-SPF scratch (unused under ModeFlat).
	pPat     [][]int32        // pDirections: previous epoch's nonzero cells per protected link
	pPatNew  [][]int32        // pDirections: current epoch's nonzero cells per protected link
	patPairs [][]int32        // pDirections: per-chunk (l, e) first-contribution pairs
	pIDs     [][]int32        // pDirections: per-link candidate link ids (old ∪ new pattern)
	pVals    [][]float64      // pDirections: per-link candidate costs, aligned with pIDs
	stampE   []int32          // p-sweep: generation-stamped active-cell marker per link
	active2  []int32          // p-sweep: active cells of the last accepted block
	delay    []float64        // delayBoundedPath: per-link propagation delay row
	dPathBuf [][]graph.LinkID // retained delay-bounded path per commodity
}

func newMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

// ensureArena sizes the reusable buffers once per solve.
func (s *fwState) ensureArena() {
	if s.ar.q != nil {
		return
	}
	nI, nK, nL := len(s.reqs), len(s.comms), s.g.NumLinks()
	a := &s.ar
	a.loads = newMatrix(nI, nL)
	a.q = newMatrix(nI, nL)
	a.u0 = newMatrix(nI, nL)
	a.expu = newMatrix(nI, nL)
	a.diff = make([]float64, nL)
	a.active = make([]int32, nL)
	a.dirR = newMatrix(nK, nL)
	a.dirLoads = newMatrix(nI, nL)
	a.dirP = newMatrix(nL, nL)
	a.pcolDir = newMatrix(nL, nL)
	a.us = make([]float64, nI*nL)
	a.costP = newMatrix(nL, nL)
	a.rCost = make([]float64, nL)
	a.rPaths = make([][]graph.LinkID, nK)
	a.pPaths = make([][]graph.LinkID, nL)
	a.rPathBuf = make([][]graph.LinkID, nK)
	a.pPathBuf = make([][]graph.LinkID, nL)
	a.delay = make([]float64, nL)
	for e := 0; e < nL; e++ {
		a.delay[e] = s.g.Link(graph.LinkID(e)).Delay
	}
	a.dPathBuf = make([][]graph.LinkID, nK)
	if s.spfMode != spf.ModeFlat {
		a.pPat = make([][]int32, nL)
		a.pPatNew = make([][]int32, nL)
		a.pIDs = make([][]int32, nL)
		a.pVals = make([][]float64, nL)
		a.stampE = make([]int32, nL)
		a.active2 = make([]int32, nL)
	}
}

// getBuf and putBuf recycle len-nL float rows for per-worker scratch in
// parallel loops (scratch contents never affect results, so recycling
// order is immaterial to determinism).
func (s *fwState) getBuf() []float64 {
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	if n := len(s.bufFree); n > 0 {
		b := s.bufFree[n-1]
		s.bufFree = s.bufFree[:n-1]
		return b
	}
	return make([]float64, s.g.NumLinks())
}

func (s *fwState) putBuf(b []float64) {
	s.bufMu.Lock()
	s.bufFree = append(s.bufFree, b)
	s.bufMu.Unlock()
}

// baseLoads computes per-requirement per-link base loads for fractions R
// into dst (allocated when nil). Work is split over (requirement,
// link-chunk) tasks: each link cell is zeroed and then summed over
// commodities in ascending k order by exactly one worker, so the result is
// bit-identical for any worker count; the inline variant runs the same
// zero-then-accumulate per cell without spawning closures, so warm calls
// are allocation-free on a serial pool.
func (s *fwState) baseLoads(R [][]float64, dst [][]float64) [][]float64 {
	nL := s.g.NumLinks()
	if dst == nil {
		dst = newMatrix(len(s.reqs), nL)
	}
	if s.pool.Inline() {
		for i := range s.reqs {
			dem := s.reqs[i].demands
			li := dst[i]
			for e := range li {
				li[e] = 0
			}
			for k := range s.comms {
				d := dem[k]
				if d == 0 {
					continue
				}
				rk := R[k]
				for e := 0; e < nL; e++ {
					if v := rk[e]; v != 0 {
						li[e] += d * v
					}
				}
			}
		}
		return dst
	}
	nC := par.NumChunks(nL)
	s.pool.ForEach(len(s.reqs)*nC, func(t int) {
		i := t / nC
		lo, hi := par.Chunk(nL, t%nC)
		dem := s.reqs[i].demands
		li := dst[i]
		for e := lo; e < hi; e++ {
			li[e] = 0
		}
		for k := range s.comms {
			d := dem[k]
			if d == 0 {
				continue
			}
			rk := R[k]
			for e := lo; e < hi; e++ {
				if v := rk[e]; v != 0 {
					li[e] += d * v
				}
			}
		}
	})
	return dst
}

// columns builds pcol[e][l] = c_l * P[l][e].
func (s *fwState) columns(P [][]float64, dst [][]float64) [][]float64 {
	nL := s.g.NumLinks()
	if dst == nil {
		dst = make([][]float64, nL)
		for e := range dst {
			dst[e] = make([]float64, nL)
		}
	}
	// Each worker owns a contiguous range of columns dst[e][·]; entries
	// are pure assignments, so any split is bit-identical to serial. The
	// inline variant performs the same assignments with plain loops.
	if s.pool.Inline() {
		for e := 0; e < nL; e++ {
			col := dst[e]
			for l := range col {
				col[l] = 0
			}
		}
		for l := 0; l < nL; l++ {
			cl := s.capac[l]
			pl := P[l]
			for e := 0; e < nL; e++ {
				if v := pl[e]; v != 0 {
					dst[e][l] = cl * v
				}
			}
		}
		return dst
	}
	s.pool.ForEachChunk(nL, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			col := dst[e]
			for l := range col {
				col[l] = 0
			}
		}
		for l := 0; l < nL; l++ {
			cl := s.capac[l]
			pl := P[l]
			for e := lo; e < hi; e++ {
				if v := pl[e]; v != 0 {
					dst[e][l] = cl * v
				}
			}
		}
	})
	return dst
}

// objective evaluates the true (non-smoothed) objective of the current
// iterate: max over requirements and links of utilization. Per-cell values
// feed a max, which is order-insensitive, so the inline and chunk-reduced
// evaluations agree bit for bit.
func (s *fwState) objective() float64 {
	nL := s.g.NumLinks()
	if s.ar.objLoads == nil {
		s.ar.objLoads = newMatrix(len(s.reqs), nL)
	}
	loads := s.baseLoads(s.R, s.ar.objLoads)
	s.pcol = s.columns(s.P, s.pcol)
	worst := 0.0
	if s.pool.Inline() {
		for i := range s.reqs {
			li := loads[i]
			model := s.reqs[i].model
			for e := 0; e < nL; e++ {
				if u := (li[e] + model.WorstLoad(s.pcol[e])) / s.capac[e]; u > worst {
					worst = u
				}
			}
		}
		return worst
	}
	for i := range s.reqs {
		li := loads[i]
		model := s.reqs[i].model
		wi := par.Reduce(s.pool, nL, 0.0, func(lo, hi int) float64 {
			w := 0.0
			for e := lo; e < hi; e++ {
				if u := (li[e] + model.WorstLoad(s.pcol[e])) / s.capac[e]; u > w {
					w = u
				}
			}
			return w
		}, math.Max)
		if wi > worst {
			worst = wi
		}
	}
	return worst
}

// run executes the Frank–Wolfe loop.

// run executes the offline optimization as a hybrid of global Frank–Wolfe
// steps and block-coordinate refinement. Each epoch: (1) compute softmax
// gradient weights of the smoothed min-max objective; (2) take one global
// step — every commodity moves toward its oracle path with a shared step
// size found by line search — which escapes configurations where the max
// is supported by many commodities at once; (3) sweep every block (OD
// commodity, then every protected link) with its own exact line search,
// which refines solutions global FW only reaches with O(1/t) zig-zagging.
// The best iterate by true objective is kept. effort scales the epoch
// count.
func (s *fwState) run(effort int) {
	epochs := effort / 5
	if epochs < 12 {
		epochs = 12
	}
	if epochs > 120 {
		epochs = 120
	}
	nL := s.g.NumLinks()
	nI := len(s.reqs)

	// Fast insertion-stats evaluation applies when every model is
	// ArbitraryFailures (the common case, including priorities), with a
	// second fast path for GroupFailures with K=1 (the SRLG+MLG model the
	// US-ISP experiments use).
	arbF := make([]int, nI)
	allArb := true
	grp1 := make([]GroupFailures, nI)
	allGrp1 := true
	for i, r := range s.reqs {
		// insertionStats supports F <= 32; larger F (e.g. the naive
		// all-links ablation) falls back to the generic evaluation.
		if m, ok := r.model.(ArbitraryFailures); ok && m.F <= 32 {
			arbF[i] = m.F
		} else {
			allArb = false
		}
		if m, ok := r.model.(GroupFailures); ok && m.K == 1 {
			grp1[i] = m
		} else {
			allGrp1 = false
		}
	}

	s.bestObj = math.Inf(1)
	s.ensureArena()
	s.csr = s.g.CSR()
	if s.spfMode != spf.ModeFlat && s.pTrees == nil {
		s.pTrees = make([]spf.DynTree, nL)
		useDelta := s.spfMode == spf.ModeDelta
		for l := 0; l < nL; l++ {
			s.pTrees[l].Reset(s.csr, s.g.Link(graph.LinkID(l)).Dst, useDelta)
		}
	}

	// Incremental top-F selection per pcol column: valid whenever every
	// model is ArbitraryFailures. K is one more than the largest F so the
	// per-link line-search stats (which exclude one index) always find
	// enough entries in the buffer.
	s.topK = 0
	if allArb {
		maxF := 0
		for _, f := range arbF {
			if f > maxF {
				maxF = f
			}
		}
		s.topK = maxF + 1
		if s.tops == nil {
			s.tops = make([]colTop, nL)
		}
	}
	// The incremental p sweep rides on the colTop fast path (allArb with
	// worstArb-valid F on every requirement); ModeFlat keeps the reference
	// evaluation, which the differential tests compare against.
	incSweep := s.spfMode != spf.ModeFlat && s.topK > 0
	for _, f := range arbF {
		if f >= nL {
			incSweep = false
		}
	}
	rebuildTops := func() {
		if s.topK == 0 {
			return
		}
		if s.pool.Inline() {
			for e := 0; e < nL; e++ {
				s.tops[e].rebuild(s.pcol[e], s.topK)
			}
			return
		}
		s.pool.ForEachChunk(nL, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				s.tops[e].rebuild(s.pcol[e], s.topK)
			}
		})
	}

	loads := s.baseLoads(s.R, s.ar.loads)
	s.pcol = s.columns(s.P, s.pcol)
	W := make([][]float64, nI)
	for i := range W {
		W[i] = make([]float64, nL)
	}
	nC := par.NumChunks(nL)
	fillW := func(i, lo, hi int) {
		Wi := W[i]
		// The maintained top buffers answer sumTopK bit for bit as long as
		// F stays below the column length (the reference switches to
		// index-order summation at F >= len).
		if s.topK > 0 && arbF[i] < nL {
			F := arbF[i]
			for e := lo; e < hi; e++ {
				Wi[e] = s.tops[e].worstArb(F)
			}
			return
		}
		model := s.reqs[i].model
		for e := lo; e < hi; e++ {
			Wi[e] = model.WorstLoad(s.pcol[e])
		}
	}
	recomputeW := func() {
		if s.pool.Inline() {
			for i := 0; i < nI; i++ {
				fillW(i, 0, nL)
			}
			return
		}
		s.pool.ForEach(nI*nC, func(t int) {
			i := t / nC
			lo, hi := par.Chunk(nL, t%nC)
			fillW(i, lo, hi)
		})
	}
	rebuildTops()
	recomputeW()

	rowU := func(i, e int) float64 { return (loads[i][e] + W[i][e]) / s.capac[e] }
	trueObj := func() float64 {
		worst := 0.0
		for i := 0; i < nI; i++ {
			i := i
			wi := par.Reduce(s.pool, nL, 0.0, func(lo, hi int) float64 {
				w := 0.0
				for e := lo; e < hi; e++ {
					if u := rowU(i, e); u > w {
						w = u
					}
				}
				return w
			}, math.Max)
			if wi > worst {
				worst = wi
			}
		}
		return worst
	}

	scratchCol := make([]float64, nL)
	xDir := make([]float64, nL)
	sFm1 := make([][]float64, nI)
	aF := make([][]float64, nI)
	// Group-model stats: best group sum not containing l (sS/sM) and best
	// sum among groups containing l with l's own entry removed (mSl/mMl),
	// per requirement and link.
	sS := make([][]float64, nI)
	mSl := make([][]float64, nI)
	sM := make([][]float64, nI)
	mMl := make([][]float64, nI)
	for i := range sFm1 {
		sFm1[i] = make([]float64, nL)
		aF[i] = make([]float64, nL)
		sS[i] = make([]float64, nL)
		mSl[i] = make([]float64, nL)
		sM[i] = make([]float64, nL)
		mMl[i] = make([]float64, nL)
	}

	obj := trueObj()
	s.snapshotBest(obj)
	s.o.mlu.Set(obj)
	runSp := s.o.trace.Start("fw.run")
	defer runSp.End()

	for epoch := 0; epoch < epochs; epoch++ {
		mu := math.Max(obj*0.002, obj*0.05*math.Pow(0.8, float64(epoch)))
		if obj == 0 {
			break
		}
		epochSp := runSp.Child("epoch")

		// ---- Softmax gradient weights ----
		// The exp fill is slot-parallel; the normalizing sum stays serial
		// in (i, e) order so its float association never changes.
		q := s.ar.q
		if s.pool.Inline() {
			for i := 0; i < nI; i++ {
				qi := q[i]
				for e := 0; e < nL; e++ {
					qi[e] = math.Exp((rowU(i, e) - obj) / mu)
				}
			}
		} else {
			s.pool.ForEach(nI*nC, func(t int) {
				i := t / nC
				lo, hi := par.Chunk(nL, t%nC)
				qi := q[i]
				for e := lo; e < hi; e++ {
					qi[e] = math.Exp((rowU(i, e) - obj) / mu)
				}
			})
		}
		var zsum float64
		for i := 0; i < nI; i++ {
			for e := 0; e < nL; e++ {
				zsum += q[i][e]
			}
		}
		inv := 1 / zsum
		for i := 0; i < nI; i++ {
			for e := 0; e < nL; e++ {
				q[i][e] *= inv
			}
		}

		// ---- Oracle directions ----
		dirSp := epochSp.Child("directions")
		var rPaths [][]graph.LinkID
		if s.optimizeBase {
			rPaths = s.rDirections(q)
		}
		pPaths := s.pDirections(q)
		dirSp.End()

		// ---- Global step ----
		gsSp := epochSp.Child("global-step")
		gamma := s.globalStep(loads, W, q, rPaths, pPaths, mu)
		gsSp.End()
		s.o.step.Set(gamma)
		rebuildTops()
		recomputeW()
		s.baseLoads(s.R, loads)

		// ---- r block sweep ----
		// A commodity block moves at most the links on its oracle path and
		// its current support; every other (requirement, link) cell is
		// static during the line search. The reference evaluation computes
		// u = (loads + gamma*d*(xDir-rk) + W) / capac for every cell; for a
		// static cell the middle term is a signed zero (gamma*d >= 0 times
		// diff, which is +0 when zero, or gamma*0 = +0 times any diff,
		// which is at worst -0), and adding a signed zero to loads (never
		// -0: base loads are sums of nonnegative terms with exact
		// cancellation rounding to +0) reproduces loads bitwise. Static
		// utilizations u0 are therefore constant across the whole sweep
		// between accepted blocks, and their exp terms exp((u0 - worst)/mu)
		// depend only on the current reference point `worst`: they are
		// cached in expu keyed on cachedWorst and refilled only when worst
		// moves. The z sum still walks every (i, e) cell in ascending order
		// adding bitwise-identical values, so the evaluation — and the
		// accepted plan — matches the reference exactly while computing
		// math.Exp only for the few active cells plus cache refills.
		rSweepSp := epochSp.Child("r-sweep")
		if s.optimizeBase {
			u0 := s.ar.u0
			expu := s.ar.expu
			diff := s.ar.diff
			act := s.ar.active
			fillU0 := func(i, lo, hi int) {
				li, Wi, u0i := loads[i], W[i], u0[i]
				for e := lo; e < hi; e++ {
					u0i[e] = (li[e] + Wi[e]) / s.capac[e]
				}
			}
			if s.pool.Inline() {
				for i := 0; i < nI; i++ {
					fillU0(i, 0, nL)
				}
			} else {
				s.pool.ForEach(nI*nC, func(t int) {
					i := t / nC
					lo, hi := par.Chunk(nL, t%nC)
					fillU0(i, lo, hi)
				})
			}
			cachedWorst := math.NaN()
			refill := func(worst float64) {
				fill := func(i, lo, hi int) {
					u0i, ei := u0[i], expu[i]
					for e := lo; e < hi; e++ {
						ei[e] = math.Exp((u0i[e] - worst) / mu)
					}
				}
				if s.pool.Inline() {
					for i := 0; i < nI; i++ {
						fill(i, 0, nL)
					}
				} else {
					s.pool.ForEach(nI*nC, func(t int) {
						i := t / nC
						lo, hi := par.Chunk(nL, t%nC)
						fill(i, lo, hi)
					})
				}
				cachedWorst = worst
			}
			for k := range s.comms {
				path := rPaths[k]
				if path == nil {
					continue
				}
				for e := range xDir {
					xDir[e] = 0
				}
				for _, id := range path {
					xDir[id] = 1
				}
				rk := s.R[k]
				nAct := 0
				for e := 0; e < nL; e++ {
					d := xDir[e] - rk[e]
					diff[e] = d
					if d != 0 {
						act[nAct] = int32(e)
						nAct++
					}
				}
				hasDemand := false
				for i := 0; i < nI; i++ {
					if s.reqs[i].demands[k] != 0 {
						hasDemand = true
						break
					}
				}
				if nAct == 0 || !hasDemand {
					// Every cell is static: the reference evaluation is
					// constant in gamma, so its accept test
					// eval(gamma) >= eval(0) - 1e-15 always rejects, and a
					// rejected block leaves rk, loads and the caches
					// untouched. Skipping is bit-identical.
					continue
				}
				// Max over the static cells; max is order-insensitive, so
				// folding them per row here and merging with the active
				// cells below reproduces the reference max exactly.
				staticMax := 0.0
				for i := 0; i < nI; i++ {
					u0i := u0[i]
					if s.reqs[i].demands[k] == 0 {
						for e := 0; e < nL; e++ {
							if u0i[e] > staticMax {
								staticMax = u0i[e]
							}
						}
						continue
					}
					for e := 0; e < nL; e++ {
						if diff[e] == 0 && u0i[e] > staticMax {
							staticMax = u0i[e]
						}
					}
				}
				eval := func(gamma float64) float64 {
					worst := staticMax
					for i := 0; i < nI; i++ {
						d := s.reqs[i].demands[k]
						if d == 0 {
							continue
						}
						gd := gamma * d
						li, Wi := loads[i], W[i]
						for _, e32 := range act[:nAct] {
							e := int(e32)
							u := (li[e] + gd*diff[e] + Wi[e]) / s.capac[e]
							if u > worst {
								worst = u
							}
						}
					}
					if worst != cachedWorst {
						refill(worst)
					}
					var z float64
					for i := 0; i < nI; i++ {
						d := s.reqs[i].demands[k]
						ei := expu[i]
						if d == 0 {
							for e := 0; e < nL; e++ {
								z += ei[e]
							}
							continue
						}
						gd := gamma * d
						li, Wi := loads[i], W[i]
						for e := 0; e < nL; e++ {
							if diff[e] != 0 {
								u := (li[e] + gd*diff[e] + Wi[e]) / s.capac[e]
								z += math.Exp((u - worst) / mu)
							} else {
								z += ei[e]
							}
						}
					}
					return worst + mu*math.Log(z)
				}
				gamma := ternaryMin(eval, 12)
				if gamma <= 1e-9 || eval(gamma) >= eval(0)-1e-15 {
					continue
				}
				for i := 0; i < nI; i++ {
					d := s.reqs[i].demands[k]
					if d == 0 {
						continue
					}
					li := loads[i]
					for _, e32 := range act[:nAct] {
						e := int(e32)
						li[e] += gamma * d * diff[e]
					}
				}
				for e := 0; e < nL; e++ {
					rk[e] = (1-gamma)*rk[e] + gamma*xDir[e]
				}
				// The accepted step moved loads only on active cells of
				// rows with demand; refresh their static view and exp cache
				// (at the current reference point) for the next blocks.
				for i := 0; i < nI; i++ {
					if s.reqs[i].demands[k] == 0 {
						continue
					}
					li, Wi, u0i, ei := loads[i], W[i], u0[i], expu[i]
					for _, e32 := range act[:nAct] {
						e := int(e32)
						u0i[e] = (li[e] + Wi[e]) / s.capac[e]
						ei[e] = math.Exp((u0i[e] - cachedWorst) / mu)
					}
				}
			}
		}
		rSweepSp.End()

		// ---- p block sweep ----
		pSweepSp := epochSp.Child("p-sweep")
		if incSweep {
			// Incremental evaluation of the reference sweep in the else
			// branch. For block l a cell (i, e) is static when p_l(e) = 0
			// and e is off the oracle path: its mixed value x stays
			// exactly +0, and the insertion stats walked at x = 0
			// reproduce the buffer-order top-F sum — tops[e].worstArb —
			// bit for bit (l holds no positive entry, so the first F
			// non-l entries are the first F entries, summed in the same
			// order). Static utilizations and their exp terms are
			// therefore cached like the r sweep's, keyed on the current
			// reference point, and every eval computes math.Exp only at
			// the active cells plus cache refills; the z sum still adds
			// all cells in ascending order so its float association —
			// and the accepted plan — matches the reference exactly.
			u0 := s.ar.u0
			expu := s.ar.expu
			stamp := s.ar.stampE
			act := s.ar.active
			prevAct := s.ar.active2
			nPrev := 0
			fillU0P := func(i, lo, hi int) {
				li, u0i := loads[i], u0[i]
				F := arbF[i]
				for e := lo; e < hi; e++ {
					u0i[e] = (li[e] + s.tops[e].worstArb(F)) / s.capac[e]
				}
			}
			if s.pool.Inline() {
				for i := 0; i < nI; i++ {
					fillU0P(i, 0, nL)
				}
			} else {
				s.pool.ForEach(nI*nC, func(t int) {
					i := t / nC
					lo, hi := par.Chunk(nL, t%nC)
					fillU0P(i, lo, hi)
				})
			}
			cachedWorst := math.NaN()
			refill := func(worst float64) {
				fill := func(i, lo, hi int) {
					u0i, ei := u0[i], expu[i]
					for e := lo; e < hi; e++ {
						ei[e] = math.Exp((u0i[e] - worst) / mu)
					}
				}
				if s.pool.Inline() {
					for i := 0; i < nI; i++ {
						fill(i, 0, nL)
					}
				} else {
					s.pool.ForEach(nI*nC, func(t int) {
						i := t / nC
						lo, hi := par.Chunk(nL, t%nC)
						fill(i, lo, hi)
					})
				}
				cachedWorst = worst
			}
			for l := 0; l < nL; l++ {
				path := pPaths[l]
				if path == nil {
					continue
				}
				cl := s.capac[l]
				for e := range xDir {
					xDir[e] = 0
				}
				for _, id := range path {
					xDir[id] = cl
				}
				pl := s.P[l]
				// Active cells: the support of p_l plus the oracle path.
				// p_l(e) != 0 iff pcol[e][l] != 0 (pcol mirrors c_l·P
				// exactly in columns and the accept loop, and the values
				// never reach the subnormal range where the product or
				// quotient could flush to zero), so the contiguous P row
				// substitutes for a strided pcol scan.
				s.stampGen++
				gen := s.stampGen
				nAct := 0
				for e := 0; e < nL; e++ {
					if pl[e] != 0 {
						stamp[e] = gen
						act[nAct] = int32(e)
						nAct++
					}
				}
				for _, id := range path {
					if stamp[id] != gen {
						stamp[id] = gen
						act[nAct] = int32(id)
						nAct++
					}
				}
				// Insertion stats only where fresh evaluation happens.
				for i := 0; i < nI; i++ {
					F := arbF[i]
					sfi, afi := sFm1[i], aF[i]
					for _, e32 := range act[:nAct] {
						e := int(e32)
						sfi[e], afi[e] = s.tops[e].stats(int32(l), F)
					}
				}
				evalW := func(i, e int, x float64) float64 {
					if x > aF[i][e] {
						return sFm1[i][e] + x
					}
					return sFm1[i][e] + aF[i][e]
				}
				staticMax := 0.0
				for i := 0; i < nI; i++ {
					u0i := u0[i]
					for e := 0; e < nL; e++ {
						if stamp[e] != gen && u0i[e] > staticMax {
							staticMax = u0i[e]
						}
					}
				}
				eval := func(gamma float64) float64 {
					worst := staticMax
					for i := 0; i < nI; i++ {
						li := loads[i]
						for _, e32 := range act[:nAct] {
							e := int(e32)
							x := (1-gamma)*s.pcol[e][l] + gamma*xDir[e]
							u := (li[e] + evalW(i, e, x)) / s.capac[e]
							if u > worst {
								worst = u
							}
						}
					}
					if worst != cachedWorst {
						refill(worst)
					}
					var z float64
					for i := 0; i < nI; i++ {
						li, ei := loads[i], expu[i]
						for e := 0; e < nL; e++ {
							if stamp[e] == gen {
								x := (1-gamma)*s.pcol[e][l] + gamma*xDir[e]
								u := (li[e] + evalW(i, e, x)) / s.capac[e]
								z += math.Exp((u - worst) / mu)
							} else {
								z += ei[e]
							}
						}
					}
					return worst + mu*math.Log(z)
				}
				gamma := ternaryMin(eval, 12)
				if gamma <= 1e-9 || eval(gamma) >= eval(0)-1e-15 {
					continue
				}
				for _, e32 := range act[:nAct] {
					e := int(e32)
					old := s.pcol[e][l]
					nv := (1-gamma)*old + gamma*xDir[e]
					s.pcol[e][l] = nv
					pl[e] = nv / cl
					if s.topK > 0 && nv != old {
						s.tops[e].update(int32(l), nv, s.pcol[e], s.topK)
					}
				}
				// The reference refresh rewrites every W cell: active
				// cells take the insertion-stats value at the accepted x;
				// static cells collapse back to the buffer-order worstArb
				// sum. Only the previous accepted block's active cells can
				// hold insertion-order bits, so the rewrite touches
				// prevAct \ act plus act — every other cell already
				// stores worstArb of an unchanged top buffer.
				for i := 0; i < nI; i++ {
					F := arbF[i]
					Wi := W[i]
					for _, e32 := range prevAct[:nPrev] {
						e := int(e32)
						if stamp[e] != gen {
							Wi[e] = s.tops[e].worstArb(F)
						}
					}
					for _, e32 := range act[:nAct] {
						e := int(e32)
						Wi[e] = evalW(i, e, s.pcol[e][l])
					}
				}
				// Refresh the static view and exp cache at the cells the
				// accept moved (their top buffers changed), at the current
				// reference point.
				for i := 0; i < nI; i++ {
					F := arbF[i]
					li, u0i, ei := loads[i], u0[i], expu[i]
					for _, e32 := range act[:nAct] {
						e := int(e32)
						u0i[e] = (li[e] + s.tops[e].worstArb(F)) / s.capac[e]
						ei[e] = math.Exp((u0i[e] - cachedWorst) / mu)
					}
				}
				copy(prevAct[:nAct], act[:nAct])
				nPrev = nAct
			}
			pSweepSp.End()

			obj = trueObj()
			if obj < s.bestObj {
				s.snapshotBest(obj)
			}
			s.o.mlu.Set(obj)
			s.o.epochs.Inc()
			epochSp.SetFloat("mlu", obj)
			epochSp.SetFloat("step", gamma)
			epochSp.SetFloat("mu", mu)
			epochSp.End()
			continue
		}
		for l := 0; l < nL; l++ {
			path := pPaths[l]
			if path == nil {
				continue
			}
			cl := s.capac[l]
			for e := range xDir {
				xDir[e] = 0
			}
			for _, id := range path {
				xDir[id] = cl // direction in v-space: c_l × direction frac
			}
			pl := s.P[l]

			var evalW func(i, e int, x float64) float64
			switch {
			case allArb:
				// Insertion stats: top-(F-1) sum and F-th largest of the
				// column with entry l excluded; then the worst virtual
				// load as a function of x = c_l p_l(e) is
				// sFm1 + max(x, aF). The maintained colTop buffers answer
				// both in O(F) per cell instead of rescanning the column,
				// bit-identical to insertionStats (same selection order,
				// same summation order).
				fillStats := func(i, lo, hi int) {
					F := arbF[i]
					sfi, afi := sFm1[i], aF[i]
					for e := lo; e < hi; e++ {
						sfi[e], afi[e] = s.tops[e].stats(int32(l), F)
					}
				}
				if s.pool.Inline() {
					for i := 0; i < nI; i++ {
						fillStats(i, 0, nL)
					}
				} else {
					s.pool.ForEach(nI*nC, func(t int) {
						i := t / nC
						lo, hi := par.Chunk(nL, t%nC)
						fillStats(i, lo, hi)
					})
				}
				evalW = func(i, e int, x float64) float64 {
					if x > aF[i][e] {
						return sFm1[i][e] + x
					}
					return sFm1[i][e] + aF[i][e]
				}
			case allGrp1:
				// With K=1, the worst case is one SRLG plus one MLG: the
				// best group either avoids l entirely (sum precomputed) or
				// contains l and gains x.
				s.pool.ForEach(nI*nC, func(t int) {
					i := t / nC
					lo, hi := par.Chunk(nL, t%nC)
					groupStats(grp1[i].SRLGs, s.pcol, graph.LinkID(l), sS[i], mSl[i], lo, hi)
					groupStats(grp1[i].MLGs, s.pcol, graph.LinkID(l), sM[i], mMl[i], lo, hi)
				})
				evalW = func(i, e int, x float64) float64 {
					srlg := sS[i][e]
					if v := mSl[i][e] + x; v > srlg {
						srlg = v
					}
					if srlg < 0 {
						srlg = 0
					}
					mlg := sM[i][e]
					if v := mMl[i][e] + x; v > mlg {
						mlg = v
					}
					if mlg < 0 {
						mlg = 0
					}
					return srlg + mlg
				}
			default:
				evalW = func(i, e int, x float64) float64 {
					copy(scratchCol, s.pcol[e])
					scratchCol[l] = x
					return s.reqs[i].model.WorstLoad(scratchCol)
				}
			}

			eval := func(gamma float64) float64 {
				worst := 0.0
				for i := 0; i < nI; i++ {
					for e := 0; e < nL; e++ {
						x := (1-gamma)*s.pcol[e][l] + gamma*xDir[e]
						u := (loads[i][e] + evalW(i, e, x)) / s.capac[e]
						if u > worst {
							worst = u
						}
					}
				}
				var z float64
				for i := 0; i < nI; i++ {
					for e := 0; e < nL; e++ {
						x := (1-gamma)*s.pcol[e][l] + gamma*xDir[e]
						u := (loads[i][e] + evalW(i, e, x)) / s.capac[e]
						z += math.Exp((u - worst) / mu)
					}
				}
				return worst + mu*math.Log(z)
			}
			gamma := ternaryMin(eval, 12)
			if gamma <= 1e-9 || eval(gamma) >= eval(0)-1e-15 {
				continue
			}
			for e := 0; e < nL; e++ {
				old := s.pcol[e][l]
				nv := (1-gamma)*old + gamma*xDir[e]
				s.pcol[e][l] = nv
				pl[e] = nv / cl
				if s.topK > 0 && nv != old {
					s.tops[e].update(int32(l), nv, s.pcol[e], s.topK)
				}
			}
			// Refresh W from the accepted step. The fast-path evalW
			// closures only read precomputed stats; the generic fallback
			// evaluates WorstLoad on the updated column directly. Both are
			// pure per-cell reads, so the refresh is slot-parallel.
			if allArb || allGrp1 {
				s.pool.ForEach(nI*nC, func(t int) {
					i := t / nC
					lo, hi := par.Chunk(nL, t%nC)
					for e := lo; e < hi; e++ {
						W[i][e] = evalW(i, e, s.pcol[e][l])
					}
				})
			} else {
				recomputeW()
			}
		}

		pSweepSp.End()

		obj = trueObj()
		if obj < s.bestObj {
			s.snapshotBest(obj)
		}
		s.o.mlu.Set(obj)
		s.o.epochs.Inc()
		epochSp.SetFloat("mlu", obj)
		epochSp.SetFloat("step", gamma)
		epochSp.SetFloat("mu", mu)
		epochSp.End()
	}
	s.restoreBest()
}

// globalStep moves every commodity toward its oracle path simultaneously
// with one shared line-searched step on the smoothed objective. It mutates
// s.R, s.P and s.pcol (the caller refreshes loads and W) and returns the
// accepted step size (0 when the line search rejects the direction).
func (s *fwState) globalStep(loads, W [][]float64, q [][]float64, rPaths, pPaths [][]graph.LinkID, mu float64) float64 {
	nL := s.g.NumLinks()
	nI := len(s.reqs)
	_ = W

	// Direction loads for r. Rows are fully overwritten (zeroed or copied)
	// before use, so the arena needs no clearing between epochs.
	dirR := s.ar.dirR
	fillDirR := func(k int) {
		row := dirR[k]
		if rPaths == nil || rPaths[k] == nil {
			copy(row, s.R[k])
			return
		}
		for e := range row {
			row[e] = 0
		}
		for _, id := range rPaths[k] {
			row[id] = 1
		}
	}
	// Direction columns for p.
	dirP := s.ar.dirP
	fillDirP := func(l int) {
		row := dirP[l]
		if pPaths[l] == nil {
			copy(row, s.P[l])
			return
		}
		for e := range row {
			row[e] = 0
		}
		for _, id := range pPaths[l] {
			row[id] = 1
		}
	}
	if s.pool.Inline() {
		for k := range s.comms {
			fillDirR(k)
		}
		for l := 0; l < nL; l++ {
			fillDirP(l)
		}
	} else {
		s.pool.ForEach(len(s.comms), fillDirR)
		s.pool.ForEach(nL, fillDirP)
	}
	dirLoads := s.baseLoads(dirR, s.ar.dirLoads)
	pcolDir := s.columns(dirP, s.ar.pcolDir)

	// Each utilization cell mixes a full p-column (O(links) WorstLoad), so
	// the fill dominates the line search; it is slot-parallel with a
	// per-worker mixing buffer. The max and the exp sum stay serial over
	// the slot order, keeping the float association fixed.
	us := s.ar.us
	eval := func(gamma float64) float64 {
		if s.pool.Inline() {
			col := s.getBuf()
			for t := 0; t < nI*nL; t++ {
				i, e := t/nL, t%nL
				a, b := s.pcol[e], pcolDir[e]
				for l := 0; l < nL; l++ {
					col[l] = (1-gamma)*a[l] + gamma*b[l]
				}
				bl := (1-gamma)*loads[i][e] + gamma*dirLoads[i][e]
				us[t] = (bl + s.reqs[i].model.WorstLoad(col)) / s.capac[e]
			}
			s.putBuf(col)
		} else {
			par.ForEachChunkScratchFree(s.pool, nI*nL, s.getBuf, func(lo, hi int, col []float64) {
				for t := lo; t < hi; t++ {
					i, e := t/nL, t%nL
					a, b := s.pcol[e], pcolDir[e]
					for l := 0; l < nL; l++ {
						col[l] = (1-gamma)*a[l] + gamma*b[l]
					}
					bl := (1-gamma)*loads[i][e] + gamma*dirLoads[i][e]
					us[t] = (bl + s.reqs[i].model.WorstLoad(col)) / s.capac[e]
				}
			}, s.putBuf)
		}
		worst := 0.0
		for _, u := range us {
			if u > worst {
				worst = u
			}
		}
		var z float64
		for _, u := range us {
			z += math.Exp((u - worst) / mu)
		}
		return worst + mu*math.Log(z)
	}
	gamma := ternaryMin(eval, 14)
	if gamma <= 1e-9 || eval(gamma) >= eval(0)-1e-15 {
		return 0
	}
	s.pool.ForEach(len(s.comms), func(k int) {
		rk, dk := s.R[k], dirR[k]
		for e := 0; e < nL; e++ {
			rk[e] = (1-gamma)*rk[e] + gamma*dk[e]
		}
	})
	s.pool.ForEach(nL, func(l int) {
		pl, dl := s.P[l], dirP[l]
		for e := 0; e < nL; e++ {
			pl[e] = (1-gamma)*pl[e] + gamma*dl[e]
		}
	})
	s.pcol = s.columns(s.P, s.pcol)
	return gamma
}

// pDirections computes the oracle path per protected link from the active
// sets of the current iterate: a link e costs q weight only where l's
// virtual demand is part of the worst case at e. Cost accumulation is
// split by link column e — every cell costP[·][e] belongs to one worker
// and sums requirements in ascending order — and the per-link SPF fan-out
// is slot-parallel, with an ActiveSet scratch per worker. All buffers come
// from the arena: costP rows are zeroed up front, the kernel scratch and
// y rows recycle through pools, and paths append into retained storage.
//
// Under an incremental SPF mode the per-link trees persist across epochs:
// the gradient rows are sparse over a constant 1e-12 floor (a cell is
// nonzero only where the link's virtual demand sits in some worst case),
// so between epochs only the union of the old and new nonzero patterns
// can change. Each link's DynTree is repaired from exactly those
// candidate cells, with costP[l][e] + 1e-12 — the same float add the flat
// path bakes in place — as the candidate cost, which makes the repaired
// tree and the produced path bit-identical to the flat sweep.
func (s *fwState) pDirections(q [][]float64) [][]graph.LinkID {
	nL := s.g.NumLinks()
	nI := len(s.reqs)
	costP := s.ar.costP
	incremental := s.spfMode != spf.ModeFlat
	paths := s.ar.pPaths

	zeroRows := func(lo, hi int) {
		for l := lo; l < hi; l++ {
			if incremental {
				// Only pattern cells are ever nonzero; clear just those.
				row := costP[l]
				for _, e := range s.ar.pPat[l] {
					row[e] = 0
				}
				s.ar.pPatNew[l] = s.ar.pPatNew[l][:0]
				continue
			}
			row := costP[l]
			for e := range row {
				row[e] = 0
			}
		}
	}
	// accumulate fills chunk c (columns [lo, hi)). In incremental mode the
	// first contribution to a cell records the (l, e) pair in the chunk's
	// pair buffer; chunks partition e, so each cell has exactly one owner
	// and the per-chunk buffers concatenate to the full pattern in
	// ascending-e order.
	accumulate := func(c, lo, hi int, y []float64) {
		var pairs []int32
		if incremental {
			pairs = s.ar.patPairs[c][:0]
		}
		for e := lo; e < hi; e++ {
			for i := 0; i < nI; i++ {
				if q[i][e] == 0 {
					continue
				}
				s.reqs[i].model.ActiveSet(s.pcol[e], y)
				w := q[i][e] / s.capac[e]
				for l := 0; l < nL; l++ {
					if y[l] > 0 {
						if incremental && costP[l][e] == 0 {
							pairs = append(pairs, int32(l), int32(e))
						}
						costP[l][e] += w * y[l]
					}
				}
			}
		}
		if incremental {
			s.ar.patPairs[c] = pairs
		}
	}
	sweep := func(l int) {
		link := s.g.Link(graph.LinkID(l))
		row := costP[l]
		var next []int32
		if incremental {
			tree := &s.pTrees[l]
			if !tree.Ready() {
				buf := s.getBuf()
				for e := 0; e < nL; e++ {
					buf[e] = row[e] + 1e-12
				}
				tree.Full(buf)
				s.putBuf(buf)
				s.o.fallbacks.Inc()
			} else {
				// Candidates: old ∪ new nonzero cells, merged in ascending
				// link order (both lists are e-sorted). Cells outside both
				// patterns cost exactly 1e-12 before and after.
				ids, vals := s.ar.pIDs[l][:0], s.ar.pVals[l][:0]
				oldP, newP := s.ar.pPat[l], s.ar.pPatNew[l]
				oi, ni := 0, 0
				for oi < len(oldP) || ni < len(newP) {
					var e int32
					switch {
					case oi == len(oldP):
						e = newP[ni]
						ni++
					case ni == len(newP):
						e = oldP[oi]
						oi++
					case oldP[oi] < newP[ni]:
						e = oldP[oi]
						oi++
					case oldP[oi] > newP[ni]:
						e = newP[ni]
						ni++
					default:
						e = oldP[oi]
						oi, ni = oi+1, ni+1
					}
					ids = append(ids, e)
					vals = append(vals, row[e]+1e-12)
				}
				s.ar.pIDs[l], s.ar.pVals[l] = ids, vals
				kind, frac := tree.Update(ids, vals, 0.25)
				s.o.noteUpdate(kind, frac)
			}
			s.o.spf.Inc()
			next = tree.Next()
		} else {
			// Bake the tie-breaking floor into the row: the reference cost
			// closure evaluated costP[l][id] + 1e-12 per relaxation, the
			// same float add performed here once per link.
			for id := 0; id < nL; id++ {
				row[id] = row[id] + 1e-12
			}
			sc := s.spfPool.Get()
			spf.SPFTo(s.csr, link.Dst, row, nil, sc)
			s.o.spf.Inc()
			next = sc.Next
			defer s.spfPool.Put(sc)
		}
		p := spf.PathFromNext(s.csr, link.Src, next, s.ar.pPathBuf[l][:0])
		if p != nil {
			s.ar.pPathBuf[l] = p
		}
		paths[l] = p
	}
	if s.pool.Inline() {
		zeroRows(0, nL)
		if s.ar.patPairs == nil {
			s.ar.patPairs = make([][]int32, 1)
		}
		y := s.getBuf()
		accumulate(0, 0, nL, y)
		s.putBuf(y)
		s.mergePatterns(1)
		for l := 0; l < nL; l++ {
			sweep(l)
		}
		s.swapPatterns()
		return paths
	}
	s.pool.ForEachChunk(nL, zeroRows)
	nC := par.NumChunks(nL)
	if s.ar.patPairs == nil || len(s.ar.patPairs) < nC {
		s.ar.patPairs = make([][]int32, nC)
	}
	s.pool.ForEach(nC, func(c int) {
		lo, hi := par.Chunk(nL, c)
		y := s.getBuf()
		accumulate(c, lo, hi, y)
		s.putBuf(y)
	})
	s.mergePatterns(nC)
	s.pool.ForEach(nL, sweep)
	s.swapPatterns()
	return paths
}

// mergePatterns scatters the per-chunk (l, e) pair buffers into per-link
// pattern lists. Chunks are walked in ascending order and each buffer is
// internally e-sorted, so every pPatNew[l] comes out e-sorted.
func (s *fwState) mergePatterns(nC int) {
	if s.spfMode == spf.ModeFlat {
		return
	}
	for c := 0; c < nC; c++ {
		pairs := s.ar.patPairs[c]
		for j := 0; j+1 < len(pairs); j += 2 {
			l, e := pairs[j], pairs[j+1]
			s.ar.pPatNew[l] = append(s.ar.pPatNew[l], e)
		}
	}
}

// swapPatterns promotes this epoch's nonzero patterns to "previous" for
// the next epoch's delta computation.
func (s *fwState) swapPatterns() {
	if s.spfMode == spf.ModeFlat {
		return
	}
	s.ar.pPat, s.ar.pPatNew = s.ar.pPatNew, s.ar.pPat
}

// ternaryMin minimizes a convex function on [0,1] by ternary search.
func ternaryMin(f func(float64) float64, iters int) float64 {
	lo, hi := 0.0, 1.0
	for t := 0; t < iters; t++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}

// rDirections computes the oracle path per OD commodity under the current
// gradient weights, honoring the delay envelope. With one requirement the
// cost is shared and grouped by destination; with several the costs are
// demand-weighted per commodity.
func (s *fwState) rDirections(q [][]float64) [][]graph.LinkID {
	nL := s.g.NumLinks()
	paths := s.ar.rPaths
	if len(s.reqs) == 1 {
		cost := s.ar.rCost
		for e := 0; e < nL; e++ {
			cost[e] = q[0][e]/s.capac[e] + 1e-12
		}
		if s.ar.dsts == nil {
			// The destination grouping depends only on the commodity set;
			// build it once per solve.
			groups := map[graph.NodeID][]int{}
			for k := range s.comms {
				groups[s.comms[k].Dst] = append(groups[s.comms[k].Dst], k)
			}
			dsts := make([]graph.NodeID, 0, len(groups))
			for dst := range groups {
				dsts = append(dsts, dst)
			}
			sort.Slice(dsts, func(a, b int) bool { return dsts[a] < dsts[b] })
			s.ar.dsts = dsts
			s.ar.dstComms = make([][]int, len(dsts))
			for di, dst := range dsts {
				s.ar.dstComms[di] = groups[dst]
			}
		}
		// One reverse SPF per destination, fanned out across workers.
		// Commodity sets of distinct destinations are disjoint, so every
		// paths[k] slot has exactly one writer; the sorted destination
		// list only fixes the task indexing.
		sweep := func(di int) {
			sc := s.spfPool.Get()
			spf.SPFTo(s.csr, s.ar.dsts[di], cost, nil, sc)
			s.o.spf.Inc()
			for _, k := range s.ar.dstComms[di] {
				p := spf.PathFromNext(s.csr, s.comms[k].Src, sc.Next, s.ar.rPathBuf[k][:0])
				if p != nil {
					s.ar.rPathBuf[k] = p
				}
				paths[k] = s.checkedPath(k, p, cost)
			}
			s.spfPool.Put(sc)
		}
		if s.pool.Inline() {
			for di := range s.ar.dsts {
				sweep(di)
			}
		} else {
			s.pool.ForEach(len(s.ar.dsts), sweep)
		}
		return paths
	}
	// Demand-weighted per-commodity costs: one SPF per commodity, with a
	// per-worker cost buffer (fully overwritten for every item).
	sweep := func(k int, cost []float64) {
		for e := 0; e < nL; e++ {
			var w float64
			for i := range s.reqs {
				if d := s.reqs[i].demands[k]; d > 0 {
					w += q[i][e] * d
				}
			}
			cost[e] = w/s.capac[e] + 1e-12
		}
		sc := s.spfPool.Get()
		spf.SPFTo(s.csr, s.comms[k].Dst, cost, nil, sc)
		s.o.spf.Inc()
		p := spf.PathFromNext(s.csr, s.comms[k].Src, sc.Next, s.ar.rPathBuf[k][:0])
		if p != nil {
			s.ar.rPathBuf[k] = p
		}
		paths[k] = s.checkedPath(k, p, cost)
		s.spfPool.Put(sc)
	}
	if s.pool.Inline() {
		cost := s.getBuf()
		for k := range s.comms {
			sweep(k, cost)
		}
		s.putBuf(cost)
		return paths
	}
	par.ForEachScratchFree(s.pool, len(s.comms), s.getBuf, sweep, s.putBuf)
	return paths
}

// checkedPath applies the delay envelope to an oracle path, substituting a
// delay-bounded path when the unconstrained one is too slow. cost is the
// per-link cost row the oracle ran with.
func (s *fwState) checkedPath(k int, path []graph.LinkID, cost []float64) []graph.LinkID {
	if path == nil {
		return nil
	}
	if s.delayCap != nil && pathDelay(s.g, path) > s.delayCap[k]+1e-9 {
		return s.delayBoundedPath(k, cost, s.delayCap[k])
	}
	return path
}

// getPathBuf and putPathBuf recycle path scratch for delayBoundedPath's
// probe paths (scratch contents never affect results, so recycling order
// is immaterial to determinism).
func (s *fwState) getPathBuf() []graph.LinkID {
	s.pbMu.Lock()
	defer s.pbMu.Unlock()
	if n := len(s.pbFree); n > 0 {
		b := s.pbFree[n-1]
		s.pbFree = s.pbFree[:n-1]
		return b
	}
	return make([]graph.LinkID, 0, 16)
}

func (s *fwState) putPathBuf(b []graph.LinkID) {
	s.pbMu.Lock()
	s.pbFree = append(s.pbFree, b)
	s.pbMu.Unlock()
}

// snapshotBest records the current iterate as the best seen.
func (s *fwState) snapshotBest(obj float64) {
	s.bestObj = obj
	if s.bestR == nil {
		s.bestR = make([][]float64, len(s.R))
		for k := range s.R {
			s.bestR[k] = make([]float64, len(s.R[k]))
		}
		s.bestP = make([][]float64, len(s.P))
		for l := range s.P {
			s.bestP[l] = make([]float64, len(s.P[l]))
		}
	}
	for k := range s.R {
		copy(s.bestR[k], s.R[k])
	}
	for l := range s.P {
		copy(s.bestP[l], s.P[l])
	}
}

// restoreBest rolls the iterate back to the best recorded snapshot.
func (s *fwState) restoreBest() {
	if s.bestR == nil {
		return
	}
	for k := range s.R {
		copy(s.R[k], s.bestR[k])
	}
	for l := range s.P {
		copy(s.P[l], s.bestP[l])
	}
}
func pathDelay(g *graph.Graph, path []graph.LinkID) float64 {
	var d float64
	for _, id := range path {
		d += g.Link(id).Delay
	}
	return d
}

// delayBoundedPath finds a low-cost path for commodity k whose propagation
// delay does not exceed bound, via Lagrangian bisection on cost + θ·delay.
// Falls back to the minimum-delay path. Every probe runs on the
// allocation-free reverse kernel with pooled scratch (the former
// closure-based spf.ShortestPath calls allocated a visit set and a fresh
// path per probe); the returned path lives in the commodity's retained
// buffer, so warm calls allocate nothing.
func (s *fwState) delayBoundedPath(k int, cost []float64, bound float64) []graph.LinkID {
	src, dst := s.comms[k].Src, s.comms[k].Dst
	nL := s.g.NumLinks()
	delay := s.ar.delay
	sc := s.spfPool.Get()
	combined := s.getBuf()
	bestBuf := s.getPathBuf()
	candBuf := s.getPathBuf()

	s.o.spf.Inc()
	spf.SPFTo(s.csr, dst, delay, nil, sc)
	best := spf.PathFromNext(s.csr, src, sc.Next, bestBuf[:0])
	if best != nil {
		bestBuf = best
	}
	if best != nil && pathDelay(s.g, best) <= bound+1e-9 {
		lo, hi := 0.0, 1.0
		// Grow hi until the combined path is delay-feasible.
		for t := 0; t < 12; t++ {
			theta := (lo + hi) / 2
			for e := 0; e < nL; e++ {
				combined[e] = cost[e] + theta*delay[e]
			}
			s.o.spf.Inc()
			spf.SPFTo(s.csr, dst, combined, nil, sc)
			p := spf.PathFromNext(s.csr, src, sc.Next, candBuf[:0])
			if p == nil {
				break
			}
			candBuf = p
			if pathDelay(s.g, p) <= bound+1e-9 {
				bestBuf, candBuf = candBuf, bestBuf
				best = bestBuf
				hi = theta
			} else {
				lo = theta
				if t == 0 {
					hi = hi * 2
				}
			}
		}
	}
	var out []graph.LinkID
	if best != nil {
		out = append(s.ar.dPathBuf[k][:0], best...)
		s.ar.dPathBuf[k] = out
	}
	s.putPathBuf(candBuf)
	s.putPathBuf(bestBuf)
	s.putBuf(combined)
	s.spfPool.Put(sc)
	return out
}

// groupStats fills, for every link e in [lo, hi), best[e] = the largest
// positive group sum over columns pcol[e] treating index skip as absent
// among groups NOT containing skip (0 when none), and withSkip[e] = the
// largest sum among groups containing skip with skip's own entry removed
// (negative infinity when no group contains skip). Each cell depends only
// on its own column, so disjoint ranges can be filled concurrently.
func groupStats(groups [][]graph.LinkID, pcol [][]float64, skip graph.LinkID, best, withSkip []float64, lo, hi int) {
	negInf := math.Inf(-1)
	for e := lo; e < hi; e++ {
		best[e] = 0
		withSkip[e] = negInf
	}
	for _, grp := range groups {
		contains := false
		for _, l := range grp {
			if l == skip {
				contains = true
				break
			}
		}
		for e := lo; e < hi; e++ {
			col := pcol[e]
			var sum float64
			for _, l := range grp {
				if l == skip || int(l) >= len(col) {
					continue
				}
				if v := col[l]; v > 0 {
					sum += v
				}
			}
			if contains {
				if sum > withSkip[e] {
					withSkip[e] = sum
				}
			} else if sum > best[e] {
				best[e] = sum
			}
		}
	}
}

// sanitizeProt removes solver-noise allocations from the protection
// routing: each p_l is decomposed into paths, paths below a small
// fraction are dropped, and the remainder is renormalized. Iterative
// solutions accumulate many near-zero fractions; left in place they make
// the online rescaling ξ = p_e/(1-p_e(e)) amplify noise unboundedly when
// p_e(e) approaches 1 under cascaded failures. Dropping sub-threshold
// paths keeps p a valid routing ([R1]-[R4] are preserved by convex
// combinations of paths) while bounding the noise.
func sanitizeProt(g *graph.Graph, P [][]float64) {
	const (
		keepCoverage = 0.995 // retain paths until this much mass is kept
		alwaysKeep   = 0.005 // paths at least this large are never dropped
	)
	nL := g.NumLinks()
	f := routing.NewFlow(g, routing.LinkCommodities(g))
	for l := 0; l < nL; l++ {
		copy(f.Frac[l], P[l])
	}
	f.RemoveLoops()
	for l := 0; l < nL; l++ {
		paths := f.Decompose(l, 256)
		sort.Slice(paths, func(i, j int) bool { return paths[i].Frac > paths[j].Frac })
		var grand float64
		for _, p := range paths {
			grand += p.Frac
		}
		if grand <= 0 {
			continue
		}
		var kept []routing.Path
		var total float64
		for _, p := range paths {
			if total >= keepCoverage*grand && p.Frac < alwaysKeep {
				break
			}
			kept = append(kept, p)
			total += p.Frac
		}
		row := P[l]
		for e := range row {
			row[e] = 0
		}
		for _, p := range kept {
			w := p.Frac / total
			for _, id := range p.Links {
				row[id] += w
			}
		}
	}

	// A min-max optimum may leave a link effectively unprotected
	// (p_l(l) ≈ 1) when protecting it cannot improve the bottleneck —
	// rational for the objective, but online reconfiguration would then
	// drop the link's real traffic. Force a functional detour wherever
	// one exists: move the self-allocated mass onto the shortest path
	// around the link. This can only raise the reported worst-case MLU
	// (recomputed by the caller), never break validity ([R2] mass is
	// conserved, the detour satisfies [R1]/[R3]).
	for l := 0; l < nL; l++ {
		lid := graph.LinkID(l)
		self := P[l][l]
		if self < 0.999 {
			continue
		}
		link := g.Link(lid)
		avoid := func(id graph.LinkID) bool { return id != lid }
		path := spf.ShortestPath(g, link.Src, link.Dst, avoid, spf.WeightCost(g))
		if path == nil {
			continue // a true bridge: nothing can protect it
		}
		P[l][l] = 0
		for _, id := range path {
			P[l][id] += self
		}
	}
}
