package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// delayGraph: a triangle where the direct a->c hop is slow (high delay)
// but short (low weight), so MLU optimization loves it and the delay
// envelope must push traffic off it... or rather the reverse: the
// indirect path is long in delay; a tight envelope keeps traffic direct.
func delayGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New("delay")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	// Direct a<->c: fast (5ms). Via b: 50ms total but high capacity.
	g.AddDuplex(a, c, 50, 5, 1)
	g.AddDuplex(a, b, 500, 25, 1)
	g.AddDuplex(b, c, 500, 25, 1)
	return g
}

func TestDelayEnvelopeFW(t *testing.T) {
	g := delayGraph(t)
	d := traffic.NewMatrix(3)
	a, _ := g.NodeByName("a")
	c, _ := g.NodeByName("c")
	d.Set(a, c, 45) // 90% of the direct link: MLU pressure to spill via b
	// Without a delay bound, the solver spills onto the 50ms path.
	free, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 0}, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	// With a tight delay envelope (1.5x of 5ms = 7.5ms), traffic must stay
	// on the direct link even though that concentrates load.
	bound, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 0}, Iterations: 120, DelayEnvelope: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	delayOf := func(p *Plan) float64 {
		for k, cm := range p.Base.Comms {
			if cm.Src == a && cm.Dst == c {
				return p.Base.AvgPathDelay(k)
			}
		}
		t.Fatalf("commodity missing")
		return 0
	}
	dist := spf.DijkstraTo(g, c, nil, spf.DelayCost(g))
	minDelay := dist[a]
	if got := delayOf(bound); got > 1.4*minDelay+1e-6 {
		t.Fatalf("delay-bounded plan has delay %v > %v", got, 1.4*minDelay)
	}
	// The unbounded plan should spread (lower MLU, higher delay).
	if free.NormalMLU > bound.NormalMLU+1e-9 {
		t.Fatalf("unbounded plan has worse MLU (%v) than bounded (%v)",
			free.NormalMLU, bound.NormalMLU)
	}
}

func TestDelayEnvelopeFWKeepsRoutingValid(t *testing.T) {
	g := delayGraph(t)
	d := traffic.Gravity(g, 60, 2)
	plan, err := Precompute(g, d, Config{
		Model: ArbitraryFailures{F: 1}, Iterations: 100, DelayEnvelope: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Base.Validate(1e-6); err != nil {
		t.Fatalf("base invalid under delay envelope: %v", err)
	}
}
