package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// encodePlan serializes a plan to the wire format so two plans can be
// compared for byte identity — the strongest possible determinism check:
// every base fraction, protection fraction and MLU must match to the last
// bit.
func encodePlan(t *testing.T, p *Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// precomputeAt runs Precompute with the given worker count, failing the
// test on error.
func precomputeAt(t *testing.T, g *graph.Graph, d *traffic.Matrix, cfg Config, workers int) *Plan {
	t.Helper()
	cfg.Workers = workers
	plan, err := Precompute(g, d, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return plan
}

// TestPrecomputeDeterministicAcrossWorkers is the solver's parallelism
// contract: for seeded random topologies and several failure models, the
// plan produced with Workers=8 (and intermediate counts) is byte-identical
// to the serial Workers=1 plan. The FW solver's parallel loops write
// index-owned slots and reduce over a worker-independent chunk grid, so
// any scheduling-dependent float association would show up here as a
// one-bit diff in the encoded plan.
func TestPrecomputeDeterministicAcrossWorkers(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
		d    *traffic.Matrix
		cfg  Config
	}
	var cases []tc

	for _, m := range []struct {
		nodes, links int
		seed         int64
	}{
		{10, 30, 3},
		{14, 44, 7},
	} {
		g := topo.Mesh("det", m.nodes, m.links, m.seed, 1000)
		d := traffic.Gravity(g, 800, m.seed+1)
		cases = append(cases,
			tc{"arb-f1", g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 25}},
			tc{"arb-f2", g, d, Config{Model: ArbitraryFailures{F: 2}, Iterations: 25}},
		)
	}
	// Penalty envelope pins the base and optimizes p only — a different
	// code path through the solver.
	gEnv := topo.Mesh("det-env", 10, 30, 5, 1000)
	cases = append(cases, tc{
		"envelope", gEnv, traffic.Gravity(gEnv, 700, 6),
		Config{Model: ArbitraryFailures{F: 1}, Iterations: 25, PenaltyEnvelope: 1.1},
	})
	// Group failure model exercises the SRLG/MLG fast path.
	gGrp := topo.Mesh("det-grp", 10, 32, 9, 1000)
	gGrp.AddSRLG(0, 1, 4)
	gGrp.AddSRLG(2, 3)
	gGrp.AddMLG(6, 7, 8)
	cases = append(cases, tc{
		"groups", gGrp, traffic.Gravity(gGrp, 700, 10),
		Config{Model: ModelFromGraph(gGrp, 1), Iterations: 25},
	})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := encodePlan(t, precomputeAt(t, c.g, c.d, c.cfg, 1))
			for _, w := range []int{2, 3, 8} {
				got := encodePlan(t, precomputeAt(t, c.g, c.d, c.cfg, w))
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d plan differs from serial plan (%d vs %d bytes)",
						w, len(got), len(want))
				}
			}
		})
	}
}

// TestPrecomputeVariationsDeterministicAcrossWorkers covers the
// multi-requirement path: several hull matrices means the per-requirement
// loops (baseLoads, columns, objective) actually fan out.
func TestPrecomputeVariationsDeterministicAcrossWorkers(t *testing.T) {
	g := topo.Mesh("det-var", 12, 36, 13, 1000)
	ds := []*traffic.Matrix{
		traffic.Gravity(g, 600, 14),
		traffic.Gravity(g, 900, 15),
		traffic.Gravity(g, 750, 16),
	}
	cfg := Config{Model: ArbitraryFailures{F: 1}, Iterations: 25}
	run := func(workers int) []byte {
		c := cfg
		c.Workers = workers
		plan, err := PrecomputeVariations(g, ds, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return encodePlan(t, plan)
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d variations plan differs from serial", w)
		}
	}
}

// TestPrecomputePrioritizedDeterministicAcrossWorkers covers prioritized
// classes (cumulative demand sets with distinct F per class).
func TestPrecomputePrioritizedDeterministicAcrossWorkers(t *testing.T) {
	g := topo.Mesh("det-prio", 12, 36, 17, 1000)
	classes := []Priority{
		{Demand: traffic.Gravity(g, 300, 18), F: 2},
		{Demand: traffic.Gravity(g, 500, 19), F: 1},
	}
	run := func(workers int) []byte {
		plan, err := PrecomputePrioritized(g, classes, Config{Iterations: 25, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return encodePlan(t, plan)
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d prioritized plan differs from serial", w)
		}
	}
}

// TestLPvsFWDifferential cross-checks the two solvers on small topologies
// where the LP is tractable: the approximate FW objective must land within
// a modest factor of the exact LP optimum (and never beat it — the LP is a
// lower bound), and both plans must deliver the Theorem 1 guarantee for
// every single-link failure.
func TestLPvsFWDifferential(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
		d    *traffic.Matrix
		f    int
	}
	gr := ring5(t)
	// The structured mesh6 (ring + diagonals, uniform capacity) is the
	// largest instance the dense simplex solves reliably inside the test
	// timeout; randomized meshes of the same size can push phase 1 past
	// its iteration limit. F=2 because the F=1 instance is degenerate
	// enough that the simplex fails its own solution verification — the
	// F=2 plan still covers every single-link failure, which is what
	// checkTheorem1 exercises below.
	gm := mesh6(t)
	cases := []tc{
		{"ring5", gr, ring5Demand(gr, 110), 1},
		{"mesh6", gm, traffic.Gravity(gm, 40, 11), 2},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Model: ArbitraryFailures{F: c.f}}
			cfg.Solver = SolverLP
			lp, err := Precompute(c.g, c.d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Solver = SolverFW
			cfg.Iterations = 300
			fw, err := Precompute(c.g, c.d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fw.MLU < lp.MLU-1e-6 {
				t.Fatalf("FW MLU %v beat exact LP %v: LP must be wrong", fw.MLU, lp.MLU)
			}
			if fw.MLU > lp.MLU*1.15+1e-9 {
				t.Fatalf("FW MLU %v too far above LP optimum %v", fw.MLU, lp.MLU)
			}
			// Evaluate must agree with each solver's reported objective.
			if ev := lp.Evaluate(); math.Abs(ev-lp.MLU) > 1e-6 {
				t.Fatalf("LP Evaluate %v != MLU %v", ev, lp.MLU)
			}
			validateProt(t, c.g, lp.Prot)
			validateProt(t, c.g, fw.Prot)
			checkTheorem1(t, lp, 1)
			checkTheorem1(t, fw, 1)
		})
	}
}
