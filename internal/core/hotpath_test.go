package core

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/routing"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestColTopRandomizedDifferential drives a colTop through long random
// update sequences — the exact workload of the p block sweep — and after
// every mutation checks worstArb and stats against the reference scans
// (sumTopK, insertionStats) on the full column. Any drift in the
// incremental maintenance would surface here bit for bit.
func TestColTopRandomizedDifferential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		nL := 20 + int(seed)*13
		maxF := 1 + int(seed)%4
		K := maxF + 1
		col := make([]float64, nL)
		for l := range col {
			// Mix of zeros, duplicates and distinct positives: ties exercise
			// the (value desc, index asc) total order.
			switch rng.Intn(4) {
			case 0:
				col[l] = 0
			case 1:
				col[l] = 5
			default:
				col[l] = rng.Float64() * 10
			}
		}
		var top colTop
		top.rebuild(col, K)

		check := func(step int) {
			t.Helper()
			for F := 1; F <= maxF; F++ {
				if F < nL {
					if got, want := top.worstArb(F), sumTopK(col, F, nil); got != want {
						t.Fatalf("seed %d step %d F=%d: worstArb %v, sumTopK %v", seed, step, F, got, want)
					}
				}
				for trial := 0; trial < 4; trial++ {
					skip := rng.Intn(nL)
					s1, a1 := top.stats(int32(skip), F)
					s2, a2 := insertionStats(col, skip, F)
					if s1 != s2 || a1 != a2 {
						t.Fatalf("seed %d step %d F=%d skip=%d: stats (%v,%v), reference (%v,%v)",
							seed, step, F, skip, s1, a1, s2, a2)
					}
				}
			}
		}
		check(-1)
		for step := 0; step < 600; step++ {
			l := rng.Intn(nL)
			var nv float64
			switch rng.Intn(5) {
			case 0:
				nv = 0 // drop to inactive
			case 1:
				nv = col[l] // no-op value (a real case: gamma = 0 rejected move)
			case 2:
				nv = 5 // collide with the duplicate plateau
			default:
				nv = rng.Float64() * 10
			}
			col[l] = nv
			top.update(int32(l), nv, col, K)
			check(step)
		}
	}
}

// TestWorstLoadSelectionDifferential pins the quickselect branch of
// sumTopK (k > 32) and both failure models against sort-based references
// over random vectors: identical sums AND identical marked active sets.
func TestWorstLoadSelectionDifferential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		n := 80 + rng.Intn(120)
		v := make([]float64, n)
		for i := range v {
			switch rng.Intn(5) {
			case 0:
				v[i] = -rng.Float64() // never selected
			case 1:
				v[i] = 3.25 // plateau of exact ties
			default:
				v[i] = rng.Float64() * 8
			}
		}
		// Sort-based reference for the top-k sum, summing in descending
		// order with index-ascending tie-break: the documented bit-identity
		// order of the selection path.
		refTopK := func(k int) (float64, map[int]bool) {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return rankBefore(v, idx[a], idx[b]) })
			s, sel := 0.0, map[int]bool{}
			for i := 0; i < k && i < n; i++ {
				if v[idx[i]] <= 0 {
					break
				}
				s += v[idx[i]]
				sel[idx[i]] = true
			}
			return s, sel
		}
		for _, k := range []int{1, 2, 31, 32, 33, 40, 64, n - 1} {
			m := ArbitraryFailures{F: k}
			want, wantSel := refTopK(k)
			if got := m.WorstLoad(v); got != want {
				t.Fatalf("seed %d k=%d: WorstLoad %v, reference %v", seed, k, got, want)
			}
			y := make([]float64, n)
			m.ActiveSet(v, y)
			for i := range y {
				if (y[i] == 1) != wantSel[i] {
					t.Fatalf("seed %d k=%d: ActiveSet[%d] = %v, reference selected=%v", seed, k, i, y[i], wantSel[i])
				}
			}
		}

		// GroupFailures with disjoint groups: greedy top-K group selection is
		// exact, so brute-force enumeration over all <=K subsets must agree.
		nG := 6
		per := n / nG
		grp := make([][]graph.LinkID, nG)
		for gi := 0; gi < nG; gi++ {
			for l := gi * per; l < (gi+1)*per; l++ {
				grp[gi] = append(grp[gi], graph.LinkID(l))
			}
		}
		gval := make([]float64, nG)
		for gi, g := range grp {
			for _, l := range g {
				if v[l] > 0 {
					gval[gi] += v[l]
				}
			}
		}
		for _, K := range []int{1, 2, 3} {
			m := GroupFailures{SRLGs: grp[:4], MLGs: grp[4:], K: K}
			best := 0.0
			for mask := 0; mask < 1<<4; mask++ {
				cnt, s := 0, 0.0
				for gi := 0; gi < 4; gi++ {
					if mask&(1<<gi) != 0 {
						cnt++
						s += gval[gi]
					}
				}
				if cnt > K {
					continue
				}
				for mi := -1; mi < 2; mi++ { // no MLG, MLG 0, MLG 1
					tot := s
					if mi >= 0 {
						tot += gval[4+mi]
					}
					if tot > best {
						best = tot
					}
				}
			}
			// The greedy sum associates in value-descending group order while
			// the brute force sums in mask order, so allow last-bit slack;
			// the selected value must still match to within rounding.
			if got := m.WorstLoad(v); math.Abs(got-best) > 1e-9*(1+best) {
				t.Fatalf("seed %d K=%d: group WorstLoad %v, brute force %v", seed, K, got, best)
			}
		}
	}
}

// newTestFWState assembles a minimal solver state over g with one
// ArbitraryFailures requirement, shortest-path-free initial fractions and
// a serial pool — enough to exercise the arena-backed evaluation path.
func newTestFWState(t testing.TB, g *graph.Graph, F int) *fwState {
	t.Helper()
	d := traffic.Gravity(g, 0.1*g.TotalCapacity(), 3)
	comms := routing.ODCommodities(g.NumNodes(), d.At)
	nK, nL := len(comms), g.NumLinks()
	dem := make([]float64, nK)
	R := newMatrix(nK, nL)
	for k, c := range comms {
		dem[k] = c.Demand
		// Spread each commodity over the source's outgoing links; objective
		// only needs some fixed fractions, not a consistent routing.
		out := g.Out(c.Src)
		for _, id := range out {
			R[k][id] = 1 / float64(len(out))
		}
	}
	P := newMatrix(nL, nL)
	capac := make([]float64, nL)
	for l := 0; l < nL; l++ {
		capac[l] = g.Link(graph.LinkID(l)).Capacity
		P[l][(l+1)%nL] = 1
	}
	return &fwState{
		g: g, comms: comms, capac: capac,
		reqs: []requirement{{demands: dem, model: ArbitraryFailures{F: F}}},
		R:    R, P: P,
		pool: par.Serial,
	}
}

// TestObjectiveZeroAllocsWarmArena pins the arena fix: with warm buffers
// on a serial pool, the true-objective evaluation (baseLoads + columns +
// worst-load scan) must not allocate at all. This is the call the epoch
// loop makes after every accepted step — it used to build a fresh loads
// matrix each time.
func TestObjectiveZeroAllocsWarmArena(t *testing.T) {
	s := newTestFWState(t, mesh6(t), 2)
	first := s.objective() // warm objLoads and pcol
	if n := testing.AllocsPerRun(20, func() {
		if got := s.objective(); got != first {
			t.Fatalf("objective drifted: %v vs %v", got, first)
		}
	}); n != 0 {
		t.Fatalf("warm objective allocates %v per run, want 0", n)
	}
}

// TestBaseLoadsColumnsZeroAllocsWarm: the two arena-backed matrix
// producers must also be allocation-free once warm on the inline path.
func TestBaseLoadsColumnsZeroAllocsWarm(t *testing.T) {
	s := newTestFWState(t, mesh6(t), 1)
	s.ensureArena()
	s.baseLoads(s.R, s.ar.loads)
	s.pcol = s.columns(s.P, s.pcol)
	if n := testing.AllocsPerRun(20, func() {
		s.baseLoads(s.R, s.ar.loads)
	}); n != 0 {
		t.Fatalf("warm baseLoads allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		s.columns(s.P, s.pcol)
	}); n != 0 {
		t.Fatalf("warm columns allocates %v per run, want 0", n)
	}
}

// TestPrecomputeDeterministicInlineVsPooled extends the worker-count
// determinism contract across the runtime dimension: a wide pool clamped
// to one scheduling slot takes the inline fast paths (plain loops, no
// goroutines), and its plan must stay byte-identical to both the serial
// plan and the genuinely concurrent plan.
func TestPrecomputeDeterministicInlineVsPooled(t *testing.T) {
	g := topo.Mesh("det-inline", 10, 30, 21, 1000)
	d := traffic.Gravity(g, 800, 22)
	cfg := Config{Model: ArbitraryFailures{F: 1}, Iterations: 25}

	want := encodePlan(t, precomputeAt(t, g, d, cfg, 1))

	prev := runtime.GOMAXPROCS(1)
	inline := encodePlan(t, precomputeAt(t, g, d, cfg, 8))
	runtime.GOMAXPROCS(4)
	pooled := encodePlan(t, precomputeAt(t, g, d, cfg, 8))
	runtime.GOMAXPROCS(prev)

	if !bytes.Equal(inline, want) {
		t.Fatal("inline (GOMAXPROCS=1) plan differs from serial plan")
	}
	if !bytes.Equal(pooled, want) {
		t.Fatal("pooled (GOMAXPROCS=4) plan differs from serial plan")
	}
}
