package core
