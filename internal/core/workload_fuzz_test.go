package core

import (
	"math"
	"testing"
)

// FuzzWorkloadSpec hammers the two user-facing scenario grammars — the
// workload spec ("alpha=0.5,budget=2,surge=1.5,odfrac=0.25") and the
// concrete degradation assignment ("3:0.5,7:0.25") — checking that every
// accepted parse satisfies the documented invariants and that accepted
// workload specs round-trip through String.
func FuzzWorkloadSpec(f *testing.F) {
	f.Add("", "")
	f.Add("alpha=0.5", "3:0.5")
	f.Add("alpha=0.5,budget=2,surge=1.5,odfrac=0.25", "3:0.5,7:0.25")
	f.Add("alpha=0,budget=0.5", "0:0.001")
	f.Add("surge=1.0001,odfrac=1", "13:0.999")
	f.Add("alpha=1e-10,budget=1e10", "1:0.5,1:0.5")
	f.Add("alpha=NaN", "3:NaN")
	f.Add("alpha=+Inf,budget=-0", "-1:0.5")
	f.Add("alpha=0.5,alpha=0.5", "00007:.25")
	f.Add(",,,", "::")

	f.Fuzz(func(t *testing.T, spec, degr string) {
		w, err := ParseWorkloadSpec(spec)
		if err == nil {
			if math.IsNaN(w.Alpha) || w.Alpha < 0 || w.Alpha > 1 {
				t.Fatalf("%q: accepted alpha %v outside [0, 1]", spec, w.Alpha)
			}
			if w.Degrades() && (math.IsNaN(w.Budget) || math.IsInf(w.Budget, 0) || w.Budget <= 0) {
				t.Fatalf("%q: accepted degrading spec with budget %v", spec, w.Budget)
			}
			if w.Surges() && (w.ODFrac <= 0 || w.ODFrac > 1) {
				t.Fatalf("%q: accepted surging spec with odfrac %v", spec, w.ODFrac)
			}
			if w.Degrades() {
				if err := w.Model(ArbitraryFailures{F: 1}).(DegradationModel).Validate(); err != nil {
					t.Fatalf("%q: accepted spec implies invalid model: %v", spec, err)
				}
			}
			if sp := w.SurgeSpec(); sp != nil {
				if err := sp.Validate(); err != nil {
					t.Fatalf("%q: accepted spec implies invalid surge: %v", spec, err)
				}
			}
			// String must render back into the grammar. %g keeps full
			// float64 precision, so the round trip is exact.
			back, err := ParseWorkloadSpec(w.String())
			if err != nil {
				t.Fatalf("%q: String() %q does not re-parse: %v", spec, w.String(), err)
			}
			if back != w {
				t.Fatalf("%q: round trip %q = %+v, want %+v", spec, w.String(), back, w)
			}
		}

		const nL = 16
		degs, err := ParseDegradations(degr, nL)
		if err == nil {
			seen := map[int]bool{}
			for _, dg := range degs {
				if int(dg.Link) < 0 || int(dg.Link) >= nL {
					t.Fatalf("%q: accepted link %d outside [0, %d)", degr, dg.Link, nL)
				}
				if math.IsNaN(dg.Frac) || dg.Frac <= 0 || dg.Frac >= 1 {
					t.Fatalf("%q: accepted fraction %v outside (0, 1)", degr, dg.Frac)
				}
				if seen[int(dg.Link)] {
					t.Fatalf("%q: accepted duplicate link %d", degr, dg.Link)
				}
				seen[int(dg.Link)] = true
			}
		}
	})
}
