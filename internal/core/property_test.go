package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// randomConnectedGraph builds a random duplex graph with n nodes and
// extra chords, minimum degree 2.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(fmt.Sprintf("rand%d", rng.Int63()))
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	// Random spanning tree.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := perm[i]
		b := perm[rng.Intn(i)]
		g.AddDuplex(ids[a], ids[b], 50+50*rng.Float64()*2, 1+rng.Float64()*5, 1)
	}
	// Extra chords.
	for k := 0; k < extra; k++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		if _, dup := g.FindLink(ids[a], ids[b]); dup {
			continue
		}
		g.AddDuplex(ids[a], ids[b], 50+100*rng.Float64(), 1+rng.Float64()*5, 1)
	}
	// Ensure degree >= 2 everywhere.
	for i := 0; i < n; i++ {
		for g.Degree(ids[i]) < 2 {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			if _, dup := g.FindLink(ids[i], ids[j]); dup {
				continue
			}
			g.AddDuplex(ids[i], ids[j], 50+100*rng.Float64(), 1+rng.Float64()*5, 1)
		}
	}
	return g
}

// TestTheorem1RandomTopologies is the failure-injection property test:
// across random topologies and demands, any plan whose certificate holds
// (MLU <= 1) keeps every single-link failure within its bound.
func TestTheorem1RandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	verified := 0
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(4)
		g := randomConnectedGraph(rng, n, n)
		// Light demand so the certificate usually holds.
		d := traffic.Gravity(g, 0.04*g.TotalCapacity(), rng.Int63())
		plan, err := Precompute(g, d, Config{
			Model: ArbitraryFailures{F: 1}, Iterations: 80,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := plan.Base.Validate(1e-6); err != nil {
			t.Fatalf("trial %d: base invalid: %v", trial, err)
		}
		if !plan.CongestionFree() {
			continue // no guarantee to check
		}
		verified++
		for e := 0; e < g.NumLinks(); e++ {
			st := NewState(plan)
			if err := st.Fail(graph.LinkID(e)); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if mlu := st.MLU(); mlu > plan.MLU+1e-6 {
				t.Fatalf("trial %d (%s): failing link %d gives MLU %v > plan %v",
					trial, g.Name, e, mlu, plan.MLU)
			}
		}
	}
	if verified < 6 {
		t.Fatalf("only %d/12 trials had a congestion-free plan; demands miscalibrated", verified)
	}
}

// TestOrderIndependenceRandom fuzzes Theorem 3 on random graphs and
// random failure sequences.
func TestOrderIndependenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		g := randomConnectedGraph(rng, 6+rng.Intn(3), 6)
		d := traffic.Gravity(g, 0.05*g.TotalCapacity(), rng.Int63())
		plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 2}, Iterations: 40})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Pick 3 distinct random links whose union keeps the network
		// strongly connected: at a partition the ξ=0 drop convention makes
		// the final state depend on which demands were stranded first, a
		// regime Theorem 3's setting (congestion-free plans, no
		// reachability loss) excludes.
		var seq []graph.LinkID
		for tries := 0; tries < 50; tries++ {
			perm := rng.Perm(g.NumLinks())[:3]
			cand := []graph.LinkID{graph.LinkID(perm[0]), graph.LinkID(perm[1]), graph.LinkID(perm[2])}
			if g.Connected(graph.NewLinkSet(cand...).Alive()) {
				seq = cand
				break
			}
		}
		if seq == nil {
			continue
		}
		ref := NewState(plan)
		if err := ref.FailAll(seq...); err != nil {
			t.Fatal(err)
		}
		// Try two other orders.
		orders := [][]graph.LinkID{
			{seq[2], seq[0], seq[1]},
			{seq[1], seq[2], seq[0]},
		}
		for _, ord := range orders {
			st := NewState(plan)
			if err := st.FailAll(ord...); err != nil {
				t.Fatal(err)
			}
			if !st.ProtEquals(ref, 1e-9) || !st.BaseEquals(ref, 1e-9) {
				t.Fatalf("trial %d: order %v diverged from %v", trial, ord, seq)
			}
		}
	}
}

// TestRescalingConservesTraffic verifies that online reconfiguration
// never creates or destroys base traffic while the network stays
// connected: every commodity keeps delivering its full demand.
func TestRescalingConservesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		g := randomConnectedGraph(rng, 6, 8)
		d := traffic.Gravity(g, 0.05*g.TotalCapacity(), rng.Int63())
		plan, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 40})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < g.NumLinks(); e++ {
			fail := graph.NewLinkSet(graph.LinkID(e))
			if !g.Connected(fail.Alive()) {
				continue
			}
			st := NewState(plan)
			if err := st.Fail(graph.LinkID(e)); err != nil {
				t.Fatal(err)
			}
			for k := range plan.Base.Comms {
				if del := st.Delivered(k); del < 1-1e-6 {
					t.Fatalf("trial %d link %d: commodity %d delivers %v", trial, e, k, del)
				}
			}
		}
	}
}
