package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSumTopKAgainstSort(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(math.Abs(x), 1000)
		}
		k := int(kRaw%40) + 1
		got := sumTopK(v, k, nil)
		sorted := append([]float64(nil), v...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		var want float64
		for i := 0; i < k && i < len(sorted); i++ {
			if sorted[i] > 0 {
				want += sorted[i]
			}
		}
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSumTopKMarks(t *testing.T) {
	v := []float64{5, 1, 9, 0, 7, 3}
	mark := make([]float64, len(v))
	got := sumTopK(v, 3, mark)
	if got != 21 {
		t.Fatalf("sum = %v, want 21", got)
	}
	wantMark := []float64{1, 0, 1, 0, 1, 0}
	for i := range wantMark {
		if mark[i] != wantMark[i] {
			t.Fatalf("mark = %v", mark)
		}
	}
}

func TestSumTopKEdgeCases(t *testing.T) {
	if sumTopK(nil, 3, nil) != 0 {
		t.Fatalf("nil slice")
	}
	if sumTopK([]float64{1, 2}, 0, nil) != 0 {
		t.Fatalf("k=0")
	}
	if sumTopK([]float64{1, 2}, 5, nil) != 3 {
		t.Fatalf("k > len")
	}
	// Negative entries never contribute.
	if sumTopK([]float64{-5, 2, -1}, 2, nil) != 2 {
		t.Fatalf("negatives counted")
	}
	// Large k path (k > 32 triggers the sort fallback).
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i)
	}
	want := 0.0
	for i := 60; i < 100; i++ {
		want += float64(i)
	}
	if got := sumTopK(v, 40, nil); got != want {
		t.Fatalf("k=40: got %v want %v", got, want)
	}
}

func TestArbitraryFailuresModel(t *testing.T) {
	m := ArbitraryFailures{F: 2}
	v := []float64{4, 1, 3, 2}
	if got := m.WorstLoad(v); got != 7 {
		t.Fatalf("WorstLoad = %v, want 7", got)
	}
	y := make([]float64, 4)
	m.ActiveSet(v, y)
	if y[0] != 1 || y[2] != 1 || y[1] != 0 || y[3] != 0 {
		t.Fatalf("ActiveSet = %v", y)
	}
	if m.MaxFailures() != 2 {
		t.Fatalf("MaxFailures = %d", m.MaxFailures())
	}
}

func TestGroupFailuresModel(t *testing.T) {
	m := GroupFailures{
		SRLGs: [][]graph.LinkID{{0, 1}, {2}, {3}},
		MLGs:  [][]graph.LinkID{{4, 5}, {6}},
		K:     1,
	}
	v := []float64{3, 4, 10, 1, 2, 2, 5}
	// Best SRLG: {2} with 10 (vs {0,1}=7). Best MLG: {4,5} = 4 vs {6} = 5.
	if got := m.WorstLoad(v); got != 15 {
		t.Fatalf("WorstLoad = %v, want 15", got)
	}
	y := make([]float64, 7)
	m.ActiveSet(v, y)
	want := []float64{0, 0, 1, 0, 0, 0, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("ActiveSet = %v", y)
		}
	}
	// MaxFailures: largest SRLG (2 links) + largest MLG (2 links) = 3?
	// K=1 takes the single largest SRLG {0,1} (2 links) + MLG {4,5} (2).
	if got := m.MaxFailures(); got != 4 {
		t.Fatalf("MaxFailures = %d, want 4", got)
	}
}

func TestGroupFailuresK2(t *testing.T) {
	m := GroupFailures{
		SRLGs: [][]graph.LinkID{{0}, {1}, {2}},
		K:     2,
	}
	v := []float64{3, 5, 4}
	if got := m.WorstLoad(v); got != 9 {
		t.Fatalf("WorstLoad = %v, want 9 (top-2 groups)", got)
	}
}

func TestGroupFailuresEmpty(t *testing.T) {
	m := GroupFailures{K: 3}
	if m.WorstLoad([]float64{1, 2}) != 0 {
		t.Fatalf("empty model has nonzero worst load")
	}
	if m.MaxFailures() != 0 {
		t.Fatalf("empty model MaxFailures != 0")
	}
}

func TestModelFromGraph(t *testing.T) {
	g := graph.New("g")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	ab, ba := g.AddDuplex(a, b, 1, 1, 1)
	bc, cb := g.AddDuplex(b, c, 1, 1, 1)
	g.AddSRLG(ab, ba)
	g.AddMLG(bc, cb)
	m := ModelFromGraph(g, 2)
	if len(m.SRLGs) != 1 || len(m.MLGs) != 1 || m.K != 2 {
		t.Fatalf("model = %+v", m)
	}
}

func TestArbitraryModelRandomizedSubgradient(t *testing.T) {
	// ActiveSet must be a maximizer: sum(y*v) == WorstLoad.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(30)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 10
		}
		m := ArbitraryFailures{F: 1 + rng.Intn(5)}
		y := make([]float64, n)
		m.ActiveSet(v, y)
		var dot float64
		for i := range v {
			dot += y[i] * v[i]
		}
		if math.Abs(dot-m.WorstLoad(v)) > 1e-9 {
			t.Fatalf("trial %d: subgradient %v != worst %v", trial, dot, m.WorstLoad(v))
		}
	}
}
