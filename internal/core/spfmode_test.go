package core

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestSPFModeByteIdentity is the planner-level differential for the
// dynamic-SPF kernel: precomputed plans must be byte-identical on the
// wire whichever SPF mode drives the hot loop — flat reference,
// incremental repair, or delta-stepping — on ring5, Abilene, and a small
// generated transit-stub topology. CI's bench-smoke job runs this test;
// it is the end-to-end guarantee behind defaulting ModeAuto on. The
// Abilene case adds a delay envelope so the kernel-based
// delayBoundedPath rewrite is under the differential too.
func TestSPFModeByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		seed int64
		cfg  Config
	}{
		{"ring5", ring5(t), 11, Config{Model: ArbitraryFailures{F: 1}, Iterations: 80}},
		{"abilene", topo.Abilene(), 3, Config{Model: ArbitraryFailures{F: 1}, Iterations: 60, DelayEnvelope: 2.5}},
		{"gen-small", topo.Mesh("GenSmall", 24, 100, 5, topo.OC48), 7, Config{Model: ArbitraryFailures{F: 2}, Iterations: 50}},
	}
	modes := []spf.Mode{spf.ModeFlat, spf.ModeIncremental, spf.ModeDelta}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := traffic.Gravity(tc.g, 0.3*float64(tc.g.NumLinks()), tc.seed)
			var ref []byte
			for _, m := range modes {
				cfg := tc.cfg
				cfg.SPF = m
				plan, err := Precompute(tc.g, d, cfg)
				if err != nil {
					t.Fatalf("mode %v: %v", m, err)
				}
				wire, err := plan.EncodeBytes()
				if err != nil {
					t.Fatalf("mode %v: encode: %v", m, err)
				}
				if m == spf.ModeFlat {
					ref = wire
					continue
				}
				if !bytes.Equal(wire, ref) {
					t.Fatalf("mode %v: plan differs from flat reference (%d vs %d bytes)",
						m, len(wire), len(ref))
				}
			}
		})
	}
}

// TestSPFModeCounters pins the observability contract of the incremental
// path: an instrumented incremental-mode solve performs tree repairs
// (spf.incremental_repairs advances), any fallbacks are counted, and the
// dirty-fraction histogram has one observation per non-noop update. The
// flat mode must leave all three untouched.
func TestSPFModeCounters(t *testing.T) {
	g := topo.Abilene()
	d := traffic.Gravity(g, 200, 3)
	solve := func(m spf.Mode) map[string]int64 {
		reg := obs.NewRegistry()
		_, err := Precompute(g, d, Config{Model: ArbitraryFailures{F: 1}, Iterations: 60, SPF: m, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Counters
	}
	inc := solve(spf.ModeIncremental)
	if inc["spf.incremental_repairs"] == 0 {
		t.Fatal("incremental mode never repaired a tree")
	}
	flat := solve(spf.ModeFlat)
	if flat["spf.incremental_repairs"] != 0 || flat["spf.full_fallbacks"] != 0 {
		t.Fatalf("flat mode touched dynamic-tree counters: %v", flat)
	}
}

// TestDelayBoundedPathZeroAllocs mirrors the spf kernel's alloc
// regression: on a warm fwState, the Lagrangian delay-bounded path
// search must not touch the heap — every probe runs on pooled kernel
// scratch and the result lands in the commodity's retained buffer.
func TestDelayBoundedPathZeroAllocs(t *testing.T) {
	g := topo.SBC()
	nL := g.NumLinks()
	var src, dst graph.NodeID = 0, graph.NodeID(g.NumNodes() - 1)
	s := &fwState{
		g:     g,
		comms: []routing.Commodity{{Src: src, Dst: dst, Demand: 1}},
	}
	s.csr = g.CSR()
	s.ar.delay = make([]float64, nL)
	for e := 0; e < nL; e++ {
		s.ar.delay[e] = g.Link(graph.LinkID(e)).Delay
	}
	s.ar.dPathBuf = make([][]graph.LinkID, 1)
	cost := make([]float64, nL)
	for e := 0; e < nL; e++ {
		cost[e] = g.Link(graph.LinkID(e)).Weight
	}
	// A bound between the minimum delay and the min-cost path's delay
	// forces the bisection loop to actually iterate.
	minDelay := spf.DijkstraTo(g, dst, nil, spf.DelayCost(g))[src]
	bound := 1.5 * minDelay

	if p := s.delayBoundedPath(0, cost, bound); p == nil {
		t.Fatal("no delay-bounded path on SBC")
	}
	if n := testing.AllocsPerRun(50, func() {
		if p := s.delayBoundedPath(0, cost, bound); p == nil {
			t.Fatal("path vanished")
		}
	}); n != 0 {
		t.Fatalf("warm delayBoundedPath allocates %v per run, want 0", n)
	}
}
