package core

import (
	"fmt"
	"math"
	"sort"
)

// DegradationModel is the capacity-degradation envelope X_D of Wireless
// Resilient Routing Reconfiguration: instead of F links failing outright,
// every link l may lose up to a fraction β_l of its capacity
// (capacity stays within [(1-β_l)·c_l, c_l], i.e. α_l = 1-β_l is the
// retained floor), subject to a budget B on the total degraded fraction:
//
//	X_D = { x : 0 ≤ x_l ≤ β_l·c_l,  Σ_l x_l/c_l ≤ B }
//
// With β_l = 1 and integer B the envelope contains X_B (B hard failures),
// and the inner maximization degenerates to the top-B sum; uniform β = 1
// models are canonicalized to ArbitraryFailures before solving so that
// hard-failure configurations stay byte-identical to the classic path.
//
// The inner maximization is a fractional knapsack: substituting
// u_l = x_l/c_l, maximize Σ u_l·v_l over 0 ≤ u_l ≤ β_l, Σ u_l ≤ B.
// On top of the knapsack the model keeps a full single-failure anchor
// max_l v_l over degradable links: the online rescaling procedure
// Degrade(e, θ) moves θ·load(e) through the same detour ξ_e as a hard
// failure, and its congestion-freedom argument needs each protection row
// covered at full strength, not β-scaled (see DESIGN.md §15). For β = 1,
// B ≥ 1 the knapsack already contains the anchor, so the hard-failure
// limit is unchanged.
type DegradationModel struct {
	// Beta is the uniform degradable fraction 1-α in [0, 1]: every link
	// may lose up to Beta of its capacity.
	Beta float64
	// Budget bounds the total degraded fraction Σ x_l/c_l. Must be > 0.
	Budget float64
	// LinkBeta optionally overrides Beta per link (indexed by LinkID).
	// Entries must lie in [0, 1]; a zero entry marks a link that cannot
	// degrade. Nil means the uniform Beta applies everywhere.
	LinkBeta []float64
}

// beta returns the degradable fraction of link l.
func (m DegradationModel) beta(l int) float64 {
	if m.LinkBeta != nil {
		if l < len(m.LinkBeta) {
			return m.LinkBeta[l]
		}
		return 0
	}
	return m.Beta
}

// Validate checks the model parameters: Beta and every LinkBeta entry in
// [0, 1], Budget positive and finite, nothing NaN.
func (m DegradationModel) Validate() error {
	if math.IsNaN(m.Beta) || m.Beta < 0 || m.Beta > 1 {
		return fmt.Errorf("degradation beta %v outside [0, 1]", m.Beta)
	}
	if math.IsNaN(m.Budget) || math.IsInf(m.Budget, 0) || m.Budget <= 0 {
		return fmt.Errorf("degradation budget %v must be positive and finite", m.Budget)
	}
	for l, b := range m.LinkBeta {
		if math.IsNaN(b) || b < 0 || b > 1 {
			return fmt.Errorf("degradation beta %v for link %d outside [0, 1]", b, l)
		}
	}
	return nil
}

// degenerate reports whether the envelope equals the classic hard-failure
// envelope X_F, and if so for which F: uniform β = 1 with an integer
// budget means every maximizer saturates whole links, which is exactly
// ArbitraryFailures{F: Budget}. PrecomputeVariations canonicalizes such
// models before dispatch so goldens, fast paths and the exact-LP branch
// are untouched.
func (m DegradationModel) degenerate() (f int, ok bool) {
	if m.LinkBeta != nil || m.Beta != 1 {
		return 0, false
	}
	if m.Budget < 1 || m.Budget != math.Trunc(m.Budget) || m.Budget > 1<<30 {
		return 0, false
	}
	return int(m.Budget), true
}

// WorstLoad implements FailureModel: the fractional-knapsack maximum of
// Σ u_l·v_l over the degradation polytope, floored by the single-failure
// anchor max v_l over degradable links.
func (m DegradationModel) WorstLoad(v []float64) float64 {
	return m.worst(v, nil)
}

// ActiveSet implements FailureModel: y[l] receives the maximizing u_l
// (the degraded fraction of link l), so y·v = WorstLoad(v) — the
// subgradient the Frank–Wolfe direction step needs.
func (m DegradationModel) ActiveSet(v []float64, y []float64) {
	for i := range y {
		y[i] = 0
	}
	m.worst(v, y)
}

func (m DegradationModel) worst(v []float64, mark []float64) float64 {
	// Degradable links with positive value, ranked like sumTopK: value
	// descending, index ascending. The deterministic order makes the
	// greedy sum and the marked active set reproducible bit for bit.
	idx := make([]int, 0, len(v))
	for i, x := range v {
		if x > 0 && m.beta(i) > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return 0
	}
	sort.Slice(idx, func(a, b int) bool { return rankBefore(v, idx[a], idx[b]) })
	var knap float64
	budget := m.Budget
	for _, l := range idx {
		if budget <= 0 {
			break
		}
		u := m.beta(l)
		if u > budget {
			u = budget
		}
		if u == 1 {
			knap += v[l] // exact: matches sumTopK bit for bit in the β=1 limit
		} else {
			knap += u * v[l]
		}
		budget -= u
	}
	// Full single-failure anchor: idx[0] is the most valuable degradable
	// link. Strictly larger than the knapsack only when the budget or β
	// cap prevents taking it whole.
	if anchor := v[idx[0]]; anchor > knap {
		if mark != nil {
			mark[idx[0]] = 1
		}
		return anchor
	}
	if mark != nil {
		budget = m.Budget
		for _, l := range idx {
			if budget <= 0 {
				break
			}
			u := m.beta(l)
			if u > budget {
				u = budget
			}
			mark[l] = u
			budget -= u
		}
	}
	return knap
}

// MaxFailures implements FailureModel: the envelope contains at most
// floor(Budget) full-strength link losses (and always covers one, through
// the anchor), which sizes evaluation scenarios.
func (m DegradationModel) MaxFailures() int {
	if f := int(m.Budget); f > 1 {
		return f
	}
	return 1
}

// String identifies the model in logs and experiment output.
func (m DegradationModel) String() string {
	if m.LinkBeta != nil {
		return fmt.Sprintf("degradation(beta=per-link, budget=%g)", m.Budget)
	}
	return fmt.Sprintf("degradation(beta=%g, budget=%g)", m.Beta, m.Budget)
}
