package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// TestInsertionStatsAgainstGeneric pins the O(1) block-line-search
// evaluation against the generic WorstLoad: for random columns, indexes
// and replacement values, sFm1 + max(x, aF) must equal top-F of the
// column with entry skip set to x.
func TestInsertionStatsAgainstGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		n := 3 + rng.Intn(30)
		v := make([]float64, n)
		for i := range v {
			if rng.Intn(4) == 0 {
				v[i] = 0
			} else {
				v[i] = rng.Float64() * 10
			}
		}
		F := 1 + rng.Intn(6)
		skip := rng.Intn(n)
		x := 0.0
		if rng.Intn(3) != 0 {
			x = rng.Float64() * 12
		}

		sFm1, aF := insertionStats(v, skip, F)
		got := sFm1 + math.Max(x, aF)

		cp := append([]float64(nil), v...)
		cp[skip] = x
		want := ArbitraryFailures{F: F}.WorstLoad(cp)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d F=%d skip=%d x=%v): fast %v != generic %v\ncol=%v",
				trial, n, F, skip, x, got, want, v)
		}
	}
}

func TestInsertionStatsEdges(t *testing.T) {
	if s, a := insertionStats([]float64{1, 2, 3}, 0, 0); s != 0 || a != 0 {
		t.Fatalf("F=0: %v %v", s, a)
	}
	// All entries negative-or-zero except skip.
	s, a := insertionStats([]float64{-1, 0, 5}, 2, 2)
	if s != 0 || a != 0 {
		t.Fatalf("skip-only column: %v %v", s, a)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("F>32 accepted")
		}
	}()
	insertionStats(make([]float64, 40), 0, 33)
}

// TestGroupStatsAgainstGeneric pins the K=1 group fast path: for random
// group structures and columns, max(0,sS,mSl+x) + max(0,sM,mMl+x) must
// equal GroupFailures{K:1}.WorstLoad with entry skip set to x.
func TestGroupStatsAgainstGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(20)
		mkGroups := func(count int) [][]graph.LinkID {
			var gs [][]graph.LinkID
			for i := 0; i < count; i++ {
				size := 1 + rng.Intn(4)
				seen := map[graph.LinkID]bool{}
				var grp []graph.LinkID
				for j := 0; j < size; j++ {
					id := graph.LinkID(rng.Intn(n))
					if !seen[id] {
						seen[id] = true
						grp = append(grp, id)
					}
				}
				gs = append(gs, grp)
			}
			return gs
		}
		m := GroupFailures{SRLGs: mkGroups(1 + rng.Intn(5)), MLGs: mkGroups(rng.Intn(3)), K: 1}
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.Float64() * 5
		}
		skip := graph.LinkID(rng.Intn(n))
		x := rng.Float64() * 8

		// Fast path, restricted to a single "link e" column.
		pcol := [][]float64{col}
		sS := make([]float64, 1)
		mSl := make([]float64, 1)
		sM := make([]float64, 1)
		mMl := make([]float64, 1)
		groupStats(m.SRLGs, pcol, skip, sS, mSl, 0, 1)
		groupStats(m.MLGs, pcol, skip, sM, mMl, 0, 1)
		srlg := math.Max(0, math.Max(sS[0], mSl[0]+x))
		mlg := math.Max(0, math.Max(sM[0], mMl[0]+x))
		got := srlg + mlg

		cp := append([]float64(nil), col...)
		cp[skip] = x
		want := m.WorstLoad(cp)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: fast %v != generic %v (srlgs=%v mlgs=%v skip=%d x=%v col=%v)",
				trial, got, want, m.SRLGs, m.MLGs, skip, x, col)
		}
	}
}

func TestTernaryMinFindsMinimum(t *testing.T) {
	for _, tc := range []struct {
		f    func(float64) float64
		want float64
	}{
		{func(x float64) float64 { return (x - 0.3) * (x - 0.3) }, 0.3},
		{func(x float64) float64 { return x }, 0},
		{func(x float64) float64 { return -x }, 1},
		{func(x float64) float64 { return math.Abs(x - 0.85) }, 0.85},
	} {
		got := ternaryMin(tc.f, 40)
		if math.Abs(got-tc.want) > 1e-6 {
			t.Fatalf("ternaryMin = %v, want %v", got, tc.want)
		}
	}
}

func TestUnionCommoditiesAndDemandVector(t *testing.T) {
	g := ring5(t)
	d1 := ring5Demand(g, 50)
	d2 := ring5Demand(g, 80)
	comms := unionCommodities([]*traffic.Matrix{d1, d2})
	// Union support equals the full off-diagonal (gravity has full
	// support).
	n := g.NumNodes()
	if len(comms) != n*(n-1) {
		t.Fatalf("comms = %d, want %d", len(comms), n*(n-1))
	}
	v1 := demandVector(comms, d1)
	for k, c := range comms {
		if v1[k] != d1.At(c.Src, c.Dst) {
			t.Fatalf("demandVector mismatch at %d", k)
		}
	}
}
