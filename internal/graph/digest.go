package graph

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Digest returns an FNV-1a content hash of everything about a graph that
// precomputation can observe: name, node names, link
// endpoints/capacity/delay/weight/duplex pairing, and the registered
// SRLG/MLG groups. Two graphs with equal digests are interchangeable as
// far as plans, states, and row-level deltas are concerned; the
// controlplane cache and the transition scheduler's cross-plan guard both
// key on it.
func Digest(g *Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		_, _ = h.Write([]byte(s))
	}

	str(g.Name)
	u64(uint64(g.NumNodes()))
	for n := 0; n < g.NumNodes(); n++ {
		str(g.Node(NodeID(n)))
	}
	u64(uint64(g.NumLinks()))
	for _, l := range g.Links() {
		u64(uint64(l.Src))
		u64(uint64(l.Dst))
		f64(l.Capacity)
		f64(l.Delay)
		f64(l.Weight)
		u64(uint64(int64(l.Reverse)))
	}
	groups := func(gs [][]LinkID) {
		u64(uint64(len(gs)))
		for _, grp := range gs {
			u64(uint64(len(grp)))
			for _, l := range grp {
				u64(uint64(l))
			}
		}
	}
	groups(g.SRLGs())
	groups(g.MLGs())
	return h.Sum64()
}
