package graph

import (
	"math/rand"
	"testing"
)

// TestConnectedAgainstBruteForce cross-checks the strong-connectivity
// predicate against a transitive-closure brute force on random graphs and
// failure sets.
func TestConnectedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		g := New("bf")
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(string(rune('a' + i)))
		}
		var all []LinkID
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.4 {
					all = append(all, g.AddLink(ids[i], ids[j], 1, 1, 1))
				}
			}
		}
		var failed LinkSet
		for _, id := range all {
			if rng.Float64() < 0.3 {
				failed.Add(id)
			}
		}
		alive := failed.Alive()

		// Brute force: Floyd-Warshall style closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			reach[i][i] = true
		}
		for _, l := range g.Links() {
			if alive(l.ID) {
				reach[l.Src][l.Dst] = true
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		want := true
		for i := 0; i < n && want; i++ {
			for j := 0; j < n; j++ {
				if !reach[i][j] {
					want = false
					break
				}
			}
		}
		if got := g.Connected(alive); got != want {
			t.Fatalf("trial %d: Connected = %v, brute force = %v", trial, got, want)
		}
		// ReachableFrom agrees with row 0 of the closure.
		seen := g.ReachableFrom(ids[0], alive)
		for j := 0; j < n; j++ {
			if seen[j] != reach[0][j] {
				t.Fatalf("trial %d: ReachableFrom[%d] = %v, want %v", trial, j, seen[j], reach[0][j])
			}
		}
	}
}
