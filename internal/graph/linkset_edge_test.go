package graph

import "testing"

// TestLinkSetEmpty exercises every operation on the zero-value (empty)
// set: all must be safe no-ops with sensible results, since the empty set
// is what "no failures" passes through the whole evaluation stack.
func TestLinkSetEmpty(t *testing.T) {
	var s LinkSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero set: Empty=%v Len=%d", s.Empty(), s.Len())
	}
	if s.Contains(0) || s.Contains(1000) {
		t.Fatal("empty set contains a link")
	}
	if ids := s.IDs(); len(ids) != 0 {
		t.Fatalf("empty set IDs = %v", ids)
	}
	if got := s.String(); got != "{}" {
		t.Fatalf("empty set String = %q", got)
	}
	s.Remove(5) // removing from empty must not panic or allocate words
	if !s.Empty() {
		t.Fatal("Remove on empty set changed it")
	}
	if !s.Union(LinkSet{}).Empty() {
		t.Fatal("empty ∪ empty is nonempty")
	}
	if !s.Equal(NewLinkSet()) || !s.Equal(s.Clone()) {
		t.Fatal("empty sets compare unequal")
	}
	alive := s.Alive()
	for _, id := range []LinkID{0, 63, 64, 129} {
		if !alive(id) {
			t.Fatalf("empty failure set kills link %d", id)
		}
	}
}

// TestLinkSetFull exercises a set holding every link of a multi-word
// range, including the 64-bit word boundaries where the bitmask math can
// go wrong.
func TestLinkSetFull(t *testing.T) {
	const n = 130 // three words, last one partial
	var s LinkSet
	for i := 0; i < n; i++ {
		s.Add(LinkID(i))
	}
	if s.Len() != n || s.Empty() {
		t.Fatalf("full set: Len=%d Empty=%v", s.Len(), s.Empty())
	}
	for i := 0; i < n; i++ {
		if !s.Contains(LinkID(i)) {
			t.Fatalf("full set missing link %d", i)
		}
	}
	if s.Contains(LinkID(n)) {
		t.Fatal("full set contains out-of-range link")
	}
	ids := s.IDs()
	if len(ids) != n {
		t.Fatalf("IDs returned %d links, want %d", len(ids), n)
	}
	for i, id := range ids {
		if id != LinkID(i) {
			t.Fatalf("IDs[%d] = %d, want ascending order", i, id)
		}
	}
	alive := s.Alive()
	for _, id := range []LinkID{0, 63, 64, 127, 128, 129} {
		if alive(id) {
			t.Fatalf("full failure set leaves link %d alive", id)
		}
	}
	if !s.Union(NewLinkSet(5)).Equal(s) {
		t.Fatal("union with subset changed the full set")
	}
	// Drain it back to empty across word boundaries.
	for i := 0; i < n; i++ {
		s.Remove(LinkID(i))
	}
	if !s.Empty() {
		t.Fatalf("drained set still has %v", s.IDs())
	}
	if !s.Equal(LinkSet{}) {
		t.Fatal("drained set (with allocated words) != zero set")
	}
}
