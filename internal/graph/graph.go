// Package graph provides the directed network topology model used by every
// other package in this repository: nodes, capacitated directed links,
// shared-risk link groups (SRLGs), maintenance link groups (MLGs), and
// cheap "alive subset" views used when evaluating failure scenarios.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a router in a Graph. IDs are dense, starting at 0.
type NodeID int

// LinkID identifies a directed link in a Graph. IDs are dense, starting at 0.
type LinkID int

// Link is a directed network link from Src to Dst.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// Capacity is the link capacity in abstract bandwidth units
	// (the evaluation uses Mbps).
	Capacity float64
	// Delay is the one-way propagation delay in milliseconds.
	Delay float64
	// Weight is the IGP metric used by shortest-path routing. The zero
	// value is replaced by 1 when the link is added.
	Weight float64
	// Reverse is the ID of the opposite-direction link if the link was
	// added with AddDuplex, or -1 for a simplex link.
	Reverse LinkID
}

// Graph is a directed multigraph. The zero value is an empty graph ready to
// use; most callers construct one via New and the builder methods.
type Graph struct {
	Name string

	nodes  []string
	byName map[string]NodeID
	links  []Link
	out    [][]LinkID
	in     [][]LinkID

	// srlgs and mlgs are groups of links that fail (or are taken down)
	// together. They drive the structured failure model of R3 §3.5.
	srlgs [][]LinkID
	mlgs  [][]LinkID

	// csr caches the flat CSR view; nil after any mutation. Guarded by
	// csrMu so concurrent readers (parallel evaluation workers) can share
	// one lazily built snapshot.
	csrMu sync.Mutex
	csr   *CSR
}

// New returns an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]NodeID)}
}

// AddNode adds a router with the given name and returns its ID. Adding a
// name that already exists returns the existing ID.
func (g *Graph) AddNode(name string) NodeID {
	if g.byName == nil {
		g.byName = make(map[string]NodeID)
	}
	if id, ok := g.byName[name]; ok {
		return id
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, name)
	g.byName[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.invalidateCSR()
	return id
}

// AddLink adds a directed link and returns its ID. A zero weight is
// normalized to 1. It panics if src or dst is out of range or src == dst.
func (g *Graph) AddLink(src, dst NodeID, capacity, delay, weight float64) LinkID {
	if src == dst {
		panic(fmt.Sprintf("graph: self loop at node %d", src))
	}
	if int(src) >= len(g.nodes) || int(dst) >= len(g.nodes) || src < 0 || dst < 0 {
		panic(fmt.Sprintf("graph: link endpoints %d->%d out of range", src, dst))
	}
	if weight == 0 {
		weight = 1
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{
		ID: id, Src: src, Dst: dst,
		Capacity: capacity, Delay: delay, Weight: weight,
		Reverse: -1,
	})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	g.invalidateCSR()
	return id
}

// AddDuplex adds a pair of opposite directed links with identical capacity,
// delay and weight, and cross-links their Reverse fields. It returns both
// IDs.
func (g *Graph) AddDuplex(a, b NodeID, capacity, delay, weight float64) (ab, ba LinkID) {
	ab = g.AddLink(a, b, capacity, delay, weight)
	ba = g.AddLink(b, a, capacity, delay, weight)
	g.links[ab].Reverse = ba
	g.links[ba].Reverse = ab
	return ab, ba
}

// NumNodes reports the number of routers.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks reports the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the name of node id.
func (g *Graph) Node(id NodeID) string { return g.nodes[id] }

// NodeByName returns the ID for a router name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns all links. The returned slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// SetWeight updates the IGP weight of a link (and not its reverse).
func (g *Graph) SetWeight(id LinkID, w float64) {
	g.links[id].Weight = w
	g.invalidateCSR()
}

// SetCapacity updates the capacity of a link (and not its reverse).
func (g *Graph) SetCapacity(id LinkID, c float64) {
	g.links[id].Capacity = c
	g.invalidateCSR()
}

// Out returns the IDs of links leaving node n. The slice must not be
// modified.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// In returns the IDs of links entering node n. The slice must not be
// modified.
func (g *Graph) In(n NodeID) []LinkID { return g.in[n] }

// FindLink returns the first link from src to dst, if any.
func (g *Graph) FindLink(src, dst NodeID) (LinkID, bool) {
	for _, id := range g.out[src] {
		if g.links[id].Dst == dst {
			return id, true
		}
	}
	return -1, false
}

// AddSRLG registers a shared-risk link group: a set of links that fail
// together (e.g. IP links riding the same fiber conduit). Returns the group
// index.
func (g *Graph) AddSRLG(links ...LinkID) int {
	cp := append([]LinkID(nil), links...)
	g.srlgs = append(g.srlgs, cp)
	return len(g.srlgs) - 1
}

// AddMLG registers a maintenance link group: a set of links taken down in
// the same maintenance operation. Returns the group index.
func (g *Graph) AddMLG(links ...LinkID) int {
	cp := append([]LinkID(nil), links...)
	g.mlgs = append(g.mlgs, cp)
	return len(g.mlgs) - 1
}

// SRLGs returns the registered shared-risk link groups.
func (g *Graph) SRLGs() [][]LinkID { return g.srlgs }

// MLGs returns the registered maintenance link groups.
func (g *Graph) MLGs() [][]LinkID { return g.mlgs }

// TotalCapacity returns the sum of all link capacities.
func (g *Graph) TotalCapacity() float64 {
	var sum float64
	for _, l := range g.links {
		sum += l.Capacity
	}
	return sum
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes, %d directed links", g.Name, len(g.nodes), len(g.links))
}

// Degree returns the out-degree of node n counting distinct neighbors.
func (g *Graph) Degree(n NodeID) int {
	seen := make(map[NodeID]bool)
	for _, id := range g.out[n] {
		seen[g.links[id].Dst] = true
	}
	return len(seen)
}

// MaxDegree returns the maximum node degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for n := 0; n < len(g.nodes); n++ {
		if d := g.Degree(NodeID(n)); d > max {
			max = d
		}
	}
	return max
}

// Connected reports whether every node can reach every other node using
// only links for which alive returns true. A nil alive means all links are
// up. Graphs with fewer than two nodes are connected.
func (g *Graph) Connected(alive func(LinkID) bool) bool {
	n := len(g.nodes)
	if n < 2 {
		return true
	}
	// Strong connectivity via forward and reverse BFS from node 0.
	if g.reachCount(0, alive, false) != n {
		return false
	}
	return g.reachCount(0, alive, true) == n
}

// ReachableFrom returns the set of nodes reachable from src over alive
// links (including src itself).
func (g *Graph) ReachableFrom(src NodeID, alive func(LinkID) bool) []bool {
	seen := make([]bool, len(g.nodes))
	g.bfs(src, alive, false, seen)
	return seen
}

func (g *Graph) reachCount(src NodeID, alive func(LinkID) bool, reverse bool) int {
	seen := make([]bool, len(g.nodes))
	g.bfs(src, alive, reverse, seen)
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	return count
}

func (g *Graph) bfs(src NodeID, alive func(LinkID) bool, reverse bool, seen []bool) {
	queue := []NodeID{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		var edges []LinkID
		if reverse {
			edges = g.in[u]
		} else {
			edges = g.out[u]
		}
		for _, id := range edges {
			if alive != nil && !alive(id) {
				continue
			}
			var v NodeID
			if reverse {
				v = g.links[id].Src
			} else {
				v = g.links[id].Dst
			}
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:   g.Name,
		nodes:  append([]string(nil), g.nodes...),
		byName: make(map[string]NodeID, len(g.byName)),
		links:  append([]Link(nil), g.links...),
	}
	for k, v := range g.byName {
		ng.byName[k] = v
	}
	ng.out = make([][]LinkID, len(g.out))
	for i, s := range g.out {
		ng.out[i] = append([]LinkID(nil), s...)
	}
	ng.in = make([][]LinkID, len(g.in))
	for i, s := range g.in {
		ng.in[i] = append([]LinkID(nil), s...)
	}
	for _, grp := range g.srlgs {
		ng.srlgs = append(ng.srlgs, append([]LinkID(nil), grp...))
	}
	for _, grp := range g.mlgs {
		ng.mlgs = append(ng.mlgs, append([]LinkID(nil), grp...))
	}
	return ng
}

// SortedNodeNames returns node names in lexical order; useful for stable
// test output.
func (g *Graph) SortedNodeNames() []string {
	names := append([]string(nil), g.nodes...)
	sort.Strings(names)
	return names
}
