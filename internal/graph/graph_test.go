package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) (*Graph, [3]NodeID) {
	t.Helper()
	g := New("tri")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddDuplex(a, b, 10, 1, 1)
	g.AddDuplex(b, c, 10, 1, 1)
	g.AddDuplex(c, a, 10, 1, 1)
	return g, [3]NodeID{a, b, c}
}

func TestAddNodeDedup(t *testing.T) {
	g := New("g")
	a := g.AddNode("x")
	b := g.AddNode("x")
	if a != b {
		t.Fatalf("duplicate AddNode returned %d and %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddLinkAdjacency(t *testing.T) {
	g := New("g")
	a := g.AddNode("a")
	b := g.AddNode("b")
	id := g.AddLink(a, b, 100, 2, 0)
	l := g.Link(id)
	if l.Src != a || l.Dst != b || l.Capacity != 100 || l.Delay != 2 {
		t.Fatalf("link fields wrong: %+v", l)
	}
	if l.Weight != 1 {
		t.Fatalf("zero weight not normalized: %v", l.Weight)
	}
	if len(g.Out(a)) != 1 || g.Out(a)[0] != id {
		t.Fatalf("Out(a) = %v", g.Out(a))
	}
	if len(g.In(b)) != 1 || g.In(b)[0] != id {
		t.Fatalf("In(b) = %v", g.In(b))
	}
	if l.Reverse != -1 {
		t.Fatalf("simplex link has Reverse = %d", l.Reverse)
	}
}

func TestAddDuplexReverse(t *testing.T) {
	g := New("g")
	a := g.AddNode("a")
	b := g.AddNode("b")
	ab, ba := g.AddDuplex(a, b, 100, 2, 3)
	if g.Link(ab).Reverse != ba || g.Link(ba).Reverse != ab {
		t.Fatalf("Reverse pointers not crossed")
	}
	if g.Link(ba).Src != b || g.Link(ba).Dst != a {
		t.Fatalf("reverse link endpoints wrong: %+v", g.Link(ba))
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("AddLink(a,a) did not panic")
		}
	}()
	g := New("g")
	a := g.AddNode("a")
	g.AddLink(a, a, 1, 1, 1)
}

func TestFindLink(t *testing.T) {
	g, n := triangle(t)
	if id, ok := g.FindLink(n[0], n[1]); !ok || g.Link(id).Dst != n[1] {
		t.Fatalf("FindLink a->b failed: %v %v", id, ok)
	}
	g2 := New("g2")
	x := g2.AddNode("x")
	y := g2.AddNode("y")
	g2.AddLink(x, y, 1, 1, 1)
	if _, ok := g2.FindLink(y, x); ok {
		t.Fatalf("FindLink found non-existent reverse link")
	}
}

func TestConnected(t *testing.T) {
	g, _ := triangle(t)
	if !g.Connected(nil) {
		t.Fatalf("triangle should be connected")
	}
	// Fail both directions of one edge: still connected via the third node.
	fail := NewLinkSet(0, 1)
	if !g.Connected(fail.Alive()) {
		t.Fatalf("triangle minus one duplex edge should remain connected")
	}
	// Fail two duplex edges: node becomes isolated.
	fail = NewLinkSet(0, 1, 4, 5)
	if g.Connected(fail.Alive()) {
		t.Fatalf("triangle minus two duplex edges should be partitioned")
	}
}

func TestConnectedDirected(t *testing.T) {
	// a->b->c->a is strongly connected; removing c->a breaks it even though
	// the underlying undirected graph stays connected.
	g := New("cyc")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1, 1, 1)
	g.AddLink(b, c, 1, 1, 1)
	ca := g.AddLink(c, a, 1, 1, 1)
	if !g.Connected(nil) {
		t.Fatalf("cycle should be strongly connected")
	}
	fail := NewLinkSet(ca)
	if g.Connected(fail.Alive()) {
		t.Fatalf("cycle minus one arc should not be strongly connected")
	}
}

func TestReachableFrom(t *testing.T) {
	g := New("path")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	ab := g.AddLink(a, b, 1, 1, 1)
	g.AddLink(b, c, 1, 1, 1)
	seen := g.ReachableFrom(a, nil)
	for n, want := range []bool{true, true, true} {
		if seen[n] != want {
			t.Fatalf("ReachableFrom(a)[%d] = %v, want %v", n, seen[n], want)
		}
	}
	fail := NewLinkSet(ab)
	seen = g.ReachableFrom(a, fail.Alive())
	if seen[b] || seen[c] {
		t.Fatalf("b,c should be unreachable after a->b fails: %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	g, _ := triangle(t)
	g.AddSRLG(0, 2)
	g.AddMLG(1, 3)
	cp := g.Clone()
	cp.SetWeight(0, 99)
	cp.AddNode("z")
	if g.Link(0).Weight == 99 {
		t.Fatalf("Clone shares link storage")
	}
	if g.NumNodes() == cp.NumNodes() {
		t.Fatalf("Clone shares node storage")
	}
	if len(cp.SRLGs()) != 1 || len(cp.MLGs()) != 1 {
		t.Fatalf("Clone lost groups: %v %v", cp.SRLGs(), cp.MLGs())
	}
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g, n := triangle(t)
	if d := g.Degree(n[0]); d != 2 {
		t.Fatalf("Degree = %d, want 2", d)
	}
	if d := g.MaxDegree(); d != 2 {
		t.Fatalf("MaxDegree = %d, want 2", d)
	}
}

func TestTotalCapacity(t *testing.T) {
	g, _ := triangle(t)
	if got := g.TotalCapacity(); got != 60 {
		t.Fatalf("TotalCapacity = %v, want 60", got)
	}
}

func TestLinkSetBasics(t *testing.T) {
	var s LinkSet
	if !s.Empty() || s.Contains(5) {
		t.Fatalf("zero LinkSet should be empty")
	}
	s.Add(3)
	s.Add(70)
	s.Add(3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(3) || !s.Contains(70) || s.Contains(4) {
		t.Fatalf("Contains wrong")
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 1 {
		t.Fatalf("Remove failed")
	}
	s.Remove(1000) // no-op beyond range
	if got := NewLinkSet(1, 2).String(); got != "{1,2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestLinkSetUnionEqual(t *testing.T) {
	a := NewLinkSet(1, 65)
	b := NewLinkSet(2)
	u := a.Union(b)
	if !u.Equal(NewLinkSet(1, 2, 65)) {
		t.Fatalf("Union = %v", u)
	}
	if !a.Equal(a.Clone()) {
		t.Fatalf("Clone not equal")
	}
	if a.Equal(b) {
		t.Fatalf("distinct sets compare equal")
	}
	// Equal must ignore trailing zero words.
	c := NewLinkSet(100)
	c.Remove(100)
	if !c.Equal(LinkSet{}) {
		t.Fatalf("set with trailing zero words != empty set")
	}
}

func TestLinkSetQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		var s LinkSet
		want := make(map[LinkID]bool)
		for _, r := range raw {
			id := LinkID(r % 512)
			s.Add(id)
			want[id] = true
		}
		ids := s.IDs()
		if len(ids) != len(want) {
			return false
		}
		for _, id := range ids {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSetAliveQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		var s LinkSet
		member := make(map[LinkID]bool)
		for k := 0; k < 20; k++ {
			id := LinkID(rng.Intn(300))
			s.Add(id)
			member[id] = true
		}
		alive := s.Alive()
		for id := LinkID(0); id < 300; id++ {
			if alive(id) == member[id] {
				t.Fatalf("alive(%d) = %v with member=%v", id, alive(id), member[id])
			}
		}
	}
}
