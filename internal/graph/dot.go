package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format, one edge per duplex
// pair (or a directed edge for simplex links). Optional per-link
// annotations come from label (may be nil).
func (g *Graph) WriteDOT(w io.Writer, label func(Link) string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  node [shape=ellipse];\n", g.Name); err != nil {
		return err
	}
	seen := make([]bool, len(g.links))
	for _, l := range g.links {
		if seen[l.ID] {
			continue
		}
		seen[l.ID] = true
		edgeOp := " -- "
		if l.Reverse >= 0 {
			seen[l.Reverse] = true
		}
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%.0f", l.Capacity))
		if label != nil {
			attrs = fmt.Sprintf("label=%q", label(l))
		}
		if _, err := fmt.Fprintf(w, "  %q%s%q [%s];\n",
			g.Node(l.Src), edgeOp, g.Node(l.Dst), attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
