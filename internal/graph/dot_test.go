package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New("dotnet")
	a := g.AddNode("alpha")
	b := g.AddNode("beta")
	c := g.AddNode("gamma")
	g.AddDuplex(a, b, 100, 1, 1)
	g.AddDuplex(b, c, 200, 1, 1)

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "dotnet"`, `"alpha" -- "beta"`, `"beta" -- "gamma"`, `label="100"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// One edge per duplex pair.
	if n := strings.Count(out, " -- "); n != 2 {
		t.Fatalf("edge count = %d, want 2", n)
	}
}

func TestWriteDOTCustomLabel(t *testing.T) {
	g := New("d")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddDuplex(a, b, 100, 1, 1)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, func(l Link) string { return "custom" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="custom"`) {
		t.Fatalf("custom label missing: %s", buf.String())
	}
}
