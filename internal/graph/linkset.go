package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// LinkSet is a set of link IDs backed by a bitmask. The zero value is the
// empty set. LinkSet values are small and intended to be passed by value;
// mutating methods have pointer receivers.
type LinkSet struct {
	words []uint64
}

// NewLinkSet builds a set from the given IDs.
func NewLinkSet(ids ...LinkID) LinkSet {
	var s LinkSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id into the set.
func (s *LinkSet) Add(id LinkID) {
	w := int(id) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(id) % 64)
}

// Clear empties the set, keeping its backing storage for reuse.
func (s *LinkSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Remove deletes id from the set if present.
func (s *LinkSet) Remove(id LinkID) {
	w := int(id) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(id) % 64)
	}
}

// Contains reports whether id is in the set.
func (s LinkSet) Contains(id LinkID) bool {
	w := int(id) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%64)) != 0
}

// Len returns the number of links in the set.
func (s LinkSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s LinkSet) Empty() bool { return s.Len() == 0 }

// IDs returns the members in increasing order.
func (s LinkSet) IDs() []LinkID {
	var ids []LinkID
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			ids = append(ids, LinkID(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return ids
}

// Union returns a new set containing members of either set.
func (s LinkSet) Union(t LinkSet) LinkSet {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	u := LinkSet{words: make([]uint64, n)}
	copy(u.words, s.words)
	for i, w := range t.words {
		u.words[i] |= w
	}
	return u
}

// Clone returns an independent copy of the set.
func (s LinkSet) Clone() LinkSet {
	return LinkSet{words: append([]uint64(nil), s.words...)}
}

// Equal reports whether both sets have identical members.
func (s LinkSet) Equal(t LinkSet) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Alive returns a predicate reporting true for links NOT in the set.
// It is the natural adapter from "failed links" to the alive callbacks used
// by Graph, spf and mcf.
func (s LinkSet) Alive() func(LinkID) bool {
	return func(id LinkID) bool { return !s.Contains(id) }
}

// String implements fmt.Stringer, listing members in increasing order.
func (s LinkSet) String() string {
	ids := s.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
