package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randGraph builds a random connected-ish digraph for CSR checks.
func randGraph(t *testing.T, seed int64, nodes, links int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New("csr-test")
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	// Ring backbone so every node has adjacency, then random chords.
	for i := 0; i < nodes; i++ {
		g.AddLink(ids[i], ids[(i+1)%nodes], 100, rng.Float64(), 1+rng.Float64())
	}
	for len(g.links) < links {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		g.AddLink(ids[a], ids[b], 50+rng.Float64()*100, rng.Float64(), 1+rng.Float64())
	}
	return g
}

// TestCSRMatchesGraph checks the flat view cell by cell against the
// adjacency the Graph reports: same link IDs in the same order per node
// (the SPF kernel's pop order — and therefore the planner's byte-identity
// contract — depends on relaxation order matching the closure reference),
// and per-link attributes equal to the Link structs.
func TestCSRMatchesGraph(t *testing.T) {
	g := randGraph(t, 1, 23, 80)
	c := g.CSR()
	if c.N != g.NumNodes() || c.NumLinks() != g.NumLinks() {
		t.Fatalf("CSR shape %d/%d, graph %d/%d", c.N, c.NumLinks(), g.NumNodes(), g.NumLinks())
	}
	for n := 0; n < g.NumNodes(); n++ {
		out := g.Out(NodeID(n))
		got := c.OutLinks[c.OutHead[n]:c.OutHead[n+1]]
		if len(out) != len(got) {
			t.Fatalf("node %d: out degree %d vs %d", n, len(got), len(out))
		}
		for i, id := range out {
			if got[i] != int32(id) {
				t.Fatalf("node %d out[%d]: CSR %d vs graph %d (order must match)", n, i, got[i], id)
			}
		}
		in := g.In(NodeID(n))
		gotIn := c.InLinks[c.InHead[n]:c.InHead[n+1]]
		if len(in) != len(gotIn) {
			t.Fatalf("node %d: in degree %d vs %d", n, len(gotIn), len(in))
		}
		for i, id := range in {
			if gotIn[i] != int32(id) {
				t.Fatalf("node %d in[%d]: CSR %d vs graph %d", n, i, gotIn[i], id)
			}
		}
	}
	for e := 0; e < g.NumLinks(); e++ {
		l := g.Link(LinkID(e))
		if c.Src[e] != int32(l.Src) || c.Dst[e] != int32(l.Dst) {
			t.Fatalf("link %d endpoints differ", e)
		}
		if c.Weight[e] != l.Weight || c.Delay[e] != l.Delay || c.Capacity[e] != l.Capacity {
			t.Fatalf("link %d attributes differ", e)
		}
	}
}

// TestCSRInvalidation: mutations must produce a fresh snapshot; untouched
// graphs must keep returning the same cached one.
func TestCSRInvalidation(t *testing.T) {
	g := randGraph(t, 2, 10, 24)
	c1 := g.CSR()
	if g.CSR() != c1 {
		t.Fatal("CSR not cached across calls without mutation")
	}
	g.SetWeight(3, 42)
	c2 := g.CSR()
	if c2 == c1 {
		t.Fatal("SetWeight did not invalidate the CSR")
	}
	if c2.Weight[3] != 42 {
		t.Fatalf("rebuilt CSR weight[3] = %v, want 42", c2.Weight[3])
	}
	g.SetCapacity(5, 77)
	c3 := g.CSR()
	if c3 == c2 || c3.Capacity[5] != 77 {
		t.Fatal("SetCapacity did not refresh the CSR")
	}
	n := g.AddNode("extra")
	g.AddLink(n, 0, 10, 0, 1)
	c4 := g.CSR()
	if c4 == c3 || c4.N != g.NumNodes() || c4.NumLinks() != g.NumLinks() {
		t.Fatal("AddNode/AddLink did not refresh the CSR")
	}
	if clone := g.Clone(); clone.CSR() == c4 {
		t.Fatal("clone shares the original's CSR cache")
	}
}

// TestCSRConcurrentAccess hammers the lazy constructor from many
// goroutines; run under -race this pins the mutex guarding the cache.
func TestCSRConcurrentAccess(t *testing.T) {
	g := randGraph(t, 3, 16, 50)
	var wg sync.WaitGroup
	got := make([]*CSR, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = g.CSR()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent CSR calls returned different snapshots")
		}
	}
}
