package graph

// CSR is a compressed-sparse-row view of a Graph: adjacency and link
// attributes flattened into contiguous arrays so hot loops (shortest-path
// kernels, load accumulation) read memory sequentially instead of chasing
// per-link structs behind interface or closure calls.
//
// Layout: links keep their Graph IDs. OutLinks[OutHead[n]:OutHead[n+1]]
// are the IDs of links leaving node n, in the same order Graph.Out
// returns them; InLinks is the mirror over Graph.In. Src/Dst/Weight/
// Delay/Capacity are indexed by link ID.
//
// A CSR is an immutable snapshot: it must not be modified, and it is
// invalidated (lazily, on the next CSR call) by any Graph mutation,
// including SetWeight and SetCapacity.
type CSR struct {
	N int // number of nodes

	OutHead  []int32 // len N+1
	OutLinks []int32 // len NumLinks, grouped by source node
	InHead   []int32 // len N+1
	InLinks  []int32 // len NumLinks, grouped by destination node

	Src      []int32   // per link: source node
	Dst      []int32   // per link: destination node
	Weight   []float64 // per link: IGP metric
	Delay    []float64 // per link: propagation delay (ms)
	Capacity []float64 // per link: capacity
}

// NumLinks reports the number of directed links in the view.
func (c *CSR) NumLinks() int { return len(c.Src) }

// CSR returns the flat view of the graph, building and caching it on
// first use. The cache is invalidated by every mutation (adding nodes or
// links, SetWeight, SetCapacity), so the returned snapshot always matches
// the graph; concurrent CSR calls are safe, concurrent mutation is not
// (the Graph itself has never supported that).
func (g *Graph) CSR() *CSR {
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if g.csr == nil {
		g.csr = buildCSR(g)
	}
	return g.csr
}

func (g *Graph) invalidateCSR() {
	g.csrMu.Lock()
	g.csr = nil
	g.csrMu.Unlock()
}

func buildCSR(g *Graph) *CSR {
	nN, nL := len(g.nodes), len(g.links)
	c := &CSR{
		N:        nN,
		OutHead:  make([]int32, nN+1),
		OutLinks: make([]int32, 0, nL),
		InHead:   make([]int32, nN+1),
		InLinks:  make([]int32, 0, nL),
		Src:      make([]int32, nL),
		Dst:      make([]int32, nL),
		Weight:   make([]float64, nL),
		Delay:    make([]float64, nL),
		Capacity: make([]float64, nL),
	}
	for n := 0; n < nN; n++ {
		c.OutHead[n] = int32(len(c.OutLinks))
		for _, id := range g.out[n] {
			c.OutLinks = append(c.OutLinks, int32(id))
		}
		c.InHead[n] = int32(len(c.InLinks))
		for _, id := range g.in[n] {
			c.InLinks = append(c.InLinks, int32(id))
		}
	}
	c.OutHead[nN] = int32(len(c.OutLinks))
	c.InHead[nN] = int32(len(c.InLinks))
	for i, l := range g.links {
		c.Src[i] = int32(l.Src)
		c.Dst[i] = int32(l.Dst)
		c.Weight[i] = l.Weight
		c.Delay[i] = l.Delay
		c.Capacity[i] = l.Capacity
	}
	return c
}
