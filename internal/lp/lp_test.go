package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return sol
}

func TestSimpleMaximizeViaNegation(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6  => x=4,y=0, value 12.
	p := NewProblem()
	x := p.AddVariable("x", -3)
	y := p.AddVariable("y", -2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Value+12) > 1e-9 {
		t.Fatalf("value = %v, want -12", sol.Value)
	}
	if math.Abs(sol.X[x]-4) > 1e-9 || math.Abs(sol.X[y]) > 1e-9 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x+2y s.t. x+y=10, x>=3, y>=2  => x=8,y=2, value 12.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{x, 1}}, GE, 3)
	p.AddConstraint([]Term{{y, 1}}, GE, 2)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-12) > 1e-9 {
		t.Fatalf("status %v value %v", sol.Status, sol.Value)
	}
	if math.Abs(sol.X[x]-8) > 1e-9 || math.Abs(sol.X[y]-2) > 1e-9 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -1) // maximize x
	y := p.AddVariable("y", 0)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -5  means x >= 5; min x => 5.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, -1}}, LE, -5)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-5) > 1e-9 {
		t.Fatalf("status %v value %v", sol.Status, sol.Value)
	}
}

func TestDuplicateTermsSummed(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, 1}, {x, 2}}, GE, 9) // 3x >= 9
	sol := solveOK(t, p)
	if math.Abs(sol.Value-3) > 1e-9 {
		t.Fatalf("value = %v, want 3", sol.Value)
	}
}

func TestDegenerateTermination(t *testing.T) {
	// Classic degenerate LP (Beale-like structure); must terminate and be
	// optimal.
	p := NewProblem()
	x1 := p.AddVariable("x1", -0.75)
	x2 := p.AddVariable("x2", 150)
	x3 := p.AddVariable("x3", -0.02)
	x4 := p.AddVariable("x4", 6)
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Term{{x3, 1}}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Value-(-0.05)) > 1e-6 {
		t.Fatalf("value = %v, want -0.05", sol.Value)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// x+y=4 appears twice: redundant but consistent.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 4)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Value-4) > 1e-9 {
		t.Fatalf("status %v value %v", sol.Status, sol.Value)
	}
}

func TestEmptyProblem(t *testing.T) {
	sol := solveOK(t, NewProblem())
	if sol.Status != Optimal {
		t.Fatalf("empty problem status = %v", sol.Status)
	}
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 1)
	p.AddConstraint([]Term{{7, 1}}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatalf("bad index accepted")
	}
}

func TestMinCostFlowAsLP(t *testing.T) {
	// Min-cost unit flow on the diamond a->{b,c}->d, cost a->b->d = 2,
	// a->c->d = 3. Optimal cost 2.
	p := NewProblem()
	ab := p.AddVariable("ab", 1)
	ac := p.AddVariable("ac", 2)
	bd := p.AddVariable("bd", 1)
	cd := p.AddVariable("cd", 1)
	p.AddConstraint([]Term{{ab, 1}, {ac, 1}}, EQ, 1)  // out of a
	p.AddConstraint([]Term{{ab, 1}, {bd, -1}}, EQ, 0) // conservation at b
	p.AddConstraint([]Term{{ac, 1}, {cd, -1}}, EQ, 0) // conservation at c
	sol := solveOK(t, p)
	if math.Abs(sol.Value-2) > 1e-9 {
		t.Fatalf("value = %v, want 2", sol.Value)
	}
	if math.Abs(sol.X[ab]-1) > 1e-9 {
		t.Fatalf("flow not on cheap path: %v", sol.X)
	}
}

// TestRandomLPsAgainstBruteForce cross-checks small random LPs against an
// exhaustive vertex enumeration solver.
func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		// 2 variables, 3 <= constraints with positive rhs: always feasible
		// (x=0), bounded iff costs >= 0; use nonneg costs with one negative
		// sometimes bounded by constraints.
		p := NewProblem()
		c := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		x := p.AddVariable("x", c[0])
		y := p.AddVariable("y", c[1])
		rowsA := make([][2]float64, 3)
		rowsB := make([]float64, 3)
		for i := 0; i < 3; i++ {
			rowsA[i] = [2]float64{rng.Float64()*2 + 0.1, rng.Float64()*2 + 0.1}
			rowsB[i] = rng.Float64()*5 + 1
			p.AddConstraint([]Term{{x, rowsA[i][0]}, {y, rowsA[i][1]}}, LE, rowsB[i])
		}
		sol := solveOK(t, p)
		if sol.Status != Optimal {
			// With all-positive constraint coefficients the polytope is
			// bounded, so the LP must be optimal.
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Brute force over vertices: intersections of pairs of active
		// constraints plus axes.
		best := math.Inf(1)
		check := func(vx, vy float64) {
			if vx < -1e-9 || vy < -1e-9 {
				return
			}
			for i := 0; i < 3; i++ {
				if rowsA[i][0]*vx+rowsA[i][1]*vy > rowsB[i]+1e-7 {
					return
				}
			}
			if v := c[0]*vx + c[1]*vy; v < best {
				best = v
			}
		}
		check(0, 0)
		for i := 0; i < 3; i++ {
			check(rowsB[i]/rowsA[i][0], 0)
			check(0, rowsB[i]/rowsA[i][1])
			for j := i + 1; j < 3; j++ {
				det := rowsA[i][0]*rowsA[j][1] - rowsA[i][1]*rowsA[j][0]
				if math.Abs(det) < 1e-12 {
					continue
				}
				vx := (rowsB[i]*rowsA[j][1] - rowsA[i][1]*rowsB[j]) / det
				vy := (rowsA[i][0]*rowsB[j] - rowsB[i]*rowsA[j][0]) / det
				check(vx, vy)
			}
		}
		if math.Abs(sol.Value-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: simplex %v, brute force %v", trial, sol.Value, best)
		}
	}
}

func TestSolveIsRepeatable(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	a := solveOK(t, p)
	b := solveOK(t, p)
	if a.Value != b.Value {
		t.Fatalf("re-solve differs: %v vs %v", a.Value, b.Value)
	}
	// Modify and re-solve.
	p.SetCost(x, 5)
	c := solveOK(t, p)
	if math.Abs(c.Value-10) > 1e-9 {
		t.Fatalf("after SetCost value = %v", c.Value)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration limit",
		Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q", int(s), s)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A 60-variable, 40-constraint random dense LP.
	rng := rand.New(rand.NewSource(3))
	build := func() *Problem {
		p := NewProblem()
		for j := 0; j < 60; j++ {
			p.AddVariable("", rng.Float64())
		}
		for i := 0; i < 40; i++ {
			terms := make([]Term, 60)
			for j := 0; j < 60; j++ {
				terms[j] = Term{j, rng.Float64()}
			}
			p.AddConstraint(terms, GE, 1+rng.Float64())
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
