// Package lp implements a revised-simplex solver for linear programs in
// the form
//
//	minimize  c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// It substitutes for the CPLEX solver the paper uses in its offline
// precomputation (equation (7)). The solver is exact up to floating-point
// tolerances and is intended for small and medium instances; large
// topologies use the iterative solver in internal/core instead.
//
// The core is a two-phase revised simplex over a basis maintained as a
// dense LU factorization plus a product-form eta file, refactorized every
// few dozen pivots so long degenerate runs cannot drift the way the old
// dense full-tableau implementation could. Rows and structural columns
// are equilibrated with powers of two before phase 1, making every
// tolerance scale-free. Solve still verifies the final point against the
// original constraints, but a failed check now triggers recovery —
// refactorize and re-optimize, then a tightened cold restart — before any
// error is reported. SolveFrom warm-starts from a previous solution's
// Basis, repairing rhs-only changes with the dual simplex; hot re-solve
// paths (per-scenario optimal baselines, min-MLU solves) use it to cut
// pivot counts dramatically.
package lp

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Term is one coefficient of a constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is an LP under construction. The zero value is an empty
// minimization problem.
type Problem struct {
	cost  []float64
	names []string
	cons  []constraint
	// MaxIter overrides the default pivot limit when nonzero.
	MaxIter int
	// Obs, when non-nil, receives solver counters under the "lp." prefix:
	// solves, pivots (simplex iterations across all phases), basis
	// repairs (artificials driven out after phase 1), refactorizations,
	// warm_starts, recoveries, and terminal statuses. Nil costs nothing.
	Obs *obs.Registry
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVariable adds a nonnegative variable with the given objective
// coefficient and returns its index.
func (p *Problem) AddVariable(name string, cost float64) int {
	p.cost = append(p.cost, cost)
	p.names = append(p.names, name)
	return len(p.cost) - 1
}

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.cost) }

// SetCost updates the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) { p.cost[v] = cost }

// AddConstraint adds the row terms (op) rhs. Terms may repeat a variable;
// coefficients are summed.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	cp := append([]Term(nil), terms...)
	p.cons = append(p.cons, constraint{cp, op, rhs})
}

// Basis is the optimal simplex basis of a solved Problem, opaque to
// callers. Passing it to SolveFrom on a structurally identical problem —
// same variables and same constraint rows up to rhs values — re-solves
// warm: from an unchanged problem the solve is pivot-free, and after an
// rhs change the dual simplex repairs feasibility in a handful of pivots
// instead of a full two-phase run. A basis whose shape does not match
// the receiving problem is ignored and the solve falls back to cold, so
// callers may pass candidates optimistically.
type Basis struct {
	cols      []int
	n, m, tot int
}

// matches reports whether the basis fits a problem of the given shape.
func (b *Basis) matches(n, m, total int) bool {
	return b != nil && b.n == n && b.m == m && b.tot == total && len(b.cols) == m
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// Value is the objective value (meaningful only when Status ==
	// Optimal).
	Value float64
	// X holds the variable values.
	X []float64
	// Iterations is the number of simplex pivots performed.
	Iterations int
	// BasisRepairs counts post-phase-1 basis surgery: artificial
	// variables examined for drive-out after phase 1.
	BasisRepairs int
	// Refactorizations counts LU factorizations of the basis (the
	// periodic-refactorization cadence plus warm starts and recoveries).
	Refactorizations int
	// Recoveries counts verification failures repaired by refactorizing
	// and re-optimizing instead of returning an error.
	Recoveries int
	// WarmStarted reports whether the solve ran from the caller's basis
	// (false when the basis was unusable and the solve fell back cold).
	WarmStarted bool
	// Basis is the optimal basis, for warm-starting a later solve of a
	// structurally identical problem via SolveFrom. Nil unless Status ==
	// Optimal.
	Basis *Basis
}

const (
	tolPivot      = 1e-9
	tolZero       = 1e-7
	maxRecoveries = 2
)

// Solve runs the revised simplex cold and returns the solution. It never
// mutates the problem, so a Problem can be re-solved after modification.
func (p *Problem) Solve() (*Solution, error) { return p.SolveFrom(nil) }

// SolveFrom is Solve warm-started from a previous solution's Basis (nil
// means cold). See Basis for the warm-start contract.
func (p *Problem) SolveFrom(warm *Basis) (*Solution, error) {
	sol, err := p.solve(warm)
	if reg := p.Obs; reg != nil && sol != nil {
		reg.Counter("lp.solves").Inc()
		reg.Counter("lp.pivots").Add(int64(sol.Iterations))
		reg.Counter("lp.basis_repairs").Add(int64(sol.BasisRepairs))
		reg.Counter("lp.refactorizations").Add(int64(sol.Refactorizations))
		reg.Counter("lp.recoveries").Add(int64(sol.Recoveries))
		if sol.WarmStarted {
			reg.Counter("lp.warm_starts").Inc()
		}
		reg.Vec("lp.status", 4, func(i int) string { return Status(i).String() }).Add(int(sol.Status), 1)
	}
	return sol, err
}

func (p *Problem) solve(warm *Basis) (*Solution, error) {
	n := len(p.cost)
	if n == 0 {
		return &Solution{Status: Optimal, X: nil}, nil
	}
	sf, err := buildStdForm(p)
	if err != nil {
		return nil, err
	}
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 50 * (sf.m + sf.total + 10)
	}
	s := newSolver(sf, maxIter)
	sol := &Solution{X: make([]float64, n)}

	st := IterLimit
	phase := 2
	handled := false
	if warm.matches(n, sf.m, sf.total) {
		handled, st = s.warm(warm.cols)
		sol.WarmStarted = handled
	}
	var serr error
	if !handled {
		st, phase, serr = s.cold()
	}

	if st != Optimal {
		s.fill(sol)
		sol.Status = st
		switch st {
		case Infeasible, Unbounded:
			return sol, nil
		default:
			if serr != nil {
				return sol, fmt.Errorf("lp: %v", serr)
			}
			return sol, fmt.Errorf("lp: phase-%d iteration limit", phase)
		}
	}

	// Verify the claimed optimum against the original constraints; on
	// failure, recover (refactorize + re-optimize, then a tightened cold
	// restart) before giving up.
	for attempt := 0; ; attempt++ {
		s.extract(sol.X)
		verr := p.verifySolution(sol.X)
		if verr == nil {
			break
		}
		if attempt >= maxRecoveries || !s.recover(attempt) {
			s.fill(sol)
			sol.Status = IterLimit
			return sol, fmt.Errorf("lp: solution failed verification after %d recovery attempts: %v", s.recoveries, verr)
		}
	}
	// Clamp tolerance-level negatives left by floating point.
	for j, v := range sol.X {
		if v < 0 {
			sol.X[j] = 0
		}
	}
	var val float64
	for j, c := range p.cost {
		val += c * sol.X[j]
	}
	sol.Value = val
	sol.Status = Optimal
	s.fill(sol)
	sol.Basis = &Basis{cols: append([]int(nil), s.basis...), n: n, m: sf.m, tot: sf.total}
	return sol, nil
}

// testVerify, when non-nil, replaces checkFeasible in the post-solve
// verification loop so tests can force the recovery path.
var testVerify func(p *Problem, x []float64) error

func (p *Problem) verifySolution(x []float64) error {
	if testVerify != nil {
		return testVerify(p, x)
	}
	return p.checkFeasible(x)
}

// checkFeasible verifies x against the problem's constraints within a
// relative tolerance. Both checks are scale-aware: the nonnegativity
// bound is relative to the largest |x| and each row's bound to the
// largest term in the row, so Gbps-scale capacities next to unit demands
// neither false-fail nor mask real violations.
func (p *Problem) checkFeasible(x []float64) error {
	const tol = 1e-5
	xScale := 1.0
	for _, v := range x {
		if a := math.Abs(v); a > xScale {
			xScale = a
		}
	}
	for _, v := range x {
		if v < -tol*xScale {
			return fmt.Errorf("negative variable %v (scale %v)", v, xScale)
		}
	}
	for i, c := range p.cons {
		var lhs, scale float64
		scale = math.Abs(c.rhs)
		for _, t := range c.terms {
			lhs += t.Coef * x[t.Var]
			if s := math.Abs(t.Coef * x[t.Var]); s > scale {
				scale = s
			}
		}
		if scale < 1 {
			scale = 1
		}
		viol := 0.0
		switch c.op {
		case LE:
			viol = lhs - c.rhs
		case GE:
			viol = c.rhs - lhs
		case EQ:
			viol = math.Abs(lhs - c.rhs)
		}
		if viol > tol*scale {
			return fmt.Errorf("constraint %d violated by %v", i, viol)
		}
	}
	return nil
}
