// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize  c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// It substitutes for the CPLEX solver the paper uses in its offline
// precomputation (equation (7)). The solver is exact up to floating-point
// tolerances and is intended for small and medium instances; large
// topologies use the iterative solver in internal/core instead.
//
// The implementation is a textbook full-tableau simplex with Dantzig
// pricing and an automatic switch to Bland's rule to guarantee termination
// on degenerate problems. Because the dense tableau is never refactorized,
// Solve verifies the final solution against the original constraints and
// reports an error instead of silently returning a numerically corrupted
// optimum.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Term is one coefficient of a constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is an LP under construction. The zero value is an empty
// minimization problem.
type Problem struct {
	cost  []float64
	names []string
	cons  []constraint
	// MaxIter overrides the default pivot limit when nonzero.
	MaxIter int
	// Obs, when non-nil, receives solver counters under the "lp." prefix:
	// solves, pivots (simplex iterations across both phases), basis
	// repairs (artificials driven out or redundant rows zeroed after
	// phase 1 — the dense tableau's stand-in for a refactorization), and
	// terminal statuses. Nil costs nothing.
	Obs *obs.Registry
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVariable adds a nonnegative variable with the given objective
// coefficient and returns its index.
func (p *Problem) AddVariable(name string, cost float64) int {
	p.cost = append(p.cost, cost)
	p.names = append(p.names, name)
	return len(p.cost) - 1
}

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.cost) }

// SetCost updates the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) { p.cost[v] = cost }

// AddConstraint adds the row terms (op) rhs. Terms may repeat a variable;
// coefficients are summed.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	cp := append([]Term(nil), terms...)
	p.cons = append(p.cons, constraint{cp, op, rhs})
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// Value is the objective value (meaningful only when Status ==
	// Optimal).
	Value float64
	// X holds the variable values.
	X []float64
	// Iterations is the number of simplex pivots performed.
	Iterations int
	// BasisRepairs counts post-phase-1 basis surgery: artificial
	// variables pivoted out of the basis plus redundant rows zeroed. On a
	// dense never-refactorized tableau these repairs are the only basis
	// maintenance performed, so the count is the solver's
	// "refactorization" telemetry.
	BasisRepairs int
}

const (
	tolPivot = 1e-9
	tolZero  = 1e-7
)

// Solve runs the two-phase simplex and returns the solution. It never
// mutates the problem, so a Problem can be re-solved after modification.
func (p *Problem) Solve() (*Solution, error) {
	sol, err := p.solve()
	if reg := p.Obs; reg != nil && sol != nil {
		reg.Counter("lp.solves").Inc()
		reg.Counter("lp.pivots").Add(int64(sol.Iterations))
		reg.Counter("lp.basis_repairs").Add(int64(sol.BasisRepairs))
		reg.Vec("lp.status", 4, func(i int) string { return Status(i).String() }).Add(int(sol.Status), 1)
	}
	return sol, err
}

func (p *Problem) solve() (*Solution, error) {
	n := len(p.cost)
	m := len(p.cons)
	if n == 0 {
		return &Solution{Status: Optimal, X: nil}, nil
	}

	// Column layout: [structural 0..n) | slack/surplus | artificial].
	// Count extra columns.
	nSlack := 0
	for _, c := range p.cons {
		if c.op != EQ {
			nSlack++
		}
	}
	// Build rows with rhs >= 0.
	type row struct {
		coef []float64
		rhs  float64
		op   Op
	}
	rows := make([]row, m)
	for i, c := range p.cons {
		r := row{coef: make([]float64, n), rhs: c.rhs, op: c.op}
		for _, t := range c.terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("lp: constraint %d references variable %d of %d", i, t.Var, n)
			}
			r.coef[t.Var] += t.Coef
		}
		if r.rhs < 0 {
			for j := range r.coef {
				r.coef[j] = -r.coef[j]
			}
			r.rhs = -r.rhs
			switch r.op {
			case LE:
				r.op = GE
			case GE:
				r.op = LE
			}
		}
		rows[i] = r
	}

	// Assign slack and artificial columns. Every GE and EQ row needs an
	// artificial; LE rows use their slack as the initial basis.
	nArt := 0
	for _, r := range rows {
		if r.op != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	for i := range rows {
		t := make([]float64, total+1)
		copy(t, rows[i].coef)
		t[total] = rows[i].rhs
		switch rows[i].op {
		case LE:
			t[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t[slackCol] = -1
			slackCol++
			t[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			t[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		tab[i] = t
	}

	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 50 * (m + total + 10)
	}

	sol := &Solution{X: make([]float64, n)}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for j := n + nSlack; j < total; j++ {
			obj[j] = 1
		}
		// Price out the initial basis (artificials have cost 1).
		for i, b := range basis {
			if b >= n+nSlack {
				for j := 0; j <= total; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		st, iters := simplex(tab, basis, obj, total, maxIter, n+nSlack)
		sol.Iterations += iters
		if st == IterLimit {
			sol.Status = IterLimit
			return sol, errors.New("lp: phase-1 iteration limit")
		}
		// Feasible iff artificial sum is ~0. obj[total] holds -objective.
		if -obj[total] > tolZero {
			sol.Status = Infeasible
			return sol, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i, b := range basis {
			if b < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > tolPivot {
					pivot(tab, basis, nil, i, j, total)
					pivoted = true
					sol.BasisRepairs++
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it so it cannot constrain phase 2.
				for j := 0; j <= total; j++ {
					tab[i][j] = 0
				}
				basis[i] = -1
				sol.BasisRepairs++
			}
		}
	}

	// Phase 2: minimize the real objective. Artificial columns are barred
	// from entering (limit = n+nSlack).
	obj := make([]float64, total+1)
	copy(obj, p.cost)
	for i, b := range basis {
		if b >= 0 && b < len(p.cost) && p.cost[b] != 0 {
			cb := p.cost[b]
			for j := 0; j <= total; j++ {
				obj[j] -= cb * tab[i][j]
			}
		}
	}
	st, iters := simplex(tab, basis, obj, total, maxIter, n+nSlack)
	sol.Iterations += iters
	switch st {
	case Unbounded:
		sol.Status = Unbounded
		return sol, nil
	case IterLimit:
		sol.Status = IterLimit
		return sol, errors.New("lp: phase-2 iteration limit")
	}

	for i, b := range basis {
		if b >= 0 && b < n {
			sol.X[b] = tab[i][total]
		}
	}
	// Guard against numerical corruption: a long degenerate run on a
	// dense tableau (no refactorization) can drift. Verify the solution
	// against the original constraints before declaring optimality.
	if err := p.checkFeasible(sol.X); err != nil {
		sol.Status = IterLimit
		return sol, fmt.Errorf("lp: solution failed verification: %v", err)
	}
	var val float64
	for j, c := range p.cost {
		val += c * sol.X[j]
	}
	sol.Value = val
	sol.Status = Optimal
	return sol, nil
}

// checkFeasible verifies x against the problem's constraints within a
// relative tolerance.
func (p *Problem) checkFeasible(x []float64) error {
	const tol = 1e-5
	for _, v := range x {
		if v < -tol {
			return fmt.Errorf("negative variable %v", v)
		}
	}
	for i, c := range p.cons {
		var lhs, scale float64
		scale = math.Abs(c.rhs)
		for _, t := range c.terms {
			lhs += t.Coef * x[t.Var]
			if s := math.Abs(t.Coef * x[t.Var]); s > scale {
				scale = s
			}
		}
		if scale < 1 {
			scale = 1
		}
		viol := 0.0
		switch c.op {
		case LE:
			viol = lhs - c.rhs
		case GE:
			viol = c.rhs - lhs
		case EQ:
			viol = math.Abs(lhs - c.rhs)
		}
		if viol > tol*scale {
			return fmt.Errorf("constraint %d violated by %v", i, viol)
		}
	}
	return nil
}

// simplex runs primal simplex pivots on the tableau until optimal,
// unbounded, or the iteration limit. obj is the (priced-out) objective
// row; entering columns are restricted to [0, enterLimit). Pricing is
// Dantzig's rule, switching to Bland's rule only while a degeneracy
// streak persists (guaranteeing termination without paying Bland's slow
// convergence on the whole solve). Returns the status and pivot count.
func simplex(tab [][]float64, basis []int, obj []float64, total, maxIter, enterLimit int) (Status, int) {
	m := len(tab)
	iters := 0
	blandAfter := maxIter / 2
	for ; iters < maxIter; iters++ {
		// Choose entering column.
		enter := -1
		if iters < blandAfter {
			best := -tolZero
			for j := 0; j < enterLimit; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			// Bland's rule: first improving column.
			for j := 0; j < enterLimit; j++ {
				if obj[j] < -tolZero {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, iters
		}
		// Ratio test with smallest-basis-index tie-breaking (limits
		// cycling under Dantzig pricing; Bland's rule after blandAfter
		// guarantees termination).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > tolPivot {
				r := tab[i][total] / a
				if r < bestRatio-tolPivot || (r < bestRatio+tolPivot && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		pivot(tab, basis, obj, leave, enter, total)
	}
	return IterLimit, iters
}

// pivot performs a simplex pivot on (row, col), updating the tableau,
// basis, and (when non-nil) the objective row.
func pivot(tab [][]float64, basis []int, obj []float64, row, col, total int) {
	pr := tab[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // avoid drift
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		ri := tab[i]
		for j := 0; j <= total; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	if obj != nil {
		f := obj[col]
		if f != 0 {
			for j := 0; j <= total; j++ {
				obj[j] -= f * pr[j]
			}
			obj[col] = 0
		}
	}
	basis[row] = col
}
