package lp

import (
	"math"
	"strings"
	"testing"
)

func TestMaxIterOverride(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	p.MaxIter = 1
	sol, err := p.Solve()
	if err == nil && sol.Status == Optimal {
		// A single pivot can suffice here; force an even smaller budget by
		// adding constraints.
		q := NewProblem()
		vars := make([]int, 12)
		for i := range vars {
			vars[i] = q.AddVariable("", 1)
		}
		for i := range vars {
			q.AddConstraint([]Term{{vars[i], 1}}, GE, float64(i+1))
		}
		q.MaxIter = 1
		if _, err := q.Solve(); err == nil {
			t.Fatalf("MaxIter=1 solved a 12-pivot problem")
		}
		return
	}
	if err != nil && !strings.Contains(err.Error(), "iteration limit") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestIterationsReported(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -1)
	y := p.AddVariable("y", -1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 2}, {y, 1}}, LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations <= 0 {
		t.Fatalf("Iterations = %d", sol.Iterations)
	}
}

func TestCheckFeasibleUnit(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 10)
	p.AddConstraint([]Term{{x, 1}}, GE, 1)
	p.AddConstraint([]Term{{y, 1}}, EQ, 2)

	if err := p.checkFeasible([]float64{1, 2}); err != nil {
		t.Fatalf("feasible point rejected: %v", err)
	}
	if err := p.checkFeasible([]float64{20, 2}); err == nil {
		t.Fatalf("LE violation accepted")
	}
	if err := p.checkFeasible([]float64{0, 2}); err == nil {
		t.Fatalf("GE violation accepted")
	}
	if err := p.checkFeasible([]float64{1, 3}); err == nil {
		t.Fatalf("EQ violation accepted")
	}
	if err := p.checkFeasible([]float64{-1, 2}); err == nil {
		t.Fatalf("negative variable accepted")
	}
}

func TestLargeScaleRelativeTolerance(t *testing.T) {
	// Feasibility checking must be relative: huge coefficients with tiny
	// relative error pass.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, 1e12}}, LE, 1e12)
	if err := p.checkFeasible([]float64{1 + 1e-9}); err != nil {
		t.Fatalf("relative tolerance too strict: %v", err)
	}
}

func TestDualPairObjectives(t *testing.T) {
	// Weak duality smoke test: primal min c·x (Ax >= b, x >= 0) and its
	// dual max b·y (A^T y <= c, y >= 0) meet at the same value.
	// Primal: min 3x1 + 2x2 s.t. x1+x2 >= 4, x1 >= 1.
	p := NewProblem()
	x1 := p.AddVariable("x1", 3)
	x2 := p.AddVariable("x2", 2)
	p.AddConstraint([]Term{{x1, 1}, {x2, 1}}, GE, 4)
	p.AddConstraint([]Term{{x1, 1}}, GE, 1)
	ps, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Dual: max 4y1 + 1y2 s.t. y1+y2 <= 3, y1 <= 2 → min of negation.
	d := NewProblem()
	y1 := d.AddVariable("y1", -4)
	y2 := d.AddVariable("y2", -1)
	d.AddConstraint([]Term{{y1, 1}, {y2, 1}}, LE, 3)
	d.AddConstraint([]Term{{y1, 1}}, LE, 2)
	ds, err := d.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.Value-(-ds.Value)) > 1e-9 {
		t.Fatalf("duality gap: primal %v, dual %v", ps.Value, -ds.Value)
	}
}
