package lp

import "math"

// luTiny is the pivot magnitude below which a basis matrix is declared
// numerically singular during factorization.
const luTiny = 1e-11

// luFact is a dense LU factorization with partial pivoting of a basis
// matrix B: P·B = L·U, stored packed in a (L below the diagonal, unit
// diagonal implicit; U on and above it) with the row swaps in piv.
type luFact struct {
	m   int
	a   []float64 // m×m row-major
	piv []int     // piv[k] is the row swapped with k at step k
}

func newLU(m int) *luFact {
	return &luFact{m: m, a: make([]float64, m*m), piv: make([]int, m)}
}

// factorize decomposes the basis given by the column indices in basis
// (into sf's sparse columns). It reports false when the basis is
// numerically singular, leaving the factorization unusable.
func (f *luFact) factorize(sf *stdForm, basis []int) bool {
	m := f.m
	a := f.a
	for i := range a {
		a[i] = 0
	}
	for c, col := range basis {
		for _, e := range sf.cols[col] {
			a[e.row*m+c] = e.val
		}
	}
	for k := 0; k < m; k++ {
		// Partial pivoting: largest magnitude in column k at or below the
		// diagonal.
		p, best := k, math.Abs(a[k*m+k])
		for i := k + 1; i < m; i++ {
			if v := math.Abs(a[i*m+k]); v > best {
				p, best = i, v
			}
		}
		f.piv[k] = p
		if best < luTiny {
			return false
		}
		if p != k {
			rk, rp := a[k*m:k*m+m], a[p*m:p*m+m]
			for j := 0; j < m; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1 / a[k*m+k]
		rowk := a[k*m : k*m+m]
		for i := k + 1; i < m; i++ {
			l := a[i*m+k]
			if l == 0 {
				continue
			}
			l *= inv
			rowi := a[i*m : i*m+m]
			rowi[k] = l
			for j := k + 1; j < m; j++ {
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return true
}

// ftran solves B·x = v in place (forward transformation).
func (f *luFact) ftran(v []float64) {
	m := f.m
	a := f.a
	for k := 0; k < m; k++ {
		if p := f.piv[k]; p != k {
			v[k], v[p] = v[p], v[k]
		}
	}
	for k := 0; k < m; k++ {
		vk := v[k]
		if vk == 0 {
			continue
		}
		for i := k + 1; i < m; i++ {
			v[i] -= a[i*m+k] * vk
		}
	}
	for k := m - 1; k >= 0; k-- {
		s := v[k]
		row := a[k*m : k*m+m]
		for j := k + 1; j < m; j++ {
			s -= row[j] * v[j]
		}
		v[k] = s / row[k]
	}
}

// btran solves Bᵀ·y = c in place (backward transformation): with
// P·B = L·U this is Uᵀz = c, Lᵀt = z, y = Pᵀt.
func (f *luFact) btran(v []float64) {
	m := f.m
	a := f.a
	for k := 0; k < m; k++ {
		s := v[k]
		for j := 0; j < k; j++ {
			s -= a[j*m+k] * v[j]
		}
		v[k] = s / a[k*m+k]
	}
	for k := m - 1; k >= 0; k-- {
		s := v[k]
		for j := k + 1; j < m; j++ {
			s -= a[j*m+k] * v[j]
		}
		v[k] = s
	}
	for k := m - 1; k >= 0; k-- {
		if p := f.piv[k]; p != k {
			v[k], v[p] = v[p], v[k]
		}
	}
}

// etaCol is one product-form-of-the-inverse update: after the basis
// column in row r is replaced, B_new⁻¹ = E·B_old⁻¹ where E differs from
// the identity only in column r (stored in v).
type etaCol struct {
	r int
	v []float64
}

// ftran applies E to x in place.
func (e *etaCol) ftran(x []float64) {
	xr := x[e.r]
	if xr == 0 {
		return
	}
	for i, vi := range e.v {
		if i == e.r || vi == 0 {
			continue
		}
		x[i] += vi * xr
	}
	x[e.r] = e.v[e.r] * xr
}

// btran applies Eᵀ to y in place.
func (e *etaCol) btran(y []float64) {
	s := 0.0
	for i, vi := range e.v {
		if vi != 0 {
			s += vi * y[i]
		}
	}
	y[e.r] = s
}
