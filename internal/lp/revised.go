package lp

import (
	"errors"
	"math"
)

// defaultRefactorEvery bounds the product-form eta file: the basis is
// refactorized from scratch after this many pivots, shedding the drift
// the etas accumulate. Recovery restarts tighten the cadence.
const defaultRefactorEvery = 64

// tolDual is the reduced-cost tolerance used to judge dual feasibility
// of a warm-start basis.
const tolDual = 1e-7

var errSingular = errors.New("singular basis during refactorization")

// solver is one revised-simplex run over a stdForm: a basis maintained
// as a dense LU factorization plus a product-form eta file, periodically
// refactorized.
type solver struct {
	sf          *stdForm
	basis       []int // basic column per row
	pos         []int // column -> basic row, or -1
	lu          *luFact
	etas        []etaCol
	xB          []float64 // current basic values (B⁻¹b)
	refactEvery int
	maxIter     int
	feasTol     float64

	pivots, refactors, repairs, recoveries int

	// scratch vectors, length m
	y, w, cB, rho []float64
}

func newSolver(sf *stdForm, maxIter int) *solver {
	m := sf.m
	return &solver{
		sf:          sf,
		basis:       make([]int, m),
		pos:         make([]int, sf.total),
		lu:          newLU(m),
		xB:          make([]float64, m),
		refactEvery: defaultRefactorEvery,
		maxIter:     maxIter,
		feasTol:     tolZero * (1 + sf.bNorm),
		y:           make([]float64, m),
		w:           make([]float64, m),
		cB:          make([]float64, m),
		rho:         make([]float64, m),
	}
}

func (s *solver) setBasis(cols []int) {
	copy(s.basis, cols)
	for j := range s.pos {
		s.pos[j] = -1
	}
	for i, b := range s.basis {
		s.pos[b] = i
	}
}

// setBasisChecked installs a caller-provided (warm) basis, rejecting
// out-of-range or duplicate columns.
func (s *solver) setBasisChecked(cols []int) bool {
	if len(cols) != s.sf.m {
		return false
	}
	for j := range s.pos {
		s.pos[j] = -1
	}
	for i, c := range cols {
		if c < 0 || c >= s.sf.total || s.pos[c] >= 0 {
			for j := range s.pos {
				s.pos[j] = -1
			}
			return false
		}
		s.basis[i] = c
		s.pos[c] = i
	}
	return true
}

// ftranVec solves B·x = v through the factorization and the eta file.
func (s *solver) ftranVec(v []float64) {
	s.lu.ftran(v)
	for i := range s.etas {
		s.etas[i].ftran(v)
	}
}

// btranVec solves Bᵀ·y = c: eta transposes newest-first, then the LU.
func (s *solver) btranVec(v []float64) {
	for i := len(s.etas) - 1; i >= 0; i-- {
		s.etas[i].btran(v)
	}
	s.lu.btran(v)
}

func (s *solver) computeXB() {
	copy(s.xB, s.sf.b)
	s.ftranVec(s.xB)
}

// refactor rebuilds the LU from the current basis, discards the eta
// file, and recomputes the basic values from scratch.
func (s *solver) refactor() error {
	if !s.lu.factorize(s.sf, s.basis) {
		return errSingular
	}
	s.refactors++
	s.etas = s.etas[:0]
	s.computeXB()
	return nil
}

// colFtran writes B⁻¹·a_j into w.
func (s *solver) colFtran(j int, w []float64) {
	for i := range w {
		w[i] = 0
	}
	for _, e := range s.sf.cols[j] {
		w[e.row] = e.val
	}
	s.ftranVec(w)
}

// pivot swaps column enter into the basis at row leave, appending an eta
// update and refactorizing when the eta file reaches its cap. w must be
// B⁻¹·a_enter.
func (s *solver) pivot(enter, leave int, w []float64) error {
	m := s.sf.m
	inv := 1 / w[leave]
	v := make([]float64, m)
	for i := 0; i < m; i++ {
		if i == leave {
			v[i] = inv
		} else {
			v[i] = -w[i] * inv
		}
	}
	s.etas = append(s.etas, etaCol{r: leave, v: v})
	t := s.xB[leave] * inv
	for i := 0; i < m; i++ {
		if i != leave && w[i] != 0 {
			s.xB[i] -= t * w[i]
		}
	}
	s.xB[leave] = t
	old := s.basis[leave]
	s.pos[old] = -1
	s.basis[leave] = enter
	s.pos[enter] = leave
	s.pivots++
	if len(s.etas) >= s.refactEvery {
		return s.refactor()
	}
	return nil
}

// primal runs primal simplex on the given cost vector until optimal,
// unbounded, or the iteration budget runs out. Entering columns are
// restricted to [0, enterLimit) (barring artificials). Pricing is
// Dantzig's rule with a switch to Bland's rule after maxIter/2 pivots to
// guarantee termination on degenerate problems; ratio-test ties go to
// the smallest basis index.
func (s *solver) primal(cost []float64, enterLimit int) (Status, error) {
	m := s.sf.m
	blandAfter := s.maxIter / 2
	for it := 0; it < s.maxIter; it++ {
		for i, b := range s.basis {
			s.cB[i] = cost[b]
		}
		copy(s.y, s.cB)
		s.btranVec(s.y)
		enter := -1
		if it < blandAfter {
			best := -tolZero
			for j := 0; j < enterLimit; j++ {
				if s.pos[j] >= 0 {
					continue
				}
				if d := cost[j] - colDot(s.sf, s.y, j); d < best {
					best, enter = d, j
				}
			}
		} else {
			for j := 0; j < enterLimit; j++ {
				if s.pos[j] >= 0 {
					continue
				}
				if cost[j]-colDot(s.sf, s.y, j) < -tolZero {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		s.colFtran(enter, s.w)
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := s.w[i]
			// A basic artificial sits at ~0 in a dependent row, where the
			// entering column's true component is 0: only accept a pivot
			// there when it is decisively nonzero, else tolerance-level
			// noise becomes a 1/w blowup in the eta.
			thr := tolPivot
			if s.basis[i] >= s.sf.artStart {
				thr = 1e-6
			}
			if a > thr {
				x := s.xB[i]
				if x < 0 {
					x = 0 // tolerance-level infeasibility must not flip the ratio sign
				}
				r := x / a
				if r < bestRatio-tolPivot || (r < bestRatio+tolPivot && (leave < 0 || s.basis[i] < s.basis[leave])) {
					bestRatio, leave = r, i
				}
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if err := s.pivot(enter, leave, s.w); err != nil {
			return IterLimit, err
		}
	}
	return IterLimit, nil
}

// dualSimplex restores primal feasibility of a dual-feasible basis after
// an rhs change (the warm-start workhorse): it pivots on negative basic
// values, keeping reduced costs nonnegative. Infeasible means the dual
// is unbounded, i.e. the primal has no feasible point.
func (s *solver) dualSimplex(cost []float64, enterLimit int) (Status, error) {
	m := s.sf.m
	blandAfter := s.maxIter / 2
	for it := 0; it < s.maxIter; it++ {
		leave := -1
		if it < blandAfter {
			worst := -s.feasTol
			for i := 0; i < m; i++ {
				if s.xB[i] < worst {
					worst, leave = s.xB[i], i
				}
			}
		} else {
			// Bland-style anti-cycling: smallest basis index among the
			// infeasible rows.
			for i := 0; i < m; i++ {
				if s.xB[i] < -s.feasTol && (leave < 0 || s.basis[i] < s.basis[leave]) {
					leave = i
				}
			}
		}
		if leave < 0 {
			return Optimal, nil
		}
		for i := range s.rho {
			s.rho[i] = 0
		}
		s.rho[leave] = 1
		s.btranVec(s.rho)
		for i, b := range s.basis {
			s.cB[i] = cost[b]
		}
		copy(s.y, s.cB)
		s.btranVec(s.y)
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < enterLimit; j++ {
			if s.pos[j] >= 0 {
				continue
			}
			alpha := colDot(s.sf, s.rho, j)
			if alpha >= -tolPivot {
				continue
			}
			d := cost[j] - colDot(s.sf, s.y, j)
			if d < 0 {
				d = 0 // dual feasibility holds up to tolerance
			}
			if r := d / (-alpha); r < bestRatio-tolPivot {
				bestRatio, enter = r, j
			}
		}
		if enter < 0 {
			return Infeasible, nil
		}
		s.colFtran(enter, s.w)
		if math.Abs(s.w[leave]) < tolPivot {
			return IterLimit, nil // numerically unusable pivot; caller falls back
		}
		if err := s.pivot(enter, leave, s.w); err != nil {
			return IterLimit, err
		}
	}
	return IterLimit, nil
}

// dualFeasible reports whether every nonbasic reduced cost is
// nonnegative (within tolerance) for the given cost vector.
func (s *solver) dualFeasible(cost []float64) bool {
	for i, b := range s.basis {
		s.cB[i] = cost[b]
	}
	copy(s.y, s.cB)
	s.btranVec(s.y)
	for j := 0; j < s.sf.artStart; j++ {
		if s.pos[j] >= 0 {
			continue
		}
		if cost[j]-colDot(s.sf, s.y, j) < -tolDual {
			return false
		}
	}
	return true
}

// artificialInfeasibility sums the magnitudes of basic artificials — the
// phase-1 residual.
func (s *solver) artificialInfeasibility() float64 {
	sum := 0.0
	for i, b := range s.basis {
		if b >= s.sf.artStart {
			sum += math.Abs(s.xB[i])
		}
	}
	return sum
}

// driveOutArtificials pivots basic artificials left over from phase 1
// out of the basis where a structural or slack column can replace them;
// artificials on linearly dependent rows stay basic at zero (the
// entering columns' components there are zero, so they never move).
func (s *solver) driveOutArtificials() error {
	for i := 0; i < s.sf.m; i++ {
		if s.basis[i] < s.sf.artStart {
			continue
		}
		for k := range s.rho {
			s.rho[k] = 0
		}
		s.rho[i] = 1
		s.btranVec(s.rho)
		enter := -1
		for j := 0; j < s.sf.artStart; j++ {
			if s.pos[j] >= 0 {
				continue
			}
			if math.Abs(colDot(s.sf, s.rho, j)) > 1e-7 {
				enter = j
				break
			}
		}
		s.repairs++
		if enter < 0 {
			continue
		}
		s.colFtran(enter, s.w)
		if math.Abs(s.w[i]) < tolPivot {
			continue
		}
		if err := s.pivot(enter, i, s.w); err != nil {
			return err
		}
	}
	return nil
}

// cold runs the two-phase method from the all-slack/artificial basis.
// The returned phase labels iteration-limit errors.
func (s *solver) cold() (Status, int, error) {
	s.setBasis(s.sf.initBasis)
	if err := s.refactor(); err != nil {
		return IterLimit, 1, err
	}
	if s.sf.nArt > 0 {
		st, err := s.primal(s.sf.phase1Cost(), s.sf.artStart)
		if err != nil {
			return IterLimit, 1, err
		}
		if st != Optimal {
			// Unbounded is impossible for the phase-1 objective (bounded
			// below by 0); fold it into the iteration-limit outcome.
			return IterLimit, 1, nil
		}
		if s.artificialInfeasibility() > s.feasTol {
			return Infeasible, 1, nil
		}
		if err := s.driveOutArtificials(); err != nil {
			return IterLimit, 1, err
		}
	}
	st, err := s.primal(s.sf.cost, s.sf.artStart)
	return st, 2, err
}

// warm attempts to solve from a caller-provided basis. handled=false
// means the basis was unusable (shape mismatch, singular, infeasible
// artificials, or a dead-ended dual repair) and the caller must fall
// back to a cold solve; any pivots spent stay counted.
func (s *solver) warm(cols []int) (handled bool, st Status) {
	if !s.setBasisChecked(cols) {
		return false, IterLimit
	}
	if !s.lu.factorize(s.sf, s.basis) {
		return false, IterLimit
	}
	s.refactors++
	s.etas = s.etas[:0]
	s.computeXB()
	// A basic artificial off zero encodes a violated row that the
	// phase-2-only repairs below cannot fix.
	for i, b := range s.basis {
		if b >= s.sf.artStart && math.Abs(s.xB[i]) > s.feasTol {
			return false, IterLimit
		}
	}
	minX := 0.0
	for _, v := range s.xB {
		if v < minX {
			minX = v
		}
	}
	if minX >= -s.feasTol {
		st, err := s.primal(s.sf.cost, s.sf.artStart)
		if err != nil {
			return false, IterLimit
		}
		return true, st
	}
	// Primal infeasible after an rhs change: if the basis is still dual
	// feasible (it is when only rhs entries moved), the dual simplex
	// walks back to feasibility in few pivots. Any ambiguity — dual
	// infeasibility included — defers to the cold two-phase method
	// rather than declaring the problem infeasible from a warm path.
	if !s.dualFeasible(s.sf.cost) {
		return false, IterLimit
	}
	if st, err := s.dualSimplex(s.sf.cost, s.sf.artStart); err != nil || st != Optimal {
		return false, IterLimit
	}
	st2, err := s.primal(s.sf.cost, s.sf.artStart)
	if err != nil {
		return false, IterLimit
	}
	return true, st2
}

// reoptimize resumes optimization of the current (just refactorized)
// basis, repairing primal infeasibility through the dual simplex first.
func (s *solver) reoptimize() bool {
	minX := 0.0
	for _, v := range s.xB {
		if v < minX {
			minX = v
		}
	}
	if minX < -s.feasTol {
		if !s.dualFeasible(s.sf.cost) {
			return false
		}
		if st, err := s.dualSimplex(s.sf.cost, s.sf.artStart); err != nil || st != Optimal {
			return false
		}
	}
	st, err := s.primal(s.sf.cost, s.sf.artStart)
	return err == nil && st == Optimal
}

// recover reacts to a failed post-solve verification: first refactorize
// the current basis in place (an exact LU and fresh basic values shed
// the drift) and re-optimize; on the next attempt restart cold with a
// tighter refactorization cadence. Reports whether a new claimed-optimal
// point is available.
func (s *solver) recover(attempt int) bool {
	s.recoveries++
	if attempt == 0 && s.lu.factorize(s.sf, s.basis) {
		s.refactors++
		s.etas = s.etas[:0]
		s.computeXB()
		if s.reoptimize() {
			return true
		}
	}
	s.refactEvery /= 4
	if s.refactEvery < 8 {
		s.refactEvery = 8
	}
	st, _, err := s.cold()
	return err == nil && st == Optimal
}

// extract writes the structural solution in original (unscaled) units.
func (s *solver) extract(x []float64) {
	for j := range x {
		x[j] = 0
	}
	for i, b := range s.basis {
		if b < s.sf.n {
			x[b] = s.xB[i] * s.sf.colScale[b]
		}
	}
}

// fill copies the run's telemetry into a Solution.
func (s *solver) fill(sol *Solution) {
	sol.Iterations = s.pivots
	sol.BasisRepairs = s.repairs
	sol.Refactorizations = s.refactors
	sol.Recoveries = s.recoveries
}
