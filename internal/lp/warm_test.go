package lp

import (
	"errors"
	"math"
	"strings"
	"testing"
)

var errInjected = errors.New("injected verification failure")

// transportProblem builds a small min-cost transport LP whose rhs (the
// supply) is a parameter, so warm re-solves after rhs-only changes can
// be exercised.
func transportProblem(supply float64) *Problem {
	p := NewProblem()
	ab := p.AddVariable("ab", 1)
	ac := p.AddVariable("ac", 2)
	bd := p.AddVariable("bd", 1)
	cd := p.AddVariable("cd", 1)
	p.AddConstraint([]Term{{ab, 1}, {ac, 1}}, EQ, supply)
	p.AddConstraint([]Term{{ab, 1}, {bd, -1}}, EQ, 0)
	p.AddConstraint([]Term{{ac, 1}, {cd, -1}}, EQ, 0)
	p.AddConstraint([]Term{{ab, 1}}, LE, 0.75) // cheap arc capacity
	return p
}

func TestSolveFromSameProblemIsPivotFree(t *testing.T) {
	p := transportProblem(1)
	cold, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Basis == nil {
		t.Fatalf("optimal solve returned nil basis")
	}
	warm, err := p.SolveFrom(cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatalf("warm solve fell back cold")
	}
	if warm.Iterations != 0 {
		t.Fatalf("re-solve from the optimal basis took %d pivots", warm.Iterations)
	}
	if warm.Value != cold.Value {
		t.Fatalf("warm value %v != cold value %v", warm.Value, cold.Value)
	}
}

func TestSolveFromRHSChangeMatchesColdWithFewerPivots(t *testing.T) {
	base, err := transportProblem(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, supply := range []float64{0.5, 0.9, 1.25, 1.5} {
		q := transportProblem(supply)
		cold, err := q.Solve()
		if err != nil {
			t.Fatal(err)
		}
		warm, err := q.SolveFrom(base.Basis)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.WarmStarted {
			t.Fatalf("supply %v: warm solve fell back cold", supply)
		}
		if math.Abs(warm.Value-cold.Value) > 1e-9*(1+math.Abs(cold.Value)) {
			t.Fatalf("supply %v: warm value %v != cold value %v", supply, warm.Value, cold.Value)
		}
		if warm.Iterations > cold.Iterations {
			t.Fatalf("supply %v: warm took %d pivots, cold %d", supply, warm.Iterations, cold.Iterations)
		}
		if err := q.checkFeasible(warm.X); err != nil {
			t.Fatalf("supply %v: warm solution infeasible: %v", supply, err)
		}
	}
}

func TestSolveFromMismatchedBasisFallsBackCold(t *testing.T) {
	other, err := transportProblem(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	// A problem with a different shape must ignore the basis entirely.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 3)
	sol, err := p.SolveFrom(other.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.WarmStarted {
		t.Fatalf("mismatched basis accepted as warm start")
	}
	if sol.Status != Optimal || math.Abs(sol.Value-3) > 1e-9 {
		t.Fatalf("fallback cold solve wrong: %v %v", sol.Status, sol.Value)
	}
}

func TestSolveFromNeverDeclaresInfeasibleWarm(t *testing.T) {
	// Push the rhs far from the warm basis: the dual simplex (or the cold
	// fallback) must still land on the true optimum, never a spurious
	// Infeasible.
	base, err := transportProblem(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	q := transportProblem(40) // cheap arc saturates; everything else via ac
	sol, err := q.SolveFrom(base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	want := 0.75*2 + 39.25*3 // ab+bd for 0.75 units, ac+cd for the rest
	if math.Abs(sol.Value-want) > 1e-6 {
		t.Fatalf("value %v, want %v", sol.Value, want)
	}
}

func TestRecoveryRepairsCorruptedBasics(t *testing.T) {
	// Whitebox: emulate eta-file drift by corrupting the basic values
	// after a successful solve, then ask the solver to recover. This is
	// the path Solve takes instead of erroring when verification fails.
	p := transportProblem(1)
	sf, err := buildStdForm(p)
	if err != nil {
		t.Fatal(err)
	}
	s := newSolver(sf, 10000)
	st, _, err := s.cold()
	if st != Optimal || err != nil {
		t.Fatalf("cold solve: %v %v", st, err)
	}
	x := make([]float64, sf.n)
	for i := range s.xB {
		s.xB[i] += 0.4 // drift far past every tolerance
	}
	s.extract(x)
	if p.checkFeasible(x) == nil {
		t.Fatalf("corrupted point passed verification")
	}
	if !s.recover(0) {
		t.Fatalf("recover failed")
	}
	s.extract(x)
	if err := p.checkFeasible(x); err != nil {
		t.Fatalf("recovered point infeasible: %v", err)
	}
	if s.recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", s.recoveries)
	}
}

func TestSolveRecoversFromTransientVerificationFailure(t *testing.T) {
	// Force one verification failure through the test hook: Solve must
	// recover and return Optimal instead of the old hard error.
	failures := 1
	testVerify = func(p *Problem, x []float64) error {
		if failures > 0 {
			failures--
			return errInjected
		}
		return p.checkFeasible(x)
	}
	defer func() { testVerify = nil }()
	sol, err := transportProblem(1).Solve()
	if err != nil {
		t.Fatalf("transient verification failure not recovered: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", sol.Recoveries)
	}
}

func TestVerificationErrorOnlyAfterRecoveryAttempts(t *testing.T) {
	// With verification always failing, the terminal error must report
	// that recovery was attempted first — the hard-failure path is
	// unreachable without it.
	testVerify = func(*Problem, []float64) error { return errInjected }
	defer func() { testVerify = nil }()
	sol, err := transportProblem(1).Solve()
	if err == nil {
		t.Fatalf("persistent verification failure returned no error")
	}
	if !strings.Contains(err.Error(), "recovery attempts") {
		t.Fatalf("error %q does not mention recovery attempts", err)
	}
	if sol.Recoveries != maxRecoveries {
		t.Fatalf("Recoveries = %d, want %d", sol.Recoveries, maxRecoveries)
	}
}

func TestBadlyScaledProblemSolves(t *testing.T) {
	// Gbps capacities next to unit demand fractions: min u subject to
	// f1+f2 = 1, 5e8·f1 <= 1e9·u, 5e8·f2 <= 4e9·u. Optimum balances the
	// two links: f1 = 0.2, u = 0.1. The old absolute tolerances were not
	// scale-aware; equilibration plus the relative checks must handle
	// this without drama.
	p := NewProblem()
	u := p.AddVariable("u", 1)
	f1 := p.AddVariable("f1", 0)
	f2 := p.AddVariable("f2", 0)
	p.AddConstraint([]Term{{f1, 1}, {f2, 1}}, EQ, 1)
	p.AddConstraint([]Term{{f1, 5e8}, {u, -1e9}}, LE, 0)
	p.AddConstraint([]Term{{f2, 5e8}, {u, -4e9}}, LE, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Value-0.1) > 1e-9 {
		t.Fatalf("status %v value %v, want optimal 0.1", sol.Status, sol.Value)
	}
}

func TestCheckFeasibleScaleAwareNegativity(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 2e9)
	// -1 absolute is far under the old -1e-5 cutoff but is tolerance-level
	// relative to a 1e9-scale solution; the scale-aware check accepts it.
	if err := p.checkFeasible([]float64{-1, 1e9}); err != nil {
		t.Fatalf("scale-aware negativity rejected tolerance-level value: %v", err)
	}
	// At unit scale the same -1 is a gross violation.
	if err := p.checkFeasible([]float64{-1, 1}); err == nil {
		t.Fatalf("unit-scale negative accepted")
	}
}

func TestSolveFromIsDeterministic(t *testing.T) {
	base, err := transportProblem(1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	q := transportProblem(1.5)
	a, err := q.SolveFrom(base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.SolveFrom(base.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Iterations != b.Iterations {
		t.Fatalf("warm re-solve not deterministic: (%v,%d) vs (%v,%d)", a.Value, a.Iterations, b.Value, b.Iterations)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Fatalf("X[%d] differs: %v vs %v", j, a.X[j], b.X[j])
		}
	}
}
