package lp

import (
	"fmt"
	"math"
	"sort"
)

// entry is one nonzero of a sparse constraint column.
type entry struct {
	row int
	val float64
}

// stdForm is the equilibrated standard form of a Problem:
//
//	minimize cost·x  subject to  A·x = b,  x >= 0,  b >= 0
//
// with columns laid out [structural | slack/surplus | artificial]. Rows
// and structural columns are scaled by powers of two (lossless in binary
// floating point) so pivot and feasibility tolerances are scale-free; the
// objective value is invariant because cost is scaled with the columns.
type stdForm struct {
	m, n     int // constraint rows, structural columns
	nSlack   int
	nArt     int
	total    int // n + nSlack + nArt
	artStart int // first artificial column (= n + nSlack)
	cols     [][]entry
	b        []float64
	cost     []float64 // phase-2 cost over all columns, column-scaled
	colScale []float64 // structural unscaling: x_orig[j] = colScale[j]·x[j]
	// initBasis is the cold-start basis: the LE slack or the artificial
	// of each row (an identity matrix, trivially factorizable).
	initBasis []int
	bNorm     float64 // max |b|, anchoring relative feasibility tolerances
	p1cost    []float64
}

// phase1Cost returns the phase-1 objective (1 on artificials, 0
// elsewhere), built lazily.
func (sf *stdForm) phase1Cost() []float64 {
	if sf.p1cost == nil {
		sf.p1cost = make([]float64, sf.total)
		for j := sf.artStart; j < sf.total; j++ {
			sf.p1cost[j] = 1
		}
	}
	return sf.p1cost
}

// pow2Inv returns the power of two closest to 1/v (1 for v <= 0 or
// non-finite), so scaled magnitudes land in [1, 2).
func pow2Inv(v float64) float64 {
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 1
	}
	return math.Ldexp(1, -math.Ilogb(v))
}

// buildStdForm converts p into equilibrated standard form. Duplicate
// terms are summed, rows are normalized to rhs >= 0 (flipping LE/GE),
// and every GE/EQ row receives an artificial variable.
func buildStdForm(p *Problem) (*stdForm, error) {
	n := len(p.cost)
	m := len(p.cons)

	type rowData struct {
		idx []int
		val []float64
		op  Op
		rhs float64
	}
	rows := make([]rowData, m)
	scratch := make([]float64, n)
	var touched []int
	for i, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("lp: constraint %d references variable %d of %d", i, t.Var, n)
			}
			if scratch[t.Var] == 0 {
				touched = append(touched, t.Var)
			}
			scratch[t.Var] += t.Coef
		}
		sort.Ints(touched)
		r := rowData{op: c.op, rhs: c.rhs}
		for _, j := range touched {
			if v := scratch[j]; v != 0 {
				r.idx = append(r.idx, j)
				r.val = append(r.val, v)
			}
			scratch[j] = 0
		}
		if r.rhs < 0 {
			for k := range r.val {
				r.val[k] = -r.val[k]
			}
			r.rhs = -r.rhs
			switch r.op {
			case LE:
				r.op = GE
			case GE:
				r.op = LE
			}
		}
		rows[i] = r
	}

	// Powers-of-two row/column equilibration over the structural block.
	// Slack and artificial columns are appended after scaling so they
	// keep exact ±1 entries.
	rowScale := make([]float64, m)
	for i := range rows {
		maxA := 0.0
		for _, v := range rows[i].val {
			if a := math.Abs(v); a > maxA {
				maxA = a
			}
		}
		rowScale[i] = pow2Inv(maxA)
	}
	colMax := make([]float64, n)
	for i := range rows {
		for k, j := range rows[i].idx {
			if a := math.Abs(rows[i].val[k]) * rowScale[i]; a > colMax[j] {
				colMax[j] = a
			}
		}
	}
	colScale := make([]float64, n)
	for j := range colScale {
		colScale[j] = pow2Inv(colMax[j])
	}

	nSlack, nArt := 0, 0
	for i := range rows {
		if rows[i].op != EQ {
			nSlack++
		}
		if rows[i].op != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	sf := &stdForm{
		m: m, n: n, nSlack: nSlack, nArt: nArt, total: total,
		artStart:  n + nSlack,
		cols:      make([][]entry, total),
		b:         make([]float64, m),
		cost:      make([]float64, total),
		colScale:  colScale,
		initBasis: make([]int, m),
	}
	for i := range rows {
		for k, j := range rows[i].idx {
			v := rows[i].val[k] * rowScale[i] * colScale[j]
			sf.cols[j] = append(sf.cols[j], entry{i, v})
		}
	}
	slackCol, artCol := n, n+nSlack
	for i := range rows {
		sf.b[i] = rows[i].rhs * rowScale[i]
		if sf.b[i] > sf.bNorm {
			sf.bNorm = sf.b[i]
		}
		switch rows[i].op {
		case LE:
			sf.cols[slackCol] = []entry{{i, 1}}
			sf.initBasis[i] = slackCol
			slackCol++
		case GE:
			sf.cols[slackCol] = []entry{{i, -1}}
			slackCol++
			sf.cols[artCol] = []entry{{i, 1}}
			sf.initBasis[i] = artCol
			artCol++
		case EQ:
			sf.cols[artCol] = []entry{{i, 1}}
			sf.initBasis[i] = artCol
			artCol++
		}
	}
	for j := 0; j < n; j++ {
		sf.cost[j] = p.cost[j] * colScale[j]
	}
	return sf, nil
}

// colDot returns y·a_j over column j's nonzeros.
func colDot(sf *stdForm, y []float64, j int) float64 {
	s := 0.0
	for _, e := range sf.cols[j] {
		s += y[e.row] * e.val
	}
	return s
}
