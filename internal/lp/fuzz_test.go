package lp

import (
	"math"
	"testing"
)

// byteCoef maps one fuzz byte into a coefficient in [lo, hi].
func byteCoef(b byte, lo, hi float64) float64 {
	return lo + (hi-lo)*float64(b)/255
}

// FuzzLPDifferential cross-checks the revised simplex against exhaustive
// vertex enumeration on fuzzer-shaped 2-variable LPs with three <= rows
// (all-positive constraint coefficients, so the polytope is bounded and
// contains the origin: the LP must come back Optimal and match the best
// vertex). The seeds replay the golden cases from lp_test.go's random
// differential test plus warm-start re-solves of each instance.
func FuzzLPDifferential(f *testing.F) {
	f.Add([]byte{128, 128, 64, 64, 200, 32, 96, 150, 255, 1, 80, 90, 10})
	f.Add([]byte{0, 255, 255, 0, 1, 1, 254, 254, 128, 128, 128, 128, 128})
	f.Add([]byte{90, 90, 90, 90, 90, 90, 90, 90, 90, 90, 90, 90, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 11 {
			return
		}
		c := []float64{byteCoef(data[0], -2, 2), byteCoef(data[1], -2, 2)}
		var rowsA [3][2]float64
		var rowsB [3]float64
		for i := 0; i < 3; i++ {
			rowsA[i] = [2]float64{byteCoef(data[2+3*i], 0.1, 2.1), byteCoef(data[3+3*i], 0.1, 2.1)}
			rowsB[i] = byteCoef(data[4+3*i], 1, 6)
		}
		p := NewProblem()
		x := p.AddVariable("x", c[0])
		y := p.AddVariable("y", c[1])
		for i := 0; i < 3; i++ {
			p.AddConstraint([]Term{{x, rowsA[i][0]}, {y, rowsA[i][1]}}, LE, rowsB[i])
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		if sol.Status != Optimal {
			t.Fatalf("status %v on a bounded feasible LP", sol.Status)
		}

		// Brute force over vertices: the origin, axis intercepts, and
		// pairwise constraint intersections, keeping feasible ones.
		best := math.Inf(1)
		check := func(vx, vy float64) {
			if vx < -1e-9 || vy < -1e-9 {
				return
			}
			for i := 0; i < 3; i++ {
				if rowsA[i][0]*vx+rowsA[i][1]*vy > rowsB[i]+1e-7 {
					return
				}
			}
			if v := c[0]*vx + c[1]*vy; v < best {
				best = v
			}
		}
		check(0, 0)
		for i := 0; i < 3; i++ {
			check(rowsB[i]/rowsA[i][0], 0)
			check(0, rowsB[i]/rowsA[i][1])
			for j := i + 1; j < 3; j++ {
				det := rowsA[i][0]*rowsA[j][1] - rowsA[i][1]*rowsA[j][0]
				if math.Abs(det) < 1e-12 {
					continue
				}
				check((rowsB[i]*rowsA[j][1]-rowsA[i][1]*rowsB[j])/det,
					(rowsA[i][0]*rowsB[j]-rowsB[i]*rowsA[j][0])/det)
			}
		}
		if math.Abs(sol.Value-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("simplex %v, brute force %v", sol.Value, best)
		}

		// Warm re-solve of the same instance must be pivot-free and agree.
		warm, err := p.SolveFrom(sol.Basis)
		if err != nil {
			t.Fatalf("warm re-solve: %v", err)
		}
		if !warm.WarmStarted || warm.Iterations != 0 {
			t.Fatalf("warm re-solve: started=%v pivots=%d", warm.WarmStarted, warm.Iterations)
		}
		if math.Abs(warm.Value-sol.Value) > 1e-9*(1+math.Abs(sol.Value)) {
			t.Fatalf("warm value %v != cold %v", warm.Value, sol.Value)
		}

		// Perturbed-rhs warm solve must match its own cold solve.
		q := NewProblem()
		qx := q.AddVariable("x", c[0])
		qy := q.AddVariable("y", c[1])
		bump := byteCoef(data[len(data)-1], 0.5, 1.5)
		for i := 0; i < 3; i++ {
			q.AddConstraint([]Term{{qx, rowsA[i][0]}, {qy, rowsA[i][1]}}, LE, rowsB[i]*bump)
		}
		wq, err := q.SolveFrom(sol.Basis)
		if err != nil {
			t.Fatalf("warm perturbed solve: %v", err)
		}
		cq, err := q.Solve()
		if err != nil {
			t.Fatalf("cold perturbed solve: %v", err)
		}
		if wq.Status != cq.Status {
			t.Fatalf("perturbed status: warm %v cold %v", wq.Status, cq.Status)
		}
		if cq.Status == Optimal && math.Abs(wq.Value-cq.Value) > 1e-6*(1+math.Abs(cq.Value)) {
			t.Fatalf("perturbed value: warm %v cold %v", wq.Value, cq.Value)
		}
	})
}
