// Package exp contains one driver per table and figure of the paper's
// evaluation (§5). Each driver builds its workload, runs the schemes, and
// returns a result that can print the same rows/series the paper reports.
//
// Scale note: drivers accept an Options controlling solver effort and
// scenario counts so the benchmark suite finishes in minutes; the cmd/r3sim
// CLI can run everything at full scale. Reproduction targets are shapes
// (who wins, by what factor), not absolute numbers — see EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/protect"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/traffic"
)

// Options tunes experiment scale.
type Options struct {
	// Effort is the offline precompute effort (core.Config.Iterations);
	// default 150.
	Effort int
	// OptIter is the per-scenario optimal solver effort; default 80.
	OptIter int
	// MaxScenarios caps multi-failure scenario counts; default 1100 (the
	// paper's sample size).
	MaxScenarios int
	// WeightOptRounds bounds the OSPF weight optimizer; default 40.
	WeightOptRounds int
	// Days bounds week-scale experiments (Figures 4 and 9); default 7.
	Days int
	// Envelope is the normal-case penalty envelope β applied to every R3
	// plan, as the paper's evaluation does (§3.5, Figure 9); default 1.1.
	// Set negative to disable.
	Envelope float64
	// Seed drives sampling.
	Seed int64
	// Workers bounds precompute and evaluation concurrency (default
	// GOMAXPROCS; 1 forces serial). Plans are bit-identical for every
	// worker count, so Workers is purely a speed knob.
	Workers int
	// Obs, when non-nil, threads the observability registry through the
	// drivers: FW/LP precompute counters and traces, and the evaluation
	// engine's per-scenario metrics all land in it. Purely passive —
	// results are identical with or without it.
	Obs *obs.Registry
	// ExactOpt computes the per-scenario optimal baselines (the engine's
	// ratio denominator and the OSPF+opt scheme) with the exact LP solver
	// warm-started across scenarios, instead of Frank–Wolfe with OptIter
	// iterations. Default false keeps the published experiment outputs
	// unchanged; intended for small topologies.
	ExactOpt bool
	// Shards sets the evaluation engine's scenario shard count (see
	// eval.Engine.Shards); 0 picks automatically. Results are
	// byte-identical at every shard count, so this is purely a
	// parallelism knob.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Effort == 0 {
		o.Effort = 150
	}
	if o.OptIter == 0 {
		o.OptIter = 80
	}
	if o.MaxScenarios == 0 {
		o.MaxScenarios = 1100
	}
	if o.WeightOptRounds == 0 {
		o.WeightOptRounds = 40
	}
	if o.Days == 0 {
		o.Days = 7
	}
	if o.Envelope == 0 {
		o.Envelope = 1.1
	}
	return o
}

// Quick returns reduced-scale options for tests and smoke runs.
func Quick() Options {
	return Options{Effort: 60, OptIter: 40, MaxScenarios: 60, WeightOptRounds: 8, Days: 2, Seed: 1}
}

// planCache memoizes R3 precomputations shared across experiments in one
// process (e.g. Table 2 and Table 3 reuse plans). The key deliberately
// excludes Options.Workers: the solver guarantees bit-identical plans for
// every worker count, so a plan computed at any parallelism serves all.
var planCache sync.Map

type planKey struct {
	topo     string
	f        int
	effort   int
	envelope float64
	demand   int64 // traffic-matrix fingerprint
}

// r3Plan precomputes (or fetches) the joint MPLS-ff+R3 plan for g and d
// with the standard penalty envelope.
func r3Plan(g *graph.Graph, d *traffic.Matrix, f int, o Options) *core.Plan {
	key := planKey{g.Name, f, o.Effort, o.Envelope, int64(d.Total() * 1e6)}
	if v, ok := planCache.Load(key); ok {
		return v.(*core.Plan)
	}
	plan, err := core.Precompute(g, d, core.Config{
		Model:           core.ArbitraryFailures{F: f},
		Iterations:      o.Effort,
		PenaltyEnvelope: envelopeOf(o),
		Workers:         o.Workers,
		Obs:             o.Obs,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: precompute %s: %v", g.Name, err))
	}
	planCache.Store(key, plan)
	return plan
}

// envelopeOf maps the option to a core.Config value (0 disables).
func envelopeOf(o Options) float64 {
	if o.Envelope < 0 {
		return 0
	}
	return o.Envelope
}

// ospfR3Plan precomputes OSPF+R3: the base routing is fixed to ECMP on
// the graph's current weights and only the protection routing is
// optimized (the envelope is moot: the base is not a variable).
func ospfR3Plan(g *graph.Graph, d *traffic.Matrix, f int, o Options) *core.Plan {
	return ospfR3PlanModel(g, d, core.ArbitraryFailures{F: f}, o)
}

// odComms builds OD commodities for a matrix.
func odComms(g *graph.Graph, d *traffic.Matrix) []routing.Commodity {
	return routing.ODCommodities(g.NumNodes(), d.At)
}

// ecmpFlow is OSPF ECMP routing with the graph's current weights.
func ecmpFlow(g *graph.Graph, comms []routing.Commodity) *routing.Flow {
	return spf.ECMPFlow(g, comms, nil, spf.WeightCost(g))
}

// invCapWeights applies Cisco-style inverse-capacity weights, referenced
// to the largest capacity in the graph.
func invCapWeights(g *graph.Graph) {
	ref := 0.0
	for _, l := range g.Links() {
		if l.Capacity > ref {
			ref = l.Capacity
		}
	}
	spf.InvCapWeights(g, ref)
}

// standardSchemes assembles the paper's scheme lineup for a topology:
// OSPF+CSPF-detour, OSPF+recon, FCP, PathSplice, OSPF+R3, OSPF+opt and
// MPLS-ff+R3 (optimal is the engine's built-in denominator).
func standardSchemes(g *graph.Graph, d *traffic.Matrix, f int, o Options) []protect.Scheme {
	return []protect.Scheme{
		&protect.CSPFDetour{G: g},
		&protect.OSPFRecon{G: g},
		&protect.FCP{G: g},
		&protect.PathSplicing{G: g, Seed: o.Seed},
		&eval.R3Scheme{Label: "OSPF+R3", Plan: ospfR3Plan(g, d, f, o)},
		&protect.OptDetour{G: g, Iterations: o.OptIter, Exact: o.ExactOpt, Obs: o.Obs},
		&eval.R3Scheme{Label: "MPLS-ff+R3", Plan: r3Plan(g, d, f, o)},
	}
}

// SchemeOrder is the presentation order used by the paper's legends.
var SchemeOrder = []string{
	"OSPF+CSPF-detour", "OSPF+recon", "FCP", "PathSplice",
	"OSPF+R3", "OSPF+opt", "MPLS-ff+R3",
}

// printSeries writes one line per x position: x then one column per
// scheme.
func printSeries(w io.Writer, header string, schemes []string, rows [][]float64) {
	fmt.Fprintf(w, "# %s\n", header)
	fmt.Fprint(w, "# x")
	for _, s := range schemes {
		fmt.Fprintf(w, "\t%s", s)
	}
	fmt.Fprintln(w)
	for i, row := range rows {
		fmt.Fprintf(w, "%d", i+1)
		for _, v := range row {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
	}
}

// envelopeTM returns the entrywise max of a set of matrices: a compact
// single-matrix stand-in that dominates their convex hull (demands are
// nonnegative and MLU is monotone), used when one plan must cover a whole
// day or week of traffic.
func envelopeTM(series []*traffic.Matrix) *traffic.Matrix {
	out := traffic.NewMatrix(series[0].N)
	for _, m := range series {
		m.Pairs(func(a, b graph.NodeID, v float64) {
			if v > out.At(a, b) {
				out.Set(a, b, v)
			}
		})
	}
	return out
}
