package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Table1 prints the topology summary (paper Table 1).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: network topologies")
	fmt.Fprintf(w, "%-12s %-14s %8s %8s\n", "Network", "Aggregation", "#Nodes", "#D-Links")
	rows := []struct {
		g     *graph.Graph
		aggr  string
		notes string
	}{
		{topo.Abilene(), "router-level", ""},
		{topo.Level3(), "PoP-level", ""},
		{topo.SBC(), "PoP-level", ""},
		{topo.UUNet(), "PoP-level", ""},
		{topo.Generated(), "router-level", ""},
		{topo.USISP(), "PoP-level", "synthetic US-ISP stand-in"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-14s %8d %8d\n", r.g.Name, r.aggr, r.g.NumNodes(), r.g.NumLinks())
	}
}

// Table2Row is the offline precomputation time for one topology across
// failure-protection levels F = 1..6.
type Table2Row struct {
	Network string
	Seconds [6]float64
}

// Table2 measures R3 offline precomputation time (paper Table 2) for all
// six topologies and F = 1..6. The paper's key observation — runtime is
// essentially independent of F because the formulation never enumerates
// failure scenarios — holds by construction here too.
func Table2(o Options) []Table2Row { return Table2For(topo.All(), o) }

// Table2For measures precomputation time on a chosen topology list.
func Table2For(gs []*graph.Graph, o Options) []Table2Row {
	o = o.withDefaults()
	var rows []Table2Row
	for _, g := range gs {
		d := traffic.Gravity(g, 0.15*g.TotalCapacity(), o.Seed+7)
		row := Table2Row{Network: g.Name}
		for f := 1; f <= 6; f++ {
			start := time.Now()
			if _, err := core.Precompute(g, d, core.Config{
				Model: core.ArbitraryFailures{F: f}, Iterations: o.Effort,
				Workers: o.Workers,
			}); err != nil {
				panic(fmt.Sprintf("exp: table2 %s F=%d: %v", g.Name, f, err))
			}
			row.Seconds[f-1] = time.Since(start).Seconds()
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable2 writes Table 2 rows.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "# Table 2: R3 offline precomputation time (seconds)")
	fmt.Fprintf(w, "%-12s", "Network")
	for f := 1; f <= 6; f++ {
		fmt.Fprintf(w, "%9s", fmt.Sprintf("F=%d", f))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Network)
		for _, s := range r.Seconds {
			fmt.Fprintf(w, "%9.2f", s)
		}
		fmt.Fprintln(w)
	}
}

// Table3Row is the router storage overhead for one topology.
type Table3Row struct {
	Network string
	Storage mplsff.Storage
}

// Table3 measures the MPLS-ff storage overhead (paper Table 3): every
// backbone link is protected, and the worst router's table sizes are
// reported.
func Table3(o Options) []Table3Row { return Table3For(topo.All(), o) }

// Table3For measures storage on a chosen topology list.
func Table3For(gs []*graph.Graph, o Options) []Table3Row {
	o = o.withDefaults()
	var rows []Table3Row
	for _, g := range gs {
		d := traffic.Gravity(g, 0.15*g.TotalCapacity(), o.Seed+7)
		plan := r3Plan(g, d, 1, o)
		net := mplsff.Build(plan)
		rows = append(rows, Table3Row{Network: g.Name, Storage: net.MeasureStorage()})
	}
	return rows
}

// PrintTable3 writes Table 3 rows.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "# Table 3: router storage overhead of R3 (worst router)")
	fmt.Fprintf(w, "%-12s %8s %8s %12s %12s\n", "Network", "#ILM", "#NHLFE", "FIB", "RIB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %8d %12s %12s\n",
			r.Network, r.Storage.TotalILM, r.Storage.TotalNHLFEs,
			fmtBytes(r.Storage.FIBBytes), fmtBytes(r.Storage.RIBBytes))
	}
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
