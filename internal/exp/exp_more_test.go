package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestRocketfuelFigureSBCQuick(t *testing.T) {
	o := tinyOpts()
	o.MaxScenarios = 15
	r := RocketfuelFigure("SBC", 2, o)
	if len(r.Schemes) != len(SchemeOrder) {
		t.Fatalf("schemes = %v", r.Schemes)
	}
	for j, s := range r.Sorted {
		if len(s) == 0 {
			t.Fatalf("scheme %d has no scenarios", j)
		}
		if s[0] < 1 {
			t.Fatalf("ratio %v below 1", s[0])
		}
	}
	// The paper's SBC observation: the jointly optimized MPLS-ff+R3 is
	// competitive with (median not far above) the per-scenario optimal
	// detours.
	r3 := r.Sorted[indexOf(r.Schemes, "MPLS-ff+R3")]
	opt := r.Sorted[indexOf(r.Schemes, "OSPF+opt")]
	if r3[len(r3)/2] > opt[len(opt)/2]*2 {
		t.Errorf("SBC median: MPLS-ff+R3 %.3f far above OSPF+opt %.3f",
			r3[len(r3)/2], opt[len(opt)/2])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "SBC") {
		t.Fatalf("title missing SBC")
	}
}

func TestRocketfuelFigureUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown network accepted")
		}
	}()
	RocketfuelFigure("NotANetwork", 2, tinyOpts())
}

func TestEnvelopeOf(t *testing.T) {
	if envelopeOf(Options{Envelope: -1}) != 0 {
		t.Fatalf("negative envelope should disable")
	}
	if envelopeOf(Options{Envelope: 1.2}) != 1.2 {
		t.Fatalf("envelope not passed through")
	}
	def := (Options{}).withDefaults()
	if def.Envelope != 1.1 {
		t.Fatalf("default envelope = %v", def.Envelope)
	}
}

func TestEnvelopeTM(t *testing.T) {
	miniUSISP(t)
	w := NewUSISP(tinyOpts())
	day := w.Day(0)
	env := envelopeTM(day)
	for _, m := range day {
		m.Pairs(func(a, b graph.NodeID, v float64) {
			if env.At(a, b) < v-1e-12 {
				t.Fatalf("envelope below member at %d->%d", a, b)
			}
		})
	}
}

func TestQuickOptionsAreSmall(t *testing.T) {
	q := Quick()
	full := (Options{}).withDefaults()
	if q.Effort >= full.Effort || q.MaxScenarios >= full.MaxScenarios || q.Days >= full.Days {
		t.Fatalf("Quick() not smaller than defaults: %+v vs %+v", q, full)
	}
}
