package exp

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// RocketfuelFigure reproduces Figures 6 (SBC) and 7 (Level-3): sorted
// performance ratios under all two-link failures and sampled three-link
// failures, with a gravity-model traffic matrix. failures selects 2 or 3.
func RocketfuelFigure(network string, failures int, o Options) *MultiFailureResult {
	o = o.withDefaults()
	var g *graph.Graph
	switch network {
	case "SBC":
		g = topo.SBC()
	case "Level3":
		g = topo.Level3()
	case "UUNet":
		g = topo.UUNet()
	default:
		panic(fmt.Sprintf("exp: unknown Rocketfuel network %q", network))
	}
	// One random gravity matrix, scaled to a realistic operating point.
	d := traffic.Gravity(g, 1000, o.Seed+17)
	scaleToOptimalMLU(g, d, 0.5, o)

	// Failure events are bidirectional (a fiber cut takes both directed
	// links), so protecting against `failures` events means covering
	// 2×failures directed links.
	schemes := standardSchemes(g, d, 2*failures, o)
	events := eval.DuplexPairs(g)
	var scenarios []graph.LinkSet
	if failures == 2 {
		scenarios = eval.AllPairs(events)
		if len(scenarios) > o.MaxScenarios*2 {
			scenarios = eval.Sample(events, 2, o.MaxScenarios*2, o.Seed+44)
		}
	} else {
		scenarios = eval.Sample(events, failures, o.MaxScenarios, o.Seed+45)
	}
	scenarios = eval.FilterConnected(g, scenarios)
	title := fmt.Sprintf("sorted performance ratio, %d failures: %s", failures, network)
	return multiFailure(title, g, schemes, d, scenarios, o)
}
