package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// AblationSolverGap compares the exact LP solver against the iterative
// Frank–Wolfe solver on a small topology: objective gap and runtime
// trade-off (the design choice that makes large topologies tractable).
type AblationSolverGap struct {
	LPMLU, FWMLU float64
	GapPercent   float64
}

// SolverGap runs the ablation on a five-node ring with chords — an
// instance the dense simplex solves exactly in well under a second (LP
// (7) has O(|V|^2·|E|+|E|^2) variables and network LPs are highly
// degenerate, so exact solves only scale to small networks; that
// size-vs-exactness trade-off is the point of this ablation).
func SolverGap(o Options) *AblationSolverGap {
	o = o.withDefaults()
	g := smallRing()
	d := traffic.Gravity(g, 120, 11)
	lp, err := core.Precompute(g, d, core.Config{Model: core.ArbitraryFailures{F: 1}, Solver: core.SolverLP, Workers: o.Workers})
	if err != nil {
		panic(err)
	}
	fw, err := core.Precompute(g, d, core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: o.Effort, Workers: o.Workers})
	if err != nil {
		panic(err)
	}
	return &AblationSolverGap{
		LPMLU: lp.MLU, FWMLU: fw.MLU,
		GapPercent: 100 * (fw.MLU/lp.MLU - 1),
	}
}

// Print writes the row.
func (a *AblationSolverGap) Print(w io.Writer) {
	fmt.Fprintln(w, "# Ablation: exact LP vs Frank-Wolfe solver (5-node ring+chords, F=1)")
	fmt.Fprintf(w, "LP MLU %.4f, FW MLU %.4f, gap %.2f%%\n", a.LPMLU, a.FWMLU, a.GapPercent)
}

// EnvelopeSweepRow is one β of the penalty-envelope sweep.
type EnvelopeSweepRow struct {
	Beta          float64
	NormalMLU     float64
	ProtectedMLU  float64
	OptNormalMLU  float64
	NormalPenalty float64 // NormalMLU / OptNormalMLU
}

// EnvelopeSweep quantifies the normal-case vs failure-case trade-off the
// β parameter controls (§3.5), on SBC.
func EnvelopeSweep(betas []float64, o Options) []EnvelopeSweepRow {
	o = o.withDefaults()
	g := topo.SBC()
	d := traffic.Gravity(g, 1000, o.Seed+62)
	scaleToOptimalMLU(g, d, 0.5, o)
	base, err := core.Precompute(g, d, core.Config{Model: core.ArbitraryFailures{F: 0}, Iterations: o.Effort, Workers: o.Workers})
	if err != nil {
		panic(err)
	}
	optNormal := base.NormalMLU

	var rows []EnvelopeSweepRow
	for _, beta := range betas {
		cfg := core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: o.Effort, Workers: o.Workers}
		if !math.IsInf(beta, 1) {
			cfg.PenaltyEnvelope = beta
		}
		plan, err := core.Precompute(g, d, cfg)
		if err != nil {
			panic(err)
		}
		rows = append(rows, EnvelopeSweepRow{
			Beta: beta, NormalMLU: plan.NormalMLU, ProtectedMLU: plan.MLU,
			OptNormalMLU: optNormal, NormalPenalty: plan.NormalMLU / optNormal,
		})
	}
	return rows
}

// PrintEnvelopeSweep writes the sweep table.
func PrintEnvelopeSweep(w io.Writer, rows []EnvelopeSweepRow) {
	fmt.Fprintln(w, "# Ablation: penalty envelope sweep (SBC, F=1)")
	fmt.Fprintf(w, "%8s %12s %12s %14s\n", "beta", "normal MLU", "d+X1 MLU", "normal/opt")
	for _, r := range rows {
		b := fmt.Sprintf("%.2f", r.Beta)
		if math.IsInf(r.Beta, 1) {
			b = "inf"
		}
		fmt.Fprintf(w, "%8s %12.4f %12.4f %14.3f\n", b, r.NormalMLU, r.ProtectedMLU, r.NormalPenalty)
	}
}

// VirtualDemandAblation compares the paper's top-F virtual demand
// envelope against the naive alternative that reserves for ALL links
// failing at once (F = |E|): the naive variant wildly over-protects,
// which is exactly why X_F is defined with the sum constraint.
type VirtualDemandAblation struct {
	TopF, Naive float64
}

// VirtualDemand runs the ablation on the 5-node ring with F=1: the ring
// makes every link carry several detours, so reserving for ALL virtual
// demands at once (the naive envelope) visibly over-protects, while the
// X_1 envelope only reserves for the single worst one. (On meshes whose
// bottleneck link has at most F significant detour contributors the two
// envelopes coincide — which is itself the observation that X_F's sum
// constraint only pays off when failures share reroute capacity.)
func VirtualDemand(o Options) *VirtualDemandAblation {
	o = o.withDefaults()
	g := smallRing()
	d := traffic.Gravity(g, 120, 11)
	topF, err := core.Precompute(g, d, core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: o.Effort, Workers: o.Workers})
	if err != nil {
		panic(err)
	}
	naive, err := core.Precompute(g, d, core.Config{Model: core.ArbitraryFailures{F: g.NumLinks()}, Iterations: o.Effort, Workers: o.Workers})
	if err != nil {
		panic(err)
	}
	return &VirtualDemandAblation{TopF: topF.MLU, Naive: naive.MLU}
}

// Print writes the comparison.
func (a *VirtualDemandAblation) Print(w io.Writer) {
	fmt.Fprintln(w, "# Ablation: X_F envelope vs naive all-links virtual demand (5-node ring, F=1)")
	fmt.Fprintf(w, "top-F MLU %.4f, naive MLU %.4f (%.2fx over-protection)\n",
		a.TopF, a.Naive, a.Naive/a.TopF)
}

// HashSplitRow measures splitting accuracy for one hash width.
type HashSplitRow struct {
	Bits     int
	MaxError float64 // worst |realized - configured| fraction over trials
}

// HashSplit quantifies the flow-splitting granularity of the MPLS-ff
// hash (the paper uses 6 bits and mentions FLARE for finer splits).
func HashSplit(bitWidths []int, flows int, o Options) []HashSplitRow {
	o = o.withDefaults()
	var rows []HashSplitRow
	ratios := []float64{0.1, 0.3, 0.6}
	for _, bits := range bitWidths {
		buckets := 1 << uint(bits)
		maxErr := 0.0
		counts := make([]int, len(ratios))
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < flows; i++ {
			f := mplsff.FlowKey{
				SrcIP: uint32(i * 2654435761), DstIP: uint32(i*40503 + 7),
				SrcPort: uint16(i), DstPort: 443,
			}
			// Rescale the 6-bit router hash to the target width by
			// re-hashing with a wider modulus.
			h := rehash(f, buckets)
			x := (float64(h) + 0.5) / float64(buckets)
			var cum float64
			for j, r := range ratios {
				cum += r
				if x <= cum || j == len(ratios)-1 {
					counts[j]++
					break
				}
			}
		}
		for j, r := range ratios {
			got := float64(counts[j]) / float64(flows)
			if e := math.Abs(got - r); e > maxErr {
				maxErr = e
			}
		}
		rows = append(rows, HashSplitRow{Bits: bits, MaxError: maxErr})
	}
	return rows
}

// smallRing is a 5-node ring with two chords, sized for the exact LP.
func smallRing() *graph.Graph {
	g := graph.New("ring5")
	n := make([]graph.NodeID, 5)
	for i := 0; i < 5; i++ {
		n[i] = g.AddNode(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < 5; i++ {
		g.AddDuplex(n[i], n[(i+1)%5], 100, 1, 1)
	}
	g.AddDuplex(n[0], n[2], 100, 1, 1)
	g.AddDuplex(n[1], n[3], 100, 1, 1)
	return g
}

func rehash(f mplsff.FlowKey, buckets int) int {
	h := uint64(f.SrcIP)*0x9e3779b97f4a7c15 ^ uint64(f.DstIP)*0xc2b2ae3d27d4eb4f ^
		uint64(f.SrcPort)<<32 ^ uint64(f.DstPort)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(buckets))
}

// PrintHashSplit writes the granularity table.
func PrintHashSplit(w io.Writer, rows []HashSplitRow) {
	fmt.Fprintln(w, "# Ablation: hash-split granularity (max split error vs hash width)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d bits: max error %.4f\n", r.Bits, r.MaxError)
	}
}
