package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// EmulationConfig parameterizes the Abilene testbed reproduction
// (Figures 11–13): 100 Mbps links, a scaled Abilene traffic matrix, and
// three sequential bidirectional link failures — Houston–KansasCity,
// Chicago–Indianapolis, Sunnyvale–Denver — one per phase.
type EmulationConfig struct {
	// PhaseSeconds is the emulated time between failures (the paper
	// waited about a minute; the default 10 s preserves the dynamics at a
	// fraction of the event count).
	PhaseSeconds float64
	// TotalMbps is the aggregate offered traffic (default 220).
	TotalMbps float64
	// Effort is the R3 precompute effort.
	Effort int
	// Seed drives packet arrival jitter.
	Seed int64
	// Chaos, when Enabled, injects seeded control/data-plane faults into
	// the emulation (see netem.ChaosConfig).
	Chaos netem.ChaosConfig
	// Obs, when non-nil, receives precompute and emulator metrics.
	Obs *obs.Registry
}

func (c *EmulationConfig) defaults() {
	if c.PhaseSeconds == 0 {
		c.PhaseSeconds = 10
	}
	if c.TotalMbps == 0 {
		c.TotalMbps = 220
	}
	if c.Effort == 0 {
		c.Effort = 120
	}
}

// EmulationResult aggregates per-phase measurements of one run.
type EmulationResult struct {
	Forwarder string
	G         *graph.Graph
	Phases    []*netem.PhaseStats
	// RTT samples of the Denver→LosAngeles probe: (time, rtt seconds).
	RTT [][2]float64
	// FailedByPhase[i] is the set of links down during phase i.
	FailedByPhase []graph.LinkSet
}

// abileneFailureSequence returns the three duplex failures of §5.3.
func abileneFailureSequence(g *graph.Graph) []graph.LinkID {
	pairs := [][2]string{
		{"Houston", "KansasCity"},
		{"Chicago", "Indianapolis"},
		{"Sunnyvale", "Denver"},
	}
	var out []graph.LinkID
	for _, p := range pairs {
		a, _ := g.NodeByName(p[0])
		b, _ := g.NodeByName(p[1])
		id, ok := g.FindLink(a, b)
		if !ok {
			panic(fmt.Sprintf("exp: missing Abilene link %v", p))
		}
		out = append(out, id)
	}
	return out
}

// RunEmulation executes the packet-level experiment with the given
// forwarding plane ("MPLS-ff+R3" or "OSPF+recon").
func RunEmulation(forwarder string, cfg EmulationConfig) *EmulationResult {
	cfg.defaults()
	g := topo.Abilene()
	d := traffic.AbileneMatrix(g, cfg.TotalMbps)

	var fw netem.Forwarder
	var converge float64
	switch forwarder {
	case "MPLS-ff+R3":
		plan, err := core.Precompute(g, d, core.Config{
			Model: core.ArbitraryFailures{F: 3}, Iterations: cfg.Effort,
			PenaltyEnvelope: 1.1, Obs: cfg.Obs,
		})
		if err != nil {
			panic(err)
		}
		// Distributed control plane: every router holds its own copy of p
		// and reconfigures when the notification flood reaches it (§4.3).
		fw = netem.NewR3Distributed(plan)
	case "OSPF+recon":
		fw = netem.NewOSPFRecon(g)
		converge = 2.0 // OSPF SPF + FIB update timescale
	default:
		panic(fmt.Sprintf("exp: unknown forwarder %q", forwarder))
	}

	em := netem.New(netem.Config{
		G: g, Forwarder: fw, Seed: cfg.Seed, ConvergeDelay: converge,
		Chaos: cfg.Chaos, Obs: cfg.Obs,
	})
	stop := 4 * cfg.PhaseSeconds
	d.Pairs(func(a, b graph.NodeID, mbps float64) {
		em.AddCBRTraffic(a, b, mbps*1e6/8, stop)
	})
	den, _ := g.NodeByName("Denver")
	la, _ := g.NodeByName("LosAngeles")
	em.AddPing(den, la, 0.2, stop)

	fails := abileneFailureSequence(g)
	var failedSets []graph.LinkSet
	cum := graph.LinkSet{}
	failedSets = append(failedSets, cum.Clone())
	for i, e := range fails {
		em.FailAt(float64(i+1)*cfg.PhaseSeconds, e)
		cum.Add(e)
		if rev := g.Link(e).Reverse; rev >= 0 {
			cum.Add(rev)
		}
		failedSets = append(failedSets, cum.Clone())
	}
	em.Run(stop)

	return &EmulationResult{
		Forwarder:     forwarder,
		G:             g,
		Phases:        em.Phases(),
		RTT:           em.RTT,
		FailedByPhase: failedSets,
	}
}

// Figure11 prints the three panels of Figure 11 from an R3 emulation run:
// (a) per-OD normalized throughput, (b) per-link normalized intensity,
// (c) per-egress aggregated loss rate — each across the four phases
// (normal, 1, 2, 3 link failures).
func Figure11(r *EmulationResult, w io.Writer) {
	g := r.G
	capacity := g.Link(0).Capacity // Abilene links are uniform

	// (a) Normalized throughput per OD pair, sorted by the normal-case
	// value.
	type od struct {
		pair [2]graph.NodeID
		vals []float64
	}
	var ods []od
	for pair := range r.Phases[0].OfferedBytes {
		o := od{pair: pair}
		for _, p := range r.Phases {
			rate := float64(p.DeliveredBytes[pair]) * 8 / p.Duration() / 1e6
			o.vals = append(o.vals, rate/capacity)
		}
		ods = append(ods, o)
	}
	sort.Slice(ods, func(i, j int) bool { return ods[i].vals[0] < ods[j].vals[0] })
	fmt.Fprintln(w, "# Figure 11a: normalized OD throughput (sorted by normal case)")
	fmt.Fprintln(w, "# od\tnormal\t1-failure\t2-failures\t3-failures")
	for i, o := range ods {
		fmt.Fprintf(w, "%d", i+1)
		for _, v := range o.vals {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
	}

	// (b) Normalized per-link intensity, sorted by the normal case.
	nL := g.NumLinks()
	intens := make([][]float64, nL)
	for e := 0; e < nL; e++ {
		for _, p := range r.Phases {
			rate := float64(p.LinkBytes[e]) * 8 / p.Duration() / 1e6
			intens[e] = append(intens[e], rate/g.Link(graph.LinkID(e)).Capacity)
		}
	}
	sort.Slice(intens, func(i, j int) bool { return intens[i][0] < intens[j][0] })
	fmt.Fprintln(w, "# Figure 11b: normalized link intensity (sorted by normal case)")
	fmt.Fprintln(w, "# link\tnormal\t1-failure\t2-failures\t3-failures")
	for e := 0; e < nL; e++ {
		fmt.Fprintf(w, "%d", e+1)
		for _, v := range intens[e] {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
	}

	// (c) Aggregated loss rate at each egress router.
	fmt.Fprintln(w, "# Figure 11c: aggregated loss rate per egress router")
	fmt.Fprintln(w, "# egress\tnormal\t1-failure\t2-failures\t3-failures")
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(w, "%s", g.Node(graph.NodeID(v)))
		for _, p := range r.Phases {
			var expected int64
			for pair, b := range p.OfferedBytes {
				if pair[1] == graph.NodeID(v) {
					expected += b
				}
			}
			loss := 0.0
			if expected > 0 {
				loss = float64(p.DropsByDst[v]) / float64(expected)
			}
			fmt.Fprintf(w, "\t%.4f", loss)
		}
		fmt.Fprintln(w)
	}
}

// Figure12 prints the RTT time series of the Denver–LosAngeles probe.
func Figure12(r *EmulationResult, w io.Writer) {
	fmt.Fprintln(w, "# Figure 12: RTT of a Denver-LosAngeles flow (time s, RTT ms)")
	for _, s := range r.RTT {
		fmt.Fprintf(w, "%.2f\t%.2f\n", s[0], s[1]*1000)
	}
}

// Figure13 compares the final-phase (three failures) sorted per-link
// intensity of two runs — MPLS-ff+R3 versus OSPF+recon.
func Figure13(r3, ospf *EmulationResult, w io.Writer) {
	final := func(r *EmulationResult) []float64 {
		p := r.Phases[len(r.Phases)-1]
		out := make([]float64, r.G.NumLinks())
		for e := range out {
			rate := float64(p.LinkBytes[e]) * 8 / p.Duration() / 1e6
			out[e] = rate / r.G.Link(graph.LinkID(e)).Capacity
		}
		sort.Float64s(out)
		return out
	}
	a, b := final(r3), final(ospf)
	fmt.Fprintln(w, "# Figure 13: sorted normalized link intensity under three link failures")
	fmt.Fprintf(w, "# link\t%s\t%s\n", r3.Forwarder, ospf.Forwarder)
	for i := range a {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", i+1, a[i], b[i])
	}
}

// PeakIntensity returns the highest per-link normalized intensity in the
// final phase (used by tests and EXPERIMENTS.md).
func (r *EmulationResult) PeakIntensity(phase int) float64 {
	p := r.Phases[phase]
	worst := 0.0
	for e, b := range p.LinkBytes {
		rate := float64(b) * 8 / p.Duration() / 1e6
		if u := rate / r.G.Link(graph.LinkID(e)).Capacity; u > worst {
			worst = u
		}
	}
	return worst
}

// LossRate returns total drops ÷ total offered in a phase.
func (r *EmulationResult) LossRate(phase int) float64 {
	p := r.Phases[phase]
	var off, dr int64
	for _, v := range p.OfferedBytes {
		off += v
	}
	for _, v := range p.DropsByDst {
		dr += v
	}
	if off == 0 {
		return 0
	}
	return float64(dr) / float64(off)
}
