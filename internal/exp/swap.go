package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/netem"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/transition"
)

// SwapRun is one seeded comparison of a staged (multi-round) plan swap
// against one-shot installation of the target plan under the same chaos.
type SwapRun struct {
	Seed int64
	// StagedPeak and OneShotPeak are the worst measured link utilization
	// over the migration window, on an identical measurement grid.
	StagedPeak, OneShotPeak float64
	// StagedDropKB and OneShotDropKB are bytes dropped over the window,
	// in kilobytes.
	StagedDropKB, OneShotDropKB float64
	// Match reports that both runs converged and the staged end state is
	// byte-identical to the one-shot install.
	Match      bool
	Violations int
}

// SwapSummary aggregates a SwapSweep.
type SwapSummary struct {
	Rounds         int     // scheduled swap rounds k
	TransientMLU   float64 // the scheduler's analytic transient bound
	CongestionFree bool    // every round analytically congestion-free
	OneShotMLU     float64 // analytic mixing envelope of the one-shot swap
	WireKB         float64 // staged round deltas over the wire
	Runs           []SwapRun
	StagedWorse    int // runs where the staged peak exceeded one-shot's
	Matches        int
	Violations     int
}

// swapHubPlans builds the crossing-commodities construct the swap
// scheduler's tests pin down: sources a,b and sinks c,d around a narrow
// two-path core u→{x,y}→v. The old plan routes a-sourced commodities via
// x and b-sourced via y; the new plan trades them. Both endpoints are
// feasible (60/100 per core link) but the asynchronous mixing envelope
// of a one-shot swap is 120/100, so the scheduler must decompose.
func swapHubPlans(effort int) (*core.Plan, *core.Plan, *traffic.Matrix) {
	g := graph.New("swaphub")
	ids := map[string]graph.NodeID{}
	for _, s := range []string{"a", "b", "c", "d", "u", "v", "x", "y"} {
		ids[s] = g.AddNode(s)
	}
	duplex := func(p, q string, c float64) { g.AddDuplex(ids[p], ids[q], c, 1, 1) }
	duplex("a", "u", 1000)
	duplex("b", "u", 1000)
	duplex("v", "c", 1000)
	duplex("v", "d", 1000)
	duplex("a", "b", 1000)
	duplex("c", "d", 1000)
	duplex("u", "x", 100)
	duplex("x", "v", 100)
	duplex("u", "y", 100)
	duplex("y", "v", 100)

	const dem = 30.0
	build := func(via map[[2]string]string) (*core.Plan, *traffic.Matrix) {
		d := traffic.NewMatrix(g.NumNodes())
		var comms []routing.Commodity
		var paths [][]graph.NodeID
		for od, mid := range via {
			src, dst := ids[od[0]], ids[od[1]]
			d.Set(src, dst, dem)
			comms = append(comms, routing.Commodity{Src: src, Dst: dst, Demand: dem, Link: -1})
			paths = append(paths, []graph.NodeID{src, ids["u"], ids[mid], ids["v"], dst})
		}
		base := routing.NewFlow(g, comms)
		for k, p := range paths {
			for i := 0; i+1 < len(p); i++ {
				e, ok := g.FindLink(p[i], p[i+1])
				if !ok {
					panic(fmt.Sprintf("no link %v->%v", p[i], p[i+1]))
				}
				base.Frac[k][e] = 1
			}
		}
		plan, err := core.Precompute(g, d, core.Config{
			Model: core.ArbitraryFailures{F: 1}, BaseRouting: base, Iterations: effort,
		})
		if err != nil {
			panic(err)
		}
		return plan, d
	}
	crossing := func(first, second string) map[[2]string]string {
		return map[[2]string]string{
			{"a", "c"}: first, {"a", "d"}: first,
			{"b", "c"}: second, {"b", "d"}: second,
		}
	}
	old, d := build(crossing("x", "y"))
	next, _ := build(crossing("y", "x"))
	return old, next, d
}

// SwapSweep compares a staged plan swap against one-shot installation of
// the target plan across seeded chaos runs, on the crossing-commodities
// construct. The staged run delivers the swap scheduler's rounds through
// the staged-round flood; the one-shot run floods the entire old→new
// delta as a single round, so routers cut over asynchronously as the
// flood reaches them — exactly the unsound mixing the scheduler's
// per-commodity envelope bounds. Both runs share the traffic seed and
// chaos seed and are measured on an identical 100 ms grid.
func SwapSweep(cfg EmulationConfig, seeds int) *SwapSummary {
	cfg.defaults()
	old, next, d := swapHubPlans(cfg.Effort)
	g := old.G
	seq, err := transition.SchedulePlanSwap(old, next, transition.Options{SkipCertify: true, Obs: cfg.Obs})
	if err != nil {
		panic(err)
	}
	oneShot := mplsff.Diff(mplsff.Build(old), mplsff.Build(next))

	// Analytic one-shot mixing envelope: per commodity the max of its old
	// and new loads, summed per link.
	env := make([]float64, g.NumLinks())
	for k := range old.Base.Comms {
		dOld, dNew := old.Base.Comms[k].Demand, next.Base.Comms[k].Demand
		for e := range env {
			o, n := dOld*old.Base.Frac[k][e], dNew*next.Base.Frac[k][e]
			if n > o {
				env[e] += n
			} else {
				env[e] += o
			}
		}
	}

	sum := &SwapSummary{
		Rounds: len(seq.Rounds), TransientMLU: seq.TransientMLU,
		CongestionFree: seq.CongestionFree, OneShotMLU: routing.MLU(g, env),
		WireKB: float64(seq.WireBytes()) / 1024,
	}

	const (
		warmup   = 1.0
		roundGap = 0.25
		tail     = 1.2
		binW     = 0.1
	)
	stop := warmup + roundGap*float64(len(seq.Rounds)) + tail

	drive := func(chaos netem.ChaosConfig, staged bool) (*netem.Emulator, *netem.R3DistributedForwarder) {
		fw := netem.NewR3Distributed(old)
		em := netem.New(netem.Config{G: g, Forwarder: fw, Seed: cfg.Seed, Obs: cfg.Obs, Chaos: chaos})
		d.Pairs(func(a, b graph.NodeID, mbps float64) {
			em.AddCBRTraffic(a, b, mbps*1e6/8, stop)
		})
		if staged {
			for i, r := range seq.Rounds {
				em.StageRoundAt(warmup+float64(i)*roundGap, 0, r.Seq, r.Delta)
			}
		} else {
			em.StageRoundAt(warmup, 0, 1, oneShot)
		}
		for t := warmup + binW; t < stop; t += binW {
			em.MarkPhaseAt(t)
		}
		em.Run(stop)
		return em, fw
	}

	for s := 0; s < seeds; s++ {
		chaos := cfg.Chaos
		if !chaos.Enabled {
			chaos = netem.ChaosConfig{Enabled: true, CtrlDrop: 0.20, CtrlDup: 0.10, CtrlJitter: 0.002}
		}
		chaos.Seed += int64(s)
		run := SwapRun{Seed: chaos.Seed}

		emS, fwS := drive(chaos, true)
		emO, fwO := drive(chaos, false)

		var sDrop, oDrop int64
		run.StagedPeak, sDrop = transientPeak(emS, g, warmup)
		run.OneShotPeak, oDrop = transientPeak(emO, g, warmup)
		run.StagedDropKB = float64(sDrop) / 1024
		run.OneShotDropKB = float64(oDrop) / 1024
		run.Match = emS.StagesConverged() && emO.StagesConverged() &&
			fwS.ViewFingerprint(0) == fwO.ViewFingerprint(0)
		run.Violations = len(emS.Violations()) + len(emO.Violations())

		if run.Match {
			sum.Matches++
		}
		if run.StagedPeak > run.OneShotPeak+transientTol {
			sum.StagedWorse++
		}
		sum.Violations += run.Violations
		sum.Runs = append(sum.Runs, run)
	}
	return sum
}

// PrintSwapSweep renders the sweep as the r3emu -swap table.
func PrintSwapSweep(sum *SwapSummary, w io.Writer) {
	fmt.Fprintf(w, "# Staged vs one-shot plan swap (crossing commodities over a two-path core)\n")
	fmt.Fprintf(w, "# rounds=%d scheduler_transient_mlu=%.4f congestion_free=%v one_shot_envelope_mlu=%.4f wire_KB=%.1f\n",
		sum.Rounds, sum.TransientMLU, sum.CongestionFree, sum.OneShotMLU, sum.WireKB)
	fmt.Fprintln(w, "# seed\tstaged_peak\toneshot_peak\tstaged_dropKB\toneshot_dropKB\tmatch")
	for _, r := range sum.Runs {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.1f\t%.1f\t%v\n",
			r.Seed, r.StagedPeak, r.OneShotPeak, r.StagedDropKB, r.OneShotDropKB, r.Match)
	}
	fmt.Fprintf(w, "# staged peak <= one-shot peak in %d/%d runs; end states match in %d/%d; violations %d\n",
		len(sum.Runs)-sum.StagedWorse, len(sum.Runs), sum.Matches, len(sum.Runs), sum.Violations)
}
