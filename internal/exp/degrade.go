package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/protect"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// DegradeSweepRow aggregates one scenario kind of the degradation sweep.
type DegradeSweepRow struct {
	Kind  string
	Count int
	// Worst is the worst bottleneck intensity per scheme over the kind's
	// scenarios; WorstRatio the worst performance ratio.
	Worst      map[string]float64
	WorstRatio map[string]float64
}

// DegradeSweepResult is the outcome of DegradationSweep: an R3 plan
// protected against the degradation envelope X_D (and optionally a surge
// envelope) compared against the classic X_F plan over a mixed scenario
// population — hard failures, sampled in-budget degradations, node
// outages and the surge itself.
type DegradeSweepResult struct {
	Spec core.WorkloadSpec
	// CertifiedFailure / CertifiedDegrade are the plans' offline MLU
	// bounds (what each precompute certified for its own envelope).
	CertifiedFailure, CertifiedDegrade float64
	Rows                               []DegradeSweepRow
	// Schemes lists scheme names in presentation order.
	Schemes []string
}

// degradeSchemeFailure and degradeSchemeEnvelope label the two plans.
const (
	degradeSchemeFailure  = "MPLS-ff+R3 (X_F)"
	degradeSchemeEnvelope = "MPLS-ff+R3 (X_D)"
)

// DegradationSweep runs the generalized-scenario experiment on Abilene:
// precompute one plan against the classic single-failure set X_F and one
// against the degradation envelope X_D of spec (per-link capacity floor
// alpha, total budget B; plus the surge envelope when spec surges), then
// evaluate both — and OSPF reconvergence as the non-reconfiguring
// baseline — over single-link failures, sampled in-budget degradations,
// every node outage, and the surged matrix. A zero-valued spec defaults
// to alpha=0.5, budget=1.
func DegradationSweep(spec core.WorkloadSpec, o Options) *DegradeSweepResult {
	o = o.withDefaults()
	if !spec.Degrades() {
		spec.Alpha, spec.Budget = 0.5, 1
	}
	g := topo.Abilene()
	d := traffic.Gravity(g, 4000, o.Seed+77)
	scaleToOptimalMLU(g, d, 0.4, o)
	model := core.DegradationModel{Beta: 1 - spec.Alpha, Budget: spec.Budget}

	failPlan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 1}, Iterations: o.Effort,
		Workers: o.Workers, Obs: o.Obs,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: degrade sweep X_F precompute: %v", err))
	}
	degrPlan, err := core.Precompute(g, d, core.Config{
		Model: model, Surge: spec.SurgeSpec(), Iterations: o.Effort,
		Workers: o.Workers, Obs: o.Obs,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: degrade sweep X_D precompute: %v", err))
	}

	var scs []core.Scenario
	scs = append(scs, eval.FailureScenarios(eval.SingleLinks(g))...)
	nDegr := o.MaxScenarios / 2
	if nDegr > 200 {
		nDegr = 200
	}
	scs = append(scs, core.SampleDegradations(g, model, nDegr, o.Seed+101)...)
	scs = append(scs, core.NodeScenarios(g)...)
	if spec.Surges() {
		scs = append(scs, spec.SurgeSpec().Scenario(d))
	}

	en := &eval.Engine{
		G: g,
		Schemes: []protect.Scheme{
			&protect.OSPFRecon{G: g},
			&eval.R3Scheme{Label: degradeSchemeFailure, Plan: failPlan},
			&eval.R3Scheme{Label: degradeSchemeEnvelope, Plan: degrPlan},
		},
		OptimalIterations: o.OptIter, ExactOptimal: o.ExactOpt,
		Workers: o.Workers, Shards: o.Shards, Obs: o.Obs,
	}
	results := en.EvaluateScenarios(d, scs)

	byKind := map[string]*DegradeSweepRow{}
	var kinds []string
	for i := range results {
		r := &results[i]
		row := byKind[r.Kind]
		if row == nil {
			row = &DegradeSweepRow{
				Kind:       r.Kind,
				Worst:      map[string]float64{},
				WorstRatio: map[string]float64{},
			}
			byKind[r.Kind] = row
			kinds = append(kinds, r.Kind)
		}
		row.Count++
		for name, b := range r.Bottleneck {
			if b > row.Worst[name] {
				row.Worst[name] = b
			}
			if ratio := r.Ratio(name); ratio > row.WorstRatio[name] {
				row.WorstRatio[name] = ratio
			}
		}
	}
	sort.Strings(kinds)
	out := &DegradeSweepResult{
		Spec:             spec,
		CertifiedFailure: failPlan.MLU, CertifiedDegrade: degrPlan.MLU,
		Schemes: []string{"OSPF+recon", degradeSchemeFailure, degradeSchemeEnvelope},
	}
	for _, k := range kinds {
		out.Rows = append(out.Rows, *byKind[k])
	}
	return out
}

// Print writes the sweep table.
func (r *DegradeSweepResult) Print(w io.Writer) {
	fmt.Fprintf(w, "# Degradation-envelope sweep (Abilene, %s)\n", r.Spec)
	fmt.Fprintf(w, "# certified MLU: X_F plan %.4f, X_D plan %.4f\n",
		r.CertifiedFailure, r.CertifiedDegrade)
	fmt.Fprintf(w, "%-12s %6s", "kind", "n")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %22s", s+" worst")
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %6d", row.Kind, row.Count)
		for _, s := range r.Schemes {
			fmt.Fprintf(w, " %22.4f", row.Worst[s])
		}
		fmt.Fprintln(w)
	}
}
