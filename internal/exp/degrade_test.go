package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDegradationSweepQuick(t *testing.T) {
	o := Quick()
	spec := core.WorkloadSpec{Alpha: 0.5, Budget: 1, Surge: 1.3, ODFrac: 0.25}
	r := DegradationSweep(spec, o)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if r.CertifiedFailure <= 0 || r.CertifiedDegrade <= 0 {
		t.Fatalf("certified MLUs = %v, %v", r.CertifiedFailure, r.CertifiedDegrade)
	}
	// The X_D envelope contains X_F's single failures (through the anchor)
	// plus the degradations and the surge, so its certificate can never be
	// cheaper than the failure plan's.
	if r.CertifiedDegrade < r.CertifiedFailure-1e-6 {
		t.Fatalf("X_D certificate %v below X_F certificate %v",
			r.CertifiedDegrade, r.CertifiedFailure)
	}
	kinds := map[string]DegradeSweepRow{}
	for _, row := range r.Rows {
		kinds[row.Kind] = row
		if row.Count == 0 {
			t.Fatalf("kind %q has zero scenarios", row.Kind)
		}
	}
	for _, want := range []string{"failure", "degradation", "node", "surge"} {
		if _, ok := kinds[want]; !ok {
			t.Fatalf("kind %q missing from sweep (have %v)", want, r.Rows)
		}
	}
	// The envelope plan is certified for every sampled degradation: its
	// worst degradation bottleneck stays within the certificate.
	if row := kinds["degradation"]; row.Worst[degradeSchemeEnvelope] > r.CertifiedDegrade+1e-6 {
		t.Fatalf("X_D worst degradation %v above its certificate %v",
			row.Worst[degradeSchemeEnvelope], r.CertifiedDegrade)
	}
	// Same for the surge the plan was precomputed against.
	if row := kinds["surge"]; row.Worst[degradeSchemeEnvelope] > r.CertifiedDegrade+1e-6 {
		t.Fatalf("X_D worst surge %v above its certificate %v",
			row.Worst[degradeSchemeEnvelope], r.CertifiedDegrade)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Degradation-envelope sweep", "degradation", "node", spec.String()} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestDegradationSweepDefaultsSpec(t *testing.T) {
	o := Quick()
	o.MaxScenarios = 10
	r := DegradationSweep(core.WorkloadSpec{Alpha: 1}, o)
	if !r.Spec.Degrades() || r.Spec.Alpha != 0.5 || r.Spec.Budget != 1 {
		t.Fatalf("inert spec not defaulted: %+v", r.Spec)
	}
	for _, row := range r.Rows {
		if row.Kind == "surge" {
			t.Fatalf("surge row present without a surge spec")
		}
	}
}
