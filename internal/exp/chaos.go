package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netem"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// ChaosSweepRow summarizes all seeded runs at one control-loss rate.
type ChaosSweepRow struct {
	Loss      float64 // control-packet drop probability
	Runs      int
	Converged int // runs where every router view reconverged
	// MeanReconfigMS / MaxReconfigMS aggregate the failure→converged
	// latencies across all runs (milliseconds).
	MeanReconfigMS float64
	MaxReconfigMS  float64
	// RefloodRounds is the mean retransmission rounds fired per run.
	RefloodRounds float64
	// CtrlKB is the mean control-plane bytes per run, in kilobytes.
	CtrlKB float64
	// DeliveredRatio is delivered ÷ offered bytes across all runs.
	DeliveredRatio float64
	// Violations counts invariant breaches across all runs (must be 0).
	Violations int
}

// ChaosLossSweep measures how the reliable notification flood degrades —
// or rather, refuses to degrade — as chaos drops an increasing fraction
// of control packets: for each loss rate it runs several seeded chaos
// emulations of the first two §5.3 Abilene failures and reports
// convergence, reconfiguration latency, re-flood overhead, goodput and
// invariant violations. One precompute is shared across every run.
func ChaosLossSweep(cfg EmulationConfig, losses []float64, runs int) []ChaosSweepRow {
	cfg.defaults()
	g := topo.Abilene()
	d := traffic.AbileneMatrix(g, cfg.TotalMbps)
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 2}, Iterations: cfg.Effort,
		PenaltyEnvelope: 1.1, Obs: cfg.Obs,
	})
	if err != nil {
		panic(err)
	}
	fails := abileneFailureSequence(g)[:2]
	stop := 2 * cfg.PhaseSeconds

	rows := make([]ChaosSweepRow, 0, len(losses))
	for _, loss := range losses {
		row := ChaosSweepRow{Loss: loss, Runs: runs}
		var sumReconfig float64
		var nReconfig int
		var sumRounds, sumCtrl, off, del int64
		for run := 0; run < runs; run++ {
			fw := netem.NewR3Distributed(plan)
			em := netem.New(netem.Config{
				G: g, Forwarder: fw, Seed: cfg.Seed, Obs: cfg.Obs,
				Chaos: netem.ChaosConfig{
					Enabled: true, Seed: cfg.Seed + int64(run),
					CtrlDrop: loss, CtrlJitter: 0.002,
				},
			})
			d.Pairs(func(a, b graph.NodeID, mbps float64) {
				em.AddCBRTraffic(a, b, mbps*1e6/8, stop)
			})
			for i, e := range fails {
				em.FailAt(float64(i)*cfg.PhaseSeconds/2+0.25, e)
			}
			em.Run(stop)

			converged := em.FloodConverged()
			want := fw.ViewFingerprint(0)
			for v := 1; converged && v < g.NumNodes(); v++ {
				if fw.ViewFingerprint(graph.NodeID(v)) != want {
					converged = false
				}
			}
			if converged {
				row.Converged++
			}
			for _, dt := range em.ReconfigTimes() {
				ms := dt * 1000
				sumReconfig += ms
				nReconfig++
				if ms > row.MaxReconfigMS {
					row.MaxReconfigMS = ms
				}
			}
			sumRounds += em.RefloodRoundsFired()
			sumCtrl += em.CtrlBytes
			for _, p := range em.Phases() {
				for _, b := range p.OfferedBytes {
					off += b
				}
				for _, b := range p.DeliveredBytes {
					del += b
				}
			}
			row.Violations += len(em.Violations())
		}
		if nReconfig > 0 {
			row.MeanReconfigMS = sumReconfig / float64(nReconfig)
		}
		row.RefloodRounds = float64(sumRounds) / float64(runs)
		row.CtrlKB = float64(sumCtrl) / float64(runs) / 1024
		if off > 0 {
			row.DeliveredRatio = float64(del) / float64(off)
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintChaosSweep renders the sweep as the r3emu -fig sweep table.
func PrintChaosSweep(rows []ChaosSweepRow, w io.Writer) {
	fmt.Fprintln(w, "# Chaos loss sweep: reliable flood under control-packet loss (Abilene, 2 failures)")
	fmt.Fprintln(w, "# loss%\tconverged\tmean_ms\tmax_ms\treflood\tctrl_KB\tdelivered\tviolations")
	for _, r := range rows {
		fmt.Fprintf(w, "%.0f\t%d/%d\t%.2f\t%.2f\t%.1f\t%.1f\t%.4f\t%d\n",
			r.Loss*100, r.Converged, r.Runs, r.MeanReconfigMS, r.MaxReconfigMS,
			r.RefloodRounds, r.CtrlKB, r.DeliveredRatio, r.Violations)
	}
}
