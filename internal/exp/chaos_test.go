package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosLossSweepShape runs a small sweep end-to-end and checks the
// table's structural guarantees: one row per loss rate, full convergence
// with the reliable flood at every tested loss, zero invariant
// violations, re-flood activity only when chaos can actually drop
// packets, and control overhead growing with the loss rate.
func TestChaosLossSweepShape(t *testing.T) {
	cfg := EmulationConfig{PhaseSeconds: 1, TotalMbps: 150, Effort: 40, Seed: 1}
	losses := []float64{0, 0.30}
	rows := ChaosLossSweep(cfg, losses, 3)

	if len(rows) != len(losses) {
		t.Fatalf("%d rows for %d loss rates", len(rows), len(losses))
	}
	for i, r := range rows {
		if r.Loss != losses[i] || r.Runs != 3 {
			t.Fatalf("row %d mislabeled: %+v", i, r)
		}
		if r.Converged != r.Runs {
			t.Errorf("loss %.0f%%: only %d/%d runs converged", r.Loss*100, r.Converged, r.Runs)
		}
		if r.Violations != 0 {
			t.Errorf("loss %.0f%%: %d invariant violations", r.Loss*100, r.Violations)
		}
		if r.MeanReconfigMS <= 0 || r.MaxReconfigMS < r.MeanReconfigMS {
			t.Errorf("loss %.0f%%: implausible reconfig latencies mean=%.3f max=%.3f",
				r.Loss*100, r.MeanReconfigMS, r.MaxReconfigMS)
		}
		if r.DeliveredRatio <= 0.9 || r.DeliveredRatio > 1.0 {
			t.Errorf("loss %.0f%%: delivered ratio %.4f outside (0.9, 1.0]", r.Loss*100, r.DeliveredRatio)
		}
	}
	if rows[1].CtrlKB <= rows[0].CtrlKB*0.5 {
		// Retransmissions replace the lost floods; overhead cannot collapse.
		t.Errorf("control overhead fell from %.1f KB to %.1f KB as loss rose", rows[0].CtrlKB, rows[1].CtrlKB)
	}

	var buf bytes.Buffer
	PrintChaosSweep(rows, &buf)
	out := buf.String()
	if !strings.Contains(out, "loss%") || strings.Count(out, "\n") != 2+len(rows) {
		t.Fatalf("unexpected sweep table:\n%s", out)
	}
	for _, want := range []string{"0\t3/3", "30\t3/3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
