package exp

import (
	"testing"
)

// TestRealWorkloadShape pins the paper's headline single-failure shape on
// the full US-ISP-like workload: the R3 family tracks the optimal detour
// baseline and stays well below OSPF reconvergence and the
// reachability-only schemes. Runs one day at moderate effort (~60s).
func TestRealWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload shape check skipped in -short mode")
	}
	o := Options{Effort: 150, OptIter: 40, MaxScenarios: 40, WeightOptRounds: 12, Days: 1, Seed: 1}
	w := NewUSISP(o)
	r := Figure3(w, 0, o)
	mean := map[string]float64{}
	for _, row := range r.Rows {
		for j, name := range r.Schemes {
			mean[name] += row[j] / float64(len(r.Rows))
		}
	}
	t.Logf("means: %v", mean)
	r3 := mean["MPLS-ff+R3"]
	// R3 tracks optimal within 40% on average.
	if r3 > mean["optimal"]*1.4 {
		t.Errorf("MPLS-ff+R3 mean %.3f above 1.4x optimal %.3f", r3, mean["optimal"])
	}
	// R3 beats OSPF reconvergence and every reachability-only scheme.
	for _, worse := range []string{"OSPF+recon", "OSPF+CSPF-detour", "FCP", "PathSplice"} {
		if r3 >= mean[worse] {
			t.Errorf("MPLS-ff+R3 mean %.3f not below %s %.3f", r3, worse, mean[worse])
		}
	}
}
