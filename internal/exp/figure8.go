package exp

import (
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// scaleToOptimalMLU rescales d in place so the optimal no-failure MLU on
// g equals target.
func scaleToOptimalMLU(g *graph.Graph, d *traffic.Matrix, target float64, o Options) {
	comms := routing.ODCommodities(g.NumNodes(), d.At)
	res := mcf.MinMLU(g, comms, mcf.Options{Iterations: 120})
	if res.MLU > 0 {
		d.Scale(target / res.MLU)
	}
}

// Figure8Result holds prioritized-R3 bottleneck intensities (paper
// Figure 8): for each scenario class (single failures, worst two-failure,
// worst four-failure), per traffic class and per plan (general vs
// prioritized), sorted ascending.
type Figure8Result struct {
	// Panels: "1-link", "2-link worst", "4-link worst".
	Panels []Figure8Panel
}

// Figure8Panel is one subplot.
type Figure8Panel struct {
	Title string
	// Series[label] is a sorted bottleneck intensity series; labels are
	// e.g. "TPRT (R3 with priority)".
	Labels []string
	Series [][]float64
}

// Figure8 evaluates prioritized R3 on the US-ISP-like workload with
// three traffic classes — TPRT (protect against 4 failures), TPP (2) and
// IP (1) — against general R3 that protects everything against one
// failure.
func Figure8(w *USISPWorkload, o Options) *Figure8Result {
	o = o.withDefaults()
	g := w.G
	peak := w.PeakInterval()
	total := w.Week[peak].Clone()
	classes := traffic.SplitClasses(total, 0.12, 0.22, o.Seed+23)

	// Protection levels follow the paper's example — TPRT tolerates four
	// failure events, TPP two, IP one — counted in directed links (each
	// bidirectional failure event takes two).
	prioritized, err := core.PrecomputePrioritized(g, []core.Priority{
		{Demand: classes[traffic.TPRT], F: 8},
		{Demand: classes[traffic.TPP], F: 4},
		{Demand: classes[traffic.IP], F: 2},
	}, core.Config{Iterations: o.Effort, PenaltyEnvelope: envelopeOf(o), Workers: o.Workers})
	if err != nil {
		panic(err)
	}
	general, err := core.Precompute(g, total, core.Config{
		Model: core.ArbitraryFailures{F: 2}, Iterations: o.Effort,
		PenaltyEnvelope: envelopeOf(o), Workers: o.Workers,
	})
	if err != nil {
		panic(err)
	}

	events := eval.SingleEvents(g)
	singles := events
	pairs := eval.AllPairs(events)
	if len(pairs) > o.MaxScenarios {
		pairs = eval.Sample(events, 2, o.MaxScenarios, o.Seed+51)
	}
	pairs = eval.FilterConnected(g, pairs)
	quads := eval.FilterConnected(g, eval.Sample(events, 4, o.MaxScenarios, o.Seed+52))

	// Worst scenarios ranked by the general plan's total bottleneck.
	top := func(scenarios []graph.LinkSet, n int) []graph.LinkSet {
		type sb struct {
			s graph.LinkSet
			b float64
		}
		ranked := make([]sb, len(scenarios))
		gs := &eval.R3Scheme{Label: "general", Plan: general}
		for i, sc := range scenarios {
			loads, _ := gs.Loads(sc, total)
			ranked[i] = sb{sc, bottleneck(g, sc, loads)}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].b > ranked[j].b })
		if n > len(ranked) {
			n = len(ranked)
		}
		out := make([]graph.LinkSet, n)
		for i := 0; i < n; i++ {
			out[i] = ranked[i].s
		}
		return out
	}

	res := &Figure8Result{}
	panels := []struct {
		title     string
		scenarios []graph.LinkSet
	}{
		{"Figure 8a: 1-link failure events", singles},
		{"Figure 8b: worst-case 2-failure scenarios", top(pairs, 100)},
		{"Figure 8c: worst-case 4-failure scenarios", top(quads, 100)},
	}
	classOrder := []traffic.Class{traffic.IP, traffic.TPP, traffic.TPRT}
	for _, p := range panels {
		panel := Figure8Panel{Title: p.title}
		series := map[string][]float64{}
		for _, sc := range p.scenarios {
			gen := eval.ClassBottlenecks(general, classes, sc)
			pri := eval.ClassBottlenecks(prioritized, classes, sc)
			for _, cls := range classOrder {
				series[cls.String()+" (general R3)"] = append(series[cls.String()+" (general R3)"], gen[cls])
				series[cls.String()+" (R3 with priority)"] = append(series[cls.String()+" (R3 with priority)"], pri[cls])
			}
		}
		for _, cls := range classOrder {
			for _, variant := range []string{" (general R3)", " (R3 with priority)"} {
				label := cls.String() + variant
				vals := series[label]
				sortFloats(vals)
				panel.Labels = append(panel.Labels, label)
				panel.Series = append(panel.Series, vals)
			}
		}
		res.Panels = append(res.Panels, panel)
	}
	return res
}

func bottleneck(g *graph.Graph, failed graph.LinkSet, loads []float64) float64 {
	worst := 0.0
	for e, l := range loads {
		if failed.Contains(graph.LinkID(e)) {
			continue
		}
		if u := l / g.Link(graph.LinkID(e)).Capacity; u > worst {
			worst = u
		}
	}
	return worst
}

func sortFloats(v []float64) { sort.Float64s(v) }

// Print writes all three panels.
func (r *Figure8Result) Print(w io.Writer) {
	for _, p := range r.Panels {
		printSeries(w, p.Title+" (sorted bottleneck intensity)", p.Labels, transpose(p.Series))
	}
}
