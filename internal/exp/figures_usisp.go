package exp

import (
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/protect"
	"repro/internal/traffic"
)

// usispSchemes builds the Fig 3/4/5 scheme lineup on the US-ISP-like
// workload: OSPF weights are optimized for the day, R3 plans cover the
// day's traffic envelope with the SRLG/MLG failure model.
func usispSchemes(w *USISPWorkload, day []*traffic.Matrix, k int, o Options) (*graph.Graph, []protect.Scheme) {
	g := w.G.Clone()
	optimizeDayWeights(g, day, o)
	env := envelopeTM(day)
	model := core.ModelFromGraph(g, k)

	mplsPlan, err := core.Precompute(g, env, core.Config{
		Model: model, Iterations: o.Effort, PenaltyEnvelope: envelopeOf(o),
		Workers: o.Workers, Obs: o.Obs,
	})
	if err != nil {
		panic(err)
	}
	ospfPlan := ospfR3PlanModel(g, env, model, o)

	schemes := []protect.Scheme{
		&protect.CSPFDetour{G: g},
		&protect.OSPFRecon{G: g},
		&protect.FCP{G: g},
		&protect.PathSplicing{G: g, Seed: o.Seed},
		&eval.R3Scheme{Label: "OSPF+R3", Plan: ospfPlan},
		&protect.OptDetour{G: g, Iterations: o.OptIter, Exact: o.ExactOpt, Obs: o.Obs},
		&eval.R3Scheme{Label: "MPLS-ff+R3", Plan: mplsPlan},
	}
	return g, schemes
}

// Figure3Result is the normalized worst-case bottleneck per interval per
// scheme over one day (paper Figure 3).
type Figure3Result struct {
	Schemes []string
	// Rows[i][j] is interval i's normalized worst-case bottleneck for
	// scheme j; the last column is the optimal-with-failure line.
	Rows [][]float64
}

// Figure3 reproduces the single-failure time series for the US-ISP-like
// network: per hourly interval, the worst bottleneck over all single
// failure events (SRLGs and MLGs), normalized by the highest no-failure
// optimal bottleneck in the trace.
func Figure3(w *USISPWorkload, dayIdx int, o Options) *Figure3Result {
	o = o.withDefaults()
	day := w.Day(dayIdx)
	g, schemes := usispSchemes(w, day, 1, o)
	events := eval.SingleEvents(g)
	en := &eval.Engine{G: g, Schemes: schemes, OptimalIterations: o.OptIter, ExactOptimal: o.ExactOpt, Workers: o.Workers, Shards: o.Shards, Obs: o.Obs}

	// Normalization constant: highest no-failure optimal bottleneck.
	norm := 0.0
	opt := &protect.Optimal{G: g, Iterations: o.OptIter}
	for _, d := range day {
		loads, _ := opt.Loads(graph.LinkSet{}, d)
		if b := protect.Bottleneck(g, graph.LinkSet{}, loads); b > norm {
			norm = b
		}
	}

	res := &Figure3Result{Schemes: append(append([]string(nil), SchemeOrder...), "optimal")}
	for _, d := range day {
		results := en.Evaluate(d, events)
		worst := eval.WorstCase(results)
		row := make([]float64, 0, len(res.Schemes))
		for _, name := range SchemeOrder {
			row = append(row, worst[name]/norm)
		}
		// Optimal-with-failure line: worst over events of the optimal
		// bottleneck.
		wOpt := 0.0
		for _, r := range results {
			if r.Optimal > wOpt {
				wOpt = r.Optimal
			}
		}
		row = append(row, wOpt/norm)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print writes the series.
func (r *Figure3Result) Print(w io.Writer) {
	printSeries(w, "Figure 3: normalized worst-case bottleneck, single failure events, one day (US-ISP-like)", r.Schemes, r.Rows)
}

// Figure4Result is the sorted per-interval performance ratio over a week
// (paper Figure 4).
type Figure4Result struct {
	Schemes []string
	// Sorted[j] is scheme j's ascending per-interval ratio series.
	Sorted [][]float64
}

// Figure4 reproduces the week-long single-failure summary: for every
// hourly interval, each scheme's worst-case bottleneck over single
// failure events is divided by the worst-case optimal bottleneck, and the
// 168 ratios are reported sorted.
func Figure4(w *USISPWorkload, o Options) *Figure4Result {
	o = o.withDefaults()
	res := &Figure4Result{Schemes: append([]string(nil), SchemeOrder...)}
	perScheme := make(map[string][]float64)

	for day := 0; day < o.Days; day++ {
		dayTMs := w.Day(day)
		g, schemes := usispSchemes(w, dayTMs, 1, o)
		events := eval.SingleEvents(g)
		en := &eval.Engine{G: g, Schemes: schemes, OptimalIterations: o.OptIter, ExactOptimal: o.ExactOpt, Workers: o.Workers, Shards: o.Shards, Obs: o.Obs}
		for _, d := range dayTMs {
			results := en.Evaluate(d, events)
			worst := eval.WorstCase(results)
			wOpt := 0.0
			for _, r := range results {
				if r.Optimal > wOpt {
					wOpt = r.Optimal
				}
			}
			for _, name := range SchemeOrder {
				ratio := 1.0
				if wOpt > 0 {
					ratio = worst[name] / wOpt
					if ratio < 1 {
						ratio = 1
					}
				}
				perScheme[name] = append(perScheme[name], ratio)
			}
		}
	}
	for _, name := range SchemeOrder {
		s := perScheme[name]
		sort.Float64s(s)
		res.Sorted = append(res.Sorted, s)
	}
	return res
}

// Print writes the sorted ratio series, one x per interval rank.
func (r *Figure4Result) Print(w io.Writer) {
	rows := make([][]float64, len(r.Sorted[0]))
	for i := range rows {
		row := make([]float64, len(r.Schemes))
		for j := range r.Schemes {
			row[j] = r.Sorted[j][i]
		}
		rows[i] = row
	}
	printSeries(w, "Figure 4: sorted performance ratio, single failure events, one week (US-ISP-like)", r.Schemes, rows)
}

// MultiFailureResult is the sorted performance ratio across multi-failure
// scenarios (Figures 5, 6 and 7).
type MultiFailureResult struct {
	Title   string
	Schemes []string
	Sorted  [][]float64
}

// Print writes the sorted series.
func (r *MultiFailureResult) Print(w io.Writer) {
	rows := make([][]float64, len(r.Sorted[0]))
	for i := range rows {
		row := make([]float64, len(r.Schemes))
		for j := range r.Schemes {
			row[j] = r.Sorted[j][i]
		}
		rows[i] = row
	}
	printSeries(w, r.Title, r.Schemes, rows)
}

// multiFailure evaluates sorted performance ratios for scenarios built
// from base events.
func multiFailure(title string, g *graph.Graph, schemes []protect.Scheme, d *traffic.Matrix, scenarios []graph.LinkSet, o Options) *MultiFailureResult {
	en := &eval.Engine{G: g, Schemes: schemes, OptimalIterations: o.OptIter, ExactOptimal: o.ExactOpt, Workers: o.Workers, Shards: o.Shards, Obs: o.Obs}
	results := en.Evaluate(d, scenarios)
	res := &MultiFailureResult{Title: title, Schemes: schemeNames(schemes)}
	for _, name := range res.Schemes {
		res.Sorted = append(res.Sorted, eval.SortedRatios(results, name))
	}
	return res
}

func schemeNames(schemes []protect.Scheme) []string {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.Name()
	}
	return names
}

// Figure5 reproduces the US-ISP multi-failure evaluation at the weekly
// peak hour: all pairs of failure events (capped at MaxScenarios by
// sampling) and sampled triples.
func Figure5(w *USISPWorkload, failures int, o Options) *MultiFailureResult {
	o = o.withDefaults()
	peak := w.PeakInterval()
	day := w.Day(peak / 24)
	g, schemes := usispSchemes(w, day, failures, o)
	events := eval.SingleEvents(g)

	var scenarios []graph.LinkSet
	if failures == 2 {
		scenarios = eval.AllPairs(events)
		if len(scenarios) > o.MaxScenarios {
			scenarios = eval.Sample(events, 2, o.MaxScenarios, o.Seed+41)
		}
	} else {
		scenarios = eval.Sample(events, failures, o.MaxScenarios, o.Seed+42)
	}
	scenarios = eval.FilterConnected(g, scenarios)
	title := "Figure 5a: sorted performance ratio, two failures, US-ISP-like peak hour"
	if failures != 2 {
		title = "Figure 5b: sorted performance ratio, sampled three failures, US-ISP-like peak hour"
	}
	return multiFailure(title, g, schemes, w.Week[peak], scenarios, o)
}

// Figure9Result is the no-failure normalized MLU time series (paper
// Figure 9): R3 without penalty envelope, OSPF with optimized weights, R3
// with the envelope, and optimal.
type Figure9Result struct {
	Schemes []string
	Rows    [][]float64
}

// Figure9 demonstrates the penalty envelope: a week of no-failure
// intervals comparing R3 with and without the 10% envelope against OSPF
// and optimal routing.
func Figure9(w *USISPWorkload, beta float64, o Options) *Figure9Result {
	o = o.withDefaults()
	res := &Figure9Result{Schemes: []string{"R3 no PE", "OSPF", "R3", "optimal"}}

	var norm float64
	type interval struct {
		vals [4]float64
	}
	var rows []interval
	for day := 0; day < o.Days; day++ {
		dayTMs := w.Day(day)
		g := w.G.Clone()
		optimizeDayWeights(g, dayTMs, o)
		env := envelopeTM(dayTMs)
		model := core.ModelFromGraph(g, 1)
		noPE, err := core.Precompute(g, env, core.Config{Model: model, Iterations: o.Effort, Workers: o.Workers})
		if err != nil {
			panic(err)
		}
		withPE, err := core.Precompute(g, env, core.Config{Model: model, Iterations: o.Effort, PenaltyEnvelope: beta, Workers: o.Workers})
		if err != nil {
			panic(err)
		}
		opt := &protect.Optimal{G: g, Iterations: o.OptIter}
		recon := &protect.OSPFRecon{G: g}
		none := graph.LinkSet{}
		for _, d := range dayTMs {
			var iv interval
			// R3 base routings under this interval's traffic.
			iv.vals[0] = planBottleneck(noPE, d)
			ol, _ := recon.Loads(none, d)
			iv.vals[1] = protect.Bottleneck(g, none, ol)
			iv.vals[2] = planBottleneck(withPE, d)
			opl, _ := opt.Loads(none, d)
			iv.vals[3] = protect.Bottleneck(g, none, opl)
			if iv.vals[3] > norm {
				norm = iv.vals[3]
			}
			rows = append(rows, iv)
		}
	}
	for _, iv := range rows {
		row := make([]float64, 4)
		for j := range row {
			row[j] = iv.vals[j] / norm
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// planBottleneck is a plan's base-routing bottleneck under demand d with
// no failures.
func planBottleneck(plan *core.Plan, d *traffic.Matrix) float64 {
	fl := plan.Base.Clone()
	fl.SetDemands(d.At)
	return protect.Bottleneck(plan.G, graph.LinkSet{}, fl.Loads())
}

// Print writes the series.
func (r *Figure9Result) Print(w io.Writer) {
	printSeries(w, "Figure 9: normalized no-failure MLU over a week (penalty envelope)", r.Schemes, r.Rows)
}

// Figure10Result compares R3 on two base routings (paper Figure 10).
type Figure10Result struct {
	Schemes []string
	// SortedSingle and SortedDouble are ascending normalized MLU series.
	SortedSingle [][]float64
	SortedDouble [][]float64
}

// Figure10 shows base-routing robustness: OSPFInvCap+R3 versus
// optimized-OSPF+R3 at the peak hour, across single failure events and
// event pairs, as sorted normalized bottleneck intensity.
func Figure10(w *USISPWorkload, o Options) *Figure10Result {
	o = o.withDefaults()
	peak := w.PeakInterval()
	day := w.Day(peak / 24)
	d := w.Week[peak]
	env := envelopeTM(day)

	// Optimized-weight base.
	gOpt := w.G.Clone()
	optimizeDayWeights(gOpt, day, o)
	model := core.ModelFromGraph(gOpt, 1)
	planOpt := ospfR3PlanModel(gOpt, env, model, o)

	// Inverse-capacity base.
	gInv := w.G.Clone()
	invCapWeights(gInv)
	planInv := ospfR3PlanModel(gInv, env, core.ModelFromGraph(gInv, 1), o)

	schemes := []protect.Scheme{
		&eval.R3Scheme{Label: "OSPFInvCap+R3", Plan: planInv},
		&eval.R3Scheme{Label: "OSPF+R3", Plan: planOpt},
	}

	// Normalization: the peak interval's optimal no-failure bottleneck.
	opt := &protect.Optimal{G: gOpt, Iterations: o.OptIter}
	ol, _ := opt.Loads(graph.LinkSet{}, d)
	norm := protect.Bottleneck(gOpt, graph.LinkSet{}, ol)

	events := eval.SingleEvents(w.G)
	res := &Figure10Result{Schemes: schemeNames(schemes)}
	res.SortedSingle = sortedNormalized(gOpt, schemes, d, events, norm)
	pairs := eval.AllPairs(events)
	if len(pairs) > o.MaxScenarios {
		pairs = eval.Sample(events, 2, o.MaxScenarios, o.Seed+43)
	}
	pairs = eval.FilterConnected(w.G, pairs)
	res.SortedDouble = sortedNormalized(gOpt, schemes, d, pairs, norm)
	return res
}

func sortedNormalized(g *graph.Graph, schemes []protect.Scheme, d *traffic.Matrix, scenarios []graph.LinkSet, norm float64) [][]float64 {
	out := make([][]float64, len(schemes))
	for j, s := range schemes {
		vals := make([]float64, len(scenarios))
		for i, sc := range scenarios {
			loads, _ := s.Loads(sc, d)
			vals[i] = protect.Bottleneck(g, sc, loads) / norm
		}
		sort.Float64s(vals)
		out[j] = vals
	}
	return out
}

// Print writes both panels.
func (r *Figure10Result) Print(w io.Writer) {
	rows := transpose(r.SortedSingle)
	printSeries(w, "Figure 10a: sorted normalized bottleneck, single failure events", r.Schemes, rows)
	rows = transpose(r.SortedDouble)
	printSeries(w, "Figure 10b: sorted normalized bottleneck, two failure events", r.Schemes, rows)
}

func transpose(cols [][]float64) [][]float64 {
	if len(cols) == 0 {
		return nil
	}
	rows := make([][]float64, len(cols[0]))
	for i := range rows {
		row := make([]float64, len(cols))
		for j := range cols {
			row[j] = cols[j][i]
		}
		rows[i] = row
	}
	return rows
}

// ospfR3PlanModel is ospfR3Plan with an explicit failure model.
func ospfR3PlanModel(g *graph.Graph, d *traffic.Matrix, model core.FailureModel, o Options) *core.Plan {
	comms := odComms(g, d)
	base := ecmpFlow(g, comms)
	plan, err := core.Precompute(g, d, core.Config{
		Model: model, BaseRouting: base, Iterations: o.Effort,
		Workers: o.Workers, Obs: o.Obs,
	})
	if err != nil {
		panic(err)
	}
	return plan
}
