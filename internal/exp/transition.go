package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netem"
	"repro/internal/topo"
	"repro/internal/traffic"
	"repro/internal/transition"
)

// TransitionRun is one seeded comparison of staged vs one-shot activation
// of the same failure set under the same chaos.
type TransitionRun struct {
	Seed int64
	// StagedPeak and OneShotPeak are the worst measured link utilization
	// over the transition window, on an identical measurement grid.
	StagedPeak, OneShotPeak float64
	// StagedDropKB and OneShotDropKB are bytes dropped over the window
	// (blackholes plus queue overflow), in kilobytes.
	StagedDropKB, OneShotDropKB float64
	// Match reports that both runs converged and the staged end state is
	// byte-identical to one-shot activation.
	Match      bool
	Violations int
}

// TransitionSummary aggregates a TransitionSweep.
type TransitionSummary struct {
	Rounds         int     // staged rounds k
	TransientMLU   float64 // the scheduler's analytic transient bound
	CongestionFree bool    // every round analytically congestion-free
	WireKB         float64 // staged round deltas over the wire
	Runs           []TransitionRun
	StagedWorse    int // runs where the staged peak exceeded one-shot's
	Matches        int
	Violations     int
}

// transientTol absorbs measurement noise (packet quantization on the
// shared 100 ms grid) when comparing staged vs one-shot peaks.
const transientTol = 0.02

// TransitionSweep compares staged against one-shot activation of the §5.3
// Houston–KansasCity + Chicago–Indianapolis duplex failures on Abilene
// across seeded chaos runs. The staged run takes the links down silently
// and delivers the transition scheduler's rounds through the staged-round
// flood; the one-shot run uses the classic failure-notification flood, so
// every router reconfigures the moment it hears. Both runs share the
// traffic seed and chaos seed and are measured on an identical 100 ms
// grid, so the per-seed peak-utilization comparison isolates the
// activation strategy.
func TransitionSweep(cfg EmulationConfig, seeds int) *TransitionSummary {
	cfg.defaults()
	g := topo.Abilene()
	d := traffic.AbileneMatrix(g, cfg.TotalMbps)
	plan, err := core.Precompute(g, d, core.Config{
		Model: core.ArbitraryFailures{F: 2}, Iterations: cfg.Effort,
		PenaltyEnvelope: 1.1, Obs: cfg.Obs,
	})
	if err != nil {
		panic(err)
	}
	canon := abileneFailureSequence(g)[:2]
	var fails []graph.LinkID
	for _, e := range canon {
		fails = append(fails, e, g.Link(e).Reverse)
	}
	seq, err := transition.Schedule(plan, fails, transition.Options{SkipCertify: true, Obs: cfg.Obs})
	if err != nil {
		panic(err)
	}

	sum := &TransitionSummary{
		Rounds: len(seq.Rounds), TransientMLU: seq.TransientMLU,
		CongestionFree: seq.CongestionFree, WireKB: float64(seq.WireBytes()) / 1024,
	}

	// The transient plays out on a sub-second scale regardless of
	// cfg.PhaseSeconds: one warmup second, rounds 250 ms apart, then a
	// settling tail.
	const (
		warmup   = 1.0
		roundGap = 0.25
		tail     = 1.2
		binW     = 0.1
	)
	stop := warmup + roundGap*float64(len(seq.Rounds)) + tail

	drive := func(chaos netem.ChaosConfig, staged bool) (*netem.Emulator, *netem.R3DistributedForwarder) {
		fw := netem.NewR3Distributed(plan)
		em := netem.New(netem.Config{G: g, Forwarder: fw, Seed: cfg.Seed, Obs: cfg.Obs, Chaos: chaos})
		d.Pairs(func(a, b graph.NodeID, mbps float64) {
			em.AddCBRTraffic(a, b, mbps*1e6/8, stop)
		})
		if staged {
			em.FailAtSilent(warmup, canon...)
			for i, r := range seq.Rounds {
				em.StageRoundAt(warmup+0.02+float64(i)*roundGap, 0, r.Seq, r.Delta)
			}
		} else {
			for _, e := range canon {
				em.FailAt(warmup, e)
			}
		}
		for t := warmup + binW; t < stop; t += binW {
			em.MarkPhaseAt(t)
		}
		em.Run(stop)
		return em, fw
	}

	for s := 0; s < seeds; s++ {
		chaos := cfg.Chaos
		if !chaos.Enabled {
			chaos = netem.ChaosConfig{Enabled: true, CtrlDrop: 0.20, CtrlDup: 0.10, CtrlJitter: 0.002}
		}
		chaos.Seed += int64(s)
		run := TransitionRun{Seed: chaos.Seed}

		emS, fwS := drive(chaos, true)
		emO, fwO := drive(chaos, false)

		var sDrop, oDrop int64
		run.StagedPeak, sDrop = transientPeak(emS, g, warmup)
		run.OneShotPeak, oDrop = transientPeak(emO, g, warmup)
		run.StagedDropKB = float64(sDrop) / 1024
		run.OneShotDropKB = float64(oDrop) / 1024
		run.Match = emS.StagesConverged() && emO.FloodConverged() &&
			fwS.ViewFingerprint(0) == fwO.ViewFingerprint(0)
		run.Violations = len(emS.Violations()) + len(emO.Violations())

		if run.Match {
			sum.Matches++
		}
		if run.StagedPeak > run.OneShotPeak+transientTol {
			sum.StagedWorse++
		}
		sum.Violations += run.Violations
		sum.Runs = append(sum.Runs, run)
	}
	return sum
}

// transientPeak scans the measurement phases from the failure instant on
// and returns the worst per-link utilization plus total dropped bytes.
func transientPeak(em *netem.Emulator, g *graph.Graph, from float64) (peak float64, dropBytes int64) {
	for _, p := range em.Phases() {
		if p.End <= from+1e-9 || p.Duration() < 0.005 {
			continue
		}
		for e, b := range p.LinkBytes {
			u := float64(b) * 8 / p.Duration() / 1e6 / g.Link(graph.LinkID(e)).Capacity
			if u > peak {
				peak = u
			}
		}
		for _, b := range p.DropsByDst {
			dropBytes += b
		}
	}
	return peak, dropBytes
}

// PrintTransitionSweep renders the sweep as the r3emu -transition table.
func PrintTransitionSweep(sum *TransitionSummary, w io.Writer) {
	fmt.Fprintf(w, "# Staged vs one-shot activation (Abilene, Houston-KC + Chicago-Indy duplex failures)\n")
	fmt.Fprintf(w, "# rounds=%d scheduler_transient_mlu=%.4f congestion_free=%v wire_KB=%.1f\n",
		sum.Rounds, sum.TransientMLU, sum.CongestionFree, sum.WireKB)
	fmt.Fprintln(w, "# seed\tstaged_peak\toneshot_peak\tstaged_dropKB\toneshot_dropKB\tmatch")
	for _, r := range sum.Runs {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.1f\t%.1f\t%v\n",
			r.Seed, r.StagedPeak, r.OneShotPeak, r.StagedDropKB, r.OneShotDropKB, r.Match)
	}
	fmt.Fprintf(w, "# staged peak <= one-shot peak in %d/%d runs; end states match in %d/%d; violations %d\n",
		len(sum.Runs)-sum.StagedWorse, len(sum.Runs), sum.Matches, len(sum.Runs), sum.Violations)
}
