package exp

import (
	"os"
	"testing"
)

// TestTransitionSweep is the acceptance check for staged activation:
// across 32 chaos seeds on Abilene under the 2-duplex-link failure, the
// staged rollout's measured transient peak never exceeds one-shot
// activation's, every run's staged end state is byte-identical to
// one-shot, and the invariant checker stays silent.
func TestTransitionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("64 seeded emulation runs")
	}
	sum := TransitionSweep(EmulationConfig{TotalMbps: 220, Effort: 80, Seed: 1}, 32)
	if testing.Verbose() {
		PrintTransitionSweep(sum, os.Stdout)
	}
	if sum.Rounds == 0 {
		t.Fatal("scheduler produced no rounds")
	}
	if sum.Rounds > 4 {
		t.Fatalf("scheduler needed %d rounds, want <= 4", sum.Rounds)
	}
	if !sum.CongestionFree {
		t.Fatalf("transition not congestion-free: transient MLU %.4f", sum.TransientMLU)
	}
	if sum.TransientMLU > 1+1e-6 {
		t.Fatalf("scheduler transient MLU %.4f > 1", sum.TransientMLU)
	}
	if sum.StagedWorse != 0 {
		t.Fatalf("staged transient peak exceeded one-shot in %d/%d runs", sum.StagedWorse, len(sum.Runs))
	}
	if sum.Matches != len(sum.Runs) {
		t.Fatalf("staged end state matched one-shot in only %d/%d runs", sum.Matches, len(sum.Runs))
	}
	if sum.Violations != 0 {
		t.Fatalf("%d invariant violations across the sweep", sum.Violations)
	}
	if sum.WireKB <= 0 {
		t.Fatal("staged rounds reported no wire bytes")
	}
}
