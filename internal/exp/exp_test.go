package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
)

// miniUSISP swaps the workload topology for a small mesh so the figure
// drivers run in test time; restore puts the real topology back.
func miniUSISP(t *testing.T) {
	t.Helper()
	old := graphUSISP
	graphUSISP = func() *graph.Graph {
		g := graph.New("US-ISP-mini")
		n := make([]graph.NodeID, 8)
		for i := range n {
			n[i] = g.AddNode(string(rune('A' + i)))
		}
		for i := 0; i < 8; i++ {
			g.AddDuplex(n[i], n[(i+1)%8], 1000, 2, 1)
		}
		for i := 0; i < 4; i++ {
			g.AddDuplex(n[i], n[i+4], 1000, 3, 1)
		}
		// SRLG per duplex pair (fiber cuts) and one maintenance group.
		// No multi-pair conduit groups: on a graph this small they make
		// congestion-free protection impossible at any useful load and
		// would test nothing but overload behavior.
		for _, l := range g.Links() {
			if l.Reverse > l.ID {
				g.AddSRLG(l.ID, l.Reverse)
			}
		}
		g.AddMLG(4, 5)
		return g
	}
	t.Cleanup(func() { graphUSISP = old })
}

func tinyOpts() Options {
	return Options{Effort: 50, OptIter: 30, MaxScenarios: 20, WeightOptRounds: 4, Days: 1, Seed: 1}
}

func TestTable1Print(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Abilene", "Level3", "SBC", "UUNet", "Generated", "US-ISP", "336"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ForAbilene(t *testing.T) {
	rows := Table2For([]*graph.Graph{topo.Abilene()}, tinyOpts())
	if len(rows) != 1 || rows[0].Network != "Abilene" {
		t.Fatalf("rows = %+v", rows)
	}
	for f, s := range rows[0].Seconds {
		if s <= 0 {
			t.Fatalf("F=%d time %v", f+1, s)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "F=6") {
		t.Fatalf("missing header: %s", buf.String())
	}
}

func TestTable3ForAbilene(t *testing.T) {
	rows := Table3For([]*graph.Graph{topo.Abilene()}, tinyOpts())
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	s := rows[0].Storage
	if s.TotalILM != 28 {
		t.Fatalf("TotalILM = %d, want 28 (Table 3's Abilene #ILM)", s.TotalILM)
	}
	if s.FIBBytes <= 0 || s.RIBBytes <= 0 {
		t.Fatalf("storage: %+v", s)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Abilene") {
		t.Fatalf("print: %s", buf.String())
	}
}

func TestUSISPWorkloadScaling(t *testing.T) {
	miniUSISP(t)
	w := NewUSISP(tinyOpts())
	if len(w.Week) != 168 {
		t.Fatalf("week = %d intervals", len(w.Week))
	}
	if w.PeakInterval() < 0 || w.PeakInterval() >= 168 {
		t.Fatalf("peak = %d", w.PeakInterval())
	}
	if w.G.NumNodes() != 8 {
		t.Fatalf("mini workload not in effect")
	}
}

func TestFigure3Shape(t *testing.T) {
	miniUSISP(t)
	o := tinyOpts()
	w := NewUSISP(o)
	r := Figure3(w, 0, o)
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if len(r.Schemes) != len(SchemeOrder)+1 {
		t.Fatalf("schemes = %v", r.Schemes)
	}
	// Key paper claim: R3's worst case stays below OSPF reconvergence on
	// average (at least 20% better here).
	reconIdx := indexOf(r.Schemes, "OSPF+recon")
	r3Idx := indexOf(r.Schemes, "MPLS-ff+R3")
	var reconSum, r3Sum float64
	for _, row := range r.Rows {
		reconSum += row[reconIdx]
		r3Sum += row[r3Idx]
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad value %v", v)
			}
		}
	}
	// On a graph this small OSPF reconvergence approaches optimal
	// rerouting, so R3 only has to stay competitive here; the paper's
	// strict ordering is pinned on the full workload by
	// TestRealWorkloadShape.
	if r3Sum > reconSum*1.1 {
		t.Fatalf("R3 mean %.3f not competitive with recon mean %.3f", r3Sum/24, reconSum/24)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatalf("print header missing")
	}
}

func TestFigure4Shape(t *testing.T) {
	miniUSISP(t)
	o := tinyOpts()
	w := NewUSISP(o)
	r := Figure4(w, o)
	if len(r.Sorted) != len(SchemeOrder) {
		t.Fatalf("series = %d", len(r.Sorted))
	}
	for j, s := range r.Sorted {
		if len(s) != o.Days*24 {
			t.Fatalf("series %d has %d points", j, len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("series %d not sorted", j)
			}
		}
		if s[0] < 1 {
			t.Fatalf("ratio below 1: %v", s[0])
		}
	}
	// R3's final (worst) ratio should not exceed OSPF+recon's.
	recon := r.Sorted[indexOf(r.Schemes, "OSPF+recon")]
	r3 := r.Sorted[indexOf(r.Schemes, "MPLS-ff+R3")]
	if r3[len(r3)-1] > recon[len(recon)-1]+0.25 {
		t.Fatalf("R3 worst ratio %.3f far above recon %.3f", r3[len(r3)-1], recon[len(recon)-1])
	}
}

func TestFigure5Shape(t *testing.T) {
	miniUSISP(t)
	o := tinyOpts()
	w := NewUSISP(o)
	r := Figure5(w, 2, o)
	if len(r.Sorted) != len(SchemeOrder) {
		t.Fatalf("series = %d", len(r.Sorted))
	}
	if len(r.Sorted[0]) == 0 {
		t.Fatalf("no scenarios")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "two failures") {
		t.Fatalf("title missing")
	}
}

func TestFigure8Shape(t *testing.T) {
	miniUSISP(t)
	o := tinyOpts()
	w := NewUSISP(o)
	r := Figure8(w, o)
	if len(r.Panels) != 3 {
		t.Fatalf("panels = %d", len(r.Panels))
	}
	for _, p := range r.Panels {
		if len(p.Labels) != 6 {
			t.Fatalf("labels = %v", p.Labels)
		}
		for _, s := range p.Series {
			for i := 1; i < len(s); i++ {
				if s[i] < s[i-1] {
					t.Fatalf("series not sorted in %s", p.Title)
				}
			}
		}
	}
	// Under the worst 4-event scenarios, prioritized TPRT should do at
	// least as well as general TPRT at the median (this mini graph
	// partitions under 8-link scenarios, so tails measure partition
	// artifacts, not protection quality).
	p4 := r.Panels[2]
	gen := seriesFor(p4, "TPRT (general R3)")
	pri := seriesFor(p4, "TPRT (R3 with priority)")
	if len(gen) > 0 && len(pri) > 0 {
		if pri[len(pri)/2] > gen[len(gen)/2]*2+0.05 {
			t.Fatalf("prioritized TPRT median %.3f much worse than general %.3f",
				pri[len(pri)/2], gen[len(gen)/2])
		}
	}
}

func seriesFor(p Figure8Panel, label string) []float64 {
	for i, l := range p.Labels {
		if l == label {
			return p.Series[i]
		}
	}
	return nil
}

func TestFigure9Shape(t *testing.T) {
	miniUSISP(t)
	o := tinyOpts()
	w := NewUSISP(o)
	r := Figure9(w, 1.1, o)
	if len(r.Rows) != o.Days*24 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// With-envelope R3 should track optimal more closely than
	// no-envelope R3 on average.
	var noPE, withPE, opt float64
	for _, row := range r.Rows {
		noPE += row[0]
		withPE += row[2]
		opt += row[3]
	}
	if withPE > noPE+1e-9 {
		t.Fatalf("envelope made normal case worse on average: %.4f vs %.4f", withPE, noPE)
	}
	if opt <= 0 {
		t.Fatalf("optimal column empty")
	}
}

func TestFigure10Shape(t *testing.T) {
	miniUSISP(t)
	o := tinyOpts()
	w := NewUSISP(o)
	r := Figure10(w, o)
	if len(r.SortedSingle) != 2 || len(r.SortedDouble) != 2 {
		t.Fatalf("series missing")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "OSPFInvCap+R3") {
		t.Fatalf("scheme missing from print")
	}
}

func TestEmulationR3(t *testing.T) {
	r := RunEmulation("MPLS-ff+R3", EmulationConfig{PhaseSeconds: 2, Effort: 60, Seed: 1})
	if len(r.Phases) != 4 {
		t.Fatalf("phases = %d", len(r.Phases))
	}
	// R3 keeps post-failure loss tiny.
	for ph := 1; ph < 4; ph++ {
		if lr := r.LossRate(ph); lr > 0.05 {
			t.Fatalf("phase %d loss %.4f", ph, lr)
		}
	}
	if len(r.RTT) == 0 {
		t.Fatalf("no RTT samples")
	}
	var buf bytes.Buffer
	Figure11(r, &buf)
	Figure12(r, &buf)
	out := buf.String()
	for _, want := range []string{"Figure 11a", "Figure 11b", "Figure 11c", "Figure 12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestEmulationFigure13(t *testing.T) {
	cfg := EmulationConfig{PhaseSeconds: 2, Effort: 60, Seed: 1}
	r3 := RunEmulation("MPLS-ff+R3", cfg)
	ospf := RunEmulation("OSPF+recon", cfg)
	var buf bytes.Buffer
	Figure13(r3, ospf, &buf)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatalf("missing header")
	}
	// OSPF reconvergence loses more during the three-failure run.
	var r3Loss, ospfLoss float64
	for ph := 1; ph < 4; ph++ {
		r3Loss += r3.LossRate(ph)
		ospfLoss += ospf.LossRate(ph)
	}
	if ospfLoss < r3Loss {
		t.Fatalf("OSPF loss %.4f below R3 %.4f", ospfLoss, r3Loss)
	}
}

func TestAblations(t *testing.T) {
	o := tinyOpts()
	gap := SolverGap(o)
	if gap.FWMLU < gap.LPMLU-1e-6 {
		t.Fatalf("FW beat exact LP: %+v", gap)
	}
	if gap.GapPercent > 25 {
		t.Fatalf("solver gap %.1f%% too large", gap.GapPercent)
	}

	sweep := EnvelopeSweep([]float64{1.0, 1.2, math.Inf(1)}, o)
	if len(sweep) != 3 {
		t.Fatalf("sweep rows = %d", len(sweep))
	}
	// Tighter envelopes give better normal-case MLU.
	if sweep[0].NormalMLU > sweep[2].NormalMLU+0.05 {
		t.Fatalf("beta=1.0 normal MLU %.4f worse than no envelope %.4f",
			sweep[0].NormalMLU, sweep[2].NormalMLU)
	}

	vd := VirtualDemand(o)
	if vd.Naive < vd.TopF {
		t.Fatalf("naive envelope cheaper than top-F: %+v", vd)
	}

	hs := HashSplit([]int{4, 6, 10}, 20000, o)
	if len(hs) != 3 {
		t.Fatalf("hash rows = %d", len(hs))
	}
	if hs[2].MaxError > hs[0].MaxError+0.02 {
		t.Fatalf("wider hash not more accurate: %+v", hs)
	}
	var buf bytes.Buffer
	gap.Print(&buf)
	PrintEnvelopeSweep(&buf, sweep)
	vd.Print(&buf)
	PrintHashSplit(&buf, hs)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatalf("ablation prints empty")
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}
