package exp

import (
	"os"
	"strings"
	"testing"
)

// TestSwapSweep is the acceptance check for staged plan swaps: on the
// crossing-commodities construct (both endpoints feasible, one-shot
// mixing envelope 1.2) the scheduler decomposes into >= 2 analytically
// congestion-free rounds, every chaos run's staged end state is
// byte-identical to the one-shot install, and the invariant checker
// stays silent.
func TestSwapSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seeded emulation runs")
	}
	sum := SwapSweep(EmulationConfig{Effort: 30, Seed: 1}, 8)
	if testing.Verbose() {
		PrintSwapSweep(sum, os.Stdout)
	}
	if sum.Rounds < 2 {
		t.Fatalf("scheduler produced %d rounds, want >= 2", sum.Rounds)
	}
	if !sum.CongestionFree {
		t.Fatalf("swap not congestion-free: transient MLU %.4f", sum.TransientMLU)
	}
	if sum.TransientMLU > 1+1e-6 {
		t.Fatalf("scheduler transient MLU %.4f > 1", sum.TransientMLU)
	}
	if sum.OneShotMLU <= 1 {
		t.Fatalf("construct broken: one-shot mixing envelope %.4f not over capacity", sum.OneShotMLU)
	}
	if sum.Matches != len(sum.Runs) {
		t.Fatalf("staged end state matched one-shot in only %d/%d runs", sum.Matches, len(sum.Runs))
	}
	if sum.Violations != 0 {
		t.Fatalf("%d invariant violations across the sweep", sum.Violations)
	}
	if sum.WireKB <= 0 {
		t.Fatal("staged rounds reported no wire bytes")
	}
}

// TestPrintSwapSweepShape pins the table header so the r3emu -swap output
// stays machine-greppable.
func TestPrintSwapSweepShape(t *testing.T) {
	sum := &SwapSummary{Rounds: 2, CongestionFree: true, OneShotMLU: 1.2, WireKB: 1,
		Runs: []SwapRun{{Seed: 1, Match: true}}, Matches: 1}
	var b strings.Builder
	PrintSwapSweep(sum, &b)
	out := b.String()
	for _, want := range []string{"one_shot_envelope_mlu=1.2000", "staged_peak", "end states match in 1/1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
