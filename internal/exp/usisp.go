package exp

import (
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/routing"
	"repro/internal/spf"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// USISPWorkload is the synthetic stand-in for the paper's proprietary
// US-ISP data: the 20-PoP topology with SRLG/MLG structure plus one week
// of hourly traffic matrices, scaled so the peak-hour optimal MLU sits in
// a realistic operating range (~0.55).
type USISPWorkload struct {
	G    *graph.Graph
	Week []*traffic.Matrix
}

// NewUSISP builds the workload deterministically.
func NewUSISP(o Options) *USISPWorkload {
	o = o.withDefaults()
	g := graphUSISP()
	base := traffic.Gravity(g, 1000, o.Seed+31)
	week := traffic.DiurnalSeries(base, 7*24, o.Seed+32)
	// Scale so the envelope's optimal MLU is 0.55.
	env := envelopeTM(week)
	comms := routing.ODCommodities(g.NumNodes(), env.At)
	res := mcf.MinMLU(g, comms, mcf.Options{Iterations: 120})
	scale := 0.55 / res.MLU
	for _, m := range week {
		m.Scale(scale)
	}
	return &USISPWorkload{G: g, Week: week}
}

// graphUSISP is separated for test seams.
var graphUSISP = func() *graph.Graph { return topo.USISP() }

// Day returns the 24 matrices of day i (0-based).
func (w *USISPWorkload) Day(i int) []*traffic.Matrix {
	return w.Week[i*24 : (i+1)*24]
}

// PeakInterval returns the index of the busiest hour of the week.
func (w *USISPWorkload) PeakInterval() int {
	return traffic.PeakIndex(w.Week)
}

// optimizeDayWeights sets OSPF weights on g optimized for the day's 24
// matrices, as the paper does with the IGP weight optimization of [13].
func optimizeDayWeights(g *graph.Graph, day []*traffic.Matrix, o Options) {
	demands := make([]func(a, b graph.NodeID) float64, len(day))
	for i, m := range day {
		demands[i] = m.At
	}
	spf.OptimizeWeights(g, demands, spf.OptimizeOptions{
		Rounds: o.WeightOptRounds, Seed: o.Seed + 5,
	})
}
