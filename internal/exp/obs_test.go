package exp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// TestDebugSnapshotServesUSISPMetrics is the PR's acceptance path: run a
// US-ISP figure driver with a live registry attached (exactly what
// `r3sim -debug-addr` wires up) and assert the served /debug/vars JSON
// carries the per-scenario evaluation latency histogram and the FW solver
// iteration trace.
func TestDebugSnapshotServesUSISPMetrics(t *testing.T) {
	miniUSISP(t)
	reg := obs.NewRegistry()
	o := tinyOpts()
	o.Obs = reg
	w := NewUSISP(o)
	if r := Figure3(w, 0, o); len(r.Rows) == 0 {
		t.Fatal("Figure3 produced no rows")
	}

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/vars: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	h, ok := snap.Histograms["eval.scenario_us"]
	if !ok {
		t.Fatalf("snapshot lacks eval.scenario_us; histograms = %v", snap.Histograms)
	}
	if h.Count == 0 || h.Count != snap.Counters["eval.scenarios"] {
		t.Fatalf("scenario histogram count %d vs counter %d", h.Count, snap.Counters["eval.scenarios"])
	}
	roots := snap.Traces["fw"]
	if len(roots) == 0 {
		t.Fatal("snapshot lacks the fw solver trace")
	}
	sawEpoch := false
	for _, root := range roots {
		if root.Name != "fw.run" {
			t.Fatalf("fw trace root = %q, want fw.run", root.Name)
		}
		for _, c := range root.Children {
			if c.Name == "epoch" {
				sawEpoch = true
			}
		}
	}
	if !sawEpoch {
		t.Fatal("fw trace has no epoch spans")
	}
	if snap.Counters["fw.spf"] == 0 {
		t.Fatal("fw.spf counter is zero after a USISP precompute")
	}
	if len(snap.Vecs["eval.bottleneck_links"]) == 0 {
		t.Fatal("no bottleneck-link tallies recorded")
	}
}
