package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("c") != c {
		t.Fatal("same name must return same counter")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	f := reg.FloatGauge("f")
	f.Set(1.25)
	if got := f.Value(); got != 1.25 {
		t.Fatalf("float gauge = %v, want 1.25", got)
	}
	reg.GaugeFunc("fn", func() int64 { return 42 })
	if got := reg.Snapshot().Gauges["fn"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
}

func TestNilRegistryHandsOutNoopHandles(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Add(3)
	if c != nil || c.Value() != 0 {
		t.Fatal("nil registry must return nil no-op counter")
	}
	reg.Gauge("g").Set(1)
	reg.FloatGauge("f").Set(1)
	reg.GaugeFunc("fn", func() int64 { return 1 })
	reg.Histogram("h", ExpBounds(1, 2, 4)).Observe(3)
	reg.Vec("v", 4, nil).Add(0, 1)
	sp := reg.Trace("t").Start("root")
	sp.SetFloat("k", 1)
	sp.Child("c").End()
	sp.End()
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering one name as two kinds")
		}
	}()
	reg := NewRegistry()
	reg.Counter("dual")
	reg.Gauge("dual")
}

func TestHistogramBucketsAndStats(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	want := []int64{2, 2, 0, 1} // (<=10)=2, (<=100)=2, (<=1000)=0, +Inf=1
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewRegistry().Histogram("h", ExpBounds(1, 2, 16))
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(int64(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*each {
		t.Fatalf("count = %d, want %d", got, workers*each)
	}
}

func TestExpBoundsStrictlyIncreasing(t *testing.T) {
	b := ExpBounds(1, 1.1, 40)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
	}
	if lb := LinearBounds(5, 10, 4); lb[0] != 5 || lb[3] != 35 {
		t.Fatalf("linear bounds = %v", lb)
	}
}

func TestVecTallies(t *testing.T) {
	reg := NewRegistry()
	v := reg.Vec("links", 4, func(i int) string { return []string{"a", "b", "c", "d"}[i] })
	v.Add(1, 3)
	v.Add(3, 1)
	v.Add(-1, 5) // out of range: ignored
	v.Add(9, 5)  // out of range: ignored
	snap := reg.Snapshot().Vecs["links"]
	if snap["b"] != 3 || snap["d"] != 1 || len(snap) != 2 {
		t.Fatalf("vec snapshot = %v", snap)
	}
}

func TestTraceSpanTree(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Trace("solve")
	root := tr.Start("run")
	e0 := root.Child("epoch")
	e0.SetFloat("mlu", 0.5)
	e0.End()
	e1 := root.Child("epoch")
	inner := e1.Child("global-step")
	inner.End()
	e1.End()
	root.End()

	roots := tr.Snapshot()
	if len(roots) != 1 || roots[0].Name != "run" {
		t.Fatalf("roots = %+v", roots)
	}
	r := roots[0]
	if len(r.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(r.Children))
	}
	if r.Children[0].Attrs[0].Key != "mlu" || r.Children[0].Attrs[0].Value != 0.5 {
		t.Fatalf("attrs = %+v", r.Children[0].Attrs)
	}
	if len(r.Children[1].Children) != 1 || r.Children[1].Children[0].Name != "global-step" {
		t.Fatalf("nested = %+v", r.Children[1])
	}
	if r.DurNS < 0 || r.Children[0].StartNS < r.StartNS {
		t.Fatalf("timestamps out of order: %+v", r)
	}
	for _, c := range r.Children {
		if c.DurNS == 0 {
			t.Fatalf("ended child has zero duration: %+v", c)
		}
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n").Add(2)
	reg.FloatGauge("mlu").Set(0.75)
	reg.Histogram("lat", []int64{10}).Observe(3)
	reg.Trace("t").Start("root").End()

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if _, ok := decoded["histograms"]; !ok {
		t.Fatalf("snapshot missing histograms: %s", buf.String())
	}

	buf.Reset()
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	txt := buf.String()
	for _, want := range []string{"counter n 2", "gauge mlu 0.75", "histogram lat count=1", "trace t roots=1"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, txt)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewRegistry().Histogram("h", []int64{1, 2})
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	if math.IsNaN(s.Mean()) {
		t.Fatal("mean of empty histogram must be 0, not NaN")
	}
}
