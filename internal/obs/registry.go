package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of metrics and traces. A nil *Registry
// hands out nil (no-op) handles from every constructor, so callers thread
// one pointer through their config and never branch on "is observability
// on". Handle constructors are idempotent: the same name returns the same
// instance. Registering one name as two different kinds panics — that is
// a programming error, not an input error.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	vecs     map[string]*Vec
	traces   map[string]*Trace
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
		vecs:     make(map[string]*Vec),
		traces:   make(map[string]*Trace),
	}
}

func (r *Registry) claim(name, kind string) {
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, have, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named int gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "float_gauge")
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at snapshot time (queue depths,
// pool stats). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge_func")
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it over the given
// bucket grid on first use. Later calls ignore bounds (the grid is fixed
// at creation).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Vec returns the named counter vector of size n, creating it on first
// use. label, when non-nil, names slot i at snapshot time; later calls
// ignore n and label.
func (r *Registry) Vec(name string, n int, label func(int) string) *Vec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "vec")
	v, ok := r.vecs[name]
	if !ok {
		if n < 0 {
			n = 0
		}
		v = &Vec{vals: make([]atomic.Int64, n), label: label}
		r.vecs[name] = v
	}
	return v
}

// Trace returns the named trace, creating it on first use.
func (r *Registry) Trace(name string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "trace")
	t, ok := r.traces[name]
	if !ok {
		t = newTrace()
		r.traces[name] = t
	}
	return t
}

// Snapshot is a point-in-time JSON-marshalable view of the registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Vecs        map[string]map[string]int64  `json:"vecs,omitempty"`
	Traces      map[string][]SpanSnapshot    `json:"traces,omitempty"`
}

// Snapshot captures every metric. GaugeFunc callbacks are sampled here
// (they fold into Gauges). Nil returns a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for k, v := range r.fgauges {
		fgauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	vecs := make(map[string]*Vec, len(r.vecs))
	for k, v := range r.vecs {
		vecs[k] = v
	}
	traces := make(map[string]*Trace, len(r.traces))
	for k, v := range r.traces {
		traces[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 || len(gaugeFns) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges)+len(gaugeFns))
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
		for k, fn := range gaugeFns {
			snap.Gauges[k] = fn()
		}
	}
	if len(fgauges) > 0 {
		snap.FloatGauges = make(map[string]float64, len(fgauges))
		for k, g := range fgauges {
			snap.FloatGauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			snap.Histograms[k] = h.Snapshot()
		}
	}
	if len(vecs) > 0 {
		snap.Vecs = make(map[string]map[string]int64, len(vecs))
		for k, v := range vecs {
			m := make(map[string]int64)
			for i := 0; i < v.Len(); i++ {
				n := v.Value(i)
				if n == 0 {
					continue
				}
				key := fmt.Sprintf("%d", i)
				if v.label != nil {
					key = v.label(i)
				}
				m[key] += n
			}
			snap.Vecs[k] = m
		}
	}
	if len(traces) > 0 {
		snap.Traces = make(map[string][]SpanSnapshot, len(traces))
		for k, t := range traces {
			snap.Traces[k] = t.Snapshot()
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot in a flat human-readable form, one metric
// per line, sorted by name. Traces render as span counts (use WriteJSON
// or a -trace-out dump for full trees).
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	var lines []string
	for k, v := range snap.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", k, v))
	}
	for k, v := range snap.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", k, v))
	}
	for k, v := range snap.FloatGauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", k, v))
	}
	for k, h := range snap.Histograms {
		lines = append(lines, fmt.Sprintf("histogram %s count=%d sum=%d min=%d max=%d mean=%.1f",
			k, h.Count, h.Sum, h.Min, h.Max, h.Mean()))
	}
	for k, m := range snap.Vecs {
		keys := make([]string, 0, len(m))
		for kk := range m {
			keys = append(keys, kk)
		}
		sort.Strings(keys)
		for _, kk := range keys {
			lines = append(lines, fmt.Sprintf("vec %s{%s} %d", k, kk, m[kk]))
		}
	}
	for k, spans := range snap.Traces {
		lines = append(lines, fmt.Sprintf("trace %s roots=%d", k, len(spans)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
