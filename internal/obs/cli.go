package obs

import (
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
)

// SetupCLI wires the standard observability flags shared by the r3plan,
// r3sim and r3emu commands: it initializes slog (quiet by default, info
// level when verbose), and when either debugAddr or traceOut is set it
// creates a live Registry, serving /debug/vars, /debug/metrics and
// /debug/pprof on debugAddr if non-empty. cpuProfile and memProfile name
// pprof output files: a non-empty cpuProfile starts CPU profiling
// immediately, and the cleanup stops it and, for a non-empty memProfile,
// writes an allocs profile after a final GC. The returned cleanup also
// shuts the debug server down and, if traceOut is non-empty, dumps the
// recorded span trees there; call it on the command's success path. With
// all strings empty the returned registry is nil — every instrumented path
// degrades to no-ops — and cleanup is a harmless stub.
func SetupCLI(debugAddr, traceOut, cpuProfile, memProfile string, verbose bool) (*Registry, func(), error) {
	InitLogging(verbose)
	stopProf, err := StartProfiles(cpuProfile, memProfile)
	if err != nil {
		return nil, nil, err
	}
	if debugAddr == "" && traceOut == "" {
		return nil, stopProf, nil
	}
	reg := NewRegistry()
	stop := func() {}
	if debugAddr != "" {
		addr, shutdown, err := StartDebugServer(debugAddr, reg)
		if err != nil {
			stopProf()
			return nil, nil, err
		}
		slog.Info("debug server listening", "addr", addr)
		stop = shutdown
	}
	cleanup := func() {
		stop()
		if traceOut != "" {
			if err := WriteTraceFile(traceOut, reg); err != nil {
				slog.Error("writing trace file", "path", traceOut, "err", err)
			} else {
				slog.Info("trace written", "path", traceOut)
			}
		}
		stopProf()
	}
	return reg, cleanup, nil
}

// StartProfiles starts CPU profiling into cpuPath (when non-empty) and
// returns a stop function that ends the CPU profile and writes a heap
// allocation profile to memPath (when non-empty, after a final GC so the
// numbers reflect live retention rather than transient garbage). Empty
// paths are skipped; the stop function is always safe to call once.
func StartProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				slog.Error("closing cpu profile", "path", cpuPath, "err", err)
			} else {
				slog.Info("cpu profile written", "path", cpuPath)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				slog.Error("creating mem profile", "path", memPath, "err", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				slog.Error("writing mem profile", "path", memPath, "err", err)
			} else {
				slog.Info("mem profile written", "path", memPath)
			}
			f.Close()
		}
	}, nil
}
