package obs

import "log/slog"

// SetupCLI wires the standard observability flags shared by the r3plan,
// r3sim and r3emu commands: it initializes slog (quiet by default, info
// level when verbose), and when either debugAddr or traceOut is set it
// creates a live Registry, serving /debug/vars, /debug/metrics and
// /debug/pprof on debugAddr if non-empty. The returned cleanup shuts the
// server down and, if traceOut is non-empty, dumps the recorded span trees
// there; call it on the command's success path. With both strings empty
// the returned registry is nil — every instrumented path degrades to
// no-ops — and cleanup is a harmless stub.
func SetupCLI(debugAddr, traceOut string, verbose bool) (*Registry, func(), error) {
	InitLogging(verbose)
	if debugAddr == "" && traceOut == "" {
		return nil, func() {}, nil
	}
	reg := NewRegistry()
	stop := func() {}
	if debugAddr != "" {
		addr, shutdown, err := StartDebugServer(debugAddr, reg)
		if err != nil {
			return nil, nil, err
		}
		slog.Info("debug server listening", "addr", addr)
		stop = shutdown
	}
	cleanup := func() {
		stop()
		if traceOut != "" {
			if err := WriteTraceFile(traceOut, reg); err != nil {
				slog.Error("writing trace file", "path", traceOut, "err", err)
			} else {
				slog.Info("trace written", "path", traceOut)
			}
		}
	}
	return reg, cleanup, nil
}
