// Package obs is the repo's stdlib-only observability substrate: atomic
// counters and gauges, lock-striped histograms over fixed bucket grids, a
// span/trace recorder with monotonic timestamps, and a Registry that
// snapshots everything to JSON and text (plus a debug HTTP surface with
// pprof in http.go).
//
// Nil-safety contract. Every metric handle (*Counter, *Gauge, *FloatGauge,
// *Vec, *Histogram, *Trace, Span) is a valid no-op when nil (or, for Span,
// when its zero value): a nil *Registry hands out nil handles, so
// instrumented code calls Add/Observe/Set unconditionally and the
// uninstrumented configuration costs nothing — no branches beyond the nil
// check, and zero allocations (verified by alloc_test.go). Observability
// must never perturb results: handles only ever read solver state, so a
// plan computed with a live registry is byte-identical to one computed
// with none (verified by internal/core's obs determinism test).
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic int64 gauge. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 gauge (stored as bits). A nil
// *FloatGauge is a no-op.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge (0 for nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Vec is a fixed-size vector of atomic counters, used for per-index
// tallies (per-link bottleneck counts, per-node drops). Out-of-range
// indices and a nil *Vec are no-ops.
type Vec struct {
	vals  []atomic.Int64
	label func(int) string // optional, used at snapshot time
}

// Add increments slot i by n.
func (v *Vec) Add(i int, n int64) {
	if v == nil || i < 0 || i >= len(v.vals) {
		return
	}
	v.vals[i].Add(n)
}

// Value reads slot i (0 when nil or out of range).
func (v *Vec) Value(i int) int64 {
	if v == nil || i < 0 || i >= len(v.vals) {
		return 0
	}
	return v.vals[i].Load()
}

// Len reports the vector size (0 for nil).
func (v *Vec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.vals)
}

// histStripes is the fixed stripe count. Stripes spread concurrent
// Observe calls over independent mutexes; the count is a power of two so
// stripe selection is a mask.
const histStripes = 8

// Histogram counts int64 observations against a fixed, immutable bucket
// grid. It is lock-striped: each stripe guards its own bucket counts and
// running sum/min/max with a plain mutex, and an observation picks its
// stripe by hashing the observed value — allocation-free and uncontended
// unless many workers observe simultaneously. Snapshot merges the stripes.
// A nil *Histogram is a no-op.
type Histogram struct {
	// bounds are ascending inclusive upper bounds; values above the last
	// bound land in an implicit +Inf overflow bucket.
	bounds  []int64
	stripes [histStripes]histStripe
}

type histStripe struct {
	mu     sync.Mutex
	counts []int64 // len(bounds)+1
	count  int64
	sum    int64
	min    int64
	max    int64
}

// newHistogram builds a histogram over the given ascending bounds.
func newHistogram(bounds []int64) *Histogram {
	cp := append([]int64(nil), bounds...)
	h := &Histogram{bounds: cp}
	for i := range h.stripes {
		h.stripes[i].counts = make([]int64, len(cp)+1)
		h.stripes[i].min = math.MaxInt64
		h.stripes[i].max = math.MinInt64
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Fibonacci-style hash of the value picks the stripe: identical values
	// share a stripe, but the grids we observe (latencies in µs) vary
	// enough that contention stays low without per-goroutine state.
	s := &h.stripes[uint64(v)*0x9E3779B97F4A7C15>>59&(histStripes-1)]
	// Binary search the bucket; grids are small (≤ ~40 buckets), so this
	// stays a handful of branches.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.mu.Lock()
	s.counts[lo]++
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.mu.Unlock()
}

// HistogramSnapshot is a merged view of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets[i] counts observations with value <= Bounds[i]; the final
	// extra entry is the +Inf overflow bucket.
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot merges the stripes into one view. Nil returns a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Min:     math.MaxInt64,
		Max:     math.MinInt64,
		Bounds:  append([]int64(nil), h.bounds...),
		Buckets: make([]int64, len(h.bounds)+1),
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for j, c := range s.counts {
			snap.Buckets[j] += c
		}
		snap.Count += s.count
		snap.Sum += s.sum
		if s.min < snap.Min {
			snap.Min = s.min
		}
		if s.max > snap.Max {
			snap.Max = s.max
		}
		s.mu.Unlock()
	}
	if snap.Count == 0 {
		snap.Min, snap.Max = 0, 0
	}
	return snap
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// ExpBounds builds an exponential bucket grid: n bounds starting at start,
// each factor× the previous (rounded up to stay strictly increasing).
// Suitable for latency grids, e.g. ExpBounds(10, 2, 20) spans 10 µs to
// ~5 s.
func ExpBounds(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	bounds := make([]int64, 0, n)
	v := float64(start)
	prev := int64(0)
	for i := 0; i < n; i++ {
		b := int64(v)
		if b <= prev {
			b = prev + 1
		}
		bounds = append(bounds, b)
		prev = b
		v *= factor
	}
	return bounds
}

// LinearBounds builds n bounds start, start+step, ….
func LinearBounds(start, step int64, n int) []int64 {
	if step < 1 {
		step = 1
	}
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = start + int64(i)*step
	}
	return bounds
}
