package obs

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler serves the registry's debug surface:
//
//	/debug/vars     JSON snapshot of every metric and trace
//	/debug/metrics  flat text snapshot
//	/debug/pprof/   the standard pprof index (profile, heap, trace, …)
//
// The registry may be nil — the endpoints then serve empty snapshots
// (pprof still works).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	Attach(mux, reg)
	return mux
}

// Attach registers the debug routes of Handler onto an existing mux, so a
// server with its own API surface (e.g. the planner daemon) can expose
// the same /debug endpoints on one listener.
func Attach(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartDebugServer listens on addr and serves Handler(reg) until the
// returned shutdown function is called (or the process exits). It returns
// the bound address, useful with ":0".
func StartDebugServer(addr string, reg *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			slog.Warn("obs: debug server stopped", "err", serr)
		}
	}()
	slog.Info("obs: debug server listening", "addr", ln.Addr().String())
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// WriteTraceFile dumps the registry's span trees (the "traces" section of
// the JSON snapshot) to path, for offline inspection of -trace-out runs.
func WriteTraceFile(path string, reg *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// InitLogging installs the process-wide slog default: structured text on
// stderr, quiet by default (warnings and errors only) so CLI output stays
// clean; verbose enables info-level progress logging.
func InitLogging(verbose bool) {
	lvl := slog.LevelWarn
	if verbose {
		lvl = slog.LevelInfo
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
}
