package obs

import (
	"sync"
	"time"
)

// defaultMaxSpans bounds a trace's memory: once reached, Start/Child
// return no-op spans. Large enough for any realistic solver run (a
// 120-epoch FW solve records a few hundred spans).
const defaultMaxSpans = 1 << 16

// Trace records a tree of timed spans with monotonic timestamps: every
// span stores nanosecond offsets from the trace's base instant, measured
// with the runtime's monotonic clock (time.Since), so wall-clock jumps
// cannot reorder or skew spans. A nil *Trace is a no-op and hands out
// no-op Spans.
type Trace struct {
	mu    sync.Mutex
	base  time.Time
	spans []spanRec
}

type spanRec struct {
	name   string
	parent int32 // -1 for roots
	start  int64 // ns since base
	end    int64 // ns since base; 0 while open
	attrs  []Attr
}

// Attr is one float-valued span attribute (MLU, step size, …).
type Attr struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// Span is a handle to one recorded span. The zero Span (and any span
// handed out by a nil *Trace) is a no-op. Spans are values: copying is
// free and no allocation happens on no-op paths.
type Span struct {
	t   *Trace
	idx int32
}

func newTrace() *Trace {
	return &Trace{base: time.Now()}
}

func (t *Trace) startSpan(name string, parent int32) Span {
	if t == nil {
		return Span{}
	}
	now := time.Since(t.base).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= defaultMaxSpans {
		return Span{}
	}
	t.spans = append(t.spans, spanRec{name: name, parent: parent, start: now})
	return Span{t: t, idx: int32(len(t.spans) - 1)}
}

// Start opens a root span.
func (t *Trace) Start(name string) Span {
	return t.startSpan(name, -1)
}

// Child opens a span nested under s.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(name, s.idx)
}

// SetFloat attaches a float attribute to the span.
func (s Span) SetFloat(key string, v float64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	rec.attrs = append(rec.attrs, Attr{Key: key, Value: v})
	s.t.mu.Unlock()
}

// End closes the span. Ending an already-ended span keeps the first end.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.base).Nanoseconds()
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	if rec.end == 0 {
		rec.end = now
	}
	s.t.mu.Unlock()
}

// SpanSnapshot is one span in a trace snapshot, with children nested.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartNS and DurNS are nanoseconds; DurNS is 0 for still-open spans.
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Attrs    []Attr         `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot renders the recorded spans as a forest of root spans. Nil
// returns nil.
func (t *Trace) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := append([]spanRec(nil), t.spans...)
	t.mu.Unlock()

	nodes := make([]SpanSnapshot, len(recs))
	for i, r := range recs {
		dur := int64(0)
		if r.end > 0 {
			dur = r.end - r.start
		}
		nodes[i] = SpanSnapshot{
			Name:    r.name,
			StartNS: r.start,
			DurNS:   dur,
			Attrs:   append([]Attr(nil), r.attrs...),
		}
	}
	// Attach children to parents in reverse index order so each child's
	// own subtree is complete before it is copied into its parent.
	var roots []SpanSnapshot
	for i := len(recs) - 1; i >= 0; i-- {
		p := recs[i].parent
		if p >= 0 {
			nodes[p].Children = append([]SpanSnapshot{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, r := range recs {
		if r.parent < 0 {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}

// Len reports the number of recorded spans (0 for nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
