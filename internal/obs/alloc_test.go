package obs

import "testing"

// The hot-path contract: metric operations allocate nothing, whether the
// handle is live or the nil no-op a nil registry hands out. Instrumented
// solver loops (FW sweeps, eval scenarios, netem packet forwarding) call
// these per operation, so a single allocation here would dominate profile
// noise and garbage.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(1000, fn); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestNilHandlesZeroAlloc(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	g := reg.Gauge("g")
	f := reg.FloatGauge("f")
	h := reg.Histogram("h", ExpBounds(1, 2, 8))
	v := reg.Vec("v", 8, nil)
	tr := reg.Trace("t")

	assertZeroAllocs(t, "nil Counter.Add", func() { c.Add(1) })
	assertZeroAllocs(t, "nil Gauge.Set", func() { g.Set(3) })
	assertZeroAllocs(t, "nil FloatGauge.Set", func() { f.Set(0.5) })
	assertZeroAllocs(t, "nil Histogram.Observe", func() { h.Observe(17) })
	assertZeroAllocs(t, "nil Vec.Add", func() { v.Add(2, 1) })
	assertZeroAllocs(t, "nil Trace span", func() {
		sp := tr.Start("x")
		sp.SetFloat("k", 1)
		sp.Child("y").End()
		sp.End()
	})
}

func TestLiveHandlesZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	f := reg.FloatGauge("f")
	h := reg.Histogram("h", ExpBounds(1, 2, 20))
	v := reg.Vec("v", 64, nil)

	var i int64
	assertZeroAllocs(t, "live Counter.Add", func() { c.Add(1) })
	assertZeroAllocs(t, "live Gauge.Set", func() { g.Set(9) })
	assertZeroAllocs(t, "live FloatGauge.Set", func() { f.Set(1.5) })
	assertZeroAllocs(t, "live Histogram.Observe", func() { i++; h.Observe(i * 37) })
	assertZeroAllocs(t, "live Vec.Add", func() { i++; v.Add(int(i)&63, 1) })
}
