package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHandlerServesJSONSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("eval.scenarios").Add(12)
	reg.Histogram("eval.scenario_us", ExpBounds(10, 2, 8)).Observe(50)
	tr := reg.Trace("fw")
	tr.Start("run").End()

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["eval.scenarios"] != 12 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Histograms["eval.scenario_us"].Count != 1 {
		t.Fatalf("histograms = %v", snap.Histograms)
	}
	if len(snap.Traces["fw"]) != 1 {
		t.Fatalf("traces = %v", snap.Traces)
	}

	// Text endpoint and the pprof index must also respond.
	for _, path := range []string{"/debug/metrics", "/debug/pprof/"} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != 200 {
			t.Fatalf("%s status = %d", path, r2.StatusCode)
		}
	}
}

func TestStartDebugServerAndShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	addr, shutdown, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	shutdown()
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}

func TestWriteTraceFile(t *testing.T) {
	reg := NewRegistry()
	sp := reg.Trace("fw").Start("run")
	sp.Child("epoch").End()
	sp.End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceFile(path, reg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"epoch"`) {
		t.Fatalf("trace file missing span: %s", data)
	}
}
