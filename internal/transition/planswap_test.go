package transition

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mplsff"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// planPair precomputes two Abilene plans over different traffic matrices
// — the daemon's "traffic shifted, re-precompute, swap" situation.
func planPair(t testing.TB) (old, next *core.Plan) {
	t.Helper()
	g := topo.Abilene()
	cfg := core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: 60}
	old, err := core.Precompute(g, traffic.Gravity(g, 250, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	next, err = core.Precompute(g, traffic.Gravity(g, 300, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return old, next
}

// TestSchedulePlanSwapAppliesToNextPlan checks the core contract: the
// single swap round's delta transforms the old plan's network into
// exactly the next plan's network (fingerprint identity), with the
// elementwise-max envelope and an LP certificate attached.
func TestSchedulePlanSwapAppliesToNextPlan(t *testing.T) {
	old, next := planPair(t)
	reg := obs.NewRegistry()
	seq, err := SchedulePlanSwap(old, next, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rounds) != 1 || seq.Swaps != 1 {
		t.Fatalf("want exactly one swap round, got %d rounds (%d swaps)", len(seq.Rounds), seq.Swaps)
	}
	round := seq.Rounds[0]
	if round.Kind != Swap || round.Seq != 1 || len(round.Links) != 0 {
		t.Fatalf("unexpected round shape: kind=%v seq=%d links=%v", round.Kind, round.Seq, round.Links)
	}

	// Applying the round to the old network must land exactly on the
	// next plan's network.
	n := mplsff.Build(old)
	if applied := n.ApplyRound(1, round.Delta); applied != 1 {
		t.Fatalf("ApplyRound applied %d rounds, want 1", applied)
	}
	if got, want := n.Fingerprint(), mplsff.Build(next).Fingerprint(); got != want {
		t.Fatalf("post-swap fingerprint %x != next plan fingerprint %x", got, want)
	}
	if got, want := n.Fingerprint(), seq.Final.Fingerprint(); got != want {
		t.Fatalf("post-swap fingerprint %x != Sequence.Final %x", got, want)
	}

	// Envelope: at least both end states' MLUs (each commodity routes the
	// old or new way, so either pure state is one realizable extreme).
	oldMLU := old.NormalMLU
	if round.EnvelopeMLU+1e-12 < oldMLU || round.EnvelopeMLU+1e-12 < round.StateMLU {
		t.Fatalf("envelope %v below an endpoint (old %v, new %v)", round.EnvelopeMLU, oldMLU, round.StateMLU)
	}
	// Certificate: the exact LP lower-bounds the achieved no-failure MLU.
	if math.IsNaN(round.LPMLU) {
		t.Fatalf("LP certificate missing")
	}
	if round.LPMLU > round.StateMLU+1e-6 {
		t.Fatalf("LP optimum %v exceeds achieved MLU %v", round.LPMLU, round.StateMLU)
	}
	if seq.LPSolves != 1 || seq.Basis == nil {
		t.Fatalf("want 1 LP solve with a basis for warm-starting, got %d (basis %v)", seq.LPSolves, seq.Basis != nil)
	}
	if reg.Snapshot().Counters["transition.plan_swaps"] != 1 {
		t.Fatalf("plan_swaps counter not incremented")
	}
}

// TestSchedulePlanSwapIdentity: diffing a plan against itself is a
// zero-round sequence (nothing to distribute).
func TestSchedulePlanSwapIdentity(t *testing.T) {
	old, _ := planPair(t)
	seq, err := SchedulePlanSwap(old, old, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rounds) != 0 || !seq.CongestionFree {
		t.Fatalf("self-swap produced %d rounds (congestion-free %v)", len(seq.Rounds), seq.CongestionFree)
	}
	if got, want := seq.Final.Fingerprint(), mplsff.Build(old).Fingerprint(); got != want {
		t.Fatalf("identity swap Final %x != plan network %x", got, want)
	}
}

// TestSchedulePlanSwapSkipCertify: rollbacks skip the LP; the delta and
// envelope still ship and no LP is solved.
func TestSchedulePlanSwapSkipCertify(t *testing.T) {
	old, next := planPair(t)
	seq, err := SchedulePlanSwap(old, next, Options{SkipCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.LPSolves != 0 {
		t.Fatalf("SkipCertify still solved %d LPs", seq.LPSolves)
	}
	if len(seq.Rounds) != 1 || !math.IsNaN(seq.Rounds[0].LPMLU) {
		t.Fatalf("want one uncertified round, got %+v", seq.Rounds)
	}
}

// TestSchedulePlanSwapTopologyMismatch rejects plans over different
// topologies — a row-level delta across changed link identities would be
// garbage.
func TestSchedulePlanSwapTopologyMismatch(t *testing.T) {
	old, _ := planPair(t)
	g2 := topo.SBC()
	other, err := core.Precompute(g2, traffic.Gravity(g2, 100, 1), core.Config{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SchedulePlanSwap(old, other, Options{}); err == nil {
		t.Fatal("plan swap across topologies did not error")
	}
}
