package transition

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mcf"
	"repro/internal/mplsff"
	"repro/internal/routing"
)

// SchedulePlanSwap stages a transition between two arbitrary plans over
// the same topology — a re-precomputed plan after a traffic-matrix shift,
// or a rollback to a retained revision. Unlike Schedule, no links fail:
// the whole change is routing state, so the decomposition is a single
// versioned swap round carrying the row-level DiffPlans delta.
//
// The round still ships feasibility evidence:
//
//   - StateMLU is the end state's no-failure utilization.
//   - EnvelopeMLU bounds the transient while routers apply the round
//     asynchronously: with each commodity routed either the old or the
//     new way, no link ever carries more than the elementwise max of the
//     two base loads (the same bound execute() uses for its swap round).
//   - LPMLU is the exact LP's optimal no-failure MLU for the new plan's
//     demands — the Theorem-2 certificate that a feasible routing exists
//     — warm-started via Options.Warm. Options.SkipCertify skips it
//     (rollbacks want the swap immediately, not after an LP solve).
//
// An empty diff returns a zero-round sequence whose Final is simply the
// next plan's network.
func SchedulePlanSwap(old, next *core.Plan, opts Options) (*Sequence, error) {
	opts.defaults()
	if old.G.NumNodes() != next.G.NumNodes() || old.G.NumLinks() != next.G.NumLinks() {
		return nil, fmt.Errorf("transition: plan swap across different topologies (%d/%d links vs %d/%d)",
			old.G.NumNodes(), old.G.NumLinks(), next.G.NumNodes(), next.G.NumLinks())
	}
	tol := 1 + opts.Tol
	reg := opts.Obs
	span := reg.Trace("transition").Start("plan_swap")
	defer span.End()

	seq := &Sequence{CongestionFree: true, Final: mplsff.Build(next)}
	seq.FinalMLU = routing.MLU(next.G, next.Base.Loads())
	seq.TransientMLU = seq.FinalMLU
	seq.Basis = opts.Warm

	delta := DiffPlans(old, next)
	if delta.Empty() {
		span.SetFloat("rounds", 0)
		return seq, nil
	}

	// Elementwise-max envelope: each commodity is routed the old way or
	// the new way while the round propagates, never both, so per-link
	// transient load is bounded by max(old load, new load).
	envLoads := old.Base.Loads()
	maxInto(envLoads, next.Base.Loads())
	envMLU := routing.MLU(next.G, envLoads)

	round := &Round{
		Seq:         1,
		Kind:        Swap,
		Delta:       delta,
		StateMLU:    seq.FinalMLU,
		EnvelopeMLU: envMLU,
		LPMLU:       math.NaN(),
	}
	if !opts.SkipCertify {
		res, err := mcf.MinMLUExact(next.G, next.Base.Comms, mcf.Options{
			Warm: opts.Warm,
			Obs:  reg,
		})
		seq.LPSolves++
		if err == nil {
			round.LPMLU = res.MLU
			seq.Basis = res.Basis
		}
	}
	round.CongestionFree = round.StateMLU <= tol && round.EnvelopeMLU <= tol
	seq.Rounds = []*Round{round}
	seq.Swaps = 1
	seq.TransientMLU = envMLU
	seq.CongestionFree = round.CongestionFree

	span.SetFloat("rounds", 1)
	span.SetFloat("transient_mlu", seq.TransientMLU)
	reg.Counter("transition.plan_swaps").Inc()
	reg.Counter("transition.rounds").Inc()
	reg.Counter("transition.lp_solves").Add(int64(seq.LPSolves))
	if !seq.CongestionFree {
		reg.Counter("transition.best_effort").Inc()
	}
	return seq, nil
}
