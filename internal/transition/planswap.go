package transition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/mplsff"
	"repro/internal/routing"
)

// SchedulePlanSwap stages a transition between two arbitrary plans over
// the same topology — a re-precomputed plan after a traffic-matrix shift,
// or a rollback to a retained revision. Unlike Schedule, no links fail:
// the whole change is routing state, and the migration unit is the OD
// commodity, since routers apply a round asynchronously and a commodity
// is routed either entirely the old way or entirely the new way at each
// instant. The sound transient bound is therefore per-link
//
//	env(e) = static(e) + Σ_k max(old_k(e), new_k(e))
//
// over the commodities k in flight — which can exceed capacity even when
// both endpoint plans are congestion-free (two commodities trading
// places on a pair of links each push their max onto both). The
// scheduler decomposes the row-level delta into per-commodity migration
// batches so that every round's mixed old/new envelope is ≤ 1+Tol:
//
//   - If the whole-delta envelope already fits, one swap round ships the
//     full diff (the common case for small shifts).
//   - Otherwise, for ≤ MaxExactGroups changed commodities, the exact
//     minimal-k BFS over the subset lattice (the same machinery Schedule
//     uses for failure groups) finds the fewest rounds whose every
//     envelope fits; larger instances use a greedy batcher that packs
//     each round with the commodities minimizing the post-round MLU.
//   - When no pure old→new ordering is feasible, the exact LP computes a
//     warm-started interim routing for the in-flight commodities
//     (changed ODs as LP commodities, unchanged ODs as fixed
//     background); commodities migrate old→interim→new in envelope-
//     checked batches. Only when that LP itself certifies infeasibility
//     (or fails) does the scheduler fall back to a single best-effort
//     round for the remainder, marked CongestionFree=false.
//
// Every round carries feasibility evidence: StateMLU (post-round mixed
// state), EnvelopeMLU (the asynchronous bound above), and LPMLU — the
// exact LP's optimal MLU for the round's post-state demand mix, the
// Theorem-2 certificate that the mix is routable at all. Certificates
// are warm-started via Options.Warm and chained across rounds; a solver
// failure is recorded on Round.CertifyErr and counted in
// transition.certify_errors rather than silently shipping NaN.
// Options.SkipCertify (rollbacks) skips per-round certificates but still
// decomposes, and the interim-routing fallback still uses the LP.
//
// An empty diff returns a zero-round sequence whose Final is simply the
// next plan's network. Applying rounds 1..k to mplsff.Build(old) — in
// order, or through any duplicated/reordered staged delivery — lands
// byte-identically on mplsff.Build(next).
func SchedulePlanSwap(old, next *core.Plan, opts Options) (*Sequence, error) {
	opts.defaults()
	if od, nd := graph.Digest(old.G), graph.Digest(next.G); od != nd {
		return nil, fmt.Errorf("transition: plan swap across different topologies (digest %016x vs %016x)", od, nd)
	}
	tol := 1 + opts.Tol
	reg := opts.Obs
	span := reg.Trace("transition").Start("plan_swap")
	defer span.End()

	startNet := mplsff.Build(old)
	targetNet := mplsff.Build(next)
	seq := &Sequence{CongestionFree: true, Final: targetNet}
	seq.FinalMLU = routing.MLU(next.G, next.Base.Loads())
	seq.TransientMLU = seq.FinalMLU
	seq.Basis = opts.Warm

	if mplsff.Diff(startNet, targetNet).Empty() {
		span.SetFloat("rounds", 0)
		return seq, nil
	}

	sw := newSwapper(old, next, opts)
	batches := sw.plan()

	prev := startNet
	for bi := range batches {
		b := &batches[bi]
		var cu *mplsff.Network
		if b.done && !b.interim {
			// The last old→new batch lands on the target network itself,
			// sweeping along the ILM (protection) changes and any rows the
			// per-OD walk cannot express — staged and one-shot activation
			// end bit-identical.
			cu = targetNet
		} else {
			cu = prev.Clone()
			for _, i := range b.idx {
				if b.interim {
					sw.programInterim(cu, i)
				} else {
					copyODRows(cu, targetNet, sw.groups[i].od)
				}
			}
		}
		round := &Round{
			Seq:         bi + 1,
			Kind:        Swap,
			Delta:       mplsff.Diff(prev, cu),
			ODs:         sw.odsOf(b.idx),
			StateMLU:    b.stateMLU,
			EnvelopeMLU: b.envMLU,
			LPMLU:       math.NaN(),
			Fallback:    b.interim,
		}
		if !opts.SkipCertify {
			round.LPMLU, round.CertifyErr = sw.certifyRound(b.certDemands)
			if round.CertifyErr != nil {
				seq.CertifyErrs++
			}
		}
		round.CongestionFree = round.StateMLU <= tol && round.EnvelopeMLU <= tol
		seq.Rounds = append(seq.Rounds, round)
		if b.interim {
			seq.Fallbacks++
		} else {
			seq.Swaps++
		}
		if round.EnvelopeMLU > seq.TransientMLU {
			seq.TransientMLU = round.EnvelopeMLU
		}
		if !round.CongestionFree {
			seq.CongestionFree = false
		}
		prev = cu
	}
	seq.Final = prev
	seq.LPSolves = sw.lpSolves
	if sw.certBasis != nil {
		seq.Basis = sw.certBasis
	}

	span.SetFloat("rounds", float64(len(seq.Rounds)))
	span.SetFloat("groups", float64(len(sw.groups)))
	span.SetFloat("transient_mlu", seq.TransientMLU)
	reg.Counter("transition.plan_swaps").Inc()
	reg.Counter("transition.rounds").Add(int64(len(seq.Rounds)))
	reg.Counter("transition.lp_solves").Add(int64(seq.LPSolves))
	reg.Counter("transition.fallbacks").Add(int64(seq.Fallbacks))
	if !seq.CongestionFree {
		if sw.feasSolved && sw.feasErr == nil && sw.feasMLU > tol {
			// The exact LP itself certified the in-flight demand mix
			// unroutable: genuinely best-effort.
			reg.Counter("transition.best_effort").Inc()
		} else {
			// The LP found (or was never asked for) a feasible routing but
			// the scheduler could not reach it in envelope-safe batches.
			reg.Counter("transition.swap_stuck").Inc()
		}
	}
	return seq, nil
}

// swapGroup is one OD pair whose base routing differs between the two
// plans — the unit of migration. oldVec/newVec are the demand-weighted
// per-link load vectors of the commodity under each plan (all-zero where
// the OD is absent).
type swapGroup struct {
	od             [2]graph.NodeID
	oldVec, newVec []float64
	dOld, dNew     float64
	// demand is max(dOld, dNew): what the OD may offer mid-migration.
	demand float64
}

// swapBatch is one planned migration round.
type swapBatch struct {
	idx      []int // group indices migrating this round
	interim  bool  // migrate to the LP interim routing, not the final one
	forced   bool  // best-effort remainder; envelope exceeds tolerance
	done     bool  // after this batch every group is at its final routing
	envMLU   float64
	stateMLU float64
	// certDemands is the post-round demand per group (old, max, or new
	// depending on migration position) for the round's LP certificate.
	certDemands []float64
}

const (
	posOld = iota
	posInterim
	posNew
)

// swapper carries the per-SchedulePlanSwap migration state.
type swapper struct {
	g    *graph.Graph
	opts Options
	tol  float64

	groups []swapGroup
	// static is the fixed background: commodities routed identically in
	// both plans, at the elementwise max of their two demand-weighted
	// loads.
	static []float64
	caps   []float64

	cur   [][]float64 // current load vector per group
	pos   []int
	loads []float64 // static + Σ cur

	// comms is the changed-OD commodity set shared by every LP in this
	// swap (certificates and the interim feasibility solve); only the
	// demands vary, so the LP shape is constant and bases chain warm.
	comms     []routing.Commodity
	certBasis *lp.Basis
	lpSolves  int

	// Interim feasibility LP (solved at most once, on the first stuck
	// round): can the full in-flight demand mix be routed at all?
	feasSolved bool
	feasFlow   *routing.Flow
	feasMLU    float64
	feasErr    error
	interims   [][]float64

	envMemo map[uint64]float64
}

func newSwapper(old, next *core.Plan, opts Options) *swapper {
	g := old.G
	E := g.NumLinks()
	sw := &swapper{
		g:         g,
		opts:      opts,
		tol:       1 + opts.Tol,
		static:    make([]float64, E),
		caps:      make([]float64, E),
		certBasis: opts.Warm,
	}
	for e := 0; e < E; e++ {
		sw.caps[e] = g.Link(graph.LinkID(e)).Capacity
	}

	oldIdx := make(map[[2]graph.NodeID]int, len(old.Base.Comms))
	for k, c := range old.Base.Comms {
		oldIdx[[2]graph.NodeID{c.Src, c.Dst}] = k
	}
	newIdx := make(map[[2]graph.NodeID]int, len(next.Base.Comms))
	for k, c := range next.Base.Comms {
		newIdx[[2]graph.NodeID{c.Src, c.Dst}] = k
	}
	var keys [][2]graph.NodeID
	seen := make(map[[2]graph.NodeID]bool)
	for _, comms := range [][]routing.Commodity{old.Base.Comms, next.Base.Comms} {
		for _, c := range comms {
			od := [2]graph.NodeID{c.Src, c.Dst}
			if !seen[od] {
				seen[od] = true
				keys = append(keys, od)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	for _, od := range keys {
		var dOld, dNew float64
		var frOld, frNew []float64
		if k, ok := oldIdx[od]; ok {
			dOld, frOld = old.Base.Comms[k].Demand, old.Base.Frac[k]
		}
		if k, ok := newIdx[od]; ok {
			dNew, frNew = next.Base.Comms[k].Demand, next.Base.Frac[k]
		}
		oldVec := scaleVec(dOld, frOld, E)
		newVec := scaleVec(dNew, frNew, E)
		if frOld != nil && frNew != nil && equalVec(frOld, frNew) {
			// Identical rows in both plans: the delta never touches this
			// OD, so it rides as background at the worse of its two loads
			// (only the demand may have shifted).
			for e := range sw.static {
				if newVec[e] > oldVec[e] {
					sw.static[e] += newVec[e]
				} else {
					sw.static[e] += oldVec[e]
				}
			}
			continue
		}
		d := dOld
		if dNew > d {
			d = dNew
		}
		sw.groups = append(sw.groups, swapGroup{
			od: od, oldVec: oldVec, newVec: newVec,
			dOld: dOld, dNew: dNew, demand: d,
		})
		sw.comms = append(sw.comms, routing.Commodity{Src: od[0], Dst: od[1], Demand: d, Link: -1})
	}

	n := len(sw.groups)
	sw.cur = make([][]float64, n)
	sw.pos = make([]int, n)
	sw.loads = append([]float64(nil), sw.static...)
	for i := range sw.groups {
		sw.cur[i] = sw.groups[i].oldVec
		for e, v := range sw.cur[i] {
			sw.loads[e] += v
		}
	}
	return sw
}

func scaleVec(d float64, fr []float64, E int) []float64 {
	v := make([]float64, E)
	if fr == nil || d == 0 {
		return v
	}
	for e := range v {
		v[e] = d * fr[e]
	}
	return v
}

func equalVec(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (sw *swapper) odsOf(idx []int) [][2]graph.NodeID {
	ods := make([][2]graph.NodeID, len(idx))
	for j, i := range idx {
		ods[j] = sw.groups[i].od
	}
	return ods
}

func (sw *swapper) mlu(loads []float64) float64 {
	worst := 0.0
	for e, l := range loads {
		if u := l / sw.caps[e]; u > worst {
			worst = u
		}
	}
	return worst
}

// target is the load vector group i migrates to this round.
func (sw *swapper) target(i int, interim bool) []float64 {
	if interim {
		return sw.interimVec(i)
	}
	return sw.groups[i].newVec
}

// plan decides the migration batches. It mutates the swapper's
// cur/pos/loads as it goes, so the recorded per-batch MLUs reflect the
// walked intermediate states.
func (sw *swapper) plan() []swapBatch {
	n := len(sw.groups)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if n == 0 {
		// ILM-only change (protection routing differs, base identical):
		// a single swap round carrying the full diff.
		return []swapBatch{sw.applyBatch(nil, false)}
	}

	// Whole-delta single round when the true asynchronous envelope fits.
	env := append([]float64(nil), sw.static...)
	for _, grp := range sw.groups {
		for e := range env {
			if grp.newVec[e] > grp.oldVec[e] {
				env[e] += grp.newVec[e]
			} else {
				env[e] += grp.oldVec[e]
			}
		}
	}
	if sw.mlu(env) <= sw.tol {
		return []swapBatch{sw.applyBatch(all, false)}
	}

	// Exact minimal-k search over the subset lattice for small instances.
	if n <= sw.opts.MaxExactGroups {
		if masks := minKPath(n, sw.tol, sw.maskEnvelope); masks != nil {
			batches := make([]swapBatch, 0, len(masks))
			for _, m := range masks {
				var idx []int
				for i := 0; i < n; i++ {
					if m&(1<<i) != 0 {
						idx = append(idx, i)
					}
				}
				batches = append(batches, sw.applyBatch(idx, false))
			}
			return batches
		}
	}
	return sw.greedy()
}

// greedy packs envelope-safe batches toward the final routing,
// falling back to LP interim-routing rounds when stuck, and to a single
// forced best-effort round when even the LP cannot help.
func (sw *swapper) greedy() []swapBatch {
	var batches []swapBatch
	for {
		var remaining []int
		for i, p := range sw.pos {
			if p != posNew {
				remaining = append(remaining, i)
			}
		}
		if len(remaining) == 0 {
			break
		}
		if idx := sw.pickBatch(remaining, false); len(idx) > 0 {
			batches = append(batches, sw.applyBatch(idx, false))
			continue
		}
		// Stuck: no commodity can migrate to its final routing within the
		// envelope. Ask the exact LP whether the in-flight demand mix is
		// routable at all; its routing becomes the interim target.
		sw.ensureFeasibility()
		if sw.feasErr != nil || sw.feasMLU > sw.tol {
			batches = append(batches, sw.forceBatch(remaining))
			break
		}
		idx := sw.pickBatch(remaining, true)
		if len(idx) == 0 {
			// The LP certifies a feasible routing exists, but no
			// envelope-safe batch reaches it either: give up cleanly
			// (counted as swap_stuck, not best_effort).
			batches = append(batches, sw.forceBatch(remaining))
			break
		}
		batches = append(batches, sw.applyBatch(idx, true))
	}
	return batches
}

// pickBatch grows a batch of groups migrating to their target (final or
// interim) such that the batch's asynchronous envelope stays within
// tolerance, greedily adding the group whose migration yields the lowest
// post-batch MLU. Returns nil when no candidate fits.
func (sw *swapper) pickBatch(cands []int, interim bool) []int {
	base := append([]float64(nil), sw.loads...) // envelope with chosen max-contributions
	post := append([]float64(nil), sw.loads...) // post-migration loads
	var batch []int
	inBatch := make(map[int]bool)
	for {
		best, bestMLU := -1, math.Inf(1)
		for _, i := range cands {
			if inBatch[i] || (interim && sw.pos[i] == posInterim) {
				continue
			}
			tgt := sw.target(i, interim)
			feasible := true
			for e, c := range sw.cur[i] {
				l := base[e]
				if t := tgt[e]; t > c {
					l += t - c
				}
				if l/sw.caps[e] > sw.tol {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			pm := 0.0
			for e, c := range sw.cur[i] {
				if u := (post[e] + tgt[e] - c) / sw.caps[e]; u > pm {
					pm = u
				}
			}
			if best < 0 || pm < bestMLU-1e-12 {
				best, bestMLU = i, pm
			}
		}
		if best < 0 {
			return batch
		}
		inBatch[best] = true
		batch = append(batch, best)
		tgt := sw.target(best, interim)
		for e, c := range sw.cur[best] {
			if t := tgt[e]; t > c {
				base[e] += t - c
			}
			post[e] += tgt[e] - c
		}
	}
}

// applyBatch commits a batch: records its envelope (load with each
// migrating commodity at the max of its current and target vectors) and
// post-state MLU, then advances cur/pos/loads.
func (sw *swapper) applyBatch(idx []int, interim bool) swapBatch {
	b := swapBatch{idx: idx, interim: interim}
	env := append([]float64(nil), sw.loads...)
	for _, i := range idx {
		tgt := sw.target(i, interim)
		for e, c := range sw.cur[i] {
			if t := tgt[e]; t > c {
				env[e] += t - c
			}
		}
	}
	b.envMLU = sw.mlu(env)
	for _, i := range idx {
		tgt := sw.target(i, interim)
		for e, c := range sw.cur[i] {
			sw.loads[e] += tgt[e] - c
		}
		sw.cur[i] = tgt
		if interim {
			sw.pos[i] = posInterim
		} else {
			sw.pos[i] = posNew
		}
	}
	b.stateMLU = sw.mlu(sw.loads)
	b.certDemands = make([]float64, len(sw.groups))
	b.done = true
	for i, p := range sw.pos {
		switch p {
		case posNew:
			b.certDemands[i] = sw.groups[i].dNew
		case posInterim:
			b.certDemands[i] = sw.groups[i].demand
			b.done = false
		default:
			b.certDemands[i] = sw.groups[i].dOld
			b.done = false
		}
	}
	return b
}

// forceBatch moves every remaining group to its final routing in one
// best-effort round; the recorded envelope is honest (and over
// tolerance, or the batch would have been pickable).
func (sw *swapper) forceBatch(idx []int) swapBatch {
	b := sw.applyBatch(idx, false)
	b.forced = true
	return b
}

// maskEnvelope is the lattice-search envelope: groups in cum at their
// new vector, groups in add at the elementwise max of old and new, the
// rest at old, plus the static background. Memoized; only used for
// n ≤ MaxExactGroups, before any batch has been applied.
func (sw *swapper) maskEnvelope(cum, add uint64) float64 {
	key := cum<<uint(len(sw.groups)) | add
	if m, ok := sw.envMemo[key]; ok {
		return m
	}
	env := append([]float64(nil), sw.static...)
	for i := range sw.groups {
		grp := &sw.groups[i]
		bit := uint64(1) << i
		switch {
		case add&bit != 0:
			for e := range env {
				if grp.newVec[e] > grp.oldVec[e] {
					env[e] += grp.newVec[e]
				} else {
					env[e] += grp.oldVec[e]
				}
			}
		case cum&bit != 0:
			for e := range env {
				env[e] += grp.newVec[e]
			}
		default:
			for e := range env {
				env[e] += grp.oldVec[e]
			}
		}
	}
	m := sw.mlu(env)
	if sw.envMemo == nil {
		sw.envMemo = make(map[uint64]float64)
	}
	sw.envMemo[key] = m
	return m
}

// ensureFeasibility solves (once) the interim feasibility LP: route
// every changed OD at its worst-case migration demand over the static
// background. Its optimal MLU is the certificate deciding best-effort vs
// stuck, and its flow supplies the interim routing targets.
func (sw *swapper) ensureFeasibility() {
	if sw.feasSolved {
		return
	}
	sw.feasSolved = true
	for i := range sw.comms {
		sw.comms[i].Demand = sw.groups[i].demand
	}
	res, err := solveExact(sw.g, sw.comms, mcf.Options{
		Background: sw.static,
		Warm:       sw.certBasis,
		Obs:        sw.opts.Obs,
	})
	sw.lpSolves++
	if err != nil {
		sw.feasErr = err
		return
	}
	res.Flow.RemoveLoops()
	sw.feasFlow = res.Flow
	sw.feasMLU = res.MLU
	sw.certBasis = res.Basis
}

// interimVec is group i's demand-weighted load vector on the LP interim
// routing (at its worst-case migration demand).
func (sw *swapper) interimVec(i int) []float64 {
	if sw.interims == nil {
		sw.interims = make([][]float64, len(sw.groups))
	}
	if v := sw.interims[i]; v != nil {
		return v
	}
	v := scaleVec(sw.groups[i].demand, sw.feasFlow.Frac[i], sw.g.NumLinks())
	sw.interims[i] = v
	return v
}

// certifyRound runs the Theorem-2 certificate for one round's post-state
// demand mix: the changed ODs at their post-round demands over the
// static background, warm-chained from the previous solve (the LP shape
// is round-invariant). Solver failures are recorded, not swallowed.
func (sw *swapper) certifyRound(demands []float64) (float64, error) {
	if sw.opts.SkipCertify {
		return math.NaN(), nil
	}
	for i := range sw.comms {
		sw.comms[i].Demand = demands[i]
	}
	res, err := solveExact(sw.g, sw.comms, mcf.Options{
		Background: sw.static,
		Warm:       sw.certBasis,
		Obs:        sw.opts.Obs,
	})
	sw.lpSolves++
	if err != nil {
		sw.opts.Obs.Counter("transition.certify_errors").Inc()
		return math.NaN(), fmt.Errorf("transition: swap round certificate: %w", err)
	}
	sw.certBasis = res.Basis
	return res.MLU, nil
}

// programInterim overwrites the network's FIB rows for group i's OD with
// the LP interim routing fractions (same thresholding as Build).
func (sw *swapper) programInterim(cu *mplsff.Network, i int) {
	fr := sw.feasFlow.Frac[i]
	od := sw.groups[i].od
	for v := 0; v < sw.g.NumNodes(); v++ {
		node := graph.NodeID(v)
		var entries []mplsff.NHLFE
		for _, id := range sw.g.Out(node) {
			if fr[id] > 1e-12 {
				entries = append(entries, mplsff.NHLFE{Out: id, Ratio: fr[id]})
			}
		}
		cu.SetFIBRow(node, od, entries)
	}
}

// copyODRows overwrites dst's base-FIB rows for one OD pair with src's
// (deleting rows src lacks).
func copyODRows(dst, src *mplsff.Network, od [2]graph.NodeID) {
	for v := range dst.Routers {
		dst.SetFIBRow(graph.NodeID(v), od, src.Routers[v].FIB[od])
	}
}
