package transition

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mplsff"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// swapRing5 mirrors the core test fixture: a 5-node ring with two
// chords, generous capacities.
func swapRing5() *graph.Graph {
	g := graph.New("ring5")
	n := make([]graph.NodeID, 5)
	for i, s := range []string{"a", "b", "c", "d", "e"} {
		n[i] = g.AddNode(s)
	}
	for i := 0; i < 5; i++ {
		g.AddDuplex(n[i], n[(i+1)%5], 100, 1, 1)
	}
	g.AddDuplex(n[0], n[2], 100, 1, 1)
	g.AddDuplex(n[1], n[3], 100, 1, 1)
	return g
}

// TestSwapPropertyRandomPairs is the multi-round swap property harness:
// across 16 random plan pairs on ring5 and Abilene, (a) whenever the
// scheduler claims a congestion-free decomposition, every round's
// envelope and post-state are within tolerance; (b) the staged end state
// is byte-identical to one-shot mplsff.Build(next); and (c) delivering
// the rounds through any duplicated/reordered schedule leaves the view
// identical to in-order application.
func TestSwapPropertyRandomPairs(t *testing.T) {
	type instance struct {
		g        *graph.Graph
		totalOld float64
		totalNew float64
		effort   int
	}
	cases := make([]instance, 0, 16)
	for seed := 0; seed < 10; seed++ {
		g := swapRing5()
		cases = append(cases, instance{g, 350 + 45*float64(seed%4), 480 + 60*float64(seed%3), 40})
	}
	for seed := 0; seed < 6; seed++ {
		g := topo.Abilene()
		cap := g.TotalCapacity()
		cases = append(cases, instance{g, cap * (0.10 + 0.02*float64(seed%3)), cap * (0.13 + 0.03*float64(seed%2)), 30})
	}

	for seed, tc := range cases {
		seed, tc := seed, tc
		t.Run(fmtSeed(int64(seed)), func(t *testing.T) {
			t.Parallel()
			cfg := core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: tc.effort}
			old, err := core.Precompute(tc.g, traffic.Gravity(tc.g, tc.totalOld, int64(seed+1)), cfg)
			if err != nil {
				t.Fatal(err)
			}
			next, err := core.Precompute(tc.g, traffic.Gravity(tc.g, tc.totalNew, int64(seed+101)), cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := SchedulePlanSwap(old, next, Options{SkipCertify: true})
			if err != nil {
				t.Fatal(err)
			}
			if seq.CongestionFree {
				for _, r := range seq.Rounds {
					if r.EnvelopeMLU > 1+1e-6 || r.StateMLU > 1+1e-6 {
						t.Fatalf("claimed congestion-free, but round %d has envelope %v state %v",
							r.Seq, r.EnvelopeMLU, r.StateMLU)
					}
				}
			}

			want := mplsff.Build(next).Fingerprint()
			if got := seq.Final.Fingerprint(); got != want {
				t.Fatalf("Sequence.Final %x != one-shot %x", got, want)
			}

			// In-order application.
			inOrder := mplsff.Build(old)
			for _, r := range seq.Rounds {
				inOrder.ApplyRound(r.Seq, r.Delta)
			}
			if got := inOrder.Fingerprint(); got != want {
				t.Fatalf("in-order staged end state %x != one-shot %x", got, want)
			}

			// Duplicated + reordered delivery: a random permutation, then
			// every round a second time, must be indistinguishable.
			chaos := mplsff.Build(old)
			rng := rand.New(rand.NewSource(int64(seed) * 7919))
			for _, i := range rng.Perm(len(seq.Rounds)) {
				r := seq.Rounds[i]
				chaos.ApplyRound(r.Seq, r.Delta)
			}
			for _, i := range rng.Perm(len(seq.Rounds)) {
				r := seq.Rounds[i]
				chaos.ApplyRound(r.Seq, r.Delta)
			}
			if got := chaos.Fingerprint(); got != want {
				t.Fatalf("dup/reorder delivery %x != in-order %x", got, want)
			}
			if chaos.PendingRounds() != 0 {
				t.Fatalf("%d rounds still buffered after full delivery", chaos.PendingRounds())
			}
		})
	}
}
