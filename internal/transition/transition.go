// Package transition implements congestion-free staged reconfiguration:
// turning "activate this failure set" into a sequence of k batched,
// versioned, idempotent table-update rounds such that every intermediate
// configuration is capacity-feasible (Theorem 2), verified by the exact
// LP.
//
// The problem mirrors the sequence-of-intermediate-configurations
// literature (DAG rerouting, reroutable flows): activating several
// planned failures at once may transit an overloaded state even when the
// end state is fine, while a well-chosen order — or an interim
// LP-computed detour that is swapped out at the end — stays under
// capacity throughout.
//
// The scheduler reasons over R3's online states. Theorem 3 makes the
// state after activating a *set* of failures order-independent, so the
// search space is the subset lattice of failure groups (duplex pairs
// fail together, as a fiber cut would). For small instances an exact
// BFS over the lattice finds the minimal number of rounds whose every
// intermediate subset stays feasible; otherwise a greedy order activates
// the group that minimizes the next state's MLU (tie-broken by freed
// headroom). When no pure-R3 step is feasible but the exact LP certifies
// the scenario itself has a feasible routing, the scheduler splits the
// traffic shift: the offending link gets an LP-optimal interim detour
// (applied via core.FailWith), and a final swap round reconciles every
// router to the canonical R3 state — so the staged end state is
// byte-identical to one-shot activation.
package transition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/mplsff"
	"repro/internal/obs"
	"repro/internal/routing"
)

// RoundKind distinguishes activation rounds from the final swap round.
type RoundKind int

const (
	// Activate rounds take a batch of links down and install their
	// detours (pure R3 rescaling, or an LP interim detour on fallback).
	Activate RoundKind = iota
	// Swap rounds shift routers from interim detours to the canonical R3
	// state; they change rows but no failure knowledge.
	Swap
)

func (k RoundKind) String() string {
	if k == Swap {
		return "swap"
	}
	return "activate"
}

// Round is one staged update: a versioned row-level delta plus the
// feasibility evidence the scheduler gathered for it.
type Round struct {
	// Seq is the 1-based round number (mplsff.ApplyRound sequence).
	Seq  int
	Kind RoundKind
	// Links are the directed links taken down this round (nil for swap).
	Links []graph.LinkID
	// Delta is the row-level table change distributed to every router.
	Delta *mplsff.Delta
	// StateMLU is the MLU of the configuration after the round completes.
	StateMLU float64
	// EnvelopeMLU bounds the transient MLU while routers apply the round
	// asynchronously: the worst MLU over every intermediate activation
	// subset between the previous and the new configuration.
	EnvelopeMLU float64
	// LPMLU is the exact LP's optimal MLU for the post-round scenario —
	// the Theorem-2 certificate (≤ 1 means a feasible routing exists; it
	// lower-bounds StateMLU). NaN when certification was skipped or the
	// solver failed (CertifyErr distinguishes the two).
	LPMLU float64
	// CertifyErr records a certificate solver failure for this round; nil
	// when the LP solved or certification was skipped.
	CertifyErr error
	// ODs lists the OD pairs migrated in this round of a plan swap (nil
	// for failure-activation rounds, whose unit is Links).
	ODs [][2]graph.NodeID
	// Fallback marks rounds that installed an LP interim detour instead
	// of the pure R3 rescaling — for plan swaps, rounds that migrate
	// commodities onto the LP's interim routing rather than the final one.
	Fallback bool
	// CongestionFree reports StateMLU and EnvelopeMLU ≤ 1 (+tolerance).
	CongestionFree bool
}

// Sequence is a complete staged transition.
type Sequence struct {
	Rounds []*Round
	// CongestionFree reports every round stayed under capacity; when
	// false the sequence is best-effort and TransientMLU reports how far
	// over capacity the transition peaks.
	CongestionFree bool
	// TransientMLU is the worst EnvelopeMLU over all rounds.
	TransientMLU float64
	// FinalMLU is the MLU of the end state.
	FinalMLU float64
	// Fallbacks counts rounds that used an LP interim detour (for plan
	// swaps: interim-routing migration rounds); Swaps counts swap-kind
	// rounds (0 or 1 for failure activation, every round of a plan swap).
	Fallbacks, Swaps int
	// LPSolves counts exact-LP invocations (certificates + detours).
	LPSolves int
	// CertifyErrs counts rounds whose LP certificate failed to solve
	// (Round.CertifyErr non-nil); mirrored by the
	// transition.certify_errors counter.
	CertifyErrs int
	// Final is the reference network every router's view converges to
	// after applying all rounds; its fingerprint equals one-shot
	// activation of the same failure set.
	Final *mplsff.Network
	// Basis is the last certificate's optimal simplex basis, for
	// warm-starting the next Schedule over the same plan via
	// Options.Warm.
	Basis *lp.Basis
}

// WireBytes totals the estimated control-plane bytes across rounds.
func (s *Sequence) WireBytes() int {
	n := 0
	for _, r := range s.Rounds {
		n += r.Delta.WireSize()
	}
	return n
}

// Options configures Schedule.
type Options struct {
	// Tol is the feasibility tolerance: MLU ≤ 1+Tol counts as
	// congestion-free (default 1e-6).
	Tol float64
	// MaxExactGroups caps the exact subset-lattice search (default 6
	// failure groups = 64 subsets); larger instances go straight to the
	// greedy order.
	MaxExactGroups int
	// SkipCertify disables the per-round exact-LP certificate (LPMLU
	// becomes NaN). The interim-detour fallback still uses the LP.
	SkipCertify bool
	// Warm seeds the first certificate solve with a basis from a prior
	// Schedule over the same plan (the LP shape is scenario-invariant).
	Warm *lp.Basis
	// Obs receives transition.* counters and the "transition" trace.
	Obs *obs.Registry
}

func (o *Options) defaults() {
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.MaxExactGroups == 0 {
		o.MaxExactGroups = 6
	}
}

// DiffPlans diffs two precomputed plans at mplsff row granularity (base
// FIB and protection ILM), the raw material of a plan-to-plan
// transition. Both plans must be over the same graph.
func DiffPlans(old, next *core.Plan) *mplsff.Delta {
	return mplsff.Diff(mplsff.Build(old), mplsff.Build(next))
}

// solveExact indirects mcf.MinMLUExact so tests can inject certificate
// solver failures; production code always points at the real solver.
var solveExact = mcf.MinMLUExact

// Schedule decomposes the activation of a failure set into staged
// rounds. The returned sequence's rounds are numbered 1..k and are meant
// to be applied via mplsff.ApplyRound (directly or through the
// emulator's staged delivery); applying all of them transforms
// mplsff.Build(plan) into Sequence.Final.
func Schedule(plan *core.Plan, failures []graph.LinkID, opts Options) (*Sequence, error) {
	opts.defaults()
	g := plan.G
	var seen graph.LinkSet
	for _, e := range failures {
		if int(e) < 0 || int(e) >= g.NumLinks() {
			return nil, fmt.Errorf("transition: link %d out of range", e)
		}
		if seen.Contains(e) {
			return nil, fmt.Errorf("transition: link %d listed twice", e)
		}
		seen.Add(e)
	}

	sc := &scheduler{
		plan:      plan,
		g:         g,
		opts:      opts,
		states:    make(map[uint64]*core.State),
		mlus:      make(map[uint64]float64),
		certBasis: opts.Warm,
	}
	sc.groupFailures(failures)

	reg := opts.Obs
	span := reg.Trace("transition").Start("schedule")
	span.SetFloat("failures", float64(len(failures)))
	span.SetFloat("groups", float64(len(sc.groups)))

	seq := sc.execute(sc.search())

	span.SetFloat("rounds", float64(len(seq.Rounds)))
	span.SetFloat("transient_mlu", seq.TransientMLU)
	span.SetFloat("lp_solves", float64(seq.LPSolves))
	span.End()
	reg.Counter("transition.rounds").Add(int64(len(seq.Rounds)))
	reg.Counter("transition.lp_solves").Add(int64(seq.LPSolves))
	reg.Counter("transition.fallbacks").Add(int64(seq.Fallbacks))
	reg.Counter("transition.swaps").Add(int64(seq.Swaps))
	if !seq.CongestionFree {
		reg.Counter("transition.best_effort").Inc()
	}
	return seq, nil
}

// scheduler carries the per-Schedule search state.
type scheduler struct {
	plan *core.Plan
	g    *graph.Graph
	opts Options
	// groups are the activation units: duplex link pairs fail together.
	groups [][]graph.LinkID
	// states/mlus cache the canonical (sorted-order) R3 state per group
	// subset; Theorem 3 makes the subset, not the order, the identity.
	states map[uint64]*core.State
	mlus   map[uint64]float64

	certBasis *lp.Basis
	lpSolves  int
}

// groupFailures partitions the failure list into duplex groups: when
// both directions of a duplex link are failing they activate atomically
// (a fiber cut takes both), otherwise the directed link is its own
// group. Groups are sorted by their smallest link ID.
func (sc *scheduler) groupFailures(failures []graph.LinkID) {
	var set graph.LinkSet
	for _, e := range failures {
		set.Add(e)
	}
	sorted := append([]graph.LinkID(nil), failures...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var assigned graph.LinkSet
	for _, e := range sorted {
		if assigned.Contains(e) {
			continue
		}
		grp := []graph.LinkID{e}
		assigned.Add(e)
		if rev := sc.g.Link(e).Reverse; rev >= 0 && set.Contains(rev) && !assigned.Contains(rev) {
			grp = append(grp, rev)
			assigned.Add(rev)
		}
		sc.groups = append(sc.groups, grp)
	}
}

// linksOf expands a group bitmask into a sorted directed-link list.
func (sc *scheduler) linksOf(mask uint64) []graph.LinkID {
	var links []graph.LinkID
	for i := range sc.groups {
		if mask&(1<<i) != 0 {
			links = append(links, sc.groups[i]...)
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	return links
}

// stateOf returns the canonical R3 state after activating the subset:
// failures applied in sorted link order from the pristine plan. Cached;
// callers must treat the result as read-only (Clone before mutating).
func (sc *scheduler) stateOf(mask uint64) *core.State {
	if st, ok := sc.states[mask]; ok {
		return st
	}
	st := core.NewState(sc.plan)
	if err := st.FailAll(sc.linksOf(mask)...); err != nil {
		// Unreachable: Schedule validated the failure list.
		panic(fmt.Sprintf("transition: canonical state %b: %v", mask, err))
	}
	sc.states[mask] = st
	return st
}

func (sc *scheduler) mluOf(mask uint64) float64 {
	if m, ok := sc.mlus[mask]; ok {
		return m
	}
	m := sc.stateOf(mask).MLU()
	sc.mlus[mask] = m
	return m
}

// envelope bounds the transient MLU of a round that takes the
// configuration from subset cum to cum|add while routers update
// asynchronously: the worst MLU over every intermediate subset. (The
// per-link transient load is bounded by the worst load that link carries
// in any intermediate configuration.)
func (sc *scheduler) envelope(cum, add uint64) float64 {
	worst := sc.mluOf(cum)
	for sub := add; ; sub = (sub - 1) & add {
		if m := sc.mluOf(cum | sub); m > worst {
			worst = m
		}
		if sub == 0 {
			break
		}
	}
	return worst
}

// certify runs the Theorem-2 certificate for a failure scenario: the
// exact LP's optimal MLU over the plan's demands restricted to surviving
// links. Warm-started from the previous certificate (the LP shape is
// scenario-invariant). Returns NaN when disabled; a solver failure
// returns NaN with the error, so callers can record it on the round
// instead of silently shipping an uncertified sequence.
func (sc *scheduler) certify(failed graph.LinkSet) (float64, error) {
	if sc.opts.SkipCertify {
		return math.NaN(), nil
	}
	res, err := solveExact(sc.g, sc.plan.Base.Comms, mcf.Options{
		Alive: failed.Alive(),
		Warm:  sc.certBasis,
		Obs:   sc.opts.Obs,
	})
	sc.lpSolves++
	if err != nil {
		sc.opts.Obs.Counter("transition.certify_errors").Inc()
		return math.NaN(), fmt.Errorf("transition: round certificate: %w", err)
	}
	sc.certBasis = res.Basis
	return res.MLU, nil
}

// interimDetour asks the exact LP for the best detour for link e's
// current load: a single head→tail commodity over surviving links (also
// excluding links about to fail in the same round), with the rest of the
// network's load as background. Returns the detour fractions ξ̃ and the
// resulting MLU.
func (sc *scheduler) interimDetour(st *core.State, e graph.LinkID, alsoDown []graph.LinkID) ([]float64, float64, error) {
	loads := st.Loads()
	link := sc.g.Link(e)
	bg := append([]float64(nil), loads...)
	bg[e] = 0
	dead := st.Failed()
	dead.Add(e)
	for _, x := range alsoDown {
		dead.Add(x)
	}
	res, err := mcf.MinMLUExact(sc.g,
		[]routing.Commodity{{Src: link.Src, Dst: link.Dst, Demand: loads[e], Link: e}},
		mcf.Options{Alive: dead.Alive(), Background: bg, Obs: sc.opts.Obs})
	sc.lpSolves++
	if err != nil {
		return nil, 0, err
	}
	if res.Dropped > 0 {
		return nil, 0, fmt.Errorf("transition: link %d's head is partitioned from its tail", e)
	}
	xi := append([]float64(nil), res.Flow.Frac[0]...)
	xi[e] = 0
	return xi, res.MLU, nil
}

// materialize programs a reference network for a state: fresh build
// (deterministic salts and rows), then ILM reprogrammed from the state.
// The base FIB keeps the pre-failure routing, exactly like OnFailure.
func (sc *scheduler) materialize(st *core.State) *mplsff.Network {
	n := mplsff.Build(sc.plan)
	n.ReprogramILM(st)
	return n
}
