package transition

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/mplsff"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/traffic"
)

var (
	abileneOnce sync.Once
	abilenePlan *core.Plan
	abileneHot  *core.Plan
)

// abilenePlans builds the two Abilene plans the tests share: a
// moderate-load plan (congestion-free, F=1) and an overloaded one that
// forces the fallback paths.
func abilenePlans(t testing.TB) (moderate, hot *core.Plan) {
	t.Helper()
	abileneOnce.Do(func() {
		g := topo.Abilene()
		cfg := core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: 80}
		var err error
		abilenePlan, err = core.Precompute(g, traffic.Gravity(g, 250, 3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		abileneHot, err = core.Precompute(g, traffic.Gravity(g, 1000, 3), cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if abilenePlan == nil || abileneHot == nil {
		t.Fatal("plan precompute failed in an earlier test")
	}
	return abilenePlan, abileneHot
}

// duplexPair returns both directions of the duplex link a–b.
func duplexPair(t testing.TB, g *graph.Graph, a, b string) []graph.LinkID {
	t.Helper()
	na, ok := g.NodeByName(a)
	if !ok {
		t.Fatalf("no node %s", a)
	}
	nb, ok := g.NodeByName(b)
	if !ok {
		t.Fatalf("no node %s", b)
	}
	id, ok := g.FindLink(na, nb)
	if !ok {
		t.Fatalf("no link %s-%s", a, b)
	}
	return []graph.LinkID{id, g.Link(id).Reverse}
}

// oneShot activates the failures on a fresh network in sorted order (the
// canonical order the scheduler reconciles to).
func oneShot(t testing.TB, plan *core.Plan, fails []graph.LinkID) *mplsff.Network {
	t.Helper()
	sorted := append([]graph.LinkID(nil), fails...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	n := mplsff.Build(plan)
	for _, e := range sorted {
		if err := n.OnFailure(e); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// applyRounds replays a sequence onto a fresh network via the versioned
// delta path and returns the resulting view.
func applyRounds(t testing.TB, plan *core.Plan, seq *Sequence) *mplsff.Network {
	t.Helper()
	view := mplsff.Build(plan)
	for _, r := range seq.Rounds {
		if got := view.ApplyRound(r.Seq, r.Delta); got != 1 {
			t.Fatalf("round %d applied %d rounds, want 1", r.Seq, got)
		}
	}
	return view
}

// TestScheduleAbileneTwoLinkDelta is the acceptance scenario: a plan
// delta induced by a 2-link (duplex) failure set on Abilene must yield
// k ≤ 4 rounds, each LP-certified congestion-free, with the staged end
// state byte-identical to one-shot activation.
func TestScheduleAbileneTwoLinkDelta(t *testing.T) {
	plan, _ := abilenePlans(t)
	g := plan.G
	fails := append(duplexPair(t, g, "Houston", "KansasCity"),
		duplexPair(t, g, "Chicago", "Indianapolis")...)

	reg := obs.NewRegistry()
	seq, err := Schedule(plan, fails, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if k := len(seq.Rounds); k < 1 || k > 4 {
		t.Fatalf("k = %d rounds, want 1..4", k)
	}
	if !seq.CongestionFree {
		t.Fatalf("sequence not congestion-free: transient MLU %v", seq.TransientMLU)
	}
	for _, r := range seq.Rounds {
		if !r.CongestionFree {
			t.Fatalf("round %d not congestion-free (state %v envelope %v)", r.Seq, r.StateMLU, r.EnvelopeMLU)
		}
		if math.IsNaN(r.LPMLU) || r.LPMLU > 1+1e-6 {
			t.Fatalf("round %d LP certificate %v, want ≤ 1", r.Seq, r.LPMLU)
		}
		if r.LPMLU > r.StateMLU+1e-6 {
			t.Fatalf("round %d: LP optimum %v exceeds the round's own MLU %v", r.Seq, r.LPMLU, r.StateMLU)
		}
	}
	if seq.TransientMLU > 1+1e-6 {
		t.Fatalf("transient MLU %v > 1", seq.TransientMLU)
	}

	ref := oneShot(t, plan, fails)
	if seq.Final.Fingerprint() != ref.Fingerprint() {
		t.Fatal("staged end-state fingerprint differs from one-shot activation")
	}
	view := applyRounds(t, plan, seq)
	if view.Fingerprint() != seq.Final.Fingerprint() {
		t.Fatal("delta-applied view differs from the scheduler's reference network")
	}
	if reg.Counter("transition.rounds").Value() != int64(len(seq.Rounds)) {
		t.Fatal("transition.rounds counter does not match the emitted rounds")
	}
	if reg.Counter("transition.lp_solves").Value() != int64(seq.LPSolves) || seq.LPSolves == 0 {
		t.Fatalf("lp_solves counter %d vs sequence %d", reg.Counter("transition.lp_solves").Value(), seq.LPSolves)
	}
}

// TestScheduleFallbackSwapReconciles drives the overloaded plan through
// the greedy + interim-detour + swap path and checks the end state still
// reconciles byte-identically to one-shot activation.
func TestScheduleFallbackSwapReconciles(t *testing.T) {
	_, hot := abilenePlans(t)
	fails := []graph.LinkID{12, 13, 14, 15}
	seq, err := Schedule(hot, fails, Options{SkipCertify: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.CongestionFree {
		t.Fatal("overloaded transition reported congestion-free")
	}
	if seq.Fallbacks == 0 {
		t.Fatal("expected LP interim-detour fallbacks on the overloaded plan")
	}
	if seq.Swaps != 1 {
		t.Fatalf("swaps = %d, want exactly 1 reconciliation round", seq.Swaps)
	}
	last := seq.Rounds[len(seq.Rounds)-1]
	if last.Kind != Swap || last.Links != nil {
		t.Fatalf("last round kind %v links %v, want a pure swap", last.Kind, last.Links)
	}
	if seq.TransientMLU < seq.FinalMLU-1e-9 {
		t.Fatalf("transient MLU %v below final MLU %v", seq.TransientMLU, seq.FinalMLU)
	}
	for _, r := range seq.Rounds {
		if !math.IsNaN(r.LPMLU) {
			t.Fatalf("round %d has LPMLU %v with certification disabled", r.Seq, r.LPMLU)
		}
	}

	ref := oneShot(t, hot, fails)
	if seq.Final.Fingerprint() != ref.Fingerprint() {
		t.Fatal("swap round did not reconcile to the one-shot end state")
	}
	view := applyRounds(t, hot, seq)
	if view.Fingerprint() != seq.Final.Fingerprint() {
		t.Fatal("delta-applied view differs from the reference after the swap round")
	}
}

func TestScheduleEmptyAndInvalid(t *testing.T) {
	plan, _ := abilenePlans(t)
	seq, err := Schedule(plan, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rounds) != 0 || !seq.CongestionFree {
		t.Fatalf("empty failure set: %d rounds, cf=%v", len(seq.Rounds), seq.CongestionFree)
	}
	if seq.Final.Fingerprint() != mplsff.Build(plan).Fingerprint() {
		t.Fatal("empty transition changed the network")
	}
	if _, err := Schedule(plan, []graph.LinkID{99}, Options{}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := Schedule(plan, []graph.LinkID{1, 1}, Options{}); err == nil {
		t.Fatal("duplicate link accepted")
	}
}

func TestDiffPlans(t *testing.T) {
	plan, hot := abilenePlans(t)
	if !DiffPlans(plan, plan).Empty() {
		t.Fatal("self-diff of a plan is not empty")
	}
	d := DiffPlans(plan, hot)
	if d.Empty() {
		t.Fatal("diff of two different plans is empty")
	}
	// Applying the plan-to-plan delta transforms old into new.
	n := mplsff.Build(plan)
	n.ApplyDelta(d)
	if n.Fingerprint() != mplsff.Build(hot).Fingerprint() {
		t.Fatal("applying the plan delta does not reproduce the target plan's network")
	}
}

// TestSchedulePropertyRandomInstances is the property harness: across
// ≥16 randomized (topology, traffic, failure-pair) instances, every
// round the scheduler emits respects its own feasibility claims, the
// certificate matches an independently computed cold LP solve, and the
// staged end state always reconciles with one-shot activation.
func TestSchedulePropertyRandomInstances(t *testing.T) {
	const seeds = 16
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmtSeed(seed), func(t *testing.T) {
			t.Parallel()
			g := topo.Mesh("prop", 6, 18, seed, 120)
			// Vary the load regime so both the feasible and the
			// best-effort paths are exercised across the seed set.
			scale := 60 + 25*float64(seed%5)
			d := traffic.Gravity(g, scale, seed)
			plan, err := core.Precompute(g, d, core.Config{Model: core.ArbitraryFailures{F: 1}, Iterations: 40})
			if err != nil {
				t.Fatal(err)
			}
			// Two duplex failure groups chosen by seed, kept connected.
			fails := pickFailures(t, g, seed)
			seq, err := Schedule(plan, fails, Options{})
			if err != nil {
				t.Fatal(err)
			}

			if len(seq.Rounds) == 0 {
				t.Fatal("no rounds for a nonempty failure set")
			}
			tol := 1e-6
			transient := 0.0
			for i, r := range seq.Rounds {
				if r.Seq != i+1 {
					t.Fatalf("round %d has Seq %d", i+1, r.Seq)
				}
				if r.CongestionFree != (r.StateMLU <= 1+tol && r.EnvelopeMLU <= 1+tol) {
					t.Fatalf("round %d congestion-free claim inconsistent with its MLUs", r.Seq)
				}
				if r.EnvelopeMLU < r.StateMLU-1e-9 {
					t.Fatalf("round %d envelope %v below its own end state %v", r.Seq, r.EnvelopeMLU, r.StateMLU)
				}
				if r.EnvelopeMLU > transient {
					transient = r.EnvelopeMLU
				}
				// Differential certificate check: an independent cold LP
				// solve of the post-round scenario must agree with the
				// warm-started certificate chain.
				failed := failedAfter(seq, i)
				cold, err := mcf.MinMLUExact(g, plan.Base.Comms, mcf.Options{Alive: failed.Alive()})
				if err != nil {
					t.Fatalf("round %d cold certificate: %v", r.Seq, err)
				}
				if math.Abs(cold.MLU-r.LPMLU) > 1e-6*(1+cold.MLU) {
					t.Fatalf("round %d: warm certificate %v != cold %v", r.Seq, r.LPMLU, cold.MLU)
				}
				if r.CongestionFree && r.LPMLU > 1+tol {
					t.Fatalf("round %d claimed feasible but the LP optimum is %v", r.Seq, r.LPMLU)
				}
			}
			if seq.CongestionFree && transient > 1+tol {
				t.Fatalf("congestion-free sequence with transient MLU %v", transient)
			}

			if seq.Final.Fingerprint() != oneShot(t, plan, fails).Fingerprint() {
				t.Fatal("staged end state differs from one-shot activation")
			}
			if applyRounds(t, plan, seq).Fingerprint() != seq.Final.Fingerprint() {
				t.Fatal("delta application does not reproduce the reference network")
			}
		})
	}
}

// failedAfter reconstructs the failure set in effect after round index i
// from the emitted deltas alone (not the scheduler's internal state).
func failedAfter(seq *Sequence, i int) graph.LinkSet {
	var s graph.LinkSet
	for _, r := range seq.Rounds[:i+1] {
		for _, e := range r.Delta.Failed {
			s.Add(e)
		}
	}
	return s
}

// pickFailures selects two seed-dependent duplex groups whose removal
// keeps the mesh connected.
func pickFailures(t testing.TB, g *graph.Graph, seed int64) []graph.LinkID {
	t.Helper()
	nL := g.NumLinks()
	var duplex []graph.LinkID // the lower ID of each duplex pair
	for e := 0; e < nL; e++ {
		if rev := g.Link(graph.LinkID(e)).Reverse; rev > graph.LinkID(e) {
			duplex = append(duplex, graph.LinkID(e))
		}
	}
	n := int64(len(duplex))
	for off := int64(0); off < n*n; off++ {
		a := duplex[(seed+off)%n]
		b := duplex[(seed*3+off/n+off+1)%n]
		if a == b {
			continue
		}
		var dead graph.LinkSet
		for _, e := range []graph.LinkID{a, g.Link(a).Reverse, b, g.Link(b).Reverse} {
			dead.Add(e)
		}
		if g.Connected(dead.Alive()) {
			return dead.IDs()
		}
	}
	t.Fatal("no connected 2-duplex failure set found")
	return nil
}

func fmtSeed(seed int64) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}
